type result = { centers : Vec.t array; inertia : float; iterations : int }

let assign centers p =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = Vec.dist_sq p c in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    centers;
  !best

let inertia ~centers points =
  Array.fold_left
    (fun acc p -> acc +. Vec.dist_sq p centers.(assign centers p))
    0. points

(* Lexicographic order on coordinate vectors. *)
let compare_vec a b =
  let rec go i =
    if i = Array.length a then 0
    else
      let c = Float.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let canonical_order centers =
  let sorted = Array.copy centers in
  Array.sort compare_vec sorted;
  sorted

(* k-means++: each next seed drawn proportionally to its squared distance
   from the chosen set. *)
let seed_plus_plus rng ~k points =
  let n = Array.length points in
  let centers = Array.make k points.(Prim.Rng.int rng n) in
  let dist2 = Array.map (fun p -> Vec.dist_sq p centers.(0)) points in
  for j = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0. dist2 in
    let next =
      if total <= 0. then points.(Prim.Rng.int rng n)
      else begin
        let x = Prim.Rng.float rng total in
        let acc = ref 0. and chosen = ref (n - 1) in
        (try
           Array.iteri
             (fun i d ->
               acc := !acc +. d;
               if x < !acc then begin
                 chosen := i;
                 raise Exit
               end)
             dist2
         with Exit -> ());
        points.(!chosen)
      end
    in
    centers.(j) <- next;
    Array.iteri (fun i p -> dist2.(i) <- Float.min dist2.(i) (Vec.dist_sq p next)) points
  done;
  centers

let lloyd rng ~k ?(max_iterations = 64) ?(tolerance = 1e-9) points =
  let n = Array.length points in
  if k < 1 then invalid_arg "Kmeans.lloyd: k must be >= 1";
  if n < k then invalid_arg "Kmeans.lloyd: fewer points than centers";
  let d = Vec.dim points.(0) in
  let centers = ref (seed_plus_plus rng ~k points) in
  let iterations = ref 0 in
  let moved = ref infinity in
  while !iterations < max_iterations && !moved > tolerance do
    incr iterations;
    let sums = Array.init k (fun _ -> Vec.zero d) in
    let counts = Array.make k 0 in
    Array.iter
      (fun p ->
        let j = assign !centers p in
        Vec.axpy 1.0 p sums.(j);
        counts.(j) <- counts.(j) + 1)
      points;
    let next =
      Array.init k (fun j ->
          if counts.(j) = 0 then
            (* Empty cluster: re-seed on a random point. *)
            Vec.copy points.(Prim.Rng.int rng n)
          else Vec.scale (1. /. float_of_int counts.(j)) sums.(j))
    in
    moved :=
      Array.fold_left Float.max 0. (Array.init k (fun j -> Vec.dist !centers.(j) next.(j)));
    centers := next
  done;
  let centers = canonical_order !centers in
  { centers; inertia = inertia ~centers points; iterations = !iterations }

let flatten centers = Array.concat (Array.to_list centers)

let unflatten ~d v =
  let len = Array.length v in
  if d < 1 || len mod d <> 0 then invalid_arg "Kmeans.unflatten: length not a multiple of d";
  Array.init (len / d) (fun i -> Array.sub v (i * d) d)
