type report = { chosen : int; mechanisms : int; eps_each : float; depth : int }

let default_base = 32

let depth ?(base = default_base) size =
  if size < 1 then invalid_arg "Rec_concave.depth: size must be >= 1";
  let rec go size d = if size <= base then d else go (Scale_quality.num_scales size) (d + 1) in
  go size 0

let mechanism_count ?base size = (2 * depth ?base size) + 1

(* Cells of the two staggered partitions of [0, size) into intervals of
   length 2w (clipped to the domain).  Any width-w subinterval of the domain
   is fully contained in at least one cell. *)
let cells ~size ~w =
  let len = 2 * w in
  let clip (lo, hi) = (max 0 lo, min (size - 1) hi) in
  let collect first_start =
    let rec go start acc =
      if start > size - 1 then acc
      else
        let lo, hi = clip (start, start + len - 1) in
        let acc = if lo <= hi then (lo, hi) :: acc else acc in
        go (start + len) acc
    in
    go first_start []
  in
  List.rev_append (collect 0) (collect (-w))

let cell_max q (lo, hi) =
  let best = ref neg_infinity in
  for f = lo to hi do
    let v = Quality.eval q f in
    if v > !best then best := v
  done;
  !best

let solve rng ~eps ?(base = default_base) ?(sensitivity = 1.0) q =
  if not (eps > 0.) then invalid_arg "Rec_concave.solve: eps must be positive";
  if base < 2 then invalid_arg "Rec_concave.solve: base must be >= 2";
  let d = depth ~base (Quality.size q) in
  let mechanisms = (2 * d) + 1 in
  let eps_each = eps /. float_of_int mechanisms in
  (* Stage span: carries the whole ε budget; its exp-mech children sum to
     exactly mechanisms × eps_each = ε. *)
  Obs.Span.with_charged ~cat:"stage"
    ~attrs:(fun () ->
      [ ("depth", Obs.Span.I d);
        ("mechanisms", Obs.Span.I mechanisms);
        ("size", Obs.Span.I (Quality.size q)) ])
    ~eps ~delta:0. "rec_concave"
  @@ fun () ->
  let select qualities =
    Prim.Exp_mech.select rng ~eps:eps_each ~sensitivity ~qualities
  in
  let rec level q =
    let size = Quality.size q in
    if size <= base then select (Array.init size (Quality.eval q))
    else begin
      let j = level (Scale_quality.quality q) in
      let w = Scale_quality.width ~size j in
      let cs = Array.of_list (cells ~size ~w) in
      let cell = cs.(select (Array.map (cell_max q) cs)) in
      let lo, hi = cell in
      lo + select (Array.init (hi - lo + 1) (fun i -> Quality.eval q (lo + i)))
    end
  in
  { chosen = level q; mechanisms; eps_each; depth = d }

let loss_bound ?(base = default_base) ~size ~eps ~beta () =
  if size < 1 then invalid_arg "Rec_concave.loss_bound: size must be >= 1";
  let mechanisms = mechanism_count ~base size in
  let eps_each = eps /. float_of_int mechanisms in
  let beta_each = beta /. float_of_int mechanisms in
  (* Walk the recursion, summing the exponential-mechanism error bound of
     every selection.  Candidate counts: the in-cell selection ranges over at
     most min(2w, size) solutions and the cell selection over at most
     2·size/w cells; both are bounded by 2·size, and the base case by base. *)
  let em n = Prim.Exp_mech.error_bound ~eps:eps_each ~sensitivity:1.0 ~n_candidates:n ~beta:beta_each in
  let rec go size acc =
    if size <= base then acc +. em (max 1 size)
    else
      let acc = acc +. em (2 * size) (* cell selection *) +. em (2 * size) (* in-cell *) in
      go (Scale_quality.num_scales size) acc
  in
  go size 0.

let rec log_star x = if x <= 1. then 0. else 1. +. log_star (log x /. log 2.)

let paper_promise ~eps ~beta ~delta ~domain_size =
  let ls = log_star domain_size in
  (8. ** ls) *. (144. *. ls /. eps) *. log (24. *. ls /. (beta *. delta))
