(** Hot inner-loop kernels: C stubs over flat [float array] storage, each
    paired with a pure-OCaml reference that computes bit-identical results.

    Selection is process-wide: the C path is used when [compiled] is true
    and native execution has not been disabled via the
    [PRIVCLUSTER_NO_NATIVE] environment variable (any non-empty value
    other than ["0"]) or {!set_native}.  Every entry point dispatches at
    call time, so flipping the switch mid-process affects subsequent
    calls only — useful for differential tests.

    Determinism contract: the C kernels execute the same floating-point
    operations in the same order as the {!Ref} implementations, compiled
    with [-ffp-contract=off] (no FMA fusion), so outputs are bit-for-bit
    equal — the ULP bound is zero.  This preserves the exact-replay
    contract of [Engine.Result_cache] and budget-free retries.  See
    DESIGN.md §11. *)

val compiled : bool
(** Whether the C stubs are linked into this executable.  Always true in
    practice (the stubs are part of the library); exposed so callers and
    benches can report it. *)

val native_active : unit -> bool
(** True when calls will take the C path. *)

val set_native : bool -> unit
(** Force the C path on or off for subsequent calls.  [set_native true]
    is a no-op if the stubs are not compiled in. *)

val count_within :
  st:float array -> offs:int array -> lo:int -> hi:int ->
  q:float array -> qoff:int -> dim:int -> r2:float -> int
(** Number of rows [offs.(lo..hi)] (inclusive) of [st] whose squared
    distance to the row of [q] starting at [qoff] is [<= r2]. *)

val dists_to_rows :
  st:float array -> offs:int array -> n:int ->
  q:float array -> qoff:int -> dim:int -> out:float array -> unit
(** [out.(i) <- dist (q@qoff) (st@offs.(i))] for [i < n]. *)

val sort_floats : float array -> unit
(** In-place ascending sort.  The inputs are distances (no NaN, no -0.0),
    so the result equals [Array.sort Float.compare]. *)

val kth_smallest : float array -> len:int -> k:int -> float
(** The [k]-th smallest (1-based) of the first [len] entries.  Destroys
    the buffer (quickselect scratch).  Requires [1 <= k <= len]. *)

val counts_le_sorted :
  row:float array -> len:int -> radii:float array -> nr:int ->
  out:int array -> stride:int -> col:int -> unit
(** [row.(0..len-1)] ascending, [radii.(0..nr-1)] ascending:
    [out.(j * stride + col) <- #{ x in row : x <= radii.(j) }]. *)

val top_avg_capped :
  counts:int array -> off:int -> len:int -> cap:int -> k:int -> float
(** Mean of the [k] largest values of [min cap counts.(off+i)] over
    [i < len].  Requires [1 <= k <= len] and [cap >= 0]. *)

val jl_project :
  mat:float array -> st:float array -> offs:int array -> n:int ->
  in_dim:int -> out_dim:int -> scale:float -> out:float array -> unit
(** [out.(i*out_dim + r) <- scale *. dot (mat row r) (st @ offs.(i))]. *)

val sum_rows :
  st:float array -> sel:int array -> m:int -> dim:int ->
  acc:float array -> unit
(** [acc.(j) <- acc.(j) +. st.(sel.(s) + j)] accumulated in [s]-major,
    [j]-minor order, for [s < m], [j < dim]. *)

val argmin_center :
  st:float array -> off:int -> centers:float array -> k:int -> dim:int -> int
(** Index of the nearest of the [k] rows of the flat [k*dim] matrix
    [centers] to the point at [st@off]; first of equals wins. *)

val argmax_dist :
  st:float array -> offs:int array -> n:int ->
  q:float array -> qoff:int -> dim:int -> int
(** Index [i < n] maximizing [dist2 (st@offs.(i)) (q@qoff)]; first of
    equals wins.  Requires [n >= 1]. *)

val min_dist2_update :
  st:float array -> n:int -> dim:int ->
  centers:float array -> coff:int -> dist2:float array -> unit
(** [dist2.(i) <- min dist2.(i) (dist2 (st row i) (centers@coff))] for
    the contiguous layout [st.(i*dim + j)]. *)

val leaf_multi_count :
  st:float array -> idx:int array -> lo:int -> hi:int ->
  q:float array -> qoff:int -> dim:int -> r2s:float array ->
  jlo:int -> jhi:int -> acc:int array -> unit
(** One-query-many-radii leaf step.  For each point [idx.(lo..hi)]
    (inclusive), with [r2s] ascending and the point known to be inside
    radius index [jhi-1] candidates only within window [\[jlo, jhi)]:
    find the smallest [j] in the window with [d2 <= r2s.(j)] and record
    [acc.(j) <- acc.(j) + 1; acc.(jhi) <- acc.(jhi) - 1] (difference
    array; caller prefix-sums).  Requires [Array.length acc > jhi]. *)

(** Pure-OCaml reference implementations — always available, bit-identical
    to the C kernels.  Used for differential testing and as the fallback
    path when native execution is disabled. *)
module Ref : sig
  val count_within :
    st:float array -> offs:int array -> lo:int -> hi:int ->
    q:float array -> qoff:int -> dim:int -> r2:float -> int

  val dists_to_rows :
    st:float array -> offs:int array -> n:int ->
    q:float array -> qoff:int -> dim:int -> out:float array -> unit

  val sort_floats : float array -> unit

  val kth_smallest : float array -> len:int -> k:int -> float

  val counts_le_sorted :
    row:float array -> len:int -> radii:float array -> nr:int ->
    out:int array -> stride:int -> col:int -> unit

  val top_avg_capped :
    counts:int array -> off:int -> len:int -> cap:int -> k:int -> float

  val jl_project :
    mat:float array -> st:float array -> offs:int array -> n:int ->
    in_dim:int -> out_dim:int -> scale:float -> out:float array -> unit

  val sum_rows :
    st:float array -> sel:int array -> m:int -> dim:int ->
    acc:float array -> unit

  val argmin_center :
    st:float array -> off:int -> centers:float array -> k:int -> dim:int ->
    int

  val argmax_dist :
    st:float array -> offs:int array -> n:int ->
    q:float array -> qoff:int -> dim:int -> int

  val min_dist2_update :
    st:float array -> n:int -> dim:int ->
    centers:float array -> coff:int -> dist2:float array -> unit

  val leaf_multi_count :
    st:float array -> idx:int array -> lo:int -> hi:int ->
    q:float array -> qoff:int -> dim:int -> r2s:float array ->
    jlo:int -> jhi:int -> acc:int array -> unit
end
