type success = { average : float array; m_hat : float; sigma : float }
type result = Average of success | Bottom

let run rng ~eps ~delta ~diameter ~pred ~dim vectors =
  if not (eps > 0.) then invalid_arg "Noisy_avg.run: eps must be positive";
  if not (delta > 0. && delta < 1.) then invalid_arg "Noisy_avg.run: delta must be in (0, 1)";
  if not (diameter >= 0.) then invalid_arg "Noisy_avg.run: diameter must be non-negative";
  Obs.Span.with_charged
    ~attrs:(fun () -> [ ("dim", Obs.Span.I dim) ])
    ~eps ~delta "noisy_avg"
  @@ fun () ->
  let selected = Array.of_list (List.filter pred (Array.to_list vectors)) in
  let m = Array.length selected in
  let m_hat =
    float_of_int m
    +. Rng.laplace rng ~scale:(2. /. eps) ()
    -. (2. /. eps *. log (2. /. delta))
  in
  if m_hat <= 0. then Bottom
  else begin
    let mean =
      if m = 0 then Array.make dim 0.
      else begin
        let acc = Array.make (Array.length selected.(0)) 0. in
        Array.iter (fun v -> Array.iteri (fun i x -> acc.(i) <- acc.(i) +. x) v) selected;
        Array.map (fun s -> s /. float_of_int m) acc
      end
    in
    let sigma = 8. *. diameter /. (eps *. m_hat) *. sqrt (2. *. log (8. /. delta)) in
    Average { average = Gaussian_mech.vector_with_sigma rng ~sigma mean; m_hat; sigma }
  end

(* Flat variant: the candidate vectors are rows of [st] at the element
   offsets [offs]; [pred i] selects by row index.  Selection, accumulation
   and RNG draws happen in exactly the order of [run], so on equal inputs
   the two produce bit-identical results (pinned by test_flat_layout). *)
let run_rows rng ~eps ~delta ~diameter ~pred ~dim ~offs st =
  if not (eps > 0.) then invalid_arg "Noisy_avg.run_rows: eps must be positive";
  if not (delta > 0. && delta < 1.) then invalid_arg "Noisy_avg.run_rows: delta must be in (0, 1)";
  if not (diameter >= 0.) then invalid_arg "Noisy_avg.run_rows: diameter must be non-negative";
  Obs.Span.with_charged
    ~attrs:(fun () -> [ ("dim", Obs.Span.I dim) ])
    ~eps ~delta "noisy_avg"
  @@ fun () ->
  let n = Array.length offs in
  let sel = Array.make (max 1 n) 0 in
  let m = ref 0 in
  for i = 0 to n - 1 do
    if pred i then begin
      sel.(!m) <- offs.(i);
      incr m
    end
  done;
  let m = !m in
  let m_hat =
    float_of_int m
    +. Rng.laplace rng ~scale:(2. /. eps) ()
    -. (2. /. eps *. log (2. /. delta))
  in
  if m_hat <= 0. then Bottom
  else begin
    let mean =
      if m = 0 then Array.make dim 0.
      else begin
        let acc = Array.make dim 0. in
        Kernel.sum_rows ~st ~sel ~m ~dim ~acc;
        Array.map (fun s -> s /. float_of_int m) acc
      end
    in
    let sigma = 8. *. diameter /. (eps *. m_hat) *. sqrt (2. *. log (8. /. delta)) in
    Average { average = Gaussian_mech.vector_with_sigma rng ~sigma mean; m_hat; sigma }
  end

let expected_sigma ~eps ~delta ~diameter ~m =
  if m <= 0 then invalid_arg "Noisy_avg.expected_sigma: m must be positive";
  16. *. diameter /. (eps *. float_of_int m) *. sqrt (2. *. log (8. /. delta))
