type node =
  | Leaf of { pts : Vec.t array }
  | Split of {
      axis : int;
      threshold : float;  (** left: coordinate <= threshold; right: >. *)
      left : node;
      right : node;
      bbox_lo : Vec.t;
      bbox_hi : Vec.t;
    }

type t = { root : node; size : int; dim : int }

let leaf_capacity = 16

let bbox pts =
  let d = Vec.dim pts.(0) in
  let lo = Array.make d infinity and hi = Array.make d neg_infinity in
  Array.iter
    (fun p ->
      for i = 0 to d - 1 do
        if p.(i) < lo.(i) then lo.(i) <- p.(i);
        if p.(i) > hi.(i) then hi.(i) <- p.(i)
      done)
    pts;
  (lo, hi)

let widest_axis lo hi =
  let best = ref 0 and best_w = ref neg_infinity in
  Array.iteri
    (fun i l ->
      let w = hi.(i) -. l in
      if w > !best_w then begin
        best_w := w;
        best := i
      end)
    lo;
  !best

(* In-place quickselect partition of pts[lo..hi] by coordinate [axis] so
   that index mid holds the median element. *)
let rec select pts axis lo hi mid =
  if lo < hi then begin
    let pivot = pts.((lo + hi) / 2).(axis) in
    let i = ref lo and j = ref hi in
    while !i <= !j do
      while pts.(!i).(axis) < pivot do incr i done;
      while pts.(!j).(axis) > pivot do decr j done;
      if !i <= !j then begin
        let tmp = pts.(!i) in
        pts.(!i) <- pts.(!j);
        pts.(!j) <- tmp;
        incr i;
        decr j
      end
    done;
    if mid <= !j then select pts axis lo !j mid
    else if mid >= !i then select pts axis !i hi mid
  end

let rec build_node pts lo hi =
  let n = hi - lo + 1 in
  if n <= leaf_capacity then Leaf { pts = Array.sub pts lo n }
  else begin
    let slice = Array.sub pts lo n in
    let blo, bhi = bbox slice in
    let axis = widest_axis blo bhi in
    if bhi.(axis) -. blo.(axis) <= 0. then Leaf { pts = slice }
    else begin
      let mid = lo + (n / 2) in
      select pts axis lo hi mid;
      let threshold = pts.(mid).(axis) in
      Split
        {
          axis;
          threshold;
          left = build_node pts lo mid;
          right = build_node pts (mid + 1) hi;
          bbox_lo = blo;
          bbox_hi = bhi;
        }
    end
  end

let build points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kdtree.build: empty";
  let d = Vec.dim points.(0) in
  Array.iter
    (fun p -> if Vec.dim p <> d then invalid_arg "Kdtree.build: mixed dimensions")
    points;
  let pts = Array.copy points in
  { root = build_node pts 0 (n - 1); size = n; dim = d }

let size t = t.size
let dim t = t.dim

(* Squared distance from a point to an axis-aligned box. *)
let box_dist_sq lo hi p =
  let acc = ref 0. in
  for i = 0 to Array.length p - 1 do
    let d = if p.(i) < lo.(i) then lo.(i) -. p.(i) else if p.(i) > hi.(i) then p.(i) -. hi.(i) else 0. in
    acc := !acc +. (d *. d)
  done;
  !acc

(* Squared distance from a point to the farthest corner of a box. *)
let box_far_dist_sq lo hi p =
  let acc = ref 0. in
  for i = 0 to Array.length p - 1 do
    let d = Float.max (Float.abs (p.(i) -. lo.(i))) (Float.abs (p.(i) -. hi.(i))) in
    acc := !acc +. (d *. d)
  done;
  !acc

let rec count_node node center r2 =
  match node with
  | Leaf { pts } ->
      Array.fold_left (fun acc p -> if Vec.dist_sq p center <= r2 then acc + 1 else acc) 0 pts
  | Split { left; right; bbox_lo; bbox_hi; _ } ->
      if box_dist_sq bbox_lo bbox_hi center > r2 then 0
      else if box_far_dist_sq bbox_lo bbox_hi center <= r2 then node_size node
      else count_node left center r2 + count_node right center r2

and node_size = function
  | Leaf { pts } -> Array.length pts
  | Split { left; right; _ } -> node_size left + node_size right

let count_within t ~center ~radius =
  if radius < 0. then 0 else count_node t.root center (radius *. radius)

let iter_within t ~center ~radius f =
  if radius >= 0. then begin
    let r2 = radius *. radius in
    let rec go = function
      | Leaf { pts } -> Array.iter (fun p -> if Vec.dist_sq p center <= r2 then f p) pts
      | Split { left; right; bbox_lo; bbox_hi; _ } ->
          if box_dist_sq bbox_lo bbox_hi center <= r2 then begin
            go left;
            go right
          end
    in
    go t.root
  end

let points_within t ~center ~radius =
  let acc = ref [] in
  iter_within t ~center ~radius (fun p -> acc := p :: !acc);
  Array.of_list (List.rev !acc)

let nearest t query =
  let best = ref None and best_d2 = ref infinity in
  let rec go = function
    | Leaf { pts } ->
        Array.iter
          (fun p ->
            let d2 = Vec.dist_sq p query in
            if d2 < !best_d2 then begin
              best_d2 := d2;
              best := Some p
            end)
          pts
    | Split { left; right; bbox_lo; bbox_hi; axis; threshold } ->
        if box_dist_sq bbox_lo bbox_hi query < !best_d2 then begin
          (* Visit the side containing the query first. *)
          let first, second = if query.(axis) <= threshold then (left, right) else (right, left) in
          go first;
          go second
        end
  in
  go t.root;
  match !best with
  | Some p -> (p, sqrt !best_d2)
  | None -> invalid_arg "Kdtree.nearest: empty tree"

let counts_within_all t centers ~radius =
  Array.map (fun c -> count_within t ~center:c ~radius) centers
