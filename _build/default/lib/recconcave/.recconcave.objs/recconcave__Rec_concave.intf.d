lib/recconcave/rec_concave.mli: Prim Quality
