(* Private k-means — the application Nissim, Raskhodnikova and Smith built
   with sample-and-aggregate, reconstructed on top of this library's
   1-cluster aggregator (see Sections 1.1 and 6 of the paper).

   Run with:  dune exec examples/private_kmeans.exe

   The scenario: 150k customer records in a 2-D feature space forming three
   behavioural segments.  Lloyd's k-means is entirely non-private; privacy
   comes from running it on disjoint random blocks and privately locating
   the cluster its (canonically ordered, flattened) outputs form in R^6. *)

let () =
  let rng = Prim.Rng.create ~seed:13 () in
  let truth = [| [| 0.25; 0.3 |]; [| 0.75; 0.25 |]; [| 0.5; 0.8 |] |] in
  let n = 150_000 in
  let data =
    Array.init n (fun i ->
        let c = truth.(i mod 3) in
        Array.map
          (fun x -> Float.max 0. (Float.min 1. (x +. Prim.Rng.gaussian rng ~sigma:0.03 ())))
          c)
  in
  Printf.printf "private 3-means on %d records under (4, 1e-6)-DP...\n%!" n;
  match
    Privcluster.Kmeans_sa.run rng Privcluster.Profile.practical ~axis_size:128 ~eps:4.0
      ~delta:1e-6 ~beta:0.1 ~k:3 ~block_size:20 ~alpha:0.8 data
  with
  | Error f -> Format.printf "aggregation failed: %a@." Privcluster.One_cluster.pp_failure f
  | Ok result ->
      Array.iteri
        (fun i c ->
          let nearest =
            Array.fold_left (fun acc t -> Float.min acc (Geometry.Vec.dist t c)) infinity truth
          in
          Printf.printf "center %d: (%.3f, %.3f)   off-truth %.3f\n" (i + 1) c.(0) c.(1) nearest)
        result.Privcluster.Kmeans_sa.centers;
      Printf.printf "aggregator blocks: %d of %d records each; stable radius %.3f in R^6\n"
        result.Privcluster.Kmeans_sa.sa.Privcluster.Sample_aggregate.blocks
        result.Privcluster.Kmeans_sa.sa.Privcluster.Sample_aggregate.block_size
        result.Privcluster.Kmeans_sa.stable_radius;
      (* Non-private reference on the full data, for comparison. *)
      let km = Geometry.Kmeans.lloyd rng ~k:3 data in
      let worst =
        Array.fold_left
          (fun acc t ->
            Float.max acc
              (Array.fold_left
                 (fun a c -> Float.min a (Geometry.Vec.dist t c))
                 infinity km.Geometry.Kmeans.centers))
          0. truth
      in
      Printf.printf "non-private Lloyd on all data: worst center error %.3f\n" worst
