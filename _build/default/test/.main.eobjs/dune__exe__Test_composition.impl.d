test/test_composition.ml: Alcotest List Prim Printf Privcluster QCheck2 Testutil
