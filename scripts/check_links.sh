#!/bin/sh
# Checks that every relative markdown link [text](path) in the top-level
# docs points at a file that exists. External (scheme://) links and
# intra-page anchors (#...) are skipped. Exits non-zero on the first
# broken link, listing all of them.
set -u

cd "$(dirname "$0")/.."

docs="README.md OPERATIONS.md DESIGN.md HACKING.md ROADMAP.md EXPERIMENTS.md PAPER_MAP.md TESTING.md PERFORMANCE.md"
status=0

for doc in $docs; do
  [ -f "$doc" ] || continue
  # Pull out the (target) of every [text](target), one per line.
  links=$(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\([^)]*\))/\1/')
  for link in $links; do
    case "$link" in
      *://*) continue ;;        # external URL
      '#'*) continue ;;         # same-page anchor
    esac
    target=${link%%#*}          # strip a trailing anchor
    [ -n "$target" ] || continue
    if [ ! -e "$target" ]; then
      echo "BROKEN: $doc -> $link" >&2
      status=1
    fi
  done
done

if [ "$status" -eq 0 ]; then
  echo "check_links: all relative doc links resolve."
fi
exit "$status"
