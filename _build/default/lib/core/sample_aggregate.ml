type 'a analysis = 'a array -> Geometry.Vec.t

type result = {
  stable_point : Geometry.Vec.t;
  stable_radius : float;
  blocks : int;
  block_size : int;
  t_used : int;
  cluster : One_cluster.result;
}

let run rng profile ~grid ~eps ~delta ~beta ~m ~alpha ~f data =
  if m < 1 then invalid_arg "Sample_aggregate.run: m must be >= 1";
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Sample_aggregate.run: alpha must be in (0, 1]";
  let n = Array.length data in
  let k = n / (9 * m) in
  if k < 2 then invalid_arg "Sample_aggregate.run: need n >= 18·m for two blocks";
  (* Step 1: n/9 iid samples, split into k blocks of m. *)
  let subsample = Prim.Rng.sample_with_replacement rng ~k:(k * m) data in
  let blocks = Array.init k (fun b -> Array.sub subsample (b * m) m) in
  (* Step 2: the non-private analysis on every block, snapped to the grid. *)
  let outputs = Array.map (fun block -> Geometry.Grid.snap grid (f block)) blocks in
  (* Step 3: the 1-cluster solver with t = αk/2. *)
  let t = max 1 (int_of_float (alpha *. float_of_int k /. 2.)) in
  match One_cluster.run rng profile ~grid ~eps ~delta ~beta ~t outputs with
  | Error e -> Error e
  | Ok cluster ->
      Ok
        {
          stable_point = cluster.One_cluster.center;
          stable_radius = cluster.One_cluster.radius;
          blocks = k;
          block_size = m;
          t_used = t;
          cluster;
        }

let amplified ~eps ~delta =
  let eps' = 2. *. eps /. 3. in
  Prim.Dp.v ~eps:eps' ~delta:(Float.min (exp eps' *. 4. /. 9. *. delta) (Float.pred 1.0))
