lib/core/interior_point.mli: Geometry One_cluster Prim Profile Stdlib
