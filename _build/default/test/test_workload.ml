(* Synthetic generators, metrics, report rendering, and the harness. *)

open Testutil

let test_planted_ball_shape () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:128 ~dim:3 in
  let w = Workload.Synth.planted_ball r ~grid ~n:500 ~cluster_fraction:0.4 ~cluster_radius:0.06 in
  check_int "n points" 500 (Array.length w.Workload.Synth.points);
  check_int "cluster size" 200 w.Workload.Synth.cluster_size;
  Array.iter
    (fun p -> check_true "on grid" (Geometry.Grid.mem grid p))
    w.Workload.Synth.points;
  (* Every cluster point within the (inflated) planted radius. *)
  Array.iter
    (fun i ->
      check_true "cluster point inside planted ball"
        (Geometry.Vec.dist w.Workload.Synth.points.(i) w.Workload.Synth.cluster_center
        <= w.Workload.Synth.cluster_radius +. 1e-9))
    w.Workload.Synth.cluster_indices

let test_ball_point_inside () =
  let r = rng () in
  for _ = 1 to 500 do
    let p = Workload.Synth.ball_point r ~center:[| 0.5; 0.5; 0.5 |] ~radius:0.2 in
    check_true "inside the ball" (Geometry.Vec.dist p [| 0.5; 0.5; 0.5 |] <= 0.2 +. 1e-9)
  done

let test_ball_point_not_degenerate () =
  (* Points should fill the ball, not stick to the center or the shell. *)
  let r = rng () in
  let inner = ref 0 in
  let n = 5000 in
  for _ = 1 to n do
    let p = Workload.Synth.ball_point r ~center:[| 0.; 0. |] ~radius:1.0 in
    if Geometry.Vec.norm2 p <= 0.5 then incr inner
  done;
  (* Uniform in a 2-D disc: P(r <= 1/2) = 1/4. *)
  check_float ~tol:0.03 "radial law" 0.25 (float_of_int !inner /. float_of_int n)

let test_adversarial_minority_corner () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:128 ~dim:2 in
  let w =
    Workload.Synth.adversarial_minority r ~grid ~n:400 ~cluster_fraction:0.3 ~cluster_radius:0.05
  in
  check_true "cluster pinned near the corner"
    (Geometry.Vec.norm_inf w.Workload.Synth.cluster_center <= 0.2);
  let w2 =
    Workload.Synth.adversarial_minority r ~grid ~n:400 ~cluster_fraction:0.7 ~cluster_radius:0.05
  in
  check_int "majority variant falls back to planted_ball" 280 w2.Workload.Synth.cluster_size

let test_planted_balls () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:128 ~dim:2 in
  let w = Workload.Synth.planted_balls r ~grid ~n:900 ~k:3 ~cluster_radius:0.04 ~noise_fraction:0.1 in
  check_int "k centers" 3 (Array.length w.Workload.Synth.centers);
  check_int "total points" 900 (Array.length w.Workload.Synth.all_points);
  check_int "per-cluster size" 270 w.Workload.Synth.sizes.(0)

let test_with_outliers () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:128 ~dim:2 in
  let w = Workload.Synth.with_outliers r ~grid ~n:300 ~outlier_fraction:0.2 ~inlier_radius:0.05 in
  check_int "outlier count" 60 (Array.length w.Workload.Synth.outlier_indices);
  Array.iteri
    (fun i p ->
      if not (Array.mem i w.Workload.Synth.outlier_indices) then
        check_true "inliers inside the ball"
          (Geometry.Vec.dist p w.Workload.Synth.inlier_center
          <= w.Workload.Synth.inlier_radius +. 0.02))
    w.Workload.Synth.data

let test_estimator_outputs () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:128 ~dim:2 in
  let y =
    Workload.Synth.estimator_outputs r ~grid ~k:200 ~good_fraction:0.6
      ~good_center:[| 0.5; 0.5 |] ~good_radius:0.05
  in
  check_int "k outputs" 200 (Array.length y);
  let close =
    Array.fold_left
      (fun acc p -> if Geometry.Vec.dist p [| 0.5; 0.5 |] < 0.08 then acc + 1 else acc)
      0 y
  in
  check_true "about 60% good" (close >= 110 && close <= 160)

(* --- Metrics --- *)

let test_metrics_score () =
  let pts = Array.map (fun x -> [| x |]) [| 0.1; 0.11; 0.12; 0.9 |] in
  let ps = Geometry.Pointset.create pts in
  let s = Workload.Metrics.score ps ~t:3 ~center:[| 0.11 |] ~radius:0.02 in
  check_int "covered" 3 s.Workload.Metrics.covered;
  check_int "delta" 0 s.Workload.Metrics.delta_measured;
  check_true "ratio consistent"
    (s.Workload.Metrics.ratio_vs_hi >= 1. && s.Workload.Metrics.ratio_vs_lo >= s.Workload.Metrics.ratio_vs_hi);
  check_true "success predicate"
    (Workload.Metrics.success s ~t:3 ~max_delta:0 ~max_ratio:10.)

let test_tight_radius () =
  let pts = Array.map (fun x -> [| x |]) [| 0.0; 0.5; 1.0 |] in
  let ps = Geometry.Pointset.create pts in
  check_float "t=2 around 0" 0.5 (Workload.Metrics.tight_radius ps ~center:[| 0. |] ~t:2);
  check_float "t=3 around 0" 1.0 (Workload.Metrics.tight_radius ps ~center:[| 0. |] ~t:3)

let test_quantiles () =
  let xs = [ 4.; 1.; 3.; 2. ] in
  check_float "median" 2.5 (Workload.Metrics.median xs);
  check_float "q0" 1.0 (Workload.Metrics.quantile xs ~q:0.);
  check_float "q1" 4.0 (Workload.Metrics.quantile xs ~q:1.);
  check_float "mean" 2.5 (Workload.Metrics.mean xs);
  check_true "empty is nan" (Float.is_nan (Workload.Metrics.median []))

let test_score_with_bounds () =
  let pts = Array.map (fun x -> [| x |]) [| 0.1; 0.11; 0.9 |] in
  let ps = Geometry.Pointset.create pts in
  let s = Workload.Metrics.score_with_bounds ~r_lo:0.01 ~r_hi:0.02 ps ~t:2 ~center:[| 0.105 |] ~radius:0.04 in
  check_int "covered" 2 s.Workload.Metrics.covered;
  check_float ~tol:1e-9 "ratio vs hi" 2.0 s.Workload.Metrics.ratio_vs_hi;
  check_float ~tol:1e-9 "ratio vs lo" 4.0 s.Workload.Metrics.ratio_vs_lo

let test_bounds_indexed_matches () =
  let r = rng () in
  let pts = Array.init 60 (fun _ -> [| Prim.Rng.float r 1.0; Prim.Rng.float r 1.0 |]) in
  let ps = Geometry.Pointset.create pts in
  let idx = Geometry.Pointset.build_index ps in
  let _, hi = Workload.Metrics.r_opt_bounds_indexed idx ~t:30 in
  let b = Geometry.Seb.two_approx ps ~t:30 in
  check_float ~tol:1e-12 "indexed two-approx" b.Geometry.Seb.radius hi

(* --- Report / Harness --- *)

let test_report_renders () =
  (* Smoke: table/headline/kv must not raise on ragged input. *)
  Workload.Report.headline "test";
  Workload.Report.subhead "sub";
  Workload.Report.kv "key" "value";
  Workload.Report.table ~header:[ "a"; "b" ] [ [ "1" ]; [ "22"; "333"; "4" ] ];
  check_true "f2" (Workload.Report.f2 1.234 = "1.23");
  check_true "f2 nan" (Workload.Report.f2 Float.nan = "-");
  check_true "pct" (Workload.Report.pct 0.42 = "42%");
  check_true "g" (Workload.Report.g 0.5 = "0.5")

let test_csv_export () =
  let dir = Filename.temp_file "privcluster" "csv" in
  Sys.remove dir;
  Workload.Report.set_csv_dir (Some dir);
  Workload.Report.table ~csv:"unit" ~header:[ "a"; "b" ]
    [ [ "1"; "plain" ]; [ "2"; "with,comma" ]; [ "3"; "with\"quote" ] ];
  Workload.Report.set_csv_dir None;
  let file = Filename.concat dir "unit.csv" in
  check_true "file written" (Sys.file_exists file);
  let ic = open_in file in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let lines = List.rev !lines in
  check_int "four lines" 4 (List.length lines);
  check_true "header" (List.nth lines 0 = "a,b");
  check_true "comma quoted" (List.nth lines 2 = "2,\"with,comma\"");
  check_true "quote doubled" (List.nth lines 3 = "3,\"with\"\"quote\"");
  Sys.remove file;
  Sys.rmdir dir;
  (* Without a directory set, tables with a csv name are a no-op. *)
  Workload.Report.table ~csv:"ignored" ~header:[ "x" ] [ [ "1" ] ]

let test_harness_median_scores () =
  let ok time_ms w =
    {
      Workload.Harness.time_ms;
      center = Some [| 0. |];
      radius = 1.;
      covered = 10;
      delta_measured = 0;
      w_private = w;
      w_tight = w;
      failure = None;
    }
  in
  let m = Workload.Harness.median_scores [ ok 1. 1.; ok 3. 3.; ok 2. 2. ] in
  check_float "median time" 2. m.Workload.Harness.time_ms;
  check_float "median w" 2. m.Workload.Harness.w_private;
  check_true "no failure" (m.Workload.Harness.failure = None);
  let with_fail =
    Workload.Harness.median_scores [ ok 1. 1.; Workload.Harness.failed ~time_ms:5. "boom" ]
  in
  check_true "failure counted" (with_fail.Workload.Harness.failure = Some "1/2 failed");
  let all_fail = Workload.Harness.median_scores [ Workload.Harness.failed ~time_ms:5. "x" ] in
  check_true "all failed" (all_fail.Workload.Harness.failure = Some "all trials failed")

let suite =
  [
    case "planted ball shape" test_planted_ball_shape;
    case "ball_point inside" test_ball_point_inside;
    case "ball_point radial law" test_ball_point_not_degenerate;
    case "adversarial minority" test_adversarial_minority_corner;
    case "planted balls" test_planted_balls;
    case "with outliers" test_with_outliers;
    case "estimator outputs" test_estimator_outputs;
    case "metrics score" test_metrics_score;
    case "tight radius" test_tight_radius;
    case "quantiles" test_quantiles;
    case "score with bounds" test_score_with_bounds;
    case "indexed bounds match" test_bounds_indexed_matches;
    case "report renders" test_report_renders;
    case "csv export" test_csv_export;
    case "harness medians" test_harness_median_scores;
  ]
