lib/baselines/private_agg.ml: Array Float Geometry Prim Recconcave
