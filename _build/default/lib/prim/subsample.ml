let amplification_factor ~m ~n =
  if m < 1 then invalid_arg "Subsample.amplification_factor: m must be >= 1";
  if n < 2 * m then invalid_arg "Subsample.amplification_factor: need n >= 2m";
  6. *. float_of_int m /. float_of_int n

let amplify ~eps ~delta ~m ~n =
  if not (eps > 0. && eps <= 1.) then invalid_arg "Subsample.amplify: eps must be in (0, 1]";
  if not (delta >= 0. && delta < 1.) then invalid_arg "Subsample.amplify: delta must be in [0, 1)";
  let factor = amplification_factor ~m ~n in
  let eps' = factor *. eps in
  let delta' = exp eps' *. 4. *. (float_of_int m /. float_of_int n) *. delta in
  Dp.v ~eps:eps' ~delta:(Float.min delta' (Float.pred 1.0))
