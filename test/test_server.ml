(* privclusterd: WAL framing and replay, accountant event stream,
   admission shedding, wire protocol, and daemon end-to-end (including
   crash recovery and a concurrent multi-client soak). *)

open Testutil
module Acct = Engine.Accountant
module Wal = Server.Wal
module Wire = Server.Wire

let p ~eps ~delta = { Prim.Dp.eps; delta }

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tmp_path suffix =
  let f = Filename.temp_file "privclusterd_test" suffix in
  Sys.remove f;
  f

(* --- crc32 --------------------------------------------------------------- *)

let test_crc_vectors () =
  (* The standard IEEE check value, plus anchors computed with zlib. *)
  Alcotest.(check string) "123456789" "cbf43926" (Server.Crc32.to_hex (Server.Crc32.string "123456789"));
  Alcotest.(check string) "empty" "00000000" (Server.Crc32.to_hex (Server.Crc32.string ""));
  Alcotest.(check string) "a" "e8b7be43" (Server.Crc32.to_hex (Server.Crc32.string "a"));
  check_true "of_hex inverts to_hex"
    (Server.Crc32.of_hex "cbf43926" = Some (Server.Crc32.string "123456789"));
  check_true "of_hex rejects short" (Server.Crc32.of_hex "abc" = None);
  check_true "of_hex rejects junk" (Server.Crc32.of_hex "zzzzzzzz" = None)

(* --- WAL framing --------------------------------------------------------- *)

let sample_records =
  [
    { Wal.tenant = "acme"; dataset = "d1";
      op = Wal.Open
          { mode = Acct.Basic; budget = p ~eps:2.0 ~delta:1e-5;
            synth = Some { Wal.n = 400; dim = 2; axis = 128; frac = 0.5;
                           radius = 0.1 +. 0.2; seed = 3 } } };
    { Wal.tenant = "acme"; dataset = "d1";
      op = Wal.Charge { label = "j1"; cost = p ~eps:0.5 ~delta:1e-7 } };
    { Wal.tenant = "acme"; dataset = "d1";
      op = Wal.Refuse { label = "j2"; cost = p ~eps:9.0 ~delta:0.0; reserve = false } };
    { Wal.tenant = "acme"; dataset = "d1";
      op = Wal.Reserve { rid = 0; label = "j3:fallback"; cost = p ~eps:0.25 ~delta:5e-8 } };
    { Wal.tenant = "acme"; dataset = "d1"; op = Wal.Commit { rid = 0 } };
    (* synth = None: a legacy record journaled before parameters were pinned *)
    { Wal.tenant = "beta"; dataset = "dx";
      op = Wal.Open
          { mode = Acct.Zcdp { slack = 1e-9 }; budget = p ~eps:1.0 ~delta:1e-6;
            synth = None } };
    { Wal.tenant = "beta"; dataset = "dx";
      op = Wal.Reserve { rid = 1; label = "q:fallback"; cost = p ~eps:0.1 ~delta:0.0 } };
    { Wal.tenant = "beta"; dataset = "dx"; op = Wal.Release { rid = 1 } };
    (* engine-state ops: epoch transitions, cache entries, standing queries *)
    { Wal.tenant = "acme"; dataset = "d1";
      op = Wal.Append { epoch = 1; dim = 2; points = [| 0.125; 0.25; 0.1 +. 0.2; 1e-9 |] } };
    { Wal.tenant = "acme"; dataset = "d1"; op = Wal.Retire { epoch = 2; from_ = 7; count = 3 } };
    { Wal.tenant = "acme"; dataset = "d1";
      op = Wal.Cached
          { epoch = 2; signature = "quantile q=0x1p-1 axis=0 eps=0x1.999999999999ap-4";
            seed = 5; stream = 1;
            output = Engine.Job.output_to_wire
                (Engine.Job.Quantile_value { value = 0.1 +. 0.2; target_rank = 200.5 }) } };
    { Wal.tenant = "acme"; dataset = "d1";
      op = Wal.Standing { line = "standing t_fraction=0x1p-1 periods=3 eps=0x1.8p+0 delta=0x1p-21 id=sq"; seed = 5; stream = 0 } };
  ]

let write_wal path records =
  match Wal.open_ ~sync:false path with
  | Error e -> Alcotest.failf "wal open: %s" e
  | Ok w ->
      List.iter (Wal.append w) records;
      Wal.close w

let test_wal_roundtrip () =
  let path = tmp_path ".wal" in
  write_wal path sample_records;
  (match Wal.load path with
  | Error e -> Alcotest.failf "load: %s" e
  | Ok (records, tail) ->
      check_true "clean tail" (tail = Wal.Clean);
      check_true "all records round-trip" (records = sample_records));
  Sys.remove path

let test_wal_missing_file () =
  match Wal.load (tmp_path ".wal") with
  | Ok ([], Wal.Clean) -> ()
  | Ok _ -> Alcotest.fail "missing file should load as empty"
  | Error e -> Alcotest.failf "missing file should not error: %s" e

let test_wal_hex_float_bitexact =
  qcheck ~count:300 "wal ε/δ round-trip bit-exactly"
    QCheck2.Gen.(pair (float_bound_exclusive 100.) (float_bound_exclusive 1.))
    (fun (eps, delta) ->
      let path = tmp_path ".wal" in
      let r = { Wal.tenant = "t"; dataset = "d"; op = Wal.Charge { label = "j"; cost = p ~eps ~delta } } in
      write_wal path [ r ];
      let out = Wal.load path in
      Sys.remove path;
      match out with
      | Ok ([ { Wal.op = Wal.Charge { cost; _ }; _ } ], Wal.Clean) ->
          Int64.bits_of_float cost.Prim.Dp.eps = Int64.bits_of_float eps
          && Int64.bits_of_float cost.Prim.Dp.delta = Int64.bits_of_float delta
      | _ -> false)

let test_wal_torn_tail () =
  let path = tmp_path ".wal" in
  write_wal path sample_records;
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let full_len = String.length contents in
  (* Truncating the file at ANY byte — the state a crash mid-append can
     leave — must load as the surviving record prefix plus a torn tail,
     never an error. *)
  for k = 0 to full_len do
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (String.sub contents 0 k));
    match Wal.load path with
    | Error e -> Alcotest.failf "cut at %d should be a torn tail, got error: %s" k e
    | Ok (records, tail) ->
        let m = List.length records in
        check_true
          (Printf.sprintf "cut at %d yields a record prefix" k)
          (records = List.filteri (fun i _ -> i < m) sample_records);
        (match tail with
        | Wal.Clean ->
            (* a clean load must sit exactly on a frame boundary *)
            check_true
              (Printf.sprintf "clean cut at %d is a frame boundary" k)
              (k = 0 || String.length contents > 0)
        | Wal.Torn dropped ->
            check_true
              (Printf.sprintf "cut at %d reports only tail bytes dropped" k)
              (dropped > 0 && dropped <= k))
  done;
  Sys.remove path

let test_wal_corruption_mid_file () =
  let path = tmp_path ".wal" in
  write_wal path sample_records;
  let contents = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  (* Flip one payload byte of the first frame: CRC fails, and because
     later frames are intact this is corruption, not a torn tail. *)
  let i = 30 in
  Bytes.set contents i (Char.chr (Char.code (Bytes.get contents i) lxor 0x40));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc contents);
  (match Wal.load path with
  | Error e -> check_true "error names corruption" (contains_sub e "corrupt")
  | Ok _ -> Alcotest.fail "mid-file corruption must refuse the journal");
  Sys.remove path

let test_wal_compact () =
  let path = tmp_path ".wal" in
  write_wal path sample_records;
  (* simulate a torn tail, then compact it away *)
  Out_channel.with_open_gen [ Open_append; Open_binary ] 0o600 path (fun oc ->
      Out_channel.output_string oc "PW1 0000dead");
  (match Wal.load path with
  | Ok (records, Wal.Torn _) -> (
      match Wal.compact ~sync:false ~path records with
      | Error e -> Alcotest.failf "compact: %s" e
      | Ok () -> (
          match Wal.load path with
          | Ok (records', Wal.Clean) -> check_true "compaction preserves records" (records' = sample_records)
          | Ok (_, Wal.Torn _) -> Alcotest.fail "compaction left a torn tail"
          | Error e -> Alcotest.failf "reload after compact: %s" e))
  | Ok (_, Wal.Clean) -> Alcotest.fail "expected a torn tail before compaction"
  | Error e -> Alcotest.failf "load with torn tail: %s" e);
  Sys.remove path

let test_wal_histories () =
  let hs = Wal.histories sample_records in
  Alcotest.(check int) "two streams" 2 (List.length hs);
  (match hs with
  | [ ((t1, d1), ops1); ((t2, d2), ops2) ] ->
      Alcotest.(check string) "stream 1 tenant" "acme" t1;
      Alcotest.(check string) "stream 1 dataset" "d1" d1;
      Alcotest.(check int) "stream 1 ops" 9 (List.length ops1);
      Alcotest.(check string) "stream 2 tenant" "beta" t2;
      Alcotest.(check string) "stream 2 dataset" "dx" d2;
      Alcotest.(check int) "stream 2 ops" 3 (List.length ops2);
      check_true "opening finds the Open record with its synth params"
        (Wal.opening ops1
        = Some
            ( Acct.Basic, p ~eps:2.0 ~delta:1e-5,
              Some { Wal.n = 400; dim = 2; axis = 128; frac = 0.5;
                     radius = 0.1 +. 0.2; seed = 3 } ));
      check_true "legacy zcdp opening survives without synth params"
        (Wal.opening ops2 = Some (Acct.Zcdp { slack = 1e-9 }, p ~eps:1.0 ~delta:1e-6, None))
  | _ -> Alcotest.fail "unexpected grouping")

(* --- accountant event stream (satellite: structured events) -------------- *)

let drive_ledger acct =
  (* charge, refused charge, reserve, commit, reserve, release, refused reserve *)
  ignore (Acct.charge acct ~label:"a" (p ~eps:0.5 ~delta:0.0));
  ignore (Acct.charge acct ~label:"big" (p ~eps:99.0 ~delta:0.0));
  (match Acct.reserve acct ~label:"b:fallback" (p ~eps:0.25 ~delta:0.0) with
  | Ok r -> Acct.commit acct r
  | Error _ -> Alcotest.fail "reserve b should fit");
  (match Acct.reserve acct ~label:"c:fallback" (p ~eps:0.25 ~delta:0.0) with
  | Ok r -> Acct.release acct r
  | Error _ -> Alcotest.fail "reserve c should fit");
  ignore (Acct.reserve acct ~label:"huge:fallback" (p ~eps:50.0 ~delta:0.0))

let test_event_stream () =
  let acct = Acct.create ~budget:(p ~eps:2.0 ~delta:1e-5) () in
  let events = ref [] in
  Acct.subscribe acct (fun ev -> events := ev :: !events);
  drive_ledger acct;
  let names =
    List.rev_map
      (function
        | Acct.Charged { label; _ } -> "charged:" ^ label
        | Acct.Refused { label; reserve; _ } ->
            (if reserve then "refused-reserve:" else "refused:") ^ label
        | Acct.Reserved { label; _ } -> "reserved:" ^ label
        | Acct.Committed { label; _ } -> "committed:" ^ label
        | Acct.Released { label; _ } -> "released:" ^ label)
      !events
  in
  Alcotest.(check (list string)) "event sequence"
    [
      "charged:a"; "refused:big"; "reserved:b:fallback"; "committed:b:fallback";
      "reserved:c:fallback"; "released:c:fallback"; "refused-reserve:huge:fallback";
    ]
    names

let test_events_do_not_perturb_ledger () =
  let with_l = Acct.create ~budget:(p ~eps:2.0 ~delta:1e-5) () in
  let without = Acct.create ~budget:(p ~eps:2.0 ~delta:1e-5) () in
  Acct.subscribe with_l (fun _ -> ());
  drive_ledger with_l;
  drive_ledger without;
  check_true "spent identical" (Acct.spent with_l = Acct.spent without);
  check_true "entries identical" (Acct.entries with_l = Acct.entries without);
  check_int "refusals identical" (Acct.refusals without) (Acct.refusals with_l);
  check_true "json identical" (Acct.to_json with_l = Acct.to_json without)

let test_record_of_event () =
  let acct = Acct.create ~budget:(p ~eps:2.0 ~delta:1e-5) () in
  let records = ref [] in
  Acct.subscribe acct (fun ev ->
      records := Wal.record_of_event ~tenant:"t" ~dataset:"d" ev :: !records);
  ignore (Acct.charge acct ~label:"a" (p ~eps:0.5 ~delta:0.0));
  (match Acct.reserve acct ~label:"b" (p ~eps:0.25 ~delta:0.0) with
  | Ok r -> Acct.commit acct r
  | Error _ -> Alcotest.fail "reserve should fit");
  match List.rev !records with
  | [ { Wal.op = Wal.Charge { label = "a"; _ }; _ };
      { Wal.op = Wal.Reserve { rid; label = "b"; _ }; _ };
      { Wal.op = Wal.Commit { rid = rid' }; _ } ] ->
      check_int "commit pairs with its reservation id" rid rid'
  | _ -> Alcotest.fail "unexpected record mapping"

(* --- service lookup (satellite: actionable unknown-dataset error) -------- *)

let test_find_dataset_message () =
  let svc = Engine.Service.create ~domains:1 ~seed:5 () in
  (match Engine.Service.find_dataset svc "nope" with
  | Ok _ -> Alcotest.fail "empty registry cannot resolve"
  | Error m ->
      check_true "names the id" (contains_sub m "\"nope\"");
      check_true "says none registered" (contains_sub m "no datasets are registered"));
  let _, grid, w = small_workload () in
  let _ =
    Engine.Service.register svc ~name:"alpha" ~grid ~budget:(p ~eps:4.0 ~delta:1e-5)
      w.Workload.Synth.points
  in
  let _ =
    Engine.Service.register svc ~name:"beta" ~grid ~budget:(p ~eps:4.0 ~delta:1e-5)
      w.Workload.Synth.points
  in
  match Engine.Service.find_dataset svc "alpah" with
  | Ok _ -> Alcotest.fail "typo must not resolve"
  | Error m ->
      check_true "names the typo'd id" (contains_sub m "\"alpah\"");
      check_true "lists alpha" (contains_sub m "\"alpha\"");
      check_true "lists beta" (contains_sub m "\"beta\"")

let test_run_batch_named_charges_nothing () =
  let svc = Engine.Service.create ~domains:1 ~seed:5 () in
  let _, grid, w = small_workload () in
  let ds =
    Engine.Service.register svc ~name:"alpha" ~grid ~budget:(p ~eps:4.0 ~delta:1e-5)
      w.Workload.Synth.points
  in
  let specs =
    match Engine.Job.parse "quantile q=0.5 axis=0 eps=0.25" with
    | Ok s -> s
    | Error e -> Alcotest.failf "parse: %s" e
  in
  (match Engine.Service.run_batch_named svc ~dataset:"missing" specs with
  | Ok _ -> Alcotest.fail "missing dataset must error"
  | Error _ -> ());
  let acct = Engine.Registry.accountant ds in
  check_true "failed lookup charged nothing" (Acct.spent acct = p ~eps:0.0 ~delta:0.0);
  check_int "no refusals recorded either" 0 (Acct.refusals acct)

(* --- journal + replay against real batches ------------------------------- *)

(* Journal a real service batch through the event stream, then replay the
   journal into a fresh accountant: the reconstructed ledger must be the
   live ledger, bit for bit. *)
let journaled_batch ?faults ~budget ~jobs () =
  let svc = Engine.Service.create ~domains:2 ~seed:11 ~retries:2 () in
  let _, grid, w = small_workload () in
  let ds = Engine.Service.register svc ~name:"d" ~grid ~budget w.Workload.Synth.points in
  let acct = Engine.Registry.accountant ds in
  let records =
    ref [ { Wal.tenant = "t"; dataset = "d";
            op = Wal.Open { mode = Acct.Basic; budget; synth = None } } ]
  in
  Acct.subscribe acct (fun ev ->
      records := Wal.record_of_event ~tenant:"t" ~dataset:"d" ev :: !records);
  let specs = match Engine.Job.parse jobs with Ok s -> s | Error e -> Alcotest.failf "parse: %s" e in
  let results = Engine.Service.run_batch ?faults svc ~dataset:ds specs in
  (acct, List.rev !records, results)

let check_replay_equal ~what live records =
  match Wal.opening (List.map (fun r -> r.Wal.op) records) with
  | None -> Alcotest.failf "%s: no Open record" what
  | Some (mode, budget, _) -> (
      let fresh = Acct.create ~mode ~budget () in
      match Wal.replay (List.map (fun r -> r.Wal.op) records) fresh with
      | Error e -> Alcotest.failf "%s: replay: %s" what e
      | Ok orphans ->
          check_true (what ^ ": spent bit-identical") (Acct.spent fresh = Acct.spent live);
          check_true (what ^ ": entries identical") (Acct.entries fresh = Acct.entries live);
          check_int (what ^ ": refusals") (Acct.refusals live) (Acct.refusals fresh);
          check_true (what ^ ": reserved identical") (Acct.reserved fresh = Acct.reserved live);
          orphans)

let batch_jobs =
  {|one_cluster t_fraction=0.45 eps=0.8 delta=1e-7 fallback=true
quantile q=0.5 axis=0 eps=0.25 id=median
one_cluster t_fraction=0.4 eps=0.7 delta=1e-7
one_cluster t_fraction=0.45 eps=1.5 delta=1e-7 id=over
quantile q=0.9 axis=1 eps=0.2 id=q90|}

let test_replay_matches_live () =
  (* Budget admits some jobs and refuses others; one fallback reserve. *)
  let live, records, _ = journaled_batch ~budget:(p ~eps:2.0 ~delta:1e-5) ~jobs:batch_jobs () in
  let orphans = check_replay_equal ~what:"plain" live records in
  check_int "no orphans from a settled batch" 0 orphans

let test_replay_matches_live_under_faults () =
  let faults =
    match Engine.Faults.parse "crash@0, crash@2" with
    | Ok f -> f
    | Error e -> Alcotest.failf "faults: %s" e
  in
  let live, records, _ =
    journaled_batch ~faults ~budget:(p ~eps:2.0 ~delta:1e-5) ~jobs:batch_jobs ()
  in
  ignore (check_replay_equal ~what:"faulted" live records)

let test_replay_prefixes () =
  (* Every truncation of the journal — the state a crash can leave —
     replays cleanly into exactly the ledger the prefix describes, and
     the full-journal replay equals the live ledger (no double-charge). *)
  let live, records, _ = journaled_batch ~budget:(p ~eps:2.0 ~delta:1e-5) ~jobs:batch_jobs () in
  let path = tmp_path ".wal" in
  write_wal path records;
  let contents = In_channel.with_open_bin path In_channel.input_all in
  let n = String.length contents in
  let seen = ref 0 in
  for k = 0 to n do
    Out_channel.with_open_bin path (fun oc ->
        Out_channel.output_string oc (String.sub contents 0 k));
    match Wal.load path with
    | Error e -> Alcotest.failf "prefix %d: %s" k e
    | Ok (prefix, _) ->
        let m = List.length prefix in
        check_true
          (Printf.sprintf "prefix at %d bytes is a record prefix" k)
          (prefix = List.filteri (fun i _ -> i < m) records);
        incr seen;
        let ops = List.map (fun r -> r.Wal.op) prefix in
        (match Wal.opening ops with
        | None -> check_int (Printf.sprintf "only the empty prefix lacks Open (%d)" k) 0 m
        | Some (mode, budget, _) -> (
            let fresh = Acct.create ~mode ~budget () in
            match Wal.replay ops fresh with
            | Error e -> Alcotest.failf "prefix %d replay: %s" k e
            | Ok _ -> ()))
  done;
  check_true "exercised every byte cut" (!seen = n + 1);
  (* and the full journal: exactly the live ledger, charged once *)
  ignore (check_replay_equal ~what:"full" live records);
  Sys.remove path

let test_replay_orphaned_reservation_held () =
  let budget = p ~eps:2.0 ~delta:1e-5 in
  let ops =
    [
      Wal.Open { mode = Acct.Basic; budget; synth = None };
      Wal.Charge { label = "a"; cost = p ~eps:0.5 ~delta:0.0 };
      Wal.Reserve { rid = 7; label = "a:fallback"; cost = p ~eps:0.25 ~delta:0.0 };
      (* daemon died before commit/release *)
    ]
  in
  let fresh = Acct.create ~budget () in
  match Wal.replay ops fresh with
  | Error e -> Alcotest.failf "replay: %s" e
  | Ok orphans ->
      check_int "one orphan held" 1 orphans;
      check_true "orphan blocks headroom, visibly"
        (Acct.reserved fresh = [ ("a:fallback", p ~eps:0.25 ~delta:0.0) ]);
      check_true "orphan not spent" (Acct.spent fresh = p ~eps:0.5 ~delta:0.0);
      check_true "headroom reflects the hold"
        (not (Acct.would_accept fresh (p ~eps:1.3 ~delta:0.0)))

let test_replay_divergence_refused () =
  let ops =
    [
      Wal.Open { mode = Acct.Basic; budget = p ~eps:2.0 ~delta:1e-5; synth = None };
      Wal.Charge { label = "a"; cost = p ~eps:1.5 ~delta:0.0 };
      Wal.Charge { label = "b"; cost = p ~eps:1.5 ~delta:0.0 };
    ]
  in
  (* Replay against a smaller budget than the journal was written under:
     the second charge cannot re-accept, and replay must refuse to guess. *)
  let fresh = Acct.create ~budget:(p ~eps:2.0 ~delta:1e-5) () in
  match Wal.replay ops fresh with
  | Ok _ -> Alcotest.fail "diverging journal must not replay"
  | Error e -> check_true "names the diverging label" (contains_sub e "\"b\"")

let test_replay_applies_engine_ops_in_order () =
  let engine_ops =
    [
      Wal.Append { epoch = 1; dim = 2; points = [| 0.5; 0.5 |] };
      Wal.Cached
        { epoch = 1; signature = "sig"; seed = 5; stream = 0;
          output = Engine.Json.Obj [ ("kind", Engine.Json.String "radius") ] };
      Wal.Standing { line = "standing periods=2 eps=0.5 delta=1e-7"; seed = 5; stream = 0 };
      Wal.Retire { epoch = 2; from_ = 0; count = 1 };
    ]
  in
  let ops =
    match engine_ops with
    | [ a; b; c; d ] ->
        [
          Wal.Open { mode = Acct.Basic; budget = p ~eps:2.0 ~delta:1e-5; synth = None };
          a;
          Wal.Charge { label = "j1"; cost = p ~eps:0.5 ~delta:0.0 };
          b; c;
          Wal.Charge { label = "j2"; cost = p ~eps:0.25 ~delta:0.0 };
          d;
        ]
    | _ -> assert false
  in
  let fresh = Acct.create ~budget:(p ~eps:2.0 ~delta:1e-5) () in
  let seen = ref [] in
  match Wal.replay ~on_apply:(fun op -> seen := op :: !seen; Ok ()) ops fresh with
  | Error e -> Alcotest.failf "replay: %s" e
  | Ok orphans ->
      check_int "no orphans" 0 orphans;
      check_true "engine ops surfaced in journal order" (List.rev !seen = engine_ops);
      check_true "engine ops did not perturb the ledger"
        (Acct.spent fresh = p ~eps:0.75 ~delta:0.0)

(* An on_apply that cannot reproduce the journaled engine state — e.g. an
   append whose replay lands on a different epoch — must abort the replay
   with its message, not be ignored. *)
let test_replay_on_apply_divergence () =
  let ops =
    [
      Wal.Open { mode = Acct.Basic; budget = p ~eps:2.0 ~delta:1e-5; synth = None };
      Wal.Charge { label = "a"; cost = p ~eps:0.5 ~delta:0.0 };
      Wal.Append { epoch = 7; dim = 2; points = [| 0.5; 0.5 |] };
    ]
  in
  let fresh = Acct.create ~budget:(p ~eps:2.0 ~delta:1e-5) () in
  let on_apply = function
    | Wal.Append { epoch; _ } ->
        Error (Printf.sprintf "journaled append produced epoch 1, journal says %d" epoch)
    | _ -> Ok ()
  in
  match Wal.replay ~on_apply ops fresh with
  | Ok _ -> Alcotest.fail "diverging engine-state op must abort the replay"
  | Error e ->
      check_true "marked as divergence" (contains_sub e "diverged");
      check_true "carries the on_apply message" (contains_sub e "journal says 7")

(* --- admission ----------------------------------------------------------- *)

let test_admission_shed_reasons () =
  (* No executor: the queue only fills, so verdicts are deterministic. *)
  let adm = Server.Admission.create ~capacity:1 in
  check_true "first fits" (Server.Admission.submit adm (fun () -> ()) = Ok ());
  check_true "second sheds queue_full"
    (Server.Admission.submit adm (fun () -> ()) = Error Wire.Queue_full);
  check_true "control bypasses capacity"
    (Server.Admission.submit adm ~control:true (fun () -> ()) = Ok ());
  let c = Server.Admission.counter () in
  check_true "cap 0 sheds tenant_cap"
    (Server.Admission.submit adm ~slot:(c, 0) (fun () -> ()) = Error Wire.Tenant_cap);
  check_int "shed did not take a slot" 0 (Server.Admission.in_flight c)

let test_admission_executes_and_drains () =
  let adm = Server.Admission.create ~capacity:16 in
  let ran = ref [] and m = Mutex.create () in
  let push i =
    Mutex.lock m;
    ran := i :: !ran;
    Mutex.unlock m
  in
  let c = Server.Admission.counter () in
  for i = 1 to 5 do
    check_true "submit ok" (Server.Admission.submit adm ~slot:(c, 8) (fun () -> push i) = Ok ())
  done;
  let exec = Thread.create Server.Admission.run adm in
  Server.Admission.drain adm;
  Thread.join exec;
  Alcotest.(check (list int)) "ran in submission order" [ 1; 2; 3; 4; 5 ] (List.rev !ran);
  check_int "slots returned" 0 (Server.Admission.in_flight c);
  check_true "post-drain submissions shed as draining"
    (Server.Admission.submit adm (fun () -> ()) = Error Wire.Draining)

(* --- wire protocol ------------------------------------------------------- *)

let roundtrip_request req =
  let line = Wire.request_to_line { Wire.rid = 42; request = req } in
  check_true "one line" (String.index_opt line '\n' = Some (String.length line - 1));
  match Wire.request_of_line (String.trim line) with
  | Ok { Wire.rid = 42; request } -> check_true "request round-trips" (request = req)
  | Ok _ -> Alcotest.fail "rid lost"
  | Error e -> Alcotest.failf "parse back: %s" e.Wire.message

let test_wire_request_roundtrip () =
  List.iter roundtrip_request
    [
      Wire.Hello { version = Wire.version; tenant = "acme"; token = "s3cret" };
      Wire.Register
        { dataset = "d1"; n = 800; dim = 2; axis = 128; frac = 0.5; radius = 0.05;
          seed = 9; budget = p ~eps:2.0 ~delta:1e-5; mode = Acct.Zcdp { slack = 1e-9 } };
      Wire.Run { dataset = "d1"; jobs = "quantile q=0.5 eps=0.1\n# c\n"; seed = Some 7 };
      Wire.Run { dataset = "d1"; jobs = "x"; seed = None };
      Wire.Ledger { dataset = "d1" };
      Wire.Append { dataset = "d1"; n = 120; seed = 4; frac = 0.4; radius = 0.07 };
      Wire.Retire { dataset = "d1"; from_ = 10; count = 25 };
      Wire.Epoch { dataset = "d1" };
      Wire.Standing
        { dataset = "d1"; id = "sq"; t_fraction = 0.45; eps = 1.5; delta = 3e-7;
          periods = 3; seed = Some 9 };
      Wire.Standing
        { dataset = "d1"; id = "watch"; t_fraction = 0.5; eps = 0.9; delta = 0.;
          periods = 1; seed = None };
      Wire.Settle { dataset = "d1"; action = Wire.Commit_orphans; label = Some "sq#2" };
      Wire.Settle { dataset = "d1"; action = Wire.Release_orphans; label = None };
      Wire.Datasets;
      Wire.Metrics;
      Wire.Ping;
    ]

let test_settle_reply_roundtrip () =
  let reply =
    {
      Wire.action = Wire.Release_orphans;
      settled =
        [
          { Wire.label = "sq#2"; eps = 0.5; delta = 1e-7 };
          { Wire.label = "sq#3"; eps = 0.5; delta = 1e-7 };
        ];
      remaining = 1;
    }
  in
  (match Wire.settle_reply_of_json (Wire.settle_reply_to_json reply) with
  | Ok r -> check_true "settle reply round-trips" (r = reply)
  | Error e -> Alcotest.failf "settle reply: %s" e);
  check_true "action names round-trip"
    (Wire.settle_action_of_string (Wire.settle_action_name Wire.Commit_orphans)
     = Some Wire.Commit_orphans
    && Wire.settle_action_of_string (Wire.settle_action_name Wire.Release_orphans)
       = Some Wire.Release_orphans
    && Wire.settle_action_of_string "shrug" = None)

let test_wire_reply_roundtrip () =
  let ok_line = Wire.reply_to_line ~rid:7 (Ok (Engine.Json.Obj [ ("x", Engine.Json.Int 1) ])) in
  (match Wire.reply_of_line (String.trim ok_line) with
  | Ok (7, Ok payload) ->
      check_true "payload field survives"
        (Option.bind (Engine.Json.member "x" payload) Engine.Json.to_int = Some 1)
  | _ -> Alcotest.fail "ok reply roundtrip");
  let errs =
    [
      Wire.Bad_request; Wire.Unsupported_version; Wire.Unauthorized; Wire.Unknown_dataset;
      Wire.Conflict; Wire.Rejected Wire.Queue_full; Wire.Rejected Wire.Tenant_cap;
      Wire.Rejected Wire.Draining; Wire.Internal;
    ]
  in
  List.iter
    (fun code ->
      let line = Wire.reply_to_line ~rid:9 (Error { Wire.code; message = "m" }) in
      check_true "error reply declares charged:false on the wire"
        (contains_sub line "\"charged\": false" || contains_sub line "\"charged\":false");
      match Wire.reply_of_line (String.trim line) with
      | Ok (9, Error e) -> check_true "code round-trips" (e.Wire.code = code)
      | _ -> Alcotest.fail "error reply roundtrip")
    errs

(* --- daemon end-to-end --------------------------------------------------- *)

let daemon_cfg ~dir ?(capacity = 16) ?(tenants = [ { Server.Tenants.name = "acme"; token = "s3cret"; max_in_flight = 8 } ]) () =
  {
    Server.Daemon.default_config with
    listen = `Unix (Filename.concat dir "d.sock");
    wal_path = Filename.concat dir "d.wal";
    tenants;
    capacity;
    domains = 2;
    retries = 2;
    seed = 1;
    sync = false;  (* keep the suite fast; sync-mode is covered by CI smoke *)
  }

let with_daemon cfg f =
  match Server.Daemon.start cfg with
  | Error e -> Alcotest.failf "daemon start: %s" e
  | Ok d ->
      Fun.protect ~finally:(fun () -> Server.Daemon.stop d) (fun () -> f d)

let connect cfg = Server.Client.connect cfg.Server.Daemon.listen

let expect_ok what = function
  | Ok v -> v
  | Error f -> Alcotest.failf "%s: %s" what (Server.Client.fail_message f)

let temp_dir () =
  let d = Filename.temp_file "privclusterd" ".d" in
  Sys.remove d;
  Unix.mkdir d 0o700;
  d

let soak_jobs = "one_cluster t_fraction=0.45 eps=0.3 delta=1e-7\nquantile q=0.5 axis=0 eps=0.1\n"

let test_daemon_lifecycle () =
  let dir = temp_dir () in
  let cfg = daemon_cfg ~dir () in
  with_daemon cfg (fun _d ->
      (* auth is enforced *)
      (match connect cfg ~tenant:"acme" ~token:"wrong" with
      | Ok _ -> Alcotest.fail "bad token must not connect"
      | Error (`Server e) -> check_true "unauthorized" (e.Wire.code = Wire.Unauthorized)
      | Error (`Transport m) -> Alcotest.failf "transport: %s" m);
      (match connect cfg ~tenant:"ghost" ~token:"s3cret" with
      | Ok _ -> Alcotest.fail "unknown tenant must not connect"
      | Error _ -> ());
      let c = expect_ok "connect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      ignore (expect_ok "ping" (Server.Client.ping c));
      let reg =
        expect_ok "register"
          (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
             ~budget:(p ~eps:2.0 ~delta:1e-5) ())
      in
      check_true "fresh dataset is not a replay"
        (Engine.Json.member "replayed" reg = Some (Engine.Json.Bool false));
      (* duplicate registration conflicts *)
      (match
         Server.Client.register c ~dataset:"d1" ~n:400 ~budget:(p ~eps:2.0 ~delta:1e-5) ()
       with
      | Error (`Server e) -> check_true "conflict" (e.Wire.code = Wire.Conflict)
      | _ -> Alcotest.fail "duplicate register must conflict");
      (* unknown dataset carries the actionable message end-to-end *)
      (match Server.Client.run c ~dataset:"dl" ~jobs:soak_jobs () with
      | Error (`Server e) ->
          check_true "names the typo" (contains_sub e.Wire.message "\"dl\"");
          check_true "lists registered" (contains_sub e.Wire.message "\"d1\"")
      | _ -> Alcotest.fail "unknown dataset must fail");
      let run1 = expect_ok "run" (Server.Client.run c ~dataset:"d1" ~seed:42 ~jobs:soak_jobs ()) in
      (match Option.bind (Engine.Json.member "results" run1) Engine.Json.to_list with
      | Some rs -> check_int "both jobs answered" 2 (List.length rs)
      | None -> Alcotest.fail "run reply has results");
      let ledger = expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1") in
      check_true "ledger names the dataset"
        (Engine.Json.member "dataset" ledger = Some (Engine.Json.String "d1"));
      let metrics = expect_ok "metrics" (Server.Client.metrics c) in
      check_true "metrics exposes budget" (contains_sub metrics "privcluster_budget_epsilon");
      check_true "metrics exposes daemon gauges" (contains_sub metrics "privclusterd_queue_depth");
      let ds = expect_ok "datasets" (Server.Client.datasets c) in
      (match Option.bind (Engine.Json.member "datasets" ds) Engine.Json.to_list with
      | Some l -> check_int "one dataset" 1 (List.length l)
      | None -> Alcotest.fail "datasets reply");
      Server.Client.close c)

(* The crash-recovery property, end to end: journal a session, "crash"
   (drop the daemon without settling, leave the WAL with a torn tail),
   restart on the same WAL, re-register — the replayed ledger must equal
   the pre-crash ledger and an over-budget job must still be refused. *)
let test_daemon_crash_recovery () =
  let dir = temp_dir () in
  let cfg = daemon_cfg ~dir () in
  let spent_before = ref Engine.Json.Null in
  with_daemon cfg (fun _d ->
      let c = expect_ok "connect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      ignore
        (expect_ok "register"
           (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
              ~budget:(p ~eps:1.0 ~delta:1e-5) ()));
      (* spend close to the 1.0 budget: 0.3+0.1, then 0.3+0.1 again *)
      ignore (expect_ok "run1" (Server.Client.run c ~dataset:"d1" ~seed:1 ~jobs:soak_jobs ()));
      ignore (expect_ok "run2" (Server.Client.run c ~dataset:"d1" ~seed:2 ~jobs:soak_jobs ()));
      let ledger = expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1") in
      spent_before :=
        Option.value ~default:Engine.Json.Null
          (Option.bind (Engine.Json.member "ledger" ledger) (Engine.Json.member "spent"));
      Server.Client.close c);
  (* simulate the crash window: a torn half-frame at the tail *)
  Out_channel.with_open_gen [ Open_append; Open_binary ] 0o600 cfg.Server.Daemon.wal_path
    (fun oc -> Out_channel.output_string oc "PW1 000000");
  with_daemon cfg (fun _d ->
      let c = expect_ok "reconnect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      (* wrong budget on re-register is refused — the journal pins it *)
      (match
         Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
           ~budget:(p ~eps:9.0 ~delta:1e-5) ()
       with
      | Error (`Server e) -> check_true "budget mismatch conflicts" (e.Wire.code = Wire.Conflict)
      | _ -> Alcotest.fail "journal must pin the budget");
      (* so are different synthesis parameters — replaying this ledger's
         mutations and cached results against a different base dataset
         would diverge silently *)
      (match
         Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:4
           ~budget:(p ~eps:1.0 ~delta:1e-5) ()
       with
      | Error (`Server e) ->
          check_true "synth mismatch conflicts" (e.Wire.code = Wire.Conflict);
          check_true "conflict names the journaled parameters"
            (contains_sub e.Wire.message "seed=3")
      | _ -> Alcotest.fail "journal must pin the synthesis parameters");
      let reg =
        expect_ok "re-register"
          (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
             ~budget:(p ~eps:1.0 ~delta:1e-5) ())
      in
      check_true "recovered by replay" (Engine.Json.member "replayed" reg = Some (Engine.Json.Bool true));
      let ledger = expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1") in
      let spent_after =
        Option.value ~default:Engine.Json.Null
          (Option.bind (Engine.Json.member "ledger" ledger) (Engine.Json.member "spent"))
      in
      check_true "spend survived the crash exactly" (!spent_before = spent_after && spent_after <> Engine.Json.Null);
      (* budget is nearly exhausted (0.8 of 1.0 spent): the next batch's
         one_cluster (0.3) must be refused, and refusal is free *)
      let run3 = expect_ok "run3" (Server.Client.run c ~dataset:"d1" ~seed:3 ~jobs:soak_jobs ()) in
      (match Option.bind (Engine.Json.member "results" run3) Engine.Json.to_list with
      | Some [ r1; r2 ] ->
          check_true "over-budget job still refused after recovery"
            (Option.bind (Engine.Json.member "status" r1) Engine.Json.to_str = Some "refused");
          check_true "affordable job still runs"
            (Option.bind (Engine.Json.member "status" r2) Engine.Json.to_str = Some "ok")
      | _ -> Alcotest.fail "run3 results");
      Server.Client.close c);
  ()

let get_int k j = Option.bind (Engine.Json.member k j) Engine.Json.to_int

let attempts_of payload =
  match Option.bind (Engine.Json.member "results" payload) Engine.Json.to_list with
  | None -> Alcotest.fail "results missing"
  | Some rs -> List.map (fun r -> Option.value ~default:(-1) (get_int "attempts" r)) rs

let spent_eps_of ledger =
  match
    Option.bind (Engine.Json.member "ledger" ledger) (fun l ->
        Option.bind (Engine.Json.member "spent" l) (fun s ->
            Option.bind (Engine.Json.member "eps" s) Engine.Json.to_float))
  with
  | Some e -> e
  | None -> Alcotest.fail "ledger.spent.eps missing"

(* Epochs and the result cache across a crash: the WAL must replay the
   dataset to the same epoch, the same cached answers (a warm re-run is
   still attempts=0 and charges nothing), and the same spend. *)
let cache_jobs = "one_cluster t_fraction=0.45 eps=2.0 delta=1e-7\nquantile q=0.5 axis=0 eps=0.1\n"

let test_daemon_epoch_crash_recovery () =
  let dir = temp_dir () in
  let cfg = daemon_cfg ~dir () in
  let spent_before = ref nan in
  with_daemon cfg (fun _d ->
      let c = expect_ok "connect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      ignore
        (expect_ok "register"
           (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
              ~budget:(p ~eps:6.0 ~delta:1e-4) ()));
      ignore (expect_ok "cold" (Server.Client.run c ~dataset:"d1" ~seed:2 ~jobs:cache_jobs ()));
      let spent1 = spent_eps_of (expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1")) in
      let warm = expect_ok "warm" (Server.Client.run c ~dataset:"d1" ~seed:2 ~jobs:cache_jobs ()) in
      check_true "identical re-run is all cache hits" (attempts_of warm = [ 0; 0 ]);
      check_float ~tol:0. "cache hits charged nothing" spent1
        (spent_eps_of (expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1")));
      let app = expect_ok "append" (Server.Client.append c ~dataset:"d1" ~n:100 ~seed:7 ()) in
      check_true "append advances the epoch" (get_int "epoch" app = Some 1);
      check_true "append grows n" (get_int "n" app = Some 500);
      let re = expect_ok "requery" (Server.Client.run c ~dataset:"d1" ~seed:2 ~jobs:cache_jobs ()) in
      check_true "new epoch recomputes" (List.for_all (fun a -> a >= 1) (attempts_of re));
      let ep = expect_ok "epoch" (Server.Client.epoch c ~dataset:"d1") in
      check_true "epoch verb reports the transition"
        (get_int "epoch" ep = Some 1 && get_int "n" ep = Some 500);
      (match Engine.Json.member "result_cache" ep with
      | Some rc -> check_true "epoch verb reports the cache hits" (get_int "hits" rc = Some 2)
      | None -> Alcotest.fail "epoch reply lacks result_cache");
      spent_before :=
        spent_eps_of (expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1"));
      Server.Client.close c);
  (* crash window: a torn half-frame at the WAL tail *)
  Out_channel.with_open_gen [ Open_append; Open_binary ] 0o600 cfg.Server.Daemon.wal_path
    (fun oc -> Out_channel.output_string oc "PW1 000000");
  with_daemon cfg (fun _d ->
      let c = expect_ok "reconnect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      let reg =
        expect_ok "re-register"
          (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
             ~budget:(p ~eps:6.0 ~delta:1e-4) ())
      in
      check_true "recovered by replay" (Engine.Json.member "replayed" reg = Some (Engine.Json.Bool true));
      let ep = expect_ok "epoch" (Server.Client.epoch c ~dataset:"d1") in
      check_true "replayed to the same epoch"
        (get_int "epoch" ep = Some 1 && get_int "n" ep = Some 500);
      check_float ~tol:0. "spend survived exactly" !spent_before
        (spent_eps_of (expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1")));
      (* The replayed cache serves the post-append answers: still free. *)
      let warm = expect_ok "warm" (Server.Client.run c ~dataset:"d1" ~seed:2 ~jobs:cache_jobs ()) in
      check_true "cached answers survived the crash" (attempts_of warm = [ 0; 0 ]);
      check_float ~tol:0. "and still charge nothing" !spent_before
        (spent_eps_of (expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1")));
      Server.Client.close c);
  ()

(* Operator settlement of outstanding reservations, end to end: a standing
   query's pending slices are visible, committable one by one (by label)
   and releasable in bulk, with the ledger moving only on commit. *)
let test_daemon_settle () =
  let dir = temp_dir () in
  let cfg = daemon_cfg ~dir () in
  with_daemon cfg (fun _d ->
      let c = expect_ok "connect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      ignore
        (expect_ok "register"
           (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
              ~budget:(p ~eps:4.0 ~delta:1e-4) ()));
      let st =
        expect_ok "standing"
          (Server.Client.standing c ~dataset:"d1" ~id:"sq" ~t_fraction:0.45 ~eps:1.5
             ~delta:3e-7 ~periods:3 ~seed:9 ())
      in
      (match Option.bind (Engine.Json.member "results" st) Engine.Json.to_list with
      | Some rs -> check_int "acceptance plus first tick" 2 (List.length rs)
      | None -> Alcotest.fail "standing reply has results");
      check_float ~tol:1e-12 "tick 1 committed one slice" 0.5
        (spent_eps_of (expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1")));
      let commit =
        expect_ok "settle commit"
          (Server.Client.settle c ~dataset:"d1" ~action:Wire.Commit_orphans ~label:"sq#2" ())
      in
      check_true "commit settles exactly the labelled slice"
        (List.map (fun (s : Wire.settled_reservation) -> s.Wire.label) commit.Wire.settled
        = [ "sq#2" ]);
      check_int "one orphan remains" 1 commit.Wire.remaining;
      check_float ~tol:1e-12 "commit moved the ledger" 1.0
        (spent_eps_of (expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1")));
      let release =
        expect_ok "settle release"
          (Server.Client.settle c ~dataset:"d1" ~action:Wire.Release_orphans ())
      in
      check_true "release settles the rest"
        (List.map (fun (s : Wire.settled_reservation) -> s.Wire.label) release.Wire.settled
        = [ "sq#3" ]);
      check_int "nothing remains" 0 release.Wire.remaining;
      check_float ~tol:1e-12 "release moved nothing" 1.0
        (spent_eps_of (expect_ok "ledger" (Server.Client.ledger c ~dataset:"d1")));
      let again =
        expect_ok "settle idempotent"
          (Server.Client.settle c ~dataset:"d1" ~action:Wire.Release_orphans ())
      in
      check_true "nothing left to settle" (again.Wire.settled = [] && again.Wire.remaining = 0);
      Server.Client.close c);
  ()

(* Malformed registration parameters must come back as bad_request — not
   raise on the executor thread, which would strand the connection in its
   reply wait and deadlock [stop] on the join (the daemon stopping cleanly
   inside [with_daemon] is part of the property). *)
let test_daemon_register_validation () =
  let dir = temp_dir () in
  let cfg = daemon_cfg ~dir () in
  with_daemon cfg (fun _d ->
      let c = expect_ok "connect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      let expect_bad what attempt =
        match attempt with
        | Error (`Server e) ->
            check_true (what ^ " is bad_request") (e.Wire.code = Wire.Bad_request)
        | Ok _ -> Alcotest.failf "%s must be rejected" what
        | Error (`Transport m) -> Alcotest.failf "%s: transport: %s" what m
      in
      let budget = p ~eps:2.0 ~delta:1e-5 in
      expect_bad "dim 0" (Server.Client.register c ~dataset:"v" ~dim:0 ~budget ());
      expect_bad "negative n" (Server.Client.register c ~dataset:"v" ~n:(-1) ~budget ());
      expect_bad "axis 1" (Server.Client.register c ~dataset:"v" ~axis:1 ~budget ());
      expect_bad "frac 0" (Server.Client.register c ~dataset:"v" ~frac:0.0 ~budget ());
      expect_bad "frac nan" (Server.Client.register c ~dataset:"v" ~frac:nan ~budget ());
      expect_bad "radius nan" (Server.Client.register c ~dataset:"v" ~radius:nan ~budget ());
      (* the daemon is still serving: same connection, and a clean register *)
      ignore (expect_ok "ping after rejects" (Server.Client.ping c));
      ignore
        (expect_ok "valid register still works"
           (Server.Client.register c ~dataset:"v" ~n:200 ~axis:128 ~radius:0.06 ~seed:3
              ~budget ()));
      Server.Client.close c);
  ()

(* A request line longer than the cap — here, bytes with no newline at
   all, sent without authenticating — must get one bad_request reply and
   a closed connection, never an unbounded buffer; the daemon keeps
   serving other clients. *)
let test_daemon_request_line_cap () =
  let dir = temp_dir () in
  let cfg = daemon_cfg ~dir () in
  with_daemon cfg (fun _d ->
      let path =
        match cfg.Server.Daemon.listen with `Unix p -> p | `Tcp _ -> assert false
      in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let junk = Bytes.make 65536 'x' in
      let to_send = Server.Daemon.max_request_bytes + 8192 in
      (try
         let sent = ref 0 in
         while !sent < to_send do
           let k = min (Bytes.length junk) (to_send - !sent) in
           sent := !sent + Unix.write fd junk 0 k
         done
       with Unix.Unix_error (_, _, _) -> ());
      let reply = Buffer.create 256 in
      let buf = Bytes.create 4096 in
      (try
         let rec drain () =
           match Unix.read fd buf 0 (Bytes.length buf) with
           | 0 -> ()
           | n ->
               Buffer.add_subbytes reply buf 0 n;
               drain ()
         in
         drain ()
       with Unix.Unix_error (_, _, _) -> ());
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      check_true "oversized line answered with bad_request"
        (contains_sub (Buffer.contents reply) "bad_request");
      check_true "reply names the cap"
        (contains_sub (Buffer.contents reply)
           (string_of_int Server.Daemon.max_request_bytes));
      (* the daemon survived: a well-behaved client still gets service *)
      let c = expect_ok "connect after abuse" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      ignore (expect_ok "ping after abuse" (Server.Client.ping c));
      Server.Client.close c);
  ()

(* N concurrent clients, M runs each with client-chosen seeds: every
   verdict must equal the same batch run in-process on a lone service —
   the daemon's interleaving must never leak into results. *)
let test_daemon_concurrent_soak () =
  let dir = temp_dir () in
  let n_clients = 3 and n_runs = 3 in
  let cfg = daemon_cfg ~dir () in
  let statuses_of_json payload =
    match Option.bind (Engine.Json.member "results" payload) Engine.Json.to_list with
    | None -> Alcotest.fail "results missing"
    | Some rs ->
        List.map
          (fun r ->
            Option.value ~default:"?"
              (Option.bind (Engine.Json.member "status" r) Engine.Json.to_str))
          rs
  in
  let daemon_verdicts = Array.make n_clients [] in
  with_daemon cfg (fun _d ->
      (* per-client dataset, so budget interleaving is per-dataset *)
      let threads =
        List.init n_clients (fun i ->
            Thread.create
              (fun () ->
                let c = expect_ok "connect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
                let ds = Printf.sprintf "soak%d" i in
                ignore
                  (expect_ok "register"
                     (Server.Client.register c ~dataset:ds ~n:400 ~axis:128 ~radius:0.06
                        ~seed:3 ~budget:(p ~eps:4.0 ~delta:1e-4) ()));
                let vs =
                  List.init n_runs (fun j ->
                      let seed = (100 * i) + j in
                      statuses_of_json
                        (expect_ok "run"
                           (Server.Client.run c ~dataset:ds ~seed ~jobs:soak_jobs ())))
                in
                daemon_verdicts.(i) <- vs;
                Server.Client.close c)
              ())
      in
      List.iter Thread.join threads);
  (* reference: the same batches on a lone in-process service *)
  let svc = Engine.Service.create ~domains:cfg.Server.Daemon.domains ~seed:cfg.Server.Daemon.seed ~retries:cfg.Server.Daemon.retries () in
  let rng = Prim.Rng.create ~seed:(3 + 7919) () in
  let grid = Geometry.Grid.create ~axis_size:128 ~dim:2 in
  let w = Workload.Synth.planted_ball rng ~grid ~n:400 ~cluster_fraction:0.5 ~cluster_radius:0.06 in
  let specs = match Engine.Job.parse soak_jobs with Ok s -> s | Error e -> Alcotest.failf "parse: %s" e in
  for i = 0 to n_clients - 1 do
    let ds =
      Engine.Service.register svc
        ~name:(Printf.sprintf "ref%d" i)
        ~grid ~budget:(p ~eps:4.0 ~delta:1e-4) w.Workload.Synth.points
    in
    List.iteri
      (fun j got ->
        let seed = (100 * i) + j in
        let expect =
          List.map
            (fun (r : Engine.Job.result) -> Engine.Job.status_name r.Engine.Job.status)
            (Engine.Service.run_batch ~seed svc ~dataset:ds specs)
        in
        Alcotest.(check (list string))
          (Printf.sprintf "client %d run %d matches the lone-service reference" i j)
          expect got)
      daemon_verdicts.(i)
  done

(* --- serving telemetry end-to-end ----------------------------------------- *)

let test_daemon_health_stats_metrics () =
  let dir = temp_dir () in
  let cfg = daemon_cfg ~dir () in
  with_daemon cfg (fun _d ->
      let c = expect_ok "connect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      (* health answers before any traffic: every default rule reports,
         none can be firing on an idle daemon. *)
      let st, verdicts, payload = expect_ok "health" (Server.Client.health c) in
      check_true "idle daemon is healthy" (st = Obs.Slo.Ok);
      check_true "default rules all evaluated" (List.length verdicts >= 3);
      check_true "health carries draining:false"
        (Engine.Json.member "draining" payload = Some (Engine.Json.Bool false));
      ignore
        (expect_ok "register"
           (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
              ~budget:(p ~eps:2.0 ~delta:1e-5) ()));
      ignore (expect_ok "run" (Server.Client.run c ~dataset:"d1" ~seed:7 ~jobs:soak_jobs ()));
      (* stats reflects the traffic per verb x tenant *)
      let stats = expect_ok "stats" (Server.Client.stats c) in
      check_true "stats says serving_stats on"
        (Engine.Json.member "serving_stats" stats = Some (Engine.Json.Bool true));
      let rows =
        match Option.bind (Engine.Json.member "requests" stats) Engine.Json.to_list with
        | Some l -> l
        | None -> Alcotest.fail "stats reply has no requests"
      in
      let field k r = Option.bind (Engine.Json.member k r) Engine.Json.to_str in
      check_true "run latency recorded for the tenant"
        (List.exists (fun r -> field "verb" r = Some "run" && field "tenant" r = Some "acme") rows);
      (* the serving families land in the exposition, with summary quantiles *)
      let m1 = expect_ok "metrics" (Server.Client.metrics c) in
      List.iter
        (fun needle -> check_true ("metrics contains " ^ needle) (contains_sub m1 needle))
        [
          "privcluster_request_seconds";
          "quantile=\"0.99\"";
          "privcluster_queue_wait_seconds";
          "privcluster_budget_burn_rate";
          "privcluster_request_sheds_total";
        ];
      (* double scrape: request counters are monotone *)
      let counter_sum text =
        String.split_on_char '\n' text
        |> List.fold_left
             (fun acc line ->
               if
                 String.length line > 33
                 && String.sub line 0 33 = "privcluster_request_seconds_count"
               then
                 match String.rindex_opt line ' ' with
                 | Some i -> (
                     match
                       float_of_string_opt
                         (String.sub line (i + 1) (String.length line - i - 1))
                     with
                     | Some v -> acc +. v
                     | None -> acc)
                 | None -> acc
               else acc)
             0.
      in
      let m2 = expect_ok "metrics" (Server.Client.metrics c) in
      check_true "request counters present" (counter_sum m1 > 0.);
      check_true "request counters monotone across scrapes"
        (counter_sum m2 >= counter_sum m1);
      Server.Client.close c);
  (* with serving stats disabled both verbs still answer, honestly *)
  let dir2 = temp_dir () in
  let cfg2 = { (daemon_cfg ~dir:dir2 ()) with Server.Daemon.serving_stats = false } in
  with_daemon cfg2 (fun _d ->
      let c = expect_ok "connect" (connect cfg2 ~tenant:"acme" ~token:"s3cret") in
      let st, verdicts, payload = expect_ok "health" (Server.Client.health c) in
      check_true "disabled health is ok" (st = Obs.Slo.Ok);
      check_true "disabled health has no verdicts" (verdicts = []);
      check_true "disabled health says so"
        (Engine.Json.member "serving_stats" payload = Some (Engine.Json.Bool false));
      let stats = expect_ok "stats" (Server.Client.stats c) in
      check_true "disabled stats says so"
        (Engine.Json.member "serving_stats" stats = Some (Engine.Json.Bool false));
      Server.Client.close c)

let test_daemon_exemplar_ring () =
  let dir = temp_dir () in
  let slow_dir = Filename.concat dir "slow" in
  (* threshold 0: every request is "slow", so the ring must prune. *)
  let cfg =
    {
      (daemon_cfg ~dir ()) with
      Server.Daemon.slow_threshold_ms = 0.;
      slow_log = Some slow_dir;
      slow_keep = 3;
    }
  in
  with_daemon cfg (fun _d ->
      let c = expect_ok "connect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
      ignore
        (expect_ok "register"
           (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
              ~budget:(p ~eps:4.0 ~delta:1e-4) ()));
      for i = 1 to 5 do
        ignore (expect_ok "run" (Server.Client.run c ~dataset:"d1" ~seed:i ~jobs:soak_jobs ()))
      done;
      Server.Client.close c);
  (* stop drained the executor, so the ring is quiescent *)
  let read_ring () =
    Sys.readdir slow_dir |> Array.to_list |> List.filter (fun f -> f <> "") |> List.sort compare
  in
  let files = read_ring () in
  check_true "ring is non-empty" (files <> []);
  check_true "ring is bounded to slow_keep" (List.length files <= 3);
  List.iter
    (fun f ->
      check_true ("exemplar name shape: " ^ f)
        (String.length f > 9 && String.sub f 0 9 = "exemplar-");
      let contents =
        In_channel.with_open_text (Filename.concat slow_dir f) In_channel.input_all
      in
      match Obs.Json.parse contents with
      | Error e -> Alcotest.failf "exemplar %s does not parse: %s" f e
      | Ok doc -> (
          match Obs.Trace.validate doc with
          | Error e -> Alcotest.failf "exemplar %s is not a valid trace: %s" f e
          | Ok () -> ()))
    files;
  (* a restarted daemon resumes the sequence past the survivors instead
     of overwriting them *)
  let newest_before = List.fold_left max "" files in
  let cfg2 = { cfg with Server.Daemon.wal_path = Filename.concat dir "d2.wal" } in
  with_daemon cfg2 (fun _d ->
      let c = expect_ok "connect" (connect cfg2 ~tenant:"acme" ~token:"s3cret") in
      ignore
        (expect_ok "register"
           (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
              ~budget:(p ~eps:4.0 ~delta:1e-4) ()));
      Server.Client.close c);
  let files2 = read_ring () in
  check_true "ring still bounded after restart" (List.length files2 <= 3);
  check_true "restart resumed the sequence"
    (List.exists (fun f -> f > newest_before) files2)

(* Sampling must be invisible in results: with --trace-sample hashing every
   request into the exemplar ring, register/run/epoch replies — including
   the result-cache hit/miss counters, which pin cache-key identity — are
   bit-identical to a sampling-off daemon, timing fields aside. *)
let rec strip_timing = function
  | Engine.Json.Obj fields ->
      Engine.Json.Obj
        (List.filter_map
           (fun (k, v) ->
             if k = "latency_ms" || k = "elapsed_ms" then None else Some (k, strip_timing v))
           fields)
  | Engine.Json.List l -> Engine.Json.List (List.map strip_timing l)
  | j -> j

let test_daemon_sampling_deterministic () =
  let observe cfg =
    with_daemon cfg (fun _d ->
        let c = expect_ok "connect" (connect cfg ~tenant:"acme" ~token:"s3cret") in
        let reg =
          expect_ok "register"
            (Server.Client.register c ~dataset:"d1" ~n:400 ~axis:128 ~radius:0.06 ~seed:3
               ~budget:(p ~eps:4.0 ~delta:1e-4) ())
        in
        let r1 = expect_ok "run" (Server.Client.run c ~dataset:"d1" ~seed:11 ~jobs:soak_jobs ()) in
        (* identical resubmission: answered from the result cache iff the
           cache key is unchanged by sampling *)
        let r2 = expect_ok "run" (Server.Client.run c ~dataset:"d1" ~seed:11 ~jobs:soak_jobs ()) in
        let ep = expect_ok "epoch" (Server.Client.epoch c ~dataset:"d1") in
        Server.Client.close c;
        List.map
          (fun j -> Engine.Json.to_string (strip_timing j))
          [ reg; r1; r2; ep ])
  in
  let dir_a = temp_dir () and dir_b = temp_dir () in
  let slow_dir = Filename.concat dir_a "slow" in
  let sampled =
    {
      (daemon_cfg ~dir:dir_a ()) with
      Server.Daemon.trace_sample = 1;
      slow_log = Some slow_dir;
    }
  in
  let plain = daemon_cfg ~dir:dir_b () in
  let a = observe sampled and b = observe plain in
  List.iteri
    (fun i (x, y) ->
      Alcotest.(check string)
        (Printf.sprintf "reply %d bit-identical with sampling on" i)
        y x)
    (List.combine a b);
  (* the cache-hit counters agree and the second run genuinely hit *)
  (match Obs.Json.parse (List.nth a 3) with
  | Ok ep ->
      let hits =
        Option.bind (Engine.Json.member "result_cache" ep) (Engine.Json.member "hits")
      in
      check_true "second run hit the result cache"
        (match Option.bind hits Engine.Json.to_int with Some h -> h > 0 | None -> false)
  | Error e -> Alcotest.failf "epoch reply does not parse back: %s" e);
  (* sampling was genuinely active: every request left an exemplar *)
  check_true "sampled daemon wrote exemplars"
    (Sys.file_exists slow_dir && Sys.readdir slow_dir <> [||])

let suite =
  [
    case "crc32 vectors and hex" test_crc_vectors;
    case "wal roundtrip" test_wal_roundtrip;
    case "wal missing file is empty" test_wal_missing_file;
    test_wal_hex_float_bitexact;
    case "wal torn tail tolerated" test_wal_torn_tail;
    case "wal mid-file corruption refused" test_wal_corruption_mid_file;
    case "wal compaction" test_wal_compact;
    case "wal histories and opening" test_wal_histories;
    case "accountant event stream" test_event_stream;
    case "events don't perturb the ledger" test_events_do_not_perturb_ledger;
    case "record_of_event pairs reservations" test_record_of_event;
    case "find_dataset names ids" test_find_dataset_message;
    case "failed lookup charges nothing" test_run_batch_named_charges_nothing;
    case "replay equals live ledger" test_replay_matches_live;
    case "replay equals live under faults" test_replay_matches_live_under_faults;
    slow_case "every crash prefix replays" test_replay_prefixes;
    case "orphaned reservation held" test_replay_orphaned_reservation_held;
    case "diverging journal refused" test_replay_divergence_refused;
    case "replay applies engine ops in order" test_replay_applies_engine_ops_in_order;
    case "replay aborts on engine-state divergence" test_replay_on_apply_divergence;
    case "admission shed reasons" test_admission_shed_reasons;
    case "admission executes and drains" test_admission_executes_and_drains;
    case "wire request roundtrip" test_wire_request_roundtrip;
    case "wire reply roundtrip" test_wire_reply_roundtrip;
    case "settle reply roundtrip" test_settle_reply_roundtrip;
    slow_case "daemon lifecycle" test_daemon_lifecycle;
    slow_case "daemon crash recovery" test_daemon_crash_recovery;
    slow_case "daemon epoch and cache crash recovery" test_daemon_epoch_crash_recovery;
    slow_case "daemon settle" test_daemon_settle;
    slow_case "daemon register validation" test_daemon_register_validation;
    slow_case "daemon request line cap" test_daemon_request_line_cap;
    slow_case "daemon concurrent soak" test_daemon_concurrent_soak;
    slow_case "daemon health, stats and serving metrics" test_daemon_health_stats_metrics;
    slow_case "daemon exemplar ring bounded and valid" test_daemon_exemplar_ring;
    slow_case "daemon sampling leaves outputs bit-identical" test_daemon_sampling_deterministic;
  ]
