(* Flat, cache-friendly point storage.

   A pointset owns (or shares) a single row-major [float array] of length
   n·d; point [i] lives at [st.(offs.(i)) .. st.(offs.(i) + dim - 1)].
   Subsets and filters are index views over the same storage — no
   coordinate is copied.  All counting loops run on the flat layout and
   accumulate in the same order as the historical boxed implementation, so
   results are bit-identical. *)

type t = { st : float array; offs : int array; dim : int }

let create points =
  let count = Array.length points in
  if count = 0 then invalid_arg "Pointset.create: empty";
  let dim = Vec.dim points.(0) in
  Array.iter
    (fun p -> if Vec.dim p <> dim then invalid_arg "Pointset.create: mixed dimensions")
    points;
  let st = Array.make (count * dim) 0. in
  Array.iteri (fun i p -> Vec.set_row st ~off:(i * dim) p) points;
  { st; offs = Array.init count (fun i -> i * dim); dim }

let of_storage ~dim st =
  if dim < 1 then invalid_arg "Pointset.of_storage: dim must be >= 1";
  let len = Array.length st in
  if len = 0 then invalid_arg "Pointset.of_storage: empty";
  if len mod dim <> 0 then invalid_arg "Pointset.of_storage: length not a multiple of dim";
  { st; offs = Array.init (len / dim) (fun i -> i * dim); dim }

let view ~storage ~offs ~dim =
  if dim < 1 then invalid_arg "Pointset.view: dim must be >= 1";
  if Array.length offs = 0 then invalid_arg "Pointset.view: empty";
  let len = Array.length storage in
  Array.iter
    (fun off ->
      if off < 0 || off + dim > len then invalid_arg "Pointset.view: offset out of storage")
    offs;
  { st = storage; offs = Array.copy offs; dim }

let n t = Array.length t.offs
let dim t = t.dim
let storage t = t.st
let row_offset t i = t.offs.(i)
let row_offsets t = t.offs
let point t i = Vec.of_row t.st ~off:t.offs.(i) ~dim:t.dim
let points t = Array.init (n t) (point t)
let coords_axis t axis =
  if axis < 0 || axis >= t.dim then invalid_arg "Pointset.coords_axis: axis out of range";
  Array.map (fun off -> t.st.(off + axis)) t.offs

let map_points f t = create (Array.map f (points t))

let subset t ~indices = { t with offs = Array.map (fun i -> t.offs.(i)) indices }

let filter_rows pred t =
  let keep = ref [] and kept = ref 0 in
  for i = n t - 1 downto 0 do
    if pred t.st t.offs.(i) then begin
      keep := t.offs.(i) :: !keep;
      incr kept
    end
  done;
  let offs = Array.make !kept 0 in
  List.iteri (fun j off -> offs.(j) <- off) !keep;
  { t with offs }

let filter pred t = filter_rows (fun st off -> pred (Vec.of_row st ~off ~dim:t.dim)) t

let ball_count t ~center ~radius =
  if Vec.dim center <> t.dim then invalid_arg "Pointset.ball_count: dimension mismatch";
  let r2 = radius *. radius in
  Kernel.count_within ~st:t.st ~offs:t.offs ~lo:0 ~hi:(n t - 1) ~q:center ~qoff:0
    ~dim:t.dim ~r2

let ball_points t ~center ~radius =
  let r2 = radius *. radius in
  points (filter_rows (fun st off -> Vec.dist_sq_to_row st ~off ~dim:t.dim center <= r2) t)

let capped_ball_count t ~cap ~center ~radius = min cap (ball_count t ~center ~radius)

let top_average counts ~k =
  let len = Array.length counts in
  if k <= 0 || k > len then invalid_arg "Pointset.top_average: bad k";
  let sorted = Array.copy counts in
  Array.sort (fun a b -> Float.compare b a) sorted;
  let acc = ref 0. in
  for i = 0 to k - 1 do
    acc := !acc +. sorted.(i)
  done;
  !acc /. float_of_int k

let score_l_direct t ~cap ~radius =
  if radius < 0. then 0.
  else begin
    let r2 = radius *. radius in
    let count = n t in
    let counts =
      Array.init count (fun i ->
          Kernel.count_within ~st:t.st ~offs:t.offs ~lo:0 ~hi:(count - 1) ~q:t.st
            ~qoff:t.offs.(i) ~dim:t.dim ~r2)
    in
    Kernel.top_avg_capped ~counts ~off:0 ~len:count ~cap ~k:(min cap count)
  end

type backend =
  | Dense of float array array  (** per-point sorted distance rows *)
  | Tree of Kdtree.t

type index = { ps : t; backend : backend }

(* One dense row: distances from point [i] to every point, sorted.  Scans
   the flat storage once per row; identical float sequence to the boxed
   per-point [Vec.dist] map it replaces. *)
let dense_row ps i =
  let count = n ps in
  let row = Array.make count 0. in
  Kernel.dists_to_rows ~st:ps.st ~offs:ps.offs ~n:count ~q:ps.st ~qoff:ps.offs.(i)
    ~dim:ps.dim ~out:row;
  Kernel.sort_floats row;
  row

let build_index ?(domains = 1) ps =
  let count = n ps in
  let rows = Array.make count [||] in
  let fill lo hi =
    for i = lo to hi - 1 do
      rows.(i) <- dense_row ps i
    done
  in
  let domains = max 1 (min domains count) in
  if domains <= 1 then fill 0 count
  else begin
    (* Rows are independent; each domain fills a contiguous chunk, so the
       result (and every downstream query) is identical for any [domains]. *)
    let chunk = (count + domains - 1) / domains in
    List.init domains (fun k ->
        let lo = k * chunk and hi = min count ((k + 1) * chunk) in
        Domain.spawn (fun () -> fill lo hi))
    |> List.iter Domain.join
  end;
  { ps; backend = Dense rows }

let build_tree_index ?domains ps =
  { ps; backend = Tree (Kdtree.build_flat ?domains ~storage:ps.st ~offs:ps.offs ~dim:ps.dim ()) }

let auto_index ?(dense_threshold = 4096) ?domains ps =
  if n ps <= dense_threshold then build_index ?domains ps else build_tree_index ?domains ps

let index_is_dense idx = match idx.backend with Dense _ -> true | Tree _ -> false
let index_pointset idx = idx.ps
let index_tree idx = match idx.backend with Tree t -> Some t | Dense _ -> None

let index_of_tree ps tree =
  if Kdtree.size tree <> n ps then
    invalid_arg "Pointset.index_of_tree: tree size does not match the pointset";
  { ps; backend = Tree tree }

(* Number of entries in the sorted row that are <= radius. *)
let count_row row radius =
  let len = Array.length row in
  if len = 0 || row.(0) > radius then 0
  else begin
    (* Invariant: row.(lo) <= radius < row.(hi) (hi = len means none above). *)
    let lo = ref 0 and hi = ref len in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if row.(mid) <= radius then lo := mid else hi := mid
    done;
    !lo + 1
  end

let counts_within idx ~radius =
  if radius < 0. then Array.make (n idx.ps) 0
  else
    match idx.backend with
    | Dense rows -> Array.map (fun row -> count_row row radius) rows
    | Tree tree -> Kdtree.counts_within_rows tree idx.ps.st ~offs:idx.ps.offs ~radius

let score_l idx ~cap ~radius =
  if radius < 0. then 0.
  else begin
    let counts = counts_within idx ~radius in
    Kernel.top_avg_capped ~counts ~off:0 ~len:(Array.length counts) ~cap
      ~k:(min cap (n idx.ps))
  end

(* Batched L: one score per candidate radius, equal to mapping [score_l]
   over [radii] but sharing the per-point work across all radii — binary
   searches over each sorted dense row, or a single multi-radius k-d
   traversal per point.  Counts are exact integers and the capped top-k
   average sums integers below 2^53, so every output is bit-identical to
   the per-radius path.  Radii blocks are bounded so the transient count
   matrix stays under ~32 MB regardless of |radii|·n. *)
let score_l_many idx ~cap ~radii =
  let nr = Array.length radii in
  let count = n idx.ps in
  let out = Array.make nr 0. in
  let ascending =
    let ok = ref true in
    for j = 1 to nr - 1 do
      if radii.(j) < radii.(j - 1) then ok := false
    done;
    !ok
  in
  if not ascending then
    (* Out-of-order radii: no batching contract; score one by one. *)
    Array.iteri (fun j r -> out.(j) <- score_l idx ~cap ~radius:r) radii
  else begin
    (* Negative radii score 0 (same guard as [score_l]). *)
    let first_nn = ref 0 in
    while !first_nn < nr && radii.(!first_nn) < 0. do
      out.(!first_nn) <- 0.;
      incr first_nn
    done;
    let k = min cap count in
    let block = max 1 (4_000_000 / count) in
    let j0 = ref !first_nn in
    while !j0 < nr do
      let bnr = min block (nr - !j0) in
      let rblock = Array.sub radii !j0 bnr in
      let counts = Array.make (bnr * count) 0 in
      (match idx.backend with
      | Dense rows ->
          for i = 0 to count - 1 do
            let row = rows.(i) in
            Kernel.counts_le_sorted ~row ~len:(Array.length row) ~radii:rblock ~nr:bnr
              ~out:counts ~stride:count ~col:i
          done
      | Tree tree ->
          for i = 0 to count - 1 do
            Kdtree.count_within_row_many tree idx.ps.st ~off:idx.ps.offs.(i)
              ~radii:rblock ~out:counts ~stride:count ~col:i
          done);
      for j = 0 to bnr - 1 do
        out.(!j0 + j) <- Kernel.top_avg_capped ~counts ~off:(j * count) ~len:count ~cap ~k
      done;
      j0 := !j0 + bnr
    done
  end;
  out

let kth_neighbor_distance idx ~k i =
  if k <= 0 || k > n idx.ps then invalid_arg "Pointset.kth_neighbor_distance: bad k";
  match idx.backend with
  | Dense rows -> rows.(i).(k - 1)
  | Tree tree ->
      (* The count around x_i is a step function of the radius jumping past
         k exactly at the k-th neighbor distance; bisect that jump. *)
      let ps = idx.ps in
      let off = ps.offs.(i) in
      let count r = Kdtree.count_within_row tree ps.st ~off ~radius:r in
      let norm_inf =
        let acc = ref 0. in
        for j = 0 to ps.dim - 1 do
          acc := Float.max !acc (Float.abs ps.st.(off + j))
        done;
        !acc
      in
      let lo = ref 0. and hi = ref (norm_inf +. (2. *. sqrt (float_of_int ps.dim))) in
      (* Ensure hi really covers k points (data may live outside [0,1]^d). *)
      while count !hi < k do
        hi := 2. *. Float.max 1. !hi
      done;
      for _ = 1 to 100 do
        let mid = 0.5 *. (!lo +. !hi) in
        if count mid >= k then hi := mid else lo := mid
      done;
      !hi
