let src = Logs.Src.create "privcluster.good-center" ~doc:"Algorithm 2 (GoodCenter)"

module Log = (val Logs.src_log src : Logs.LOG)

type failure = No_heavy_box | Box_selection_failed | Averaging_bottom

type success = {
  center : Geometry.Vec.t;
  private_radius : float;
  jl_dim : int;
  identity_projection : bool;
  rounds_used : int;
  axis_fallbacks : int;
  capture_radius : float;
  noisy_count : float;
}

let pp_failure ppf = function
  | No_heavy_box -> Format.fprintf ppf "no heavy box found within the round budget"
  | Box_selection_failed -> Format.fprintf ppf "stability histogram released no box"
  | Averaging_bottom -> Format.fprintf ppf "noisy average returned bottom"

let pp_success ppf s =
  Format.fprintf ppf
    "{center=%a; private_radius=%.4f; k=%d; identity=%b; rounds=%d; fallbacks=%d; capture=%.4f; \
     m_hat=%.1f}"
    Geometry.Vec.pp s.center s.private_radius s.jl_dim s.identity_projection s.rounds_used
    s.axis_fallbacks s.capture_radius s.noisy_count

(* Steps 2–6: repeatedly draw a randomly shifted box partition of the
   projected space and ask AboveThreshold whether some box is heavy.
   [proj] is the (already projected) pointset; occupancies are computed
   over its flat rows. *)
let find_heavy_boxing rng (profile : Profile.t) ~eps ~beta ~t ~side ~k proj =
  let n = Geometry.Pointset.n proj in
  let rounds = Profile.rounds profile ~n ~beta in
  Obs.Span.with_span ~cat:"phase"
    ~attrs:(fun () -> [ ("rounds_max", Obs.Span.I rounds) ])
    "good_center.above_threshold"
  @@ fun () ->
  let slack = Prim.Sparse_vector.accuracy_bound ~eps:(eps /. 4.) ~k:rounds ~beta in
  let sv =
    Prim.Sparse_vector.create rng ~eps:(eps /. 4.) ~threshold:(float_of_int t -. slack)
  in
  let rec loop round =
    if round > rounds then None
    else begin
      let boxing = Geometry.Boxing.make rng ~dim:k ~len:side in
      let q = float_of_int (Geometry.Boxing.max_occupancy_ps boxing proj) in
      match Prim.Sparse_vector.query sv q with
      | Prim.Sparse_vector.Above -> Some (boxing, round)
      | Prim.Sparse_vector.Below -> loop (round + 1)
    end
  in
  loop 1

(* Steps 8–10 (JL path): deterministically bound D in a rotated frame.
   Returns the center of the bounding ball C and the per-run count of axes
   that needed the data-independent fallback. *)
let rotated_capture rng ~eps ~delta ~beta ~d ~k ~r ~axis_factor captured =
  (* The d per-axis histograms run at (ε_axis, δ_axis); their advanced
     composition is certified ≤ (ε/4, δ/4) (Lemma 4.11), which is what
     this phase charges.  The [composition] attribute marks that the
     children's {e basic} sum may legitimately exceed the phase charge. *)
  Obs.Span.with_charged ~cat:"phase"
    ~attrs:(fun () ->
      [ ("axes", Obs.Span.I d); ("composition", Obs.Span.S "advanced") ])
    ~eps:(eps /. 4.) ~delta:(delta /. 4.) "good_center.rotated_capture"
  @@ fun () ->
  let n_captured = Geometry.Pointset.n captured in
  let cst = Geometry.Pointset.storage captured in
  let coffs = Geometry.Pointset.row_offsets captured in
  let rotation = Geometry.Rotation.make rng ~dim:d in
  let df = float_of_int d in
  let nf = float_of_int (max 2 n_captured) in
  let p = axis_factor *. r *. sqrt (float_of_int k *. log (df *. nf /. beta) /. df) in
  let eps_axis = eps /. (10. *. sqrt (df *. log (8. /. delta))) in
  let delta_axis = delta /. (8. *. df) in
  let fallbacks = ref 0 in
  (* Data-independent fallback when an axis's histogram releases nothing:
     the interval containing the domain center's projection (points live in
     the unit cube by convention). *)
  let cube_center = Array.make d 0.5 in
  let centers =
    Array.init d (fun i ->
        let part = Geometry.Interval.make rng ~len:p in
        let coords =
          Array.map (fun off -> Geometry.Rotation.project_row rotation cst ~off i) coffs
        in
        let chosen =
          Prim.Stability_hist.select_by rng ~eps:eps_axis ~delta:delta_axis
            ~key:(Geometry.Interval.index_of part) coords
        in
        let j =
          match chosen with
          | Some cell -> cell.Prim.Stability_hist.key
          | None ->
              incr fallbacks;
              Geometry.Interval.index_of part (Geometry.Rotation.project rotation cube_center i)
        in
        let lo, hi = Geometry.Interval.bounds part j in
        0.5 *. (lo +. hi))
  in
  let center = Geometry.Rotation.from_coords rotation centers in
  (* Î_i has length 3p, so the box has half-diagonal (3p/2)·√d; C doubles it
     (the paper's 2700 = 2 × 1350 slack). *)
  let capture_radius = 3. *. p *. sqrt df in
  (center, capture_radius, !fallbacks)

let run_ps rng (profile : Profile.t) ~eps ~delta ~beta ~t ~radius:r ps =
  if not (r > 0.) then invalid_arg "Good_center.run: radius must be positive";
  if not (eps > 0.) then invalid_arg "Good_center.run: eps must be positive";
  let n = Geometry.Pointset.n ps in
  if n = 0 then invalid_arg "Good_center.run: empty input";
  let d = Geometry.Pointset.dim ps in
  let k = Profile.jl_dim profile ~n ~d ~beta in
  let identity_projection = k >= d in
  let k = if identity_projection then d else k in
  (* Stage span carrying GoodCenter's budgeted share.  Its four mechanism
     phases consume ε/4 + (ε/4, δ/4) + (ε/4, δ/4) + (ε/4, δ/4) ≤ (ε, δ)
     (the rotated-capture phase runs only off the JL path). *)
  Obs.Span.with_charged ~cat:"stage"
    ~attrs:(fun () ->
      [ ("t", Obs.Span.I t); ("jl_dim", Obs.Span.I k);
        ("identity_projection", Obs.Span.B identity_projection) ])
    ~eps ~delta "good_center"
  @@ fun () ->
  let proj =
    if identity_projection then ps
    else begin
      Obs.Span.with_span ~cat:"phase"
        ~attrs:(fun () -> [ ("d", Obs.Span.I d); ("k", Obs.Span.I k) ])
        "good_center.jl_project"
        (fun () ->
          let jl = Geometry.Jl.make rng ~input_dim:d ~output_dim:k in
          Geometry.Jl.project jl ps)
    end
  in
  let pst = Geometry.Pointset.storage proj in
  let poffs = Geometry.Pointset.row_offsets proj in
  let side = profile.Profile.box_side_factor *. r in
  match find_heavy_boxing rng profile ~eps ~beta ~t ~side ~k proj with
  | None -> Error No_heavy_box
  | Some (boxing, rounds_used) ->
      Log.debug (fun m ->
          m "heavy boxing after %d rounds (k=%d, identity=%b, side=%.4f)" rounds_used k
            identity_projection side);
      (
      (* Step 7: pick the heavy box privately. *)
      match
        Obs.Span.with_span ~cat:"phase" "good_center.box_select" (fun () ->
            Prim.Stability_hist.select rng ~eps:(eps /. 4.) ~delta:(delta /. 4.)
              (Geometry.Boxing.occupancy_ps boxing proj))
      with
      | None -> Error Box_selection_failed
      | Some cell ->
          let key = cell.Prim.Stability_hist.key in
          Log.debug (fun m ->
              m "box selected: true count %d, noisy %.1f" cell.Prim.Stability_hist.count
                cell.Prim.Stability_hist.noisy_count);
          (* Membership is decided on the precomputed projected rows —
             bit-identical to re-projecting the original point. *)
          let in_box i = Geometry.Boxing.key_of_row boxing pst ~off:poffs.(i) = key in
          let capture_center, capture_radius, axis_fallbacks =
            if identity_projection then begin
              (* The box itself bounds D deterministically: C is its
                 bounding ball.  (Practical-profile shortcut; see .mli.) *)
              let center = Geometry.Boxing.center boxing key in
              (center, 0.5 *. side *. sqrt (float_of_int d), 0)
            end
            else begin
              let kept = ref [] in
              for i = n - 1 downto 0 do
                if in_box i then kept := i :: !kept
              done;
              let captured =
                Geometry.Pointset.subset ps ~indices:(Array.of_list !kept)
              in
              rotated_capture rng ~eps ~delta ~beta ~d ~k ~r
                ~axis_factor:(Profile.axis_interval_factor profile)
                captured
            end
          in
          let st = Geometry.Pointset.storage ps in
          let offs = Geometry.Pointset.row_offsets ps in
          let pred i =
            in_box i
            && Geometry.Vec.dist_to_row st ~off:offs.(i) ~dim:d capture_center
               <= capture_radius
          in
          (* Step 11: noisy average of D ∩ C. *)
          let avg =
            Obs.Span.with_span ~cat:"phase" "good_center.noisy_average" (fun () ->
                Prim.Noisy_avg.run_rows rng ~eps:(eps /. 4.) ~delta:(delta /. 4.)
                  ~diameter:(2. *. capture_radius) ~pred ~dim:d ~offs st)
          in
          (match avg with
          | Prim.Noisy_avg.Bottom -> Error Averaging_bottom
          | Prim.Noisy_avg.Average { average; m_hat; sigma } ->
              (* Diameter bound on D: box diagonal, inflated by √2 when the
                 JL distortion (η = 1/2) separates the projected and the
                 original metric. *)
              let diam_d =
                let diag = side *. sqrt (float_of_int k) in
                if identity_projection then diag else sqrt 2. *. diag
              in
              let noise_tail =
                sqrt (float_of_int d)
                *. Prim.Gaussian_mech.coordinate_tail_bound ~sigma ~dim:d ~beta
              in
              Ok
                {
                  center = average;
                  private_radius = diam_d +. noise_tail;
                  jl_dim = k;
                  identity_projection;
                  rounds_used;
                  axis_fallbacks;
                  capture_radius;
                  noisy_count = m_hat;
                }))

let run rng profile ~eps ~delta ~beta ~t ~radius points =
  if not (radius > 0.) then invalid_arg "Good_center.run: radius must be positive";
  if not (eps > 0.) then invalid_arg "Good_center.run: eps must be positive";
  if Array.length points = 0 then invalid_arg "Good_center.run: empty input";
  run_ps rng profile ~eps ~delta ~beta ~t ~radius (Geometry.Pointset.create points)
