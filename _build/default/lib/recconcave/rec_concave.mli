(** RecConcave — private optimization of quasi-concave promise problems
    (Theorem 4.3, Beimel–Nissim–Stemmer 2013; "recursion on binary search").

    Given a sensitivity-1 quasi-concave quality [Q] over [{0 … T−1}] with
    promise [max Q ≥ p], return an index [f] with [Q(f) ≥ (1−α)·p] with
    probability ≥ 1 − β, privately.

    {b Structure} (faithful to the cited construction): if [T] is small the
    exponential mechanism solves the problem directly.  Otherwise the
    scale-quality reduction ({!Scale_quality}) turns the problem into a
    quasi-concave promise problem over only [⌈log₂ T⌉ + 1] scales, solved
    recursively; the returned scale [j] certifies an interval of width
    [w = 2^j] on which [Q] is everywhere large, and a cell of the two
    staggered width-[2w] partitions containing that interval is selected,
    then a solution inside the cell.  The recursion depth is [log*(T)].

    {b Documented deviation from BNS13} (see DESIGN.md §1): the per-level
    cell and in-cell selections use the exponential mechanism, so the whole
    algorithm is pure [(ε, 0)]-DP, and the utility loss carries a
    [log T / ε] term (matching the "noisy binary search" bound the paper
    quotes in §3.1) instead of BNS13's [2^{O(log* T)} / ε]; the recursion
    skeleton, privacy accounting and promise interface are those of
    Theorem 4.3.  {!loss_bound} gives this implementation's actual
    guarantee and is what GoodRadius uses to size its promise Γ. *)

type report = {
  chosen : int;  (** The selected solution index. *)
  mechanisms : int;  (** Number of exponential-mechanism invocations. *)
  eps_each : float;  (** Privacy budget given to each invocation. *)
  depth : int;  (** Recursion depth (number of scale reductions). *)
}

val depth : ?base:int -> int -> int
(** Recursion depth for a domain of the given size (number of times the
    scale reduction is applied before the domain fits the base case;
    [base] defaults to 32).  Grows as [log*]: 0 for T ≤ 32, and at most 4
    for any T representable in 63 bits. *)

val mechanism_count : ?base:int -> int -> int
(** [2·depth + 1] exponential-mechanism invocations. *)

val solve :
  Prim.Rng.t ->
  eps:float ->
  ?base:int ->
  ?sensitivity:float ->
  Quality.t ->
  report
(** Run the algorithm.  [(eps, 0)]-differentially private whenever the
    supplied quality has the stated sensitivity (default 1).  The promise
    and [α, β] do not appear: they are analysis-side quantities — use
    {!loss_bound} to size a promise. *)

val loss_bound : ?base:int -> size:int -> eps:float -> beta:float -> unit -> float
(** Additive quality loss [max Q − Q(chosen)] guaranteed with probability
    ≥ 1 − β, obtained by summing the exponential-mechanism utility bound
    over every selection the recursion performs on a domain of the given
    size.  A quality promise [p ≥ loss_bound / α] certifies a
    [(1−α)·p] outcome. *)

val paper_promise : eps:float -> beta:float -> delta:float -> domain_size:float -> float
(** The promise Γ that Algorithm 1 (GoodRadius) quotes from Theorem 4.3:
    [8^{log* F} · (144·log* F / ε) · ln(24·log* F / (βδ))] with
    [F = domain_size].  Provided for reporting alongside {!loss_bound};
    astronomically conservative at practical scales. *)

val log_star : float -> float
(** Iterated base-2 logarithm. *)

(**/**)

val cells : size:int -> w:int -> (int * int) list
(** The two staggered partitions of [{0 … size−1}] into width-[2w] cells
    (clipped), as inclusive [(lo, hi)] pairs.  Exposed for the test-suite's
    coverage invariant: every width-[w] subinterval of the domain is fully
    contained in at least one cell. *)
