lib/geometry/seb.mli: Pointset Vec
