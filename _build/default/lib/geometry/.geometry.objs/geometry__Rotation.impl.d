lib/geometry/rotation.ml: Array Prim Vec
