test/test_kmeans.ml: Alcotest Array Float Geometry Prim Printf Privcluster Testutil
