(** Non-private reference solvers for the 1-cluster problem (Section 3's
    facts 1–3), presented through the same (center, radius) interface as the
    private solvers so the experiment harness can treat every method
    uniformly.  The exact problem is NP-hard in general; these give the
    exact answer for d = 1 and the classical 2-approximation (tightened by
    core-set iteration) otherwise. *)

type answer = {
  center : Geometry.Vec.t;
  radius : float;
  exact : bool;  (** Whether the answer is provably optimal (d = 1 only). *)
}

val solve : Geometry.Pointset.t -> t:int -> answer
(** Exact for 1-D inputs; {!Geometry.Seb.t_ball_heuristic} otherwise. *)

val two_approx : Geometry.Pointset.t -> t:int -> answer
(** The plain 2-approximation (balls centered at input points). *)

val r_opt_bounds : Geometry.Pointset.t -> t:int -> float * float
(** [(lo, hi)] with [lo ≤ r_opt ≤ hi]: [hi] is the best feasible radius
    found, [lo = (two-approx radius)/2] — the experiments report measured
    approximation ratios against both ends. *)
