lib/core/sample_aggregate.ml: Array Float Geometry One_cluster Prim
