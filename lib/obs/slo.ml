type status = Ok | Warn | Firing

let status_to_string = function Ok -> "ok" | Warn -> "warn" | Firing -> "firing"

let status_of_string = function
  | "ok" -> Some Ok
  | "warn" -> Some Warn
  | "firing" -> Some Firing
  | _ -> None

let rank = function Ok -> 0 | Warn -> 1 | Firing -> 2
let worst statuses = List.fold_left (fun a s -> if rank s > rank a then s else a) Ok statuses

type rule =
  | Latency of { verb : string option; q : float; warn_s : float; fire_s : float }
  | Burn_rate of {
      tenant : string option;
      dataset : string option;
      warn_per_hour : float;
      fire_per_hour : float;
    }
  | Shed_rate of { warn : float; fire : float }

let fmt_opt = function None -> "*" | Some s -> s

let rule_to_line = function
  | Latency { verb; q; warn_s; fire_s } ->
      Printf.sprintf "latency q=%g verb=%s warn_ms=%g fire_ms=%g" q (fmt_opt verb)
        (warn_s *. 1000.) (fire_s *. 1000.)
  | Burn_rate { tenant; dataset; warn_per_hour; fire_per_hour } ->
      Printf.sprintf "burn tenant=%s dataset=%s warn=%g fire=%g" (fmt_opt tenant)
        (fmt_opt dataset) warn_per_hour fire_per_hour
  | Shed_rate { warn; fire } -> Printf.sprintf "shed warn=%g fire=%g" warn fire

let rule_of_line line =
  let tokens =
    String.split_on_char ' ' (String.trim line) |> List.filter (fun s -> s <> "")
  in
  match tokens with
  | [] -> Error "empty rule"
  | kind :: kvs -> (
      let pairs = ref [] in
      let bad = ref None in
      List.iter
        (fun tok ->
          match String.index_opt tok '=' with
          | None -> if !bad = None then bad := Some tok
          | Some i ->
              let k = String.sub tok 0 i in
              let v = String.sub tok (i + 1) (String.length tok - i - 1) in
              pairs := (k, v) :: !pairs)
        kvs;
      match !bad with
      | Some tok -> Error (Printf.sprintf "malformed token %S (expected key=value)" tok)
      | None -> (
          let find k = List.assoc_opt k !pairs in
          let subject k = match find k with None | Some "*" -> None | Some v -> Some v in
          let num k =
            match find k with
            | None -> Error (Printf.sprintf "missing %s=" k)
            | Some v -> (
                match float_of_string_opt v with
                | Some f when Float.is_finite f && f >= 0. -> Result.Ok f
                | _ -> Error (Printf.sprintf "bad number for %s: %S" k v))
          in
          let ( let* ) = Result.bind in
          match kind with
          | "latency" ->
              let* q = num "q" in
              if q < 0. || q > 1. then Error "latency q must be in [0,1]"
              else
                let* warn = num "warn_ms" in
                let* fire = num "fire_ms" in
                Result.Ok
                  (Latency
                     {
                       verb = subject "verb";
                       q;
                       warn_s = warn /. 1000.;
                       fire_s = fire /. 1000.;
                     })
          | "burn" ->
              let* warn = num "warn" in
              let* fire = num "fire" in
              Result.Ok
                (Burn_rate
                   {
                     tenant = subject "tenant";
                     dataset = subject "dataset";
                     warn_per_hour = warn;
                     fire_per_hour = fire;
                   })
          | "shed" ->
              let* warn = num "warn" in
              let* fire = num "fire" in
              Result.Ok (Shed_rate { warn; fire })
          | k -> Error (Printf.sprintf "unknown rule kind %S" k)))

let default_rules =
  [
    Latency { verb = None; q = 0.99; warn_s = 0.5; fire_s = 2.0 };
    Burn_rate { tenant = None; dataset = None; warn_per_hour = 0.5; fire_per_hour = 1.0 };
    Shed_rate { warn = 0.01; fire = 0.10 };
  ]

type observations = {
  latencies : unit -> (string * Hist.snapshot) list;
  burn_rates : unit -> (string * string * float) list;
  shed_rate : unit -> float * int;
}

type verdict = { rule : string; subject : string; status : status; reason : string }

let grade v ~warn ~fire = if v >= fire then Firing else if v >= warn then Warn else Ok

let eval obs rule =
  let line = rule_to_line rule in
  match rule with
  | Latency { verb; q; warn_s; fire_s } ->
      let rows = obs.latencies () in
      let rows =
        match verb with
        | None -> rows
        | Some v -> (
            match List.assoc_opt v rows with
            | Some h -> [ (v, h) ]
            | None -> [ (v, Hist.empty) ])
      in
      if rows = [] then
        [ { rule = line; subject = "verb=*"; status = Ok; reason = "no observations" } ]
      else
        List.map
          (fun (v, h) ->
            let subject = "verb=" ^ v in
            if h.Hist.count = 0 then
              { rule = line; subject; status = Ok; reason = "no observations" }
            else
              let got = Hist.quantile_ns h ~q /. 1e9 in
              {
                rule = line;
                subject;
                status = grade got ~warn:warn_s ~fire:fire_s;
                reason =
                  Printf.sprintf "p%g=%.1fms over %d requests (warn %.0fms fire %.0fms)"
                    (q *. 100.) (got *. 1000.) h.Hist.count (warn_s *. 1000.)
                    (fire_s *. 1000.);
              })
          rows
  | Burn_rate { tenant; dataset; warn_per_hour; fire_per_hour } ->
      let rows = obs.burn_rates () in
      let keep (t, d, _) =
        (match tenant with None -> true | Some x -> x = t)
        && match dataset with None -> true | Some x -> x = d
      in
      let rows = List.filter keep rows in
      if rows = [] then
        [
          {
            rule = line;
            subject =
              Printf.sprintf "tenant=%s dataset=%s" (fmt_opt tenant) (fmt_opt dataset);
            status = Ok;
            reason = "no observations";
          };
        ]
      else
        List.map
          (fun (t, d, rate) ->
            {
              rule = line;
              subject = Printf.sprintf "tenant=%s dataset=%s" t d;
              status = grade rate ~warn:warn_per_hour ~fire:fire_per_hour;
              reason =
                Printf.sprintf
                  "burning %.3f of epsilon budget per hour (warn %g fire %g)" rate
                  warn_per_hour fire_per_hour;
            })
          rows
  | Shed_rate { warn; fire } ->
      let rate, total = obs.shed_rate () in
      if total = 0 then
        [ { rule = line; subject = "queue"; status = Ok; reason = "no submissions" } ]
      else
        [
          {
            rule = line;
            subject = "queue";
            status = grade rate ~warn ~fire;
            reason =
              Printf.sprintf "shed %.2f%% of %d submissions (warn %g%% fire %g%%)"
                (rate *. 100.) total (warn *. 100.) (fire *. 100.);
          };
        ]

let eval_all obs rules = List.concat_map (eval obs) rules
let worst_of verdicts = worst (List.map (fun v -> v.status) verdicts)

let verdict_to_json v =
  Json.Obj
    [
      ("rule", Json.String v.rule);
      ("subject", Json.String v.subject);
      ("status", Json.String (status_to_string v.status));
      ("reason", Json.String v.reason);
    ]

let verdict_of_json j =
  let str k = Option.bind (Json.member k j) Json.to_str in
  match (str "rule", str "subject", str "status", str "reason") with
  | Some rule, Some subject, Some st, Some reason ->
      Option.map
        (fun status -> { rule; subject; status; reason })
        (status_of_string st)
  | _ -> None
