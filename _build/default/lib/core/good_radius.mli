(** Algorithm 1 — GoodRadius.

    Privately approximates the smallest radius of a ball (in the grid domain
    [X^d]) containing at least [t] input points.  Guarantees (Lemma 3.6 /
    Lemma 4.6), with probability ≥ 1 − β:

    + some ball of the returned radius contains at least [t − Δ] input
      points, where [Δ = 4Γ + (4/ε)·ln(2/β)] and [Γ] is the promise below;
    + the returned radius is at most [4·r_opt].

    The score is the sensitivity-2 average [L(r, S)] of {!Geometry.Pointset};
    the search over the candidate radii [{0, 1/(2|X|), …, ⌈√d⌉}] runs on the
    quality [Q(r) = ½·min(t − L(r/2), L(r) − t + 4Γ)] through either
    RecConcave or the noisy-binary-search backend, per the profile.

    Privacy: [(ε, δ)]-DP — ε/2 on the Laplace test of step 2, ε/2 (and all
    of δ) on the search (Lemma 4.5; with our pure-DP RecConcave variant the
    whole algorithm is in fact (ε, 0)-DP). *)

type result = {
  radius : float;  (** The returned radius [z]. *)
  radius_index : int;  (** Its index in the candidate set. *)
  gamma : float;  (** The promise Γ the run was sized for. *)
  delta_bound : float;  (** The cluster-size loss Δ certified (≥ [4Γ]). *)
  zero_shortcut : bool;  (** Whether step 2 already found a radius-0 cluster. *)
  score_evals : int;  (** Distinct [L] evaluations performed (cost metric). *)
}

val gamma :
  Profile.t -> grid:Geometry.Grid.t -> eps:float -> delta:float -> beta:float -> float
(** The promise Γ this implementation needs: for the RecConcave backend,
    twice {!Recconcave.Rec_concave.loss_bound} of the radius-candidate
    domain at budget ε/2; for the binary-search backend, the corresponding
    {!Recconcave.Monotone_search.accuracy_bound}.  (The paper's Γ formula is
    available as {!Recconcave.Rec_concave.paper_promise}.)  [delta] is
    accepted for interface symmetry — both backends are pure-DP, so it does
    not enter. *)

val pp_result : Format.formatter -> result -> unit

val run :
  Prim.Rng.t ->
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  t:int ->
  ?zero_floor:float ->
  Geometry.Pointset.index ->
  result
(** [run rng profile ~grid ~eps ~delta ~beta ~t index].  The point set
    behind [index] must lie in [grid]'s unit cube.

    [zero_floor] raises the radius-zero shortcut's firing threshold (the
    test already floors it at [max(2·slack, t/2)]); {!One_cluster} passes
    the stability histogram's own requirement so the shortcut only fires
    when the follow-up exact-point query can actually succeed.  Raising
    the threshold never hurts utility — radius 0 stays a candidate of the
    main search. *)
