(* Algorithm 2 — GoodCenter. *)

open Testutil

let delta = 1e-6
let beta = 0.1

let test_finds_planted_center () =
  let r, _, w = small_workload ~seed:21 ~n:2000 ~axis:256 ~fraction:0.6 ~radius:0.05 () in
  let t = 1000 in
  match
    Privcluster.Good_center.run r Privcluster.Profile.practical ~eps:4.0 ~delta ~beta ~t
      ~radius:0.08 w.Workload.Synth.points
  with
  | Error f -> Alcotest.failf "unexpected failure: %a" Privcluster.Good_center.pp_failure f
  | Ok s ->
      let dist = Geometry.Vec.dist s.Privcluster.Good_center.center w.Workload.Synth.cluster_center in
      check_true (Printf.sprintf "center within 0.2 of truth (got %.3f)" dist) (dist < 0.2);
      check_true "identity projection at d=2" s.Privcluster.Good_center.identity_projection;
      check_int "k = d" 2 s.Privcluster.Good_center.jl_dim;
      check_true "private radius covers capture"
        (s.Privcluster.Good_center.private_radius > 0.);
      check_true "noisy count near t"
        (Float.abs (s.Privcluster.Good_center.noisy_count -. float_of_int t)
        < 0.6 *. float_of_int t)

let test_fails_on_uniform_data () =
  let r = rng ~seed:5 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let points = Workload.Synth.uniform r ~grid ~n:400 in
  (* No ball of radius 0.01 holds 300 uniform points: AboveThreshold should
     never fire, or the histogram should release nothing. *)
  let failures = ref 0 in
  for _ = 1 to 5 do
    match
      Privcluster.Good_center.run r Privcluster.Profile.practical ~eps:2.0 ~delta ~beta ~t:300
        ~radius:0.01 points
    with
    | Error _ -> incr failures
    | Ok _ -> ()
  done;
  check_true "uniform data mostly fails" (!failures >= 4)

let test_jl_path_runs () =
  (* Force the JL path: d larger than the capped k. *)
  let r = rng ~seed:31 () in
  let d = 48 in
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:d in
  let w =
    Workload.Synth.planted_ball r ~grid ~n:600 ~cluster_fraction:0.8 ~cluster_radius:0.15
  in
  (* The paper's k = 46·ln(2n/β) exceeds d at this scale, which would make
     the projection the identity; shrink the JL constant so k < d and the
     genuine JL + rotation path runs (with the paper's box constants). *)
  let profile =
    {
      Privcluster.Profile.paper with
      Privcluster.Profile.max_rounds = Some 400;
      jl_constant = 0.8;
    }
  in
  match
    Privcluster.Good_center.run r profile ~eps:16.0 ~delta ~beta ~t:380 ~radius:0.2
      w.Workload.Synth.points
  with
  | Error f -> Alcotest.failf "JL path failed: %a" Privcluster.Good_center.pp_failure f
  | Ok s ->
      check_true "not identity" (not s.Privcluster.Good_center.identity_projection);
      check_true "k < d" (s.Privcluster.Good_center.jl_dim < d);
      check_true "capture radius positive" (s.Privcluster.Good_center.capture_radius > 0.);
      check_int "center in R^d" d (Geometry.Vec.dim s.Privcluster.Good_center.center)

let test_validation () =
  let r = rng () in
  Alcotest.check_raises "radius > 0" (Invalid_argument "Good_center.run: radius must be positive")
    (fun () ->
      ignore
        (Privcluster.Good_center.run r Privcluster.Profile.practical ~eps:1.0 ~delta ~beta ~t:5
           ~radius:0. [| [| 0.; 0. |] |]))

let test_rounds_respected () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let points = Workload.Synth.uniform r ~grid ~n:200 in
  let profile = { Privcluster.Profile.practical with Privcluster.Profile.max_rounds = Some 3 } in
  (* With a hopeless target the loop must stop at the cap. *)
  match
    Privcluster.Good_center.run r profile ~eps:1.0 ~delta ~beta ~t:199 ~radius:0.001 points
  with
  | Error Privcluster.Good_center.No_heavy_box -> ()
  | Error f -> Alcotest.failf "unexpected failure kind: %a" Privcluster.Good_center.pp_failure f
  | Ok s ->
      check_true "if it fired, it did so within the cap" (s.Privcluster.Good_center.rounds_used <= 3)

let suite =
  [
    case "finds the planted center" test_finds_planted_center;
    case "fails on uniform data" test_fails_on_uniform_data;
    slow_case "JL path (paper constants) runs" test_jl_path_runs;
    case "validation" test_validation;
    case "round cap respected" test_rounds_respected;
  ]
