lib/core/good_center.ml: Array Format Geometry List Logs Prim Profile
