(** Table 1, row 1 — private aggregation in the style of Nissim,
    Raskhodnikova and Smith [16] (see DESIGN.md, substitution 4).

    A coordinatewise private median (exponential mechanism over the grid
    values of each axis, quality = negated distance of the rank from n/2)
    followed by a private radius search around it.  This reproduces the
    row's qualitative profile, which experiment E1 confirms:

    - it only works when the target cluster holds a {e majority} of the
      points ([t ≥ 0.51·n]) — with a minority cluster the medians land in
      no-man's land;
    - the center error (hence the needed radius) grows with [√d], because
      each coordinate independently contributes [O(r_opt + 1/ε')] error;
    - it is fast: no candidate enumeration, no heavy geometry.

    Also includes the GUPT-style noisy-average aggregator used as the
    sample-and-aggregate comparator in experiment E7. *)

type result = { center : Geometry.Vec.t; radius : float }

val run :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  t:int ->
  Geometry.Pointset.t ->
  result
(** [(ε, 0)]-DP: ε/2 split across the [d] coordinate medians, ε/2 on the
    radius search. *)

val coordinate_median : Prim.Rng.t -> grid:Geometry.Grid.t -> eps:float -> float array -> float
(** One axis's private median (exposed for tests). *)

val gupt_average :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  Geometry.Vec.t array ->
  Geometry.Vec.t
(** Differentially private averaging over the full domain (the GUPT
    aggregation): mean + Gaussian noise at L2 sensitivity [√d / n]. *)
