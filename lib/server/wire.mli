(** privclusterd wire protocol: one JSON object per line, both ways.

    A connection opens with a [hello] carrying the protocol version and
    the tenant's credentials; every subsequent request carries a
    client-chosen integer [id] that the matching reply echoes, so a
    client may pipeline requests and pair replies by id.  Replies are
    [{"id", "ok": true, ...payload}] or
    [{"id", "ok": false, "error": {"code", "message", "charged"}}] —
    [charged] is always [false]: an error reply is produced before any
    ledger operation, so a refused or shed request provably spent
    nothing.  (Per-job budget refusals are {e not} errors: a [run] whose
    jobs are refused succeeds with [status = "refused"] results.)

    Requests:
    - [hello]    — [version], [tenant], [token]; must be first.
    - [register] — synthesize and register a planted-ball dataset:
      [dataset], [n], [dim], [axis], [frac], [radius], [seed],
      [budget_eps]/[budget_delta], [mode], [slack].  Registering the
      name a previous daemon incarnation journaled replays the
      journal into the fresh accountant (budget and mode must match).
    - [run]      — [dataset], [jobs] (jobs-file text, see {!Engine.Job}),
      optional [seed] overriding the batch RNG base (a fixed seed makes
      verdicts deterministic regardless of how clients interleave).
    - [ledger]   — [dataset]; the accountant state.
    - [datasets] — list the tenant's datasets.
    - [metrics]  — Prometheus text exposition for this tenant.
    - [ping]     — liveness probe; answered even while draining. *)

val version : int
(** Protocol version ([1]); [hello] with any other value is refused. *)

type request =
  | Hello of { version : int; tenant : string; token : string }
  | Register of {
      dataset : string;
      n : int;
      dim : int;
      axis : int;
      frac : float;
      radius : float;
      seed : int;
      budget : Prim.Dp.params;
      mode : Engine.Accountant.mode;
    }
  | Run of { dataset : string; jobs : string; seed : int option }
  | Ledger of { dataset : string }
  | Datasets
  | Metrics
  | Ping

type envelope = { rid : int; request : request }

type shed_reason = Queue_full | Tenant_cap | Draining

type error_code =
  | Bad_request  (** Malformed request or jobs text. *)
  | Unsupported_version
  | Unauthorized  (** Unknown tenant or wrong token. *)
  | Unknown_dataset
  | Conflict  (** Duplicate registration, or journal/budget mismatch. *)
  | Rejected of shed_reason  (** Load-shed before any budget charge. *)
  | Internal

type error = { code : error_code; message : string }

val shed_reason_name : shed_reason -> string
(** ["queue_full"], ["tenant_cap"], ["draining"]. *)

val code_name : error_code -> string

val request_to_line : envelope -> string
(** Client side: render a request as one newline-terminated line. *)

val request_of_line : string -> (envelope, error) result
(** Server side.  [Error] is ready to send back (its [Bad_request]
    message names the offending field); a parseable [id] is preserved in
    the error path by the caller reading it from the raw JSON first. *)

val rid_of_line : string -> int
(** Best-effort [id] extraction for error replies ([0] if unreadable). *)

val reply_to_line : rid:int -> (Engine.Json.t, error) result -> string
(** Server side: render an ok (payload fields are spliced into the
    envelope object) or error reply as one newline-terminated line. *)

val reply_of_line : string -> (int * (Engine.Json.t, error) result, string) result
(** Client side: parse a reply line into [(id, Ok payload | Error e)];
    the outer [Error] means the line was not a valid reply at all. *)
