(* Sample and aggregate: compile an off-the-shelf, non-private analysis
   into a differentially private one (Section 6, Algorithm 4).

   Run with:  dune exec examples/private_mean_sa.exe

   The scenario: a proprietary "model fitting" routine [fit] maps a batch of
   raw records to a 2-parameter estimate.  [fit] knows nothing about
   privacy; it is even discontinuous (it rounds internally).  SA runs it on
   many disjoint random blocks and privately locates the cluster its
   outputs form — the returned stable point is (eps, delta)-DP no matter
   what [fit] does, because only the 1-cluster aggregation touches more
   than one block. *)

type record = { x : float; y : float; weight : float }

(* The non-private analysis: a weighted centroid with an arbitrary internal
   quirk (quantizes to 1e-3) to emphasize that nothing about f needs to be
   smooth or sensitivity-bounded. *)
let fit (block : record array) : float array =
  let wsum = Array.fold_left (fun a r -> a +. r.weight) 0. block in
  let cx = Array.fold_left (fun a r -> a +. (r.weight *. r.x)) 0. block /. wsum in
  let cy = Array.fold_left (fun a r -> a +. (r.weight *. r.y)) 0. block /. wsum in
  let q v = Float.round (v *. 1000.) /. 1000. in
  [| q cx; q cy |]

let () =
  let rng = Prim.Rng.create ~seed:5 () in
  let grid = Geometry.Grid.create ~axis_size:1024 ~dim:2 in
  let truth = (0.37, 0.61) in
  let n = 90_000 in
  let data =
    Array.init n (fun _ ->
        {
          x = fst truth +. Prim.Rng.gaussian rng ~sigma:0.05 ();
          y = snd truth +. Prim.Rng.gaussian rng ~sigma:0.05 ();
          weight = 0.5 +. Prim.Rng.float rng 1.0;
        })
  in
  Printf.printf "compiling a non-private estimator into a private one (n = %d)...\n%!" n;
  match
    Privcluster.Sample_aggregate.run rng Privcluster.Profile.practical ~grid ~eps:2.0
      ~delta:1e-6 ~beta:0.1 ~m:8 ~alpha:0.8 ~f:fit data
  with
  | Error f -> Format.printf "aggregation failed: %a@." Privcluster.One_cluster.pp_failure f
  | Ok r ->
      let p = r.Privcluster.Sample_aggregate.stable_point in
      Printf.printf "blocks: %d of size %d, clustering threshold t = %d\n"
        r.Privcluster.Sample_aggregate.blocks r.Privcluster.Sample_aggregate.block_size
        r.Privcluster.Sample_aggregate.t_used;
      Printf.printf "private estimate: (%.4f, %.4f)  truth: (%.2f, %.2f)  error: %.4f\n" p.(0)
        p.(1) (fst truth) (snd truth)
        (Geometry.Vec.dist p [| fst truth; snd truth |]);
      Printf.printf "stability radius: %.4f\n" r.Privcluster.Sample_aggregate.stable_radius;
      let amp = Privcluster.Sample_aggregate.amplified ~eps:2.0 ~delta:1e-6 in
      Printf.printf "end-to-end privacy after subsampling amplification: %s\n"
        (Prim.Dp.to_string amp)
