lib/core/good_center.mli: Format Geometry Prim Profile Stdlib
