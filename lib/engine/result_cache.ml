(* Budget-aware result caching.

   The cache key pins everything that determines a job's output
   bit-for-bit: the dataset, its epoch (mutations change the answer), the
   job's mechanism parameters ([Job.signature]), and the derived RNG
   stream (batch seed + submission stream).  Under that key, re-running
   the job would replay the exact same mechanism on the exact same data
   with the exact same noise — so returning the recorded answer is
   post-processing of an output already released, and charges nothing.

   A store under a key that is already present keeps the first entry: the
   contract says both are bit-identical, and keeping the original makes
   WAL replay idempotent. *)

type key = { dataset : string; epoch : int; signature : string; seed : int; stream : int }

type t = {
  entries : (key, Job.output) Hashtbl.t;
  hits : (string, int) Hashtbl.t;  (* per dataset *)
  misses : (string, int) Hashtbl.t;
  mu : Mutex.t;
  mutable listeners : (key -> Job.output -> unit) list;
}

let create () =
  {
    entries = Hashtbl.create 64;
    hits = Hashtbl.create 8;
    misses = Hashtbl.create 8;
    mu = Mutex.create ();
    listeners = [];
  }

let bump tbl dataset =
  Hashtbl.replace tbl dataset (1 + Option.value ~default:0 (Hashtbl.find_opt tbl dataset))

let find t key =
  Mutex.lock t.mu;
  let r = Hashtbl.find_opt t.entries key in
  bump (match r with Some _ -> t.hits | None -> t.misses) key.dataset;
  Mutex.unlock t.mu;
  r

let subscribe t f = t.listeners <- f :: t.listeners

(* Listeners run outside the lock (they append to the WAL). *)
let store t key output =
  Mutex.lock t.mu;
  let fresh = not (Hashtbl.mem t.entries key) in
  if fresh then Hashtbl.replace t.entries key output;
  let listeners = if fresh then List.rev t.listeners else [] in
  Mutex.unlock t.mu;
  List.iter (fun f -> f key output) listeners

let restore t key output =
  Mutex.lock t.mu;
  if not (Hashtbl.mem t.entries key) then Hashtbl.replace t.entries key output;
  Mutex.unlock t.mu

let size t =
  Mutex.lock t.mu;
  let s = Hashtbl.length t.entries in
  Mutex.unlock t.mu;
  s

let stats t ~dataset =
  Mutex.lock t.mu;
  let get tbl = Option.value ~default:0 (Hashtbl.find_opt tbl dataset) in
  let s = (get t.hits, get t.misses) in
  Mutex.unlock t.mu;
  s

let all_stats t =
  Mutex.lock t.mu;
  let names = Hashtbl.create 8 in
  Hashtbl.iter (fun d _ -> Hashtbl.replace names d ()) t.hits;
  Hashtbl.iter (fun d _ -> Hashtbl.replace names d ()) t.misses;
  let get tbl d = Option.value ~default:0 (Hashtbl.find_opt tbl d) in
  let rows = Hashtbl.fold (fun d () acc -> (d, get t.hits d, get t.misses d) :: acc) names [] in
  Mutex.unlock t.mu;
  List.sort compare rows
