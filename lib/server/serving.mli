(** Serving telemetry for privclusterd: the state behind the [health],
    [stats] and [metrics] verbs.

    One value of this type lives in the daemon and aggregates, across
    every connection:
    - per-verb × per-tenant request latency ({!Obs.Hist}, lock-free,
      recorded admission-to-reply on the connection thread);
    - per-verb executor-queue wait (submit-to-start, a separate family —
      a daemon can be slow because solving is slow or because the queue
      is deep, and the operator needs to tell the two apart);
    - shed counters per {!Wire.shed_reason} against total submissions;
    - per-(tenant, dataset) budget burn-rate: ε-spend samples in a
      sliding one-hour window, read out as budget-fractions per hour;
    - the deterministic head sampler and the bounded on-disk slow-log
      exemplar ring.

    Determinism: the sampling decision is a pure FNV-1a hash of the
    request key — no RNG is consulted anywhere in this module, so
    enabling sampling cannot perturb any mechanism output (pinned by the
    sampling-determinism diff test in [test_server.ml]).

    Thread-safety: histogram observation is lock-free; table
    find-or-create and the shed/burn/exemplar paths take a short
    internal mutex.  Reads ({!health}, {!stats_json}, the row views)
    merge live shards and may run concurrently with writers. *)

type t

val create :
  ?shards:int ->
  ?sample_every:int ->
  ?slow_threshold_ms:float ->
  ?slow_log:string ->
  ?slow_keep:int ->
  ?rules:Obs.Slo.rule list ->
  unit ->
  t
(** [sample_every = 0] (default) disables head sampling; [N > 0] keeps
    every request whose key hashes to [0 mod N].  [slow_threshold_ms]
    defaults to 250; [slow_log] is the exemplar directory (created on
    first write; no exemplars are written without it); [slow_keep]
    (default 64) bounds the ring.  [rules] default to
    {!Obs.Slo.default_rules}. *)

val sample_every : t -> int
val slow_threshold_ns : t -> int
val slow_log_dir : t -> string option
val rules : t -> Obs.Slo.rule list

(** {2 Recording} *)

val record_request : t -> verb:string -> tenant:string -> ns:int -> unit
val record_queue_wait : t -> verb:string -> ns:int -> unit

val record_submit : t -> unit
(** Count one admission attempt (accepted or shed). *)

val record_shed : t -> Wire.shed_reason -> unit

val record_burn :
  t -> tenant:string -> dataset:string -> budget_eps:float -> spent_eps:float ->
  now_ns:int64 -> unit
(** Append an ε-spend sample to the (tenant, dataset) window. *)

(** {2 Deterministic sampling and the exemplar ring} *)

val fnv1a : string -> int64
(** 64-bit FNV-1a (the sampling hash; exposed for the determinism
    tests). *)

val sampled : t -> key:string -> bool
(** True iff head sampling is on and [fnv1a key mod sample_every = 0].
    Pure: same key, same answer, forever. *)

val write_exemplar : t -> verb:string -> seq:int -> reason:string -> json:string -> unit
(** Write one exemplar (a Chrome-trace JSON document) into the ring as
    [exemplar-<seq>-<reason>-<verb>.trace.json], then prune the ring to
    the newest [slow_keep] files.  No-op without [slow_log].  Write
    failures are swallowed: telemetry must never fail a request. *)

val exemplar_files : t -> string list
(** Absolute paths of ring files, oldest first; [[]] without
    [slow_log]. *)

(** {2 Views} *)

val request_rows : t -> (string * string * Obs.Hist.snapshot) list
(** [(verb, tenant, hist)], sorted. *)

val wait_rows : t -> (string * Obs.Hist.snapshot) list
(** [(verb, hist)], sorted. *)

val burn_rows : t -> now_ns:int64 -> (string * string * float) list
(** [(tenant, dataset, eps-budget-fraction per hour)], sorted.  The rate
    is the spend increase across the window divided by the window's
    span (floored at 5 minutes, so a fresh burst reads as a sustained
    pace rather than an infinite spike), per hour, over the ε budget. *)

val shed_rows : t -> (string * int) list
(** [(reason, count)] for the three shed reasons, always all three. *)

val submissions : t -> int

val health : t -> now_ns:int64 -> Obs.Slo.verdict list
(** Evaluate the configured rules against current observations. *)

val stats_json : t -> now_ns:int64 -> Engine.Json.t
