let src = Logs.Src.create "privcluster.good-radius" ~doc:"Algorithm 1 (GoodRadius)"

module Log = (val Logs.src_log src : Logs.LOG)

type result = {
  radius : float;
  radius_index : int;
  gamma : float;
  delta_bound : float;
  zero_shortcut : bool;
  score_evals : int;
}

(* The candidate radius set, per the profile: the paper's linear grid or the
   geometric alternative.  [half i] is the index whose radius is (at least)
   half of candidate [i]'s — exact for linear ([i/2]) and for geometric
   ([i − 2], since consecutive radii differ by √2). *)
type candidates = { size : int; radius_of : int -> float; half : int -> int }

let candidates (profile : Profile.t) grid =
  match profile.Profile.radius_grid with
  | Profile.Linear ->
      {
        size = Geometry.Grid.radius_candidates grid;
        radius_of = Geometry.Grid.radius_of_index grid;
        half = (fun i -> i / 2);
      }
  | Profile.Geometric ->
      {
        size = Geometry.Grid.geometric_candidates grid;
        radius_of = Geometry.Grid.geometric_radius_of_index grid;
        half = (fun i -> max 0 (i - 2));
      }

let pp_result ppf r =
  Format.fprintf ppf "{radius=%.5f; index=%d; gamma=%.1f; delta<=%.1f; zero=%b; evals=%d}"
    r.radius r.radius_index r.gamma r.delta_bound r.zero_shortcut r.score_evals

let gamma (profile : Profile.t) ~grid ~eps ~delta:_ ~beta =
  let size = (candidates profile grid).size in
  match profile.Profile.backend with
  | Profile.Rec_concave ->
      2.
      *. Recconcave.Rec_concave.loss_bound ~base:profile.Profile.rc_base ~size
           ~eps:(eps /. 2.) ~beta:(beta /. 2.) ()
  | Profile.Binary_search ->
      Recconcave.Monotone_search.accuracy_bound ~size ~eps:(eps /. 2.) ~sensitivity:2.0
        ~beta:(beta /. 2.)

let run rng (profile : Profile.t) ~grid ~eps ~delta ~beta ~t ?(zero_floor = 0.) index =
  if not (eps > 0.) then invalid_arg "Good_radius.run: eps must be positive";
  if t < 1 || t > Geometry.Pointset.n (Geometry.Pointset.index_pointset index) then
    invalid_arg "Good_radius.run: t must be in [1, n]";
  (* Stage span carrying GoodRadius's budgeted share (the invocation
     (ε, δ)); the mechanism children — zero-test Laplace at ε/2 and the
     RecConcave / binary-search run at ε/2 — consume exactly ε of it. *)
  Obs.Span.with_charged ~cat:"stage"
    ~attrs:(fun () -> [ ("t", Obs.Span.I t) ])
    ~eps ~delta "good_radius"
  @@ fun () ->
  let cand = candidates profile grid in
  let g = gamma profile ~grid ~eps ~delta ~beta in
  let tf = float_of_int t in
  let score =
    match profile.Profile.backend with
    | Profile.Rec_concave ->
        (* RecConcave's covering cells evaluate L at every candidate index
           (twice over, memoized), so the eager batched sweep does exactly
           the work the lazy path would — with the per-point cost shared
           across all radii ([Pointset.score_l_many]).  Values are
           bit-identical to per-radius [score_l]; [Quality]'s memo/evals
           bookkeeping is unchanged. *)
        let radii = Array.init cand.size cand.radius_of in
        let l_all = Geometry.Pointset.score_l_many index ~cap:t ~radii in
        Recconcave.Quality.create ~size:cand.size ~f:(Array.get l_all)
    | Profile.Binary_search ->
        (* The monotone search touches O(log size) radii; stay lazy. *)
        Recconcave.Quality.create ~size:cand.size ~f:(fun i ->
            Geometry.Pointset.score_l index ~cap:t ~radius:(cand.radius_of i))
  in
  let l i = Recconcave.Quality.eval score i in
  (* Step 2: radius-zero shortcut.  L has sensitivity 2, budget ε/2.  The
     paper's threshold t − 2Γ − slack is floored: when t < 2Γ the paper's
     test is vacuously true (its guarantee is out of regime) and would fire
     on incidental duplication far below the requested cluster size.  The
     floor max(2·slack, t/2) keeps the shortcut meaning "a radius-0 cluster
     of size comparable to the request exists"; raising the threshold never
     hurts utility because the main search covers radius 0 too (index 0 is
     a candidate). *)
  let slack = 4. /. eps *. log (2. /. beta) in
  (* Sensitivity-2 release at ε/2: scale 2/(ε/2) = 4/ε, bit-identical to
     the former direct [Rng.laplace] draw. *)
  let l0_noisy = Prim.Laplace.scalar rng ~eps:(eps /. 2.) ~sensitivity:2.0 (l 0) in
  let zero_threshold =
    Float.max (tf -. (2. *. g) -. slack)
      (Float.max zero_floor (Float.max (2. *. slack) (tf /. 2.)))
  in
  let delta_bound = (4. *. g) +. slack in
  Log.debug (fun m ->
      m "gamma=%.1f candidates=%d L(0)~%.1f zero-threshold=%.1f" g cand.size l0_noisy
        zero_threshold);
  if tf < 2. *. g then
    Log.warn (fun m ->
        m
          "t = %d is below the certified regime (t < 2*Gamma = %.0f at this eps/profile): the \
           returned radius is best-effort only"
          t (2. *. g));
  if l0_noisy > zero_threshold then
    {
      radius = 0.;
      radius_index = 0;
      gamma = g;
      delta_bound;
      zero_shortcut = true;
      score_evals = Recconcave.Quality.evals score;
    }
  else begin
    let idx =
      match profile.Profile.backend with
      | Profile.Rec_concave ->
          (* Steps 3–4: Q(r) = ½·min(t − L(r/2), L(r) − t + 4Γ), searched by
             RecConcave with budget ε/2. *)
          let q =
            Recconcave.Quality.create ~size:cand.size ~f:(fun i ->
                0.5 *. Float.min (tf -. l (cand.half i)) (l i -. tf +. (4. *. g)))
          in
          let report =
            Recconcave.Rec_concave.solve rng ~eps:(eps /. 2.) ~base:profile.Profile.rc_base q
          in
          report.Recconcave.Rec_concave.chosen
      | Profile.Binary_search ->
          (* Footnote alternative: smallest radius whose (noisy) L clears
             t − 2Γ; L is monotone in the radius. *)
          let r =
            Recconcave.Monotone_search.solve rng ~eps:(eps /. 2.) ~sensitivity:2.0
              ~target:(tf -. (2. *. g))
              score
          in
          r.Recconcave.Monotone_search.index
    in
    Log.debug (fun m ->
        m "chose index %d -> radius %.5f (L evals %d)" idx (cand.radius_of idx)
          (Recconcave.Quality.evals score));
    {
      radius = cand.radius_of idx;
      radius_index = idx;
      gamma = g;
      delta_bound;
      zero_shortcut = false;
      score_evals = Recconcave.Quality.evals score;
    }
  end
