test/test_invariants.ml: Alcotest Array Float Geometry List Prim Privcluster QCheck2 Recconcave Testutil
