let noise rng ~eps ~sensitivity =
  if not (eps > 0.) then invalid_arg "Laplace.noise: eps must be positive";
  if not (sensitivity > 0.) then invalid_arg "Laplace.noise: sensitivity must be positive";
  Rng.laplace rng ~scale:(sensitivity /. eps) ()

let scalar rng ~eps ~sensitivity x = x +. noise rng ~eps ~sensitivity
let count rng ~eps n = scalar rng ~eps ~sensitivity:1.0 (float_of_int n)

let vector rng ~eps ~l1_sensitivity v =
  Array.map (fun x -> x +. noise rng ~eps ~sensitivity:l1_sensitivity) v

let tail_bound ~eps ~sensitivity ~beta =
  if not (beta > 0. && beta <= 1.) then invalid_arg "Laplace.tail_bound: beta in (0, 1]";
  sensitivity /. eps *. log (1. /. beta)

let cdf ~eps ~sensitivity ?(mu = 0.) x =
  if not (eps > 0.) then invalid_arg "Laplace.cdf: eps must be positive";
  if not (sensitivity > 0.) then invalid_arg "Laplace.cdf: sensitivity must be positive";
  let scale = sensitivity /. eps in
  let z = (x -. mu) /. scale in
  if z < 0. then 0.5 *. exp z else 1. -. (0.5 *. exp (-.z))
