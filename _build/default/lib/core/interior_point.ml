type result = { point : float; oracle_radius : float; candidates : int }

let depth_quality values a =
  let le = ref 0 and ge = ref 0 in
  Array.iter
    (fun x ->
      if x <= a then incr le;
      if x >= a then incr ge)
    values;
  float_of_int (min !le !ge)

let run rng profile ~grid ~eps ~delta ~beta ~inner_n ~w values =
  if Geometry.Grid.dim grid <> 1 then invalid_arg "Interior_point.run: grid must be 1-D";
  let m = Array.length values in
  if inner_n < 1 || inner_n > m then invalid_arg "Interior_point.run: inner_n out of range";
  if not (w >= 1.) then invalid_arg "Interior_point.run: w must be >= 1";
  (* Step 1: the middle inner_n entries. *)
  let sorted = Array.copy values in
  Array.sort Float.compare sorted;
  let mid_start = (m - inner_n) / 2 in
  let middle = Array.init inner_n (fun i -> [| sorted.(mid_start + i) |]) in
  (* Step 2: the 1-cluster oracle with t = inner_n. *)
  match One_cluster.run rng profile ~grid ~eps ~delta ~beta ~t:inner_n middle with
  | Error f -> Error f
  | Ok cluster ->
      let c = cluster.One_cluster.center.(0) in
      let r = cluster.One_cluster.radius in
      if r = 0. then Ok { point = c; oracle_radius = 0.; candidates = 1 }
      else begin
        (* Step 3: cut I = [c − r, c + r] into pieces of length r/w; the cut
           points J contain an interior point of the middle entries. *)
        let piece = r /. w in
        let pieces = int_of_float (Float.ceil (2. *. r /. piece)) in
        let cuts = Array.init (pieces + 1) (fun i -> c -. r +. (float_of_int i *. piece)) in
        (* Step 4: RecConcave on the depth quality over J, promise (m−n)/2. *)
        let q =
          Recconcave.Quality.create ~size:(Array.length cuts) ~f:(fun i ->
              depth_quality values cuts.(i))
        in
        let report =
          Recconcave.Rec_concave.solve rng ~eps ~base:profile.Profile.rc_base q
        in
        Ok
          {
            point = cuts.(report.Recconcave.Rec_concave.chosen);
            oracle_radius = r;
            candidates = Array.length cuts;
          }
      end

let rec log_star x = if x <= 1. then 0. else 1. +. log_star (log x /. log 2.)

let required_m ~n ~w ~eps ~delta ~beta =
  let ls = log_star (4. *. w) in
  float_of_int n
  +. ((8. ** ls) *. (144. *. ls /. eps) *. log (12. *. ls /. (beta *. delta)))
