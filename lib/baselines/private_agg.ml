type result = { center : Geometry.Vec.t; radius : float }

let coordinate_median rng ~grid ~eps coords =
  let axis = Geometry.Grid.axis_size grid in
  let h = Geometry.Grid.step grid in
  let n2 = float_of_int (Array.length coords) /. 2. in
  let candidates = Array.init axis (fun i -> float_of_int i *. h) in
  let rank v = Array.fold_left (fun acc x -> if x <= v then acc + 1 else acc) 0 coords in
  let qualities =
    Array.map (fun v -> -.Float.abs (float_of_int (rank v) -. n2)) candidates
  in
  candidates.(Prim.Exp_mech.select rng ~eps ~sensitivity:1.0 ~qualities)

let run rng ~grid ~eps ~t ps =
  let d = Geometry.Pointset.dim ps in
  if d <> Geometry.Grid.dim grid then invalid_arg "Private_agg.run: dimension mismatch";
  let eps_axis = eps /. 2. /. float_of_int d in
  let center =
    Array.init d (fun i ->
        coordinate_median rng ~grid ~eps:eps_axis (Geometry.Pointset.coords_axis ps i))
  in
  (* Private radius search: the in-ball count around the (now public) center
     is a monotone sensitivity-1 function of the radius. *)
  let size = Geometry.Grid.radius_candidates grid in
  let count =
    Recconcave.Quality.create ~size ~f:(fun i ->
        float_of_int
          (Geometry.Pointset.ball_count ps ~center
             ~radius:(Geometry.Grid.radius_of_index grid i)))
  in
  let slack =
    Recconcave.Monotone_search.accuracy_bound ~size ~eps:(eps /. 2.) ~sensitivity:1.0 ~beta:0.1
  in
  let search =
    Recconcave.Monotone_search.solve rng ~eps:(eps /. 2.) ~sensitivity:1.0
      ~target:(float_of_int t -. slack)
      count
  in
  { center; radius = Geometry.Grid.radius_of_index grid search.Recconcave.Monotone_search.index }

let gupt_average rng ~grid ~eps ~delta points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Private_agg.gupt_average: empty";
  let sensitivity = Geometry.Grid.diameter grid /. float_of_int n in
  Prim.Gaussian_mech.vector rng ~eps ~delta ~l2_sensitivity:sensitivity
    (Geometry.Vec.mean points)
