test/test_rng.ml: Array Hashtbl Prim Printf Testutil
