lib/geometry/pointset.mli: Vec
