lib/core/good_radius.ml: Float Format Geometry Logs Prim Profile Recconcave
