(* The projection matrix is stored flat (output_dim × input_dim, row-major)
   and drawn row by row with the same RNG sequence as the historical boxed
   representation, so [apply] is bit-identical to the old per-row dot
   products and [project] is the same arithmetic as a blocked mat-mul over
   a whole pointset. *)

type t = { mat : float array; input_dim : int; output_dim : int; scale : float }

let make rng ~input_dim ~output_dim =
  if input_dim <= 0 || output_dim <= 0 then invalid_arg "Jl.make: dimensions must be positive";
  let mat = Array.make (output_dim * input_dim) 0. in
  for r = 0 to output_dim - 1 do
    Vec.set_row mat ~off:(r * input_dim)
      (Prim.Rng.gaussian_vector rng ~dim:input_dim ~sigma:1.0)
  done;
  { mat; input_dim; output_dim; scale = 1. /. sqrt (float_of_int output_dim) }

let input_dim t = t.input_dim
let output_dim t = t.output_dim

let apply t v =
  if Vec.dim v <> t.input_dim then invalid_arg "Jl.apply: dimension mismatch";
  Array.init t.output_dim (fun r ->
      t.scale *. Vec.dot_row t.mat ~off:(r * t.input_dim) ~dim:t.input_dim v)

let apply_all t vs = Array.map (apply t) vs

let project t ps =
  if Pointset.dim ps <> t.input_dim then invalid_arg "Jl.project: dimension mismatch";
  let n = Pointset.n ps in
  let st = Pointset.storage ps and offs = Pointset.row_offsets ps in
  let out = Array.make (n * t.output_dim) 0. in
  Kernel.jl_project ~mat:t.mat ~st ~offs ~n ~in_dim:t.input_dim ~out_dim:t.output_dim
    ~scale:t.scale ~out;
  Pointset.of_storage ~dim:t.output_dim out

let target_dim ~n ~eta ~beta =
  if n <= 0 then invalid_arg "Jl.target_dim: n must be positive";
  if not (eta > 0. && eta < 1.) then invalid_arg "Jl.target_dim: eta in (0, 1)";
  if not (beta > 0. && beta < 1.) then invalid_arg "Jl.target_dim: beta in (0, 1)";
  let nf = float_of_int n in
  int_of_float (Float.ceil (8. /. (eta *. eta) *. log (2. *. nf *. nf /. beta)))

let paper_dim ~n ~beta =
  if n <= 0 then invalid_arg "Jl.paper_dim: n must be positive";
  if not (beta > 0. && beta < 1.) then invalid_arg "Jl.paper_dim: beta in (0, 1)";
  max 1 (int_of_float (Float.ceil (46. *. log (2. *. float_of_int n /. beta))))
