(** Algorithm 3 — IntPoint: solving the interior-point problem from a
    1-cluster oracle (Theorem 5.3).

    The interior-point problem (Definition 5.1): given [D ∈ X^m], output any
    [x] with [min D ≤ x ≤ max D].  Bun et al. proved its sample complexity
    under DP is [Ω(log* |X|)]; Theorem 5.3 reduces it to the 1-cluster
    problem, which is how the paper shows 1-cluster is impossible over
    infinite domains (Corollary 5.4).  This module implements the reduction
    — both to demonstrate the lower-bound argument (experiment E10) and
    because a private interior-point routine is independently useful.

    The reduction: run the 1-cluster oracle on the middle [n] entries to get
    an interval [I] of length [2r]; cut [I] into pieces of length [r/w]
    (each too short to contain all of the middle entries); the cut points
    [J] then contain an interior point of [D], found with RecConcave on the
    depth quality [q(a) = min(#{x ≤ a}, #{x ≥ a})].

    Privacy: [(2ε, 2δ)]-DP when the oracle is [(ε, δ)]-DP and RecConcave is
    run with [(ε, δ)] (Theorem 5.3). *)

type result = {
  point : float;  (** The returned (hopefully interior) point. *)
  oracle_radius : float;  (** The 1-cluster oracle's interval half-length. *)
  candidates : int;  (** |J| — the number of cut points RecConcave chose among. *)
}

val depth_quality : float array -> float -> float
(** [q(S, a) = min(#{x ∈ S : x ≤ a}, #{x ∈ S : x ≥ a})] — the sensitivity-1,
    quasi-concave-in-[a] quality of step 4 (exposed for tests). *)

val run :
  Prim.Rng.t ->
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  inner_n:int ->
  w:float ->
  float array ->
  (result, One_cluster.failure) Stdlib.result
(** [run rng profile ~grid ~eps ~delta ~beta ~inner_n ~w values] — [grid]
    must be 1-dimensional; [inner_n] is the size of the middle sub-database
    fed to the 1-cluster oracle (the oracle is called with [t = inner_n]);
    [w] is the oracle's radius-approximation factor, which sets the cut
    length [r/w].  @raise Invalid_argument if [grid] is not 1-D or
    [inner_n > length values]. *)

val required_m : n:int -> w:float -> eps:float -> delta:float -> beta:float -> float
(** Theorem 5.3's sample-size requirement
    [m = n + 8^{log*(4w)} · (144·log*(4w)/ε) · ln(12·log*(4w)/(βδ))]. *)
