(** JSON tree and printer — re-export of {!Obs.Json}.

    The engine's reports (per-job results, the privacy ledger, telemetry
    dumps) are machine-readable JSON; the project deliberately has no
    JSON dependency, so {!Obs.Json} carries the few dozen lines of
    emitter (and, for the observability exporters, parser) the project
    needs.  This alias preserves the historical [Engine.Json] path. *)

include module type of Obs.Json
