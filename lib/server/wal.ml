module Json = Engine.Json
module Accountant = Engine.Accountant

type synth = {
  n : int;
  dim : int;
  axis : int;
  frac : float;
  radius : float;
  seed : int;
}

type op =
  | Open of { mode : Accountant.mode; budget : Prim.Dp.params; synth : synth option }
  | Charge of { label : string; cost : Prim.Dp.params }
  | Refuse of { label : string; cost : Prim.Dp.params; reserve : bool }
  | Reserve of { rid : int; label : string; cost : Prim.Dp.params }
  | Commit of { rid : int }
  | Release of { rid : int }
  | Append of { epoch : int; dim : int; points : float array }
      (** Epoch transition: the appended rows, flattened row-major and
          hex-exact — replay re-appends the same coordinates bit-for-bit. *)
  | Retire of { epoch : int; from_ : int; count : int }
  | Cached of { epoch : int; signature : string; seed : int; stream : int; output : Json.t }
      (** A result-cache entry ([output] is {!Engine.Job.output_to_wire});
          replay restores it so a restarted daemon serves the same
          recorded answers without re-running anything. *)
  | Standing of { line : string; seed : int; stream : int }
      (** A standing-query registration (its jobs-file line plus the
          registration-time randomness coordinates); replayed {e after}
          the budget ops so {!Engine.Service.restore_standing} can adopt
          the already-replayed reservations. *)

type record = { tenant : string; dataset : string; op : op }

type tail = Clean | Torn of int

let record_of_event ~tenant ~dataset (ev : Accountant.event) =
  let op =
    match ev with
    | Accountant.Charged { label; cost } -> Charge { label; cost }
    | Accountant.Refused { label; cost; reserve; refusal = _ } -> Refuse { label; cost; reserve }
    | Accountant.Reserved { id; label; cost } -> Reserve { rid = id; label; cost }
    | Accountant.Committed { id; label = _; cost = _ } -> Commit { rid = id }
    | Accountant.Released { id; label = _; cost = _ } -> Release { rid = id }
  in
  { tenant; dataset; op }

(* --- payload encoding --------------------------------------------------- *)

(* ε/δ ride as hex-float strings: the JSON emitter renders Float with
   %.12g, which rounds, and a replayed charge must be bit-identical to
   the original or "replay = uninterrupted run" stops being an equality. *)
let float_str x = Json.String (Printf.sprintf "%h" x)

let cost_fields (p : Prim.Dp.params) =
  [ ("eps", float_str p.Prim.Dp.eps); ("delta", float_str p.Prim.Dp.delta) ]

let payload_of_record r =
  let base = [ ("t", Json.String r.tenant); ("d", Json.String r.dataset) ] in
  let rest =
    match r.op with
    | Open { mode; budget; synth } ->
        [ ("op", Json.String "open"); ("mode", Json.String (Accountant.mode_name mode)) ]
        @ (match mode with
          | Accountant.Basic -> []
          | Accountant.Advanced { slack } | Accountant.Zcdp { slack } ->
              [ ("slack", float_str slack) ])
        @ [ ("budget_eps", float_str budget.Prim.Dp.eps);
            ("budget_delta", float_str budget.Prim.Dp.delta);
          ]
        @ (match synth with
          | None -> []
          | Some s ->
              [ ("n", Json.Int s.n); ("dim", Json.Int s.dim); ("axis", Json.Int s.axis);
                ("frac", float_str s.frac); ("radius", float_str s.radius);
                ("seed", Json.Int s.seed);
              ])
    | Charge { label; cost } ->
        (("op", Json.String "charge") :: ("label", Json.String label) :: cost_fields cost)
    | Refuse { label; cost; reserve } ->
        ("op", Json.String "refuse") :: ("label", Json.String label)
        :: ("reserve", Json.Bool reserve) :: cost_fields cost
    | Reserve { rid; label; cost } ->
        ("op", Json.String "reserve") :: ("rid", Json.Int rid)
        :: ("label", Json.String label) :: cost_fields cost
    | Commit { rid } -> [ ("op", Json.String "commit"); ("rid", Json.Int rid) ]
    | Release { rid } -> [ ("op", Json.String "release"); ("rid", Json.Int rid) ]
    | Append { epoch; dim; points } ->
        [
          ("op", Json.String "append");
          ("epoch", Json.Int epoch);
          ("dim", Json.Int dim);
          ( "points",
            Json.String
              (String.concat " " (Array.to_list (Array.map (Printf.sprintf "%h") points))) );
        ]
    | Retire { epoch; from_; count } ->
        [
          ("op", Json.String "retire");
          ("epoch", Json.Int epoch);
          ("from", Json.Int from_);
          ("count", Json.Int count);
        ]
    | Cached { epoch; signature; seed; stream; output } ->
        [
          ("op", Json.String "cached");
          ("epoch", Json.Int epoch);
          ("sig", Json.String signature);
          ("seed", Json.Int seed);
          ("stream", Json.Int stream);
          ("output", output);
        ]
    | Standing { line; seed; stream } ->
        [
          ("op", Json.String "standing");
          ("line", Json.String line);
          ("seed", Json.Int seed);
          ("stream", Json.Int stream);
        ]
  in
  Json.to_string ~indent:false (Json.Obj (base @ rest))

let get what field json conv =
  match Option.bind (Json.member field json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "record %s: missing or malformed %S" what field)

let get_float what field json =
  match Option.bind (Json.member field json) Json.to_str with
  | Some s -> (
      match float_of_string_opt s with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "record %s: %S is not a hex float" what field))
  | None -> Error (Printf.sprintf "record %s: missing or malformed %S" what field)

let ( let* ) = Result.bind

let record_of_payload payload =
  let* json = Json.parse payload in
  let* tenant = get "?" "t" json Json.to_str in
  let* dataset = get "?" "d" json Json.to_str in
  let* opname = get "?" "op" json Json.to_str in
  let cost () =
    let* eps = get_float opname "eps" json in
    let* delta = get_float opname "delta" json in
    Ok { Prim.Dp.eps; delta }
  in
  let* op =
    match opname with
    | "open" ->
        let* mode_s = get opname "mode" json Json.to_str in
        let* slack =
          match Json.member "slack" json with
          | None -> Ok 1e-9
          | Some _ -> get_float opname "slack" json
        in
        let* mode =
          match Accountant.mode_of_string ~slack mode_s with
          | Ok m -> Ok m
          | Error e -> Error ("record open: " ^ e)
        in
        let* eps = get_float opname "budget_eps" json in
        let* delta = get_float opname "budget_delta" json in
        let* synth =
          (* Pre-synth journals lack these fields; [None] marks a legacy
             record whose registration parameters were not pinned. *)
          match Json.member "n" json with
          | None -> Ok None
          | Some _ ->
              let* n = get opname "n" json Json.to_int in
              let* dim = get opname "dim" json Json.to_int in
              let* axis = get opname "axis" json Json.to_int in
              let* frac = get_float opname "frac" json in
              let* radius = get_float opname "radius" json in
              let* seed = get opname "seed" json Json.to_int in
              Ok (Some { n; dim; axis; frac; radius; seed })
        in
        Ok (Open { mode; budget = { Prim.Dp.eps; delta }; synth })
    | "charge" ->
        let* label = get opname "label" json Json.to_str in
        let* cost = cost () in
        Ok (Charge { label; cost })
    | "refuse" ->
        let* label = get opname "label" json Json.to_str in
        let* reserve =
          match Json.member "reserve" json with
          | Some (Json.Bool b) -> Ok b
          | _ -> Error "record refuse: missing or malformed \"reserve\""
        in
        let* cost = cost () in
        Ok (Refuse { label; cost; reserve })
    | "reserve" ->
        let* rid = get opname "rid" json Json.to_int in
        let* label = get opname "label" json Json.to_str in
        let* cost = cost () in
        Ok (Reserve { rid; label; cost })
    | "commit" ->
        let* rid = get opname "rid" json Json.to_int in
        Ok (Commit { rid })
    | "release" ->
        let* rid = get opname "rid" json Json.to_int in
        Ok (Release { rid })
    | "append" ->
        let* epoch = get opname "epoch" json Json.to_int in
        let* dim = get opname "dim" json Json.to_int in
        let* pts = get opname "points" json Json.to_str in
        let toks = String.split_on_char ' ' pts |> List.filter (fun s -> s <> "") in
        let* points =
          List.fold_left
            (fun acc tok ->
              let* acc = acc in
              match float_of_string_opt tok with
              | Some f -> Ok (f :: acc)
              | None -> Error (Printf.sprintf "record append: %S is not a hex float" tok))
            (Ok []) toks
          |> Result.map (fun l -> Array.of_list (List.rev l))
        in
        if dim < 1 || Array.length points = 0 || Array.length points mod dim <> 0 then
          Error "record append: points not a multiple of dim"
        else Ok (Append { epoch; dim; points })
    | "retire" ->
        let* epoch = get opname "epoch" json Json.to_int in
        let* from_ = get opname "from" json Json.to_int in
        let* count = get opname "count" json Json.to_int in
        Ok (Retire { epoch; from_; count })
    | "cached" ->
        let* epoch = get opname "epoch" json Json.to_int in
        let* signature = get opname "sig" json Json.to_str in
        let* seed = get opname "seed" json Json.to_int in
        let* stream = get opname "stream" json Json.to_int in
        let* output =
          match Json.member "output" json with
          | Some o -> Ok o
          | None -> Error "record cached: missing \"output\""
        in
        Ok (Cached { epoch; signature; seed; stream; output })
    | "standing" ->
        let* line = get opname "line" json Json.to_str in
        let* seed = get opname "seed" json Json.to_int in
        let* stream = get opname "stream" json Json.to_int in
        Ok (Standing { line; seed; stream })
    | other -> Error (Printf.sprintf "record: unknown op %S" other)
  in
  Ok { tenant; dataset; op }

(* --- framing ------------------------------------------------------------ *)

let magic = "PW1 "

let frame payload =
  Printf.sprintf "%s%08x %s %s\n" magic (String.length payload)
    (Crc32.to_hex (Crc32.string payload))
    payload

(* Parse one frame at [pos]; Ok (record, next_pos) or Error reason.  Any
   failure here is indistinguishable, locally, from a torn final write —
   [load] decides which it was by looking for valid frames further on. *)
let parse_frame contents pos =
  let len = String.length contents in
  let header = 4 + 8 + 1 + 8 + 1 in
  if pos + header > len then Error "truncated header"
  else if String.sub contents pos 4 <> magic then Error "bad magic"
  else
    match int_of_string_opt ("0x" ^ String.sub contents (pos + 4) 8) with
    | None -> Error "bad length field"
    | Some plen ->
        if String.get contents (pos + 12) <> ' ' then Error "bad header"
        else
          let crc_hex = String.sub contents (pos + 13) 8 in
          if String.get contents (pos + 21) <> ' ' then Error "bad header"
          else if pos + header + plen + 1 > len then Error "truncated payload"
          else
            let payload = String.sub contents (pos + header) plen in
            if String.get contents (pos + header + plen) <> '\n' then Error "missing newline"
            else
              match Crc32.of_hex crc_hex with
              | None -> Error "bad crc field"
              | Some crc when crc <> Crc32.string payload -> Error "crc mismatch"
              | Some _ -> (
                  match record_of_payload payload with
                  | Ok r -> Ok (r, pos + header + plen + 1)
                  | Error e -> Error e)

(* Is there any complete valid frame at or after [pos]?  If yes, a parse
   failure before it was corruption, not a torn tail. *)
let rec valid_frame_after contents pos =
  let len = String.length contents in
  if pos >= len then false
  else
    match String.index_from_opt contents pos 'P' with
    | None -> false
    | Some q -> (
        match parse_frame contents q with
        | Ok _ -> true
        | Error _ -> valid_frame_after contents (q + 1))

let load path =
  match
    (try Some (In_channel.with_open_bin path In_channel.input_all) with Sys_error _ -> None)
  with
  | None -> if Sys.file_exists path then Error (path ^ ": unreadable") else Ok ([], Clean)
  | Some contents ->
      let len = String.length contents in
      let rec go pos acc =
        if pos >= len then Ok (List.rev acc, Clean)
        else
          match parse_frame contents pos with
          | Ok (r, next) -> go next (r :: acc)
          | Error reason ->
              if valid_frame_after contents (pos + 1) then
                Error
                  (Printf.sprintf "%s: corrupt frame at byte %d (%s) before further valid records"
                     path pos reason)
              else Ok (List.rev acc, Torn (len - pos))
      in
      go 0 []

(* --- appending ---------------------------------------------------------- *)

type t = { fd : Unix.file_descr; sync : bool; wal_path : string; mutex : Mutex.t }

let open_ ?(sync = true) path =
  match Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o600 with
  | fd -> Ok { fd; sync; wal_path = path; mutex = Mutex.create () }
  | exception Unix.Unix_error (e, _, _) ->
      Error (Printf.sprintf "%s: %s" path (Unix.error_message e))

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

let append t record =
  let line = frame (payload_of_record record) in
  Mutex.lock t.mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.mutex)
    (fun () ->
      write_all t.fd line;
      if t.sync then Unix.fsync t.fd)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let path t = t.wal_path

let fsync_dir dir =
  (* Make the rename durable; best-effort (not every platform allows
     fsync on a directory fd). *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let compact ?(sync = true) ~path records =
  let tmp = path ^ ".tmp" in
  match
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        List.iter (fun r -> write_all fd (frame (payload_of_record r))) records;
        if sync then Unix.fsync fd);
    Unix.rename tmp path;
    if sync then fsync_dir (Filename.dirname path)
  with
  | () -> Ok ()
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "%s: %s: %s" path fn (Unix.error_message e))

(* --- replay ------------------------------------------------------------- *)

let histories records =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let key = (r.tenant, r.dataset) in
      if not (Hashtbl.mem tbl key) then begin
        Hashtbl.add tbl key (ref []);
        order := key :: !order
      end;
      let ops = Hashtbl.find tbl key in
      ops := r.op :: !ops)
    records;
  List.rev_map (fun key -> (key, List.rev !(Hashtbl.find tbl key))) !order

let opening ops =
  List.find_map
    (function Open { mode; budget; synth } -> Some (mode, budget, synth) | _ -> None)
    ops

let replay ?on_event ?(on_apply = fun (_ : op) -> Ok ()) ops acc =
  let active = ref true in
  (match on_event with
  | Some f -> Accountant.subscribe acc (fun ev -> if !active then f ev)
  | None -> ());
  let outstanding = Hashtbl.create 8 in
  let fail fmt = Printf.ksprintf (fun m -> Error ("replay diverged: " ^ m)) fmt in
  let result =
    List.fold_left
      (fun acc_r op ->
        let* () = acc_r in
        match op with
        | Open _ -> Ok ()  (* validated by the caller before replay *)
        | Append _ | Retire _ | Cached _ | Standing _ -> (
            (* Engine-state ops: no accountant interaction.  The caller
               applies them (mutating the registry / restoring the cache)
               in journal order, interleaved with the budget replay, and
               reports divergence — a journaled mutation that does not
               reproduce the journaled epoch — as an error. *)
            match on_apply op with
            | Ok () -> Ok ()
            | Error e -> fail "%s" e)
        | Charge { label; cost } -> (
            match Accountant.charge acc ~label cost with
            | Ok () -> Ok ()
            | Error _ -> fail "journaled charge %S was refused" label)
        | Refuse { label; cost; reserve } -> (
            let r =
              if reserve then Result.map ignore (Accountant.reserve acc ~label cost)
              else Accountant.charge acc ~label cost
            in
            match r with
            | Error _ -> Ok ()  (* refused again, as journaled *)
            | Ok () -> fail "journaled refusal %S was accepted" label)
        | Reserve { rid; label; cost } -> (
            match Accountant.reserve acc ~label cost with
            | Ok resv ->
                Hashtbl.replace outstanding rid resv;
                Ok ()
            | Error _ -> fail "journaled reservation %S was refused" label)
        | Commit { rid } -> (
            match Hashtbl.find_opt outstanding rid with
            | Some resv ->
                Accountant.commit acc resv;
                Hashtbl.remove outstanding rid;
                Ok ()
            | None -> fail "commit of unknown reservation %d" rid)
        | Release { rid } -> (
            match Hashtbl.find_opt outstanding rid with
            | Some resv ->
                Accountant.release acc resv;
                Hashtbl.remove outstanding rid;
                Ok ()
            | None -> fail "release of unknown reservation %d" rid))
      (Ok ()) ops
  in
  active := false;
  Result.map (fun () -> Hashtbl.length outstanding) result
