(** GUPT-style sample and aggregate (Mohan et al., SIGMOD 2012) — the
    aggregation the paper's Section 6 improves upon.

    Same block structure as Algorithm 4: split the data into [k] blocks,
    apply the off-the-shelf analysis [f] to each, but aggregate the [k]
    outputs by {e differentially private averaging} (mean + Gaussian noise
    at L2-sensitivity [diam/k]) instead of private clustering.

    Strengths and weaknesses, measured in experiment E7: when (almost) all
    block outputs concentrate, the average is accurate and extremely cheap;
    but a constant fraction of wild outputs biases it by a constant, and
    below a 50% good fraction it is uninformative — exactly the regime the
    1-cluster aggregator (Theorem 6.3) still handles. *)

type result = {
  estimate : Geometry.Vec.t;
  blocks : int;
  block_size : int;
}

val run :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  m:int ->
  f:('a array -> Geometry.Vec.t) ->
  'a array ->
  result
(** [(ε, δ)]-DP: a neighbouring input changes one block, hence one of the
    [k] averaged outputs, so the mean has L2-sensitivity [√d / k] over the
    grid cube (outputs are clamped into it).
    @raise Invalid_argument unless the data supplies at least two blocks. *)
