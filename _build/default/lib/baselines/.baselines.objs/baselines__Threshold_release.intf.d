lib/baselines/threshold_release.mli: Geometry Prim
