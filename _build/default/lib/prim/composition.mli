(** Composition theorems and a running privacy-budget accountant.

    Two composition rules from the paper:
    - {b basic} (Theorem 2.1): k adaptive [(ε, δ)]-DP mechanisms compose to
      [(kε, kδ)]-DP;
    - {b advanced} (Theorem 4.7, Dwork–Rothblum–Vadhan): they compose to
      [(ε', kδ + δ')]-DP with [ε' = 2kε² + ε·√(2k·ln(1/δ'))].

    GoodCenter's per-axis interval choices (step 9c) are budgeted with the
    advanced rule, which is where its [ε/(10√(d·ln(8/δ)))] per-axis parameter
    comes from; everything else in the paper uses basic composition. *)

val basic : Dp.params -> k:int -> Dp.params
(** Total cost of [k] mechanisms each charged the given params. *)

val basic_list : Dp.params list -> Dp.params
(** Heterogeneous basic composition: sum the ε's and the δ's. *)

val advanced : Dp.params -> k:int -> delta':float -> Dp.params
(** Total cost under Theorem 4.7 with slack [δ']. *)

val advanced_per_mechanism : total_eps:float -> k:int -> delta':float -> float
(** Inverse direction: the per-mechanism ε that makes [k]-fold advanced
    composition (with slack δ') stay within [total_eps], found by bisection
    on the (monotone) advanced-composition bound.  GoodCenter uses the
    closed-form under-approximation [ε_i = ε/(2·√(2k·ln(1/δ')))]; this
    function is the exact version, for tests and for callers who want the
    tightest split. *)

(** {1 Accountant} *)

type accountant
(** Mutable ledger of charges; useful for asserting that an algorithm's total
    spend matches its declared guarantee. *)

val accountant : unit -> accountant
val charge : accountant -> ?label:string -> Dp.params -> unit
val spent_basic : accountant -> Dp.params
val spent_advanced : accountant -> delta':float -> Dp.params
(** Advanced-composition total; requires all charges to share the same ε and
    δ (raises [Invalid_argument] otherwise — the theorem is stated for
    homogeneous mechanisms). *)

val charges : accountant -> (string * Dp.params) list
(** Charges in the order they were made (label defaults to ["anon"]). *)
