type result = { index : int; comparisons : int; eps_each : float }

let comparisons_for size =
  let rec go n c = if n <= 1 then c else go ((n + 1) / 2) (c + 1) in
  max 1 (go size 0)

let solve rng ~eps ~sensitivity ~target q =
  if not (eps > 0.) then invalid_arg "Monotone_search.solve: eps must be positive";
  let size = Quality.size q in
  let comparisons = comparisons_for size in
  let eps_each = eps /. float_of_int comparisons in
  Obs.Span.with_charged ~cat:"stage"
    ~attrs:(fun () -> [ ("comparisons", Obs.Span.I comparisons); ("size", Obs.Span.I size) ])
    ~eps ~delta:0. "monotone_search"
  @@ fun () ->
  (* Invariant: every index < lo failed its (noisy) comparison; hi is the
     smallest index known (noisily) to reach the target, or size - 1.  Each
     comparison is a Laplace release at ε_each ([Laplace.scalar] draws with
     scale sensitivity/ε_each, bit-identical to the former direct draw). *)
  let lo = ref 0 and hi = ref (size - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let noisy = Prim.Laplace.scalar rng ~eps:eps_each ~sensitivity (Quality.eval q mid) in
    if noisy >= target then hi := mid else lo := mid + 1
  done;
  { index = !lo; comparisons; eps_each }

let accuracy_bound ~size ~eps ~sensitivity ~beta =
  let comparisons = comparisons_for size in
  let eps_each = eps /. float_of_int comparisons in
  let beta_each = beta /. float_of_int comparisons in
  Prim.Laplace.tail_bound ~eps:eps_each ~sensitivity ~beta:beta_each
