type labels = (string * string) list

type hist = {
  bounds : float array;
  counts : int array;
  sum : float;
  count : int;
}

type summary = {
  quantiles : (float * float) list;
  sum : float;
  count : int;
}

type family =
  | Counter of { name : string; help : string; samples : (labels * float) list }
  | Gauge of { name : string; help : string; samples : (labels * float) list }
  | Histogram of { name : string; help : string; samples : (labels * hist) list }
  | Summary of { name : string; help : string; samples : (labels * summary) list }

let sanitize_name s =
  let ok = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false in
  let b = Bytes.of_string s in
  Bytes.iteri (fun i c -> if not (ok c) then Bytes.set b i '_') b;
  let s = Bytes.to_string b in
  match s with
  | "" -> "_"
  | s when (match s.[0] with '0' .. '9' -> true | _ -> false) -> "_" ^ s
  | s -> s

let escape_label_value s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | labels ->
      let body =
        String.concat ","
          (List.map
             (fun (k, v) ->
               Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
             labels)
      in
      "{" ^ body ^ "}"

let render_value v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let render_bound v = if v = Float.infinity then "+Inf" else render_value v

let family_name = function
  | Counter { name; _ } | Gauge { name; _ } | Histogram { name; _ } | Summary { name; _ }
    ->
      sanitize_name name

(* Scrapers diff exposition text; sort families by name and each
   family's samples by label set so output never depends on hash-table
   iteration or construction order. *)
let sort_samples samples =
  List.stable_sort (fun (l1, _) (l2, _) -> compare (l1 : labels) l2) samples

let sort_families families =
  List.stable_sort (fun f1 f2 -> compare (family_name f1) (family_name f2)) families

let render families =
  let buf = Buffer.create 1024 in
  let header name help kind =
    Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name (escape_help help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  let sample name labels v =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name (render_labels labels) (render_value v))
  in
  List.iter
    (fun family ->
      match family with
      | Counter { name; help; samples } ->
          let name = sanitize_name name in
          header name help "counter";
          List.iter (fun (labels, v) -> sample name labels v) (sort_samples samples)
      | Gauge { name; help; samples } ->
          let name = sanitize_name name in
          header name help "gauge";
          List.iter (fun (labels, v) -> sample name labels v) (sort_samples samples)
      | Histogram { name; help; samples } ->
          let name = sanitize_name name in
          header name help "histogram";
          List.iter
            (fun (labels, h) ->
              let cum = ref 0 in
              Array.iteri
                (fun i bound ->
                  cum := !cum + h.counts.(i);
                  sample (name ^ "_bucket")
                    (labels @ [ ("le", render_bound bound) ])
                    (float_of_int !cum))
                h.bounds;
              (* +Inf bucket must equal _count even when per-bucket counts
                 do not cover every observation. *)
              sample (name ^ "_bucket")
                (labels @ [ ("le", "+Inf") ])
                (float_of_int h.count);
              sample (name ^ "_sum") labels h.sum;
              sample (name ^ "_count") labels (float_of_int h.count))
            (sort_samples samples)
      | Summary { name; help; samples } ->
          let name = sanitize_name name in
          header name help "summary";
          List.iter
            (fun (labels, s) ->
              List.iter
                (fun (q, v) ->
                  sample name (labels @ [ ("quantile", render_value q) ]) v)
                s.quantiles;
              sample (name ^ "_sum") labels s.sum;
              sample (name ^ "_count") labels (float_of_int s.count))
            (sort_samples samples))
    (sort_families families);
  Buffer.contents buf

(* --- span aggregation ---------------------------------------------------- *)

type agg = {
  mutable n : int;
  mutable total_ms : float;
  mutable eps : float;
  mutable delta : float;
  mutable charged : bool;
}

let of_spans ?(prefix = "privcluster") spans =
  let tbl : (string * string, agg) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (sp : Span.span) ->
      let key = (sp.name, sp.cat) in
      let a =
        match Hashtbl.find_opt tbl key with
        | Some a -> a
        | None ->
            let a = { n = 0; total_ms = 0.; eps = 0.; delta = 0.; charged = false } in
            Hashtbl.add tbl key a;
            a
      in
      a.n <- a.n + 1;
      a.total_ms <- a.total_ms +. Clock.ns_to_ms sp.dur_ns;
      match sp.span_charge with
      | None -> ()
      | Some c ->
          a.charged <- true;
          a.eps <- a.eps +. c.eps;
          a.delta <- a.delta +. c.delta)
    spans;
  let rows =
    Hashtbl.fold (fun k a acc -> (k, a) :: acc) tbl []
    |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
  in
  let labels (name, cat) = [ ("name", name); ("cat", cat) ] in
  let counts = List.map (fun (k, a) -> (labels k, float_of_int a.n)) rows in
  let durs = List.map (fun (k, a) -> (labels k, a.total_ms)) rows in
  let charged = List.filter (fun (_, a) -> a.charged) rows in
  let epss = List.map (fun (k, a) -> (labels k, a.eps)) charged in
  let deltas = List.map (fun (k, a) -> (labels k, a.delta)) charged in
  [
    Counter
      {
        name = prefix ^ "_spans_total";
        help = "Completed spans by name and category.";
        samples = counts;
      };
    Counter
      {
        name = prefix ^ "_span_ms_total";
        help = "Total span duration in milliseconds by name and category.";
        samples = durs;
      };
  ]
  @ (if charged = [] then []
     else
       [
         Counter
           {
             name = prefix ^ "_span_epsilon_total";
             help = "Total epsilon carried by charged spans, by name and category.";
             samples = epss;
           };
         Counter
           {
             name = prefix ^ "_span_delta_total";
             help = "Total delta carried by charged spans, by name and category.";
             samples = deltas;
           };
       ])
