lib/baselines/gupt.ml: Array Float Geometry Prim
