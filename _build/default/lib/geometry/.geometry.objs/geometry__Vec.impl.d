lib/geometry/vec.ml: Array Float Format
