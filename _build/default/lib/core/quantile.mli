(** Private quantiles over a 1-D grid domain via RecConcave.

    This is the canonical application of the quasi-concave machinery the
    paper imports from [BNS13], and it is the engine behind IntPoint's last
    step: the rank quality [q(S, v) = −|#{x ≤ v} − q·n|] is sensitivity-1
    and quasi-concave in [v], so RecConcave selects a point whose rank is
    within the search loss of the target quantile.  The library exposes it
    directly because a private median / interquartile range is the most
    common need next to clustering itself.

    Guarantee: with probability ≥ 1 − β the returned value's rank error is
    at most {!rank_error_bound}; privacy is [(ε, 0)]-DP per call. *)

type result = {
  value : float;  (** The selected grid value. *)
  target_rank : float;  (** [q·n]. *)
}

val quantile :
  Prim.Rng.t ->
  ?profile:Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  q:float ->
  float array ->
  result
(** [quantile rng ~grid ~eps ~q values] with [q ∈ [0, 1]].
    @raise Invalid_argument unless the grid is 1-D and [q ∈ [0, 1]]. *)

val median :
  Prim.Rng.t -> ?profile:Profile.t -> grid:Geometry.Grid.t -> eps:float -> float array -> result

val interquartile_range :
  Prim.Rng.t ->
  ?profile:Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  float array ->
  float * float
(** The (q25, q75) pair, each charged ε/2 (basic composition). *)

val rank_error_bound :
  ?profile:Profile.t -> grid:Geometry.Grid.t -> eps:float -> beta:float -> unit -> float
(** The RecConcave loss bound over the [|X|]-point solution domain. *)
