external now_ns : unit -> int64 = "obs_clock_now_ns"

let ns_to_ms ns = Int64.to_float ns /. 1e6
let ns_to_us ns = Int64.to_float ns /. 1e3
