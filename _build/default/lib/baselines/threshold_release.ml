type tree = {
  noisy : float array array;  (** [noisy.(level).(i)] — level 0 = leaves. *)
  leaves : int;  (** Padded to a power of two. *)
  axis : int;
  step : float;
}

let levels t = Array.length t.noisy

let bucket_of t x =
  let i = int_of_float (Float.round (x /. t.step)) in
  max 0 (min (t.axis - 1) i)

let release rng ~grid ~eps values =
  if Geometry.Grid.dim grid <> 1 then invalid_arg "Threshold_release.release: grid must be 1-D";
  if not (eps > 0.) then invalid_arg "Threshold_release.release: eps must be positive";
  let axis = Geometry.Grid.axis_size grid in
  let leaves =
    let rec pow2 p = if p >= axis then p else pow2 (2 * p) in
    pow2 1
  in
  let num_levels =
    let rec go p l = if p >= leaves then l + 1 else go (2 * p) (l + 1) in
    go 1 0
  in
  let t =
    { noisy = [||]; leaves; axis; step = Geometry.Grid.step grid }
  in
  let counts = Array.make leaves 0 in
  Array.iter (fun x -> counts.(bucket_of t x) <- counts.(bucket_of t x) + 1) values;
  (* Each point contributes to one node per level: the tree's L1 sensitivity
     is [num_levels], so Lap(num_levels/ε) per node gives (ε, 0)-DP. *)
  let scale = float_of_int num_levels /. eps in
  let noisy = Array.make num_levels [||] in
  let current = ref (Array.map float_of_int counts) in
  for level = 0 to num_levels - 1 do
    noisy.(level) <- Array.map (fun c -> c +. Prim.Rng.laplace rng ~scale ()) !current;
    let w = Array.length !current in
    if w > 1 then
      current := Array.init (w / 2) (fun i -> !current.(2 * i) +. !current.((2 * i) + 1))
  done;
  { t with noisy }

(* Canonical dyadic decomposition of the bucket range [a, b]. *)
let bucket_range_count t ~a ~b =
  let rec go level node_lo node_hi =
    if node_hi < a || node_lo > b then 0.
    else if a <= node_lo && node_hi <= b then t.noisy.(level).(node_lo lsr level)
    else
      let mid = (node_lo + node_hi) / 2 in
      go (level - 1) node_lo mid +. go (level - 1) (mid + 1) node_hi
  in
  go (levels t - 1) 0 (t.leaves - 1)

let range_count t ~lo ~hi =
  if hi < lo then 0. else bucket_range_count t ~a:(bucket_of t lo) ~b:(bucket_of t hi)

let query_error_bound ~grid ~eps ~beta =
  let axis = Geometry.Grid.axis_size grid in
  let lvls = Float.ceil (log (float_of_int axis) /. log 2.) +. 1. in
  (* A range touches m ≤ 2·levels nodes, each Lap(b) with b = levels/ε; the
     sum of m independent Laplace variables concentrates like
     b·√(2m·ln(2/β')) in its sub-Gaussian regime (Chernoff for the Laplace
     mgf), with β' the per-range budget after a union bound over the ≤ |X|²
     ranges.  This is the O(log^{1.5}|X|/ε) rate the literature quotes for
     the tree mechanism. *)
  let m = 2. *. lvls in
  let beta' = beta /. float_of_int (axis * axis) in
  lvls /. eps *. sqrt (2. *. m *. log (2. /. beta'))

type result = { center : Geometry.Vec.t; radius : float; estimated_count : float }

let smallest_interval t ~t:target ~slack =
  let axis = t.axis in
  let prefix = Array.make (axis + 1) 0. in
  for i = 0 to axis - 1 do
    prefix.(i + 1) <- bucket_range_count t ~a:0 ~b:i
  done;
  let need = float_of_int target -. slack in
  let best_for_len len =
    (* Best window [a, a+len-1] of len buckets. *)
    let best = ref neg_infinity and best_a = ref 0 in
    for a = 0 to axis - len do
      let c = prefix.(a + len) -. prefix.(a) in
      if c > !best then begin
        best := c;
        best_a := a
      end
    done;
    (!best, !best_a)
  in
  let rec search lo hi =
    (* Invariant: windows of length hi reach the target; lo-length do not. *)
    if hi - lo <= 1 then hi
    else
      let mid = (lo + hi) / 2 in
      if fst (best_for_len mid) >= need then search lo mid else search mid hi
  in
  let len = if fst (best_for_len 1) >= need then 1 else search 1 axis in
  let count, a = best_for_len len in
  let lo_val = float_of_int a *. t.step in
  let hi_val = float_of_int (a + len - 1) *. t.step in
  {
    center = [| 0.5 *. (lo_val +. hi_val) |];
    radius = 0.5 *. (hi_val -. lo_val);
    estimated_count = count;
  }

let run rng ~grid ~eps ~beta ~t:target values =
  let tree = release rng ~grid ~eps values in
  let slack = query_error_bound ~grid ~eps ~beta in
  smallest_interval tree ~t:target ~slack
