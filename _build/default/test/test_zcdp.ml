(* zCDP accounting. *)

open Testutil

let test_gaussian_rho () =
  check_float ~tol:1e-12 "rho = D^2/2s^2" 0.5 (Prim.Zcdp.of_gaussian ~sigma:1.0 ~l2_sensitivity:1.0);
  check_float ~tol:1e-12 "scales" 0.125 (Prim.Zcdp.of_gaussian ~sigma:2.0 ~l2_sensitivity:1.0)

let test_pure_dp_rho () =
  check_float ~tol:1e-12 "eps^2/2" 0.5 (Prim.Zcdp.of_pure_dp ~eps:1.0);
  check_float ~tol:1e-12 "quarter" 0.125 (Prim.Zcdp.of_pure_dp ~eps:0.5)

let test_compose_additive () =
  check_float ~tol:1e-12 "sum" 0.6 (Prim.Zcdp.compose [ 0.1; 0.2; 0.3 ]);
  check_float "empty" 0. (Prim.Zcdp.compose [])

let test_to_dp_formula () =
  let rho = 0.1 and delta = 1e-6 in
  let p = Prim.Zcdp.to_dp rho ~delta in
  check_float ~tol:1e-9 "conversion"
    (rho +. (2. *. sqrt (rho *. log (1. /. delta))))
    (Prim.Dp.eps p);
  check_float "delta kept" delta (Prim.Dp.delta p)

let test_budget_inversion () =
  let eps = 1.0 and delta = 1e-6 in
  let rho = Prim.Zcdp.eps_budget_to_rho ~eps ~delta in
  let back = Prim.Zcdp.to_dp rho ~delta in
  check_true "stays within budget" (Prim.Dp.eps back <= eps +. 1e-6);
  check_true "not wastefully small" (Prim.Dp.eps back >= 0.99 *. eps)

let test_sigma_inversion () =
  let rho = 0.05 in
  let sigma = Prim.Zcdp.gaussian_sigma ~rho ~l2_sensitivity:2.0 in
  check_float ~tol:1e-9 "round trip" rho (Prim.Zcdp.of_gaussian ~sigma ~l2_sensitivity:2.0)

let test_beats_advanced_composition () =
  (* GoodCenter's d-fold axis composition: compare the noise the advanced
     composition theorem affords per mechanism with what the zCDP ledger
     affords, at the same end-to-end (ε, δ).  zCDP must dominate for large
     d (that is why modern releases use it). *)
  let eps = 0.25 and delta = 1e-6 in
  List.iter
    (fun d ->
      (* Advanced composition: per-mechanism ε, Gaussian at that ε. *)
      let eps_i = Prim.Composition.advanced_per_mechanism ~total_eps:eps ~k:d ~delta':(delta /. 2.) in
      let sigma_adv = Prim.Gaussian_mech.sigma ~eps:eps_i ~delta:(delta /. (2. *. float_of_int d)) ~l2_sensitivity:1.0 in
      (* zCDP: total ρ for (ε, δ), split evenly, Gaussian at ρ_i. *)
      let rho = Prim.Zcdp.eps_budget_to_rho ~eps ~delta in
      let sigma_z =
        Prim.Zcdp.gaussian_sigma ~rho:(Prim.Zcdp.per_mechanism_rho ~total_rho:rho ~k:d)
          ~l2_sensitivity:1.0
      in
      check_true
        (Printf.sprintf "zCDP noise %.1f <= advanced noise %.1f at d=%d" sigma_z sigma_adv d)
        (sigma_z <= sigma_adv *. 1.05))
    [ 8; 64; 512 ]

let test_ledger () =
  let l = Prim.Zcdp.ledger () in
  Prim.Zcdp.spend l ~label:"box" 0.01;
  Prim.Zcdp.spend l ~label:"avg" 0.02;
  check_float ~tol:1e-12 "spent" 0.03 (Prim.Zcdp.spent l);
  check_int "entries" 2 (List.length (Prim.Zcdp.entries l));
  check_true "order" (fst (List.hd (Prim.Zcdp.entries l)) = "box");
  check_true "dp view" (Prim.Dp.eps (Prim.Zcdp.spent_dp l ~delta:1e-6) > 0.)

let test_validation () =
  Alcotest.check_raises "negative rho" (Invalid_argument "Zcdp.compose: negative rho")
    (fun () -> ignore (Prim.Zcdp.compose [ -0.1 ]));
  Alcotest.check_raises "sigma > 0" (Invalid_argument "Zcdp.of_gaussian: sigma must be positive")
    (fun () -> ignore (Prim.Zcdp.of_gaussian ~sigma:0. ~l2_sensitivity:1.))

let suite =
  [
    case "gaussian rho" test_gaussian_rho;
    case "pure-dp rho" test_pure_dp_rho;
    case "additive composition" test_compose_additive;
    case "to_dp formula" test_to_dp_formula;
    case "budget inversion" test_budget_inversion;
    case "sigma inversion" test_sigma_inversion;
    case "beats advanced composition" test_beats_advanced_composition;
    case "ledger" test_ledger;
    case "validation" test_validation;
  ]
