(** Statistical estimators for the verification harness.

    Everything here is classical frequentist machinery — goodness-of-fit
    statistics against a fully specified reference law, and exact binomial
    confidence bounds — implemented from scratch so the test-suite carries
    no numerical dependency.  The special functions (log-gamma, regularized
    incomplete gamma and beta) follow the standard series / continued-
    fraction evaluations and are accurate to ~1e-10 over the ranges the
    harness uses; the inverse used by {!clopper_pearson} is a plain
    bisection, which is plenty at test sample sizes.

    Conventions: every test reports an upper-tail p-value ("probability of
    a statistic at least this extreme under the null"), and a caller
    declares failure by comparing it to an explicit significance level —
    never by a magic count threshold. *)

(** {1 Special functions} *)

val log_gamma : float -> float
(** [ln Γ(x)] (Lanczos, with reflection for [x < 0.5]). *)

val gamma_p : a:float -> x:float -> float
(** Regularized lower incomplete gamma [P(a, x)], for [a > 0], [x ≥ 0]. *)

val gamma_q : a:float -> x:float -> float
(** [Q(a, x) = 1 − P(a, x)]. *)

val reg_inc_beta : a:float -> b:float -> float -> float
(** [reg_inc_beta ~a ~b x] is the regularized incomplete beta [I_x(a, b)] —
    the CDF at [x] of a Beta(a, b) variable. *)

val erfc : float -> float
(** Complementary error function, via the incomplete gamma. *)

val normal_cdf : ?mu:float -> sigma:float -> float -> float
(** Exact Gaussian CDF — the reference law for Gaussian-mechanism output. *)

val chi2_sf : df:int -> float -> float
(** Chi-square survival function [P(X² ≥ x)] at [df] degrees of freedom. *)

(** {1 Binomial confidence intervals} *)

type interval = { lo : float; hi : float }

val clopper_pearson : alpha:float -> k:int -> n:int -> interval
(** The exact (conservative) two-sided Clopper–Pearson [1 − alpha]
    confidence interval for a binomial proportion after observing [k]
    successes in [n] trials.  [lo = 0] when [k = 0] and [hi = 1] when
    [k = n]. *)

(** {1 Goodness-of-fit tests} *)

type ks = { d : float; p_value : float; n : int }

val ks_test : cdf:(float -> float) -> float array -> ks
(** One-sample Kolmogorov–Smirnov against the fully specified [cdf]
    (two-sided [D], asymptotic p-value with Stephens' small-sample
    correction).  The sample array is not modified. *)

type ad = { a2 : float; p_value : float; n : int }

val ad_test : cdf:(float -> float) -> float array -> ad
(** One-sample Anderson–Darling [A²] against the fully specified [cdf]
    (the "case 0" statistic — no estimated parameters).  The p-value is
    interpolated from the asymptotic critical-value table and clamped to
    [\[0.005, 0.25\]]; values at the clamps mean "at most" / "at least".
    For verdicts at standard significance levels use {!ad_critical}. *)

val ad_critical : significance:float -> float
(** The case-0 asymptotic critical value of [A²] at the given upper-tail
    [significance] (log-interpolated between the standard table points;
    clamped to the tabulated range [\[0.005, 0.25\]]). *)

type chi2 = { stat : float; df : int; p_value : float; pooled_cells : int }

val chi2_test : expected:float array -> observed:int array -> chi2
(** Pearson chi-square of observed counts against expected cell
    probabilities ([expected] is normalized internally).  Cells whose
    expected count falls below 5 are pooled into one (the classical
    validity rule); [pooled_cells] reports how many were merged.
    @raise Invalid_argument on length mismatch or an all-zero expectation. *)
