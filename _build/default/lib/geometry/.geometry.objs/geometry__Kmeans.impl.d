lib/geometry/kmeans.ml: Array Float Prim Vec
