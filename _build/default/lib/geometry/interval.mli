(** Randomly shifted interval partitions of an axis.

    Both failed attempts and the final construction of Section 3.2 partition
    each axis into intervals of a fixed length with a uniformly random phase
    (Algorithm 2 steps 3a and 9a).  A {!partition} assigns every real to the
    integer index of its interval; the randomness of the shift is what makes
    a diameter-[ℓ'] set land inside a single length-[ℓ] interval with
    probability [1 − ℓ'/ℓ]. *)

type partition
(** A partition of R into [\[shift + j·len, shift + (j+1)·len)] for j ∈ Z. *)

val make : Prim.Rng.t -> len:float -> partition
(** Random phase uniform in [\[0, len)].  @raise Invalid_argument unless
    [len > 0]. *)

val fixed : shift:float -> len:float -> partition
(** Deterministic partition (tests, baselines). *)

val len : partition -> float
val shift : partition -> float

val index_of : partition -> float -> int
(** Interval index containing the given coordinate. *)

val bounds : partition -> int -> float * float
(** [(lo, hi)] of interval [j]: [lo = shift + j·len], [hi = lo + len]. *)

val extend : partition -> int -> by:float -> float * float
(** Interval [j] extended by [by] on each side — the [Î] construction that
    turns a "heavy" interval into one containing the whole cluster
    (Figure 2 / Algorithm 2 step 9c). *)

(** {1 Plain 1-D intervals} *)

type t = { lo : float; hi : float }

val contains : t -> float -> bool
val length : t -> float
val center : t -> float
val of_center : center:float -> radius:float -> t
val intersect : t -> t -> t option
