(* Families are built from a plain intermediate so the live path
   (Telemetry/Accountant values) and the post-hoc path (a report JSON)
   render identically. *)

type kind_row = {
  kind : string;
  statuses : (string * int) list;
  buckets : int array;  (* telemetry layout: bounds buckets + overflow *)
  observations : int;
  total_ms : float;
}

type acct_row = {
  dataset : string;
  budget_eps : float;
  budget_delta : float;
  spent_eps : float;
  spent_delta : float;
  refusals : int;
  epoch : int;
  bounds_lookups : int;
  bounds_hits : int;
}

type source = {
  kinds : kind_row list;
  counters : (string * int) list;
  acct : acct_row list;  (* one row per dataset; the [dataset] label keys them *)
  result_cache : (string * int * int) list;  (* (dataset, hits, misses) *)
}

let families_of_source src =
  let open Obs.Prom in
  let jobs =
    Counter
      {
        name = "privcluster_jobs_total";
        help = "Finished jobs by kind and status.";
        samples =
          List.concat_map
            (fun r ->
              List.map
                (fun (status, c) ->
                  ([ ("kind", r.kind); ("status", status) ], float_of_int c))
                r.statuses)
            src.kinds;
      }
  in
  let bounds = Telemetry.bucket_upper_bounds in
  let latency =
    Histogram
      {
        name = "privcluster_job_latency_ms";
        help = "Job latency histogram (milliseconds) by kind.";
        samples =
          List.map
            (fun r ->
              let counts = Array.sub r.buckets 0 (min (Array.length bounds) (Array.length r.buckets)) in
              ( [ ("kind", r.kind) ],
                { bounds; counts; sum = r.total_ms; count = r.observations } ))
            src.kinds;
      }
  in
  let latency_quantiles =
    Summary
      {
        name = "privcluster_job_latency_quantile_ms";
        help = "Estimated job latency quantiles (milliseconds) by kind.";
        samples =
          List.filter_map
            (fun r ->
              if r.observations = 0 then None
              else
                Some
                  ( [ ("kind", r.kind) ],
                    {
                      quantiles =
                        List.map
                          (fun q ->
                            ( q,
                              Telemetry.quantile_of_buckets ~buckets:r.buckets
                                ~observations:r.observations ~q () ))
                          [ 0.5; 0.9; 0.99 ];
                      sum = r.total_ms;
                      count = r.observations;
                    } ))
            src.kinds;
      }
  in
  let events =
    Counter
      {
        name = "privcluster_engine_events_total";
        help = "Engine event counters (retries, worker restarts, degradations).";
        samples =
          List.map (fun (k, v) -> ([ ("event", k) ], float_of_int v)) src.counters;
      }
  in
  let acct =
    (* All datasets share the three budget families; the [dataset] label
       distinguishes rows, so a multi-dataset tenant scrapes one family
       per quantity rather than one family per dataset. *)
    match src.acct with
    | [] -> []
    | rows ->
        let samples f =
          List.concat_map
            (fun a ->
              let l = [ ("dataset", a.dataset) ] in
              f l a)
            rows
        in
        [
          Gauge
            {
              name = "privcluster_budget_epsilon";
              help = "Privacy-budget epsilon, total and composed spend.";
              samples =
                samples (fun l a ->
                    [
                      (l @ [ ("quantity", "budget") ], a.budget_eps);
                      (l @ [ ("quantity", "spent") ], a.spent_eps);
                    ]);
            };
          Gauge
            {
              name = "privcluster_budget_delta";
              help = "Privacy-budget delta, total and composed spend.";
              samples =
                samples (fun l a ->
                    [
                      (l @ [ ("quantity", "budget") ], a.budget_delta);
                      (l @ [ ("quantity", "spent") ], a.spent_delta);
                    ]);
            };
          Counter
            {
              name = "privcluster_budget_refusals_total";
              help = "Jobs refused at admission for lack of budget.";
              samples = samples (fun l a -> [ (l, float_of_int a.refusals) ]);
            };
          Gauge
            {
              name = "privcluster_epoch";
              help = "Current dataset epoch (bumped by every append/retire).";
              samples = samples (fun l a -> [ (l, float_of_int a.epoch) ]);
            };
          Counter
            {
              name = "privcluster_bounds_cache_total";
              help = "r_opt-bounds cache lookups and hits, across all epochs.";
              samples =
                samples (fun l a ->
                    [
                      (l @ [ ("event", "lookup") ], float_of_int a.bounds_lookups);
                      (l @ [ ("event", "hit") ], float_of_int a.bounds_hits);
                    ]);
            };
        ]
  in
  let rcache =
    match src.result_cache with
    | [] -> []
    | rows ->
        [
          Obs.Prom.Counter
            {
              name = "privcluster_result_cache_total";
              help = "Result-cache lookups by outcome; hits charged nothing.";
              samples =
                List.concat_map
                  (fun (ds, hits, misses) ->
                    [
                      ([ ("dataset", ds); ("event", "hit") ], float_of_int hits);
                      ([ ("dataset", ds); ("event", "miss") ], float_of_int misses);
                    ])
                  rows;
            };
        ]
  in
  (jobs :: latency :: latency_quantiles :: events :: acct) @ rcache

(* --- serving telemetry (the daemon's request-level families) -------------- *)

type serving_rows = {
  requests : (string * string * Obs.Hist.snapshot) list;  (* (verb, tenant, hist) *)
  queue_wait : (string * Obs.Hist.snapshot) list;  (* (verb, hist) *)
  burn : (string * string * float) list;  (* (tenant, dataset, per hour) *)
  sheds : (string * int) list;  (* (reason, count) *)
}

let serving_quantiles = [ 0.5; 0.9; 0.99 ]

let serving_summary snap =
  {
    Obs.Prom.quantiles =
      List.map (fun q -> (q, Obs.Hist.quantile_ns snap ~q /. 1e9)) serving_quantiles;
    sum = float_of_int snap.Obs.Hist.sum_ns /. 1e9;
    count = snap.Obs.Hist.count;
  }

let serving_families rows =
  let open Obs.Prom in
  [
    Summary
      {
        name = "privcluster_request_seconds";
        help = "Request latency (admission to reply) by verb and tenant.";
        samples =
          List.map
            (fun (verb, tenant, snap) ->
              ([ ("verb", verb); ("tenant", tenant) ], serving_summary snap))
            rows.requests;
      };
    Histogram
      {
        name = "privcluster_queue_wait_seconds";
        help = "Executor-queue wait (submit to start) by verb.";
        samples =
          List.map
            (fun (verb, snap) -> ([ ("verb", verb) ], Obs.Hist.to_prom snap))
            rows.queue_wait;
      };
    Gauge
      {
        name = "privcluster_budget_burn_rate";
        help =
          "Epsilon spend over the trailing hour as a fraction of the dataset's \
           budget, per tenant and dataset.";
        samples =
          List.map
            (fun (tenant, dataset, rate) ->
              ([ ("tenant", tenant); ("dataset", dataset) ], rate))
            rows.burn;
      };
    Counter
      {
        name = "privcluster_request_sheds_total";
        help = "Requests shed at admission, by reason; shed requests charge nothing.";
        samples =
          List.map (fun (reason, n) -> ([ ("reason", reason) ], float_of_int n)) rows.sheds;
      };
  ]

let source_of_live ?dataset ?(datasets = []) ?result_cache telemetry =
  let kinds =
    List.map
      (fun (e : Telemetry.export_stats) ->
        {
          kind = e.Telemetry.kind;
          statuses = e.Telemetry.statuses;
          buckets = e.Telemetry.buckets;
          observations = e.Telemetry.observations;
          total_ms = e.Telemetry.total_ms;
        })
      (Telemetry.export telemetry)
  in
  let acct =
    List.map
      (fun d ->
        let a = Registry.accountant d in
        let budget = Accountant.budget a and spent = Accountant.spent a in
        let bounds_lookups, bounds_hits = Registry.bounds_cache_stats d in
        {
          dataset = Registry.name d;
          budget_eps = budget.Prim.Dp.eps;
          budget_delta = budget.Prim.Dp.delta;
          spent_eps = spent.Prim.Dp.eps;
          spent_delta = spent.Prim.Dp.delta;
          refusals = Accountant.refusals a;
          epoch = Registry.epoch d;
          bounds_lookups;
          bounds_hits;
        })
      (Option.to_list dataset @ datasets)
  in
  let result_cache =
    match result_cache with None -> [] | Some c -> Result_cache.all_stats c
  in
  { kinds; counters = Telemetry.counters telemetry; acct; result_cache }

let families ?(spans = []) ?dataset ?datasets ?result_cache ~telemetry () =
  families_of_source (source_of_live ?dataset ?datasets ?result_cache telemetry)
  @ (if spans = [] then [] else Obs.Prom.of_spans spans)

let render ?spans ?dataset ?datasets ?result_cache ~telemetry () =
  Obs.Prom.render (families ?spans ?dataset ?datasets ?result_cache ~telemetry ())

(* --- post-hoc: rebuild from a report JSON -------------------------------- *)

let ( let* ) = Result.bind

let field name json =
  match Obs.Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_obj what = function
  | Obs.Json.Obj fields -> Ok fields
  | _ -> Error (Printf.sprintf "%s is not an object" what)

let num what j =
  match Obs.Json.to_float j with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "%s is not a number" what)

let kind_of_json (kind, j) =
  let* statuses = field "by_status" j in
  let* statuses = as_obj (kind ^ ".by_status") statuses in
  let statuses =
    List.filter_map (fun (s, v) -> Option.map (fun c -> (s, c)) (Obs.Json.to_int v)) statuses
  in
  let* count =
    match Option.bind (Obs.Json.member "count" j) Obs.Json.to_int with
    | Some c -> Ok c
    | None -> Error (kind ^ ".count missing")
  in
  let* bucket_list =
    match Option.bind (Obs.Json.member "latency_buckets" j) Obs.Json.to_list with
    | Some l -> Ok l
    | None -> Error (kind ^ ".latency_buckets missing")
  in
  let buckets =
    Array.of_list
      (List.map
         (fun b ->
           Option.value ~default:0 (Option.bind (Obs.Json.member "count" b) Obs.Json.to_int))
         bucket_list)
  in
  (* The report stores mean, not sum; reconstruct (0 when no jobs —
     mean_ms is null/NaN then). *)
  let total_ms =
    if count = 0 then 0.
    else
      match Option.bind (Obs.Json.member "mean_ms" j) Obs.Json.to_float with
      | Some m when Float.is_finite m -> m *. float_of_int count
      | _ -> 0.
  in
  Ok { kind; statuses; buckets; observations = count; total_ms }

let acct_of_json ~dataset ?(epoch = 0) ?(bounds = (0, 0)) j =
  let* budget = field "budget" j in
  let* spent = field "spent" j in
  let* budget_eps = num "budget.eps" (Option.value ~default:Obs.Json.Null (Obs.Json.member "eps" budget)) in
  let* budget_delta = num "budget.delta" (Option.value ~default:Obs.Json.Null (Obs.Json.member "delta" budget)) in
  let* spent_eps = num "spent.eps" (Option.value ~default:Obs.Json.Null (Obs.Json.member "eps" spent)) in
  let* spent_delta = num "spent.delta" (Option.value ~default:Obs.Json.Null (Obs.Json.member "delta" spent)) in
  let refusals =
    Option.value ~default:0 (Option.bind (Obs.Json.member "refusals" j) Obs.Json.to_int)
  in
  let bounds_lookups, bounds_hits = bounds in
  Ok
    {
      dataset;
      budget_eps;
      budget_delta;
      spent_eps;
      spent_delta;
      refusals;
      epoch;
      bounds_lookups;
      bounds_hits;
    }

let of_report_json json =
  let* telemetry = field "telemetry" json in
  let* kinds_obj =
    match Obs.Json.member "kinds" telemetry with
    | Some k -> as_obj "telemetry.kinds" k
    | None -> Error "missing field \"telemetry.kinds\""
  in
  let* kinds =
    List.fold_left
      (fun acc kv ->
        let* acc = acc in
        let* row = kind_of_json kv in
        Ok (row :: acc))
      (Ok []) kinds_obj
  in
  let counters =
    match Option.bind (Obs.Json.member "counters" telemetry) (fun c -> Result.to_option (as_obj "counters" c)) with
    | None -> []
    | Some fields ->
        List.filter_map (fun (k, v) -> Option.map (fun i -> (k, i)) (Obs.Json.to_int v)) fields
  in
  let* acct =
    match Obs.Json.member "dataset" json with
    | None -> Ok []
    | Some d -> (
        let name =
          Option.value ~default:"dataset"
            (Option.bind (Obs.Json.member "name" d) Obs.Json.to_str)
        in
        let epoch =
          Option.value ~default:0 (Option.bind (Obs.Json.member "epoch" d) Obs.Json.to_int)
        in
        let bounds =
          match Obs.Json.member "r_opt_bounds_cache" d with
          | None -> (0, 0)
          | Some b ->
              let geti k =
                Option.value ~default:0 (Option.bind (Obs.Json.member k b) Obs.Json.to_int)
              in
              (geti "lookups", geti "hits")
        in
        match Obs.Json.member "accountant" d with
        | None -> Ok []
        | Some a ->
            let* row = acct_of_json ~dataset:name ~epoch ~bounds a in
            Ok [ row ])
  in
  Ok (families_of_source { kinds = List.rev kinds; counters; acct; result_cache = [] })
