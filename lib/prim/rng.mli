(** Seeded pseudo-random sampling for every randomized component.

    All algorithms in this library thread an explicit [Rng.t] so that every
    experiment is reproducible from a printed seed.  The samplers implemented
    here are exactly the noise distributions the paper relies on: Laplace
    (Theorem 2.3), Gaussian (Theorem 2.4), the exponential/Gumbel trick used
    to implement the exponential mechanism, and the auxiliary uniform /
    Bernoulli / categorical draws used by workload generators and by the
    randomly shifted grids of Algorithm 2. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a deterministic generator.  Without [seed] the
    generator is seeded from the system entropy source. *)

val copy : t -> t
(** Independent snapshot of the current state. *)

val split : t -> t
(** [split t] derives a fresh generator from [t], advancing [t]; the two
    streams are (statistically) independent.  Used to hand sub-algorithms
    their own stream without coupling their consumption patterns. *)

val derive : t -> stream:int -> t
(** [derive t ~stream] is the [stream]-th independent child generator of
    [t], computed from [t]'s {e creation seed} only — the parent's state is
    neither read nor advanced, so the result does not depend on how much
    randomness has already been consumed, nor on the order in which streams
    are derived.  This is the seeding primitive the concurrent query engine
    uses to give each job a reproducible stream no matter which worker
    domain picks it up.  Streams are decorrelated by a SplitMix64 hash of
    [(seed, stream)].
    @raise Invalid_argument if [stream < 0]. *)

val seed_of : t -> int
(** The seed this generator was created from (for logging). *)

(** {1 Basic draws} *)

val float : t -> float -> float
(** [float t b] is uniform on [\[0, b)]. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform on [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> int -> int
(** [int t n] is uniform on [{0, …, n−1}]. Requires [n > 0]. *)

val bool : t -> bool

val bernoulli : t -> p:float -> bool
(** [bernoulli t ~p] is [true] with probability [p] (clamped to [0, 1]). *)

(** {1 Noise distributions} *)

val gaussian : t -> ?mu:float -> sigma:float -> unit -> float
(** One draw from N(mu, sigma²) via Box–Muller.  [sigma >= 0]. *)

val laplace : t -> ?mu:float -> scale:float -> unit -> float
(** One draw from Lap(scale) centered at [mu]: density
    [1/(2·scale) · exp(−|y−mu|/scale)].  [scale > 0]. *)

val exponential : t -> rate:float -> float
(** Exp(rate), mean [1/rate].  [rate > 0]. *)

val gumbel : t -> scale:float -> float
(** Standard Gumbel scaled by [scale]; adding iid Gumbel(1/ε·…) noise to
    scores and taking argmax realizes the exponential mechanism. *)

val gaussian_vector : t -> dim:int -> sigma:float -> float array
(** [dim] iid N(0, sigma²) draws — the noise vector of Theorem 2.4 and the
    rows of the JL matrix (Lemma 4.10). *)

(** {1 Discrete distributions} *)

val categorical : t -> weights:float array -> int
(** Index [i] with probability [weights.(i) / Σ weights].  All weights must
    be non-negative and at least one strictly positive. *)

val categorical_log : t -> log_weights:float array -> int
(** Numerically stable categorical sampling from unnormalized log-weights
    (the exponential mechanism's native parameterization); implemented with
    the Gumbel-max trick so no normalization is ever computed. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val sample_without_replacement : t -> k:int -> 'a array -> 'a array
(** [k] distinct elements drawn uniformly.  Requires [k <= Array.length]. *)

val sample_with_replacement : t -> k:int -> 'a array -> 'a array
(** [k] iid uniform elements (the subsampling step of Algorithm 4). *)
