lib/baselines/private_agg.mli: Geometry Prim
