(** The scale-quality reduction at the heart of RecConcave.

    For a quality [Q] over [{0 … T−1}] define, for each scale
    [j ∈ {0 … ⌈log₂ T⌉}], the width [w_j = min(2^j, T)] and

    [L(j) = max over a of min_{f ∈ [a, a+w_j)} Q(f)]
          [= max over a of min(Q(a), Q(a + w_j − 1))]   (when Q is quasi-concave)

    — the best guaranteed quality of an interval of width [w_j].  [L]
    inherits sensitivity 1 from [Q], is non-increasing in [j] (hence
    quasi-concave), and satisfies [L(0) = max Q]; RecConcave recurses on it,
    shrinking the solution domain from [T] to [⌈log₂ T⌉ + 1]. *)

val num_scales : int -> int
(** [⌈log₂ T⌉ + 1] scales for a domain of size [T ≥ 1]. *)

val width : size:int -> int -> int
(** [w_j = min(2^j, size)]. *)

val eval : Quality.t -> int -> float
(** [L(j)] by a full scan of the start positions (every [Q] access is
    memoized, so evaluating [L] at every scale costs O(T) distinct [Q]
    evaluations in total). *)

val quality : Quality.t -> Quality.t
(** [L] packaged as a (memoized) quality over [{0 … num_scales − 1}]. *)

val interval_min : Quality.t -> lo:int -> hi:int -> float
(** [min(Q(lo), Q(hi))] — the quasi-concave shortcut for
    [min_{f ∈ [lo, hi]} Q(f)] (exposed for tests, which compare it against
    the exhaustive minimum). *)
