lib/prim/composition.mli: Dp
