(** The engine front door: run a batch of jobs against a registered
    dataset.

    [run_batch] proceeds in two deterministic phases:

    + {b Admission} (sequential, coordinator only): every job is charged
      against the dataset's {!Accountant} in submission order.  Refused
      jobs get a {!Job.Refused} result immediately and are never
      dispatched — no noise is drawn for them, so refusal is free in the
      privacy ledger.  Doing all charging before any execution makes the
      accept/refuse set a pure function of the submission list, never of
      worker timing.
    + {b Execution} (parallel): admitted jobs run on a {!Pool} of
      [domains] worker domains.  Job [i] (by submission index, counting
      refused jobs) draws its randomness from
      [Prim.Rng.derive base ~stream:i], so the batch output is
      bit-identical for any domain count under a fixed [seed].

    A job that times out or whose solver fails keeps its budget charge:
    by then the mechanism may already have consumed randomness, and
    refunds conditioned on the private outcome would themselves leak.
    (Admission-time refusals are the only free path.)

    Results come back in submission order; every finished job is recorded
    in the service {!Telemetry} and logged on ["privcluster.engine"]. *)

type t

val create :
  ?profile:Privcluster.Profile.t ->
  ?domains:int ->
  ?seed:int ->
  unit ->
  t
(** [profile] defaults to {!Privcluster.Profile.practical}; [domains] to
    {!Pool.recommended_domains} and is clamped to ≥ 1; [seed] (default 1)
    is the base of every per-job derived stream. *)

val registry : t -> Registry.t
val telemetry : t -> Telemetry.t
val domains : t -> int
val seed : t -> int

val register :
  t ->
  name:string ->
  grid:Geometry.Grid.t ->
  ?mode:Accountant.mode ->
  budget:Prim.Dp.params ->
  ?dense_threshold:int ->
  Geometry.Vec.t array ->
  Registry.dataset
(** Convenience passthrough to {!Registry.register} on the service's
    registry. *)

val run_batch : ?domains:int -> t -> dataset:Registry.dataset -> Job.spec list -> Job.result list
(** Run the batch as described above; [domains] overrides the service
    default for this call. *)

val report_json : t -> dataset:Registry.dataset -> Job.result list -> Json.t
(** The batch report the CLI emits: dataset (with ledger), per-job
    results, telemetry. *)
