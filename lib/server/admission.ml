type counter = { c_mutex : Mutex.t; mutable count : int }

let counter () = { c_mutex = Mutex.create (); count = 0 }

let in_flight c =
  Mutex.lock c.c_mutex;
  let n = c.count in
  Mutex.unlock c.c_mutex;
  n

let incr_counter c =
  Mutex.lock c.c_mutex;
  c.count <- c.count + 1;
  Mutex.unlock c.c_mutex

let decr_counter c =
  Mutex.lock c.c_mutex;
  c.count <- c.count - 1;
  Mutex.unlock c.c_mutex

type item = { work : unit -> unit; slot : counter option; control : bool }

type t = {
  capacity : int;
  queue : item Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  idle : Condition.t;  (* queue empty and nothing executing *)
  mutable queued : int;  (* non-control items in [queue] *)
  mutable active : int;  (* items currently executing *)
  mutable draining_ : bool;
  mutable stopped : bool;
}

let create ~capacity =
  {
    capacity = max 1 capacity;
    queue = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    idle = Condition.create ();
    queued = 0;
    active = 0;
    draining_ = false;
    stopped = false;
  }

let length t =
  Mutex.lock t.mutex;
  let n = t.queued in
  Mutex.unlock t.mutex;
  n

let draining t =
  Mutex.lock t.mutex;
  let d = t.draining_ in
  Mutex.unlock t.mutex;
  d

let submit t ?(control = false) ?slot work =
  Mutex.lock t.mutex;
  let verdict =
    if t.stopped then Error Wire.Draining
    else if control then Ok ()
    else if t.draining_ then Error Wire.Draining
    else
      match slot with
      | Some (c, cap) when in_flight c >= cap -> Error Wire.Tenant_cap
      | _ when t.queued >= t.capacity -> Error Wire.Queue_full
      | _ -> Ok ()
  in
  (match verdict with
  | Ok () ->
      let slot = if control then None else slot in
      Option.iter (fun (c, _) -> incr_counter c) slot;
      Queue.push { work; slot = Option.map fst slot; control } t.queue;
      if not control then t.queued <- t.queued + 1;
      Condition.signal t.nonempty
  | Error _ -> ());
  Mutex.unlock t.mutex;
  verdict

let run t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stopped do
      Condition.wait t.nonempty t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* stopped *)
    else begin
      let item = Queue.pop t.queue in
      if not item.control then t.queued <- t.queued - 1;
      t.active <- t.active + 1;
      Mutex.unlock t.mutex;
      (try item.work () with _ -> ());
      Option.iter decr_counter item.slot;
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if Queue.is_empty t.queue && t.active = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.mutex;
      loop ()
    end
  in
  loop ()

let drain t =
  Mutex.lock t.mutex;
  t.draining_ <- true;
  while not (Queue.is_empty t.queue && t.active = 0) do
    Condition.wait t.idle t.mutex
  done;
  t.stopped <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex
