(** Dense vectors in R^d as [float array], with the operations the paper's
    geometry needs: norms and distances (Definition 3.1 works in the
    Euclidean metric), inner products (Lemma 4.9 projects differences onto
    basis vectors), and elementwise arithmetic for means and translations. *)

type t = float array

val dim : t -> int
val zero : int -> t
val copy : t -> t
val of_list : float list -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y ← a·x + y] in place. *)

val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean (L2) norm. *)

val norm2_sq : t -> float
val norm1 : t -> float
val norm_inf : t -> float

val dist : t -> t -> float
(** Euclidean distance, computed without allocating. *)

val dist_sq : t -> t -> float

val mean : t array -> t
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val normalize : t -> t
(** Unit vector in the same direction.  @raise Invalid_argument on zero. *)

val equal : ?tol:float -> t -> t -> bool
(** Coordinatewise comparison with absolute tolerance (default 1e-12). *)

val pp : Format.formatter -> t -> unit
