lib/prim/noisy_avg.ml: Array Gaussian_mech List Rng
