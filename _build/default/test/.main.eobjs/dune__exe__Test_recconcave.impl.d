test/test_recconcave.ml: Alcotest Array Float Hashtbl List Printf QCheck2 Recconcave Testutil
