lib/core/interior_point.ml: Array Float Geometry One_cluster Profile Recconcave
