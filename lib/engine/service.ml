module Log = (val Logs.src_log Telemetry.log_src : Logs.LOG)

type t = {
  profile : Privcluster.Profile.t;
  domains : int;
  seed : int;
  base_rng : Prim.Rng.t;  (* never drawn from; only [Rng.derive]d per job *)
  registry : Registry.t;
  telemetry : Telemetry.t;
}

let create ?(profile = Privcluster.Profile.practical) ?domains ?(seed = 1) () =
  let domains =
    max 1 (match domains with Some d -> d | None -> Pool.recommended_domains ())
  in
  {
    profile;
    domains;
    seed;
    base_rng = Prim.Rng.create ~seed ();
    registry = Registry.create ();
    telemetry = Telemetry.create ();
  }

let registry t = t.registry
let telemetry t = t.telemetry
let domains t = t.domains
let seed t = t.seed

let register t ~name ~grid ?mode ~budget ?dense_threshold points =
  (* The dense-index rows are independent, so building them on the
     service's worker-domain count changes nothing but wall-clock. *)
  Registry.register t.registry ~name ~grid ?mode ~budget ?dense_threshold
    ~index_domains:t.domains points

(* One admitted job, on a worker domain.  Everything read from [dataset] is
   immutable after registration except the r_opt-bounds cache, which locks
   internally. *)
let execute t dataset rng (spec : Job.spec) : Job.status =
  let grid = Registry.grid dataset in
  let ps = Registry.pointset dataset in
  let n = Registry.n dataset in
  match spec.Job.kind with
  | Job.One_cluster { t_fraction } -> (
      let target = max 1 (int_of_float (ceil (t_fraction *. float_of_int n))) in
      match
        Privcluster.One_cluster.run_indexed rng t.profile ~grid ~eps:spec.Job.eps
          ~delta:spec.Job.delta ~beta:spec.Job.beta ~t:target (Registry.index dataset)
      with
      | Ok r ->
          let center = r.Privcluster.One_cluster.center in
          let radius = r.Privcluster.One_cluster.radius in
          let covered = Geometry.Pointset.ball_count ps ~center ~radius in
          let _, r_hi = Registry.r_opt_bounds dataset ~t:target in
          Job.Completed
            (Job.Cluster
               {
                 ball = { Job.center; radius; covered };
                 t = target;
                 ratio_vs_hi = (if r_hi > 0. then radius /. r_hi else Float.infinity);
                 delta_bound = r.Privcluster.One_cluster.delta_bound;
               })
      | Error f ->
          Job.Solver_failed (Format.asprintf "%a" Privcluster.One_cluster.pp_failure f))
  | Job.K_cluster { k; t_fraction } ->
      let r =
        (* Zero-copy: peeling inside run_ps produces index views over the
           registry's flat storage. *)
        Privcluster.K_cluster.run_ps rng t.profile ~grid ~eps:spec.Job.eps
          ~delta:spec.Job.delta ~beta:spec.Job.beta ~k ~t_fraction ps
      in
      let balls =
        List.map
          (fun (b : Privcluster.K_cluster.ball) ->
            {
              Job.center = b.Privcluster.K_cluster.center;
              radius = b.Privcluster.K_cluster.radius;
              covered =
                Geometry.Pointset.ball_count ps ~center:b.Privcluster.K_cluster.center
                  ~radius:b.Privcluster.K_cluster.radius;
            })
          r.Privcluster.K_cluster.balls
      in
      Job.Completed
        (Job.Clusters
           {
             balls;
             uncovered = r.Privcluster.K_cluster.uncovered;
             failures = r.Privcluster.K_cluster.failures;
           })
  | Job.Quantile { axis; q } ->
      let d = Registry.dim dataset in
      if axis < 0 || axis >= d then
        Job.Solver_failed (Printf.sprintf "axis %d out of range for dimension %d" axis d)
      else
        let values = Geometry.Pointset.coords_axis ps axis in
        let grid1 =
          Geometry.Grid.create ~axis_size:(Geometry.Grid.axis_size grid) ~dim:1
        in
        let res =
          Privcluster.Quantile.quantile rng ~profile:t.profile ~grid:grid1 ~eps:spec.Job.eps ~q
            values
        in
        Job.Completed
          (Job.Quantile_value
             {
               value = res.Privcluster.Quantile.value;
               target_rank = res.Privcluster.Quantile.target_rank;
             })

let run_batch ?domains t ~dataset specs =
  let domains = max 1 (Option.value ~default:t.domains domains) in
  let accountant = Registry.accountant dataset in
  (* Phase 1 — admission, in submission order, before anything runs. *)
  let admitted =
    List.map
      (fun (spec : Job.spec) ->
        match Accountant.charge accountant ~label:spec.Job.id (Job.cost spec) with
        | Ok () -> Ok spec
        | Error refusal -> Error (Accountant.refusal_message refusal))
      specs
  in
  let n_admitted =
    List.length (List.filter (function Ok _ -> true | Error _ -> false) admitted)
  in
  Log.info (fun m ->
      m "batch start: dataset=%s jobs=%d admitted=%d domains=%d seed=%d"
        (Registry.name dataset) (List.length specs) n_admitted domains t.seed);
  (* Phase 2 — execution.  Stream index = submission index (refusals
     included), so admitting a different prefix never reshuffles the
     randomness of later jobs. *)
  let tasks =
    List.mapi (fun i a -> (i, a)) admitted
    |> List.filter_map (fun (i, a) ->
           match a with
           | Ok (spec : Job.spec) -> Some (Pool.task ?deadline_s:spec.Job.deadline_s (i, spec))
           | Error _ -> None)
    |> Array.of_list
  in
  let outcomes =
    Pool.run ~domains
      ~f:(fun _ (stream, spec) ->
        let rng = Prim.Rng.derive t.base_rng ~stream in
        let t0 = Unix.gettimeofday () in
        let status = execute t dataset rng spec in
        (status, (Unix.gettimeofday () -. t0) *. 1000.))
      tasks
  in
  let by_index = Hashtbl.create (Array.length tasks) in
  Array.iteri
    (fun j outcome ->
      let i, _ = tasks.(j).Pool.payload in
      Hashtbl.replace by_index i outcome)
    outcomes;
  let results =
    List.mapi
      (fun i (spec : Job.spec) ->
        match List.nth admitted i with
        | Error msg -> { Job.spec; status = Job.Refused msg; latency_ms = 0. }
        | Ok _ -> (
            match Hashtbl.find by_index i with
            | Pool.Done (status, ms) -> { Job.spec; status; latency_ms = ms }
            | Pool.Timed_out { elapsed_ms } ->
                { Job.spec; status = Job.Timed_out { elapsed_ms }; latency_ms = elapsed_ms }
            | Pool.Failed msg -> { Job.spec; status = Job.Solver_failed msg; latency_ms = 0. }))
      specs
  in
  List.iter
    (fun (r : Job.result) ->
      Telemetry.record t.telemetry ~kind:(Job.kind_name r.Job.spec.Job.kind)
        ~status:(Job.status_name r.Job.status) ~latency_ms:r.Job.latency_ms)
    results;
  Log.info (fun m ->
      m "batch done: dataset=%s ok=%d refused=%d timeout=%d failed=%d"
        (Registry.name dataset)
        (List.length (List.filter (fun r -> Job.status_name r.Job.status = "ok") results))
        (List.length (List.filter (fun r -> Job.status_name r.Job.status = "refused") results))
        (List.length (List.filter (fun r -> Job.status_name r.Job.status = "timeout") results))
        (List.length (List.filter (fun r -> Job.status_name r.Job.status = "failed") results)));
  results

let report_json t ~dataset results =
  Json.Obj
    [
      ("dataset", Registry.to_json dataset);
      ("jobs", Json.List (List.map Job.result_to_json results));
      ("telemetry", Telemetry.to_json t.telemetry);
    ]
