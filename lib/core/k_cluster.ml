type ball = { center : Geometry.Vec.t; radius : float; core_radius : float }
type result = { balls : ball list; uncovered : int; failures : int }

let covered ball p = Geometry.Vec.dist p ball.center <= ball.radius +. 1e-12

let coverage balls points =
  Array.fold_left
    (fun acc p -> if List.exists (fun b -> covered b p) balls then acc + 1 else acc)
    0 points

let max_recommended_k ~eps ~n ~d =
  if n <= 0 || d <= 0 then invalid_arg "K_cluster.max_recommended_k: positive n and d";
  let k = ((eps *. float_of_int n) ** (2. /. 3.)) /. (float_of_int d ** (1. /. 3.)) in
  max 1 (int_of_float k)

let run_ps rng profile ~grid ~eps ~delta ~beta ~k ~t_fraction ps =
  if k < 1 then invalid_arg "K_cluster.run: k must be >= 1";
  if not (t_fraction > 0. && t_fraction <= 1.) then
    invalid_arg "K_cluster.run: t_fraction must be in (0, 1]";
  let dim = Geometry.Pointset.dim ps in
  let kf = float_of_int k in
  let eps_i = eps /. kf and delta_i = delta /. kf in
  (* Uncharged: attribution sums the per-iteration one_cluster subtrees,
     so an early stop legitimately attributes less than k·(ε/k, δ/k). *)
  Obs.Span.with_span ~cat:"stage"
    ~attrs:(fun () -> [ ("k", Obs.Span.I k) ])
    "k_cluster"
  @@ fun () ->
  (* Peeling never copies coordinates: each iteration's remainder is an
     index view over the original storage. *)
  let rec go iter remaining balls failures =
    if iter > k then (balls, remaining, failures)
    else begin
      let m = Geometry.Pointset.n remaining in
      let t = max 1 (int_of_float (t_fraction *. float_of_int m)) in
      if m < max 8 t then (balls, remaining, failures)
      else begin
        match
          One_cluster.run_ps rng profile ~grid ~eps:eps_i ~delta:delta_i ~beta ~t remaining
        with
        | Error _ -> go (iter + 1) remaining balls (failures + 1)
        | Ok r ->
            let z = r.One_cluster.radius_stage.Good_radius.radius in
            let ball =
              {
                center = r.One_cluster.center;
                radius = r.One_cluster.radius;
                core_radius = 3. *. Float.max z (Geometry.Grid.step grid);
              }
            in
            let rest =
              Geometry.Pointset.filter_rows
                (fun st off ->
                  not
                    (Geometry.Vec.dist_to_row st ~off ~dim ball.center
                    <= ball.core_radius +. 1e-12))
                remaining
            in
            go (iter + 1) rest (ball :: balls) failures
      end
    end
  in
  let balls, remaining, failures = go 1 ps [] 0 in
  { balls = List.rev balls; uncovered = Geometry.Pointset.n remaining; failures }

let run rng profile ~grid ~eps ~delta ~beta ~k ~t_fraction points =
  run_ps rng profile ~grid ~eps ~delta ~beta ~k ~t_fraction
    (Geometry.Pointset.create points)
