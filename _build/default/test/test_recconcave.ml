(* Quality functions, the scale-quality reduction, RecConcave and the
   monotone noisy binary search. *)

open Testutil

(* Generator for quasi-concave arrays: a non-decreasing prefix followed by a
   non-increasing suffix, built from non-negative increments. *)
let quasi_concave_gen =
  QCheck2.Gen.(
    pair (list_size (int_range 1 40) (float_range 0. 5.)) (list_size (int_range 0 40) (float_range 0. 5.))
    |> map (fun (ups, downs) ->
           let acc = ref 0. in
           let rise = List.map (fun d -> acc := !acc +. d; !acc) ups in
           let fall = List.map (fun d -> acc := !acc -. d; !acc) downs in
           Array.of_list (rise @ fall)))

(* --- Quality --- *)

let test_quality_memoization () =
  let calls = ref 0 in
  let q = Recconcave.Quality.create ~size:10 ~f:(fun i -> incr calls; float_of_int i) in
  check_float "eval" 3. (Recconcave.Quality.eval q 3);
  check_float "eval again" 3. (Recconcave.Quality.eval q 3);
  check_int "underlying called once" 1 !calls;
  check_int "evals counter" 1 (Recconcave.Quality.evals q);
  Alcotest.check_raises "range check" (Invalid_argument "Quality.eval: index out of range")
    (fun () -> ignore (Recconcave.Quality.eval q 10))

let test_quality_of_array_argmax () =
  let q = Recconcave.Quality.of_array [| 1.; 5.; 2.; 5.; 0. |] in
  check_int "first argmax" 1 (Recconcave.Quality.argmax q);
  check_int "size" 5 (Recconcave.Quality.size q)

let test_is_quasi_concave () =
  check_true "unimodal yes"
    (Recconcave.Quality.is_quasi_concave (Recconcave.Quality.of_array [| 1.; 3.; 3.; 2. |]));
  check_true "monotone yes"
    (Recconcave.Quality.is_quasi_concave (Recconcave.Quality.of_array [| 1.; 2.; 3. |]));
  check_true "valley no"
    (not (Recconcave.Quality.is_quasi_concave (Recconcave.Quality.of_array [| 3.; 1.; 3. |])))

let qcheck_generator_is_quasi_concave =
  qcheck "generated arrays are quasi-concave" quasi_concave_gen (fun a ->
      Recconcave.Quality.is_quasi_concave (Recconcave.Quality.of_array a))

(* --- Scale_quality --- *)

let test_num_scales_width () =
  check_int "scales of 1" 1 (Recconcave.Scale_quality.num_scales 1);
  check_int "scales of 8" 4 (Recconcave.Scale_quality.num_scales 8);
  check_int "scales of 9" 5 (Recconcave.Scale_quality.num_scales 9);
  check_int "width caps at size" 9 (Recconcave.Scale_quality.width ~size:9 4);
  check_int "width 2^j" 4 (Recconcave.Scale_quality.width ~size:9 2)

let exhaustive_scale_quality a j =
  let size = Array.length a in
  let w = Recconcave.Scale_quality.width ~size j in
  let best = ref neg_infinity in
  for start = 0 to size - w do
    let m = ref infinity in
    for i = start to start + w - 1 do
      m := Float.min !m a.(i)
    done;
    if !m > !best then best := !m
  done;
  !best

let qcheck_scale_quality_matches_exhaustive =
  qcheck "L(j) = exhaustive max-min on quasi-concave arrays" ~count:100 quasi_concave_gen
    (fun a ->
      let q = Recconcave.Quality.of_array a in
      let scales = Recconcave.Scale_quality.num_scales (Array.length a) in
      List.for_all
        (fun j ->
          Float.abs (Recconcave.Scale_quality.eval q j -. exhaustive_scale_quality a j) < 1e-9)
        (List.init scales (fun j -> j)))

let qcheck_scale_quality_monotone =
  qcheck "L non-increasing in j" quasi_concave_gen (fun a ->
      let q = Recconcave.Quality.of_array a in
      let lq = Recconcave.Scale_quality.quality q in
      let rec mono j =
        j + 1 >= Recconcave.Quality.size lq
        || (Recconcave.Quality.eval lq j >= Recconcave.Quality.eval lq (j + 1) -. 1e-9
           && mono (j + 1))
      in
      mono 0)

let test_interval_min () =
  let q = Recconcave.Quality.of_array [| 1.; 5.; 3. |] in
  Testutil.check_float "min of endpoints" 1. (Recconcave.Scale_quality.interval_min q ~lo:0 ~hi:2);
  Testutil.check_float "single point" 5. (Recconcave.Scale_quality.interval_min q ~lo:1 ~hi:1)

let test_scale_zero_is_max () =
  let a = [| 1.; 4.; 9.; 3. |] in
  let q = Recconcave.Quality.of_array a in
  check_float "L(0) = max Q" 9. (Recconcave.Scale_quality.eval q 0)

(* --- Rec_concave --- *)

let test_depth_and_mechanisms () =
  check_int "small domain depth 0" 0 (Recconcave.Rec_concave.depth 32);
  check_int "depth 1" 1 (Recconcave.Rec_concave.depth 1000);
  check_true "depth of 2^60 domain small" (Recconcave.Rec_concave.depth (1 lsl 60) <= 3);
  check_int "mechanisms" 3 (Recconcave.Rec_concave.mechanism_count 1000)

let test_solve_base_case () =
  let r = rng () in
  let a = Array.init 20 (fun i -> -.Float.abs (float_of_int (i - 13)) *. 20.) in
  let report = Recconcave.Rec_concave.solve r ~eps:5.0 (Recconcave.Quality.of_array a) in
  check_int "base case is one mechanism" 1 report.Recconcave.Rec_concave.mechanisms;
  check_int "picks the peak" 13 report.Recconcave.Rec_concave.chosen

let test_solve_large_domain_quality () =
  let r = rng () in
  (* Sharply peaked quasi-concave quality over a large domain: the chosen
     solution must have near-maximal quality almost always. *)
  let size = 5000 in
  let peak = 3210 in
  let a = Array.init size (fun i -> -.Float.abs (float_of_int (i - peak))) in
  let ok = ref 0 in
  for _ = 1 to 20 do
    let report = Recconcave.Rec_concave.solve r ~eps:2.0 (Recconcave.Quality.of_array a) in
    if a.(report.Recconcave.Rec_concave.chosen) >= -60. then incr ok
  done;
  check_true (Printf.sprintf "near-peak rate %d/20" !ok) (!ok >= 18)

let qcheck_solve_respects_loss_bound =
  qcheck "quality loss within loss_bound whp" ~count:30 quasi_concave_gen (fun a ->
      let r = rng ~seed:(Hashtbl.hash a) () in
      let size = Array.length a in
      let eps = 4.0 in
      let report = Recconcave.Rec_concave.solve r ~eps (Recconcave.Quality.of_array a) in
      let bound = Recconcave.Rec_concave.loss_bound ~size ~eps ~beta:0.02 () in
      let best = Array.fold_left Float.max neg_infinity a in
      a.(report.Recconcave.Rec_concave.chosen) >= best -. bound)

let test_loss_bound_monotone () =
  let b size = Recconcave.Rec_concave.loss_bound ~size ~eps:1.0 ~beta:0.1 () in
  check_true "larger domains lose more" (b 100_000 >= b 100);
  let be eps = Recconcave.Rec_concave.loss_bound ~size:1000 ~eps ~beta:0.1 () in
  check_true "loss ~ 1/eps" (Float.abs ((be 1.0 /. be 2.0) -. 2.) < 1e-6)

let test_paper_promise_flat_in_domain () =
  let p x = Recconcave.Rec_concave.paper_promise ~eps:1.0 ~beta:0.1 ~delta:1e-6 ~domain_size:x in
  (* log* grows so slowly the promise is nearly flat between 2^16 and 2^40. *)
  check_true "log* flatness" (p (2. ** 40.) /. p (2. ** 16.) < 20.);
  check_float "log star" 4. (Recconcave.Rec_concave.log_star 65536.)

let qcheck_cells_cover_every_interval =
  qcheck "every width-w interval is inside some cell" ~count:300
    QCheck2.Gen.(pair (int_range 2 300) (int_range 1 64))
    (fun (size, w) ->
      let w = min w size in
      let cs = Recconcave.Rec_concave.cells ~size ~w in
      List.for_all
        (fun a ->
          List.exists (fun (lo, hi) -> lo <= a && a + w - 1 <= hi) cs)
        (List.init (size - w + 1) (fun a -> a)))

let qcheck_cells_within_domain =
  qcheck "cells stay in the domain and have width <= 2w"
    QCheck2.Gen.(pair (int_range 2 300) (int_range 1 64))
    (fun (size, w) ->
      List.for_all
        (fun (lo, hi) -> lo >= 0 && hi < size && lo <= hi && hi - lo + 1 <= 2 * w)
        (Recconcave.Rec_concave.cells ~size ~w))

(* --- Monotone_search --- *)

let test_monotone_search_exact () =
  let r = rng () in
  (* Step function with a clear jump: search target between the levels. *)
  let a = Array.init 2000 (fun i -> if i >= 1234 then 100. else 0.) in
  let hits = ref 0 in
  for _ = 1 to 50 do
    let res =
      Recconcave.Monotone_search.solve r ~eps:5.0 ~sensitivity:1.0 ~target:50.
        (Recconcave.Quality.of_array a)
    in
    if res.Recconcave.Monotone_search.index = 1234 then incr hits
  done;
  check_true (Printf.sprintf "boundary found %d/50" !hits) (!hits >= 45)

let test_monotone_search_never_reaches () =
  let r = rng () in
  let a = Array.make 100 0. in
  let res =
    Recconcave.Monotone_search.solve r ~eps:5.0 ~sensitivity:1.0 ~target:1e6
      (Recconcave.Quality.of_array a)
  in
  check_int "tops out at last index" 99 res.Recconcave.Monotone_search.index

let test_monotone_search_accuracy_bound () =
  let b = Recconcave.Monotone_search.accuracy_bound ~size:1024 ~eps:1.0 ~sensitivity:2.0 ~beta:0.1 in
  check_true "positive and finite" (b > 0. && Float.is_finite b);
  let b2 = Recconcave.Monotone_search.accuracy_bound ~size:1024 ~eps:2.0 ~sensitivity:2.0 ~beta:0.1 in
  check_float ~tol:1e-9 "1/eps scaling" (b /. 2.) b2

let suite =
  [
    case "quality memoization" test_quality_memoization;
    case "quality of_array / argmax" test_quality_of_array_argmax;
    case "is_quasi_concave" test_is_quasi_concave;
    qcheck_generator_is_quasi_concave;
    case "num_scales / width" test_num_scales_width;
    qcheck_scale_quality_matches_exhaustive;
    qcheck_scale_quality_monotone;
    case "interval_min endpoints" test_interval_min;
    case "scale 0 is the max" test_scale_zero_is_max;
    case "depth and mechanism counts" test_depth_and_mechanisms;
    case "solve base case" test_solve_base_case;
    case "solve on a 5000-point domain" test_solve_large_domain_quality;
    qcheck_solve_respects_loss_bound;
    qcheck_cells_cover_every_interval;
    qcheck_cells_within_domain;
    case "loss bound shape" test_loss_bound_monotone;
    case "paper promise flat in |domain|" test_paper_promise_flat_in_domain;
    case "monotone search finds the jump" test_monotone_search_exact;
    case "monotone search saturates" test_monotone_search_never_reaches;
    case "monotone accuracy bound" test_monotone_search_accuracy_bound;
  ]
