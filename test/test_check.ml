(* Unit and integration tests for the lib/check verification harness:
   the special functions and estimators against closed forms, the exact
   reference laws, the distinguisher's verdict logic on synthetic counts,
   and (deep tier) the composite checks of the Suite registry. *)

open Testutil

(* ---- special functions against closed forms ----------------------- *)

let test_special_functions () =
  (* Γ(5) = 24. *)
  check_float ~tol:1e-9 "log_gamma 5" (log 24.) (Check.Stats.log_gamma 5.);
  (* Regularized incomplete beta at a = b = 1 is the identity. *)
  check_float ~tol:1e-9 "I_1,1(0.3)" 0.3 (Check.Stats.reg_inc_beta ~a:1. ~b:1. 0.3);
  (* chi2 survival at df = 2 is exp(-x/2). *)
  check_float ~tol:1e-9 "chi2_sf df=2" (exp (-1.)) (Check.Stats.chi2_sf ~df:2 2.);
  (* Standard normal quantiles. *)
  check_float ~tol:1e-9 "Phi(0)" 0.5 (Check.Stats.normal_cdf ~sigma:1. 0.);
  check_float ~tol:1e-4 "Phi(1.96)" 0.975 (Check.Stats.normal_cdf ~sigma:1. 1.959964);
  check_float ~tol:1e-12 "erfc(0)" 1. (Check.Stats.erfc 0.)

let test_clopper_pearson () =
  let n = 50 and alpha = 0.05 in
  (* k = 0: lo = 0, hi = 1 - (alpha/2)^(1/n) (exact closed form). *)
  let ci = Check.Stats.clopper_pearson ~alpha ~k:0 ~n in
  check_float ~tol:1e-9 "k=0 lo" 0. ci.Check.Stats.lo;
  check_float ~tol:1e-6 "k=0 hi" (1. -. ((alpha /. 2.) ** (1. /. float_of_int n))) ci.Check.Stats.hi;
  (* k = n mirrors it. *)
  let ci = Check.Stats.clopper_pearson ~alpha ~k:n ~n in
  check_float ~tol:1e-6 "k=n lo" ((alpha /. 2.) ** (1. /. float_of_int n)) ci.Check.Stats.lo;
  check_float ~tol:1e-9 "k=n hi" 1. ci.Check.Stats.hi;
  (* The interval contains the point estimate and is monotone in k. *)
  let ci = Check.Stats.clopper_pearson ~alpha ~k:25 ~n in
  check_in_range "k=n/2 straddles 0.5" ~lo:ci.Check.Stats.lo ~hi:ci.Check.Stats.hi 0.5;
  check_true "interval proper" (ci.Check.Stats.lo < ci.Check.Stats.hi)

(* ---- goodness-of-fit testers -------------------------------------- *)

let laplace_cdf x = Check.Dist.laplace_cdf ~eps:0.7 ~sensitivity:1.0 x

let test_ks_accepts_and_rejects r =
  let good = Array.init 4000 (fun _ -> Prim.Laplace.noise r ~eps:0.7 ~sensitivity:1.0) in
  let ks = Check.Stats.ks_test ~cdf:laplace_cdf good in
  check_true
    (Printf.sprintf "correct scale accepted (p = %.4f)" ks.Check.Stats.p_value)
    (ks.Check.Stats.p_value > 0.001);
  (* Half the intended noise scale must be rejected overwhelmingly. *)
  let bad = Array.map (fun x -> 0.5 *. x) good in
  let ks = Check.Stats.ks_test ~cdf:laplace_cdf bad in
  check_true
    (Printf.sprintf "wrong scale rejected (p = %.2g)" ks.Check.Stats.p_value)
    (ks.Check.Stats.p_value < 1e-6)

let test_ad_accepts_and_rejects r =
  let good = Array.init 4000 (fun _ -> Prim.Laplace.noise r ~eps:0.7 ~sensitivity:1.0) in
  let ad = Check.Stats.ad_test ~cdf:laplace_cdf good in
  check_true
    (Printf.sprintf "correct scale accepted (A2 = %.3f)" ad.Check.Stats.a2)
    (ad.Check.Stats.a2 < Check.Stats.ad_critical ~significance:0.01);
  let bad = Array.map (fun x -> 0.5 *. x) good in
  let ad = Check.Stats.ad_test ~cdf:laplace_cdf bad in
  check_true
    (Printf.sprintf "wrong scale rejected (A2 = %.1f)" ad.Check.Stats.a2)
    (ad.Check.Stats.a2 > Check.Stats.ad_critical ~significance:0.005)

let test_chi2_pools_and_rejects r =
  let expected = [| 0.5; 0.3; 0.15; 0.05 |] in
  let sample p rng =
    let u = Prim.Rng.float rng 1. in
    let rec go i acc = if u <= acc +. p.(i) || i = 3 then i else go (i + 1) (acc +. p.(i)) in
    go 0 0.
  in
  let counts p =
    let c = Array.make 4 0 in
    for _ = 1 to 4000 do
      let i = sample p r in
      c.(i) <- c.(i) + 1
    done;
    c
  in
  let ok = Check.Stats.chi2_test ~expected ~observed:(counts expected) in
  check_true
    (Printf.sprintf "matching law accepted (p = %.4f)" ok.Check.Stats.p_value)
    (ok.Check.Stats.p_value > 0.001);
  let skewed = Check.Stats.chi2_test ~expected ~observed:(counts [| 0.25; 0.25; 0.25; 0.25 |]) in
  check_true
    (Printf.sprintf "wrong law rejected (p = %.2g)" skewed.Check.Stats.p_value)
    (skewed.Check.Stats.p_value < 1e-6)

(* ---- exact reference laws ----------------------------------------- *)

let test_exp_mech_law () =
  let qualities = [| 3.; 5.; 4.; 1. |] in
  let p = Check.Dist.exp_mech_law ~eps:0.8 ~sensitivity:1.0 ~qualities in
  check_float ~tol:1e-12 "law sums to 1" 1. (Array.fold_left ( +. ) 0. p);
  (* Softmax ratio law: p_i/p_j = exp(eps (q_i - q_j) / 2). *)
  check_float ~tol:1e-9 "ratio law" (exp (0.8 *. (5. -. 3.) /. 2.)) (p.(1) /. p.(0))

let test_stability_hist_law () =
  (* Singleton fresh cell: released exactly when 1 + Lap(2/ε) clears the
     threshold 1 + (2/ε)·ln(2/δ), i.e. with probability δ/4. *)
  let eps = 1.0 and delta = 1e-4 in
  let law = Check.Dist.stability_hist_law ~eps ~delta [ ("only", 1) ] in
  check_int "law has k+1 entries" 2 (Array.length law);
  check_float ~tol:1e-7 "release prob = delta/4" (delta /. 4.) law.(0);
  check_float ~tol:1e-7 "none prob = 1 - delta/4" (1. -. (delta /. 4.)) law.(1);
  (* Multi-cell law remains a probability vector, dominated by the heavy
     cell once counts clear the threshold comfortably. *)
  let law = Check.Dist.stability_hist_law ~eps ~delta [ ("a", 60); ("b", 40) ] in
  check_float ~tol:1e-6 "multi-cell law sums to 1" 1. (Array.fold_left ( +. ) 0. law);
  check_true "heavy cell dominates" (law.(0) > 0.9)

(* ---- distinguisher verdict logic on synthetic counts --------------- *)

let test_verdict_logic () =
  let events = [ "e" ] in
  (* 900/1000 vs 100/1000: loss ≈ ln 9.  Claimed ε = 0.1 must be violated;
     claimed ε = 3 must not. *)
  let verdict eps =
    Check.Distinguisher.verdict ~claimed:(Prim.Dp.pure ~eps) ~events ~left:(1000, [| 900 |])
      ~right:(1000, [| 100 |]) ()
  in
  let v = verdict 0.1 in
  check_true "gross gap flagged at eps=0.1" v.Check.Distinguisher.violation;
  check_true
    (Printf.sprintf "certified loss %.2f below true ln 9" v.Check.Distinguisher.eps_lb)
    (v.Check.Distinguisher.eps_lb > 1.5 && v.Check.Distinguisher.eps_lb < log 9.);
  check_true "same gap legal at eps=3" (not (verdict 3.0).Check.Distinguisher.violation);
  (* delta absorbs a small event: 30/10000 vs 0/10000 under (0.1, 0.01). *)
  let v =
    Check.Distinguisher.verdict
      ~claimed:(Prim.Dp.v ~eps:0.1 ~delta:0.01)
      ~events ~left:(10_000, [| 30 |]) ~right:(10_000, [| 0 |]) ()
  in
  check_true "delta absorbs a rare event" (not v.Check.Distinguisher.violation);
  (* ...but not a large one. *)
  let v =
    Check.Distinguisher.verdict
      ~claimed:(Prim.Dp.v ~eps:0.1 ~delta:0.01)
      ~events ~left:(10_000, [| 3000 |]) ~right:(10_000, [| 100 |]) ()
  in
  check_true "large gap not absorbed" v.Check.Distinguisher.violation

let test_verdict_symmetry () =
  (* The inequality is checked in both directions: a gap hidden on the
     right side is caught too. *)
  let v =
    Check.Distinguisher.verdict ~claimed:(Prim.Dp.pure ~eps:0.1) ~events:[ "e" ]
      ~left:(1000, [| 100 |]) ~right:(1000, [| 900 |]) ()
  in
  check_true "right-side gap flagged" v.Check.Distinguisher.violation

(* ---- the suite registry -------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let fast_cfg =
  { Check.Suite.default with Check.Suite.seed = suite_seed; trials = 2500; domains = 2 }

let test_suite_fast_checks () =
  let results = Check.Suite.run ~only:[ "laplace"; "exp_mech" ] fast_cfg in
  check_int "laplace + exp_mech checks" 5 (List.length results);
  List.iter
    (fun (r : Check.Suite.result) ->
      check_true (r.Check.Suite.name ^ " passes") (r.Check.Suite.status = Check.Suite.Pass))
    results;
  (* The JSON report is well-formed enough to round-trip names. *)
  let json = Engine.Json.to_string (Check.Suite.report_json fast_cfg results) in
  check_true "report mentions laplace/ks"
    (String.length json > 0
    && contains json "laplace/ks"
    && contains json "\"violations\": 0")

let test_suite_names_registered () =
  let names = Check.Suite.names () in
  List.iter
    (fun expected ->
      check_true (expected ^ " registered") (List.mem expected names))
    [
      "laplace/ks"; "laplace/ad"; "gaussian/ks"; "gaussian/ad"; "exp_mech/chi2";
      "stability_hist/chi2"; "laplace/dp"; "gaussian/dp"; "exp_mech/dp"; "noisy_max/dp";
      "sparse_vector/dp"; "stability_hist/dp"; "noisy_avg/dp"; "good_radius/dp";
      "one_cluster/dp"; "engine_fallback/dp"; "one_cluster/utility"; "local_cluster/chi2";
      "local_cluster/dp"; "local_cluster/negative"; "local_cluster/utility"; "meb_fptas/dp";
      "meb_fptas/utility";
    ]

let test_grouped_names () =
  let groups = Check.Suite.grouped_names () in
  (* Every registered name appears exactly once, under its prefix group,
     and the flat registry order is preserved within each group. *)
  let flattened = List.concat_map snd groups in
  check_int "grouping is a partition" (List.length (Check.Suite.names ())) (List.length flattened);
  List.iter (fun n -> check_true (n ^ " grouped") (List.mem n flattened)) (Check.Suite.names ());
  List.iter
    (fun (group, members) ->
      check_true (group ^ " non-empty") (members <> []);
      List.iter
        (fun m ->
          check_true
            (Printf.sprintf "%s belongs under %s" m group)
            (contains m (group ^ "/") || m = group))
        members)
    groups;
  let local = List.assoc_opt "local_cluster" groups in
  check_true "local_cluster group has all four checks"
    (local = Some [ "local_cluster/chi2"; "local_cluster/dp"; "local_cluster/negative";
                    "local_cluster/utility" ])

let test_exit_status () =
  (* No match means no results ran, so violations is necessarily 0 there;
     the no-match code wins by construction. *)
  check_int "no match is 2" 2 (Check.Suite.exit_status ~matched:false ~violations:0);
  check_int "violations are 1" 1 (Check.Suite.exit_status ~matched:true ~violations:1);
  check_int "many violations still 1" 1 (Check.Suite.exit_status ~matched:true ~violations:7);
  check_int "clean run is 0" 0 (Check.Suite.exit_status ~matched:true ~violations:0)

let test_only_filtering () =
  (* Group prefix, exact name, and a name matching nothing. *)
  let by_group = Check.Suite.run ~only:[ "laplace" ] fast_cfg in
  check_int "group prefix matches the whole group" 3 (List.length by_group);
  (match Check.Suite.run ~only:[ "laplace/ks" ] fast_cfg with
  | [ r ] -> check_true "exact name matches itself" (r.Check.Suite.name = "laplace/ks")
  | rs -> Alcotest.failf "exact name matched %d checks" (List.length rs));
  check_int "unknown name matches nothing" 0
    (List.length (Check.Suite.run ~only:[ "no_such_check" ] fast_cfg))

(* ---- exact laws as QCheck properties -------------------------------- *)

(* Both selection laws are probability vectors by construction; these pin
   that they are so numerically, at ulp-scale tolerance, across the whole
   parameter range — and that exp-mech's law only sees quality gaps. *)

let test_exp_mech_probabilities_qcheck =
  qcheck "exp-mech probabilities sum to 1 and ignore translation"
    QCheck2.Gen.(
      triple (float_range 0.05 5.0)
        (array_size (int_range 2 30) (float_range (-50.) 50.))
        (float_range (-100.) 100.))
    (fun (eps, qualities, shift) ->
      let p = Prim.Exp_mech.probabilities ~eps ~sensitivity:1.0 ~qualities in
      let shifted =
        Prim.Exp_mech.probabilities ~eps ~sensitivity:1.0
          ~qualities:(Array.map (fun q -> q +. shift) qualities)
      in
      let n = Array.length qualities in
      let tol = 16. *. float_of_int n *. epsilon_float in
      Float.abs (Array.fold_left ( +. ) 0. p -. 1.) <= tol
      && Array.for_all2 (fun a b -> Float.abs (a -. b) <= 1e-9) p shifted)

let test_local_randomizer_law_qcheck =
  qcheck "local-randomizer law sums to 1 at ulp scale"
    QCheck2.Gen.(triple (float_range 0.05 5.0) (int_range 2 64) (int_range 0 1000))
    (fun (eps, k, cell_raw) ->
      let law = Check.Dist.local_randomizer_law ~eps ~k ~cell:(cell_raw mod k) in
      Float.abs (Array.fold_left ( +. ) 0. law -. 1.) <= 16. *. float_of_int k *. epsilon_float)

(* Determinism: the fan-out shards trials over a fixed chunk count, so the
   verdict is bit-identical for any worker-domain count. *)
let test_suite_domain_independence () =
  let run domains =
    Check.Suite.run ~only:[ "laplace/ks" ] { fast_cfg with Check.Suite.domains }
  in
  match (run 1, run 4) with
  | [ a ], [ b ] ->
      check_true "same detail across domain counts" (a.Check.Suite.detail = b.Check.Suite.detail)
  | _ -> Alcotest.fail "expected exactly one result per run"

(* ---- deep tier ------------------------------------------------------ *)

let deep_cfg =
  { Check.Suite.default with Check.Suite.seed = suite_seed; trials = 8000; domains = 4 }

let test_deep_composites () =
  let results =
    Check.Suite.run ~only:[ "good_radius/dp"; "one_cluster/dp"; "engine_fallback/dp" ] deep_cfg
  in
  check_int "three composite checks" 3 (List.length results);
  List.iter
    (fun (r : Check.Suite.result) ->
      if r.Check.Suite.status <> Check.Suite.Pass then
        Alcotest.failf "%s: %s" r.Check.Suite.name r.Check.Suite.detail)
    results

let test_deep_utility () =
  match Check.Suite.run ~only:[ "one_cluster/utility" ] deep_cfg with
  | [ r ] ->
      if r.Check.Suite.status <> Check.Suite.Pass then
        Alcotest.failf "utility certification: %s" r.Check.Suite.detail
  | _ -> Alcotest.fail "expected exactly one utility result"

(* The competitor checks: both distinguishers and the negative control
   (which passes exactly when the mis-calibrated randomizer IS flagged). *)
let test_deep_competitors () =
  let results =
    Check.Suite.run
      ~only:[ "local_cluster/chi2"; "local_cluster/dp"; "local_cluster/negative"; "meb_fptas/dp" ]
      deep_cfg
  in
  check_int "four competitor checks" 4 (List.length results);
  List.iter
    (fun (r : Check.Suite.result) ->
      if r.Check.Suite.status <> Check.Suite.Pass then
        Alcotest.failf "%s: %s" r.Check.Suite.name r.Check.Suite.detail)
    results

let test_deep_competitor_utility () =
  let results = Check.Suite.run ~only:[ "local_cluster/utility"; "meb_fptas/utility" ] deep_cfg in
  check_int "two utility contracts" 2 (List.length results);
  List.iter
    (fun (r : Check.Suite.result) ->
      if r.Check.Suite.status <> Check.Suite.Pass then
        Alcotest.failf "%s: %s" r.Check.Suite.name r.Check.Suite.detail)
    results

let suite =
  [
    case "special functions vs closed forms" test_special_functions;
    case "clopper-pearson closed forms" test_clopper_pearson;
    stat_case "ks accepts right / rejects wrong scale" test_ks_accepts_and_rejects;
    stat_case "ad accepts right / rejects wrong scale" test_ad_accepts_and_rejects;
    stat_case "chi2 accepts right / rejects wrong law" test_chi2_pools_and_rejects;
    case "exponential-mechanism law" test_exp_mech_law;
    case "stability-histogram law" test_stability_hist_law;
    case "distinguisher verdict logic" test_verdict_logic;
    case "distinguisher checks both directions" test_verdict_symmetry;
    slow_case "suite fast checks pass" test_suite_fast_checks;
    case "suite registry complete" test_suite_names_registered;
    case "grouped names partition the registry" test_grouped_names;
    case "exit-status contract" test_exit_status;
    slow_case "--only filtering: group, exact, none" test_only_filtering;
    test_exp_mech_probabilities_qcheck;
    test_local_randomizer_law_qcheck;
    slow_case "suite verdicts domain-independent" test_suite_domain_independence;
  ]
  @ deep_case "deep: composite distinguishers" (fun _ -> test_deep_composites ())
  @ deep_case "deep: utility certification" (fun _ -> test_deep_utility ())
  @ deep_case "deep: competitor distinguishers and negative control" (fun _ ->
        test_deep_competitors ())
  @ deep_case "deep: competitor utility contracts" (fun _ -> test_deep_competitor_utility ())
