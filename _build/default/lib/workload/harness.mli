(** Shared plumbing for the experiment suite: run one solver on one
    workload, time it, and score it against the ground truth with a single
    record the tables can render. *)

type scored = {
  time_ms : float;
  center : Geometry.Vec.t option;  (** [None] when the solver failed. *)
  radius : float;  (** The method's own (private) radius; 0 on failure. *)
  covered : int;  (** Points inside the returned ball. *)
  delta_measured : int;  (** [max 0 (t − covered)]. *)
  w_private : float;  (** radius / r_hi. *)
  w_tight : float;
      (** (smallest radius around the returned center holding [t] points)
          / r_hi — quality of the {e center}, free of the conservative
          private radius. *)
  failure : string option;
}

val time : (unit -> 'a) -> 'a * float
(** Result and wall-clock milliseconds. *)

val failed : time_ms:float -> string -> scored

val score_center :
  idx:Geometry.Pointset.index ->
  t:int ->
  r_hi:float ->
  time_ms:float ->
  center:Geometry.Vec.t ->
  radius:float ->
  scored

val run_one_cluster :
  Prim.Rng.t ->
  Privcluster.Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  t:int ->
  r_hi:float ->
  Geometry.Pointset.index ->
  scored * Privcluster.One_cluster.result option

val median_scores : scored list -> scored
(** Coordinatewise medians of the numeric fields (failures excluded from
    the numeric medians; the [failure] field reports the failure count). *)

val default_delta : float
(** [1e-6] — the δ used throughout the experiment suite. *)

val default_beta : float
(** [0.1]. *)
