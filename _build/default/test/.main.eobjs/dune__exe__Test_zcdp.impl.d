test/test_zcdp.ml: Alcotest List Prim Printf Testutil
