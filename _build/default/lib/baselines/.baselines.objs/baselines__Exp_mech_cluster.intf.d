lib/baselines/exp_mech_cluster.mli: Geometry Prim
