(* Shared helpers for the test-suite. *)

let rng ?(seed = 424242) () = Prim.Rng.create ~seed ()

let check_float ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.12g, got %.12g (tol %.3g)" msg expected actual tol

let check_in_range msg ~lo ~hi actual =
  if not (actual >= lo && actual <= hi) then
    Alcotest.failf "%s: %.12g not in [%.12g, %.12g]" msg actual lo hi

let check_true msg b = Alcotest.(check bool) msg true b
let check_int msg expected actual = Alcotest.(check int) msg expected actual

(* Sample mean / variance for sampler statistics. *)
let stats samples =
  let n = float_of_int (Array.length samples) in
  let mean = Array.fold_left ( +. ) 0. samples /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. samples /. (n -. 1.)
  in
  (mean, var)

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A small deterministic planted-cluster workload used by several suites. *)
let small_workload ?(seed = 3) ?(n = 400) ?(dim = 2) ?(axis = 128) ?(fraction = 0.5)
    ?(radius = 0.06) () =
  let r = rng ~seed () in
  let grid = Geometry.Grid.create ~axis_size:axis ~dim in
  let w = Workload.Synth.planted_ball r ~grid ~n ~cluster_fraction:fraction ~cluster_radius:radius in
  (r, grid, w)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f
