(* The applications built on the 1-cluster solver: interior point
   (Algorithm 3), sample-and-aggregate (Algorithm 4), k-clustering
   (Observation 3.5), and outlier screening (§1.1). *)

open Testutil

let delta = 1e-6
let beta = 0.1

(* --- Interior point --- *)

let test_depth_quality () =
  let values = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "below all" 0. (Privcluster.Interior_point.depth_quality values 0.);
  check_float "at median" 3. (Privcluster.Interior_point.depth_quality values 3.);
  check_float "above all" 0. (Privcluster.Interior_point.depth_quality values 6.);
  check_float "between" 2. (Privcluster.Interior_point.depth_quality values 2.5)

let test_depth_quality_quasi_concave () =
  let r = rng () in
  let values = Array.init 50 (fun _ -> Prim.Rng.float r 1.0) in
  let probes = Array.init 101 (fun i -> float_of_int i /. 100.) in
  let q =
    Recconcave.Quality.of_array
      (Array.map (Privcluster.Interior_point.depth_quality values) probes)
  in
  check_true "depth quality quasi-concave along probes" (Recconcave.Quality.is_quasi_concave q)

let test_interior_point_end_to_end () =
  let r = rng ~seed:51 () in
  let grid = Geometry.Grid.create ~axis_size:1024 ~dim:1 in
  let m = 3000 in
  let values =
    Array.init m (fun i ->
        let base = if i mod 2 = 0 then 0.3 else 0.7 in
        Float.max 0. (Float.min 1. (base +. Prim.Rng.gaussian r ~sigma:0.01 ())))
  in
  match
    Privcluster.Interior_point.run r Privcluster.Profile.practical ~grid ~eps:2.0 ~delta ~beta
      ~inner_n:(m / 2) ~w:16. values
  with
  | Error f -> Alcotest.failf "interior point failed: %a" Privcluster.One_cluster.pp_failure f
  | Ok ip ->
      let lo = Array.fold_left Float.min infinity values in
      let hi = Array.fold_left Float.max neg_infinity values in
      check_in_range "interior" ~lo ~hi ip.Privcluster.Interior_point.point;
      check_true "candidates bounded by ~4w" (ip.Privcluster.Interior_point.candidates <= 66)

let test_required_m_grows_with_w () =
  let m w = Privcluster.Interior_point.required_m ~n:100 ~w ~eps:1. ~delta:1e-6 ~beta:0.1 in
  check_true "monotone in w" (m 1000. > m 2.);
  check_true "at least n" (m 2. >= 100.)

let test_interior_validation () =
  let r = rng () in
  let grid2 = Geometry.Grid.create ~axis_size:16 ~dim:2 in
  Alcotest.check_raises "1-D grid required" (Invalid_argument "Interior_point.run: grid must be 1-D")
    (fun () ->
      ignore
        (Privcluster.Interior_point.run r Privcluster.Profile.practical ~grid:grid2 ~eps:1.
           ~delta ~beta ~inner_n:1 ~w:2. [| 0.5 |]))

(* --- Sample and aggregate --- *)

let test_sa_block_mean () =
  let r = rng ~seed:61 () in
  let grid = Geometry.Grid.create ~axis_size:512 ~dim:2 in
  let truth = [| 0.4; 0.6 |] in
  let data =
    Array.init 60_000 (fun _ ->
        Array.map (fun c -> c +. Prim.Rng.gaussian r ~sigma:0.02 ()) truth)
  in
  match
    Privcluster.Sample_aggregate.run r Privcluster.Profile.practical ~grid ~eps:2.0 ~delta ~beta
      ~m:10 ~alpha:0.8 ~f:Geometry.Vec.mean data
  with
  | Error f -> Alcotest.failf "SA failed: %a" Privcluster.One_cluster.pp_failure f
  | Ok result ->
      check_int "blocks" (60_000 / 90) result.Privcluster.Sample_aggregate.blocks;
      check_int "block size" 10 result.Privcluster.Sample_aggregate.block_size;
      check_true "t = alpha k/2"
        (result.Privcluster.Sample_aggregate.t_used
        = int_of_float (0.8 *. float_of_int result.Privcluster.Sample_aggregate.blocks /. 2.));
      check_true "stable point near truth"
        (Geometry.Vec.dist result.Privcluster.Sample_aggregate.stable_point truth < 0.15)

let test_sa_amplification () =
  let p = Privcluster.Sample_aggregate.amplified ~eps:3.0 ~delta:1e-6 in
  check_float ~tol:1e-9 "eps amplified to 2/3" 2.0 (Prim.Dp.eps p);
  check_true "delta amplified" (Prim.Dp.delta p < 1e-5)

let test_sa_validation () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:16 ~dim:1 in
  Alcotest.check_raises "needs blocks"
    (Invalid_argument "Sample_aggregate.run: need n >= 18·m for two blocks") (fun () ->
      ignore
        (Privcluster.Sample_aggregate.run r Privcluster.Profile.practical ~grid ~eps:1. ~delta
           ~beta ~m:10 ~alpha:0.5
           ~f:(fun _ -> [| 0.5 |])
           (Array.make 30 0.)))

(* --- K-clustering --- *)

let test_k_cluster_coverage () =
  let r = rng ~seed:71 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.planted_balls r ~grid ~n:3000 ~k:2 ~cluster_radius:0.05 ~noise_fraction:0.1
  in
  let result =
    Privcluster.K_cluster.run r Privcluster.Profile.practical ~grid ~eps:4.0 ~delta ~beta ~k:2
      ~t_fraction:0.35 w.Workload.Synth.all_points
  in
  check_true "found up to k balls" (List.length result.Privcluster.K_cluster.balls <= 2);
  check_true "found at least one ball" (List.length result.Privcluster.K_cluster.balls >= 1);
  let cov =
    Privcluster.K_cluster.coverage result.Privcluster.K_cluster.balls w.Workload.Synth.all_points
  in
  check_true
    (Printf.sprintf "covers most points (%d/3000)" cov)
    (cov > 1800);
  List.iter
    (fun b ->
      check_true "core radius below private radius"
        (b.Privcluster.K_cluster.core_radius <= b.Privcluster.K_cluster.radius +. 1e-9 ||
         b.Privcluster.K_cluster.core_radius > 0.))
    result.Privcluster.K_cluster.balls

let test_max_recommended_k () =
  let k = Privcluster.K_cluster.max_recommended_k ~eps:1.0 ~n:10_000 ~d:8 in
  check_true "reasonable magnitude" (k > 50 && k < 1000);
  check_true "grows with n"
    (Privcluster.K_cluster.max_recommended_k ~eps:1.0 ~n:100_000 ~d:8 > k);
  check_true "shrinks with d"
    (Privcluster.K_cluster.max_recommended_k ~eps:1.0 ~n:10_000 ~d:64 < k)

let test_k_cluster_validation () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:16 ~dim:1 in
  Alcotest.check_raises "k >= 1" (Invalid_argument "K_cluster.run: k must be >= 1") (fun () ->
      ignore
        (Privcluster.K_cluster.run r Privcluster.Profile.practical ~grid ~eps:1. ~delta ~beta
           ~k:0 ~t_fraction:0.5 [| [| 0.5 |] |]))

(* --- Outliers --- *)

let test_outlier_screening () =
  let r = rng ~seed:81 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.with_outliers r ~grid ~n:2000 ~outlier_fraction:0.1 ~inlier_radius:0.04
  in
  match
    Privcluster.Outlier.detect r Privcluster.Profile.practical ~grid ~eps:2.0 ~delta ~beta
      ~inlier_fraction:0.85 w.Workload.Synth.data
  with
  | Error f -> Alcotest.failf "detect failed: %a" Privcluster.One_cluster.pp_failure f
  | Ok det ->
      (* The predicate keeps the inlier center and drops most planted
         outliers (which are uniform, hence mostly far from the ball). *)
      check_true "center is inlier" (det.Privcluster.Outlier.inlier w.Workload.Synth.inlier_center);
      let dropped =
        Array.fold_left
          (fun acc i ->
            if det.Privcluster.Outlier.inlier w.Workload.Synth.data.(i) then acc else acc + 1)
          0 w.Workload.Synth.outlier_indices
      in
      check_true
        (Printf.sprintf "most outliers dropped (%d/%d)" dropped
           (Array.length w.Workload.Synth.outlier_indices))
        (2 * dropped > Array.length w.Workload.Synth.outlier_indices);
      (match Privcluster.Outlier.screened_mean r ~eps:1.0 ~delta det w.Workload.Synth.data with
      | Prim.Noisy_avg.Average a ->
          check_true "screened mean near inlier center"
            (Geometry.Vec.dist a.Prim.Noisy_avg.average w.Workload.Synth.inlier_center < 0.2)
      | Prim.Noisy_avg.Bottom -> Alcotest.fail "screened mean bottom")

let test_domain_mean () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:2 in
  let points = Array.make 4000 [| 0.3; 0.7 |] in
  match Privcluster.Outlier.domain_mean r ~eps:1.0 ~delta:1e-6 ~grid points with
  | Prim.Noisy_avg.Average a ->
      check_true "near true mean" (Geometry.Vec.dist a.Prim.Noisy_avg.average [| 0.3; 0.7 |] < 0.05)
  | Prim.Noisy_avg.Bottom -> Alcotest.fail "bottom on 4000 points"

let suite =
  [
    case "domain mean" test_domain_mean;
    case "depth quality" test_depth_quality;
    case "depth quality quasi-concave" test_depth_quality_quasi_concave;
    slow_case "interior point end to end" test_interior_point_end_to_end;
    case "required_m monotone" test_required_m_grows_with_w;
    case "interior point validation" test_interior_validation;
    slow_case "sample-aggregate block mean" test_sa_block_mean;
    case "subsampling amplification" test_sa_amplification;
    case "sample-aggregate validation" test_sa_validation;
    slow_case "k-cluster coverage" test_k_cluster_coverage;
    case "k-cluster recommended k" test_max_recommended_k;
    case "k-cluster validation" test_k_cluster_validation;
    slow_case "outlier screening" test_outlier_screening;
  ]
