lib/prim/gaussian_mech.mli: Rng
