(* Point sets: capped counts B̄_r, the score L(r, S), its monotonicity and
   its sensitivity-2 property (Lemma 4.5), and the distance index. *)

open Testutil

let points_gen =
  QCheck2.Gen.(
    array_size (int_range 2 40)
      (array_size (return 2) (float_range 0. 1.)))

let test_create_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Pointset.create: empty") (fun () ->
      ignore (Geometry.Pointset.create [||]));
  Alcotest.check_raises "mixed dims" (Invalid_argument "Pointset.create: mixed dimensions")
    (fun () -> ignore (Geometry.Pointset.create [| [| 1. |]; [| 1.; 2. |] |]))

let test_ball_count () =
  let ps = Geometry.Pointset.create [| [| 0.; 0. |]; [| 1.; 0. |]; [| 0.3; 0. |] |] in
  check_int "radius 0.5" 2 (Geometry.Pointset.ball_count ps ~center:[| 0.; 0. |] ~radius:0.5);
  check_int "radius 1" 3 (Geometry.Pointset.ball_count ps ~center:[| 0.; 0. |] ~radius:1.0);
  check_int "boundary inclusive" 2
    (Geometry.Pointset.ball_count ps ~center:[| 0.; 0. |] ~radius:0.3);
  check_int "capped" 1 (Geometry.Pointset.capped_ball_count ps ~cap:1 ~center:[| 0.; 0. |] ~radius:1.0);
  check_int "ball_points agrees" 2
    (Array.length (Geometry.Pointset.ball_points ps ~center:[| 0.; 0. |] ~radius:0.5))

let test_top_average () =
  check_float "top 2 of [1;5;3]" 4.0 (Geometry.Pointset.top_average [| 1.; 5.; 3. |] ~k:2);
  check_float "top all" 3.0 (Geometry.Pointset.top_average [| 1.; 5.; 3. |] ~k:3);
  Alcotest.check_raises "bad k" (Invalid_argument "Pointset.top_average: bad k") (fun () ->
      ignore (Geometry.Pointset.top_average [| 1. |] ~k:2))

let qcheck_index_matches_direct =
  qcheck "indexed L = direct L" ~count:60 points_gen (fun pts ->
      let ps = Geometry.Pointset.create pts in
      let idx = Geometry.Pointset.build_index ps in
      let t = max 1 (Array.length pts / 3) in
      List.for_all
        (fun r ->
          Float.abs
            (Geometry.Pointset.score_l idx ~cap:t ~radius:r
            -. Geometry.Pointset.score_l_direct ps ~cap:t ~radius:r)
          < 1e-9)
        [ 0.; 0.05; 0.2; 0.7; 2.0 ])

let qcheck_l_monotone =
  qcheck "L non-decreasing in r" ~count:60 points_gen (fun pts ->
      let ps = Geometry.Pointset.create pts in
      let idx = Geometry.Pointset.build_index ps in
      let t = max 1 (Array.length pts / 2) in
      let radii = [ 0.; 0.01; 0.1; 0.3; 0.9; 1.5 ] in
      let scores = List.map (fun r -> Geometry.Pointset.score_l idx ~cap:t ~radius:r) radii in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-9 && mono rest
        | _ -> true
      in
      mono scores)

(* Lemma 4.5: |L(r, S) − L(r, S')| ≤ 2 for S, S' differing in one point. *)
let qcheck_l_sensitivity_two =
  qcheck "L sensitivity <= 2 (Lemma 4.5)" ~count:80
    QCheck2.Gen.(
      triple points_gen (array_size (return 2) (float_range 0. 1.)) (float_range 0. 1.))
    (fun (pts, replacement, r) ->
      let n = Array.length pts in
      let t = max 1 (n / 3) in
      let ps = Geometry.Pointset.create pts in
      let pts' = Array.copy pts in
      pts'.(n - 1) <- replacement;
      let ps' = Geometry.Pointset.create pts' in
      let l = Geometry.Pointset.score_l_direct ps ~cap:t ~radius:r in
      let l' = Geometry.Pointset.score_l_direct ps' ~cap:t ~radius:r in
      Float.abs (l -. l') <= 2. +. 1e-9)

let qcheck_l_bounds =
  qcheck "0 <= L <= t and L(diam) = min n t" ~count:60 points_gen (fun pts ->
      let ps = Geometry.Pointset.create pts in
      let n = Array.length pts in
      let t = max 1 (n / 2) in
      let l r = Geometry.Pointset.score_l_direct ps ~cap:t ~radius:r in
      l 0. >= 0.
      && l 0. <= float_of_int t +. 1e-9
      && Float.abs (l 10. -. float_of_int (min n t)) < 1e-9)

let test_counts_within () =
  let pts = [| [| 0. |]; [| 0.1 |]; [| 0.2 |]; [| 0.9 |] |] in
  let idx = Geometry.Pointset.build_index (Geometry.Pointset.create pts) in
  let counts = Geometry.Pointset.counts_within idx ~radius:0.15 in
  Alcotest.(check (array int)) "counts" [| 2; 3; 2; 1 |] counts;
  let zero = Geometry.Pointset.counts_within idx ~radius:(-1.) in
  Alcotest.(check (array int)) "negative radius" [| 0; 0; 0; 0 |] zero

let test_kth_neighbor () =
  let pts = [| [| 0. |]; [| 0.3 |]; [| 1.0 |] |] in
  let idx = Geometry.Pointset.build_index (Geometry.Pointset.create pts) in
  check_float "1st neighbor is self" 0.0 (Geometry.Pointset.kth_neighbor_distance idx ~k:1 0);
  check_float "2nd neighbor" 0.3 (Geometry.Pointset.kth_neighbor_distance idx ~k:2 0);
  check_float "3rd neighbor" 1.0 (Geometry.Pointset.kth_neighbor_distance idx ~k:3 0);
  Alcotest.check_raises "bad k" (Invalid_argument "Pointset.kth_neighbor_distance: bad k")
    (fun () -> ignore (Geometry.Pointset.kth_neighbor_distance idx ~k:4 0))

let test_subset_filter_map () =
  let ps = Geometry.Pointset.create [| [| 0. |]; [| 1. |]; [| 2. |] |] in
  let sub = Geometry.Pointset.subset ps ~indices:[| 2; 0 |] in
  check_int "subset size" 2 (Geometry.Pointset.n sub);
  check_float "subset order" 2. (Geometry.Pointset.point sub 0).(0);
  let filtered = Geometry.Pointset.filter (fun p -> p.(0) > 0.5) ps in
  check_int "filter" 2 (Geometry.Pointset.n filtered);
  check_float "filter keeps order" 1. (Geometry.Pointset.point filtered 0).(0);
  let mapped = Geometry.Pointset.map_points (Geometry.Vec.scale 2.) ps in
  check_float "map" 4. (Geometry.Pointset.point mapped 2).(0)

let suite =
  [
    case "create validation" test_create_validation;
    case "ball counts" test_ball_count;
    case "top average" test_top_average;
    qcheck_index_matches_direct;
    qcheck_l_monotone;
    qcheck_l_sensitivity_two;
    qcheck_l_bounds;
    case "counts_within" test_counts_within;
    case "kth neighbor distance" test_kth_neighbor;
    case "subset / filter / map" test_subset_filter_map;
  ]
