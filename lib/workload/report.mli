(** Plain-text table rendering for the experiment harness — every table and
    figure of EXPERIMENTS.md is printed through this module so
    [bench/main.exe] output is uniform and diffable. *)

val headline : string -> unit
(** Boxed section header. *)

val subhead : string -> unit

val kv : string -> string -> unit
(** Aligned ["  key: value"] line. *)

val set_csv_dir : string option -> unit
(** When set, every {!table} carrying a [~csv] name also writes
    [dir/name.csv] (directory created on demand) so the experiment outputs
    can be re-plotted without re-running. *)

val table : ?csv:string -> header:string list -> string list list -> unit
(** Column-padded table with a rule under the header; optionally exported
    as CSV (see {!set_csv_dir}). *)

val f2 : float -> string
(** Fixed 2-decimal rendering ([nan] → ["-"]). *)

val f3 : float -> string
val g : float -> string
(** Shortest-round-trip rendering. *)

val pct : float -> string
(** [0.42] → ["42%"]. *)

(** {1 Output capture}

    Output normally goes to stdout.  {!capture} reroutes it — for the
    {e calling domain only} (the sink is domain-local state) — into a
    buffer, which is how the bench runs experiments on engine-pool worker
    domains without interleaving their tables: each worker captures, the
    driver prints the buffers in submission order. *)

val capture : (unit -> 'a) -> 'a * string
(** [capture f] runs [f] with this domain's report output buffered and
    returns [f]'s result together with everything it printed.  Nests;
    restores the previous sink on exit (also on exceptions).  CSV export
    ({!set_csv_dir}) still writes to files directly — it is mutex-guarded,
    not captured. *)
