(** A fixed-size worker pool on OCaml 5 domains.

    [run] executes a batch of tasks on [domains] worker domains pulling
    from a shared queue (an atomic next-index counter — tasks are
    independent, so no further coordination is needed) and returns the
    outcomes {e in submission order}, regardless of which domain ran what
    or in what order tasks finished.

    Determinism: the pool passes each task's submission index to the work
    function; callers that need reproducible randomness derive a per-task
    generator from that index with {!Prim.Rng.derive}, which depends only
    on the base seed and the index — never on scheduling.  The engine's
    batch results are therefore bit-identical at 1 and at [N] domains.

    Deadlines are per-task, measured from batch start (the moment [run] is
    called), and {e cooperative}: a domain cannot preempt a running
    OCaml computation.  Concretely, a task whose deadline has already
    passed when a worker picks it up is never started, and a task that
    finishes past its deadline has its result discarded; both report
    {!Timed_out}.  Either way the pool itself never hangs on a deadline —
    it returns as soon as every task has been started-and-finished or
    skipped. *)

type 'a task = { payload : 'a; deadline_s : float option }

val task : ?deadline_s:float -> 'a -> 'a task

type 'b outcome =
  | Done of 'b
  | Timed_out of { elapsed_ms : float }
      (** Deadline passed before the task started, or the task finished
          past it (see the cooperative-deadline note above). *)
  | Failed of string
      (** The work function raised; the exception is confined to the task
          (other tasks and the pool are unaffected). *)

val outcome_name : _ outcome -> string
(** ["ok"], ["timeout"], ["failed"]. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], capped at 8 — past the point of
    diminishing returns for this workload's memory-bound inner loops. *)

val run : domains:int -> f:(int -> 'a -> 'b) -> 'a task array -> 'b outcome array
(** [run ~domains ~f tasks] — [f index payload] for every task; [domains]
    is clamped to [[1, Array.length tasks]].  Blocks until the batch is
    drained. *)
