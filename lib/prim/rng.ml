type t = { state : Random.State.t; seed : int }

let create ?seed () =
  let seed =
    match seed with
    | Some s -> s
    | None -> Random.State.bits (Random.State.make_self_init ())
  in
  { state = Random.State.make [| seed; seed lxor 0x9e3779b9; 0x2545f491 |]; seed }

let copy t = { t with state = Random.State.copy t.state }
let split t = create ~seed:(Random.State.bits t.state lxor 0x5deece66) ()

(* SplitMix64 finalizer — the avalanche is what makes nearby (seed, stream)
   pairs land on unrelated streams. *)
let splitmix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let derive t ~stream =
  if stream < 0 then invalid_arg "Rng.derive: stream must be non-negative";
  let open Int64 in
  let h =
    splitmix64
      (add (of_int t.seed) (mul (of_int (stream + 1)) 0x9e3779b97f4a7c15L))
  in
  create ~seed:(to_int h land Stdlib.max_int) ()

let seed_of t = t.seed
let float t b = Random.State.float t.state b

let uniform t ~lo ~hi =
  assert (lo <= hi);
  lo +. Random.State.float t.state (hi -. lo)

let int t n = Random.State.int t.state n
let bool t = Random.State.bool t.state

let bernoulli t ~p =
  let p = Float.max 0. (Float.min 1. p) in
  Random.State.float t.state 1.0 < p

(* Box–Muller.  We discard the second variate to keep the generator
   stateless with respect to callers; the cost is negligible next to the
   surrounding linear algebra. *)
let gaussian t ?(mu = 0.) ~sigma () =
  assert (sigma >= 0.);
  if sigma = 0. then mu
  else
    let rec nonzero () =
      let u = Random.State.float t.state 1.0 in
      if u > 0. then u else nonzero ()
    in
    let u1 = nonzero () and u2 = Random.State.float t.state 1.0 in
    mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let laplace t ?(mu = 0.) ~scale () =
  assert (scale > 0.);
  (* Inverse CDF on u uniform in (−1/2, 1/2). *)
  let rec draw () =
    let u = Random.State.float t.state 1.0 -. 0.5 in
    if u = -0.5 then draw ()
    else mu -. (scale *. Float.of_int (compare u 0.) *. log (1. -. (2. *. Float.abs u)))
  in
  draw ()

let exponential t ~rate =
  assert (rate > 0.);
  let rec nonzero () =
    let u = Random.State.float t.state 1.0 in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let gumbel t ~scale =
  let rec nonzero () =
    let u = Random.State.float t.state 1.0 in
    if u > 0. then u else nonzero ()
  in
  -.scale *. log (-.log (nonzero ()))

let gaussian_vector t ~dim ~sigma = Array.init dim (fun _ -> gaussian t ~sigma ())

let categorical t ~weights =
  let total = Array.fold_left ( +. ) 0. weights in
  assert (total > 0.);
  let x = Random.State.float t.state total in
  let n = Array.length weights in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let categorical_log t ~log_weights =
  let n = Array.length log_weights in
  assert (n > 0);
  let best = ref 0 and best_v = ref neg_infinity in
  for i = 0 to n - 1 do
    let v = log_weights.(i) +. gumbel t ~scale:1.0 in
    if v > !best_v then begin
      best_v := v;
      best := i
    end
  done;
  !best

let shuffle t a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int t.state (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let sample_without_replacement t ~k a =
  let n = Array.length a in
  assert (k <= n);
  let idx = Array.init n (fun i -> i) in
  shuffle t idx;
  Array.init k (fun i -> a.(idx.(i)))

let sample_with_replacement t ~k a =
  let n = Array.length a in
  assert (n > 0);
  Array.init k (fun _ -> a.(Random.State.int t.state n))
