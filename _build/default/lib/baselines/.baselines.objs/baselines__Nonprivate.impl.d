lib/baselines/nonprivate.ml: Array Float Geometry
