lib/workload/metrics.mli: Geometry
