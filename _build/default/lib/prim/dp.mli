(** Privacy parameters and budget bookkeeping.

    A value of type {!params} is the [(ε, δ)] pair of Definition 1.1.  The
    helpers here are pure arithmetic on parameters; actual noise addition
    lives in the mechanism modules ({!Laplace}, {!Gaussian_mech}, …) and
    multi-mechanism accounting in {!Composition}. *)

type params = { eps : float; delta : float }

val v : eps:float -> delta:float -> params
(** Smart constructor; raises [Invalid_argument] unless [eps > 0] and
    [0 <= delta < 1]. *)

val pure : eps:float -> params
(** [(ε, 0)]-DP. *)

val eps : params -> float
val delta : params -> float

val split : params -> int -> params
(** [split p k] gives the per-piece budget when [p] is divided evenly over
    [k] sequential mechanisms under basic composition (Theorem 2.1):
    each piece gets [(ε/k, δ/k)]. *)

val scale : params -> float -> params
(** [scale p c] multiplies both ε and δ by [c] (c > 0). *)

val is_pure : params -> bool

val pp : Format.formatter -> params -> unit
val to_string : params -> string
