(** Dense vectors in R^d as [float array], with the operations the paper's
    geometry needs: norms and distances (Definition 3.1 works in the
    Euclidean metric), inner products (Lemma 4.9 projects differences onto
    basis vectors), and elementwise arithmetic for means and translations. *)

type t = float array

val dim : t -> int
val zero : int -> t
val copy : t -> t
val of_list : float list -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val axpy : float -> t -> t -> unit
(** [axpy a x y] performs [y ← a·x + y] in place. *)

val dot : t -> t -> float
val norm2 : t -> float
(** Euclidean (L2) norm. *)

val norm2_sq : t -> float
val norm1 : t -> float
val norm_inf : t -> float

val dist : t -> t -> float
(** Euclidean distance, computed without allocating. *)

val dist_sq : t -> t -> float

val mean : t array -> t
(** Arithmetic mean.  @raise Invalid_argument on an empty array. *)

val normalize : t -> t
(** Unit vector in the same direction.  @raise Invalid_argument on zero. *)

val equal : ?tol:float -> t -> t -> bool
(** Coordinatewise comparison with absolute tolerance (default 1e-12). *)

val pp : Format.formatter -> t -> unit

(** {1 Flat row views}

    Zero-allocation kernels over a row [st.(off) .. st.(off + dim - 1)] of a
    row-major backing store (see {!Pointset} for who owns such storage).
    Every kernel accumulates in the same index order as its boxed
    counterpart above, so the two paths agree bit-for-bit on identical
    inputs. *)

val get : float array -> off:int -> int -> float
(** [get st ~off i] — coordinate [i] of the row at [off]. *)

val set : float array -> off:int -> int -> float -> unit

val of_row : float array -> off:int -> dim:int -> t
(** Copy the row out into a fresh boxed vector. *)

val set_row : float array -> off:int -> t -> unit
(** Blit a boxed vector into the row at [off]. *)

val dist_sq_rows : float array -> int -> float array -> int -> dim:int -> float
(** [dist_sq_rows a oa b ob ~dim] — squared distance between row [oa] of
    [a] and row [ob] of [b]. *)

val dist_rows : float array -> int -> float array -> int -> dim:int -> float
val dist_sq_to_row : float array -> off:int -> dim:int -> t -> float
val dist_to_row : float array -> off:int -> dim:int -> t -> float

val dot_row : float array -> off:int -> dim:int -> t -> float
(** Inner product of a row with a boxed vector. *)

val dot_rows : float array -> int -> float array -> int -> dim:int -> float

val axpy_row : float -> float array -> off:int -> dim:int -> t -> unit
(** [axpy_row a st ~off ~dim y] performs [y ← a·row + y] in place. *)

val add_row : float array -> off:int -> dim:int -> t -> unit
(** [add_row st ~off ~dim acc] performs [acc ← acc + row] in place
    (accumulating as [acc.(i) +. row.(i)], matching {!mean}'s order). *)
