(** An empirical DP distinguisher in the StatDP / DP-Sniper style.

    Given a mechanism closure, a neighbouring-dataset pair presented as two
    sampling closures, and a family of output events, run the mechanism
    many times on each side, estimate the probability of every event on
    both, and compare the ratio against the claimed [(ε, δ)].

    No finite test can prove privacy; this one can {e refute} a
    calibration with statistical confidence.  To keep the false-alarm rate
    controlled, a violation is declared for an event only when the exact
    Clopper–Pearson {e lower} bound on one side exceeds
    [e^ε·(1+slack) · upper bound on the other side + δ] — i.e. even the
    most favourable reading of both intervals breaks the DP inequality
    with room to spare.  With [alpha = 0.05] and [slack = 0.1] a correctly
    calibrated mechanism sits at ratio ≤ e^ε, so a false alarm needs both
    one-sided 97.5% bounds to be simultaneously wrong {e and} to clear the
    10% slack: in practice well under [alpha] per event.

    The reported [eps_lb] is the certified empirical privacy loss — the
    largest [ln((lo − δ)/hi)] over all events and both directions — a
    lower confidence bound on the true ε of the mechanism.  For a healthy
    mechanism it sits below the claimed ε (typically slightly, since the
    worst event approaches the bound). *)

type estimate = {
  event : string;
  p_hat : float;  (** Empirical probability on the left side. *)
  q_hat : float;  (** Empirical probability on the right side. *)
  p_ci : Stats.interval;
  q_ci : Stats.interval;
  eps_lb : float;
      (** Certified loss this event witnesses (max of the two directions);
          [neg_infinity] when the intervals certify nothing. *)
  violation : bool;
}

type verdict = {
  claimed : Prim.Dp.params;
  slack : float;
  alpha : float;
  trials : int;  (** Per side. *)
  estimates : estimate list;
  eps_lb : float;  (** Max over events. *)
  violation : bool;  (** Any event in violation. *)
}

val count :
  Prim.Rng.t -> trials:int -> events:('o -> bool) array -> (Prim.Rng.t -> 'o) -> int array
(** Run the mechanism [trials] times on the given stream and count how
    often each event holds.  Exposed so callers (the suite's
    {!Engine.Pool} fan-out, the deep test tier) can shard trials over
    independent derived streams and merge counts. *)

val verdict :
  claimed:Prim.Dp.params ->
  ?slack:float ->
  ?alpha:float ->
  events:string list ->
  left:int * int array ->
  right:int * int array ->
  unit ->
  verdict
(** [verdict ~claimed ~events ~left:(n_left, counts_left)
    ~right:(n_right, counts_right) ()] — the pure estimation step on
    already-merged counts.  [slack] defaults to [0.1], [alpha] to
    [0.05]. *)

val run :
  Prim.Rng.t ->
  claimed:Prim.Dp.params ->
  ?slack:float ->
  ?alpha:float ->
  trials:int ->
  events:(string * ('o -> bool)) list ->
  left:(Prim.Rng.t -> 'o) ->
  right:(Prim.Rng.t -> 'o) ->
  unit ->
  verdict
(** Single-threaded convenience: [count] both sides on independent derived
    streams, then [verdict]. *)

val thresholds : lo:float -> hi:float -> count:int -> (string * (float -> bool)) list
(** The event family [{x ≥ c}] for [count] cut points evenly spaced on
    [\[lo, hi\]] — the workhorse family for real-valued outputs (every
    one-sided tail event of a monotone likelihood-ratio family). *)

val categories : k:int -> (string * (int -> bool)) list
(** Singleton events [{o = i}] for integer outputs in [\[0, k)], plus a
    final ["other"] event catching everything outside the range. *)

val pp_verdict : Format.formatter -> verdict -> unit
