type result = { centers : Vec.t array; inertia : float; iterations : int }

let assign centers p =
  let best = ref 0 and best_d = ref infinity in
  Array.iteri
    (fun i c ->
      let d = Vec.dist_sq p c in
      if d < !best_d then begin
        best_d := d;
        best := i
      end)
    centers;
  !best

let inertia ~centers points =
  Array.fold_left
    (fun acc p -> acc +. Vec.dist_sq p centers.(assign centers p))
    0. points

(* Lexicographic order on coordinate vectors. *)
let compare_vec a b =
  let rec go i =
    if i = Array.length a then 0
    else
      let c = Float.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let canonical_order centers =
  let sorted = Array.copy centers in
  Array.sort compare_vec sorted;
  sorted

(* k-means++ over flat row-major storage: each next seed drawn
   proportionally to its squared distance from the chosen set.  Returns the
   k seeds as a flat k×d matrix.  The RNG draw sequence and every float
   operation mirror the historical boxed implementation exactly. *)
let seed_plus_plus_rows rng ~k st n d =
  let cst = Array.make (k * d) 0. in
  let blit_row i j = Array.blit st (i * d) cst (j * d) d in
  blit_row (Prim.Rng.int rng n) 0;
  let dist2 = Array.make n infinity in
  Kernel.min_dist2_update ~st ~n ~dim:d ~centers:cst ~coff:0 ~dist2;
  for j = 1 to k - 1 do
    let total = Array.fold_left ( +. ) 0. dist2 in
    let next =
      if total <= 0. then Prim.Rng.int rng n
      else begin
        let x = Prim.Rng.float rng total in
        let acc = ref 0. and chosen = ref (n - 1) in
        (try
           Array.iteri
             (fun i d ->
               acc := !acc +. d;
               if x < !acc then begin
                 chosen := i;
                 raise Exit
               end)
             dist2
         with Exit -> ());
        !chosen
      end
    in
    blit_row next j;
    (* min-update: distances are never NaN or -0, so "replace when strictly
       smaller" is bit-identical to the historical [Float.min] fold. *)
    Kernel.min_dist2_update ~st ~n ~dim:d ~centers:cst ~coff:(j * d) ~dist2
  done;
  cst

let assign_rows cst k st p_off d =
  Kernel.argmin_center ~st ~off:p_off ~centers:cst ~k ~dim:d

let lloyd rng ~k ?(max_iterations = 64) ?(tolerance = 1e-9) points =
  let n = Array.length points in
  if k < 1 then invalid_arg "Kmeans.lloyd: k must be >= 1";
  if n < k then invalid_arg "Kmeans.lloyd: fewer points than centers";
  let d = Vec.dim points.(0) in
  let st = Array.make (n * d) 0. in
  Array.iteri
    (fun i p ->
      if Vec.dim p <> d then invalid_arg "Kmeans.lloyd: mixed dimensions";
      Vec.set_row st ~off:(i * d) p)
    points;
  let cst = ref (seed_plus_plus_rows rng ~k st n d) in
  let iterations = ref 0 in
  let moved = ref infinity in
  while !iterations < max_iterations && !moved > tolerance do
    incr iterations;
    let sums = Array.make (k * d) 0. in
    let counts = Array.make k 0 in
    for i = 0 to n - 1 do
      let j = assign_rows !cst k st (i * d) d in
      let sb = j * d and pb = i * d in
      for l = 0 to d - 1 do
        sums.(sb + l) <- (1.0 *. st.(pb + l)) +. sums.(sb + l)
      done;
      counts.(j) <- counts.(j) + 1
    done;
    let next = Array.make (k * d) 0. in
    for j = 0 to k - 1 do
      if counts.(j) = 0 then
        (* Empty cluster: re-seed on a random point. *)
        Array.blit st (Prim.Rng.int rng n * d) next (j * d) d
      else begin
        let inv = 1. /. float_of_int counts.(j) in
        for l = 0 to d - 1 do
          next.((j * d) + l) <- inv *. sums.((j * d) + l)
        done
      end
    done;
    let m = ref 0. in
    for j = 0 to k - 1 do
      m := Float.max !m (Vec.dist_rows !cst (j * d) next (j * d) ~dim:d)
    done;
    moved := !m;
    cst := next
  done;
  let centers =
    canonical_order (Array.init k (fun j -> Vec.of_row !cst ~off:(j * d) ~dim:d))
  in
  { centers; inertia = inertia ~centers points; iterations = !iterations }

let flatten centers = Array.concat (Array.to_list centers)

let unflatten ~d v =
  let len = Array.length v in
  if d < 1 || len mod d <> 0 then invalid_arg "Kmeans.unflatten: length not a multiple of d";
  Array.init (len / d) (fun i -> Array.sub v (i * d) d)
