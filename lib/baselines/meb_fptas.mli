(** Coreset-based private minimum enclosing ball, in the style of
    Mahpud–Sheffet 2022 ("A Differentially Private Linear-Time fPTAS for
    the Minimum Enclosing Ball Problem", arXiv:2206.03319).

    Three stages under basic composition, each a standard mechanism:

    + {b Coreset average} — sample [m] rows with replacement, release
      their NoisyAVG ({!Prim.Noisy_avg}).  By secrecy of the subsample
      ({!Prim.Subsample}) the stage's charge against the full database is
      the amplified [(6·ε₀·m/n, δ̃)], budgeted at [(ε/4, δ)]; the sample
      plays the coreset's role — stage cost is [O(m·d)], independent of
      [n].
    + {b Center refinement} — a private coordinate descent toward the
      mass: a few rounds of the exponential mechanism over the [2d + 1]
      candidates [{ĉ} ∪ {ĉ ± step·e_a}] with quality the capped in-ball
      count (sensitivity 1), the step halving every round ([ε/4] total).
      This is the fPTAS knob: more rounds, finer final step.
    + {b Radius release} — noisy binary search
      ({!Recconcave.Monotone_search}) for the smallest grid radius whose
      in-ball count around the refined center reaches [t] ([ε/2]).

    Totals [(ε, δ)]-DP; {!budget_breakdown} makes the ledger explicit and
    a test pins the sum.  The non-private coreset fact the QCheck suite
    certifies separately: the Bădoiu–Clarkson ball of a uniform sample is
    within the (1+α) factor of the full-data ball
    ({!Geometry.Seb.min_enclosing_ball}). *)

type result = {
  center : Geometry.Vec.t;
  radius : float;
  coreset_size : int;  (** Rows actually sampled (capped at [n]). *)
  refinement_rounds : int;
}

type failure =
  | Center_bottom
      (** NoisyAVG returned ⊥ (its noisy count lower bound was
          non-positive) — only likely when [n] is tiny relative to ε. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_result : Format.formatter -> result -> unit

val default_coreset : int
(** 400 — past this the sample average is far tighter than the privacy
    noise floor, so larger coresets only cost time. *)

val default_rounds : int
(** 6 refinement rounds: final step = diameter/2⁷. *)

val run :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  ?coreset:int ->
  ?rounds:int ->
  t:int ->
  Geometry.Pointset.t ->
  (result, failure) Stdlib.result
(** [(ε, δ)]-DP (central model).  @raise Invalid_argument if [t ≤ 0] or
    the pointset dimension disagrees with the grid. *)

val budget_breakdown :
  eps:float -> delta:float -> n:int -> coreset:int -> (string * Prim.Dp.params) list
(** The per-stage privacy ledger of one run: the amplified coreset charge
    actually incurred, the refinement total, and the radius search.  The
    basic-composition sum is at most [(ε, δ)]; pinned by a test. *)
