(** The Johnson–Lindenstrauss transform (Lemma 4.10).

    [f(x) = (1/√k)·A·x] with [A] a k×d matrix of iid N(0, 1) entries.  For a
    set of [n] points and distortion [η], taking
    [k ≥ (8/η²)·ln(2n²/β)] preserves all pairwise squared distances within a
    [1 ± η] factor with probability ≥ 1 − β.  GoodCenter projects to
    [k = O(log n)] dimensions before hunting for a heavy box, which is what
    replaces the [poly(d)] loss of the "second attempt" by [√log n]. *)

type t

val make : Prim.Rng.t -> input_dim:int -> output_dim:int -> t

val input_dim : t -> int
val output_dim : t -> int

val apply : t -> Vec.t -> Vec.t
val apply_all : t -> Vec.t array -> Vec.t array

val project : t -> Pointset.t -> Pointset.t
(** Projects a whole pointset as one flat mat-mul into fresh contiguous
    storage (row [i] of the result is [apply t] of point [i], bit for
    bit, but without boxing any intermediate vector). *)

val target_dim : n:int -> eta:float -> beta:float -> int
(** The smallest [k] the lemma licenses: [⌈(8/η²)·ln(2n²/β)⌉]. *)

val paper_dim : n:int -> beta:float -> int
(** GoodCenter's choice [k = ⌈46·ln(2n/β)⌉] (Algorithm 2 step 1), which
    instantiates the lemma at [η = 1/2]. *)
