(** The finite domain X^d of Definition 1.2.

    Following Remark 3.3 we identify X^d with the real d-dimensional unit
    cube quantized with grid step [1/(|X|−1)]; [axis_size] is [|X|].  The
    lower bound of Section 5 shows finiteness is necessary, so the domain is
    an explicit value threaded through the solvers, and the candidate radius
    set of Algorithm 1 — [{0, 1/(2|X|), 2/(2|X|), …, ⌈√d⌉}] — is derived
    from it here. *)

type t

val create : axis_size:int -> dim:int -> t
(** @raise Invalid_argument unless [axis_size >= 2] and [dim >= 1]. *)

val axis_size : t -> int
val dim : t -> int
val step : t -> float
(** [1/(|X|−1)]. *)

val diameter : t -> float
(** [√d], the diameter of the unit cube. *)

val log_star_term : t -> float
(** [log*(2·|X|·√d)] — the iterated logarithm controlling the Γ promise of
    Algorithm 1 (see {!Recconcave.Rec_concave.log_star}). *)

val snap : t -> Vec.t -> Vec.t
(** Nearest grid point (each coordinate clamped to [0, 1] and rounded to a
    multiple of the step). *)

val snap_row : t -> float array -> off:int -> Vec.t
(** {!snap} of the [dim]-length row starting at element [off] of a flat
    store (the only allocation is the returned grid point). *)

val mem : t -> Vec.t -> bool
(** Is the point exactly on the grid (within 1e-9 of a grid coordinate)? *)

val random_point : t -> Prim.Rng.t -> Vec.t
(** Uniform grid point. *)

(** {1 Candidate radii for GoodRadius} *)

val radius_candidates : t -> int
(** Size of the candidate set [{0, 1/(2|X|), 2/(2|X|), …, ⌈√d⌉}]; candidates
    are indexed [0 … radius_candidates − 1]. *)

val radius_of_index : t -> int -> float
(** [radius_of_index g i = i / (2|X|)], with the last index clamped to
    [⌈√d⌉]. *)

val index_of_radius : t -> float -> int
(** Smallest candidate index whose radius is ≥ the argument. *)

(** {1 Geometric candidate radii}

    A coarser candidate set [{0, r_min, r_min·√2, r_min·2, …, ≥ √d}] with
    [r_min = step/2]: only [O(log(|X|·√d))] candidates, at the price of a
    [√2] factor in the radius approximation (consecutive candidates differ
    by [√2], and [r_i / 2 = r_{i−2}] exactly, which is what GoodRadius's
    quality function needs).  Used by the [practical] profile. *)

val geometric_candidates : t -> int
val geometric_radius_of_index : t -> int -> float
val geometric_index_of_radius : t -> float -> int
(** Smallest geometric candidate index whose radius is ≥ the argument. *)
