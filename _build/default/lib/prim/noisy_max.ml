let argmax_value rng ~eps ~sensitivity scores =
  if Array.length scores = 0 then invalid_arg "Noisy_max.argmax: empty score set";
  let scale = 2. *. sensitivity /. eps in
  let best = ref 0 and best_v = ref neg_infinity in
  Array.iteri
    (fun i s ->
      let v = s +. Rng.laplace rng ~scale () in
      if v > !best_v then begin
        best_v := v;
        best := i
      end)
    scores;
  (!best, !best_v)

let argmax rng ~eps ~sensitivity scores = fst (argmax_value rng ~eps ~sensitivity scores)
