(* [noise_raw] is the uninstrumented core; the public entry points wrap it
   in one charged span each so a traced vector release records a single
   span (the per-coordinate draws share the one ε budget), and [scalar]
   does not double-record through [noise]. *)
let noise_raw rng ~eps ~sensitivity =
  if not (eps > 0.) then invalid_arg "Laplace.noise: eps must be positive";
  if not (sensitivity > 0.) then invalid_arg "Laplace.noise: sensitivity must be positive";
  Rng.laplace rng ~scale:(sensitivity /. eps) ()

let attrs ~sensitivity () = [ ("sensitivity", Obs.Span.F sensitivity) ]

let noise rng ~eps ~sensitivity =
  Obs.Span.with_charged ~attrs:(attrs ~sensitivity) ~eps ~delta:0. "laplace" (fun () ->
      noise_raw rng ~eps ~sensitivity)

let scalar rng ~eps ~sensitivity x =
  Obs.Span.with_charged ~attrs:(attrs ~sensitivity) ~eps ~delta:0. "laplace" (fun () ->
      x +. noise_raw rng ~eps ~sensitivity)

let count rng ~eps n = scalar rng ~eps ~sensitivity:1.0 (float_of_int n)

let vector rng ~eps ~l1_sensitivity v =
  Obs.Span.with_charged
    ~attrs:(fun () -> [ ("sensitivity", Obs.Span.F l1_sensitivity); ("dim", Obs.Span.I (Array.length v)) ])
    ~eps ~delta:0. "laplace_vector"
    (fun () -> Array.map (fun x -> x +. noise_raw rng ~eps ~sensitivity:l1_sensitivity) v)

let tail_bound ~eps ~sensitivity ~beta =
  if not (beta > 0. && beta <= 1.) then invalid_arg "Laplace.tail_bound: beta in (0, 1]";
  sensitivity /. eps *. log (1. /. beta)

let cdf ~eps ~sensitivity ?(mu = 0.) x =
  if not (eps > 0.) then invalid_arg "Laplace.cdf: eps must be positive";
  if not (sensitivity > 0.) then invalid_arg "Laplace.cdf: sensitivity must be positive";
  let scale = sensitivity /. eps in
  let z = (x -. mu) /. scale in
  if z < 0. then 0.5 *. exp z else 1. -. (0.5 *. exp (-.z))
