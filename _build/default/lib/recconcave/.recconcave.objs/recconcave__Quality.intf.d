lib/recconcave/quality.mli:
