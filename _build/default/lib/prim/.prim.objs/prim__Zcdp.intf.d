lib/prim/zcdp.mli: Dp
