lib/recconcave/scale_quality.mli: Quality
