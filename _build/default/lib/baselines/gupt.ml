type result = { estimate : Geometry.Vec.t; blocks : int; block_size : int }

let run rng ~grid ~eps ~delta ~m ~f data =
  if m < 1 then invalid_arg "Gupt.run: m must be >= 1";
  let n = Array.length data in
  let k = n / m in
  if k < 2 then invalid_arg "Gupt.run: need at least two blocks";
  let clamp v = Array.map (fun x -> Float.max 0. (Float.min 1. x)) v in
  let outputs =
    Array.init k (fun b -> clamp (Geometry.Grid.snap grid (f (Array.sub data (b * m) m))))
  in
  let sensitivity = Geometry.Grid.diameter grid /. float_of_int k in
  let estimate =
    Prim.Gaussian_mech.vector rng ~eps ~delta ~l2_sensitivity:sensitivity
      (Geometry.Vec.mean outputs)
  in
  { estimate; blocks = k; block_size = m }
