lib/prim/composition.ml: Dp Float List
