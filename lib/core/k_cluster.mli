(** Observation 3.5 — a k-clustering heuristic by iterating the 1-cluster
    solver.

    Run the 1-cluster algorithm up to [k] times; after each found ball,
    remove the points it covers (removal is post-processing of the private
    output, so each iteration touches a database derived from the previous
    private answers) and continue on the remainder.  Privacy composes
    basically: each iteration is charged [(ε/k, δ/k)], for [(ε, δ)] total.
    The paper notes this supports roughly [k ≲ (εn)^{2/3}/d^{1/3}]. *)

type ball = {
  center : Geometry.Vec.t;
  radius : float;  (** The end-to-end private radius. *)
  core_radius : float;
      (** [3 × z] with [z] the radius-stage output — the tight private ball
          used to remove covered points between iterations (removing by the
          conservative [radius] would swallow neighbouring clusters). *)
}

type result = {
  balls : ball list;  (** Found balls, in discovery order. *)
  uncovered : int;  (** Points left uncovered (diagnostic, non-private). *)
  failures : int;  (** Iterations whose 1-cluster call failed. *)
}

val run :
  Prim.Rng.t ->
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  k:int ->
  t_fraction:float ->
  Geometry.Vec.t array ->
  result
(** [run … ~k ~t_fraction points] — each iteration targets
    [t = t_fraction · remaining] points (the Observation's [t = n/k]
    corresponds to [t_fraction = 1/k] on the first call); iterations stop
    early once fewer than [max(8, t)] points remain. *)

val run_ps :
  Prim.Rng.t ->
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  k:int ->
  t_fraction:float ->
  Geometry.Pointset.t ->
  result
(** Like {!run} over an existing pointset; the between-iteration peeling
    produces zero-copy index views instead of repacked arrays. *)

val coverage : ball list -> Geometry.Vec.t array -> int
(** Points covered by at least one ball (non-private diagnostic). *)

val max_recommended_k : eps:float -> n:int -> d:int -> int
(** Observation 3.5's feasibility envelope [k ≲ (εn)^{2/3} / d^{1/3}]
    (each iteration needs [t = n/k ≳ √d·k/ε] to stay in regime). *)
