(** Admission control for the daemon's executor: a bounded submission
    queue with load-shedding, per-tenant in-flight caps, and graceful
    drain.

    All tenant state (services, ledgers, the WAL) is touched only by the
    single executor thread running {!run}; connection threads hand work
    over through {!submit} and block on their own reply mailboxes.  The
    shed decision is made {e at submit time}, before the work item ever
    reaches the executor — a shed request cannot have charged the budget
    because it never reached the code that charges.

    Checks, in order (first failure wins): [Draining] (drain has begun),
    [Tenant_cap] (the tenant's queued+running count is at its cap),
    [Queue_full] (the global queue is at capacity).  Control operations
    ([~control:true] — register, ledger, datasets, metrics) bypass all
    three so an operator can still inspect a draining or saturated
    daemon; they execute on the same executor thread, so they serialize
    with runs and need no extra locking. *)

type t

val create : capacity:int -> t
(** [capacity] bounds the number of queued non-control items (clamped to
    ≥ 1). *)

type counter
(** A per-tenant in-flight count: items accepted but not yet finished. *)

val counter : unit -> counter
val in_flight : counter -> int

val submit :
  t ->
  ?control:bool ->
  ?slot:counter * int ->
  (unit -> unit) ->
  (unit, Wire.shed_reason) result
(** Enqueue a work item.  [slot = (c, cap)] sheds with [Tenant_cap] when
    [in_flight c >= cap], increments [c] on acceptance and decrements it
    after the item runs (or is abandoned at shutdown).  The shed check
    and the enqueue are one atomic step under the queue lock. *)

val length : t -> int
(** Queued non-control items (for the metrics endpoint). *)

val draining : t -> bool

val run : t -> unit
(** The executor loop: runs items in submission order until {!drain}
    completes.  Exceptions escaping an item are swallowed (the item's
    mailbox protocol is responsible for reporting errors). *)

val drain : t -> unit
(** Begin graceful drain: new non-control submissions shed with
    [Draining]; blocks until every accepted item has run; then stops the
    executor ({!run} returns).  Idempotent. *)
