(* Epoch-versioned datasets.

   A dataset owns an append-only arena (one flat row-major [float array]);
   every epoch is an immutable view over it: a [Pointset.view] selecting
   the live rows plus the index built on them.  [append] writes new rows
   past the high-water mark (invisible to live views) and publishes a new
   epoch; [retire] drops a contiguous range of point indices.  Old epochs
   keep working through structural sharing — their views and trees hold a
   reference to whatever array backed them.

   Index maintenance is incremental on the k-d-tree backend: appended rows
   are routed into existing leaves ([Kdtree.insert_bulk]) and retired rows
   masked out ([Kdtree.remove_bulk]); once accumulated drift exceeds half
   the size the tree was last built at, the next mutation rebuilds from
   scratch.  Count-based queries — the only kind the pipeline issues — are
   bit-identical either way.  The dense backend is recomputed per epoch
   (it is only chosen for small n, where the O(n²) rebuild is the same
   cost a fresh registration would pay).

   The r_opt-bounds cache lives inside the epoch state, so a mutation
   invalidates it wholesale: a new epoch starts with an empty table. *)

type epoch_state = {
  epoch : int;
  pointset : Geometry.Pointset.t;
  index : Geometry.Pointset.index;
  bounds : (int, float * float) Hashtbl.t;
  tree_base : int;  (** size at the last full (re)build of a tree index *)
  drift : int;  (** rows inserted/removed incrementally since then *)
}

type mutation =
  | Appended of { epoch : int; dim : int; points : float array }
  | Retired of { epoch : int; from_ : int; count : int }

type dataset = {
  name : string;
  grid : Geometry.Grid.t;
  accountant : Accountant.t;
  dense_threshold : int option;
  index_domains : int option;
  mutable arena : float array;
  mutable used : int;  (** elements of [arena] below the high-water mark *)
  mutable current : epoch_state;
  mu : Mutex.t;  (** serializes mutations and guards the bounds table *)
  mutable bounds_lookups : int;
  mutable bounds_hits : int;
  mutable mutation_listeners : (mutation -> unit) list;
}

type t = { mutable datasets : dataset list (* reverse registration order *) }

let create () = { datasets = [] }

let find t name = List.find_opt (fun d -> d.name = name) t.datasets
let names t = List.rev_map (fun d -> d.name) t.datasets

let fresh_epoch ~epoch ps index =
  {
    epoch;
    pointset = ps;
    index;
    bounds = Hashtbl.create 8;
    tree_base = Geometry.Pointset.n ps;
    drift = 0;
  }

let register t ~name ~grid ?mode ~budget ?dense_threshold ?index_domains points =
  if find t name <> None then
    invalid_arg (Printf.sprintf "Registry.register: duplicate dataset %S" name);
  let pointset = Geometry.Pointset.create points in
  let index = Geometry.Pointset.auto_index ?dense_threshold ?domains:index_domains pointset in
  let dataset =
    {
      name;
      grid;
      accountant = Accountant.create ?mode ~budget ();
      dense_threshold;
      index_domains;
      arena = Geometry.Pointset.storage pointset;
      used = Geometry.Pointset.n pointset * Geometry.Pointset.dim pointset;
      current = fresh_epoch ~epoch:0 pointset index;
      mu = Mutex.create ();
      bounds_lookups = 0;
      bounds_hits = 0;
      mutation_listeners = [];
    }
  in
  t.datasets <- dataset :: t.datasets;
  dataset

let name d = d.name
let grid d = d.grid
let pointset d = d.current.pointset
let index d = d.current.index
let accountant d = d.accountant
let epoch d = d.current.epoch
let n d = Geometry.Pointset.n d.current.pointset
let dim d = Geometry.Pointset.dim d.current.pointset

let subscribe_mutations d f = d.mutation_listeners <- f :: d.mutation_listeners

let notify d mutation = List.iter (fun f -> f mutation) (List.rev d.mutation_listeners)

let reindex d ps =
  Geometry.Pointset.auto_index ?dense_threshold:d.dense_threshold ?domains:d.index_domains ps

let rebuild_threshold base = max 64 (base / 2)

(* Grow the arena so [extra] more elements fit past the high-water mark.
   Live epochs keep referencing the array that backed them; only the new
   epoch reads through the grown copy. *)
let ensure_capacity d ~extra =
  let needed = d.used + extra in
  let len = Array.length d.arena in
  if needed > len then begin
    let cap = max needed (2 * len) in
    let arena = Array.make cap 0. in
    Array.blit d.arena 0 arena 0 d.used;
    d.arena <- arena
  end

let append d points =
  let k = Array.length points in
  if k = 0 then invalid_arg "Registry.append: empty";
  let ps_dim = dim d in
  Array.iter
    (fun p ->
      if Geometry.Vec.dim p <> ps_dim then invalid_arg "Registry.append: dimension mismatch")
    points;
  Mutex.lock d.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock d.mu)
    (fun () ->
      let cur = d.current in
      ensure_capacity d ~extra:(k * ps_dim);
      let new_offs = Array.init k (fun i -> d.used + (i * ps_dim)) in
      Array.iteri (fun i p -> Geometry.Vec.set_row d.arena ~off:new_offs.(i) p) points;
      let flat = Array.sub d.arena d.used (k * ps_dim) in
      d.used <- d.used + (k * ps_dim);
      let offs' = Array.append (Geometry.Pointset.row_offsets cur.pointset) new_offs in
      let ps' = Geometry.Pointset.view ~storage:d.arena ~offs:offs' ~dim:ps_dim in
      let epoch' = cur.epoch + 1 in
      let state =
        match Geometry.Pointset.index_tree cur.index with
        | None -> fresh_epoch ~epoch:epoch' ps' (reindex d ps')
        | Some tree ->
            let drift = cur.drift + k in
            if drift > rebuild_threshold cur.tree_base then
              fresh_epoch ~epoch:epoch' ps' (reindex d ps')
            else begin
              let tree =
                Geometry.Kdtree.insert_bulk
                  (Geometry.Kdtree.with_storage tree ~storage:d.arena)
                  ~offs:new_offs
              in
              {
                epoch = epoch';
                pointset = ps';
                index = Geometry.Pointset.index_of_tree ps' tree;
                bounds = Hashtbl.create 8;
                tree_base = cur.tree_base;
                drift;
              }
            end
      in
      d.current <- state;
      notify d (Appended { epoch = epoch'; dim = ps_dim; points = flat });
      epoch')

let retire d ~from_ ~count =
  Mutex.lock d.mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock d.mu)
    (fun () ->
      let cur = d.current in
      let total = Geometry.Pointset.n cur.pointset in
      if from_ < 0 || count < 1 || from_ + count > total then
        invalid_arg "Registry.retire: range out of bounds";
      if count >= total then invalid_arg "Registry.retire: cannot retire every point";
      let offs = Geometry.Pointset.row_offsets cur.pointset in
      let offs' = Array.make (total - count) 0 in
      Array.blit offs 0 offs' 0 from_;
      Array.blit offs (from_ + count) offs' from_ (total - from_ - count);
      let ps' =
        Geometry.Pointset.view ~storage:d.arena ~offs:offs'
          ~dim:(Geometry.Pointset.dim cur.pointset)
      in
      let epoch' = cur.epoch + 1 in
      let state =
        match Geometry.Pointset.index_tree cur.index with
        | None -> fresh_epoch ~epoch:epoch' ps' (reindex d ps')
        | Some tree ->
            let drift = cur.drift + count in
            if drift > rebuild_threshold cur.tree_base then
              fresh_epoch ~epoch:epoch' ps' (reindex d ps')
            else begin
              let dead = Hashtbl.create count in
              for i = from_ to from_ + count - 1 do
                Hashtbl.replace dead offs.(i) ()
              done;
              let tree =
                Geometry.Kdtree.remove_bulk
                  (Geometry.Kdtree.with_storage tree ~storage:d.arena)
                  ~dead:(Hashtbl.mem dead)
              in
              {
                epoch = epoch';
                pointset = ps';
                index = Geometry.Pointset.index_of_tree ps' tree;
                bounds = Hashtbl.create 8;
                tree_base = cur.tree_base;
                drift;
              }
            end
      in
      d.current <- state;
      notify d (Retired { epoch = epoch'; from_; count });
      epoch')

let r_opt_bounds d ~t =
  Mutex.lock d.mu;
  let cur = d.current in
  d.bounds_lookups <- d.bounds_lookups + 1;
  match Hashtbl.find_opt cur.bounds t with
  | Some b ->
      d.bounds_hits <- d.bounds_hits + 1;
      Mutex.unlock d.mu;
      b
  | None ->
      (* Computed under the lock: concurrent first requests for the same [t]
         would otherwise both pay the O(n) scan, and the dense index's
         kth-neighbor lookup is cheap relative to lock hold-time concerns. *)
      Fun.protect
        ~finally:(fun () -> Mutex.unlock d.mu)
        (fun () ->
          let b = Workload.Metrics.r_opt_bounds_indexed cur.index ~t in
          Hashtbl.replace cur.bounds t b;
          b)

let bounds_cache_stats d =
  Mutex.lock d.mu;
  let s = (d.bounds_lookups, d.bounds_hits) in
  Mutex.unlock d.mu;
  s

let to_json d =
  let lookups, hits = bounds_cache_stats d in
  Json.Obj
    [
      ("name", Json.String d.name);
      ("epoch", Json.Int (epoch d));
      ("n", Json.Int (n d));
      ("dim", Json.Int (dim d));
      ("axis_size", Json.Int (Geometry.Grid.axis_size d.grid));
      ( "index_backend",
        Json.String (if Geometry.Pointset.index_is_dense (index d) then "dense" else "kdtree") );
      ("r_opt_bounds_cache", Json.Obj [ ("lookups", Json.Int lookups); ("hits", Json.Int hits) ]);
      ("accountant", Accountant.to_json d.accountant);
    ]
