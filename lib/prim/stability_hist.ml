type 'k cell = { key : 'k; count : int; noisy_count : float }

let release_threshold ~eps ~delta =
  if not (eps > 0.) then invalid_arg "Stability_hist: eps must be positive";
  if not (delta > 0. && delta < 1.) then invalid_arg "Stability_hist: delta must be in (0, 1)";
  1. +. (2. /. eps *. log (2. /. delta))

let count_by ~key data =
  let tbl = Hashtbl.create (max 16 (Array.length data)) in
  Array.iter
    (fun x ->
      let k = key x in
      match Hashtbl.find_opt tbl k with
      | Some c -> Hashtbl.replace tbl k (c + 1)
      | None -> Hashtbl.add tbl k 1)
    data;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl []

let noisy_cells rng ~eps cells =
  List.map
    (fun (key, count) ->
      let noisy_count = float_of_int count +. Rng.laplace rng ~scale:(2. /. eps) () in
      { key; count; noisy_count })
    cells

let select rng ~eps ~delta cells =
  Obs.Span.with_charged
    ~attrs:(fun () -> [ ("cells", Obs.Span.I (List.length cells)) ])
    ~eps ~delta "stability_hist"
    (fun () ->
      let threshold = release_threshold ~eps ~delta in
      let best =
        List.fold_left
          (fun acc c ->
            match acc with
            | Some b when b.noisy_count >= c.noisy_count -> acc
            | _ -> Some c)
          None
          (noisy_cells rng ~eps cells)
      in
      match best with Some c when c.noisy_count >= threshold -> Some c | _ -> None)

let select_by rng ~eps ~delta ~key data = select rng ~eps ~delta (count_by ~key data)

let heavy_cells rng ~eps ~delta cells =
  Obs.Span.with_charged
    ~attrs:(fun () -> [ ("cells", Obs.Span.I (List.length cells)) ])
    ~eps ~delta "stability_hist"
    (fun () ->
      let threshold = release_threshold ~eps ~delta in
      noisy_cells rng ~eps cells
      |> List.filter (fun c -> c.noisy_count >= threshold)
      |> List.sort (fun a b -> compare b.noisy_count a.noisy_count))

let utility_requirement ~eps ~delta ~n ~beta =
  2. /. eps *. log (4. *. float_of_int n /. (beta *. delta))

let utility_loss ~eps ~n ~beta = 4. /. eps *. log (2. *. float_of_int n /. beta)
