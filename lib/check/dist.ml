let laplace_cdf = Prim.Laplace.cdf

let gaussian_cdf ~sigma ?(mu = 0.) x = Stats.normal_cdf ~mu ~sigma x

let exp_mech_law ~eps ~sensitivity ~qualities =
  Prim.Exp_mech.probabilities ~eps ~sensitivity ~qualities

(* P(cell i released) = ∫_T^∞ f_b(x − c_i) · Π_{j≠i} F_b(x − c_j) dx where
   b = 2/ε, T the release threshold and F_b/f_b the Laplace CDF/density
   (ties have measure zero).  Simpson on a fixed fine grid over [T, c* + 40b]
   — the integrand decays like e^{−x/b}, so 40b of tail is ~1e-17. *)
let stability_hist_law ~eps ~delta cells =
  if cells = [] then invalid_arg "Dist.stability_hist_law: no cells";
  let b = 2. /. eps in
  let thr = Prim.Stability_hist.release_threshold ~eps ~delta in
  let counts = Array.of_list (List.map (fun (_, c) -> float_of_int c) cells) in
  let k = Array.length counts in
  let pdf z = exp (-.Float.abs z /. b) /. (2. *. b) in
  let cdf z = if z < 0. then 0.5 *. exp (z /. b) else 1. -. (0.5 *. exp (-.z /. b)) in
  let hi = Array.fold_left Float.max neg_infinity counts +. (40. *. b) in
  let steps = 8192 in
  let h = (hi -. thr) /. float_of_int steps in
  let integrand i x =
    let acc = ref (pdf (x -. counts.(i))) in
    for j = 0 to k - 1 do
      if j <> i then acc := !acc *. cdf (x -. counts.(j))
    done;
    !acc
  in
  let p_select i =
    if hi <= thr then 0.
    else begin
      let sum = ref (integrand i thr +. integrand i hi) in
      for s = 1 to steps - 1 do
        let x = thr +. (float_of_int s *. h) in
        let w = if s land 1 = 1 then 4. else 2. in
        sum := !sum +. (w *. integrand i x)
      done;
      !sum *. h /. 3.
    end
  in
  let probs = Array.init k p_select in
  let released = Array.fold_left ( +. ) 0. probs in
  Array.append probs [| Float.max 0. (1. -. released) |]

let local_randomizer_law = Privcluster.Local_cluster.law
