(** The daemon's tenant registry: who may connect, with what token, and
    how much concurrency each is allowed.

    A tenant owns an {!Engine.Service} of its own — its own dataset
    registry (names are namespaced per tenant by construction), its own
    telemetry, and, per dataset, its own {!Engine.Accountant} ledger.
    The registry is immutable after startup: connection threads
    authenticate against it without locking, and only the daemon's
    single executor thread ever touches a tenant's service or ledgers.

    Tenant specs come from the command line as
    [name:token[:max_in_flight]] (default cap 8). *)

type spec = { name : string; token : string; max_in_flight : int }

val spec_of_string : string -> (spec, string) result
(** Parse [name:token[:max_in_flight]]; names and tokens must be
    non-empty and colon-free, the cap positive. *)

type tenant

type t

val create :
  service:(unit -> Engine.Service.t) -> spec list -> (t, string) result
(** Build the registry, one fresh service per tenant ([service] is the
    daemon's factory, closing over domains/seed/retries).  [Error] on a
    duplicate tenant name. *)

val authenticate : t -> name:string -> token:string -> tenant option
(** Constant-time token comparison; [None] for unknown tenant or wrong
    token, deliberately indistinguishable. *)

val find : t -> string -> tenant option
val list : t -> tenant list

val name : tenant -> string
val max_in_flight : tenant -> int
val service : tenant -> Engine.Service.t

val slot : tenant -> Admission.counter
(** The tenant's in-flight counter ({!Admission.submit}'s [slot]). *)
