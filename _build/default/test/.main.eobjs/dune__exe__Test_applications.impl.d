test/test_applications.ml: Alcotest Array Float Geometry List Prim Printf Privcluster Recconcave Testutil Workload
