(** Non-private k-means (Lloyd's algorithm with k-means++ seeding).

    The paper's Section 1.1 recalls that [NRS07] obtained differentially
    private k-means by feeding an off-the-shelf k-means routine to the
    sample-and-aggregate framework; this module is that off-the-shelf
    routine, and {!Privcluster.Kmeans_sa} is the compilation.  It is also a
    convenient non-private reference for clustering experiments.

    Outputs are returned in {!canonical_order} so that independent runs on
    similar data produce {e comparable} center lists — the property
    sample-and-aggregate needs, since its stability definition (6.1)
    compares outputs as points of R^{k·d}. *)

type result = {
  centers : Vec.t array;  (** [k] centers, canonically ordered. *)
  inertia : float;  (** Sum of squared distances to the nearest center. *)
  iterations : int;  (** Lloyd iterations actually performed. *)
}

val lloyd :
  Prim.Rng.t -> k:int -> ?max_iterations:int -> ?tolerance:float -> Vec.t array -> result
(** k-means++ seeding followed by Lloyd iterations until the center
    movement drops below [tolerance] (default 1e-9) or [max_iterations]
    (default 64).  @raise Invalid_argument if there are fewer points than
    centers. *)

val assign : Vec.t array -> Vec.t -> int
(** Index of the nearest center. *)

val inertia : centers:Vec.t array -> Vec.t array -> float

val canonical_order : Vec.t array -> Vec.t array
(** Lexicographic order on coordinates — a permutation-invariant
    normal form for center lists. *)

val flatten : Vec.t array -> Vec.t
(** Concatenate [k] centers into one R^{k·d} point (the SA output space). *)

val unflatten : d:int -> Vec.t -> Vec.t array
(** Inverse of {!flatten}.  @raise Invalid_argument if the length is not a
    multiple of [d]. *)
