(** Registered datasets: the per-dataset state the engine amortizes across
    queries — now epoch-versioned.

    Registering a dataset builds its {!Geometry.Pointset.index} once (the
    O(n²) — or k-d-tree — construction that dominates a cold 1-cluster
    query) and attaches a budgeted {!Accountant}; every subsequent job
    against the dataset reuses both.

    {b Epochs.}  A dataset is no longer frozen at registration: {!append}
    and {!retire} each publish a new {e epoch} — an immutable snapshot
    (pointset view + index + r_opt-bounds cache) over the dataset's
    append-only arena.  Readers holding the previous epoch keep computing
    against it unchanged (structural sharing); new work sees the new
    epoch.  On the k-d-tree backend the index is maintained incrementally
    ({!Geometry.Kdtree.insert_bulk} / [remove_bulk]) with a full rebuild
    once accumulated drift exceeds half the last-built size; count-based
    query results are bit-identical to a fresh build either way.  The
    [(r_lo, r_hi)] sandwich of {!Workload.Metrics.r_opt_bounds_indexed}
    is cached per epoch, keyed by the target [t] — a mutation invalidates
    it wholesale.

    Worker domains read the current epoch's pointset and index
    concurrently; mutations are serialized by an internal mutex and
    publish the new epoch with a single field write. *)

type dataset

type t
(** A named collection of datasets (the engine's directory). *)

type mutation =
  | Appended of { epoch : int; dim : int; points : float array }
      (** The appended rows, flattened row-major ([epoch] is the new
          epoch the append produced). *)
  | Retired of { epoch : int; from_ : int; count : int }
      (** Point indices [from_ .. from_+count-1] of the {e previous}
          epoch were dropped. *)

val create : unit -> t

val register :
  t ->
  name:string ->
  grid:Geometry.Grid.t ->
  ?mode:Accountant.mode ->
  budget:Prim.Dp.params ->
  ?dense_threshold:int ->
  ?index_domains:int ->
  Geometry.Vec.t array ->
  dataset
(** Build the index ({!Geometry.Pointset.auto_index} with the given dense
    threshold) and the accountant, and file the dataset under [name] at
    epoch 0.  The points are packed once into flat storage, which becomes
    the dataset's arena; every job then reads that storage through
    zero-copy views.  [index_domains > 1] parallelizes the dense-index
    construction (the result is identical for any value).
    @raise Invalid_argument on a duplicate name, an empty point array, or
    points of mixed dimension. *)

val find : t -> string -> dataset option
val names : t -> string list
(** In registration order. *)

(** {1 Mutation} *)

val append : dataset -> Geometry.Vec.t array -> int
(** Append the points after the existing ones and publish a new epoch;
    returns the new epoch number.  The arena grows by doubling when full;
    live epochs keep referencing the array that backed them.
    @raise Invalid_argument on an empty array or a dimension mismatch. *)

val retire : dataset -> from_:int -> count:int -> int
(** Drop the contiguous point-index range [from_ .. from_+count-1] of the
    current epoch (indices as reported by queries against it) and publish
    a new epoch; returns the new epoch number.  Remaining points keep
    their relative order.  At least one point must survive.
    @raise Invalid_argument on an out-of-range slice or one that would
    empty the dataset. *)

val subscribe_mutations : dataset -> (mutation -> unit) -> unit
(** [f] runs synchronously after each mutation publishes its epoch, in
    subscription order — the server journals epoch transitions through
    this hook. *)

(** {1 Per-dataset accessors}

    [pointset] and [index] return the {e current} epoch's view; a caller
    that needs a coherent pair should read them once and keep the
    results (each epoch is immutable). *)

val name : dataset -> string
val grid : dataset -> Geometry.Grid.t
val pointset : dataset -> Geometry.Pointset.t
val index : dataset -> Geometry.Pointset.index
val accountant : dataset -> Accountant.t
val epoch : dataset -> int
val n : dataset -> int
val dim : dataset -> int

val r_opt_bounds : dataset -> t:int -> float * float
(** The cached [(r_lo, r_hi)] sandwich for target size [t] on the current
    epoch; computed on first request, then served from the epoch's cache.
    Safe to call from worker domains. *)

val bounds_cache_stats : dataset -> int * int
(** [(lookups, hits)] of the r_opt-bounds cache, accumulated across all
    epochs — the reuse the registry exists to provide, surfaced for
    telemetry and tests. *)

val to_json : dataset -> Json.t
(** Shape, epoch, index backend, budget state, cache stats. *)
