test/test_noisy_avg.ml: Alcotest Array Float Prim Printf Testutil
