type t = { axis_size : int; dim : int }

let create ~axis_size ~dim =
  if axis_size < 2 then invalid_arg "Grid.create: axis_size must be >= 2";
  if dim < 1 then invalid_arg "Grid.create: dim must be >= 1";
  { axis_size; dim }

let axis_size g = g.axis_size
let dim g = g.dim
let step g = 1. /. float_of_int (g.axis_size - 1)
let diameter g = sqrt (float_of_int g.dim)

let rec log_star x = if x <= 1. then 0. else 1. +. log_star (log x /. log 2.)

let log_star_term g = log_star (2. *. float_of_int g.axis_size *. diameter g)

let snap g v =
  if Vec.dim v <> g.dim then invalid_arg "Grid.snap: dimension mismatch";
  let h = step g in
  Array.map
    (fun x ->
      let x = Float.max 0. (Float.min 1. x) in
      Float.round (x /. h) *. h)
    v

let snap_row g st ~off =
  let h = step g in
  Array.init g.dim (fun i ->
      let x = st.(off + i) in
      let x = Float.max 0. (Float.min 1. x) in
      Float.round (x /. h) *. h)

let mem g v =
  Vec.dim v = g.dim
  &&
  let h = step g in
  Array.for_all
    (fun x ->
      x >= -1e-9
      && x <= 1. +. 1e-9
      && Float.abs (x -. (Float.round (x /. h) *. h)) <= 1e-9)
    v

let random_point g rng =
  let h = step g in
  Array.init g.dim (fun _ -> float_of_int (Prim.Rng.int rng g.axis_size) *. h)

let max_radius g = float_of_int (int_of_float (Float.ceil (diameter g)))

let radius_candidates g =
  let denom = 2. *. float_of_int g.axis_size in
  int_of_float (Float.ceil (max_radius g *. denom)) + 1

let radius_of_index g i =
  if i < 0 || i >= radius_candidates g then invalid_arg "Grid.radius_of_index: out of range";
  Float.min (float_of_int i /. (2. *. float_of_int g.axis_size)) (max_radius g)

let index_of_radius g r =
  if r <= 0. then 0
  else
    let i = int_of_float (Float.ceil (r *. 2. *. float_of_int g.axis_size)) in
    min i (radius_candidates g - 1)

let geom_ratio = sqrt 2.

let geom_min g = step g /. 2.

let geometric_candidates g =
  (* Smallest m with r_min·√2^(m−2) ≥ √d, plus the radius-0 candidate. *)
  let m = Float.ceil (log (diameter g /. geom_min g) /. log geom_ratio) in
  2 + max 0 (int_of_float m)

let geometric_radius_of_index g i =
  if i < 0 || i >= geometric_candidates g then
    invalid_arg "Grid.geometric_radius_of_index: out of range";
  if i = 0 then 0.
  else Float.min (geom_min g *. (geom_ratio ** float_of_int (i - 1))) (max_radius g)

let geometric_index_of_radius g r =
  if r <= 0. then 0
  else
    let i = 1 + int_of_float (Float.ceil (log (r /. geom_min g) /. log geom_ratio)) in
    max 1 (min i (geometric_candidates g - 1))
