examples/quickstart.ml: Format Geometry Prim Privcluster Workload
