(** Algorithm 2 — GoodCenter.

    Given the radius [r] produced by GoodRadius (with the promise that some
    ball of radius [r] contains at least [t] input points), privately locate
    a center [ŷ] such that a ball of radius [O(r·√log n)] around it contains
    ≳ [t] points (Lemma 3.7 / Lemma 4.12).

    Pipeline (step numbers are the paper's):
    - (1) project to [k = O(log n)] dimensions with the JL transform;
    - (2–6) repeatedly draw randomly shifted box partitions of R^k (side
      [O(r)]) and use AboveThreshold to detect a draw in which some box
      captures ≳ [t] projected points;
    - (7) privately pick that heavy box with the stability histogram; let
      [D] be the input points mapping into it;
    - (8–10) bound [D] deterministically: draw a random orthonormal basis of
      R^d, pick a heavy interval per axis (stability histogram under
      advanced composition), extend it, and intersect — yielding a ball [C]
      of {e data-independent} radius that w.h.p. contains all of [D];
    - (11) release the noisy average of [D ∩ C] with {!Prim.Noisy_avg}.

    Privacy: [(ε, δ)]-DP — ε/4 to AboveThreshold, (ε/4, δ/4) to the box
    choice, (ε/4, δ/4) to the per-axis choices under advanced composition
    (each axis gets [ε/(10√(d·ln(8/δ)))], [δ/(8d)]), and (ε/4, δ/4) to
    NoisyAVG (Lemma 4.11).

    Whenever the profile's projection dimension reaches [k ≥ d] the
    projection is replaced by the identity — projecting {e up} cannot help,
    and the JL lemma is vacuous there — and steps 8–10 are skipped: the
    chosen box itself already bounds [D] deterministically, so [C] is just
    its bounding ball.  With the [practical] profile (which caps [k] at
    [d]) this is the common path at low dimension; the genuine JL path runs
    when [d] exceeds the profile's [k].  See DESIGN.md. *)

type failure =
  | No_heavy_box  (** AboveThreshold never fired within the round budget. *)
  | Box_selection_failed  (** The stability histogram released nothing. *)
  | Averaging_bottom  (** NoisyAVG's noisy count was non-positive. *)

type success = {
  center : Geometry.Vec.t;  (** The released center [ŷ]. *)
  private_radius : float;
      (** Data-independent radius around [center] certified to capture the
          cluster w.h.p.: (diameter bound on [D]) + (Gaussian-noise tail). *)
  jl_dim : int;  (** The projection dimension [k]. *)
  identity_projection : bool;
  rounds_used : int;  (** AboveThreshold queries issued. *)
  axis_fallbacks : int;
      (** Axes on which the per-axis histogram released nothing and the
          data-independent fallback interval was used (0 on a clean run). *)
  capture_radius : float;  (** Radius of the bounding ball [C]. *)
  noisy_count : float;  (** NoisyAVG's [m̂] — its private count lower bound. *)
}

val pp_failure : Format.formatter -> failure -> unit
val pp_success : Format.formatter -> success -> unit

val run :
  Prim.Rng.t ->
  Profile.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  t:int ->
  radius:float ->
  Geometry.Vec.t array ->
  (success, failure) Stdlib.result
(** [run rng profile ~eps ~delta ~beta ~t ~radius points].  Packs the
    points and delegates to {!run_ps}.
    @raise Invalid_argument if [radius <= 0] (a zero radius means a heavy
    exact point exists; {!One_cluster} handles that case with a plain
    stability histogram instead). *)

val run_ps :
  Prim.Rng.t ->
  Profile.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  t:int ->
  radius:float ->
  Geometry.Pointset.t ->
  (success, failure) Stdlib.result
(** Flat-path entry point: the whole pipeline — JL projection, box
    occupancies, capture, NoisyAVG — runs over the pointset's contiguous
    rows without boxing any intermediate vector; [points]-based {!run} on
    the same data and RNG state returns bit-identical results.  The input
    may be a zero-copy view ({!Geometry.Pointset.subset}).
    @raise Invalid_argument additionally if the view is empty. *)
