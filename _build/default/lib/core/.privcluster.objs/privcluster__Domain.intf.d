lib/core/domain.mli: Geometry One_cluster Prim Profile Stdlib
