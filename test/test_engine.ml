(* The concurrent query engine: accountant arithmetic and refusals against
   the Prim composition modules, registry caching, pool determinism across
   domain counts, and deadline handling. *)

open Testutil

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- Rng.derive --------------------------------------------------------- *)

let test_derive_state_independent () =
  let a = Prim.Rng.create ~seed:7 () in
  let b = Prim.Rng.create ~seed:7 () in
  (* Consume from [b] only: derived streams must not care. *)
  for _ = 1 to 100 do
    ignore (Prim.Rng.float b 1.0)
  done;
  List.iter
    (fun s ->
      let xa = Prim.Rng.float (Prim.Rng.derive a ~stream:s) 1.0 in
      let xb = Prim.Rng.float (Prim.Rng.derive b ~stream:s) 1.0 in
      check_float (Printf.sprintf "stream %d independent of parent state" s) xa xb)
    [ 0; 1; 17; 4096 ];
  (* Distinct streams differ, same stream repeats. *)
  let x0 = Prim.Rng.float (Prim.Rng.derive a ~stream:0) 1.0 in
  let x0' = Prim.Rng.float (Prim.Rng.derive a ~stream:0) 1.0 in
  let x1 = Prim.Rng.float (Prim.Rng.derive a ~stream:1) 1.0 in
  check_float "same stream repeats" x0 x0';
  check_true "distinct streams differ" (x0 <> x1)

(* --- Accountant --------------------------------------------------------- *)

let p ~eps ~delta = { Prim.Dp.eps; delta }

let test_accountant_basic_arithmetic () =
  let acc = Engine.Accountant.create ~budget:(p ~eps:1.0 ~delta:1e-6) () in
  check_true "charge 1" (Result.is_ok (Engine.Accountant.charge acc (p ~eps:0.5 ~delta:1e-7)));
  check_true "charge 2" (Result.is_ok (Engine.Accountant.charge acc (p ~eps:0.25 ~delta:2e-7)));
  let expected =
    Prim.Composition.basic_list [ p ~eps:0.5 ~delta:1e-7; p ~eps:0.25 ~delta:2e-7 ]
  in
  let spent = Engine.Accountant.spent acc in
  check_float ~tol:1e-12 "spent eps = basic_list" expected.Prim.Dp.eps spent.Prim.Dp.eps;
  check_float ~tol:1e-18 "spent delta = basic_list" expected.Prim.Dp.delta spent.Prim.Dp.delta

let test_accountant_refusal_leaves_ledger_unchanged () =
  let acc = Engine.Accountant.create ~budget:(p ~eps:1.0 ~delta:1e-6) () in
  check_true "within budget" (Result.is_ok (Engine.Accountant.charge acc (p ~eps:0.9 ~delta:1e-7)));
  (match Engine.Accountant.charge acc (p ~eps:0.2 ~delta:1e-7) with
  | Ok () -> Alcotest.fail "over-budget charge accepted"
  | Error r ->
      check_float ~tol:1e-12 "refusal reports the composed total" 1.1
        r.Engine.Accountant.would_spend.Prim.Dp.eps);
  let spent = Engine.Accountant.spent acc in
  check_float ~tol:1e-12 "spent unchanged after refusal" 0.9 spent.Prim.Dp.eps;
  check_int "one refusal recorded" 1 (Engine.Accountant.refusals acc);
  check_int "one accepted entry" 1 (List.length (Engine.Accountant.entries acc));
  (* An exact fit must still be accepted (tolerance guards float dust). *)
  check_true "exact fill accepted"
    (Result.is_ok (Engine.Accountant.charge acc (p ~eps:0.1 ~delta:1e-7)))

let test_accountant_advanced_matches_composition () =
  let charge = p ~eps:0.01 ~delta:1e-8 in
  let slack = 1e-7 in
  let k = 100 in
  let adv = Prim.Composition.advanced charge ~k ~delta':slack in
  let basic = Prim.Composition.basic charge ~k in
  let budget = p ~eps:(Prim.Dp.eps basic +. 1.) ~delta:1e-4 in
  let acc = Engine.Accountant.create ~mode:(Engine.Accountant.Advanced { slack }) ~budget () in
  for i = 1 to k do
    check_true (Printf.sprintf "charge %d accepted" i)
      (Result.is_ok (Engine.Accountant.charge acc charge))
  done;
  let spent = Engine.Accountant.spent acc in
  let expected_eps = Float.min adv.Prim.Dp.eps basic.Prim.Dp.eps in
  check_float ~tol:1e-12 "advanced-mode spent eps" expected_eps spent.Prim.Dp.eps;
  (* At k=30, eps=0.1 the advanced bound is the better one — make sure the
     ledger actually switched to it rather than summing. *)
  check_true "advanced bound engaged" (spent.Prim.Dp.eps < Prim.Dp.eps basic -. 1e-9)

let test_accountant_zcdp_matches_ledger_arithmetic () =
  let slack = 1e-7 in
  let acc =
    Engine.Accountant.create ~mode:(Engine.Accountant.Zcdp { slack })
      ~budget:(p ~eps:4.0 ~delta:1e-4) ()
  in
  let charges = [ p ~eps:0.3 ~delta:1e-8; p ~eps:0.5 ~delta:0.; p ~eps:0.2 ~delta:2e-8 ] in
  List.iter (fun c -> check_true "zcdp charge" (Result.is_ok (Engine.Accountant.charge acc c))) charges;
  let rho =
    Prim.Zcdp.compose (List.map (fun c -> Prim.Zcdp.of_pure_dp ~eps:c.Prim.Dp.eps) charges)
  in
  let conv = Prim.Zcdp.to_dp rho ~delta:slack in
  let spent = Engine.Accountant.spent acc in
  check_float ~tol:1e-12 "zcdp spent eps" conv.Prim.Dp.eps spent.Prim.Dp.eps;
  check_float ~tol:1e-18 "zcdp spent delta = conversion slack + sum of deltas"
    (conv.Prim.Dp.delta +. 3e-8) spent.Prim.Dp.delta

(* --- Registry ----------------------------------------------------------- *)

let test_registry_caches_bounds () =
  let _, grid, w = small_workload () in
  let reg = Engine.Registry.create () in
  let ds =
    Engine.Registry.register reg ~name:"d1" ~grid ~budget:(p ~eps:10. ~delta:1e-4)
      w.Workload.Synth.points
  in
  let b1 = Engine.Registry.r_opt_bounds ds ~t:100 in
  let b2 = Engine.Registry.r_opt_bounds ds ~t:100 in
  let _b3 = Engine.Registry.r_opt_bounds ds ~t:150 in
  check_true "cached bounds identical" (b1 = b2);
  let lookups, hits = Engine.Registry.bounds_cache_stats ds in
  check_int "three lookups" 3 lookups;
  check_int "one hit" 1 hits;
  (* Cached sandwich must agree with a fresh computation. *)
  let idx = Engine.Registry.index ds in
  let lo, hi = Workload.Metrics.r_opt_bounds_indexed idx ~t:100 in
  check_float "cached r_lo" lo (fst b1);
  check_float "cached r_hi" hi (snd b1);
  (match Engine.Registry.register reg ~name:"d1" ~grid ~budget:(p ~eps:1. ~delta:1e-6) w.Workload.Synth.points with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate registration accepted")

(* --- Job parsing -------------------------------------------------------- *)

let test_job_parsing () =
  let contents =
    "# a comment\n\
     one_cluster t_fraction=0.45 eps=0.5 delta=1e-7\n\
     \n\
     quantile q=0.25 eps=0.2 id=q25   # trailing comment\n\
     k_cluster k=3 t_fraction=0.2 eps=1 delta=1e-7 deadline=30\n"
  in
  match Engine.Job.parse contents with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok specs ->
      check_int "three jobs" 3 (List.length specs);
      let j1 = List.nth specs 0 and j2 = List.nth specs 1 and j3 = List.nth specs 2 in
      check_true "auto id" (j1.Engine.Job.id = "j1");
      check_true "explicit id" (j2.Engine.Job.id = "q25");
      check_true "quantile delta defaults to 0" (j2.Engine.Job.delta = 0.);
      check_true "deadline parsed" (j3.Engine.Job.deadline_s = Some 30.);
      (match j3.Engine.Job.kind with
      | Engine.Job.K_cluster { k = 3; _ } -> ()
      | _ -> Alcotest.fail "k_cluster kind");
      (* Round-trip through the writer. *)
      (match Engine.Job.parse (String.concat "\n" (List.map Engine.Job.spec_to_line specs)) with
      | Ok specs' -> check_true "spec_to_line round-trips" (specs = specs')
      | Error e -> Alcotest.failf "round-trip failed: %s" e)

let test_job_parse_errors () =
  let bad = [ "one_cluster"; "mystery eps=1"; "one_cluster eps=zero delta=1e-7"; "quantile q=2 eps=1" ] in
  List.iter
    (fun line ->
      match Engine.Job.parse line with
      | Ok _ -> Alcotest.failf "accepted bad line %S" line
      | Error e -> check_true "error names line 1" (String.length e > 0 && String.sub e 0 6 = "line 1"))
    bad

(* --- Pool --------------------------------------------------------------- *)

let test_pool_outcomes_in_order () =
  let tasks = Array.init 17 (fun i -> Engine.Pool.task i) in
  let outcomes = Engine.Pool.run ~domains:4 ~f:(fun ~index:_ ~attempt:_ i -> i * i) tasks in
  Array.iteri
    (fun i o ->
      match o with
      | Engine.Pool.Done v -> check_int (Printf.sprintf "slot %d" i) (i * i) v
      | _ -> Alcotest.fail "unexpected non-Done outcome")
    outcomes

let test_pool_failure_isolation () =
  let tasks = Array.init 5 (fun i -> Engine.Pool.task i) in
  let outcomes =
    Engine.Pool.run ~domains:2
      ~f:(fun ~index:_ ~attempt:_ i -> if i = 2 then failwith "boom" else i)
      tasks
  in
  Array.iteri
    (fun i o ->
      match (i, o) with
      | 2, Engine.Pool.Failed msg -> check_true "failure message" (String.length msg > 0)
      | 2, _ -> Alcotest.fail "task 2 should fail"
      | _, Engine.Pool.Done v -> check_int "others fine" i v
      | _, _ -> Alcotest.fail "unexpected outcome")
    outcomes

let test_pool_deadline_timeout () =
  (* An already-expired deadline: the task must never start. *)
  let ran = Atomic.make false in
  let outcomes =
    Engine.Pool.run ~domains:1
      ~f:(fun ~index:_ ~attempt:_ () -> Atomic.set ran true)
      [| Engine.Pool.task ~deadline_s:0.0 () |]
  in
  (match outcomes.(0) with
  | Engine.Pool.Timed_out _ -> ()
  | _ -> Alcotest.fail "expired deadline should time out");
  check_true "expired job never ran" (not (Atomic.get ran));
  (* A job that overruns its deadline: reported as timeout, pool returns. *)
  let outcomes =
    Engine.Pool.run ~domains:1
      ~f:(fun ~index:_ ~attempt:_ () -> Unix.sleepf 0.15)
      [| Engine.Pool.task ~deadline_s:0.05 () |]
  in
  match outcomes.(0) with
  | Engine.Pool.Timed_out { elapsed_ms } -> check_true "elapsed past deadline" (elapsed_ms >= 50.)
  | _ -> Alcotest.fail "overrun should time out"

(* --- Service ------------------------------------------------------------ *)

let specs_for_batch =
  [
    {
      Engine.Job.id = "a";
      kind = Engine.Job.One_cluster { t_fraction = 0.45 };
      eps = 2.0;
      delta = 1e-6;
      beta = 0.1;
      deadline_s = None;
      fallback = false;
    };
    {
      Engine.Job.id = "q";
      kind = Engine.Job.Quantile { axis = 0; q = 0.5 };
      eps = 0.3;
      delta = 0.;
      beta = 0.1;
      deadline_s = None;
      fallback = false;
    };
    {
      Engine.Job.id = "b";
      kind = Engine.Job.One_cluster { t_fraction = 0.4 };
      eps = 2.0;
      delta = 1e-6;
      beta = 0.1;
      deadline_s = None;
      fallback = false;
    };
  ]

let run_batch ~domains ~seed =
  let service = Engine.Service.create ~domains ~seed ~faults:Engine.Faults.none () in
  (* Big enough that the 1-cluster solver succeeds at eps=2. *)
  let _, grid, w = small_workload ~n:1500 ~axis:256 ~radius:0.05 () in
  let ds =
    Engine.Service.register service ~name:"w" ~grid ~budget:(p ~eps:10. ~delta:1e-4)
      w.Workload.Synth.points
  in
  Engine.Service.run_batch service ~dataset:ds specs_for_batch

(* Everything except wall-clock latency must match. *)
let canonical results =
  List.map
    (fun (r : Engine.Job.result) ->
      (r.Engine.Job.spec.Engine.Job.id, Engine.Job.status_name r.Engine.Job.status, Engine.Job.detail r))
    results

let test_service_parallel_equals_sequential () =
  let r1 = run_batch ~domains:1 ~seed:11 in
  let r4 = run_batch ~domains:4 ~seed:11 in
  check_true "all completed"
    (List.for_all (fun (r : Engine.Job.result) -> Engine.Job.status_name r.Engine.Job.status = "ok") r1);
  Alcotest.(check (list (triple string string string)))
    "4 domains bit-identical to 1 domain" (canonical r1) (canonical r4);
  let r1' = run_batch ~domains:1 ~seed:12 in
  check_true "different seed, different draws" (canonical r1 <> canonical r1')

let test_service_refuses_over_budget_jobs () =
  let service = Engine.Service.create ~domains:1 ~seed:3 ~faults:Engine.Faults.none () in
  let _, grid, w = small_workload () in
  let ds =
    Engine.Service.register service ~name:"w" ~grid ~budget:(p ~eps:1.5 ~delta:1e-5)
      w.Workload.Synth.points
  in
  let mk id eps =
    {
      Engine.Job.id;
      kind = Engine.Job.Quantile { axis = 0; q = 0.5 };
      eps;
      delta = 0.;
      beta = 0.1;
      deadline_s = None;
      fallback = false;
    }
  in
  (* 0.9 accepted, 0.9 refused (would hit 1.8 > 1.5), 0.5 accepted: admission
     is in submission order, not best-fit. *)
  let results = Engine.Service.run_batch service ~dataset:ds [ mk "a" 0.9; mk "b" 0.9; mk "c" 0.5 ] in
  let statuses =
    List.map (fun (r : Engine.Job.result) -> Engine.Job.status_name r.Engine.Job.status) results
  in
  Alcotest.(check (list string)) "refusal pattern" [ "ok"; "refused"; "ok" ] statuses;
  (match (List.nth results 1).Engine.Job.status with
  | Engine.Job.Refused msg ->
      check_true "refusal message names the budget" (contains_sub msg "budget")
  | _ -> Alcotest.fail "expected refusal");
  let spent = Engine.Accountant.spent (Engine.Registry.accountant ds) in
  check_float ~tol:1e-12 "refused job not charged" 1.4 spent.Prim.Dp.eps;
  check_int "telemetry saw all three"
    3
    (Engine.Telemetry.count (Engine.Service.telemetry service) ~kind:"quantile" ())

let test_service_deadline_reports_timeout () =
  let service = Engine.Service.create ~domains:2 ~seed:3 ~faults:Engine.Faults.none () in
  let _, grid, w = small_workload () in
  let ds =
    Engine.Service.register service ~name:"w" ~grid ~budget:(p ~eps:10. ~delta:1e-4)
      w.Workload.Synth.points
  in
  let spec =
    {
      Engine.Job.id = "late";
      kind = Engine.Job.One_cluster { t_fraction = 0.45 };
      eps = 1.0;
      delta = 1e-7;
      beta = 0.1;
      deadline_s = Some 0.;  (* expired on arrival *)
      fallback = false;
    }
  in
  match Engine.Service.run_batch service ~dataset:ds [ spec ] with
  | [ r ] -> (
      match r.Engine.Job.status with
      | Engine.Job.Timed_out _ ->
          check_int "timeout recorded in telemetry" 1
            (Engine.Telemetry.count (Engine.Service.telemetry service) ~status:"timeout" ())
      | s -> Alcotest.failf "expected timeout, got %s" (Engine.Job.status_name s))
  | _ -> Alcotest.fail "one result expected"

let suite =
  [
    case "rng derive is stream-keyed and state-independent" test_derive_state_independent;
    case "accountant basic mode matches Composition.basic_list" test_accountant_basic_arithmetic;
    case "accountant refusal leaves the ledger unchanged" test_accountant_refusal_leaves_ledger_unchanged;
    case "accountant advanced mode matches Composition.advanced" test_accountant_advanced_matches_composition;
    case "accountant zcdp mode matches the Zcdp ledger arithmetic" test_accountant_zcdp_matches_ledger_arithmetic;
    case "registry caches the r_opt sandwich per t" test_registry_caches_bounds;
    case "jobs-file parsing" test_job_parsing;
    case "jobs-file parse errors name the line" test_job_parse_errors;
    case "pool returns outcomes in submission order" test_pool_outcomes_in_order;
    case "pool confines a task exception to its task" test_pool_failure_isolation;
    case "pool deadline: expired jobs skip, overruns report timeout" test_pool_deadline_timeout;
    slow_case "service: 4 domains bit-identical to 1 domain" test_service_parallel_equals_sequential;
    case "service refuses over-budget jobs without running them" test_service_refuses_over_budget_jobs;
    case "service deadline-exceeded job reports timeout" test_service_deadline_reports_timeout;
  ]
