lib/core/quantile.ml: Array Float Geometry Profile Recconcave
