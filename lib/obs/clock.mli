(** Monotonic clock (nanoseconds from an arbitrary epoch).

    Backed by [clock_gettime(CLOCK_MONOTONIC)]; unlike the wall clock it
    never goes backwards, so span durations are non-negative and the
    start-order of spans matches causal order within a process. *)

val now_ns : unit -> int64
(** Current monotonic time in nanoseconds.  Only the difference of two
    readings is meaningful. *)

val ns_to_ms : int64 -> float
val ns_to_us : int64 -> float
