(* Empirical differential-privacy smoke tests.

   These do not prove privacy (no finite test can), but they catch gross
   calibration bugs: for a pair of neighbouring databases we estimate the
   output distribution of a mechanism on both and check that observed
   probability ratios stay within e^ε plus sampling slack.  A broken noise
   scale (for instance Lap(1/2ε) instead of Lap(2/ε)) fails these tests
   immediately. *)

open Testutil

let trials = 60_000

(* Max log-ratio between two empirical histograms, ignoring bins whose
   counts are too small for a stable estimate. *)
let max_log_ratio counts_a counts_b =
  let worst = ref 0. in
  Array.iteri
    (fun i a ->
      let b = counts_b.(i) in
      if a >= 200 && b >= 200 then
        worst := Float.max !worst (Float.abs (log (float_of_int a /. float_of_int b))))
    counts_a;
  !worst

let test_laplace_count_ratio () =
  let r = rng () in
  let eps = 0.5 in
  (* Neighbouring databases: counts 50 and 51. *)
  let bins = 80 in
  let histogram value =
    let h = Array.make bins 0 in
    for _ = 1 to trials do
      let x = Prim.Laplace.count r ~eps value in
      let bin = int_of_float (Float.round (x -. 50.)) + (bins / 2) in
      if bin >= 0 && bin < bins then h.(bin) <- h.(bin) + 1
    done;
    h
  in
  let ratio = max_log_ratio (histogram 50) (histogram 51) in
  (* Allowed: ε plus generous sampling slack. *)
  check_true
    (Printf.sprintf "laplace log-ratio %.3f <= eps %.3f + slack" ratio eps)
    (ratio <= eps +. 0.15)

let test_gaussian_ratio () =
  let r = rng () in
  let eps = 0.5 and delta = 1e-5 in
  let bins = 60 in
  let histogram value =
    let h = Array.make bins 0 in
    let sigma = Prim.Gaussian_mech.sigma ~eps ~delta ~l2_sensitivity:1.0 in
    for _ = 1 to trials do
      let x = value +. Prim.Rng.gaussian r ~sigma () in
      let bin = int_of_float (Float.round ((x -. 50.) /. sigma *. 4.)) + (bins / 2) in
      if bin >= 0 && bin < bins then h.(bin) <- h.(bin) + 1
    done;
    h
  in
  let ratio = max_log_ratio (histogram 50.) (histogram 51.) in
  check_true
    (Printf.sprintf "gaussian log-ratio %.3f <= eps + slack" ratio)
    (ratio <= eps +. 0.15)

let test_exp_mech_ratio () =
  let r = rng () in
  let eps = 0.5 in
  (* Neighbouring score vectors (sensitivity 1 per candidate). *)
  let qa = [| 3.; 5.; 4. |] and qb = [| 4.; 4.; 3. |] in
  let histogram q =
    let h = Array.make 3 0 in
    for _ = 1 to trials do
      let i = Prim.Exp_mech.select r ~eps ~sensitivity:1.0 ~qualities:q in
      h.(i) <- h.(i) + 1
    done;
    h
  in
  let ratio = max_log_ratio (histogram qa) (histogram qb) in
  check_true
    (Printf.sprintf "exp-mech log-ratio %.3f <= eps + slack" ratio)
    (ratio <= eps +. 0.1)

let test_stability_hist_release_rate () =
  (* A cell present in S' but absent in S must be released with probability
     <= delta-ish; here: a singleton cell can never clear the threshold
     except through an enormous Laplace tail. *)
  let r = rng () in
  let eps = 1.0 and delta = 1e-4 in
  let released = ref 0 in
  let runs = 20_000 in
  for _ = 1 to runs do
    match Prim.Stability_hist.select r ~eps ~delta [ ("new-cell", 1) ] with
    | Some _ -> incr released
    | None -> ()
  done;
  (* P(1 + Lap(2) >= 1 + 2 ln(2/δ)) = δ/4 per draw. *)
  check_true
    (Printf.sprintf "singleton release rate %d/%d within delta budget" !released runs)
    (float_of_int !released /. float_of_int runs <= 4. *. delta)

let test_noisy_avg_count_offset () =
  (* The count lower bound m̂ must undershoot the true count (that is what
     makes σ safe); equality-direction errors would show as m̂ > m often. *)
  let r = rng () in
  let vs = Array.init 500 (fun _ -> [| 0.5 |]) in
  let overshoot = ref 0 in
  for _ = 1 to 2000 do
    match
      Prim.Noisy_avg.run r ~eps:1.0 ~delta:1e-6 ~diameter:1.0 ~pred:(fun _ -> true) ~dim:1 vs
    with
    | Prim.Noisy_avg.Average a -> if a.Prim.Noisy_avg.m_hat > 500. then incr overshoot
    | Prim.Noisy_avg.Bottom -> ()
  done;
  check_int "m_hat never exceeds the true count by design margin" 0 !overshoot

let test_sparse_vector_budget_independence () =
  (* Below-threshold answers are "free": a long stream of Belows must not
     change the distribution of a later Above decision (the mechanism keeps
     only one noisy threshold).  We check the Above rate on query k is the
     same whether 1 or 100 Belows preceded it. *)
  let r = rng () in
  let rate prefix_len =
    let above = ref 0 in
    let runs = 20_000 in
    for _ = 1 to runs do
      let sv = Prim.Sparse_vector.create r ~eps:1.0 ~threshold:100. in
      for _ = 1 to prefix_len do
        if not (Prim.Sparse_vector.halted sv) then ignore (Prim.Sparse_vector.query sv 0.)
      done;
      if (not (Prim.Sparse_vector.halted sv)) && Prim.Sparse_vector.query sv 100. = Prim.Sparse_vector.Above
      then incr above
    done;
    float_of_int !above /. float_of_int runs
  in
  let r1 = rate 1 and r100 = rate 100 in
  check_true
    (Printf.sprintf "rates %.3f vs %.3f close" r1 r100)
    (Float.abs (r1 -. r100) < 0.05)

let suite =
  [
    slow_case "laplace neighbouring ratio" test_laplace_count_ratio;
    slow_case "gaussian neighbouring ratio" test_gaussian_ratio;
    slow_case "exp-mech neighbouring ratio" test_exp_mech_ratio;
    slow_case "stability-hist singleton release rate" test_stability_hist_release_rate;
    slow_case "noisy-avg count offset direction" test_noisy_avg_count_offset;
    slow_case "sparse-vector below-answers are free" test_sparse_vector_budget_independence;
  ]
