lib/core/one_cluster.mli: Format Geometry Good_center Good_radius Prim Profile Stdlib
