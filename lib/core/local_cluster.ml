(* LDP 1-cluster: k-ary randomized response over a dyadic scale ladder.
   See the .mli for the protocol; the invariants tested elsewhere are
   (a) law sums to 1 exactly, (b) debias inverts the randomizer's
   expectation exactly (estimates sum to n for any report vector), and
   (c) the whole run is a deterministic function of the base RNG's
   creation seed, because every user stream is [derive]d. *)

type scale = {
  cells_per_axis : int;
  cell_side : float;
  cells : int;
  group_size : int;
  slack : float;
}

type result = {
  center : Geometry.Vec.t;
  radius : float;
  t_requested : int;
  est_count : float;
  delta_bound : float;
  scale_index : int;
  scales : scale array;
}

type failure =
  | Not_enough_mass of { best : float; needed : float }
  | All_certificates_vacuous of { t : int; min_delta : float }

let pp_failure ppf = function
  | Not_enough_mass { best; needed } ->
      Format.fprintf ppf "not enough mass: best block estimate %.1f, needed %.1f" best needed
  | All_certificates_vacuous { t; min_delta } ->
      Format.fprintf ppf
        "all certificates vacuous: even the coarsest scale's delta bound %.1f reaches t = %d \
         (too few users for this eps)"
        min_delta t

let pp_result ppf r =
  Format.fprintf ppf "center %a radius %.4f (scale 1/%d, est %.1f, delta <= %.1f)"
    Geometry.Vec.pp r.center r.radius r.scales.(r.scale_index).cells_per_axis r.est_count
    r.delta_bound

(* ---- the local randomizer ----------------------------------------- *)

let check_k_eps ~eps ~k =
  if k < 2 then invalid_arg "Local_cluster: k must be at least 2";
  if not (eps > 0.) then invalid_arg "Local_cluster: eps must be positive"

let p_keep ~eps ~k =
  check_k_eps ~eps ~k;
  let e = exp eps in
  e /. (e +. float_of_int (k - 1))

let p_other ~eps ~k =
  check_k_eps ~eps ~k;
  1. /. (exp eps +. float_of_int (k - 1))

let randomize rng ~eps ~k cell =
  check_k_eps ~eps ~k;
  if cell < 0 || cell >= k then invalid_arg "Local_cluster.randomize: cell out of range";
  if Prim.Rng.bernoulli rng ~p:(p_keep ~eps ~k) then cell
  else
    let j = Prim.Rng.int rng (k - 1) in
    if j >= cell then j + 1 else j

let law ~eps ~k ~cell =
  check_k_eps ~eps ~k;
  if cell < 0 || cell >= k then invalid_arg "Local_cluster.law: cell out of range";
  let p = p_keep ~eps ~k and q = p_other ~eps ~k in
  Array.init k (fun i -> if i = cell then p else q)

let debias ~eps ~k ~n counts =
  check_k_eps ~eps ~k;
  if Array.length counts <> k then invalid_arg "Local_cluster.debias: counts length <> k";
  let p = p_keep ~eps ~k and q = p_other ~eps ~k in
  let nf = float_of_int n in
  Array.map (fun c -> (float_of_int c -. (nf *. q)) /. (p -. q)) counts

(* ---- the scale ladder --------------------------------------------- *)

let pow_capped base d ~cap =
  (* base^d, saturating just above [cap] so callers can compare safely. *)
  let rec go acc i = if i = 0 then acc else if acc > cap then acc else go (acc * base) (i - 1) in
  go 1 d

let plan ~grid ~eps ?(beta = 0.1) ?(max_cells = 4096) ~n () =
  let d = Geometry.Grid.dim grid in
  let step = Geometry.Grid.step grid in
  let rec ladder acc m =
    let cells = pow_capped m d ~cap:max_cells in
    if cells > max_cells || 1. /. float_of_int m < 2. *. step then List.rev acc
    else ladder (m :: acc) (2 * m)
  in
  let ms = ladder [] 2 in
  if ms = [] then
    invalid_arg
      (Printf.sprintf "Local_cluster.plan: coarsest scale needs 2^%d cells > max_cells %d" d
         max_cells);
  (* Never keep more scales than users: an empty group has no estimate. *)
  let ms = Array.of_list ms in
  let nl = max 1 (min (Array.length ms) n) in
  let ms = Array.sub ms 0 nl in
  Array.mapi
    (fun l m ->
      let cells = pow_capped m d ~cap:max_cells in
      let group_size = (n / nl) + if l < n mod nl then 1 else 0 in
      let blocks = pow_capped (max 1 (m - 1)) d ~cap:max_int in
      let p = p_keep ~eps ~k:cells and q = p_other ~eps ~k:cells in
      let slack =
        if group_size = 0 then infinity
        else
          let lg = log (2. *. float_of_int (blocks * nl) /. beta) in
          let dev_group = sqrt (float_of_int group_size *. lg /. 2.) in
          let dev_pop = sqrt (float_of_int n *. lg /. 2.) in
          (float_of_int n /. float_of_int group_size *. dev_group /. (p -. q)) +. dev_pop
      in
      { cells_per_axis = m; cell_side = 1. /. float_of_int m; cells; group_size; slack })
    ms

(* ---- the server-side search --------------------------------------- *)

let cell_of_row storage off ~d ~m =
  let cell = ref 0 in
  for a = 0 to d - 1 do
    let j = int_of_float (storage.(off + a) *. float_of_int m) in
    let j = if j < 0 then 0 else if j >= m then m - 1 else j in
    cell := (!cell * m) + j
  done;
  !cell

(* Fold [f] over every block corner (digits in [0, m-2]^d, or the single
   all-zero corner when m = 2 gives exactly one block per axis pair). *)
let iter_blocks ~d ~m f =
  let hi = max 0 (m - 2) in
  let corner = Array.make d 0 in
  let rec go a = if a = d then f corner else for j = 0 to hi do corner.(a) <- j; go (a + 1) done in
  go 0

let block_count counts corner ~d ~m =
  (* Sum of the 2^d cells at [corner .. corner+1] per axis. *)
  let total = ref 0 in
  let rec go a idx =
    if a = d then total := !total + counts.(idx)
    else
      let base = idx * m in
      go (a + 1) (base + corner.(a));
      go (a + 1) (base + corner.(a) + 1)
  in
  go 0 0;
  !total

let run rng ~grid ~eps ?(beta = 0.1) ?(max_cells = 4096) ~t ps =
  let d = Geometry.Grid.dim grid in
  if Geometry.Pointset.dim ps <> d then invalid_arg "Local_cluster.run: dimension mismatch";
  if t <= 0 then invalid_arg "Local_cluster.run: t must be positive";
  let n = Geometry.Pointset.n ps in
  let scales = plan ~grid ~eps ~beta ~max_cells ~n () in
  let nl = Array.length scales in
  let counts = Array.map (fun s -> Array.make s.cells 0) scales in
  let storage = Geometry.Pointset.storage ps in
  for i = 0 to n - 1 do
    let l = i mod nl in
    let s = scales.(l) in
    let cell = cell_of_row storage (Geometry.Pointset.row_offset ps i) ~d ~m:s.cells_per_axis in
    let report = randomize (Prim.Rng.derive rng ~stream:i) ~eps ~k:s.cells cell in
    counts.(l).(report) <- counts.(l).(report) + 1
  done;
  let best_overall = ref neg_infinity and needed_at_best = ref infinity in
  let winner = ref None in
  (* Finest qualifying scale wins: it has the smallest released radius.
     A scale only qualifies while its certificate is non-vacuous
     (2·slack < t) — otherwise any fine-grained block passes the
     threshold trivially and the released ball covers next to nothing
     while still "honouring" a Δ ≥ t promise. *)
  let l = ref (nl - 1) in
  while !winner = None && !l >= 0 do
    let s = scales.(!l) in
    if s.group_size > 0 && 2. *. s.slack < float_of_int t then begin
      let m = s.cells_per_axis in
      let p = p_keep ~eps ~k:s.cells and q = p_other ~eps ~k:s.cells in
      let ng = float_of_int s.group_size in
      let scale_up = float_of_int n /. ng in
      let cells_per_block = float_of_int (pow_capped 2 d ~cap:max_int) in
      let best = ref neg_infinity and best_corner = ref [||] in
      iter_blocks ~d ~m (fun corner ->
          let c = block_count counts.(!l) corner ~d ~m in
          let est = scale_up *. ((float_of_int c -. (ng *. cells_per_block *. q)) /. (p -. q)) in
          if est > !best then begin
            best := est;
            best_corner := Array.copy corner
          end);
      if !best > !best_overall then begin
        best_overall := !best;
        needed_at_best := float_of_int t -. s.slack
      end;
      if !best >= float_of_int t -. s.slack then
        let side = s.cell_side in
        let center = Array.map (fun j -> float_of_int (j + 1) *. side) !best_corner in
        winner :=
          Some
            {
              center;
              radius = side *. sqrt (float_of_int d);
              t_requested = t;
              est_count = !best;
              delta_bound = 2. *. s.slack;
              scale_index = !l;
              scales;
            }
    end;
    decr l
  done;
  match !winner with
  | Some r -> Ok r
  | None ->
      if !best_overall = neg_infinity then
        let min_delta =
          Array.fold_left
            (fun acc s -> if s.group_size > 0 then Float.min acc (2. *. s.slack) else acc)
            infinity scales
        in
        Error (All_certificates_vacuous { t; min_delta })
      else Error (Not_enough_mass { best = !best_overall; needed = !needed_at_best })
