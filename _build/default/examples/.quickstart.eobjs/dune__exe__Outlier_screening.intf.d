examples/outlier_screening.mli:
