test/test_stability_hist.ml: Alcotest Array List Prim QCheck2 Testutil
