type predicate = Geometry.Vec.t -> bool

type result = {
  ball_center : Geometry.Vec.t;
  ball_radius : float;
  inlier : predicate;
  cluster : One_cluster.result;
}

let detect rng profile ~grid ~eps ~delta ~beta ~inlier_fraction ?(margin = 4.) points =
  if not (inlier_fraction > 0. && inlier_fraction <= 1.) then
    invalid_arg "Outlier.detect: inlier_fraction must be in (0, 1]";
  let n = Array.length points in
  let t = max 1 (int_of_float (inlier_fraction *. float_of_int n)) in
  match One_cluster.run rng profile ~grid ~eps ~delta ~beta ~t points with
  | Error e -> Error e
  | Ok cluster ->
      let center = cluster.One_cluster.center in
      (* The screen ball derives its radius from the radius-stage output z
         (a private value ≈ 4·r_opt) rather than the very conservative
         end-to-end private radius: any function of private outputs is
         post-processing, and margin·z both covers the cluster (the center
         is within the averaging noise of its mean) and stays small. *)
      let z = cluster.One_cluster.radius_stage.Good_radius.radius in
      let radius = margin *. Float.max z (Geometry.Grid.step grid) in
      Ok
        {
          ball_center = center;
          ball_radius = radius;
          inlier = (fun p -> Geometry.Vec.dist p center <= radius);
          cluster;
        }

let screened_mean rng ~eps ~delta result points =
  let dim = Geometry.Vec.dim result.ball_center in
  Prim.Noisy_avg.run rng ~eps ~delta ~diameter:(2. *. result.ball_radius) ~pred:result.inlier
    ~dim points

let domain_mean rng ~eps ~delta ~grid points =
  let dim = Geometry.Grid.dim grid in
  Prim.Noisy_avg.run rng ~eps ~delta
    ~diameter:(Geometry.Grid.diameter grid)
    ~pred:(fun _ -> true)
    ~dim points
