(** Scoring a (center, radius) answer against a workload's ground truth —
    the two quantities of Definition 1.2:

    - {b coverage}: how many input points the returned ball actually
      contains ([t − Δ_measured]);
    - {b radius ratio}: [w_measured = returned radius / r_opt].

    Because [r_opt] is NP-hard, ratios are reported against the sandwich
    [(r_lo, r_hi)] of {!Baselines.Nonprivate.r_opt_bounds} (for planted
    workloads the planted radius tightens [r_hi]). *)

type score = {
  covered : int;  (** Points inside the returned ball. *)
  delta_measured : int;  (** [max 0 (t − covered)]. *)
  ratio_vs_hi : float;  (** radius / r_hi — optimistic ratio (≥ this). *)
  ratio_vs_lo : float;  (** radius / r_lo — pessimistic ratio (≤ this). *)
  r_lo : float;
  r_hi : float;
}

val score :
  ?planted_radius:float ->
  Geometry.Pointset.t ->
  t:int ->
  center:Geometry.Vec.t ->
  radius:float ->
  score

val r_opt_bounds_indexed : Geometry.Pointset.index -> t:int -> float * float
(** The [(r_lo, r_hi)] sandwich via a prebuilt distance index — compute once
    per workload and feed {!score_with_bounds} for every method/trial. *)

val score_with_bounds :
  r_lo:float ->
  r_hi:float ->
  Geometry.Pointset.t ->
  t:int ->
  center:Geometry.Vec.t ->
  radius:float ->
  score

val tight_radius : Geometry.Pointset.t -> center:Geometry.Vec.t -> t:int -> float
(** Diagnostic (non-private): the smallest radius around the given center
    that captures [t] points — how good the {e center} is, independent of
    the conservative private radius. *)

val success : score -> t:int -> max_delta:int -> max_ratio:float -> bool
(** Did the answer meet Definition 1.2 with the given [Δ] and [w]? (Uses the
    optimistic ratio; callers exploring failure report both.) *)

val mean : float list -> float
val median : float list -> float
val quantile : float list -> q:float -> float
