(** The journaled budget ledger: an append-only, CRC-framed, fsync'd
    write-ahead log of every {!Engine.Accountant} operation, keyed by
    (tenant, dataset).

    Differential privacy is an account that depletes; a resident service
    that forgot its spend on restart would hand every client a fresh
    budget, which is the one failure a DP daemon can never have.  The
    daemon therefore journals each ledger operation {e as it happens} (the
    record is durable before the batch's results are released) and replays
    the journal into a fresh accountant when a dataset is re-registered
    after a restart — replay re-executes the logged operation sequence
    through the ordinary {!Engine.Accountant} API, so the reconstructed
    ledger is the very state the original operations produced: same
    entries, same composed spend, same refusal count, same outstanding
    reservations.

    {2 Frame format}

    One record per line:

    {v PW1 <len:8 hex> <crc32:8 hex> <payload> \n v}

    where [payload] is a single-line JSON object of exactly [len] bytes
    and [crc32] is its IEEE CRC-32.  ε/δ values are encoded as hex-float
    strings ([%h]), so replayed charges are bit-identical to the originals
    (decimal rendering would round).  A torn final write — the crash
    window of an append — fails the length, CRC or newline check and is
    discarded at load ({!tail} reports how many bytes); a bad frame that
    is {e followed} by another valid frame is not a torn tail but
    corruption, and load refuses the file rather than silently dropping
    spend.

    {2 Recovery semantics}

    Replay applies ops in log order: accepted charges must be accepted
    again, journaled refusals must refuse again (the composition
    arithmetic is deterministic, so any divergence means the journal does
    not belong to this budget/mode and replay errors out instead of
    guessing).  A reservation with no journaled settlement — the daemon
    died between reserve and commit/release — is restored {e as a held
    reservation}: it keeps blocking headroom (the fallback may already
    have drawn noise, so releasing could hand out budget twice) but does
    not enter the spent total (it was never known to commit).  Orphaned
    reservations are visible in the ledger's [reserved] list and are never
    settled automatically.

    Compaction: the log only ever grows, so on startup the daemon rewrites
    it — same records, fresh file, atomic rename — which drops nothing but
    reclaims the space of any torn tail. *)

type synth = {
  n : int;
  dim : int;
  axis : int;
  frac : float;
  radius : float;
  seed : int;
}
(** The synthesis parameters a dataset was registered with.  They pin the
    base pointset: replaying Append/Retire mutations and cached results
    against a dataset generated from {e different} parameters would
    silently diverge, so re-registration must present the same ones. *)

type op =
  | Open of { mode : Engine.Accountant.mode; budget : Prim.Dp.params; synth : synth option }
      (** Budget, composition mode, and synthesis parameters the dataset
          was registered with; first record of every (tenant, dataset)
          stream.  Re-registration after a restart must present the same
          budget, mode, and parameters.  [synth = None] only on records
          journaled before parameters were pinned (a legacy journal);
          such streams skip the parameter check. *)
  | Charge of { label : string; cost : Prim.Dp.params }
  | Refuse of { label : string; cost : Prim.Dp.params; reserve : bool }
  | Reserve of { rid : int; label : string; cost : Prim.Dp.params }
  | Commit of { rid : int }
  | Release of { rid : int }
  | Append of { epoch : int; dim : int; points : float array }
      (** Epoch transition: [points] ([dim]-major, one row per point)
          appended to the dataset, producing epoch [epoch].  Coordinates
          are journaled as hex floats, so the replayed pointset — and
          therefore every index built over it — is bit-identical. *)
  | Retire of { epoch : int; from_ : int; count : int }
      (** Epoch transition: rows [[from_, from_ + count)] of the previous
          epoch's pointset retired, producing epoch [epoch]. *)
  | Cached of { epoch : int; signature : string; seed : int; stream : int; output : Engine.Json.t }
      (** A result-cache entry: the recorded answer ([output], the
          {!Engine.Job.output_to_wire} encoding) for the job whose
          {!Engine.Job.signature} is [signature], run against [epoch]
          with randomness [(seed, stream)].  Replay restores the entry so
          post-restart hits return the identical answer free of charge. *)
  | Standing of { line : string; seed : int; stream : int }
      (** A standing-query registration: [line] is the
          {!Engine.Job.spec_to_line} rendering and [seed]/[stream] the
          registration-time randomness coordinates —
          {!Engine.Service.restore_standing}'s exact inputs. *)

type record = { tenant : string; dataset : string; op : op }

val record_of_event : tenant:string -> dataset:string -> Engine.Accountant.event -> record
(** The journal entry for one accountant event (the daemon subscribes
    this composed with {!append}). *)

type tail =
  | Clean
  | Torn of int  (** A torn final write; the count is discarded bytes. *)

val load : string -> (record list * tail, string) result
(** Read and verify a journal.  A missing file is an empty journal.
    [Error] means corruption that is {e not} a torn tail (bad CRC or
    frame mid-file) or an unreadable file. *)

(** {2 Appending} *)

type t

val open_ : ?sync:bool -> string -> (t, string) result
(** Open (creating if needed) for appending.  [sync] (default [true])
    fsyncs after every {!append} — the durability the invariant needs;
    turn it off only for benchmarks. *)

val append : t -> record -> unit
(** Frame, write, and (in sync mode) fsync one record.
    @raise Unix.Unix_error on write failure — the daemon treats a
    journal it cannot write as fatal. *)

val close : t -> unit
val path : t -> string

val compact : ?sync:bool -> path:string -> record list -> (unit, string) result
(** Write [records] to a fresh journal at [path] via write-temp +
    fsync + atomic rename. *)

(** {2 Replay} *)

val histories : record list -> ((string * string) * op list) list
(** Group records by (tenant, dataset), both levels in first-appearance
    order, each stream in log order. *)

val opening : op list -> (Engine.Accountant.mode * Prim.Dp.params * synth option) option
(** The stream's [Open] record, if any. *)

val replay :
  ?on_event:(Engine.Accountant.event -> unit) ->
  ?on_apply:(op -> (unit, string) result) ->
  op list ->
  Engine.Accountant.t ->
  (int, string) result
(** Re-execute the op stream against a fresh accountant (created by the
    caller with the {!opening} mode and budget).  Returns the number of
    orphaned reservations restored as held.  [on_event] observes the
    replayed operations as ordinary accountant events (the daemon uses it
    to re-emit tracing budget events so {!Obs.Attribution} reconciles
    across a restart); it stops firing once replay returns.  [on_apply]
    receives the engine-state ops ({!Append}, {!Retire}, {!Cached},
    {!Standing}) in journal order, interleaved with the budget replay —
    the daemon uses it to re-apply mutations and restore cache entries so
    the post-restart epoch and cache match the pre-crash state; an
    [Error] it returns (a mutation that does not reproduce its journaled
    epoch) aborts the replay with that message.  [Error] means the
    journal diverged — wrong budget, wrong mode, a mutation that no
    longer reproduces its journaled result, or a mangled stream. *)
