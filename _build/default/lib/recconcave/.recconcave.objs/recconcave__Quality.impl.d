lib/recconcave/quality.ml: Array Hashtbl
