(** Synthetic workloads.

    The paper has no datasets (DESIGN.md, substitution 5); every experiment
    runs on generators that realize the regimes its theory distinguishes:
    a planted minority/majority ball inside uniform background noise,
    several planted balls (k-clustering / map-search), heavy outlier
    contamination, and sample-and-aggregate estimator outputs that are
    concentrated for most subsamples but wild on the rest.

    All generators snap their output to the given grid (Definition 1.2
    requires inputs from [X^d]) and return the ground truth alongside the
    data so metrics can score against it. *)

type planted = {
  points : Geometry.Vec.t array;
  cluster_center : Geometry.Vec.t;
  cluster_radius : float;  (** Planted radius (after snapping, a valid upper
                               bound on [r_opt] for [t ≤ cluster_size]). *)
  cluster_size : int;
  cluster_indices : int array;
}

val planted_ball :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  n:int ->
  cluster_fraction:float ->
  cluster_radius:float ->
  planted
(** [n] points: a [cluster_fraction] share uniform in a ball of the given
    radius around a random center (kept [2·radius] clear of the cube
    boundary when possible), the rest uniform over the cube. *)

val adversarial_minority :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  n:int ->
  cluster_fraction:float ->
  cluster_radius:float ->
  planted
(** Like {!planted_ball}, but the background is adversarial for
    centrality-based aggregation: when the target cluster is a minority, the
    remaining mass is split between two decoy balls placed at opposite
    corners, so coordinatewise medians/means land in empty space between
    them (this is the regime where Table 1's private-aggregation row
    requires [t ≥ 0.51·n]). *)

type multi = {
  all_points : Geometry.Vec.t array;
  centers : Geometry.Vec.t array;
  radii : float array;
  sizes : int array;
}

val planted_balls :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  n:int ->
  k:int ->
  cluster_radius:float ->
  noise_fraction:float ->
  multi
(** [k] planted balls of equal share plus a [noise_fraction] uniform
    background — the k-clustering / map-search workload (E9). *)

type contaminated = {
  data : Geometry.Vec.t array;
  inlier_center : Geometry.Vec.t;
  inlier_radius : float;
  outlier_indices : int array;
}

val with_outliers :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  n:int ->
  outlier_fraction:float ->
  inlier_radius:float ->
  contaminated
(** A tight inlier ball plus far-flung outliers (E8). *)

val estimator_outputs :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  k:int ->
  good_fraction:float ->
  good_center:Geometry.Vec.t ->
  good_radius:float ->
  Geometry.Vec.t array
(** Simulated sample-and-aggregate block outputs: a [good_fraction] share
    lands within [good_radius] of [good_center], the rest is uniform junk —
    the regime of Definition 6.1 with [α = good_fraction] (E7). *)

val uniform : Prim.Rng.t -> grid:Geometry.Grid.t -> n:int -> Geometry.Vec.t array
(** Pure background noise (failure-mode tests). *)

val ball_point : Prim.Rng.t -> center:Geometry.Vec.t -> radius:float -> Geometry.Vec.t
(** One point uniform in a Euclidean ball (rejection-free: Gaussian
    direction × beta-distributed radius). *)
