test/main.mli:
