(** Algorithm 4 — SA: sample and aggregate via the 1-cluster solver
    (Section 6, Theorem 6.3).

    Given an arbitrary (non-private!) analysis [f] mapping databases to the
    grid domain [X^d], SA privately finds an [(m, w·r, α/8)]-stable point of
    [f] on the input: a point such that [f] applied to a fresh random
    [m]-subsample lands within distance [w·r] of it with probability
    ≥ α/8, where [r] is (up to the 1-cluster approximation) the best radius
    for which [f] is [(m, r, α)]-stable.

    Construction: draw [n/9] iid samples from the input, split them into
    [k = n/(9m)] blocks of size [m], evaluate [f] on every block, and run
    the 1-cluster solver on the [k] outputs with [t = αk/2].  Privacy
    follows because a neighbouring input changes at most one block, hence
    at most one aggregated point, plus secrecy-of-the-subsample
    amplification (Lemma 6.4).

    Unlike the classical noisy-average aggregation of [NRS07]/GUPT (our
    {!Baselines.Private_agg}), this aggregator tolerates a {e minority} of
    good runs ([α < 1/2]) and pays only [O(√log k)] in the radius instead
    of [√d] — experiment E7 measures exactly this separation. *)

type 'a analysis = 'a array -> Geometry.Vec.t
(** The off-the-shelf analysis [f]; its outputs must lie in the grid cube. *)

type result = {
  stable_point : Geometry.Vec.t;
  stable_radius : float;  (** The 1-cluster private radius ([w·r]). *)
  blocks : int;  (** [k]. *)
  block_size : int;  (** [m]. *)
  t_used : int;  (** [αk/2]. *)
  cluster : One_cluster.result;
}

val run :
  Prim.Rng.t ->
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  m:int ->
  alpha:float ->
  f:'a analysis ->
  'a array ->
  (result, One_cluster.failure) Stdlib.result
(** [run rng profile ~grid ~eps ~delta ~beta ~m ~alpha ~f data].  The
    1-cluster solver is invoked with the caller's [(eps, delta)]; the
    subsampling amplification (Lemma 6.4) makes the end-to-end guarantee
    strictly stronger — {!amplified} reports it.
    @raise Invalid_argument if the data cannot supply [k ≥ 2] blocks. *)

val amplified : eps:float -> delta:float -> Prim.Dp.params
(** The end-to-end parameters after Lemma 6.4 with the algorithm's [n/9]
    subsample: [ε̃ = 6ε·(n/9)/n = 2ε/3] and [δ̃ = exp(ε̃)·(4/9)·δ].  (The
    general lemma, with its [ε ≤ 1] hypothesis enforced, is
    {!Prim.Subsample.amplify}; this helper just instantiates the m = n/9
    ratio and is reported even when the caller runs at ε > 1, where the
    amplification claim is heuristic.) *)
