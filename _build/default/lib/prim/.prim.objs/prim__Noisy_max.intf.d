lib/prim/noisy_max.mli: Rng
