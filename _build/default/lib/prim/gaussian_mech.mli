(** The Gaussian mechanism (Theorem 2.4, Dwork et al. 2006).

    For [f] of L2-sensitivity [k] and [ε, δ ∈ (0, 1)], adding iid
    N(0, σ²) noise with [σ ≥ (k/ε)·√(2 ln(1.25/δ))] to each coordinate is
    [(ε, δ)]-differentially private.  GoodCenter's final step (step 11 /
    Algorithm 5) releases the average of the captured cluster this way. *)

val sigma : eps:float -> delta:float -> l2_sensitivity:float -> float
(** The smallest noise level the theorem licenses.  Theorem 2.4 is stated
    for [ε < 1]; budgets ≥ 1 are clamped to 1 (more privacy than asked,
    never less). *)

val scalar : Rng.t -> eps:float -> delta:float -> l2_sensitivity:float -> float -> float

val vector :
  Rng.t -> eps:float -> delta:float -> l2_sensitivity:float -> float array -> float array
(** Adds iid N(0, σ²) noise (σ from {!sigma}) to every coordinate. *)

val vector_with_sigma : Rng.t -> sigma:float -> float array -> float array
(** Adds iid N(0, σ²) noise at an explicitly chosen level (used when the
    caller derives σ itself, as NoisyAVG does from its noisy count). *)

val coordinate_tail_bound : sigma:float -> dim:int -> beta:float -> float
(** Magnitude [m] with:  P(∃ coordinate with |noise| > m) ≤ beta, via the
    Gaussian tail and a union bound over [dim] coordinates —
    [m = σ·√(2 ln(2·dim/β))].  This is the bound behind Lemma 4.12's
    [|η_i| ≤ r√(k/d)] step. *)
