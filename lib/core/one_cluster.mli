(** The full 1-cluster solver (Theorem 3.2): GoodRadius then GoodCenter.

    On input a database of [n] grid points and a target [t], outputs a
    center [c] and radius [r] such that, with probability ≥ 1 − β,
    [B(c, r)] contains at least [t − Δ] input points and [r] is within the
    profile's approximation factor of [r_opt] (the paper's [O(√log n)]).
    Privacy budget is split evenly: GoodRadius gets [(ε/2, δ/2)], the
    center stage [(ε/2, δ/2)]; total [(ε, δ)]-DP by Theorem 2.1.

    When GoodRadius's step-2 shortcut reports a radius-0 cluster, the
    center stage degenerates to one stability-histogram query on the exact
    grid coordinates (this is the natural completion of the paper's "halt
    and return z = 0" branch). *)

type failure =
  | Center_failure of Good_center.failure
  | Zero_cluster_not_found
      (** The radius stage reported a radius-0 cluster but the histogram on
          exact coordinates released nothing (only possible when the two
          stages' noise draws disagree). *)

type result = {
  center : Geometry.Vec.t;
  radius : float;
      (** Private (data-independent) output radius; 0 on the zero-radius
          path. *)
  t_requested : int;
  delta_bound : float;
      (** Certified bound on the cluster-size loss Δ (sum of both stages'
          losses). *)
  radius_stage : Good_radius.result;
  center_stage : Good_center.success option;  (** [None] on the zero path. *)
}

val pp_failure : Format.formatter -> failure -> unit
val pp_result : Format.formatter -> result -> unit

val run :
  Prim.Rng.t ->
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  t:int ->
  Geometry.Vec.t array ->
  (result, failure) Stdlib.result
(** Builds the O(n²) distance index internally; see {!run_indexed} to
    amortize it across calls. *)

val run_ps :
  Prim.Rng.t ->
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  t:int ->
  Geometry.Pointset.t ->
  (result, failure) Stdlib.result
(** Like {!run} but over an existing pointset (possibly a zero-copy view)
    — no repacking; same results bit for bit on equal data and RNG
    state. *)

val run_indexed :
  Prim.Rng.t ->
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  t:int ->
  Geometry.Pointset.index ->
  (result, failure) Stdlib.result

val budget_breakdown :
  Profile.t -> eps:float -> delta:float -> d:int -> (string * Prim.Dp.params) list
(** The per-mechanism privacy ledger of one run at the given total budget —
    the splitting rules of Lemmas 4.5/4.11 made explicit (GoodRadius's
    Laplace test and search at ε/4 each; GoodCenter's AboveThreshold, box
    histogram, d-fold per-axis histograms and NoisyAVG at ε/8 each, with
    the axis row showing the advanced-composition total).  Summing the
    entries under basic composition recovers at most [(ε, δ)]; pinned by a
    test. *)

val recommended_min_t :
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  n:int ->
  float
(** A back-of-envelope lower bound on workable cluster sizes for this
    profile — the sum of the radius-stage Δ, the sparse-vector slack, the
    histogram utility requirement, and the noisy-average count offset.  The
    empirical minimum (experiment E5) is typically close to it. *)
