(* Algorithm 1 — GoodRadius. *)

open Testutil

let delta = 1e-6
let beta = 0.1

let run_on ?(profile = Privcluster.Profile.practical) ?(eps = 4.0) w grid t =
  let r = rng ~seed:17 () in
  let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w) in
  (Privcluster.Good_radius.run r profile ~grid ~eps ~delta ~beta ~t idx, idx)

let test_planted_cluster_radius_bounds () =
  let _, grid, w = small_workload ~n:800 ~fraction:0.6 ~radius:0.05 () in
  let t = 400 in
  let result, idx = run_on w.Workload.Synth.points grid t in
  check_true "no zero shortcut" (not result.Privcluster.Good_radius.zero_shortcut);
  let z = result.Privcluster.Good_radius.radius in
  (* Upper bound: 4·r_opt times the geometric grid's sqrt 2. *)
  let two_approx = Geometry.Seb.two_approx_indexed idx ~t in
  check_true
    (Printf.sprintf "z = %.4f within 4·sqrt2·r_opt = %.4f" z
       (4. *. sqrt 2. *. two_approx.Geometry.Seb.radius))
    (z <= 4. *. sqrt 2. *. two_approx.Geometry.Seb.radius +. 1e-9);
  (* Coverage: some ball of radius z holds close to t points. *)
  let counts = Geometry.Pointset.counts_within idx ~radius:z in
  let best = Array.fold_left max 0 counts in
  check_true
    (Printf.sprintf "coverage %d vs t=%d (certified slack %.0f)" best t
       result.Privcluster.Good_radius.delta_bound)
    (float_of_int best >= float_of_int t -. result.Privcluster.Good_radius.delta_bound)

let test_zero_shortcut_on_duplicates () =
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:2 in
  (* 500 copies of one grid point plus scattered rest. *)
  let r = rng () in
  let points =
    Array.init 600 (fun i ->
        if i < 500 then [| 0.5; 0.5 |] else Geometry.Grid.random_point grid r)
  in
  let result, _ = run_on points grid 450 in
  check_true "zero shortcut fires" result.Privcluster.Good_radius.zero_shortcut;
  check_float "radius zero" 0. result.Privcluster.Good_radius.radius

let test_no_zero_shortcut_on_spread_data () =
  let grid = Geometry.Grid.create ~axis_size:4096 ~dim:2 in
  let r = rng () in
  let points = Array.init 500 (fun _ -> Geometry.Grid.random_point grid r) in
  let fired = ref 0 in
  for _ = 1 to 10 do
    let result, _ = run_on points grid 100 in
    if result.Privcluster.Good_radius.zero_shortcut then incr fired
  done;
  check_true "spread data rarely triggers the zero path" (!fired <= 1)

let test_gamma_properties () =
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let g p eps =
    Privcluster.Good_radius.gamma p ~grid ~eps ~delta ~beta
  in
  let practical = Privcluster.Profile.practical in
  let linear = { practical with Privcluster.Profile.radius_grid = Privcluster.Profile.Linear } in
  check_true "gamma positive" (g practical 1.0 > 0.);
  check_float ~tol:1e-6 "gamma ~ 1/eps" 2.0 (g practical 1.0 /. g practical 2.0);
  check_true "geometric grid has smaller gamma" (g practical 1.0 < g linear 1.0)

let test_backend_agreement () =
  (* Both backends find a reasonable radius on a clear planted cluster. *)
  let _, grid, w = small_workload ~n:800 ~fraction:0.6 ~radius:0.05 () in
  let t = 400 in
  List.iter
    (fun backend ->
      let profile = { Privcluster.Profile.practical with Privcluster.Profile.backend } in
      let result, idx = run_on ~profile w.Workload.Synth.points grid t in
      let counts =
        Geometry.Pointset.counts_within idx ~radius:result.Privcluster.Good_radius.radius
      in
      let best = Array.fold_left max 0 counts in
      check_true "backend covers t - certified"
        (float_of_int best >= float_of_int t -. result.Privcluster.Good_radius.delta_bound))
    [ Privcluster.Profile.Rec_concave; Privcluster.Profile.Binary_search ]

let test_validation () =
  let _, grid, w = small_workload ~n:100 () in
  let r = rng () in
  let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Workload.Synth.points) in
  Alcotest.check_raises "t range" (Invalid_argument "Good_radius.run: t must be in [1, n]")
    (fun () ->
      ignore
        (Privcluster.Good_radius.run r Privcluster.Profile.practical ~grid ~eps:1.0 ~delta ~beta
           ~t:101 idx))

let test_score_evals_bounded () =
  (* Memoization keeps the number of distinct L evaluations at most the
     candidate count. *)
  let _, grid, w = small_workload ~n:300 () in
  let result, _ = run_on w.Workload.Synth.points grid 150 in
  check_true "evals bounded by candidates"
    (result.Privcluster.Good_radius.score_evals <= Geometry.Grid.geometric_candidates grid)

let suite =
  [
    case "planted cluster: radius bounds and coverage" test_planted_cluster_radius_bounds;
    case "zero shortcut on duplicates" test_zero_shortcut_on_duplicates;
    case "no zero shortcut on spread data" test_no_zero_shortcut_on_spread_data;
    case "gamma properties" test_gamma_properties;
    case "both backends meet the guarantee" test_backend_agreement;
    case "validation" test_validation;
    case "score evaluations bounded" test_score_evals_bounded;
  ]
