#!/usr/bin/env bash
# CI smoke for privclusterd: serve on a Unix socket, drive an 8-job batch
# through the client, scrape the metrics exposition twice under load
# (counters must be monotone between scrapes), evaluate SLO health,
# exercise exhaustive head-sampling into the exemplar ring, SIGTERM, and
# require a clean drain (exit 0).  The WAL, the daemon trace, both
# scrapes, the health report and the slow-log exemplars are left in
# $OUT_DIR for upload as CI artifacts.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${OUT_DIR:-daemon-smoke}"
mkdir -p "$OUT_DIR"
rm -rf "$OUT_DIR"/slow
rm -f "$OUT_DIR"/privclusterd.wal "$OUT_DIR"/daemon-trace.json \
      "$OUT_DIR"/serve.log "$OUT_DIR"/metrics.txt "$OUT_DIR"/metrics2.txt \
      "$OUT_DIR"/metrics-table.txt "$OUT_DIR"/health.txt "$OUT_DIR"/run.json

dune build bin/privcluster_cli.exe
CLI=_build/default/bin/privcluster_cli.exe
SOCK="$OUT_DIR/privclusterd.sock"

# --trace-sample 1 head-samples every request's span tree into the
# exemplar ring; sampling is deterministic (a hash of the request key,
# no RNG) so answers are bit-identical to a sampling-off daemon.
"$CLI" serve --socket "$SOCK" --wal "$OUT_DIR/privclusterd.wal" \
  --tenant ci:ci-token --jobs 2 --trace "$OUT_DIR/daemon-trace.json" \
  --trace-sample 1 --slow-log "$OUT_DIR/slow" --slow-keep 16 \
  >"$OUT_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 100); do
  grep -q "privclusterd listening" "$OUT_DIR/serve.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "privclusterd listening" "$OUT_DIR/serve.log"

client() { "$CLI" client "$@" --socket "$SOCK" --tenant ci --token ci-token; }

client ping >/dev/null
client register --dataset smoke --points 800 --axis 128 \
  --budget-eps 6 --budget-delta 1e-4 >/dev/null

cat > "$OUT_DIR/jobs.txt" <<'EOF'
one_cluster t_fraction=0.45 eps=0.5 delta=1e-7 id=c1
one_cluster t_fraction=0.40 eps=0.5 delta=1e-7 id=c2
one_cluster t_fraction=0.45 eps=0.5 delta=1e-7 id=c3 fallback=true
quantile    q=0.5 axis=0 eps=0.2 id=median
quantile    q=0.9 axis=1 eps=0.2 id=q90
one_cluster t_fraction=0.35 eps=0.5 delta=1e-7 id=c4
quantile    q=0.1 axis=0 eps=0.2 id=q10
one_cluster t_fraction=0.45 eps=9.0 delta=1e-7 id=greedy
EOF
client run --dataset smoke --seed 7 "$OUT_DIR/jobs.txt" > "$OUT_DIR/run.json"
grep -q '"status"' "$OUT_DIR/run.json"
# the deliberately greedy job must be refused, not crash the batch
grep -q '"refused"' "$OUT_DIR/run.json"

# First scrape: budget gauges, queue depth, and the serving-telemetry
# families added by the request-latency histograms and burn windows.
client metrics > "$OUT_DIR/metrics.txt"
grep -q 'privcluster_budget_epsilon' "$OUT_DIR/metrics.txt"
grep -q 'privclusterd_queue_depth' "$OUT_DIR/metrics.txt"
grep -q 'privcluster_request_seconds_count' "$OUT_DIR/metrics.txt"
grep -q 'quantile="0.99"' "$OUT_DIR/metrics.txt"
grep -q 'privcluster_queue_wait_seconds' "$OUT_DIR/metrics.txt"
grep -q 'privcluster_budget_burn_rate' "$OUT_DIR/metrics.txt"
grep -q 'privcluster_request_sheds_total' "$OUT_DIR/metrics.txt"

# More load (a cache hit is still a wire request), then scrape again:
# every per-verb request counter must be monotone between the scrapes.
client run --dataset smoke --seed 7 "$OUT_DIR/jobs.txt" >/dev/null
client metrics > "$OUT_DIR/metrics2.txt"
count_sum() {
  grep '^privcluster_request_seconds_count' "$1" \
    | awk '{ s += $NF } END { printf "%d\n", s }'
}
C1=$(count_sum "$OUT_DIR/metrics.txt")
C2=$(count_sum "$OUT_DIR/metrics2.txt")
test "$C1" -gt 0
test "$C2" -gt "$C1"

# The aligned-table rendering must carry the same samples.
client metrics --table > "$OUT_DIR/metrics-table.txt"
grep -q 'privcluster_request_seconds_count' "$OUT_DIR/metrics-table.txt"

# SLO health: nothing should be firing on an idle smoke daemon (health
# exits 4 when any rule fires, failing the smoke under `set -e`).
client health > "$OUT_DIR/health.txt"
grep -q '^status: ' "$OUT_DIR/health.txt"

# Exhaustive sampling must have populated the exemplar ring, and each
# exemplar is a valid trace in its own right.
ls "$OUT_DIR"/slow/exemplar-*.trace.json >/dev/null
for f in "$OUT_DIR"/slow/exemplar-*.trace.json; do
  "$CLI" validate-trace "$f"
done

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"          # a graceful drain must exit 0
trap - EXIT
grep -q "privclusterd: clean drain" "$OUT_DIR/serve.log"
test -s "$OUT_DIR/privclusterd.wal"
"$CLI" validate-trace "$OUT_DIR/daemon-trace.json"
echo "daemon smoke OK"
