test/test_one_cluster.ml: Alcotest Array Format Geometry List Prim Printf Privcluster String Testutil Workload
