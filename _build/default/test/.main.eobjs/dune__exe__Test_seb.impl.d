test/test_seb.ml: Alcotest Array Float Geometry Prim QCheck2 Testutil
