lib/prim/gaussian_mech.ml: Array Float Rng
