type score = {
  covered : int;
  delta_measured : int;
  ratio_vs_hi : float;
  ratio_vs_lo : float;
  r_lo : float;
  r_hi : float;
}

let score_with_bounds ~r_lo ~r_hi ps ~t ~center ~radius =
  let covered = Geometry.Pointset.ball_count ps ~center ~radius in
  let r_lo = Float.min r_lo r_hi in
  let safe_div a b = if b <= 0. then Float.infinity else a /. b in
  {
    covered;
    delta_measured = max 0 (t - covered);
    ratio_vs_hi = safe_div radius r_hi;
    ratio_vs_lo = safe_div radius r_lo;
    r_lo;
    r_hi;
  }

let r_opt_bounds_indexed idx ~t =
  let b = Geometry.Seb.two_approx_indexed idx ~t in
  let r2 = b.Geometry.Seb.radius in
  (r2 /. 2., r2)

let score ?planted_radius ps ~t ~center ~radius =
  let r_lo, r_hi = Baselines.Nonprivate.r_opt_bounds ps ~t in
  let r_hi = match planted_radius with Some r -> Float.min r_hi r | None -> r_hi in
  score_with_bounds ~r_lo ~r_hi ps ~t ~center ~radius

let tight_radius ps ~center ~t =
  let st = Geometry.Pointset.storage ps and d = Geometry.Pointset.dim ps in
  let dists =
    Array.map
      (fun off -> Geometry.Vec.dist_to_row st ~off ~dim:d center)
      (Geometry.Pointset.row_offsets ps)
  in
  Array.sort Float.compare dists;
  dists.(min (Array.length dists - 1) (max 0 (t - 1)))

let success s ~t ~max_delta ~max_ratio =
  s.covered >= t - max_delta && s.ratio_vs_hi <= max_ratio

let mean = function
  | [] -> Float.nan
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let quantile xs ~q =
  match xs with
  | [] -> Float.nan
  | xs ->
      let a = Array.of_list xs in
      Array.sort Float.compare a;
      let n = Array.length a in
      let pos = q *. float_of_int (n - 1) in
      let i = int_of_float pos in
      if i >= n - 1 then a.(n - 1)
      else
        let frac = pos -. float_of_int i in
        (a.(i) *. (1. -. frac)) +. (a.(i + 1) *. frac)

let median xs = quantile xs ~q:0.5
