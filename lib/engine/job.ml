type mutation_op =
  | Append_synth of { n : int; seed : int; frac : float; radius : float }
  | Retire_range of { from_ : int; count : int }

type kind =
  | One_cluster of { t_fraction : float }
  | K_cluster of { k : int; t_fraction : float }
  | Quantile of { axis : int; q : float }
  | Mutate of mutation_op
  | Standing of { t_fraction : float; periods : int }
  | Local_cluster of { t_fraction : float }
  | Meb of { t_fraction : float; coreset : int }

type spec = {
  id : string;
  kind : kind;
  eps : float;
  delta : float;
  beta : float;
  deadline_s : float option;
  fallback : bool;
}

let kind_name = function
  | One_cluster _ -> "one_cluster"
  | K_cluster _ -> "k_cluster"
  | Quantile _ -> "quantile"
  | Mutate _ -> "mutate"
  | Standing _ -> "standing"
  | Local_cluster _ -> "local_cluster"
  | Meb _ -> "meb_fptas"

let cost spec = { Prim.Dp.eps = spec.eps; delta = spec.delta }

(* The degraded path runs GoodRadius alone at half the job's price: the full
   pipeline splits (ε, δ) evenly between GoodRadius and GoodCenter, so the
   radius-only fallback is priced as exactly its stage share. *)
let fallback_cost spec =
  match spec.kind with
  | One_cluster _ when spec.fallback ->
      Some { Prim.Dp.eps = spec.eps /. 2.; delta = spec.delta /. 2. }
  | _ -> None

(* --- parsing ----------------------------------------------------------- *)

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> tok <> "")

let parse_line ~default_beta ~lineno ~ordinal line =
  let fail fmt = Printf.ksprintf (fun m -> Error (Printf.sprintf "line %d: %s" lineno m)) fmt in
  match split_ws line with
  | [] -> Ok None
  | kind_tok :: kv_toks -> (
      let kvs = ref [] in
      let bad = ref None in
      List.iter
        (fun tok ->
          match String.index_opt tok '=' with
          | None -> if !bad = None then bad := Some tok
          | Some i ->
              kvs :=
                (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1)) :: !kvs)
        kv_toks;
      match !bad with
      | Some tok -> fail "expected key=value, got %S" tok
      | None -> (
          let lookup k = List.assoc_opt k !kvs in
          let known_keys =
            [
              "eps"; "delta"; "beta"; "t_fraction"; "k"; "q"; "axis"; "deadline"; "id"; "fallback";
              "op"; "n"; "seed"; "frac"; "radius"; "from"; "count"; "periods"; "coreset";
            ]
          in
          match List.find_opt (fun (k, _) -> not (List.mem k known_keys)) !kvs with
          | Some (k, _) -> fail "unknown key %S" k
          | None -> (
              let float_of k default =
                match lookup k with
                | None -> Ok default
                | Some v -> (
                    match float_of_string_opt v with
                    | Some f -> Ok f
                    | None -> fail "key %s: not a number: %S" k v)
              in
              let ( let* ) = Result.bind in
              let require_float k =
                match lookup k with
                | None -> fail "%s requires %s=" kind_tok k
                | Some v -> (
                    match float_of_string_opt v with
                    | Some f -> Ok f
                    | None -> fail "key %s: not a number: %S" k v)
              in
              let require_int k =
                match lookup k with
                | None -> fail "%s requires %s=" kind_tok k
                | Some v -> (
                    match int_of_string_opt v with
                    | Some i -> Ok i
                    | None -> fail "key %s: not an integer: %S" k v)
              in
              (* [free_of_charge] kinds (mutations) touch no private data
                 through a mechanism, so eps/delta default to 0 instead of
                 being required. *)
              let* kind, default_delta, free_of_charge =
                match kind_tok with
                | "one_cluster" ->
                    let* t_fraction = float_of "t_fraction" 0.5 in
                    Ok (One_cluster { t_fraction }, None, false)
                | "k_cluster" -> (
                    match lookup "k" with
                    | None -> fail "k_cluster requires k="
                    | Some kv -> (
                        match int_of_string_opt kv with
                        | None | Some 0 -> fail "key k: not a positive integer: %S" kv
                        | Some k when k < 0 -> fail "key k: not a positive integer: %S" kv
                        | Some k ->
                            let* t_fraction = float_of "t_fraction" 0.5 in
                            Ok (K_cluster { k; t_fraction }, None, false)))
                | "quantile" ->
                    let* q = float_of "q" 0.5 in
                    let* axis = float_of "axis" 0. in
                    if q < 0. || q > 1. then fail "key q: must be in [0, 1]"
                    else Ok (Quantile { axis = int_of_float axis; q }, Some 0., false)
                | "mutate" -> (
                    match lookup "op" with
                    | None -> fail "mutate requires op=append|retire"
                    | Some "append" ->
                        let* n = require_int "n" in
                        let* seed = require_int "seed" in
                        let* frac = float_of "frac" 0.5 in
                        let* radius = float_of "radius" 0.05 in
                        if n < 1 then fail "key n: must be >= 1"
                        else Ok (Mutate (Append_synth { n; seed; frac; radius }), Some 0., true)
                    | Some "retire" ->
                        let* from_ = require_int "from" in
                        let* count = require_int "count" in
                        if from_ < 0 then fail "key from: must be >= 0"
                        else if count < 1 then fail "key count: must be >= 1"
                        else Ok (Mutate (Retire_range { from_; count }), Some 0., true)
                    | Some op -> fail "key op: expected append|retire, got %S" op)
                | "standing" ->
                    let* t_fraction = float_of "t_fraction" 0.5 in
                    let* periods = require_int "periods" in
                    if periods < 1 then fail "key periods: must be >= 1"
                    else Ok (Standing { t_fraction; periods }, None, false)
                | "local_cluster" ->
                    (* The LDP pipeline is pure ε, so delta defaults to 0. *)
                    let* t_fraction = float_of "t_fraction" 0.5 in
                    Ok (Local_cluster { t_fraction }, Some 0., false)
                | "meb_fptas" -> (
                    let* t_fraction = float_of "t_fraction" 0.5 in
                    match lookup "coreset" with
                    | None -> Ok (Meb { t_fraction; coreset = 400 }, None, false)
                    | Some cv -> (
                        match int_of_string_opt cv with
                        | None | Some 0 -> fail "key coreset: not a positive integer: %S" cv
                        | Some c when c < 0 -> fail "key coreset: not a positive integer: %S" cv
                        | Some coreset -> Ok (Meb { t_fraction; coreset }, None, false)))
                | k ->
                    fail
                      "unknown job kind %S (expected \
                       one_cluster|k_cluster|quantile|mutate|standing|local_cluster|meb_fptas)"
                      k
              in
              let* eps = if free_of_charge then float_of "eps" 0. else require_float "eps" in
              let* delta =
                match default_delta with Some d -> float_of "delta" d | None -> require_float "delta"
              in
              let* beta = float_of "beta" default_beta in
              let* deadline = float_of "deadline" Float.nan in
              let* fallback =
                match lookup "fallback" with
                | None -> Ok false
                | Some ("true" | "1") -> Ok true
                | Some ("false" | "0") -> Ok false
                | Some v -> fail "key fallback: expected true|false, got %S" v
              in
              if (not free_of_charge) && eps <= 0. then fail "key eps: must be > 0"
              else if delta < 0. || delta >= 1. then fail "key delta: must be in [0, 1)"
              else if fallback && (match kind with One_cluster _ -> false | _ -> true) then
                fail "key fallback: only one_cluster jobs have a degradation fallback"
              else
                Ok
                  (Some
                     {
                       id =
                         (match lookup "id" with
                         | Some id -> id
                         | None -> Printf.sprintf "j%d" ordinal);
                       kind;
                       eps;
                       delta;
                       beta;
                       deadline_s = (if Float.is_nan deadline then None else Some deadline);
                       fallback;
                     }))))

let parse ?(default_beta = 0.1) contents =
  let lines = String.split_on_char '\n' contents in
  let rec go lineno ordinal acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line =
          match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line
        in
        match parse_line ~default_beta ~lineno ~ordinal (String.trim line) with
        | Error e -> Error e
        | Ok None -> go (lineno + 1) ordinal acc rest
        | Ok (Some spec) -> go (lineno + 1) (ordinal + 1) (spec :: acc) rest)
  in
  go 1 1 [] lines

let spec_to_line spec =
  let b = Buffer.create 64 in
  Buffer.add_string b (kind_name spec.kind);
  (match spec.kind with
  | One_cluster { t_fraction } -> Buffer.add_string b (Printf.sprintf " t_fraction=%g" t_fraction)
  | K_cluster { k; t_fraction } ->
      Buffer.add_string b (Printf.sprintf " k=%d t_fraction=%g" k t_fraction)
  | Quantile { axis; q } -> Buffer.add_string b (Printf.sprintf " q=%g axis=%d" q axis)
  | Mutate (Append_synth { n; seed; frac; radius }) ->
      Buffer.add_string b (Printf.sprintf " op=append n=%d seed=%d frac=%g radius=%g" n seed frac radius)
  | Mutate (Retire_range { from_; count }) ->
      Buffer.add_string b (Printf.sprintf " op=retire from=%d count=%d" from_ count)
  | Standing { t_fraction; periods } ->
      Buffer.add_string b (Printf.sprintf " t_fraction=%g periods=%d" t_fraction periods)
  | Local_cluster { t_fraction } ->
      Buffer.add_string b (Printf.sprintf " t_fraction=%g" t_fraction)
  | Meb { t_fraction; coreset } ->
      Buffer.add_string b (Printf.sprintf " t_fraction=%g coreset=%d" t_fraction coreset));
  Buffer.add_string b (Printf.sprintf " eps=%g delta=%g beta=%g id=%s" spec.eps spec.delta spec.beta spec.id);
  (match spec.deadline_s with
  | Some d -> Buffer.add_string b (Printf.sprintf " deadline=%g" d)
  | None -> ());
  if spec.fallback then Buffer.add_string b " fallback=true";
  Buffer.contents b

(* --- results ----------------------------------------------------------- *)

type ball = { center : Geometry.Vec.t; radius : float; covered : int }

type output =
  | Cluster of { ball : ball; t : int; ratio_vs_hi : float; delta_bound : float }
  | Clusters of { balls : ball list; uncovered : int; failures : int }
  | Quantile_value of { value : float; target_rank : float }
  | Radius of { radius : float; t : int; delta_bound : float }
  | Epoch_advanced of { epoch : int; n : int }
  | Standing_accepted of { periods : int }

type status =
  | Completed of output
  | Refused of string
  | Timed_out of { elapsed_ms : float }
  | Solver_failed of string
  | Degraded of { output : output; reason : string }

let status_name = function
  | Completed _ -> "ok"
  | Refused _ -> "refused"
  | Timed_out _ -> "timeout"
  | Solver_failed _ -> "failed"
  | Degraded _ -> "degraded"

type result = { spec : spec; status : status; latency_ms : float; attempts : int }

let ball_json { center; radius; covered } =
  Json.Obj
    [
      ("center", Json.List (Array.to_list (Array.map (fun c -> Json.Float c) center)));
      ("radius", Json.Float radius);
      ("covered", Json.Int covered);
    ]

let output_json = function
  | Cluster { ball; t; ratio_vs_hi; delta_bound } ->
      Json.Obj
        [
          ("ball", ball_json ball);
          ("t", Json.Int t);
          ("ratio_vs_hi", Json.Float ratio_vs_hi);
          ("delta_bound", Json.Float delta_bound);
        ]
  | Clusters { balls; uncovered; failures } ->
      Json.Obj
        [
          ("balls", Json.List (List.map ball_json balls));
          ("uncovered", Json.Int uncovered);
          ("failures", Json.Int failures);
        ]
  | Quantile_value { value; target_rank } ->
      Json.Obj [ ("value", Json.Float value); ("target_rank", Json.Float target_rank) ]
  | Radius { radius; t; delta_bound } ->
      Json.Obj
        [
          ("radius", Json.Float radius);
          ("t", Json.Int t);
          ("delta_bound", Json.Float delta_bound);
        ]
  | Epoch_advanced { epoch; n } -> Json.Obj [ ("epoch", Json.Int epoch); ("n", Json.Int n) ]
  | Standing_accepted { periods } -> Json.Obj [ ("periods", Json.Int periods) ]

let result_to_json r =
  let base =
    [
      ("id", Json.String r.spec.id);
      ("kind", Json.String (kind_name r.spec.kind));
      ("status", Json.String (status_name r.status));
      ("eps", Json.Float r.spec.eps);
      ("delta", Json.Float r.spec.delta);
      ("latency_ms", Json.Float r.latency_ms);
      ("attempts", Json.Int r.attempts);
    ]
  in
  let extra =
    match r.status with
    | Completed o -> [ ("output", output_json o) ]
    | Refused msg -> [ ("reason", Json.String msg) ]
    | Timed_out { elapsed_ms } -> [ ("elapsed_ms", Json.Float elapsed_ms) ]
    | Solver_failed msg -> [ ("reason", Json.String msg) ]
    | Degraded { output; reason } ->
        [ ("output", output_json output); ("reason", Json.String reason) ]
  in
  Json.Obj (base @ extra)

let output_detail = function
  | Cluster { ball; t; ratio_vs_hi; _ } ->
      Printf.sprintf "radius %.4f covered %d/%d (w=%.2f)" ball.radius ball.covered t ratio_vs_hi
  | Clusters { balls; uncovered; failures } ->
      Printf.sprintf "%d balls, %d uncovered, %d failed iters" (List.length balls) uncovered
        failures
  | Quantile_value { value; target_rank } ->
      Printf.sprintf "value %.4f (target rank %.0f)" value target_rank
  | Radius { radius; t; _ } -> Printf.sprintf "radius %.4f for t=%d (no center)" radius t
  | Epoch_advanced { epoch; n } -> Printf.sprintf "epoch %d (%d points)" epoch n
  | Standing_accepted { periods } -> Printf.sprintf "standing query accepted for %d periods" periods

let detail r =
  match r.status with
  | Completed o -> output_detail o
  | Refused msg | Solver_failed msg -> msg
  | Timed_out { elapsed_ms } -> Printf.sprintf "deadline exceeded after %.0f ms" elapsed_ms
  | Degraded { output; reason } -> Printf.sprintf "%s [degraded: %s]" (output_detail output) reason

let pp_result ppf r =
  Format.fprintf ppf "%-12s %-12s %-8s %6.1fms  %s" r.spec.id (kind_name r.spec.kind)
    (status_name r.status) r.latency_ms (detail r)

(* --- result caching ----------------------------------------------------- *)

(* The mechanism parameters of a spec, excluding identity and scheduling
   knobs (id, deadline, fallback): two specs with equal signatures drive
   the pipeline identically, so given the same dataset epoch and derived
   RNG stream they produce bit-identical outputs.  Floats are rendered
   with %h (exact hex) — no two distinct parameterizations collide. *)
let signature spec =
  let b = Buffer.create 64 in
  Buffer.add_string b (kind_name spec.kind);
  (match spec.kind with
  | One_cluster { t_fraction } -> Buffer.add_string b (Printf.sprintf " t_fraction=%h" t_fraction)
  | K_cluster { k; t_fraction } ->
      Buffer.add_string b (Printf.sprintf " k=%d t_fraction=%h" k t_fraction)
  | Quantile { axis; q } -> Buffer.add_string b (Printf.sprintf " axis=%d q=%h" axis q)
  | Mutate (Append_synth { n; seed; frac; radius }) ->
      Buffer.add_string b (Printf.sprintf " op=append n=%d seed=%d frac=%h radius=%h" n seed frac radius)
  | Mutate (Retire_range { from_; count }) ->
      Buffer.add_string b (Printf.sprintf " op=retire from=%d count=%d" from_ count)
  | Standing { t_fraction; periods } ->
      Buffer.add_string b (Printf.sprintf " t_fraction=%h periods=%d" t_fraction periods)
  | Local_cluster { t_fraction } ->
      Buffer.add_string b (Printf.sprintf " t_fraction=%h" t_fraction)
  | Meb { t_fraction; coreset } ->
      Buffer.add_string b (Printf.sprintf " t_fraction=%h coreset=%d" t_fraction coreset));
  Buffer.add_string b (Printf.sprintf " eps=%h delta=%h beta=%h" spec.eps spec.delta spec.beta);
  Buffer.contents b

(* Exact (hex-float) codec for outputs, used by the result cache's WAL
   journaling: a replayed cache entry must reproduce the recorded answer
   bit-for-bit, which the human-readable %.17g-free [output_json] cannot
   promise. *)

let hex x = Json.String (Printf.sprintf "%h" x)

let dehex = function
  | Json.String s -> ( match float_of_string_opt s with Some f -> Ok f | None -> Error "bad float")
  | Json.Float f -> Ok f
  | Json.Int i -> Ok (float_of_int i)
  | _ -> Error "expected float"

let ball_to_wire { center; radius; covered } =
  Json.Obj
    [
      ("center", Json.List (Array.to_list (Array.map hex center)));
      ("radius", hex radius);
      ("covered", Json.Int covered);
    ]

let output_to_wire = function
  | Cluster { ball; t; ratio_vs_hi; delta_bound } ->
      Json.Obj
        [
          ("kind", Json.String "cluster");
          ("ball", ball_to_wire ball);
          ("t", Json.Int t);
          ("ratio_vs_hi", hex ratio_vs_hi);
          ("delta_bound", hex delta_bound);
        ]
  | Clusters { balls; uncovered; failures } ->
      Json.Obj
        [
          ("kind", Json.String "clusters");
          ("balls", Json.List (List.map ball_to_wire balls));
          ("uncovered", Json.Int uncovered);
          ("failures", Json.Int failures);
        ]
  | Quantile_value { value; target_rank } ->
      Json.Obj
        [ ("kind", Json.String "quantile"); ("value", hex value); ("target_rank", hex target_rank) ]
  | Radius { radius; t; delta_bound } ->
      Json.Obj
        [
          ("kind", Json.String "radius");
          ("radius", hex radius);
          ("t", Json.Int t);
          ("delta_bound", hex delta_bound);
        ]
  | Epoch_advanced { epoch; n } ->
      Json.Obj [ ("kind", Json.String "epoch"); ("epoch", Json.Int epoch); ("n", Json.Int n) ]
  | Standing_accepted { periods } ->
      Json.Obj [ ("kind", Json.String "standing"); ("periods", Json.Int periods) ]

let output_of_wire json =
  let ( let* ) = Result.bind in
  let field k =
    match Json.member k json with Some v -> Ok v | None -> Error ("missing field " ^ k)
  in
  let int_field k =
    let* v = field k in
    match Json.to_int v with Some i -> Ok i | None -> Error ("field " ^ k ^ ": expected int")
  in
  let float_field k =
    let* v = field k in
    dehex v
  in
  let ball_of = function
    | Json.Obj _ as b -> (
        let bfield k =
          match Json.member k b with Some v -> Ok v | None -> Error ("ball: missing " ^ k)
        in
        let* center = bfield "center" in
        let* radius = Result.bind (bfield "radius") dehex in
        let* covered =
          Result.bind (bfield "covered") (fun v ->
              match Json.to_int v with Some i -> Ok i | None -> Error "ball: covered not an int")
        in
        match center with
        | Json.List cs ->
            let* coords =
              List.fold_left
                (fun acc c ->
                  let* acc = acc in
                  let* f = dehex c in
                  Ok (f :: acc))
                (Ok []) cs
            in
            Ok { center = Array.of_list (List.rev coords); radius; covered }
        | _ -> Error "ball: center not a list")
    | _ -> Error "expected ball object"
  in
  let* kind = Result.bind (field "kind") (fun v ->
      match Json.to_str v with Some s -> Ok s | None -> Error "field kind: expected string")
  in
  match kind with
  | "cluster" ->
      let* ball = Result.bind (field "ball") ball_of in
      let* t = int_field "t" in
      let* ratio_vs_hi = float_field "ratio_vs_hi" in
      let* delta_bound = float_field "delta_bound" in
      Ok (Cluster { ball; t; ratio_vs_hi; delta_bound })
  | "clusters" ->
      let* balls_json = field "balls" in
      let* balls =
        match balls_json with
        | Json.List bs ->
            List.fold_left
              (fun acc b ->
                let* acc = acc in
                let* ball = ball_of b in
                Ok (ball :: acc))
              (Ok []) bs
            |> Result.map List.rev
        | _ -> Error "field balls: expected list"
      in
      let* uncovered = int_field "uncovered" in
      let* failures = int_field "failures" in
      Ok (Clusters { balls; uncovered; failures })
  | "quantile" ->
      let* value = float_field "value" in
      let* target_rank = float_field "target_rank" in
      Ok (Quantile_value { value; target_rank })
  | "radius" ->
      let* radius = float_field "radius" in
      let* t = int_field "t" in
      let* delta_bound = float_field "delta_bound" in
      Ok (Radius { radius; t; delta_bound })
  | "epoch" ->
      let* epoch = int_field "epoch" in
      let* n = int_field "n" in
      Ok (Epoch_advanced { epoch; n })
  | "standing" ->
      let* periods = int_field "periods" in
      Ok (Standing_accepted { periods })
  | k -> Error ("unknown output kind " ^ k)
