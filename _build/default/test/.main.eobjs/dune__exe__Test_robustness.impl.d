test/test_robustness.ml: Alcotest Array Baselines Float Geometry Prim Privcluster Recconcave Testutil Workload
