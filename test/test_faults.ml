(* The engine's failure model: fault-schedule parsing and determinism, pool
   retries and worker supervision, accountant reservations, and the headline
   robustness claims — a crash-before-output fault schedule changes neither
   the batch outputs nor the accountant's final spend, and a degraded job
   charges exactly what was reserved for it at admission. *)

open Testutil

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let p ~eps ~delta = { Prim.Dp.eps; delta }

(* --- Faults: schedules --------------------------------------------------- *)

let test_parse_roundtrip () =
  let t =
    match Engine.Faults.parse "crash@2, stall@5=0.25, kill@7x3" with
    | Ok t -> t
    | Error e -> Alcotest.failf "parse failed: %s" e
  in
  let lookup index attempt = Engine.Faults.lookup t ~index ~attempt in
  check_true "crash@2 on first attempt" (lookup 2 0 = Some Engine.Faults.Crash);
  check_true "crash@2 not on retry" (lookup 2 1 = None);
  check_true "stall parsed with duration" (lookup 5 0 = Some (Engine.Faults.Stall 0.25));
  check_true "kill@7x3 covers attempts 0-2"
    (lookup 7 0 = Some Engine.Faults.Kill_worker
    && lookup 7 2 = Some Engine.Faults.Kill_worker
    && lookup 7 3 = None);
  check_true "unlisted index fault-free" (lookup 0 0 = None);
  (* to_string must parse back to the same schedule. *)
  (match Engine.Faults.parse (Engine.Faults.to_string t) with
  | Error e -> Alcotest.failf "roundtrip parse failed: %s" e
  | Ok t' ->
      List.iter
        (fun (i, a) ->
          check_true
            (Printf.sprintf "roundtrip lookup (%d, %d)" i a)
            (Engine.Faults.lookup t ~index:i ~attempt:a
            = Engine.Faults.lookup t' ~index:i ~attempt:a))
        [ (2, 0); (2, 1); (5, 0); (7, 0); (7, 2); (7, 3); (0, 0) ]);
  check_true "empty parses to none"
    (match Engine.Faults.parse "" with Ok t -> Engine.Faults.is_none t | Error _ -> false);
  check_true "'none' parses to none"
    (match Engine.Faults.parse "none" with Ok t -> Engine.Faults.is_none t | Error _ -> false)

let test_parse_errors () =
  List.iter
    (fun s ->
      match Engine.Faults.parse s with
      | Ok _ -> Alcotest.failf "accepted bad schedule %S" s
      | Error e -> check_true (Printf.sprintf "error for %S non-empty" s) (String.length e > 0))
    [
      "bogus@1";
      "stall@2";  (* missing duration *)
      "crash@-1";
      "crash@2x0";
      "crash";
      "seed=1";  (* missing rate *)
      "seed=1,rate=2";
      "seed=1,rate=0.5,kinds=stall";  (* stall not replayable *)
      "seed=1,rate=0.5,attempts=0";
    ]

let test_seeded_deterministic () =
  let mk () = Engine.Faults.seeded ~seed:42 ~rate:0.4 () in
  let a = mk () and b = mk () in
  for i = 0 to 80 do
    check_true
      (Printf.sprintf "seeded lookup %d stable" i)
      (Engine.Faults.lookup a ~index:i ~attempt:0 = Engine.Faults.lookup b ~index:i ~attempt:0)
  done;
  let fired = ref 0 in
  for i = 0 to 80 do
    if Engine.Faults.lookup a ~index:i ~attempt:0 <> None then incr fired
  done;
  check_true "rate=0.4 fires sometimes, not always" (!fired > 0 && !fired < 81);
  check_true "rate=0 is none" (Engine.Faults.is_none (Engine.Faults.seeded ~seed:1 ~rate:0. ()));
  let all = Engine.Faults.seeded ~seed:1 ~rate:1. () in
  for i = 0 to 20 do
    check_true "rate=1 fires everywhere" (Engine.Faults.lookup all ~index:i ~attempt:0 <> None)
  done;
  (* Seeded roundtrip through the grammar. *)
  match Engine.Faults.parse (Engine.Faults.to_string a) with
  | Error e -> Alcotest.failf "seeded roundtrip failed: %s" e
  | Ok a' ->
      for i = 0 to 80 do
        check_true "seeded roundtrip lookups agree"
          (Engine.Faults.lookup a ~index:i ~attempt:0 = Engine.Faults.lookup a' ~index:i ~attempt:0)
      done

let test_env_roundtrip () =
  let saved = Sys.getenv_opt Engine.Faults.env_var in
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv Engine.Faults.env_var (Option.value ~default:"" saved))
    (fun () ->
      Unix.putenv Engine.Faults.env_var "crash@1";
      let t = Engine.Faults.of_env () in
      check_true "env schedule parsed"
        (Engine.Faults.lookup t ~index:1 ~attempt:0 = Some Engine.Faults.Crash);
      Unix.putenv Engine.Faults.env_var "bogus";
      (match Engine.Faults.of_env () with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "malformed env schedule must not run silently fault-free");
      Unix.putenv Engine.Faults.env_var "";
      check_true "empty env is none" (Engine.Faults.is_none (Engine.Faults.of_env ())))

(* --- Pool: retries and supervision --------------------------------------- *)

let test_pool_retry_recovers () =
  let tasks = Array.init 5 (fun i -> Engine.Pool.task i) in
  let retries_seen = Atomic.make 0 in
  let outcomes =
    Engine.Pool.run ~retries:2 ~backoff_s:1e-5 ~domains:2
      ~on_event:(function
        | Engine.Pool.Task_retry _ -> Atomic.incr retries_seen
        | _ -> ())
      ~f:(fun ~index:_ ~attempt i -> if i = 3 && attempt < 2 then failwith "flaky" else i * 10)
      tasks
  in
  Array.iteri
    (fun i o ->
      match o with
      | Engine.Pool.Done v -> check_int (Printf.sprintf "slot %d" i) (i * 10) v
      | _ -> Alcotest.failf "slot %d did not recover" i)
    outcomes;
  check_int "two retry events" 2 (Atomic.get retries_seen)

let test_pool_retry_exhaustion () =
  let tasks = Array.init 3 (fun i -> Engine.Pool.task i) in
  let outcomes =
    Engine.Pool.run ~retries:2 ~backoff_s:1e-5 ~domains:1
      ~f:(fun ~index:_ ~attempt:_ i -> if i = 1 then failwith "always" else i)
      tasks
  in
  (match outcomes.(1) with
  | Engine.Pool.Failed msg -> check_true "last exception reported" (contains_sub msg "always")
  | _ -> Alcotest.fail "exhausted retries must fail");
  check_true "neighbours unaffected"
    (outcomes.(0) = Engine.Pool.Done 0 && outcomes.(2) = Engine.Pool.Done 2)

let run_kill_recovery ~domains () =
  let n = 6 in
  let tasks = Array.init n (fun i -> Engine.Pool.task i) in
  let restarts = Atomic.make 0 in
  let outcomes =
    Engine.Pool.run ~backoff_s:1e-5 ~max_restarts:n ~domains
      ~on_event:(function
        | Engine.Pool.Worker_restart -> Atomic.incr restarts
        | _ -> ())
      ~f:(fun ~index:_ ~attempt i ->
        if attempt = 0 then raise (Engine.Pool.Worker_crash "simulated") else i + 100)
      tasks
  in
  Array.iteri
    (fun i o ->
      match o with
      | Engine.Pool.Done v -> check_int (Printf.sprintf "slot %d rescheduled" i) (i + 100) v
      | _ -> Alcotest.failf "slot %d lost after worker death" i)
    outcomes;
  check_int "one restart per killed worker" n (Atomic.get restarts)

let test_pool_restart_budget_exhausted () =
  let tasks = Array.init 4 (fun i -> Engine.Pool.task i) in
  let outcomes =
    Engine.Pool.run ~backoff_s:1e-5 ~max_restarts:0 ~domains:2
      ~f:(fun ~index:_ ~attempt:_ _ -> raise (Engine.Pool.Worker_crash "sim"))
      tasks
  in
  Array.iter
    (fun o ->
      match o with
      | Engine.Pool.Failed msg -> check_true "crash absorbed as Failed" (contains_sub msg "worker crashed")
      | _ -> Alcotest.fail "past the restart budget a crash must fail in place")
    outcomes

(* --- Accountant: reservations -------------------------------------------- *)

let test_reservation_protocol () =
  let acc = Engine.Accountant.create ~budget:(p ~eps:1.0 ~delta:1e-6) () in
  check_true "base charge" (Result.is_ok (Engine.Accountant.charge acc (p ~eps:0.4 ~delta:1e-7)));
  let resv =
    match Engine.Accountant.reserve acc ~label:"fb" (p ~eps:0.5 ~delta:1e-7) with
    | Ok r -> r
    | Error _ -> Alcotest.fail "reservation refused with headroom available"
  in
  (* The reservation blocks headroom but is not spent. *)
  check_true "reservation blocks admission" (not (Engine.Accountant.would_accept acc (p ~eps:0.2 ~delta:0.)));
  check_true "over-reserved charge refused"
    (Result.is_error (Engine.Accountant.charge acc (p ~eps:0.2 ~delta:0.)));
  check_float ~tol:1e-12 "spent excludes reservation" 0.4 (Engine.Accountant.spent acc).Prim.Dp.eps;
  check_int "one outstanding reservation" 1 (List.length (Engine.Accountant.reserved acc));
  (* Release frees the headroom. *)
  Engine.Accountant.release acc resv;
  check_int "released" 0 (List.length (Engine.Accountant.reserved acc));
  check_true "headroom back" (Result.is_ok (Engine.Accountant.charge acc (p ~eps:0.5 ~delta:1e-7)));
  (* Commit turns a reservation into a real charge. *)
  let resv2 =
    match Engine.Accountant.reserve acc ~label:"fb2" (p ~eps:0.1 ~delta:0.) with
    | Ok r -> r
    | Error _ -> Alcotest.fail "second reservation refused"
  in
  Engine.Accountant.commit acc resv2;
  check_float ~tol:1e-12 "committed reservation is spent" 1.0 (Engine.Accountant.spent acc).Prim.Dp.eps;
  check_true "committed label in entries"
    (List.mem_assoc "fb2" (Engine.Accountant.entries acc));
  (* Double settlement is a bug in the caller. *)
  match Engine.Accountant.commit acc resv2 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double settle accepted"

(* --- Service: retries, replay, degradation ------------------------------- *)

let oc ?(id = "a") ?(t_fraction = 0.45) ?(eps = 2.0) ?deadline ?(fallback = false) () =
  {
    Engine.Job.id;
    kind = Engine.Job.One_cluster { t_fraction };
    eps;
    delta = 1e-6;
    beta = 0.1;
    deadline_s = deadline;
    fallback;
  }

let qt ?(id = "q") ?(eps = 0.3) () =
  {
    Engine.Job.id;
    kind = Engine.Job.Quantile { axis = 0; q = 0.5 };
    eps;
    delta = 0.;
    beta = 0.1;
    deadline_s = None;
    fallback = false;
  }

let canonical results =
  List.map
    (fun (r : Engine.Job.result) ->
      (r.Engine.Job.spec.Engine.Job.id, Engine.Job.status_name r.Engine.Job.status, Engine.Job.detail r))
    results

let mk_service ?(domains = 2) ?(retries = 2) ?(faults = Engine.Faults.none) ?(seed = 11) () =
  Engine.Service.create ~domains ~seed ~retries ~backoff_s:1e-4 ~faults ()

(* The acceptance diff: a crash/kill schedule on a mixed batch, at 1 and at 4
   domains, must reproduce the fault-free outputs bit-for-bit and leave the
   accountant at the identical final spend. *)
let test_faulted_batch_bit_identical () =
  let _, grid, w = small_workload ~n:1500 ~axis:256 ~radius:0.05 () in
  let specs = [ oc ~id:"a" (); qt ~id:"q" (); oc ~id:"b" ~t_fraction:0.4 () ] in
  let run ~domains ~retries ~faults =
    let service = mk_service ~domains ~retries ~faults () in
    let ds =
      Engine.Service.register service ~name:"w" ~grid ~budget:(p ~eps:10. ~delta:1e-4)
        w.Workload.Synth.points
    in
    let results = Engine.Service.run_batch service ~dataset:ds specs in
    (service, ds, results)
  in
  let _, ds0, reference = run ~domains:1 ~retries:0 ~faults:Engine.Faults.none in
  check_true "reference batch all ok"
    (List.for_all
       (fun (r : Engine.Job.result) -> Engine.Job.status_name r.Engine.Job.status = "ok")
       reference);
  let spent0 = Engine.Accountant.spent (Engine.Registry.accountant ds0) in
  let faults =
    match Engine.Faults.parse "crash@0,kill@2" with Ok f -> f | Error e -> Alcotest.fail e
  in
  List.iter
    (fun domains ->
      let service, ds, results = run ~domains ~retries:3 ~faults in
      Alcotest.(check (list (triple string string string)))
        (Printf.sprintf "faulted run identical at %d domains" domains)
        (canonical reference) (canonical results);
      let spent = Engine.Accountant.spent (Engine.Registry.accountant ds) in
      check_float ~tol:0. "spend eps identical under faults" spent0.Prim.Dp.eps spent.Prim.Dp.eps;
      check_float ~tol:0. "spend delta identical under faults" spent0.Prim.Dp.delta
        spent.Prim.Dp.delta;
      check_true "retry counted"
        (Engine.Telemetry.counter (Engine.Service.telemetry service) "retries" >= 1);
      check_true "restart counted"
        (Engine.Telemetry.counter (Engine.Service.telemetry service) "worker_restarts" >= 1);
      (* Replayed attempts are visible in the results. *)
      check_true "job 0 took two attempts"
        ((List.nth results 0).Engine.Job.attempts = 2))
    [ 1; 4 ]

let test_degraded_charges_exact_reservation () =
  let _, grid, w = small_workload ~n:1500 ~axis:256 ~radius:0.05 () in
  let service = mk_service ~domains:2 () in
  let ds =
    Engine.Service.register service ~name:"w" ~grid ~budget:(p ~eps:20. ~delta:1e-4)
      w.Workload.Synth.points
  in
  let specs =
    [
      oc ~id:"ok_fb" ~fallback:true ();  (* completes: reservation released *)
      oc ~id:"late_fb" ~eps:1.0 ~deadline:0. ~fallback:true ();  (* degrades *)
    ]
  in
  let results = Engine.Service.run_batch service ~dataset:ds specs in
  let statuses =
    List.map (fun (r : Engine.Job.result) -> Engine.Job.status_name r.Engine.Job.status) results
  in
  Alcotest.(check (list string)) "ok then degraded" [ "ok"; "degraded" ] statuses;
  (match (List.nth results 1).Engine.Job.status with
  | Engine.Job.Degraded { output = Engine.Job.Radius { radius; t; _ }; reason } ->
      check_true "fallback radius positive" (radius > 0.);
      check_int "fallback target" 675 t;
      check_true "reason names the deadline" (contains_sub reason "deadline")
  | _ -> Alcotest.fail "expected a Radius-output degradation");
  let acc = Engine.Registry.accountant ds in
  (* Main charges 2.0 + 1.0; committed fallback exactly the reserved half of
     late_fb's (1.0, 1e-6); ok_fb's reservation fully released. *)
  check_float ~tol:1e-12 "spend = charges + committed reservation" 3.5
    (Engine.Accountant.spent acc).Prim.Dp.eps;
  check_float ~tol:1e-18 "delta likewise" 2.5e-6 (Engine.Accountant.spent acc).Prim.Dp.delta;
  check_int "no outstanding reservations" 0 (List.length (Engine.Accountant.reserved acc));
  check_true "committed fallback labelled"
    (List.mem_assoc "late_fb:fallback" (Engine.Accountant.entries acc));
  check_true "released fallback not spent"
    (not (List.mem_assoc "ok_fb:fallback" (Engine.Accountant.entries acc)));
  check_int "degraded counter" 1 (Engine.Telemetry.counter (Engine.Service.telemetry service) "degraded");
  check_int "degraded in status counts" 1
    (Engine.Telemetry.count (Engine.Service.telemetry service) ~status:"degraded" ())

let test_no_headroom_disables_fallback () =
  let _, grid, w = small_workload () in
  let service = mk_service ~domains:1 () in
  let ds =
    Engine.Service.register service ~name:"w" ~grid ~budget:(p ~eps:1.0 ~delta:1e-5)
      w.Workload.Synth.points
  in
  (* 0.9 admitted; its 0.45 fallback reservation does not fit — the job must
     still run (here: time out), without degrading. *)
  let results =
    Engine.Service.run_batch service ~dataset:ds
      [ oc ~id:"tight" ~eps:0.9 ~deadline:0. ~fallback:true () ]
  in
  (match (List.nth results 0).Engine.Job.status with
  | Engine.Job.Timed_out _ -> ()
  | s -> Alcotest.failf "expected plain timeout, got %s" (Engine.Job.status_name s));
  let acc = Engine.Registry.accountant ds in
  check_float ~tol:1e-12 "only the main charge spent" 0.9 (Engine.Accountant.spent acc).Prim.Dp.eps;
  check_int "no outstanding reservations" 0 (List.length (Engine.Accountant.reserved acc))

let test_attempt_limit_keeps_charge () =
  let _, grid, w = small_workload () in
  let faults =
    match Engine.Faults.parse "crash@0x5" with Ok f -> f | Error e -> Alcotest.fail e
  in
  let service = mk_service ~domains:1 ~retries:1 ~faults () in
  let ds =
    Engine.Service.register service ~name:"w" ~grid ~budget:(p ~eps:1.0 ~delta:1e-5)
      w.Workload.Synth.points
  in
  let results = Engine.Service.run_batch service ~dataset:ds [ qt ~id:"doomed" () ] in
  (match (List.nth results 0).Engine.Job.status with
  | Engine.Job.Solver_failed msg -> check_true "injected crash named" (contains_sub msg "injected crash")
  | s -> Alcotest.failf "expected failed, got %s" (Engine.Job.status_name s));
  check_int "attempt limit consumed" 2 (List.nth results 0).Engine.Job.attempts;
  (* The admission charge is never refunded — noise may have been drawn. *)
  check_float ~tol:1e-12 "failed job keeps its charge" 0.3
    (Engine.Accountant.spent (Engine.Registry.accountant ds)).Prim.Dp.eps

(* Spend invariance under arbitrary schedules, and full result invariance
   under survivable ones: admission precedes execution, failed jobs keep
   their charge, retries replay their stream — so no seeded crash/kill
   schedule (attempts=1 ≤ retries) can move either the outputs or the final
   ledger. *)
let test_qcheck_spend_invariant =
  let _, grid, w = small_workload () in
  let specs = List.init 4 (fun i -> qt ~id:(Printf.sprintf "q%d" i) ~eps:0.3 ()) in
  let run ~faults =
    let service = mk_service ~domains:2 ~retries:2 ~faults () in
    let ds =
      Engine.Service.register service ~name:"w" ~grid ~budget:(p ~eps:1.0 ~delta:1e-5)
        w.Workload.Synth.points
    in
    let results = Engine.Service.run_batch service ~dataset:ds specs in
    (canonical results, Engine.Accountant.spent (Engine.Registry.accountant ds))
  in
  let reference = lazy (run ~faults:Engine.Faults.none) in
  qcheck ~count:15 "accountant spend and outputs independent of fault schedule"
    QCheck2.Gen.(pair (int_range 0 999) (int_range 0 100))
    (fun (seed, rate100) ->
      let ref_canon, ref_spent = Lazy.force reference in
      let faults = Engine.Faults.seeded ~seed ~rate:(float_of_int rate100 /. 100.) () in
      let canon, spent = run ~faults in
      canon = ref_canon
      && spent.Prim.Dp.eps = ref_spent.Prim.Dp.eps
      && spent.Prim.Dp.delta = ref_spent.Prim.Dp.delta)

(* Reservation-protocol model check: under an arbitrary interleaving of
   reserve / commit / release / charge operations, the accountant must
   never double-charge (its spend matches a simple replay model that adds
   each price exactly once, on commit or charge), and once every
   outstanding reservation is settled the reserved list is empty again.
   The budget is set far above anything the interleaving can spend, so
   every operation is accepted and the model stays exact. *)
let test_qcheck_reservation_interleavings =
  qcheck ~count:200 "reserve/commit/release interleavings settle cleanly"
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 5))
    (fun ops ->
      let acc = Engine.Accountant.create ~budget:(p ~eps:1e6 ~delta:0.5) () in
      let live = ref [] in
      let model_eps = ref 0. and model_delta = ref 0. in
      let spend (pr : Prim.Dp.params) =
        model_eps := !model_eps +. pr.Prim.Dp.eps;
        model_delta := !model_delta +. pr.Prim.Dp.delta
      in
      let price i =
        p
          ~eps:(0.01 *. float_of_int (1 + (i mod 7)))
          ~delta:(1e-9 *. float_of_int (i mod 3))
      in
      List.iteri
        (fun i op ->
          match op with
          | 0 | 1 -> (
              (* Reserve (twice as likely as the other ops, to keep a pool
                 of outstanding reservations alive). *)
              match
                Engine.Accountant.reserve acc ~label:(Printf.sprintf "r%d" i) (price i)
              with
              | Ok r -> live := (r, price i) :: !live
              | Error _ -> ())
          | 2 -> (
              (* Commit the newest outstanding reservation. *)
              match !live with
              | (r, pr) :: tl ->
                  Engine.Accountant.commit acc r;
                  live := tl;
                  spend pr
              | [] -> ())
          | 3 -> (
              (* Release the newest outstanding reservation. *)
              match !live with
              | (r, _) :: tl ->
                  Engine.Accountant.release acc r;
                  live := tl
              | [] -> ())
          | 4 -> (
              (* Commit the oldest outstanding reservation. *)
              match List.rev !live with
              | (r, pr) :: _ ->
                  Engine.Accountant.commit acc r;
                  live := List.filter (fun (x, _) -> x != r) !live;
                  spend pr
              | [] -> ())
          | _ -> (
              match
                Engine.Accountant.charge acc ~label:(Printf.sprintf "c%d" i) (price i)
              with
              | Ok () -> spend (price i)
              | Error _ -> ()))
        ops;
      (* Settle every outstanding reservation, then nothing may linger and
         the ledger must equal the replay model. *)
      List.iter (fun (r, _) -> Engine.Accountant.release acc r) !live;
      let spent = Engine.Accountant.spent acc in
      Engine.Accountant.reserved acc = []
      && Float.abs (spent.Prim.Dp.eps -. !model_eps) < 1e-9
      && Float.abs (spent.Prim.Dp.delta -. !model_delta) < 1e-12)

let suite =
  [
    case "fault grammar parses and roundtrips" test_parse_roundtrip;
    case "fault grammar rejects malformed schedules" test_parse_errors;
    case "seeded schedules are pure in (seed, index)" test_seeded_deterministic;
    case "PRIVCLUSTER_FAULTS env roundtrip" test_env_roundtrip;
    case "pool retries a raising task in place" test_pool_retry_recovers;
    case "pool reports the last exception after exhausting retries" test_pool_retry_exhaustion;
    case "pool survives worker kills at 1 domain" (run_kill_recovery ~domains:1);
    case "pool survives worker kills at 4 domains" (run_kill_recovery ~domains:4);
    case "pool absorbs crashes once the restart budget is gone" test_pool_restart_budget_exhausted;
    case "accountant reserve/commit/release protocol" test_reservation_protocol;
    slow_case "faulted batch bit-identical to fault-free (spend too)" test_faulted_batch_bit_identical;
    slow_case "degraded job charges exactly its reservation" test_degraded_charges_exact_reservation;
    case "missing fallback headroom disables degradation only" test_no_headroom_disables_fallback;
    case "exhausted attempts keep the admission charge" test_attempt_limit_keeps_charge;
    test_qcheck_spend_invariant;
    test_qcheck_reservation_interleavings;
  ]
