(* Map search: privately locating areas where a population class
   concentrates (the data-exploration application of Section 1.1).

   Run with:  dune exec examples/map_search.exe

   The scenario: locations of members of some sensitive class on a city map
   (the unit square) concentrate around three hot spots, with background
   noise.  We iterate the 1-cluster solver (Observation 3.5) to privately
   retrieve the hot spots, then print a coarse ASCII density map with the
   found balls overlaid. *)

let () =
  let rng = Prim.Rng.create ~seed:7 () in
  let grid = Geometry.Grid.create ~axis_size:512 ~dim:2 in
  let city =
    Workload.Synth.planted_balls rng ~grid ~n:6000 ~k:3 ~cluster_radius:0.045
      ~noise_fraction:0.15
  in
  let points = city.Workload.Synth.all_points in

  Printf.printf "searching for 3 hot spots among %d locations under (6, 1e-6)-DP...\n%!"
    (Array.length points);
  let found =
    Privcluster.K_cluster.run rng Privcluster.Profile.practical ~grid ~eps:6.0 ~delta:1e-6
      ~beta:0.1 ~k:3 ~t_fraction:0.23 points
  in

  List.iteri
    (fun i b ->
      (* Distance from each found center to its nearest true hot spot. *)
      let nearest =
        Array.fold_left
          (fun acc c -> Float.min acc (Geometry.Vec.dist c b.Privcluster.K_cluster.center))
          infinity city.Workload.Synth.centers
      in
      Printf.printf "hot spot %d: center (%.3f, %.3f), radius %.3f, off-truth %.3f\n" (i + 1)
        b.Privcluster.K_cluster.center.(0)
        b.Privcluster.K_cluster.center.(1)
        b.Privcluster.K_cluster.radius nearest)
    found.Privcluster.K_cluster.balls;
  Printf.printf "coverage: %d/%d points inside some found ball (%d iterations failed)\n"
    (Privcluster.K_cluster.coverage found.Privcluster.K_cluster.balls points)
    (Array.length points) found.Privcluster.K_cluster.failures;

  (* ASCII density map: '#' where data is dense, 'o' marking found centers. *)
  let cells = 32 in
  let histogram = Array.make_matrix cells cells 0 in
  Array.iter
    (fun p ->
      let cx = min (cells - 1) (int_of_float (p.(0) *. float_of_int cells)) in
      let cy = min (cells - 1) (int_of_float (p.(1) *. float_of_int cells)) in
      histogram.(cy).(cx) <- histogram.(cy).(cx) + 1)
    points;
  let centers =
    List.map
      (fun b ->
        ( min (cells - 1) (int_of_float (b.Privcluster.K_cluster.center.(0) *. float_of_int cells)),
          min (cells - 1) (int_of_float (b.Privcluster.K_cluster.center.(1) *. float_of_int cells)) ))
      found.Privcluster.K_cluster.balls
  in
  print_newline ();
  for row = cells - 1 downto 0 do
    for col = 0 to cells - 1 do
      if List.mem (col, row) centers then print_char 'O'
      else if histogram.(row).(col) > 40 then print_char '#'
      else if histogram.(row).(col) > 15 then print_char '+'
      else if histogram.(row).(col) > 4 then print_char '.'
      else print_char ' '
    done;
    print_newline ()
  done
