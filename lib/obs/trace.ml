let attr_json : Span.attr -> Json.t = function
  | Span.S s -> Json.String s
  | Span.I i -> Json.Int i
  | Span.F f -> Json.Float f
  | Span.B b -> Json.Bool b

(* Attrs are consed newest-first and the newest binding wins; keep the
   first occurrence of each key. *)
let dedup_attrs attrs =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (k, v) ->
      if Hashtbl.mem seen k then None
      else begin
        Hashtbl.add seen k ();
        Some (k, attr_json v)
      end)
    attrs

let args_of (sp : Span.span) =
  let charge =
    match sp.span_charge with
    | None -> []
    | Some c ->
        [
          ("eps", Json.Float c.eps);
          ("delta", Json.Float c.delta);
        ]
        @ (if c.rho <> 0. then [ ("rho", Json.Float c.rho) ] else [])
  in
  let label = match sp.label with None -> [] | Some l -> [ ("label", Json.String l) ] in
  let parent =
    match sp.parent with None -> [] | Some p -> [ ("parent", Json.Int p) ]
  in
  Json.Obj
    (("span_id", Json.Int sp.id) :: (parent @ label @ charge @ dedup_attrs sp.attrs))

let event_of ~t0 (sp : Span.span) =
  let ts = Clock.ns_to_us (Int64.sub sp.start_ns t0) in
  let common =
    [
      ("name", Json.String sp.name);
      ("cat", Json.String sp.cat);
      ("ts", Json.Float ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int sp.tid);
      ("args", args_of sp);
    ]
  in
  if sp.dur_ns = 0L then
    (* Zero-duration records (budget ops, retries) render as instants so
       Perfetto draws them as markers rather than invisible slivers. *)
    Json.Obj (common @ [ ("ph", Json.String "i"); ("s", Json.String "t") ])
  else
    Json.Obj
      (common @ [ ("ph", Json.String "X"); ("dur", Json.Float (Clock.ns_to_us sp.dur_ns)) ])

let thread_meta tid =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("cat", Json.String "__metadata");
      ("ph", Json.String "M");
      ("ts", Json.Float 0.);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "domain %d" tid)) ]);
    ]

let to_json spans =
  let t0 =
    List.fold_left
      (fun acc (sp : Span.span) -> if sp.start_ns < acc then sp.start_ns else acc)
      (match spans with [] -> 0L | (sp : Span.span) :: _ -> sp.start_ns)
      spans
  in
  let tids = List.sort_uniq compare (List.map (fun (sp : Span.span) -> sp.tid) spans) in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (List.map thread_meta tids @ List.map (event_of ~t0) spans) );
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string spans = Json.to_string (to_json spans)

(* --- validation --------------------------------------------------------- *)

let validate json =
  let ( let* ) = Result.bind in
  let req_string ev key =
    match Json.member key ev with
    | Some (Json.String s) -> Ok s
    | _ -> Error (Printf.sprintf "event missing string field %S" key)
  in
  let req_number ev key =
    match Option.bind (Json.member key ev) Json.to_float with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "event missing numeric field %S" key)
  in
  let check_event i ev =
    let ctx e = Error (Printf.sprintf "traceEvents[%d]: %s" i e) in
    match
      let* name = req_string ev "name" in
      let* _ = req_string ev "cat" in
      let* ph = req_string ev "ph" in
      let* _ = req_number ev "ts" in
      let* _ = req_number ev "pid" in
      let* _ = req_number ev "tid" in
      match ph with
      | "X" ->
          let* dur = req_number ev "dur" in
          if dur < 0. then Error (Printf.sprintf "event %S has negative dur" name)
          else Ok ()
      | "i" | "M" -> Ok ()
      | _ -> Error (Printf.sprintf "event %S has unknown phase %S" name ph)
    with
    | Ok () -> Ok ()
    | Error e -> ctx e
  in
  match Json.member "traceEvents" json with
  | None -> Error "top level has no \"traceEvents\" field"
  | Some events -> (
      match Json.to_list events with
      | None -> Error "\"traceEvents\" is not an array"
      | Some evs ->
          let rec go i = function
            | [] -> Ok ()
            | ev :: rest -> (
                match check_event i ev with Ok () -> go (i + 1) rest | Error _ as e -> e)
          in
          go 0 evs)
