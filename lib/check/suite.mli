(** The named check registry behind [privcluster_cli check] and the deep
    test tier.

    Three families of checks, one result record each:

    - {b distribution} — Kolmogorov–Smirnov / Anderson–Darling /
      chi-square goodness-of-fit of mechanism output against the exact
      reference laws of {!Dist}, at an explicit significance level;
    - {b distinguisher} — the {!Distinguisher} applied to every [Prim]
      mechanism and to composite runs ({!Prim.Noisy_avg},
      {!Privcluster.Good_radius}, {!Privcluster.One_cluster} at small [n],
      and the engine's reserve/commit fallback path);
    - {b utility} — the {!Certifier} on Theorem 3.2's contract.

    Sampling is fanned out over an {!Engine.Pool}: trials are sharded into
    a fixed number of chunks, each drawing from its own
    {!Prim.Rng.derive}d stream, so results are bit-identical for any
    [domains] count under a fixed seed. *)

type config = {
  seed : int;
  trials : int;  (** Per side, for full-rate checks; composites divide it. *)
  deep : bool;  (** Quadruple the composite / certifier sample sizes. *)
  significance : float;
      (** Goodness-of-fit rejection level (default 0.01 — chosen so the
          whole suite's false-alarm rate stays small at any seed while a
          real mis-calibration still lands many orders of magnitude
          beyond it). *)
  alpha : float;  (** Clopper–Pearson confidence parameter (default 0.05). *)
  slack : float;  (** Distinguisher ratio slack (default 0.1). *)
  domains : int;  (** Worker domains for the sampling fan-out. *)
}

val default : config

type status = Pass | Violation

type result = {
  name : string;  (** e.g. ["laplace/ks"], ["noisy_avg/dp"], ["one_cluster/utility"]. *)
  kind : string;  (** ["distribution"], ["distinguisher"] or ["utility"]. *)
  status : status;
  detail : string;  (** One-line human rendering of the headline numbers. *)
  json : Engine.Json.t;
}

val names : unit -> string list
(** Every registered check name, in run order. *)

val grouped_names : unit -> (string * string list) list
(** The names grouped by subsystem (the prefix before ['/']), groups in
    first-appearance order, members in run order — the structure behind
    [check --list]. *)

val exit_status : matched:bool -> violations:int -> int
(** The CLI's exit-code policy, kept here so it is unit-testable: 2 when
    a [--only] filter matched nothing, 1 when any check reported a
    violation, 0 otherwise. *)

val run : ?only:string list -> config -> result list
(** Run the registered checks ([only] filters by exact name or by
    [prefix/] group name, e.g. ["laplace"]). *)

val report_json : config -> result list -> Engine.Json.t
(** The machine-readable report the CLI emits: config, per-check records,
    and a pass/violation summary. *)
