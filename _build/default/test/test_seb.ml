(* Enclosing-ball reference solvers. *)

open Testutil

let coords_gen = QCheck2.Gen.(array_size (int_range 3 30) (float_range 0. 1.))

(* Brute-force smallest interval over all index pairs. *)
let brute_1d coords t =
  let sorted = Array.copy coords in
  Array.sort compare sorted;
  let best = ref infinity in
  let n = Array.length sorted in
  for i = 0 to n - t do
    best := Float.min !best (sorted.(i + t - 1) -. sorted.(i))
  done;
  !best /. 2.

let qcheck_exact_1d =
  qcheck "exact_1d matches brute force" coords_gen (fun coords ->
      let t = max 1 (Array.length coords / 2) in
      let b = Geometry.Seb.exact_1d coords ~t in
      Float.abs (b.Geometry.Seb.radius -. brute_1d coords t) < 1e-9)

let qcheck_exact_1d_feasible =
  qcheck "exact_1d ball contains t points" coords_gen (fun coords ->
      let t = max 1 (Array.length coords / 2) in
      let b = Geometry.Seb.exact_1d coords ~t in
      let pts = Array.map (fun x -> [| x |]) coords in
      Geometry.Seb.count_inside b pts >= t)

let points_gen =
  QCheck2.Gen.(array_size (int_range 3 25) (array_size (return 2) (float_range 0. 1.)))

let qcheck_two_approx_feasible =
  qcheck "two_approx ball contains t points" points_gen (fun pts ->
      let ps = Geometry.Pointset.create pts in
      let t = max 1 (Array.length pts / 2) in
      let b = Geometry.Seb.two_approx ps ~t in
      Geometry.Seb.count_inside b pts >= t)

let qcheck_two_approx_indexed_matches =
  qcheck "two_approx indexed = direct" points_gen (fun pts ->
      let ps = Geometry.Pointset.create pts in
      let idx = Geometry.Pointset.build_index ps in
      let t = max 1 (Array.length pts / 2) in
      let a = Geometry.Seb.two_approx ps ~t in
      let b = Geometry.Seb.two_approx_indexed idx ~t in
      Float.abs (a.Geometry.Seb.radius -. b.Geometry.Seb.radius) < 1e-9)

let test_two_approx_factor () =
  (* In 1-D the exact optimum is available: check radius <= 2·r_opt. *)
  let r = rng () in
  for _ = 1 to 50 do
    let coords = Array.init 40 (fun _ -> Prim.Rng.float r 1.0) in
    let t = 20 in
    let exact = Geometry.Seb.exact_1d coords ~t in
    let ps = Geometry.Pointset.create (Array.map (fun x -> [| x |]) coords) in
    let approx = Geometry.Seb.two_approx ps ~t in
    check_true "2-approximation factor"
      (approx.Geometry.Seb.radius <= (2. *. exact.Geometry.Seb.radius) +. 1e-9)
  done

let qcheck_meb_contains_all =
  qcheck "min_enclosing_ball contains everything" points_gen (fun pts ->
      let b = Geometry.Seb.min_enclosing_ball pts in
      Geometry.Seb.count_inside b pts = Array.length pts)

let test_meb_approximation () =
  (* Points on a circle of radius 1: MEB radius must approach 1. *)
  let n = 60 in
  let pts =
    Array.init n (fun i ->
        let a = 2. *. Float.pi *. float_of_int i /. float_of_int n in
        [| cos a; sin a |])
  in
  let b = Geometry.Seb.min_enclosing_ball ~iterations:500 pts in
  check_in_range "circle MEB radius" ~lo:1.0 ~hi:1.15 b.Geometry.Seb.radius

let qcheck_t_ball_heuristic =
  qcheck "t_ball_heuristic feasible and never worse than 2-approx" points_gen (fun pts ->
      let ps = Geometry.Pointset.create pts in
      let t = max 1 (Array.length pts / 2) in
      let h = Geometry.Seb.t_ball_heuristic ps ~t in
      let a = Geometry.Seb.two_approx ps ~t in
      Geometry.Seb.count_inside h pts >= t
      && h.Geometry.Seb.radius <= a.Geometry.Seb.radius +. 1e-9)

let test_validation () =
  Alcotest.check_raises "exact_1d t range" (Invalid_argument "Seb.exact_1d: t must be in [1, n]")
    (fun () -> ignore (Geometry.Seb.exact_1d [| 1.; 2. |] ~t:3));
  Alcotest.check_raises "meb empty" (Invalid_argument "Seb.min_enclosing_ball: empty")
    (fun () -> ignore (Geometry.Seb.min_enclosing_ball [||]))

let suite =
  [
    qcheck_exact_1d;
    qcheck_exact_1d_feasible;
    qcheck_two_approx_feasible;
    qcheck_two_approx_indexed_matches;
    case "two_approx 2x factor (1-D reference)" test_two_approx_factor;
    qcheck_meb_contains_all;
    case "MEB on a circle" test_meb_approximation;
    qcheck_t_ball_heuristic;
    case "validation" test_validation;
  ]
