type backend = Rec_concave | Binary_search
type radius_grid = Linear | Geometric

type t = {
  backend : backend;
  radius_grid : radius_grid;
  rc_base : int;
  jl_constant : float;
  jl_cap_at_dim : bool;
  box_side_factor : float;
  max_rounds : int option;
}

let paper =
  {
    backend = Rec_concave;
    radius_grid = Linear;
    rc_base = 32;
    jl_constant = 46.;
    jl_cap_at_dim = false;
    box_side_factor = 300.;
    max_rounds = None;
  }

let practical =
  {
    backend = Rec_concave;
    radius_grid = Geometric;
    rc_base = 64;
    jl_constant = 2.;
    jl_cap_at_dim = true;
    box_side_factor = 4.;
    max_rounds = Some 200;
  }

let jl_dim t ~n ~d ~beta =
  let k = max 1 (int_of_float (Float.ceil (t.jl_constant *. log (2. *. float_of_int n /. beta)))) in
  if t.jl_cap_at_dim then min k d else k

let axis_interval_factor t = 3. *. t.box_side_factor

let rounds t ~n ~beta =
  match t.max_rounds with
  | Some r -> r
  | None ->
      let r = 2. *. float_of_int n *. log (1. /. beta) /. beta in
      (* Bound by a sane absolute maximum so the paper profile terminates. *)
      min (int_of_float r) 1_000_000

let pp ppf t =
  Format.fprintf ppf
    "{backend=%s; radius_grid=%s; rc_base=%d; jl_constant=%g; jl_cap_at_dim=%b; box_side_factor=%g; \
     max_rounds=%s}"
    (match t.backend with Rec_concave -> "rec-concave" | Binary_search -> "binary-search")
    (match t.radius_grid with Linear -> "linear" | Geometric -> "geometric")
    t.rc_base t.jl_constant t.jl_cap_at_dim t.box_side_factor
    (match t.max_rounds with None -> "paper" | Some r -> string_of_int r)
