lib/core/domain.ml: Array Float Geometry One_cluster
