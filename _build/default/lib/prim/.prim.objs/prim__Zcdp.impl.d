lib/prim/zcdp.ml: Dp List
