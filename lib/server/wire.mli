(** privclusterd wire protocol: one JSON object per line, both ways.

    A connection opens with a [hello] carrying the protocol version and
    the tenant's credentials; every subsequent request carries a
    client-chosen integer [id] that the matching reply echoes, so a
    client may pipeline requests and pair replies by id.  Replies are
    [{"id", "ok": true, ...payload}] or
    [{"id", "ok": false, "error": {"code", "message", "charged"}}] —
    [charged] is always [false]: an error reply is produced before any
    ledger operation, so a refused or shed request provably spent
    nothing.  (Per-job budget refusals are {e not} errors: a [run] whose
    jobs are refused succeeds with [status = "refused"] results.)

    Requests:
    - [hello]    — [version], [tenant], [token]; must be first.
    - [register] — synthesize and register a planted-ball dataset:
      [dataset], [n], [dim], [axis], [frac], [radius], [seed],
      [budget_eps]/[budget_delta], [mode], [slack].  Registering the
      name a previous daemon incarnation journaled replays the
      journal into the fresh accountant (budget and mode must match).
    - [run]      — [dataset], [jobs] (jobs-file text, see {!Engine.Job}),
      optional [seed] overriding the batch RNG base (a fixed seed makes
      verdicts deterministic regardless of how clients interleave).
    - [append]   — [dataset], [n], [seed], [frac], [radius]; append [n]
      synthetic planted-ball points, advancing the dataset's epoch.
    - [retire]   — [dataset], [from], [count]; retire a contiguous row
      range, advancing the epoch.
    - [epoch]    — [dataset]; current epoch, size, index backend and
      cache statistics.
    - [standing] — [dataset], [job] (the query id), [t_fraction], [eps],
      [delta] (the {e total} budget), [periods], optional [seed];
      register a standing 1-cluster query re-answered on every epoch
      transition until [periods] slices are spent.
    - [settle]   — [dataset], [action] (["commit"] or ["release"]),
      optional [label]; settle reservations orphaned by a crash (held
      after WAL replay).  Operator-only by intent: nothing settles
      orphans automatically.
    - [ledger]   — [dataset]; the accountant state.
    - [datasets] — list the tenant's datasets.
    - [metrics]  — Prometheus text exposition for this tenant.
    - [health]   — one-line SLO verdict: overall status plus every
      evaluated rule with its reason (see {!Obs.Slo}); answered even
      while draining so probes keep working during a drain.
    - [stats]    — full serving-telemetry dump: per-verb × per-tenant
      latency histograms, queue-wait histograms, budget burn-rates and
      shed counters as JSON.
    - [ping]     — liveness probe; answered even while draining. *)

val version : int
(** Protocol version ([1]); [hello] with any other value is refused. *)

type request =
  | Hello of { version : int; tenant : string; token : string }
  | Register of {
      dataset : string;
      n : int;
      dim : int;
      axis : int;
      frac : float;
      radius : float;
      seed : int;
      budget : Prim.Dp.params;
      mode : Engine.Accountant.mode;
    }
  | Run of { dataset : string; jobs : string; seed : int option }
  | Append of { dataset : string; n : int; seed : int; frac : float; radius : float }
  | Retire of { dataset : string; from_ : int; count : int }
  | Epoch of { dataset : string }
  | Standing of {
      dataset : string;
      id : string;
      t_fraction : float;
      eps : float;
      delta : float;
      periods : int;
      seed : int option;
    }
  | Settle of { dataset : string; action : settle_action; label : string option }
  | Ledger of { dataset : string }
  | Datasets
  | Metrics
  | Health
  | Stats
  | Ping

and settle_action = Commit_orphans | Release_orphans

type envelope = { rid : int; request : request }

val request_name : request -> string
(** The wire verb (["hello"], ["run"], ...), used as the [verb] label of
    the serving-latency metric families. *)

val settle_action_name : settle_action -> string
(** ["commit"], ["release"]. *)

val settle_action_of_string : string -> settle_action option

type shed_reason = Queue_full | Tenant_cap | Draining

type error_code =
  | Bad_request  (** Malformed request or jobs text. *)
  | Unsupported_version
  | Unauthorized  (** Unknown tenant or wrong token. *)
  | Unknown_dataset
  | Conflict  (** Duplicate registration, or journal/budget mismatch. *)
  | Rejected of shed_reason  (** Load-shed before any budget charge. *)
  | Internal

type error = { code : error_code; message : string }

val shed_reason_name : shed_reason -> string
(** ["queue_full"], ["tenant_cap"], ["draining"]. *)

val code_name : error_code -> string

val request_to_line : envelope -> string
(** Client side: render a request as one newline-terminated line. *)

val request_of_line : string -> (envelope, error) result
(** Server side.  [Error] is ready to send back (its [Bad_request]
    message names the offending field); a parseable [id] is preserved in
    the error path by the caller reading it from the raw JSON first. *)

val rid_of_line : string -> int
(** Best-effort [id] extraction for error replies ([0] if unreadable). *)

val reply_to_line : rid:int -> (Engine.Json.t, error) result -> string
(** Server side: render an ok (payload fields are spliced into the
    envelope object) or error reply as one newline-terminated line. *)

val reply_of_line : string -> (int * (Engine.Json.t, error) result, string) result
(** Client side: parse a reply line into [(id, Ok payload | Error e)];
    the outer [Error] means the line was not a valid reply at all. *)

(** {2 Settle reply}

    The [settle] verb has a typed reply so operator tooling can act on
    it without scraping: each settled reservation with its reserved
    price, and how many orphans remain held. *)

type settled_reservation = { label : string; eps : float; delta : float }

type settle_reply = {
  action : settle_action;
  settled : settled_reservation list;
  remaining : int;  (** Orphans still held after this settle. *)
}

val settle_reply_to_json : settle_reply -> Engine.Json.t
val settle_reply_of_json : Engine.Json.t -> (settle_reply, string) result
