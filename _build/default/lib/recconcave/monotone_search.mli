(** Noisy binary search over a monotone quality — the simple alternative to
    RecConcave that Section 3.1 sketches ("this can easily be done privately
    using binary search with noisy estimates of L for the comparisons"),
    losing [log(√d·|X|)] rather than the recursion's bound.

    Given a non-decreasing quality [g] over [{0 … T−1}] and a target [τ],
    return the smallest index whose value (approximately) reaches [τ].  Each
    of the [⌈log₂ T⌉] comparisons spends an equal share of ε on one Laplace
    estimate of [g] at the probe index, so the whole search is
    [(ε, 0)]-DP by basic composition. *)

type result = {
  index : int;  (** Smallest index whose noisy value reached the target. *)
  comparisons : int;
  eps_each : float;
}

val solve :
  Prim.Rng.t ->
  eps:float ->
  sensitivity:float ->
  target:float ->
  Quality.t ->
  result
(** If no probe ever reaches the target the last index is returned (callers
    treat the top of the range as "give up", matching GoodRadius where the
    largest candidate radius √d always contains all points). *)

val accuracy_bound : size:int -> eps:float -> sensitivity:float -> beta:float -> float
(** With probability ≥ 1 − β every comparison's Laplace error is below this
    bound, hence [g(index) ≥ τ − bound] and [g(index − 1) ≤ τ + bound]. *)
