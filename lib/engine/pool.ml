type 'a task = { payload : 'a; deadline_s : float option }

let task ?deadline_s payload = { payload; deadline_s }

type 'b outcome = Done of 'b | Timed_out of { elapsed_ms : float } | Failed of string

let outcome_name = function Done _ -> "ok" | Timed_out _ -> "timeout" | Failed _ -> "failed"

let recommended_domains () = min 8 (Domain.recommended_domain_count ())

let run ~domains ~f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let domains = max 1 (min domains n) in
    let results = Array.make n (Failed "never ran") in
    let next = Atomic.make 0 in
    let t0 = Unix.gettimeofday () in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let { payload; deadline_s } = tasks.(i) in
          let elapsed_ms () = (Unix.gettimeofday () -. t0) *. 1000. in
          let outcome =
            match deadline_s with
            | Some d when elapsed_ms () >= d *. 1000. -> Timed_out { elapsed_ms = elapsed_ms () }
            | _ -> (
                match f i payload with
                | v -> (
                    match deadline_s with
                    | Some d when elapsed_ms () > d *. 1000. ->
                        Timed_out { elapsed_ms = elapsed_ms () }
                    | _ -> Done v)
                | exception exn -> Failed (Printexc.to_string exn))
          in
          (* Slots are disjoint per index; Domain.join publishes the writes. *)
          results.(i) <- outcome;
          loop ()
        end
      in
      loop ()
    in
    if domains = 1 then worker ()
    else Array.iter Domain.join (Array.init domains (fun _ -> Domain.spawn worker));
    results
  end
