(** Zero-concentrated differential privacy (zCDP) accounting
    (Bun–Steinke 2016).

    The paper predates zCDP and budgets its d-fold per-axis composition in
    GoodCenter with the advanced composition theorem (Theorem 4.7); modern
    releases ship the tighter concentrated-DP ledger, so this module
    provides one, and experiment E12's accounting ablation compares the two
    on exactly that step.

    A mechanism is ρ-zCDP when its Rényi divergence at every order
    [α > 1] is bounded by [ρ·α].  Facts used here:

    - the Gaussian mechanism with noise [σ] on an L2-sensitivity-[Δ] query
      is [ρ = Δ²/(2σ²)]-zCDP;
    - [(ε, 0)]-DP implies [ρ = ε²/2]-zCDP (so Laplace-based pieces can be
      folded into the same ledger);
    - zCDP composes additively: [ρ₁ + ρ₂];
    - ρ-zCDP implies [(ρ + 2·√(ρ·ln(1/δ)), δ)]-DP for every [δ > 0]. *)

type rho = float
(** The zCDP parameter ρ. *)

val of_gaussian : sigma:float -> l2_sensitivity:float -> rho
(** [Δ²/(2σ²)]. *)

val of_pure_dp : eps:float -> rho
(** [ε²/2]. *)

val compose : rho list -> rho
(** Additive composition. *)

val to_dp : rho -> delta:float -> Dp.params
(** The standard conversion [(ρ + 2√(ρ·ln(1/δ)), δ)]. *)

val eps_budget_to_rho : eps:float -> delta:float -> rho
(** Largest ρ whose {!to_dp} conversion stays within [(ε, δ)] (bisection on
    the monotone conversion). *)

val gaussian_sigma : rho:float -> l2_sensitivity:float -> float
(** Smallest σ achieving the given ρ: [Δ/√(2ρ)]. *)

val per_mechanism_rho : total_rho:float -> k:int -> rho
(** Even split of a ρ budget over [k] mechanisms (composition is additive,
    so this is exact — no advanced-composition slack). *)

(** {1 Ledger} *)

type ledger

val ledger : unit -> ledger
val spend : ledger -> ?label:string -> rho -> unit
val spent : ledger -> rho
val spent_dp : ledger -> delta:float -> Dp.params
val entries : ledger -> (string * rho) list
