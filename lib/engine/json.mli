(** A minimal JSON tree and printer.

    The engine's reports (per-job results, the privacy ledger, telemetry
    dumps) are machine-readable JSON; the project deliberately has no JSON
    dependency, so this module carries the few dozen lines of emitter the
    engine needs.  Emission only — the jobs {e input} format is the
    line-oriented one of {!Job.parse}, chosen so batch files stay hand-
    writable without a parser dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** [nan] and infinities are emitted as [null]. *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string
(** [indent] (default [true]) pretty-prints with two-space indentation;
    otherwise the output is a single line. *)

val pp : Format.formatter -> t -> unit
(** Indented form. *)
