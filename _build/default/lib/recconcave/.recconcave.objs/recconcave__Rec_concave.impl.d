lib/recconcave/rec_concave.ml: Array List Prim Quality Scale_quality
