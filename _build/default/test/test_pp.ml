(* Pretty-printers: every result record must render without raising and
   mention its key fields (these strings end up in logs and CLI output). *)

open Testutil

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_good_radius_pp () =
  let r, grid, w = small_workload ~n:300 () in
  let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Workload.Synth.points) in
  let result =
    Privcluster.Good_radius.run r Privcluster.Profile.practical ~grid ~eps:2.0 ~delta:1e-6
      ~beta:0.1 ~t:150 idx
  in
  let s = Format.asprintf "%a" Privcluster.Good_radius.pp_result result in
  check_true "mentions radius" (contains s "radius=");
  check_true "mentions gamma" (contains s "gamma=")

let test_one_cluster_pp () =
  let r, grid, w = small_workload ~seed:91 ~n:600 ~fraction:0.6 () in
  match
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:4.0 ~delta:1e-6
      ~beta:0.1 ~t:300 w.Workload.Synth.points
  with
  | Error _ -> Alcotest.fail "unexpected failure"
  | Ok result ->
      let s = Format.asprintf "%a" Privcluster.One_cluster.pp_result result in
      check_true "mentions center" (contains s "center=");
      check_true "mentions a stage" (contains s "radius_stage=" || contains s "zero-path");
      (match result.Privcluster.One_cluster.center_stage with
      | Some c ->
          let cs = Format.asprintf "%a" Privcluster.Good_center.pp_success c in
          check_true "center stage renders" (contains cs "m_hat=")
      | None -> ())

let test_failure_pp () =
  List.iter
    (fun f ->
      let s = Format.asprintf "%a" Privcluster.Good_center.pp_failure f in
      check_true "non-empty" (String.length s > 5))
    [
      Privcluster.Good_center.No_heavy_box;
      Privcluster.Good_center.Box_selection_failed;
      Privcluster.Good_center.Averaging_bottom;
    ];
  let s =
    Format.asprintf "%a" Privcluster.One_cluster.pp_failure
      (Privcluster.One_cluster.Center_failure Privcluster.Good_center.No_heavy_box)
  in
  check_true "wrapped failure" (contains s "center stage")

let test_vec_pp () =
  let s = Format.asprintf "%a" Geometry.Vec.pp [| 1.5; -2. |] in
  check_true "vector renders" (contains s "1.5" && contains s "-2")

let test_profile_pp_roundtrip_fields () =
  let s = Format.asprintf "%a" Privcluster.Profile.pp Privcluster.Profile.paper in
  check_true "linear grid named" (contains s "linear");
  check_true "paper rounds named" (contains s "paper")

let suite =
  [
    case "good radius pp" test_good_radius_pp;
    case "one cluster pp" test_one_cluster_pp;
    case "failure pp" test_failure_pp;
    case "vec pp" test_vec_pp;
    case "profile pp fields" test_profile_pp_roundtrip_fields;
  ]
