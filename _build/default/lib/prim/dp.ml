type params = { eps : float; delta : float }

let v ~eps ~delta =
  if not (eps > 0.) then invalid_arg "Dp.v: eps must be positive";
  if not (delta >= 0. && delta < 1.) then invalid_arg "Dp.v: delta must be in [0, 1)";
  { eps; delta }

let pure ~eps = v ~eps ~delta:0.
let eps p = p.eps
let delta p = p.delta

let split p k =
  if k <= 0 then invalid_arg "Dp.split: k must be positive";
  let k = float_of_int k in
  { eps = p.eps /. k; delta = p.delta /. k }

let scale p c =
  if not (c > 0.) then invalid_arg "Dp.scale: factor must be positive";
  v ~eps:(p.eps *. c) ~delta:(Float.min (p.delta *. c) (Float.pred 1.0))

let is_pure p = p.delta = 0.
let pp ppf p = Format.fprintf ppf "(%g, %g)-DP" p.eps p.delta
let to_string p = Format.asprintf "%a" pp p
