test/test_vec.ml: Alcotest Array Float Geometry QCheck2 Testutil
