type config = {
  seed : int;
  trials : int;
  deep : bool;
  significance : float;
  alpha : float;
  slack : float;
  domains : int;
}

let default =
  {
    seed = 1;
    trials = 20_000;
    deep = false;
    significance = 0.01;
    alpha = 0.05;
    slack = 0.1;
    domains = 1;
  }

type status = Pass | Violation

type result = {
  name : string;
  kind : string;
  status : status;
  detail : string;
  json : Engine.Json.t;
}

(* ------------------------------------------------------------------ *)
(* Sampling fan-out: a fixed chunk count (independent of [domains], so
   results never depend on the worker count), each chunk on its own
   derived stream. *)

let chunks = 16

let base_rng cfg ~stream = Prim.Rng.derive (Prim.Rng.create ~seed:cfg.seed ()) ~stream

let pool_done = function
  | Engine.Pool.Done v -> v
  | Engine.Pool.Failed msg -> failwith ("check fan-out chunk raised: " ^ msg)
  | Engine.Pool.Timed_out _ -> assert false (* no deadlines are set *)

(* [f chunk_rng per_chunk_count] on every chunk; returns the chunk results
   in chunk order plus the per-chunk count actually used. *)
let fanout cfg ~stream ~f total =
  let per = max 1 ((total + chunks - 1) / chunks) in
  let base = base_rng cfg ~stream in
  let tasks = Array.init chunks (fun i -> Engine.Pool.task i) in
  let outcomes =
    Engine.Pool.run ~domains:cfg.domains
      ~f:(fun ~index:_ ~attempt:_ i -> f (Prim.Rng.derive base ~stream:i) per)
      tasks
  in
  (Array.to_list (Array.map pool_done outcomes), per)

let sample_floats cfg ~stream ~total sampler =
  let parts, _ =
    fanout cfg ~stream ~f:(fun rng count -> Array.init count (fun _ -> sampler rng)) total
  in
  Array.concat parts

let count_categories cfg ~stream ~total ~k obs =
  let parts, per =
    fanout cfg ~stream
      ~f:(fun rng count ->
        let c = Array.make k 0 in
        for _ = 1 to count do
          let o = obs rng in
          if o >= 0 && o < k then c.(o) <- c.(o) + 1
        done;
        c)
      total
  in
  let acc = Array.make k 0 in
  List.iter (Array.iteri (fun j v -> acc.(j) <- acc.(j) + v)) parts;
  (acc, per * chunks)

(* Both sides of a distinguisher run: [2 · chunks] pool tasks, sides on
   disjoint derived streams. *)
let dp_counts cfg ~stream ~events ~left ~right total =
  let per = max 1 ((total + chunks - 1) / chunks) in
  let base = base_rng cfg ~stream in
  let tasks = Array.init (2 * chunks) (fun i -> Engine.Pool.task i) in
  let outcomes =
    Engine.Pool.run ~domains:cfg.domains
      ~f:(fun ~index:_ ~attempt:_ i ->
        let rng = Prim.Rng.derive base ~stream:i in
        let mech = if i < chunks then left else right in
        Distinguisher.count rng ~trials:per ~events mech)
      tasks
  in
  let side lo =
    let acc = Array.make (Array.length events) 0 in
    for i = lo to lo + chunks - 1 do
      Array.iteri (fun j v -> acc.(j) <- acc.(j) + v) (pool_done outcomes.(i))
    done;
    acc
  in
  let n = per * chunks in
  ((n, side 0), (n, side chunks))

(* Composite mechanisms are orders of magnitude dearer per trial than one
   noise draw; divide the budget, quadruple it under [deep]. *)
let scaled cfg ~cost =
  if cost <= 1 then cfg.trials
  else max 400 (cfg.trials * (if cfg.deep then 4 else 1) / cost)

(* ------------------------------------------------------------------ *)
(* JSON rendering *)

let interval_json (i : Stats.interval) =
  Engine.Json.Obj [ ("lo", Engine.Json.Float i.Stats.lo); ("hi", Engine.Json.Float i.Stats.hi) ]

let estimate_json (e : Distinguisher.estimate) =
  Engine.Json.Obj
    [
      ("event", Engine.Json.String e.Distinguisher.event);
      ("p_hat", Engine.Json.Float e.Distinguisher.p_hat);
      ("q_hat", Engine.Json.Float e.Distinguisher.q_hat);
      ("p_ci", interval_json e.Distinguisher.p_ci);
      ("q_ci", interval_json e.Distinguisher.q_ci);
      ("eps_lb", Engine.Json.Float e.Distinguisher.eps_lb);
      ("violation", Engine.Json.Bool e.Distinguisher.violation);
    ]

let verdict_json (v : Distinguisher.verdict) =
  Engine.Json.Obj
    [
      ("claimed_eps", Engine.Json.Float v.Distinguisher.claimed.Prim.Dp.eps);
      ("claimed_delta", Engine.Json.Float v.Distinguisher.claimed.Prim.Dp.delta);
      ("slack", Engine.Json.Float v.Distinguisher.slack);
      ("alpha", Engine.Json.Float v.Distinguisher.alpha);
      ("trials_per_side", Engine.Json.Int v.Distinguisher.trials);
      ("eps_lb", Engine.Json.Float v.Distinguisher.eps_lb);
      ("violation", Engine.Json.Bool v.Distinguisher.violation);
      ("events", Engine.Json.List (List.map estimate_json v.Distinguisher.estimates));
    ]

(* ------------------------------------------------------------------ *)
(* Check constructors *)

let ks_result cfg ~name ~cdf samples =
  let r = Stats.ks_test ~cdf samples in
  let violation = r.Stats.p_value < cfg.significance in
  {
    name;
    kind = "distribution";
    status = (if violation then Violation else Pass);
    detail =
      Printf.sprintf "KS D=%.4f p=%.3g n=%d (reject < %g)" r.Stats.d r.Stats.p_value r.Stats.n
        cfg.significance;
    json =
      Engine.Json.Obj
        [
          ("test", Engine.Json.String "ks");
          ("d", Engine.Json.Float r.Stats.d);
          ("p_value", Engine.Json.Float r.Stats.p_value);
          ("n", Engine.Json.Int r.Stats.n);
          ("significance", Engine.Json.Float cfg.significance);
          ("violation", Engine.Json.Bool violation);
        ];
  }

let ad_result cfg ~name ~cdf samples =
  let r = Stats.ad_test ~cdf samples in
  let crit = Stats.ad_critical ~significance:cfg.significance in
  let violation = r.Stats.a2 > crit in
  {
    name;
    kind = "distribution";
    status = (if violation then Violation else Pass);
    detail =
      Printf.sprintf "AD A2=%.3f p~%.3g n=%d (crit %.3f at %g)" r.Stats.a2 r.Stats.p_value
        r.Stats.n crit cfg.significance;
    json =
      Engine.Json.Obj
        [
          ("test", Engine.Json.String "ad");
          ("a2", Engine.Json.Float r.Stats.a2);
          ("p_value", Engine.Json.Float r.Stats.p_value);
          ("critical", Engine.Json.Float crit);
          ("n", Engine.Json.Int r.Stats.n);
          ("significance", Engine.Json.Float cfg.significance);
          ("violation", Engine.Json.Bool violation);
        ];
  }

let chi2_result cfg ~name ~expected ~observed ~n =
  let r = Stats.chi2_test ~expected ~observed in
  let violation = r.Stats.p_value < cfg.significance in
  {
    name;
    kind = "distribution";
    status = (if violation then Violation else Pass);
    detail =
      Printf.sprintf "chi2 X2=%.2f df=%d p=%.3g n=%d (reject < %g)" r.Stats.stat r.Stats.df
        r.Stats.p_value n cfg.significance;
    json =
      Engine.Json.Obj
        [
          ("test", Engine.Json.String "chi2");
          ("stat", Engine.Json.Float r.Stats.stat);
          ("df", Engine.Json.Int r.Stats.df);
          ("p_value", Engine.Json.Float r.Stats.p_value);
          ("pooled_cells", Engine.Json.Int r.Stats.pooled_cells);
          ("n", Engine.Json.Int n);
          ("significance", Engine.Json.Float cfg.significance);
          ("violation", Engine.Json.Bool violation);
        ];
  }

let dp_result ~name (v : Distinguisher.verdict) =
  {
    name;
    kind = "distinguisher";
    status = (if v.Distinguisher.violation then Violation else Pass);
    detail = Format.asprintf "%a" Distinguisher.pp_verdict v;
    json = verdict_json v;
  }

let dp_check ~name ~claimed ~events ~left ~right ~cost ~stream cfg =
  let names = List.map fst events in
  let preds = Array.of_list (List.map snd events) in
  let left, right =
    dp_counts cfg ~stream ~events:preds ~left ~right (scaled cfg ~cost)
  in
  dp_result ~name
    (Distinguisher.verdict ~claimed ~slack:cfg.slack ~alpha:cfg.alpha ~events:names ~left
       ~right ())

(* ------------------------------------------------------------------ *)
(* The checks *)

let lap_eps = 0.7

let laplace_samples ~stream cfg =
  sample_floats cfg ~stream ~total:cfg.trials (fun r ->
      Prim.Laplace.noise r ~eps:lap_eps ~sensitivity:1.0)

let laplace_ks ~stream cfg =
  ks_result cfg ~name:"laplace/ks"
    ~cdf:(fun x -> Dist.laplace_cdf ~eps:lap_eps ~sensitivity:1.0 x)
    (laplace_samples ~stream cfg)

let laplace_ad ~stream cfg =
  ad_result cfg ~name:"laplace/ad"
    ~cdf:(fun x -> Dist.laplace_cdf ~eps:lap_eps ~sensitivity:1.0 x)
    (laplace_samples ~stream cfg)

let gauss_sigma = Prim.Gaussian_mech.sigma ~eps:0.5 ~delta:1e-5 ~l2_sensitivity:1.0

let gaussian_samples ~stream cfg =
  sample_floats cfg ~stream ~total:cfg.trials (fun r ->
      Prim.Rng.gaussian r ~sigma:gauss_sigma ())

let gaussian_ks ~stream cfg =
  ks_result cfg ~name:"gaussian/ks"
    ~cdf:(fun x -> Dist.gaussian_cdf ~sigma:gauss_sigma x)
    (gaussian_samples ~stream cfg)

let gaussian_ad ~stream cfg =
  ad_result cfg ~name:"gaussian/ad"
    ~cdf:(fun x -> Dist.gaussian_cdf ~sigma:gauss_sigma x)
    (gaussian_samples ~stream cfg)

let exp_mech_chi2 ~stream cfg =
  let qualities = [| 3.; 5.; 4.; 1. |] in
  let eps = 0.8 in
  let observed, n =
    count_categories cfg ~stream ~total:cfg.trials ~k:(Array.length qualities) (fun r ->
        Prim.Exp_mech.select r ~eps ~sensitivity:1.0 ~qualities)
  in
  chi2_result cfg ~name:"exp_mech/chi2"
    ~expected:(Dist.exp_mech_law ~eps ~sensitivity:1.0 ~qualities)
    ~observed ~n

let stability_hist_chi2 ~stream cfg =
  let cells = [ ("a", 40); ("b", 36); ("c", 10) ] in
  let eps = 1.0 and delta = 1e-4 in
  let keys = List.map fst cells in
  let index_of k =
    let rec go i = function
      | [] -> assert false
      | k' :: tl -> if k = k' then i else go (i + 1) tl
    in
    go 0 keys
  in
  let none = List.length cells in
  let observed, n =
    count_categories cfg ~stream ~total:cfg.trials ~k:(none + 1) (fun r ->
        match Prim.Stability_hist.select r ~eps ~delta cells with
        | None -> none
        | Some cell -> index_of cell.Prim.Stability_hist.key)
  in
  chi2_result cfg ~name:"stability_hist/chi2"
    ~expected:(Dist.stability_hist_law ~eps ~delta cells)
    ~observed ~n

let laplace_dp ~stream cfg =
  let eps = 0.5 in
  dp_check ~name:"laplace/dp" ~claimed:(Prim.Dp.pure ~eps)
    ~events:(Distinguisher.thresholds ~lo:44. ~hi:58. ~count:15)
    ~left:(fun r -> Prim.Laplace.count r ~eps 50)
    ~right:(fun r -> Prim.Laplace.count r ~eps 51)
    ~cost:1 ~stream cfg

let gaussian_dp ~stream cfg =
  let eps = 0.5 and delta = 1e-5 in
  let sigma = Prim.Gaussian_mech.sigma ~eps ~delta ~l2_sensitivity:1.0 in
  dp_check ~name:"gaussian/dp"
    ~claimed:(Prim.Dp.v ~eps ~delta)
    ~events:(Distinguisher.thresholds ~lo:42. ~hi:60. ~count:15)
    ~left:(fun r -> 50. +. Prim.Rng.gaussian r ~sigma ())
    ~right:(fun r -> 51. +. Prim.Rng.gaussian r ~sigma ())
    ~cost:1 ~stream cfg

(* Neighbouring sensitivity-1 score vectors shared by the exponential
   mechanism and report-noisy-max checks. *)
let scores_a = [| 3.; 5.; 4. |]

let scores_b = [| 4.; 4.; 3. |]

let exp_mech_dp ~stream cfg =
  let eps = 0.5 in
  dp_check ~name:"exp_mech/dp" ~claimed:(Prim.Dp.pure ~eps)
    ~events:(Distinguisher.categories ~k:(Array.length scores_a))
    ~left:(fun r -> Prim.Exp_mech.select r ~eps ~sensitivity:1.0 ~qualities:scores_a)
    ~right:(fun r -> Prim.Exp_mech.select r ~eps ~sensitivity:1.0 ~qualities:scores_b)
    ~cost:1 ~stream cfg

let noisy_max_dp ~stream cfg =
  let eps = 0.5 in
  dp_check ~name:"noisy_max/dp" ~claimed:(Prim.Dp.pure ~eps)
    ~events:(Distinguisher.categories ~k:(Array.length scores_a))
    ~left:(fun r -> Prim.Noisy_max.argmax r ~eps ~sensitivity:1.0 scores_a)
    ~right:(fun r -> Prim.Noisy_max.argmax r ~eps ~sensitivity:1.0 scores_b)
    ~cost:1 ~stream cfg

let sparse_vector_dp ~stream cfg =
  let eps = 1.0 in
  let queries_a = [| 9.; 11.; 9.; 12.; 8. |] in
  let queries_b = Array.map (fun q -> q +. 1.) queries_a in
  let fire queries r =
    let sv = Prim.Sparse_vector.create r ~eps ~threshold:10. in
    let n = Array.length queries in
    let rec go i =
      if i >= n then n
      else
        match Prim.Sparse_vector.query sv queries.(i) with
        | Prim.Sparse_vector.Above -> i
        | Prim.Sparse_vector.Below -> go (i + 1)
    in
    go 0
  in
  dp_check ~name:"sparse_vector/dp" ~claimed:(Prim.Dp.pure ~eps)
    ~events:(Distinguisher.categories ~k:(Array.length queries_a + 1))
    ~left:(fire queries_a) ~right:(fire queries_b) ~cost:1 ~stream cfg

let stability_hist_dp ~stream cfg =
  let eps = 1.0 and delta = 1e-4 in
  let obs cells r =
    match Prim.Stability_hist.select r ~eps ~delta cells with
    | None -> 0
    | Some cell -> if cell.Prim.Stability_hist.key = "x" then 1 else 2
  in
  dp_check ~name:"stability_hist/dp"
    ~claimed:(Prim.Dp.v ~eps ~delta)
    ~events:(Distinguisher.categories ~k:3)
    ~left:(obs [ ("x", 30) ])
    ~right:(obs [ ("x", 30); ("y", 1) ])
    ~cost:1 ~stream cfg

let noisy_avg_dp ~stream cfg =
  let eps = 1.0 and delta = 1e-5 in
  let vectors_a = Array.make 200 [| 0.25 |] in
  let vectors_b = Array.mapi (fun i v -> if i = 0 then [| 0.75 |] else v) vectors_a in
  let obs vectors r =
    match
      Prim.Noisy_avg.run r ~eps ~delta ~diameter:1.0 ~pred:(fun _ -> true) ~dim:1 vectors
    with
    | Prim.Noisy_avg.Average a -> a.Prim.Noisy_avg.average.(0)
    | Prim.Noisy_avg.Bottom -> Float.nan
  in
  dp_check ~name:"noisy_avg/dp"
    ~claimed:(Prim.Dp.v ~eps ~delta)
    ~events:
      (("bottom", fun x -> Float.is_nan x)
      :: Distinguisher.thresholds ~lo:0.2 ~hi:0.3 ~count:11)
    ~left:(obs vectors_a) ~right:(obs vectors_b) ~cost:4 ~stream cfg

(* Neighbouring planted datasets for the composite solver checks: the
   right side moves one input point to the domain corner. *)
let neighbour_workload cfg ~axis ~n ~radius =
  let grid = Geometry.Grid.create ~axis_size:axis ~dim:2 in
  let data_rng = Prim.Rng.create ~seed:(cfg.seed + 7919) () in
  let w =
    Workload.Synth.planted_ball data_rng ~grid ~n ~cluster_fraction:0.5 ~cluster_radius:radius
  in
  let left = w.Workload.Synth.points in
  let right = Array.copy left in
  right.(0) <- Geometry.Grid.snap grid [| 0.01; 0.01 |];
  (grid, left, right)

let good_radius_dp ~stream cfg =
  let eps = 1.0 and delta = 1e-6 and beta = 0.1 and t = 100 in
  let grid, left, right = neighbour_workload cfg ~axis:64 ~n:250 ~radius:0.06 in
  let index points = Geometry.Pointset.auto_index (Geometry.Pointset.create points) in
  let idx_left = index left and idx_right = index right in
  let obs idx r =
    (Privcluster.Good_radius.run r Privcluster.Profile.practical ~grid ~eps ~delta ~beta ~t idx)
      .Privcluster.Good_radius.radius
  in
  dp_check ~name:"good_radius/dp"
    ~claimed:(Prim.Dp.v ~eps ~delta)
    ~events:(Distinguisher.thresholds ~lo:0.02 ~hi:0.5 ~count:13)
    ~left:(obs idx_left) ~right:(obs idx_right) ~cost:20 ~stream cfg

let one_cluster_dp ~stream cfg =
  let eps = 1.0 and delta = 1e-6 and beta = 0.1 and t = 60 in
  let grid, left, right = neighbour_workload cfg ~axis:64 ~n:150 ~radius:0.08 in
  let index points = Geometry.Pointset.auto_index (Geometry.Pointset.create points) in
  let idx_left = index left and idx_right = index right in
  let obs idx r =
    match
      Privcluster.One_cluster.run_indexed r Privcluster.Profile.practical ~grid ~eps ~delta
        ~beta ~t idx
    with
    | Ok res -> res.Privcluster.One_cluster.radius
    | Error _ -> Float.nan
  in
  dp_check ~name:"one_cluster/dp"
    ~claimed:(Prim.Dp.v ~eps ~delta)
    ~events:
      (("failed", fun x -> Float.is_nan x)
      :: Distinguisher.thresholds ~lo:0.02 ~hi:0.6 ~count:11)
    ~left:(obs idx_left) ~right:(obs idx_right) ~cost:40 ~stream cfg

(* The engine's reserve/commit fallback path, end to end: a one-cluster
   job with an already-expired deadline and [fallback=true] is admitted
   (charge + reservation), times out without drawing noise, then degrades
   to the GoodRadius fallback whose reservation is committed.  The
   observable is the degraded radius; the claimed budget is the
   {e reservation's} price (ε/2, δ/2 of the job), which is exactly what
   the released output consumed. *)
let engine_fallback_dp ~stream cfg =
  let job_eps = 1.0 and job_delta = 1e-6 in
  let _, left_points, right_points = neighbour_workload cfg ~axis:64 ~n:200 ~radius:0.06 in
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:2 in
  let spec =
    {
      Engine.Job.id = "probe";
      kind = Engine.Job.One_cluster { t_fraction = 0.4 };
      eps = job_eps;
      delta = job_delta;
      beta = 0.1;
      deadline_s = Some 0.;
      fallback = true;
    }
  in
  let events =
    ("not-degraded", fun x -> Float.is_nan x)
    :: Distinguisher.thresholds ~lo:0.02 ~hi:0.5 ~count:11
  in
  let preds = Array.of_list (List.map snd events) in
  let total = scaled cfg ~cost:40 in
  let per = max 1 ((total + chunks - 1) / chunks) in
  (* Each chunk owns a private service (the accountant is coordinator-only
     by design, so chunks must not share one); per-trial randomness comes
     from the batch [seed] override, drawn off the chunk's stream. *)
  let parts, _ =
    fanout cfg ~stream
      ~f:(fun rng count ->
        let service =
          Engine.Service.create ~domains:1 ~retries:0 ~faults:Engine.Faults.none ()
        in
        let budget = Prim.Dp.v ~eps:1e9 ~delta:0.99 in
        let register name points =
          Engine.Service.register service ~name ~grid ~budget points
        in
        let ds_left = register "left" left_points in
        let ds_right = register "right" right_points in
        let observe dataset =
          let seed = Prim.Rng.int rng 0x3FFFFFFF in
          match Engine.Service.run_batch ~seed service ~dataset [ spec ] with
          | [ { Engine.Job.status = Engine.Job.Degraded { output = Engine.Job.Radius { radius; _ }; _ }; _ } ]
            ->
              radius
          | _ -> Float.nan
        in
        let k = Array.length preds in
        let cl = Array.make k 0 and cr = Array.make k 0 in
        for _ = 1 to count do
          let ol = observe ds_left and or_ = observe ds_right in
          Array.iteri (fun j p -> if p ol then cl.(j) <- cl.(j) + 1) preds;
          Array.iteri (fun j p -> if p or_ then cr.(j) <- cr.(j) + 1) preds
        done;
        (cl, cr))
      total
  in
  let k = Array.length preds in
  let sum pick =
    let acc = Array.make k 0 in
    List.iter (fun part -> Array.iteri (fun j v -> acc.(j) <- acc.(j) + v) (pick part)) parts;
    acc
  in
  let n = per * chunks in
  dp_result ~name:"engine_fallback/dp"
    (Distinguisher.verdict
       ~claimed:(Prim.Dp.v ~eps:(job_eps /. 2.) ~delta:(job_delta /. 2.))
       ~slack:cfg.slack ~alpha:cfg.alpha ~events:(List.map fst events)
       ~left:(n, sum fst) ~right:(n, sum snd) ())

(* one_cluster/utility is defined with the other certifier checks below
   (shared rendering via [certifier_result]). *)

(* ------------------------------------------------------------------ *)
(* The local-model competitor.  Its only data-dependent message is the
   k-ary randomized-response report, so the randomizer IS the privacy
   barrier: the chi-square check pins its exact law, the dp check its ε,
   and the negative control proves the harness would catch a
   mis-calibrated one (a randomizer leaking 2ε while claiming ε — the
   local-model mirror of the mis-scaled-Laplace canary). *)

let local_rr_eps = 1.2

let local_rr_k = 12

let local_cluster_chi2 ~stream cfg =
  let cell = 5 in
  let observed, n =
    count_categories cfg ~stream ~total:cfg.trials ~k:local_rr_k (fun r ->
        Privcluster.Local_cluster.randomize r ~eps:local_rr_eps ~k:local_rr_k cell)
  in
  chi2_result cfg ~name:"local_cluster/chi2"
    ~expected:(Dist.local_randomizer_law ~eps:local_rr_eps ~k:local_rr_k ~cell)
    ~observed ~n

(* Neighbouring local views are just two different true cells. *)
let local_cluster_dp ~stream cfg =
  dp_check ~name:"local_cluster/dp" ~claimed:(Prim.Dp.pure ~eps:local_rr_eps)
    ~events:(Distinguisher.categories ~k:local_rr_k)
    ~left:(fun r -> Privcluster.Local_cluster.randomize r ~eps:local_rr_eps ~k:local_rr_k 2)
    ~right:(fun r -> Privcluster.Local_cluster.randomize r ~eps:local_rr_eps ~k:local_rr_k 9)
    ~cost:1 ~stream cfg

let local_cluster_negative ~stream cfg =
  let actual = 2. *. local_rr_eps in
  let events = Distinguisher.categories ~k:local_rr_k in
  let names = List.map fst events in
  let preds = Array.of_list (List.map snd events) in
  let left, right =
    dp_counts cfg ~stream ~events:preds
      ~left:(fun r -> Privcluster.Local_cluster.randomize r ~eps:actual ~k:local_rr_k 2)
      ~right:(fun r -> Privcluster.Local_cluster.randomize r ~eps:actual ~k:local_rr_k 9)
      (scaled cfg ~cost:1)
  in
  let v =
    Distinguisher.verdict ~claimed:(Prim.Dp.pure ~eps:local_rr_eps) ~slack:cfg.slack
      ~alpha:cfg.alpha ~events:names ~left ~right ()
  in
  (* Negative control: this check PASSES exactly when the distinguisher
     flags the planted violation. *)
  {
    name = "local_cluster/negative";
    kind = "distinguisher";
    status = (if v.Distinguisher.violation then Pass else Violation);
    detail =
      Format.asprintf "negative control (leaks 2ε, claims ε) — %s: %a"
        (if v.Distinguisher.violation then "caught" else "MISSED")
        Distinguisher.pp_verdict v;
    json =
      Engine.Json.Obj
        [ ("negative_control", Engine.Json.Bool true); ("verdict", verdict_json v) ];
  }

let certifier_result ~name (spec : Certifier.spec) (o : Certifier.outcome) =
  let ci = o.Certifier.failure_ci in
  {
    name;
    kind = "utility";
    status = (if o.Certifier.violation then Violation else Pass);
    detail =
      Printf.sprintf
        "failures %d/%d (CI [%.3f, %.3f]) vs beta %g; solver %d, coverage %d, radius %d; median w %.2f"
        o.Certifier.failures spec.Certifier.runs ci.Stats.lo ci.Stats.hi spec.Certifier.beta
        o.Certifier.solver_failures o.Certifier.coverage_failures o.Certifier.radius_failures
        o.Certifier.median_w;
    json =
      Engine.Json.Obj
        [
          ("runs", Engine.Json.Int spec.Certifier.runs);
          ("beta", Engine.Json.Float spec.Certifier.beta);
          ("w_max", Engine.Json.Float spec.Certifier.w_max);
          ("failures", Engine.Json.Int o.Certifier.failures);
          ("solver_failures", Engine.Json.Int o.Certifier.solver_failures);
          ("coverage_failures", Engine.Json.Int o.Certifier.coverage_failures);
          ("radius_failures", Engine.Json.Int o.Certifier.radius_failures);
          ("failure_rate", Engine.Json.Float o.Certifier.failure_rate);
          ("failure_ci", interval_json ci);
          ("median_w", Engine.Json.Float o.Certifier.median_w);
          ("median_coverage_margin", Engine.Json.Float o.Certifier.median_coverage_margin);
          ("violation", Engine.Json.Bool o.Certifier.violation);
        ];
  }

let one_cluster_utility ~stream cfg =
  let spec =
    { Certifier.default_spec with Certifier.runs = (if cfg.deep then 400 else 150) }
  in
  certifier_result ~name:"one_cluster/utility" spec
    (Certifier.one_cluster (base_rng cfg ~stream) ~alpha:cfg.alpha ~domains:cfg.domains
       Privcluster.Profile.practical spec)

let local_cluster_utility ~stream cfg =
  let spec =
    {
      Certifier.local_default_spec with
      Certifier.runs = (if cfg.deep then 200 else 80);
    }
  in
  certifier_result ~name:"local_cluster/utility" spec
    (Certifier.local_cluster (base_rng cfg ~stream) ~alpha:cfg.alpha ~domains:cfg.domains spec)

(* The coreset MEB pipeline end to end on neighbouring small datasets:
   the observable is the released radius (NaN on ⊥). *)
let meb_fptas_dp ~stream cfg =
  let eps = 1.0 and delta = 1e-6 and t = 60 in
  let grid, left, right = neighbour_workload cfg ~axis:64 ~n:150 ~radius:0.08 in
  let obs points r =
    match
      Baselines.Meb_fptas.run r ~grid ~eps ~delta ~coreset:40
        ~t (Geometry.Pointset.create points)
    with
    | Ok res -> res.Baselines.Meb_fptas.radius
    | Error _ -> Float.nan
  in
  dp_check ~name:"meb_fptas/dp"
    ~claimed:(Prim.Dp.v ~eps ~delta)
    ~events:
      (("failed", fun x -> Float.is_nan x)
      :: Distinguisher.thresholds ~lo:0.02 ~hi:0.6 ~count:11)
    ~left:(obs left) ~right:(obs right) ~cost:10 ~stream cfg

let meb_fptas_utility ~stream cfg =
  let spec =
    { Certifier.meb_default_spec with Certifier.runs = (if cfg.deep then 400 else 150) }
  in
  certifier_result ~name:"meb_fptas/utility" spec
    (Certifier.meb_fptas (base_rng cfg ~stream) ~alpha:cfg.alpha ~domains:cfg.domains spec)

(* ------------------------------------------------------------------ *)
(* Registry.  Stream ids come from registry position (spaced out so a
   check can sub-derive freely) and are stable under [?only] filtering. *)

let registry : (string * (stream:int -> config -> result)) list =
  [
    ("laplace/ks", laplace_ks);
    ("laplace/ad", laplace_ad);
    ("gaussian/ks", gaussian_ks);
    ("gaussian/ad", gaussian_ad);
    ("exp_mech/chi2", exp_mech_chi2);
    ("stability_hist/chi2", stability_hist_chi2);
    ("laplace/dp", laplace_dp);
    ("gaussian/dp", gaussian_dp);
    ("exp_mech/dp", exp_mech_dp);
    ("noisy_max/dp", noisy_max_dp);
    ("sparse_vector/dp", sparse_vector_dp);
    ("stability_hist/dp", stability_hist_dp);
    ("noisy_avg/dp", noisy_avg_dp);
    ("good_radius/dp", good_radius_dp);
    ("one_cluster/dp", one_cluster_dp);
    ("engine_fallback/dp", engine_fallback_dp);
    ("one_cluster/utility", one_cluster_utility);
    ("local_cluster/chi2", local_cluster_chi2);
    ("local_cluster/dp", local_cluster_dp);
    ("local_cluster/negative", local_cluster_negative);
    ("local_cluster/utility", local_cluster_utility);
    ("meb_fptas/dp", meb_fptas_dp);
    ("meb_fptas/utility", meb_fptas_utility);
  ]

let names () = List.map fst registry

let group_of name =
  match String.index_opt name '/' with Some i -> String.sub name 0 i | None -> name

let grouped_names () =
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun name ->
      let g = group_of name in
      match Hashtbl.find_opt seen g with
      | Some members -> members := name :: !members
      | None ->
          Hashtbl.add seen g (ref [ name ]);
          order := g :: !order)
    (names ());
  List.rev_map (fun g -> (g, List.rev !(Hashtbl.find seen g))) !order

let exit_status ~matched ~violations =
  if not matched then 2 else if violations > 0 then 1 else 0

let selected only name =
  match only with
  | None -> true
  | Some picks ->
      List.exists
        (fun pick -> pick = name || String.length pick > 0 && String.starts_with ~prefix:(pick ^ "/") name)
        picks

let run ?only cfg =
  List.filteri (fun _ _ -> true) registry
  |> List.mapi (fun i (name, f) -> (i, name, f))
  |> List.filter_map (fun (i, name, f) ->
         if selected only name then Some (f ~stream:(100 + (50 * i)) cfg) else None)

let report_json cfg results =
  let passes = List.length (List.filter (fun r -> r.status = Pass) results) in
  let violations = List.length (List.filter (fun r -> r.status = Violation) results) in
  Engine.Json.Obj
    [
      ( "config",
        Engine.Json.Obj
          [
            ("seed", Engine.Json.Int cfg.seed);
            ("trials", Engine.Json.Int cfg.trials);
            ("deep", Engine.Json.Bool cfg.deep);
            ("significance", Engine.Json.Float cfg.significance);
            ("alpha", Engine.Json.Float cfg.alpha);
            ("slack", Engine.Json.Float cfg.slack);
            ("domains", Engine.Json.Int cfg.domains);
          ] );
      ( "checks",
        Engine.Json.List
          (List.map
             (fun r ->
               Engine.Json.Obj
                 [
                   ("name", Engine.Json.String r.name);
                   ("kind", Engine.Json.String r.kind);
                   ( "status",
                     Engine.Json.String
                       (match r.status with Pass -> "pass" | Violation -> "violation") );
                   ("detail", Engine.Json.String r.detail);
                   ("data", r.json);
                 ])
             results) );
      ( "summary",
        Engine.Json.Obj
          [
            ("checks", Engine.Json.Int (List.length results));
            ("passes", Engine.Json.Int passes);
            ("violations", Engine.Json.Int violations);
          ] );
    ]
