lib/core/kmeans_sa.mli: Geometry One_cluster Prim Profile Sample_aggregate Stdlib
