type t = { points : Vec.t array; dim : int }

let create points =
  let count = Array.length points in
  if count = 0 then invalid_arg "Pointset.create: empty";
  let dim = Vec.dim points.(0) in
  Array.iter
    (fun p -> if Vec.dim p <> dim then invalid_arg "Pointset.create: mixed dimensions")
    points;
  { points; dim }

let n t = Array.length t.points
let dim t = t.dim
let point t i = t.points.(i)
let points t = t.points
let map_points f t = create (Array.map f t.points)
let filter pred t = Array.of_list (List.filter pred (Array.to_list t.points))
let subset t ~indices = create (Array.map (fun i -> t.points.(i)) indices)

let ball_count t ~center ~radius =
  let r2 = radius *. radius in
  Array.fold_left (fun acc p -> if Vec.dist_sq p center <= r2 then acc + 1 else acc) 0 t.points

let ball_points t ~center ~radius =
  let r2 = radius *. radius in
  filter (fun p -> Vec.dist_sq p center <= r2) t

let capped_ball_count t ~cap ~center ~radius = min cap (ball_count t ~center ~radius)

let top_average counts ~k =
  let len = Array.length counts in
  if k <= 0 || k > len then invalid_arg "Pointset.top_average: bad k";
  let sorted = Array.copy counts in
  Array.sort (fun a b -> Float.compare b a) sorted;
  let acc = ref 0. in
  for i = 0 to k - 1 do
    acc := !acc +. sorted.(i)
  done;
  !acc /. float_of_int k

let score_l_direct t ~cap ~radius =
  if radius < 0. then 0.
  else begin
    let counts =
      Array.map
        (fun p -> float_of_int (capped_ball_count t ~cap ~center:p ~radius))
        t.points
    in
    top_average counts ~k:(min cap (n t))
  end

type backend =
  | Dense of float array array  (** per-point sorted distance rows *)
  | Tree of Kdtree.t

type index = { ps : t; backend : backend }

let build_index ps =
  let count = n ps in
  let sorted_dists =
    Array.init count (fun i ->
        let row = Array.map (fun p -> Vec.dist ps.points.(i) p) ps.points in
        Array.sort Float.compare row;
        row)
  in
  { ps; backend = Dense sorted_dists }

let build_tree_index ps = { ps; backend = Tree (Kdtree.build ps.points) }

let auto_index ?(dense_threshold = 4096) ps =
  if n ps <= dense_threshold then build_index ps else build_tree_index ps

let index_is_dense idx = match idx.backend with Dense _ -> true | Tree _ -> false
let index_pointset idx = idx.ps

(* Number of entries in the sorted row that are <= radius. *)
let count_row row radius =
  let len = Array.length row in
  if len = 0 || row.(0) > radius then 0
  else begin
    (* Invariant: row.(lo) <= radius < row.(hi) (hi = len means none above). *)
    let lo = ref 0 and hi = ref len in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if row.(mid) <= radius then lo := mid else hi := mid
    done;
    !lo + 1
  end

let counts_within idx ~radius =
  if radius < 0. then Array.make (n idx.ps) 0
  else
    match idx.backend with
    | Dense rows -> Array.map (fun row -> count_row row radius) rows
    | Tree tree -> Kdtree.counts_within_all tree idx.ps.points ~radius

let score_l idx ~cap ~radius =
  if radius < 0. then 0.
  else begin
    let counts = counts_within idx ~radius in
    let capped = Array.map (fun c -> float_of_int (min c cap)) counts in
    top_average capped ~k:(min cap (n idx.ps))
  end

let kth_neighbor_distance idx ~k i =
  if k <= 0 || k > n idx.ps then invalid_arg "Pointset.kth_neighbor_distance: bad k";
  match idx.backend with
  | Dense rows -> rows.(i).(k - 1)
  | Tree tree ->
      (* The count around x_i is a step function of the radius jumping past
         k exactly at the k-th neighbor distance; bisect that jump. *)
      let center = idx.ps.points.(i) in
      let count r = Kdtree.count_within tree ~center ~radius:r in
      let lo = ref 0. and hi = ref (Vec.norm_inf center +. 2. *. sqrt (float_of_int idx.ps.dim)) in
      (* Ensure hi really covers k points (data may live outside [0,1]^d). *)
      while count !hi < k do
        hi := 2. *. Float.max 1. !hi
      done;
      for _ = 1 to 100 do
        let mid = 0.5 *. (!lo +. !hi) in
        if count mid >= k then hi := mid else lo := mid
      done;
      !hi
