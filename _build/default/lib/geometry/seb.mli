(** Non-private enclosing-ball computations.

    Section 3 recalls three facts about the minimal ball enclosing [t] of
    [n] points: exact solution is NP-hard [Shenmaier 2013]; a PTAS exists
    [Agarwal et al.]; and restricting centers to input points gives a simple
    2-approximation.  This module supplies the non-private reference
    solvers the experiments compare against:

    - the exact 1-D solver (sliding window over sorted coordinates);
    - the 2-approximation (fact 3) in any dimension;
    - Bădoiu–Clarkson core-set iteration for the (1+α)-approximate minimum
      enclosing ball of {e all} points, used to tighten reference radii and
      as the aggregation step of non-private pipelines. *)

type ball = { center : Vec.t; radius : float }

val contains : ball -> Vec.t -> bool
val count_inside : ball -> Vec.t array -> int

val exact_1d : float array -> t:int -> ball
(** Smallest interval (as a 1-D ball) containing [t] of the coordinates.
    O(n log n).  @raise Invalid_argument if [t] is not in [1, n]. *)

val two_approx : Pointset.t -> t:int -> ball
(** Smallest ball {e centered at an input point} containing [t] points;
    its radius is at most [2·r_opt] (Section 3, fact 3).  O(n²·d). *)

val two_approx_indexed : Pointset.index -> t:int -> ball
(** Same via a prebuilt distance index: O(n) lookups. *)

val min_enclosing_ball : ?iterations:int -> Vec.t array -> ball
(** Bădoiu–Clarkson: after [k] iterations the radius is within a factor
    [1 + O(1/√k)] of the minimum enclosing ball of all the points (default
    100 iterations).  @raise Invalid_argument on an empty array. *)

val t_ball_heuristic : ?iterations:int -> Pointset.t -> t:int -> ball
(** Best-effort reference for [r_opt]: start from {!two_approx}, then
    alternate (a) keep the [t] points nearest the current center and
    (b) recenter with {!min_enclosing_ball} on them.  Radius never exceeds
    the 2-approximation; experiments use it as the non-private [r_opt]
    estimate (together with the planted radius when the workload knows it). *)
