lib/prim/rng.mli:
