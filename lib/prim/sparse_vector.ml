type answer = Above | Below

type mode = Plain | Numeric

type t = {
  rng : Rng.t;
  eps_each : float;  (** Budget of each single-firing instance. *)
  threshold : float;
  mode : mode;
  mutable noisy_threshold : float;
  mutable firings_left : int;
  mutable asked : int;
}

(* Plain mode splits each instance's ε as: ε/2 to the threshold perturbation
   (scale 2/ε) and ε/2 shared by the per-query noise (scale 4/ε); one Above
   answer per instance.  Numeric mode halves both (scales 4/ε and 8/ε) to
   reserve ε/2 for the released value. *)
let threshold_scale t =
  match t.mode with Plain -> 2. /. t.eps_each | Numeric -> 4. /. t.eps_each

let query_scale t =
  match t.mode with Plain -> 4. /. t.eps_each | Numeric -> 8. /. t.eps_each

let arm t = t.noisy_threshold <- t.threshold +. Rng.laplace t.rng ~scale:(threshold_scale t) ()

(* The whole ε is charged here at creation: it pays for the threshold
   perturbation and every later query/release draw of this instance. *)
let make rng ~eps ~threshold ~firings ~mode =
  if not (eps > 0.) then invalid_arg "Sparse_vector.create: eps must be positive";
  if firings < 1 then invalid_arg "Sparse_vector.create_multi: firings must be >= 1";
  Obs.Span.with_charged
    ~attrs:(fun () -> [ ("firings", Obs.Span.I firings) ])
    ~eps ~delta:0. "sparse_vector"
    (fun () ->
      let t =
        {
          rng;
          eps_each = eps /. float_of_int firings;
          threshold;
          mode;
          noisy_threshold = 0.;
          firings_left = firings;
          asked = 0;
        }
      in
      arm t;
      t)

let create_multi rng ~eps ~threshold ~firings = make rng ~eps ~threshold ~firings ~mode:Plain
let create rng ~eps ~threshold = create_multi rng ~eps ~threshold ~firings:1
let create_numeric rng ~eps ~threshold = make rng ~eps ~threshold ~firings:1 ~mode:Numeric

let query t value =
  if t.firings_left <= 0 then invalid_arg "Sparse_vector.query: mechanism already halted";
  t.asked <- t.asked + 1;
  let noisy = value +. Rng.laplace t.rng ~scale:(query_scale t) () in
  if noisy >= t.noisy_threshold then begin
    t.firings_left <- t.firings_left - 1;
    if t.firings_left > 0 then arm t;
    Above
  end
  else Below

let query_numeric t value =
  if t.mode <> Numeric then
    invalid_arg "Sparse_vector.query_numeric: mechanism not built by create_numeric";
  match query t value with
  | Below -> None
  | Above ->
      (* The ε/2 reserved at creation pays for this one Laplace release. *)
      Some (value +. Rng.laplace t.rng ~scale:(2. /. t.eps_each) ())

let halted t = t.firings_left <= 0
let firings_left t = t.firings_left
let queries_asked t = t.asked

let accuracy_bound ~eps ~k ~beta =
  if k <= 0 then invalid_arg "Sparse_vector.accuracy_bound: k must be positive";
  if not (beta > 0. && beta <= 1.) then
    invalid_arg "Sparse_vector.accuracy_bound: beta in (0, 1]";
  8. /. eps *. log (2. *. float_of_int k /. beta)
