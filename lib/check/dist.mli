(** Exact reference laws for the shipped mechanisms.

    A distribution test is only as good as its null hypothesis; this module
    centralizes the closed-form (or quadrature-computed) output laws the
    goodness-of-fit testers in {!Stats} compare empirical samples against.
    The Laplace and exponential-mechanism laws delegate to the mechanism
    modules themselves ({!Prim.Laplace.cdf}, {!Prim.Exp_mech.probabilities})
    so the test and the implementation can never disagree about the intended
    calibration; the stability-histogram law has no closed form and is
    computed here by adaptive-step Simpson quadrature over the Laplace
    noise. *)

val laplace_cdf : eps:float -> sensitivity:float -> ?mu:float -> float -> float
(** [Prim.Laplace.cdf] re-exported: the law of one released value centered
    at the true answer [mu]. *)

val gaussian_cdf : sigma:float -> ?mu:float -> float -> float
(** The law of one Gaussian-mechanism coordinate at noise level [sigma]. *)

val exp_mech_law : eps:float -> sensitivity:float -> qualities:float array -> float array
(** [Prim.Exp_mech.probabilities] re-exported. *)

val stability_hist_law :
  eps:float -> delta:float -> ('k * int) list -> float array
(** The exact output law of {!Prim.Stability_hist.select} on the given
    non-empty cells: entry [i] is the probability that cell [i] (in list
    order) is released, and the final extra entry is the probability that
    nothing clears the threshold.  Computed by numerically integrating
    [P(noisy_i = max ∧ noisy_i ≥ threshold)]; accurate to ~1e-6, far below
    any sampling error the harness can resolve. *)

val local_randomizer_law : eps:float -> k:int -> cell:int -> float array
(** [Privcluster.Local_cluster.law] re-exported: the exact output law of
    one [k]-ary randomized-response report whose true bucket is [cell]
    ([e^ε/(e^ε+k−1)] there, [1/(e^ε+k−1)] elsewhere; sums to 1 exactly).
    The local-model pipeline's only data-dependent message, hence the law
    its chi-square and distinguisher checks are judged against. *)
