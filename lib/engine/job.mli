(** Job descriptions and results for the query engine.

    A job is one private query against a registered dataset, carrying its
    own [(ε, δ)] price (what the accountant is asked for), a failure
    probability β where the underlying solver takes one, and an optional
    deadline.  Three kinds map onto the three entry points the engine
    serves:

    - [one_cluster] — {!Privcluster.One_cluster.run_indexed} at
      [t = ⌈t_fraction · n⌉];
    - [k_cluster] — {!Privcluster.K_cluster.run} (Observation 3.5);
    - [quantile] — {!Privcluster.Quantile.quantile} on one coordinate axis
      of the dataset (an [(ε, 0)]-DP query; [delta] defaults to 0);
    - [mutate] — an epoch transition ({!Registry.append} of synthetic
      points, or {!Registry.retire} of an index range); free of charge
      and executed by the batch coordinator, not a worker;
    - [standing] — a standing 1-cluster query: [(eps, delta)] declares a
      {e total} budget, reserved up front in [periods] equal slices; one
      slice is committed per epoch the query is re-answered on;
    - [local_cluster] — {!Privcluster.Local_cluster.run}, the local-model
      (LDP) competitor, at [t = ⌈t_fraction · n⌉]; pure ε, so [delta]
      defaults to 0;
    - [meb_fptas] — {!Baselines.Meb_fptas.run}, the coreset minimum
      enclosing ball competitor, with an optional [coreset] sample size
      (default 400).

    {2 Jobs-file format}

    One job per line; [#] starts a comment; blank lines are skipped:

    {v
    # kind        key=value ...
    one_cluster   t_fraction=0.45 eps=0.5 delta=1e-7
    k_cluster     k=3 t_fraction=0.2 eps=1.0 delta=1e-7 deadline=30
    quantile      q=0.5 axis=0 eps=0.25 id=median-x
    mutate        op=append n=500 seed=11 frac=0.5 radius=0.05
    mutate        op=retire from=0 count=100
    standing      t_fraction=0.45 periods=4 eps=0.8 delta=4e-7 id=watch
    local_cluster t_fraction=0.6 eps=2.0
    meb_fptas     t_fraction=0.8 coreset=200 eps=1.0 delta=1e-7
    v}

    Recognized keys: [eps] (required except for [mutate], default 0 there),
    [delta] (required for [one_cluster], [k_cluster], [standing] and
    [meb_fptas], default [0] otherwise), [beta] (default 0.1), [t_fraction] (default
    0.5), [k] (required for [k_cluster]), [q] (default 0.5), [axis]
    (default 0), [deadline] (seconds, default none), [fallback]
    (true/false, default false; [one_cluster] only), [id] (default
    ["j<line-position>"]); for [mutate]: [op] (required, [append] or
    [retire]), [n]/[seed] (required for append), [frac] (default 0.5),
    [radius] (default 0.05), [from]/[count] (required for retire); for
    [standing]: [periods] (required, ≥ 1); for [meb_fptas]: [coreset]
    (default 400). *)

type mutation_op =
  | Append_synth of { n : int; seed : int; frac : float; radius : float }
      (** Append [n] points drawn by {!Workload.Synth.planted_ball} from
          a dedicated RNG seeded with [seed] — deterministic, so a WAL
          replay reproduces the exact rows. *)
  | Retire_range of { from_ : int; count : int }

type kind =
  | One_cluster of { t_fraction : float }
  | K_cluster of { k : int; t_fraction : float }
  | Quantile of { axis : int; q : float }
  | Mutate of mutation_op
  | Standing of { t_fraction : float; periods : int }
  | Local_cluster of { t_fraction : float }
  | Meb of { t_fraction : float; coreset : int }

type spec = {
  id : string;
  kind : kind;
  eps : float;
  delta : float;
  beta : float;
  deadline_s : float option;
  fallback : bool;
      (** Opt-in graceful degradation: when the job cannot complete
          (retries exhausted, deadline blown, solver failure), run the
          radius-only fallback whose charge was reserved at admission and
          report {!Degraded}. *)
}

val kind_name : kind -> string
(** ["one_cluster"], ["k_cluster"], ["quantile"], ["mutate"],
    ["standing"], ["local_cluster"], ["meb_fptas"]. *)

val cost : spec -> Prim.Dp.params
(** What the accountant is charged: the job's [(ε, δ)]. *)

val fallback_cost : spec -> Prim.Dp.params option
(** What the accountant additionally {e reserves} at admission when the
    job opts into degradation: [(ε/2, δ/2)] for a [one_cluster] job with
    [fallback = true] — the GoodRadius stage share of the full pipeline's
    even split — and [None] otherwise. *)

val parse : ?default_beta:float -> string -> (spec list, string) result
(** Parse a whole jobs file (the contents, not a path).  [Error] carries a
    one-line message with the offending line number. *)

val spec_to_line : spec -> string
(** Render a spec back to the file format ([parse]-roundtrippable). *)

(** {1 Results} *)

type ball = { center : Geometry.Vec.t; radius : float; covered : int }

type output =
  | Cluster of { ball : ball; t : int; ratio_vs_hi : float; delta_bound : float }
      (** [ratio_vs_hi] is radius / r_hi against the registry's cached
          sandwich (the experiment suite's [w_private]). *)
  | Clusters of { balls : ball list; uncovered : int; failures : int }
  | Quantile_value of { value : float; target_rank : float }
  | Radius of { radius : float; t : int; delta_bound : float }
      (** The degraded fallback's output: a GoodRadius-only answer — a
          certified radius for target size [t], but no center. *)
  | Epoch_advanced of { epoch : int; n : int }
      (** A [mutate] job's acknowledgement: the dataset's new epoch and
          point count. *)
  | Standing_accepted of { periods : int }
      (** A [standing] job's acknowledgement; subsequent ticks report as
          ordinary {!Cluster} results under ids ["<id>#<k>"]. *)

type status =
  | Completed of output
  | Refused of string  (** Accountant refusal — the job never ran. *)
  | Timed_out of { elapsed_ms : float }
  | Solver_failed of string
      (** The private solver returned its failure value (or every retry
          attempt raised); the budget stays charged — noise may have been
          drawn. *)
  | Degraded of { output : output; reason : string }
      (** The job could not complete but its opt-in fallback did; the
          fallback's reserved charge is committed on top of the job's
          original charge.  [reason] names the original failure. *)

val status_name : status -> string
(** ["ok"], ["refused"], ["timeout"], ["failed"], ["degraded"] — the
    telemetry status vocabulary. *)

type result = { spec : spec; status : status; latency_ms : float; attempts : int }
(** [attempts] — execution attempts consumed (0 for refused jobs, 1 for
    a first-try success, more after retries). *)

val result_to_json : result -> Json.t

val detail : result -> string
(** The headline numbers (or the refusal/failure message) alone — the
    CLI's table cell. *)

val pp_result : Format.formatter -> result -> unit
(** One line: id, kind, status, latency, {!detail}. *)

(** {1 Result caching} *)

val signature : spec -> string
(** The spec's mechanism parameters — kind, kind arguments, [(ε, δ)], β —
    rendered exactly (hex floats), excluding identity and scheduling
    knobs ([id], [deadline], [fallback]).  Two specs with equal
    signatures, run against the same dataset epoch with the same derived
    RNG stream, produce bit-identical outputs; the signature is therefore
    the job-parameter component of {!Result_cache} keys. *)

val output_to_wire : output -> Json.t
(** Exact JSON encoding (hex floats) for WAL journaling; round-trips
    bit-for-bit through {!output_of_wire}. *)

val output_of_wire : Json.t -> (output, string) Stdlib.result
