(* Reflected table-driven CRC-32, polynomial 0xEDB88320 (IEEE). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           c :=
             if Int32.logand !c 1l <> 0l then
               Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
             else Int32.shift_right_logical !c 1
         done;
         !c))

let string s =
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let i = Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code ch))) 0xFFl) in
      crc := Int32.logxor table.(i) (Int32.shift_right_logical !crc 8))
    s;
  Int32.logxor !crc 0xFFFFFFFFl

let to_hex c = Printf.sprintf "%08lx" c

let of_hex s =
  if String.length s <> 8 then None
  else
    try Some (Int32.of_string ("0x" ^ s)) with Failure _ -> None
