type line = {
  label : string;
  ledger : Span.charge;
  events : Span.charge;
  executed : Span.charge option;
  events_ok : bool;
  overspend : bool;
  exact : bool;
  retry_consistent : bool;
}

type report = {
  lines : line list;
  ledger_total : Span.charge;
  executed_total : Span.charge;
  ok : bool;
  exact : bool;
}

(* Sums reach the same totals along different association orders (ledger
   order vs span order), so compare up to float round-off, not bit
   equality. *)
let feq a b = Float.abs (a -. b) <= 1e-9 +. (1e-9 *. Float.max (Float.abs a) (Float.abs b))

let ceq (a : Span.charge) (b : Span.charge) =
  feq a.eps b.eps && feq a.delta b.delta && feq a.rho b.rho

let cle (a : Span.charge) (b : Span.charge) =
  (a.eps <= b.eps || feq a.eps b.eps)
  && (a.delta <= b.delta || feq a.delta b.delta)
  && (a.rho <= b.rho || feq a.rho b.rho)

let tbl_add tbl key c =
  let prev = Option.value ~default:Span.zero_charge (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (Span.add_charges prev c)

let reconcile ~ledger spans =
  (* Ledger totals by label. *)
  let ledger_tbl : (string, Span.charge) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (label, c) -> tbl_add ledger_tbl label c) ledger;
  (* Counted budget events ([charge] and [commit]) by label. *)
  let events_tbl : (string, Span.charge) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (sp : Span.span) ->
      if sp.cat = "budget" && (sp.name = "charge" || sp.name = "commit") then
        match (sp.label, sp.span_charge) with
        | Some label, Some c -> tbl_add events_tbl label c
        | _ -> ())
    spans;
  (* Execution roots: cat="job" spans with a label.  Group by
     (label, stream); within a group only the last attempt counts.
     Attempts that raised (tagged with an "error" attribute — a crashed
     worker, an aborted subtree) legitimately attribute less than a full
     replay, so the equal-charges check runs over clean attempts only;
     a group with no clean attempt (the job failed for good) keeps its
     last partial subtree, which the ≤-ledger bound still covers. *)
  let exec_groups : (string * int, (int * Span.charge * bool) list) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (sp : Span.span) ->
      (* [cached=true] spans trace result-cache hits: the recorded answer
         is replayed without re-running the mechanism, so they are not
         execution attempts — including them would make a label's charges
         look inconsistent across "attempts" (a real run charging ε next
         to a free replay).  A hit charges nothing, so skipping it cannot
         hide an overspend. *)
      if sp.cat = "job" && Span.attr_bool sp "cached" <> Some true then
        match sp.label with
        | None -> ()
        | Some label ->
            let stream = Option.value ~default:0 (Span.attr_int sp "stream") in
            let attempt = Option.value ~default:1 (Span.attr_int sp "attempt") in
            let errored = Span.attr sp "error" <> None in
            let total = Span.attributed spans sp in
            let key = (label, stream) in
            let prev = Option.value ~default:[] (Hashtbl.find_opt exec_groups key) in
            Hashtbl.replace exec_groups key ((attempt, total, errored) :: prev))
    spans;
  let exec_tbl : (string, Span.charge) Hashtbl.t = Hashtbl.create 16 in
  let retry_bad : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  Hashtbl.iter
    (fun (label, _stream) attempts ->
      let clean = List.filter (fun (_, _, e) -> not e) attempts in
      let pool = if clean <> [] then clean else attempts in
      let _, last, _ =
        List.fold_left
          (fun ((besta, _, _) as best) ((a, _, _) as cand) ->
            if a > besta then cand else best)
          (List.hd pool) (List.tl pool)
      in
      List.iter
        (fun (_, c, _) -> if not (ceq c last) then Hashtbl.replace retry_bad label ())
        clean;
      tbl_add exec_tbl label last)
    exec_groups;
  (* One line per label seen anywhere. *)
  let labels : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter (fun l _ -> Hashtbl.replace labels l ()) ledger_tbl;
  Hashtbl.iter (fun l _ -> Hashtbl.replace labels l ()) events_tbl;
  Hashtbl.iter (fun l _ -> Hashtbl.replace labels l ()) exec_tbl;
  let lines =
    Hashtbl.fold (fun l () acc -> l :: acc) labels []
    |> List.sort compare
    |> List.map (fun label ->
           let ledger =
             Option.value ~default:Span.zero_charge (Hashtbl.find_opt ledger_tbl label)
           in
           let events =
             Option.value ~default:Span.zero_charge (Hashtbl.find_opt events_tbl label)
           in
           let executed = Hashtbl.find_opt exec_tbl label in
           let events_ok = ceq ledger events in
           let overspend =
             match executed with None -> false | Some c -> not (cle c ledger)
           in
           let exact = match executed with None -> false | Some c -> ceq c ledger in
           {
             label;
             ledger;
             events;
             executed;
             events_ok;
             overspend;
             exact;
             retry_consistent = not (Hashtbl.mem retry_bad label);
           })
  in
  let ledger_total =
    List.fold_left (fun acc l -> Span.add_charges acc l.ledger) Span.zero_charge lines
  in
  let executed_total =
    List.fold_left
      (fun acc l -> Span.add_charges acc (Option.value ~default:Span.zero_charge l.executed))
      Span.zero_charge lines
  in
  let ok =
    List.for_all (fun l -> l.events_ok && (not l.overspend) && l.retry_consistent) lines
  in
  let exact = List.for_all (fun l -> match l.executed with None -> true | Some _ -> l.exact) lines
  in
  { lines; ledger_total; executed_total; ok; exact }

(* --- rendering ----------------------------------------------------------- *)

let pp_charge (c : Span.charge) =
  if c.rho <> 0. then Printf.sprintf "(%.6g, %.3g; rho=%.6g)" c.eps c.delta c.rho
  else Printf.sprintf "(%.6g, %.3g)" c.eps c.delta

let to_text r =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-28s %-24s %-24s %s\n" "label" "ledger (eps, delta)"
       "executed (eps, delta)" "status");
  List.iter
    (fun l ->
      let executed =
        match l.executed with None -> "-" | Some c -> pp_charge c
      in
      let status =
        if not l.events_ok then "EVENT-MISMATCH"
        else if l.overspend then "OVERSPEND"
        else if not l.retry_consistent then "RETRY-DRIFT"
        else if l.exact then "exact"
        else if l.executed = None then "not-executed"
        else "under"
      in
      Buffer.add_string buf
        (Printf.sprintf "%-28s %-24s %-24s %s\n" l.label (pp_charge l.ledger) executed
           status))
    r.lines;
  Buffer.add_string buf
    (Printf.sprintf "total: ledger %s, executed %s\n" (pp_charge r.ledger_total)
       (pp_charge r.executed_total));
  Buffer.add_string buf
    (Printf.sprintf "attribution: %s%s\n"
       (if r.ok then "OK" else "FAILED")
       (if r.ok then if r.exact then " (exact)" else " (under-utilized lines present)"
        else ""));
  Buffer.contents buf

let charge_json (c : Span.charge) =
  Json.Obj
    ([ ("eps", Json.Float c.eps); ("delta", Json.Float c.delta) ]
    @ if c.rho <> 0. then [ ("rho", Json.Float c.rho) ] else [])

let to_json r =
  Json.Obj
    [
      ( "lines",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("label", Json.String l.label);
                   ("ledger", charge_json l.ledger);
                   ("events", charge_json l.events);
                   ( "executed",
                     match l.executed with None -> Json.Null | Some c -> charge_json c );
                   ("events_ok", Json.Bool l.events_ok);
                   ("overspend", Json.Bool l.overspend);
                   ("exact", Json.Bool l.exact);
                   ("retry_consistent", Json.Bool l.retry_consistent);
                 ])
             r.lines) );
      ("ledger_total", charge_json r.ledger_total);
      ("executed_total", charge_json r.executed_total);
      ("ok", Json.Bool r.ok);
      ("exact", Json.Bool r.exact);
    ]
