(* Benchmark harness: runs the experiment suite (E1–E14, one per table /
   figure / theorem claim — see EXPERIMENTS.md) followed by the Bechamel
   timing benches (B1–B7, one per pipeline stage, plus B9 for the
   statistical-check estimators), the engine throughput bench (B8), the
   one-cluster allocation check, the disabled-tracing overhead gate
   (B10), the daemon round-trip overhead bench (B11), the
   mutate-then-requery epoch/result-cache bench (B12, gated: cache hits
   must charge zero), the native-kernel gates (B13: C fast paths
   bit-identical to the pure-OCaml references, parallel k-d build equal
   to serial, and a kernel speedup floor), and the competitor e2e bench
   (B14: centralized one-cluster vs the LDP protocol vs the private MEB
   fPTAS, gated: the LDP path stays within its documented overhead
   envelope of the centralized call).

   Usage:
     dune exec bench/main.exe                 # full suite
     dune exec bench/main.exe -- --quick      # reduced trials/sweeps
     dune exec bench/main.exe -- --only E1,E4 # subset
     dune exec bench/main.exe -- --jobs 4     # experiments on 4 engine-pool domains
     dune exec bench/main.exe -- --no-timing  # experiments only
     dune exec bench/main.exe -- --timing-only
     dune exec bench/main.exe -- --json out.json   # machine-readable B1-B8 results
     dune exec bench/main.exe -- --fix-n 10000 --fix-d 32  # timing fixture size
     dune exec bench/main.exe -- --smoke      # one tiny call per bench (CI) *)

open Bechamel

let delta = Workload.Harness.default_delta
let beta = Workload.Harness.default_beta

(* A fixed midsize workload shared by all timing benches so their costs are
   comparable.  [n]/[dim] are adjustable from the command line to track the
   perf trajectory at larger scales (the index backend switches to the k-d
   tree automatically past the dense threshold). *)
type fixture = {
  rng : Prim.Rng.t;
  grid : Geometry.Grid.t;
  points : Geometry.Vec.t array;
  ps : Geometry.Pointset.t;
  idx : Geometry.Pointset.index;
  t : int;
  radius : float;
}

let fixture ?(n = 1500) ?(dim = 2) () =
  let rng = Prim.Rng.create ~seed:99 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim in
  let w =
    Workload.Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.5 ~cluster_radius:0.05
  in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  let idx = Geometry.Pointset.auto_index ps in
  { rng; grid; points = w.Workload.Synth.points; ps; idx; t = 2 * n / 5; radius = 0.1 }

(* Each stage bench as a plain thunk so the smoke path can execute every
   bench exactly once without the Bechamel measurement machinery. *)
let stage_thunks fx : (string * (unit -> unit)) list =
  let profile = Privcluster.Profile.practical in
  let d = Geometry.Pointset.dim fx.ps in
  let b3 =
    let q =
      Recconcave.Quality.of_array
        (Array.init 1000 (fun i -> -.Float.abs (float_of_int (i - 700))))
    in
    fun () -> ignore (Recconcave.Rec_concave.solve fx.rng ~eps:1.0 q)
  in
  let b4 =
    let jl = Geometry.Jl.make fx.rng ~input_dim:64 ~output_dim:16 in
    let high =
      Geometry.Pointset.of_storage ~dim:64
        (Prim.Rng.gaussian_vector fx.rng ~dim:(Geometry.Pointset.n fx.ps * 64) ~sigma:1.0)
    in
    fun () -> ignore (Geometry.Jl.project jl high)
  in
  let b5 =
    let boxing = Geometry.Boxing.make fx.rng ~dim:d ~len:(4. *. fx.radius) in
    fun () ->
      ignore
        (Prim.Stability_hist.select fx.rng ~eps:0.5 ~delta:1e-6
           (Geometry.Boxing.occupancy_ps boxing fx.ps))
  in
  let b6 =
    let st = Geometry.Pointset.storage fx.ps in
    let offs = Geometry.Pointset.row_offsets fx.ps in
    fun () ->
      ignore
        (Prim.Noisy_avg.run_rows fx.rng ~eps:0.5 ~delta:1e-6 ~diameter:1.0
           ~pred:(fun i -> st.(offs.(i)) < 0.5)
           ~dim:d ~offs st)
  in
  [
    ( "B1 good-radius",
      fun () ->
        ignore
          (Privcluster.Good_radius.run fx.rng profile ~grid:fx.grid ~eps:2.0 ~delta ~beta
             ~t:fx.t fx.idx) );
    ( "B2 good-center",
      fun () ->
        ignore
          (Privcluster.Good_center.run_ps fx.rng profile ~eps:2.0 ~delta ~beta ~t:fx.t
             ~radius:fx.radius fx.ps) );
    ("B3 rec-concave(1k)", b3);
    ("B4 jl-project", b4);
    ("B5 stability-hist", b5);
    ("B6 noisy-avg", b6);
    ( "B7 one-cluster e2e",
      fun () ->
        ignore
          (Privcluster.One_cluster.run_indexed fx.rng profile ~grid:fx.grid ~eps:2.0 ~delta
             ~beta ~t:fx.t fx.idx) );
    ( "B14 local-cluster e2e",
      fun () ->
        ignore (Privcluster.Local_cluster.run fx.rng ~grid:fx.grid ~eps:2.0 ~beta ~t:fx.t fx.ps) );
    ( "B14 meb-fptas e2e",
      fun () ->
        ignore (Baselines.Meb_fptas.run fx.rng ~grid:fx.grid ~eps:2.0 ~delta ~t:fx.t fx.ps) );
    ( "B9 check-estimators",
      let cdf x = Prim.Laplace.cdf ~eps:0.7 ~sensitivity:1.0 x in
      let samples =
        Array.init 4096 (fun _ -> Prim.Laplace.noise fx.rng ~eps:0.7 ~sensitivity:1.0)
      in
      fun () ->
        ignore (Check.Stats.ks_test ~cdf samples);
        ignore (Check.Stats.ad_test ~cdf samples);
        ignore (Check.Stats.clopper_pearson ~alpha:0.05 ~k:37 ~n:4096) );
  ]

let timing_tests fx =
  List.map
    (fun (name, thunk) -> Test.make ~name (Staged.stage thunk))
    (stage_thunks fx)

let run_timing ~quick fx =
  Workload.Report.headline "B1-B7 - Bechamel timing benches (per-call wall clock)";
  let quota = if quick then 0.5 else 2.0 in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None () in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"privcluster" (timing_tests fx)) in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let ns =
        match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> Float.nan
      in
      let r2 = match Analyze.OLS.r_square ols with Some r -> r | None -> Float.nan in
      rows := (name, ns, r2) :: !rows)
    results;
  let rows = List.sort (fun (a, _, _) (b, _, _) -> compare a b) !rows in
  Workload.Report.table
    ~header:[ "bench"; "time/call"; "r^2" ]
    (List.map
       (fun (name, ns, r2) ->
         let human =
           if Float.is_nan ns then "-"
           else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; human; Workload.Report.f3 r2 ])
       rows);
  rows

(* The experiment suite goes through the engine pool — the same worker-domain
   code path the CLI's batch subcommand uses — with each experiment's report
   output captured per domain and printed in suite order, so `--jobs 4`
   output diffs clean against `--jobs 1`. *)
let run_experiments ~jobs cfg selected =
  if jobs <= 1 then List.iter (Workload.Experiments.run_one cfg) selected
  else begin
    let tasks = Array.of_list (List.map Engine.Pool.task selected) in
    let outcomes =
      Engine.Pool.run ~domains:jobs
        ~f:(fun ~index:_ ~attempt:_ exp ->
          snd (Workload.Report.capture (fun () -> Workload.Experiments.run_one cfg exp)))
        tasks
    in
    Array.iteri
      (fun i outcome ->
        match outcome with
        | Engine.Pool.Done out -> print_string out
        | Engine.Pool.Failed msg ->
            let id, _, _ = tasks.(i).Engine.Pool.payload in
            Printf.printf "\n%s FAILED: %s\n" id msg
        | Engine.Pool.Timed_out _ -> ())
      outcomes;
    flush stdout
  end

(* B8 — throughput of the batch engine itself: a bag of identical 1-cluster
   jobs on the shared fixture, swept over worker-domain counts.  Also checks
   the engine's determinism claim: every domain count must produce the same
   outputs (per-job RNG streams are derived from the submission index). *)
let run_engine_bench ~quick ~max_jobs fx =
  Workload.Report.headline "B8 - engine throughput (one-cluster batch over worker domains)";
  Workload.Report.kv "hardware threads" (string_of_int (Domain.recommended_domain_count ()));
  let n_jobs = if quick then 6 else 12 in
  let specs =
    List.init n_jobs (fun i ->
        {
          Engine.Job.id = Printf.sprintf "j%d" (i + 1);
          kind = Engine.Job.One_cluster { t_fraction = 0.4 };
          eps = 0.5;
          delta = 1e-7;
          beta;
          deadline_s = None;
          fallback = false;
        })
  in
  let domain_counts =
    List.sort_uniq compare (1 :: 2 :: 4 :: (if max_jobs > 1 then [ max_jobs ] else []))
  in
  let summaries = Hashtbl.create 4 in
  let run_once ~domains ~faults ~retries =
    let service =
      Engine.Service.create ~domains ~seed:99 ~retries ~faults ()
    in
    let dataset =
      Engine.Service.register service ~name:"bench" ~grid:fx.grid
        ~budget:(Prim.Dp.v ~eps:(float_of_int n_jobs) ~delta:1e-3)
        fx.points
    in
    Workload.Harness.time (fun () -> Engine.Service.run_batch service ~dataset specs)
  in
  let rows =
    List.map
      (fun domains ->
        let results, ms = run_once ~domains ~faults:Engine.Faults.none ~retries:0 in
        Hashtbl.replace summaries domains
          (String.concat ";" (List.map Engine.Job.detail results));
        (domains, ms))
      domain_counts
  in
  let base_ms = match rows with (_, ms) :: _ -> ms | [] -> Float.nan in
  let reference = Hashtbl.find summaries (List.hd domain_counts) in
  let deterministic =
    List.for_all (fun d -> Hashtbl.find summaries d = reference) domain_counts
  in
  (* The robustness half of the determinism claim: crash-before-output faults
     on half the jobs, retried in place or rescheduled after worker kills,
     must leave every output bit-identical to the fault-free reference. *)
  let faulted_identical =
    let faults =
      Engine.Faults.explicit
        (List.init (n_jobs / 2) (fun i ->
             ( i,
               Engine.Faults.rule
                 (if i mod 2 = 0 then Engine.Faults.Crash else Engine.Faults.Kill_worker) )))
    in
    let results, _ = run_once ~domains:(List.nth domain_counts (List.length domain_counts - 1))
        ~faults ~retries:3
    in
    String.concat ";" (List.map Engine.Job.detail results) = reference
  in
  Workload.Report.table ~csv:"b8_engine_throughput"
    ~header:[ "domains"; "wall"; "jobs/s"; "speedup" ]
    (List.map
       (fun (domains, ms) ->
         [
           string_of_int domains;
           Printf.sprintf "%.0f ms" ms;
           Workload.Report.f2 (1000. *. float_of_int n_jobs /. ms);
           Workload.Report.f2 (base_ms /. ms);
         ])
       rows);
  Workload.Report.kv "outputs identical across domain counts"
    (if deterministic then "yes" else "NO (engine determinism bug)");
  Workload.Report.kv "outputs identical under injected crash/kill faults"
    (if faulted_identical then "yes" else "NO (retry-replay bug)");
  (n_jobs, rows, deterministic && faulted_identical)

(* B11 — daemon round-trip: the B8 job bag submitted to a resident
   privclusterd over a unix socket, versus the same batch run in-process
   on an identically-configured service.  The gap prices the wire
   protocol, admission queue, and per-charge WAL fsync together; the
   verdicts and the ledger must be identical — the daemon may add
   latency, never change answers or charges. *)
let run_daemon_bench ~quick ~jobs =
  Workload.Report.headline "B11 - daemon round-trip vs in-process batch";
  let n_jobs = if quick then 6 else 12 in
  let iters = if quick then 2 else 5 in
  let n = if quick then 300 else 1000 in
  let seed = 99 in
  let specs =
    List.init n_jobs (fun i ->
        {
          Engine.Job.id = Printf.sprintf "j%d" (i + 1);
          kind = Engine.Job.One_cluster { t_fraction = 0.4 };
          eps = 0.5;
          delta = 1e-7;
          beta;
          deadline_s = None;
          fallback = false;
        })
  in
  (* warm-up batch + iters measured batches, all charged to one ledger *)
  let batches = iters + 1 in
  let budget =
    Prim.Dp.v ~eps:(0.5 *. float_of_int (n_jobs * batches) +. 1.) ~delta:1e-3
  in
  let jobs_text =
    String.concat "\n" (List.map Engine.Job.spec_to_line specs) ^ "\n"
  in
  let mean l = List.fold_left ( +. ) 0. l /. float_of_int (List.length l) in
  let statuses results =
    List.map (fun (r : Engine.Job.result) -> Engine.Job.status_name r.Engine.Job.status) results
  in
  (* in-process reference: replicate the daemon's dataset generation
     convention exactly (seed + 7919) so both paths solve the same points *)
  let svc = Engine.Service.create ~domains:jobs ~seed ~retries:0 ~faults:Engine.Faults.none () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.planted_ball
      (Prim.Rng.create ~seed:(seed + 7919) ())
      ~grid ~n ~cluster_fraction:0.5 ~cluster_radius:0.05
  in
  let ds = Engine.Service.register svc ~name:"bench" ~grid ~budget w.Workload.Synth.points in
  let local_statuses = ref [] in
  let run_local () =
    let results, ms = Workload.Harness.time (fun () -> Engine.Service.run_batch svc ~dataset:ds specs) in
    if !local_statuses = [] then local_statuses := statuses results;
    ms
  in
  ignore (run_local ());
  let local_ms = List.init iters (fun _ -> run_local ()) in
  (* daemon path: resident process state, unix socket, fsync'd WAL *)
  let dir = Filename.temp_file "privcluster_bench" ".d" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let cfg =
    {
      Server.Daemon.default_config with
      listen = `Unix (Filename.concat dir "b.sock");
      wal_path = Filename.concat dir "b.wal";
      tenants = [ { Server.Tenants.name = "bench"; token = "bench"; max_in_flight = 8 } ];
      capacity = 64;
      domains = jobs;
      retries = 0;
      seed;
      sync = true;
    }
  in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("B11: " ^ m); exit 1) fmt in
  let d = match Server.Daemon.start cfg with Ok d -> d | Error e -> fail "start: %s" e in
  let c =
    match Server.Client.connect cfg.Server.Daemon.listen ~tenant:"bench" ~token:"bench" with
    | Ok c -> c
    | Error f -> fail "connect: %s" (Server.Client.fail_message f)
  in
  let rpc what = function Ok v -> v | Error f -> fail "%s: %s" what (Server.Client.fail_message f) in
  ignore
    (rpc "register"
       (Server.Client.register c ~dataset:"bench" ~n ~dim:2 ~axis:256 ~frac:0.5
          ~radius:0.05 ~seed ~budget ()));
  let daemon_statuses = ref [] in
  let run_remote () =
    let payload, ms =
      Workload.Harness.time (fun () -> rpc "run" (Server.Client.run c ~dataset:"bench" ~jobs:jobs_text ()))
    in
    if !daemon_statuses = [] then
      daemon_statuses :=
        (match Option.bind (Engine.Json.member "results" payload) Engine.Json.to_list with
        | None -> fail "run reply has no results"
        | Some rs ->
            List.map
              (fun r ->
                Option.value ~default:"?"
                  (Option.bind (Engine.Json.member "status" r) Engine.Json.to_str))
              rs);
    ms
  in
  ignore (run_remote ());
  let daemon_ms = List.init iters (fun _ -> run_remote ()) in
  Server.Client.close c;
  Server.Daemon.stop d;
  List.iter (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ()) [ "b.wal"; "b.sock" ];
  (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ());
  let lm = mean local_ms and dm = mean daemon_ms in
  let overhead_pct = (dm -. lm) /. lm *. 100. in
  let identical = !local_statuses = !daemon_statuses && !local_statuses <> [] in
  Workload.Report.table ~csv:"b11_daemon_roundtrip"
    ~header:[ "path"; "wall/batch"; "jobs/s" ]
    [
      [ "in-process"; Printf.sprintf "%.1f ms" lm; Workload.Report.f2 (1000. *. float_of_int n_jobs /. lm) ];
      [ "daemon"; Printf.sprintf "%.1f ms" dm; Workload.Report.f2 (1000. *. float_of_int n_jobs /. dm) ];
    ];
  Workload.Report.kv "round-trip overhead per batch"
    (Printf.sprintf "%.1f ms (%.1f%%)" (dm -. lm) overhead_pct);
  Workload.Report.kv "verdicts identical across paths"
    (if identical then "yes" else "NO (daemon changed answers)");
  if not identical then begin
    prerr_endline "B11 FAILED: daemon verdicts differ from the in-process batch";
    exit 1
  end;
  (n_jobs, iters, lm, dm, overhead_pct, identical)

(* B15 — serving-telemetry overhead: the B11 fixture against three
   resident daemons — [serving_stats = false]; the always-on telemetry
   (latency histograms, burn windows, shed counters); and telemetry plus
   [trace_sample = 1], head-sampling {e every} request's span tree into
   the exemplar ring.  The gate: always-on telemetry may cost at most 2%
   of the batch round-trip.  Exhaustive sampling is a diagnostic
   setting, not a default — its cost (one trace serialisation + file
   write per request) is measured and reported but not gated.  All arms
   run [sync = false] so WAL fsync jitter does not drown the
   microsecond-scale signal, the arms are interleaved batch-for-batch to
   cancel machine drift, and each arm's time is its best iteration.

   The gate itself follows the B10 convention (deterministic in CI, not
   a coin flip): the telemetry record path is timed directly in a tight
   loop — one submit + queue-wait + request-latency + burn-window record
   cycle, everything a request adds — and the implied per-batch overhead
   is that cost over the measured batch round-trip.  The wall-clock A/B
   is reported alongside but not gated: at millisecond batch times its
   run-to-run noise is an order of magnitude above the sub-µs signal. *)
let run_serving_bench ~quick ~jobs =
  Workload.Report.headline "B15 - serving-telemetry overhead on the daemon round-trip";
  let n_jobs = if quick then 6 else 12 in
  let iters = if quick then 3 else 7 in
  let n = if quick then 300 else 1000 in
  let seed = 99 in
  let max_pct = 2.0 in
  let specs =
    List.init n_jobs (fun i ->
        {
          Engine.Job.id = Printf.sprintf "j%d" (i + 1);
          kind = Engine.Job.One_cluster { t_fraction = 0.4 };
          eps = 0.5;
          delta = 1e-7;
          beta;
          deadline_s = None;
          fallback = false;
        })
  in
  let batches = iters + 1 in
  let budget =
    Prim.Dp.v ~eps:(0.5 *. float_of_int (n_jobs * batches) +. 1.) ~delta:1e-3
  in
  let jobs_text = String.concat "\n" (List.map Engine.Job.spec_to_line specs) ^ "\n" in
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("B15: " ^ m); exit 1) fmt in
  let rpc what = function
    | Ok v -> v
    | Error f -> fail "%s: %s" what (Server.Client.fail_message f)
  in
  let arm ~telemetry ~sample =
    let dir = Filename.temp_file "privcluster_b15" ".d" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let slow = Filename.concat dir "slow" in
    let cfg =
      {
        Server.Daemon.default_config with
        listen = `Unix (Filename.concat dir "b.sock");
        wal_path = Filename.concat dir "b.wal";
        tenants = [ { Server.Tenants.name = "bench"; token = "bench"; max_in_flight = 8 } ];
        capacity = 64;
        domains = jobs;
        retries = 0;
        seed;
        sync = false;
        serving_stats = telemetry;
        trace_sample = (if sample then 1 else 0);
        slow_log = (if sample then Some slow else None);
        slow_keep = 8;
      }
    in
    let d = match Server.Daemon.start cfg with Ok d -> d | Error e -> fail "start: %s" e in
    let c =
      match Server.Client.connect cfg.Server.Daemon.listen ~tenant:"bench" ~token:"bench" with
      | Ok c -> c
      | Error f -> fail "connect: %s" (Server.Client.fail_message f)
    in
    ignore
      (rpc "register"
         (Server.Client.register c ~dataset:"bench" ~n ~dim:2 ~axis:256 ~frac:0.5 ~radius:0.05
            ~seed ~budget ()));
    (dir, d, c)
  in
  let statuses payload =
    match Option.bind (Engine.Json.member "results" payload) Engine.Json.to_list with
    | None -> fail "run reply has no results"
    | Some rs ->
        List.map
          (fun r ->
            Option.value ~default:"?"
              (Option.bind (Engine.Json.member "status" r) Engine.Json.to_str))
          rs
  in
  let dir_off, d_off, c_off = arm ~telemetry:false ~sample:false in
  let dir_on, d_on, c_on = arm ~telemetry:true ~sample:false in
  let dir_s, d_s, c_s = arm ~telemetry:true ~sample:true in
  let run c = rpc "run" (Server.Client.run c ~dataset:"bench" ~jobs:jobs_text ()) in
  let off_statuses = statuses (run c_off) and on_statuses = statuses (run c_on) in
  let sampled_statuses = statuses (run c_s) in
  let off_ms = ref infinity and on_ms = ref infinity and sampled_ms = ref infinity in
  for _ = 1 to iters do
    let _, ms = Workload.Harness.time (fun () -> run c_off) in
    off_ms := Float.min !off_ms ms;
    let _, ms = Workload.Harness.time (fun () -> run c_on) in
    on_ms := Float.min !on_ms ms;
    let _, ms = Workload.Harness.time (fun () -> run c_s) in
    sampled_ms := Float.min !sampled_ms ms
  done;
  (* prove the sampling arm really collected: the ring has exemplars *)
  let stats = rpc "stats" (Server.Client.stats c_s) in
  let exemplars =
    match Option.bind (Engine.Json.member "exemplars" stats) Engine.Json.to_int with
    | Some e -> e
    | None -> fail "sampling arm reports no stats"
  in
  if exemplars = 0 then fail "trace_sample=1 wrote no exemplars";
  let cleanup dir d c =
    Server.Client.close c;
    Server.Daemon.stop d;
    let rec rm path =
      if Sys.is_directory path then begin
        Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
        try Unix.rmdir path with Unix.Unix_error (_, _, _) -> ()
      end
      else try Sys.remove path with Sys_error _ -> ()
    in
    rm dir
  in
  cleanup dir_off d_off c_off;
  cleanup dir_on d_on c_on;
  cleanup dir_s d_s c_s;
  (* The gated number: one full record cycle — everything the daemon adds
     per wire request when [serving_stats] is on (clock reads included),
     timed in a tight loop, best of 3.  The advancing [now_ns] walks the
     burn window across its 1 s coalescing interval so both the coalesce
     and the prune-and-append branches are priced. *)
  let record_ns =
    let sv = Server.Serving.create () in
    let reps = 100_000 in
    let best = ref infinity in
    for _ = 1 to 3 do
      let _, ms =
        Workload.Harness.time (fun () ->
            for i = 0 to reps - 1 do
              Server.Serving.record_submit sv;
              Server.Serving.record_queue_wait sv ~verb:"run"
                ~ns:(Int64.to_int (Int64.logand (Obs.Clock.now_ns ()) 0xFFFFFL));
              Server.Serving.record_request sv ~verb:"run" ~tenant:"bench"
                ~ns:(Int64.to_int (Int64.logand (Obs.Clock.now_ns ()) 0xFFFFFL));
              Server.Serving.record_burn sv ~tenant:"bench" ~dataset:"bench"
                ~budget_eps:10.
                ~spent_eps:(float_of_int i *. 1e-4)
                ~now_ns:(Int64.mul (Int64.of_int i) 1_000_000L)
            done)
      in
      best := Float.min !best (ms *. 1e6 /. float_of_int reps)
    done;
    !best
  in
  (* One record cycle per wire request; a batch is one request. *)
  let implied_pct = record_ns /. (!off_ms *. 1e6) *. 100. in
  let overhead_pct = (!on_ms -. !off_ms) /. !off_ms *. 100. in
  let sampled_pct = (!sampled_ms -. !off_ms) /. !off_ms *. 100. in
  let identical =
    off_statuses = on_statuses && on_statuses = sampled_statuses && off_statuses <> []
  in
  Workload.Report.table ~csv:"b15_serving_overhead"
    ~header:[ "daemon"; "wall/batch"; "jobs/s" ]
    [
      [
        "telemetry off";
        Printf.sprintf "%.1f ms" !off_ms;
        Workload.Report.f2 (1000. *. float_of_int n_jobs /. !off_ms);
      ];
      [
        "telemetry on";
        Printf.sprintf "%.1f ms" !on_ms;
        Workload.Report.f2 (1000. *. float_of_int n_jobs /. !on_ms);
      ];
      [
        "telemetry + sample every request";
        Printf.sprintf "%.1f ms" !sampled_ms;
        Workload.Report.f2 (1000. *. float_of_int n_jobs /. !sampled_ms);
      ];
    ];
  Workload.Report.kv "record path, one full cycle"
    (Printf.sprintf "%.0f ns" record_ns);
  Workload.Report.kv "implied overhead per batch (gated)"
    (Printf.sprintf "%.4f%% (max %.1f%%)" implied_pct max_pct);
  Workload.Report.kv "wall-clock A/B delta (noise-dominated, not gated)"
    (Printf.sprintf "%.2f ms (%.2f%%)" (!on_ms -. !off_ms) overhead_pct);
  Workload.Report.kv "exhaustive sampling overhead (not gated)"
    (Printf.sprintf "%.2f ms (%.2f%%)" (!sampled_ms -. !off_ms) sampled_pct);
  Workload.Report.kv "exemplars written" (string_of_int exemplars);
  Workload.Report.kv "verdicts identical across arms"
    (if identical then "yes" else "NO (telemetry changed answers)");
  if not identical then begin
    prerr_endline "B15 FAILED: telemetry arms returned different verdicts";
    exit 1
  end;
  if implied_pct > max_pct then begin
    Printf.eprintf "B15 FAILED: serving-telemetry overhead %.4f%% exceeds %.1f%%\n" implied_pct
      max_pct;
    exit 1
  end;
  ( n_jobs,
    iters,
    !off_ms,
    !on_ms,
    overhead_pct,
    !sampled_ms,
    sampled_pct,
    exemplars,
    identical,
    record_ns,
    implied_pct )

(* B12 — mutate-then-requery: the epoch / result-cache path.  A cold
   1-cluster batch, the identical batch again (must be answered from the
   result cache: zero execution attempts, zero additional charge,
   bit-identical outputs — gated), then an append and the same batch once
   more (must recompute against the new epoch and pay again — also
   gated).  Prices what a cache hit saves and what an epoch transition
   costs. *)
let run_epoch_bench ~jobs =
  Workload.Report.headline "B12 - mutate-then-requery (epochs and the result cache)";
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("B12 FAILED: " ^ m); exit 1) fmt in
  (* n is pinned: at this size every job completes on both epochs, so the
     bit-identical-outputs gate is meaningful (solver failures are honest
     DP outcomes, but they are not cached and would muddy the gate). *)
  let n = 1500 in
  let n_jobs = 4 in
  let seed = 99 in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.planted_ball
      (Prim.Rng.create ~seed:(seed + 7919) ())
      ~grid ~n ~cluster_fraction:0.5 ~cluster_radius:0.05
  in
  let svc = Engine.Service.create ~domains:jobs ~seed ~retries:0 ~faults:Engine.Faults.none () in
  let budget = Prim.Dp.v ~eps:(2.0 *. float_of_int (2 * n_jobs) +. 1.) ~delta:1e-3 in
  let ds = Engine.Service.register svc ~name:"bench" ~grid ~budget w.Workload.Synth.points in
  let specs =
    List.init n_jobs (fun i ->
        {
          Engine.Job.id = Printf.sprintf "j%d" (i + 1);
          kind = Engine.Job.One_cluster { t_fraction = 0.4 };
          eps = 2.0;
          delta = 1e-7;
          beta;
          deadline_s = None;
          fallback = false;
        })
  in
  let acct = Engine.Registry.accountant ds in
  let spent () = (Engine.Accountant.spent acct).Prim.Dp.eps in
  let outputs phase results =
    List.map
      (fun (r : Engine.Job.result) ->
        match r.Engine.Job.status with
        | Engine.Job.Completed o -> Engine.Job.output_to_wire o
        | st ->
            fail "%s: job %s finished %s, not ok" phase r.Engine.Job.spec.Engine.Job.id
              (Engine.Job.status_name st))
      results
  in
  let run () = Workload.Harness.time (fun () -> Engine.Service.run_batch svc ~dataset:ds specs) in
  let cold, cold_ms = run () in
  let cold_spent = spent () in
  let warm, warm_ms = run () in
  let warm_spent = spent () in
  let mutate_specs =
    match Engine.Job.parse (Printf.sprintf "mutate op=append n=%d seed=5\n" (n / 5)) with
    | Ok s -> s
    | Error e -> fail "mutate parse: %s" e
  in
  let _, append_ms =
    Workload.Harness.time (fun () -> Engine.Service.run_batch svc ~dataset:ds mutate_specs)
  in
  let requery, requery_ms = run () in
  let requery_spent = spent () in
  (* The gates: a hit is free and exact; a new epoch is neither. *)
  let hits_free =
    List.for_all (fun (r : Engine.Job.result) -> r.Engine.Job.attempts = 0) warm
    && warm_spent = cold_spent
    && outputs "warm" warm = outputs "cold" cold
  in
  let recomputed =
    List.for_all (fun (r : Engine.Job.result) -> r.Engine.Job.attempts >= 1) requery
    && requery_spent > warm_spent
    && Engine.Registry.epoch ds = 1
  in
  ignore (outputs "requery" requery);
  let speedup = cold_ms /. Float.max warm_ms 1e-6 in
  Workload.Report.table ~csv:"b12_epoch_requery"
    ~header:[ "phase"; "wall"; "spent eps after" ]
    [
      [ "cold batch"; Printf.sprintf "%.1f ms" cold_ms; Workload.Report.f2 cold_spent ];
      [ "cached re-run"; Printf.sprintf "%.2f ms" warm_ms; Workload.Report.f2 warm_spent ];
      [ "append (epoch 0 -> 1)"; Printf.sprintf "%.1f ms" append_ms; Workload.Report.f2 warm_spent ];
      [ "re-query on epoch 1"; Printf.sprintf "%.1f ms" requery_ms; Workload.Report.f2 requery_spent ];
    ];
  Workload.Report.kv "cache-hit speedup" (Printf.sprintf "%.0fx" speedup);
  Workload.Report.kv "cache hits charged zero"
    (if hits_free then "yes" else "NO (cache charged the ledger)");
  Workload.Report.kv "new epoch recomputed and paid"
    (if recomputed then "yes" else "NO (stale answer served across a mutation)");
  if not hits_free then fail "a cache hit executed or charged";
  if not recomputed then fail "a post-mutation query was not recomputed";
  (n_jobs, cold_ms, warm_ms, append_ms, requery_ms, speedup, hits_free && recomputed)

(* B13 — the kernel layer (lib/kernel).  Three gates: (a) the C fast
   paths must agree bit-for-bit with the pure-OCaml references they
   shadow, on the same workload GoodRadius runs (the full candidate
   sweep) and on the JL projection; (b) the parallel k-d tree build must
   produce exactly the serial tree; (c) the native kernels must actually
   be faster than the references by at least [floor] — guarding against
   a build where the stubs silently compiled to a slow path.  The
   speedup measurement uses its own fixed-size fixture so the gate does
   not loosen when --smoke shrinks the shared one. *)
let run_kernel_gates fx =
  Workload.Report.headline "B13 - native kernels: identity, parallel build, speedup floor";
  let fail fmt = Printf.ksprintf (fun m -> prerr_endline ("B13 FAILED: " ^ m); exit 1) fmt in
  let entry_native = Kernel.native_active () in
  let with_native b f =
    Kernel.set_native b;
    Fun.protect ~finally:(fun () -> Kernel.set_native entry_native) f
  in
  let bits = Array.map Int64.bits_of_float in
  (* (a) bitwise identity on the fixture. *)
  let radii =
    Array.init
      (Geometry.Grid.geometric_candidates fx.grid)
      (Geometry.Grid.geometric_radius_of_index fx.grid)
  in
  let sweep b =
    with_native b (fun () -> Geometry.Pointset.score_l_many fx.idx ~cap:fx.t ~radii)
  in
  let identity_sweep = bits (sweep true) = bits (sweep false) in
  let jl = Geometry.Jl.make fx.rng ~input_dim:32 ~output_dim:8 in
  let high =
    Geometry.Pointset.of_storage ~dim:32
      (Prim.Rng.gaussian_vector fx.rng ~dim:(Geometry.Pointset.n fx.ps * 32) ~sigma:1.0)
  in
  let project b =
    with_native b (fun () -> Geometry.Pointset.storage (Geometry.Jl.project jl high))
  in
  let identity_jl = bits (project true) = bits (project false) in
  let identity_ok = identity_sweep && identity_jl in
  Workload.Report.kv "good-radius sweep bit-identical (native vs reference)"
    (if identity_sweep then "yes" else "NO");
  Workload.Report.kv "jl projection bit-identical (native vs reference)"
    (if identity_jl then "yes" else "NO");
  (* (b) parallel build == serial build (same idx permutation ⇒ same tree:
     structure is a deterministic function of the row order). *)
  let st = Geometry.Pointset.storage fx.ps and offs = Geometry.Pointset.row_offsets fx.ps in
  let d = Geometry.Pointset.dim fx.ps in
  let serial_order =
    Geometry.Kdtree.row_order (Geometry.Kdtree.build_flat ~storage:st ~offs ~dim:d ())
  in
  let parallel_ok =
    List.for_all
      (fun domains ->
        serial_order
        = Geometry.Kdtree.row_order
            (Geometry.Kdtree.build_flat ~domains ~storage:st ~offs ~dim:d ()))
      [ 2; 4 ]
  in
  Workload.Report.kv "parallel k-d build identical to serial (2 and 4 domains)"
    (if parallel_ok then "yes" else "NO");
  (* (c) speedup floor, native vs reference, best-of-3 per path. *)
  let mrng = Prim.Rng.create ~seed:424242 () in
  let mn = 600 in
  let m8 = Geometry.Pointset.of_storage ~dim:8 (Prim.Rng.gaussian_vector mrng ~dim:(mn * 8) ~sigma:1.0) in
  let m8_idx = Geometry.Pointset.build_index m8 in
  let m32 =
    Geometry.Pointset.of_storage ~dim:32 (Prim.Rng.gaussian_vector mrng ~dim:(mn * 32) ~sigma:1.0)
  in
  let mjl = Geometry.Jl.make mrng ~input_dim:32 ~output_dim:8 in
  let mradii = Array.init 32 (fun j -> 0.2 *. float_of_int (j + 1)) in
  let wide_n = 2000 and wide_d = 64 in
  let wide = Prim.Rng.gaussian_vector mrng ~dim:(wide_n * wide_d) ~sigma:1.0 in
  let wide_sel = Array.init wide_n (fun i -> i) in
  let wide_acc = Array.make wide_d 0. in
  let measure (name, iters, thunk) =
    let best_of b =
      with_native b (fun () ->
          thunk ();
          let best = ref infinity in
          for _ = 1 to 3 do
            let _, ms = Workload.Harness.time (fun () -> for _ = 1 to iters do thunk () done) in
            if ms < !best then best := ms
          done;
          !best)
    in
    let off_ms = best_of false in
    let on_ms = best_of true in
    (name, off_ms, on_ms, off_ms /. Float.max on_ms 1e-9)
  in
  let rows =
    List.map measure
      [
        ( "good-radius sweep (B1 core)",
          20,
          fun () -> ignore (Geometry.Pointset.score_l_many m8_idx ~cap:(2 * mn / 5) ~radii:mradii) );
        ("jl-project (B4 core)", 50, fun () -> ignore (Geometry.Jl.project mjl m32));
        ( "row accumulation (B6 core)",
          100,
          fun () ->
            Array.fill wide_acc 0 wide_d 0.;
            Kernel.sum_rows ~st:wide ~sel:wide_sel ~m:wide_n ~dim:wide_d ~acc:wide_acc );
      ]
  in
  let floor = 1.2 in
  (* The floor only binds when the C stubs are present and enabled; under
     PRIVCLUSTER_NO_NATIVE=1 both paths are the reference and the ratio
     is ~1 by construction. *)
  let enforced = Kernel.compiled && entry_native in
  Workload.Report.table ~csv:"b13_kernel_speedup"
    ~header:[ "kernel"; "reference"; "native"; "speedup" ]
    (List.map
       (fun (name, off_ms, on_ms, s) ->
         [
           name;
           Printf.sprintf "%.1f ms" off_ms;
           Printf.sprintf "%.1f ms" on_ms;
           Workload.Report.f2 s;
         ])
       rows);
  let min_speedup = List.fold_left (fun a (_, _, _, s) -> Float.min a s) infinity rows in
  Workload.Report.kv "speedup floor"
    (if enforced then
       Printf.sprintf "%.1fx (min observed %.2fx): %s" floor min_speedup
         (if min_speedup >= floor then "ok" else "FAIL")
     else "not enforced (native kernels disabled)");
  if not identity_ok then fail "a native kernel diverged from its pure-OCaml reference";
  if not parallel_ok then fail "parallel k-d build differs from the serial build";
  if enforced && min_speedup < floor then
    fail "kernel speedup %.2fx below the %.1fx floor" min_speedup floor;
  (identity_ok, parallel_ok, rows, floor, enforced)

(* B14 — the five-way E1 competitors, end to end on the shared fixture:
   the paper's centralized pipeline vs the local-model (LDP) protocol vs
   the private MEB fPTAS, one call each, best-of-[reps].  The gate: the
   LDP path is n randomized responses plus histogram arithmetic over at
   most max_cells buckets per scale — asymptotically lighter than the
   centralized candidate sweep — so its wall clock must stay within
   [envelope]x of the one-cluster call on the same fixture (the envelope
   is documented in PERFORMANCE.md; a regression here means the ladder
   or the debias loop grew a hidden quadratic). *)
let run_competitor_bench ~smoke fx =
  Workload.Report.headline "B14 - competitor e2e (one-cluster vs local-model vs MEB fPTAS)";
  let profile = Privcluster.Profile.practical in
  let reps = if smoke then 1 else 3 in
  let best thunk =
    thunk ();
    let best = ref infinity in
    for _ = 1 to reps do
      let _, ms = Workload.Harness.time thunk in
      if ms < !best then best := ms
    done;
    !best
  in
  let central_ms =
    best (fun () ->
        ignore
          (Privcluster.One_cluster.run_indexed fx.rng profile ~grid:fx.grid ~eps:2.0 ~delta
             ~beta ~t:fx.t fx.idx))
  in
  let local_ms =
    best (fun () ->
        ignore (Privcluster.Local_cluster.run fx.rng ~grid:fx.grid ~eps:2.0 ~beta ~t:fx.t fx.ps))
  in
  let meb_ms =
    best (fun () ->
        ignore (Baselines.Meb_fptas.run fx.rng ~grid:fx.grid ~eps:2.0 ~delta ~t:fx.t fx.ps))
  in
  let envelope = 3.0 in
  let ratio = local_ms /. Float.max central_ms 1e-9 in
  let pass = ratio <= envelope in
  Workload.Report.table ~csv:"b14_competitors"
    ~header:[ "pipeline"; "wall/call" ]
    [
      [ "one-cluster (centralized)"; Printf.sprintf "%.2f ms" central_ms ];
      [ "local-cluster (LDP)"; Printf.sprintf "%.2f ms" local_ms ];
      [ "meb-fptas"; Printf.sprintf "%.2f ms" meb_ms ];
    ];
  Workload.Report.kv "ldp/centralized ratio"
    (Printf.sprintf "%.2f (envelope %.1fx): %s" ratio envelope (if pass then "ok" else "FAIL"));
  if not pass then begin
    Printf.eprintf "B14 FAILED: LDP e2e %.2fx the centralized call, envelope is %.1fx\n" ratio
      envelope;
    exit 1
  end;
  (central_ms, local_ms, meb_ms, envelope, ratio)

(* Allocation regression check: with the flat layout, one end-to-end
   1-cluster call (prebuilt index) must allocate minor-heap words roughly
   linearly in n and sublinearly in d — the boxed layout allocated a
   d-length vector per point per stage.  Run the same workload at d and
   8·d; the boxed path grew close to proportionally, the flat path must
   stay under [max_ratio]. *)
let run_alloc_check ~smoke =
  Workload.Report.headline "B7-alloc - one-cluster minor-heap allocation vs dimension";
  let n = if smoke then 200 else 400 in
  let profile = Privcluster.Profile.practical in
  let words_at dim =
    let rng = Prim.Rng.create ~seed:7 () in
    let grid = Geometry.Grid.create ~axis_size:64 ~dim in
    let w =
      Workload.Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.5 ~cluster_radius:0.05
    in
    let idx =
      Geometry.Pointset.build_index (Geometry.Pointset.create w.Workload.Synth.points)
    in
    (* One warm-up call, then measure a single end-to-end run. *)
    ignore
      (Privcluster.One_cluster.run_indexed rng profile ~grid ~eps:2.0 ~delta ~beta
         ~t:(2 * n / 5) idx);
    let before = Gc.minor_words () in
    ignore
      (Privcluster.One_cluster.run_indexed rng profile ~grid ~eps:2.0 ~delta ~beta
         ~t:(2 * n / 5) idx);
    Gc.minor_words () -. before
  in
  let d_lo = 4 and d_hi = 32 in
  let w_lo = words_at d_lo and w_hi = words_at d_hi in
  let ratio = w_hi /. w_lo in
  let max_ratio = 4.0 in
  let pass = ratio < max_ratio in
  Workload.Report.kv (Printf.sprintf "minor words/call (n=%d, d=%d)" n d_lo)
    (Printf.sprintf "%.0f" w_lo);
  Workload.Report.kv (Printf.sprintf "minor words/call (n=%d, d=%d)" n d_hi)
    (Printf.sprintf "%.0f" w_hi);
  Workload.Report.kv
    (Printf.sprintf "ratio (d x%d)" (d_hi / d_lo))
    (Printf.sprintf "%.2f (max %.1f): %s" ratio max_ratio (if pass then "ok" else "FAIL"));
  if not pass then begin
    Printf.eprintf
      "B7-alloc FAILED: allocation grew %.2fx when d grew %dx (O(n*d) regression)\n" ratio
      (d_hi / d_lo);
    exit 1
  end;
  (n, d_lo, d_hi, w_lo, w_hi, ratio)

(* B10 — cost of the tracing switch on the hot path.  Tracing is off by
   default and every instrumented call site must then cost no more than
   one atomic load; this measures that cost directly (a tight loop over a
   disabled [Obs.Span.with_span], baseline-subtracted), counts how many
   spans one end-to-end 1-cluster call records when enabled, and gates
   the implied whole-pipeline overhead at [max_pct] of the B7 time. *)
let run_tracing_overhead ~smoke fx =
  Workload.Report.headline "B10 - disabled-tracing overhead on the one-cluster path";
  if Obs.Span.enabled () then begin
    prerr_endline "B10: tracing unexpectedly enabled";
    exit 1
  end;
  let time_ns_per f iters =
    let t0 = Obs.Clock.now_ns () in
    for _ = 1 to iters do
      f ()
    done;
    Int64.to_float (Int64.sub (Obs.Clock.now_ns ()) t0) /. float_of_int iters
  in
  let iters = if smoke then 500_000 else 5_000_000 in
  let bare () = ignore (Sys.opaque_identity 0) in
  let spanned () = Obs.Span.with_span "b10.probe" (fun () -> ignore (Sys.opaque_identity 0)) in
  (* Warm up both loops, then take the best of three to shed scheduler noise
     (the gate must be deterministic in CI, not a coin flip). *)
  ignore (time_ns_per bare iters);
  ignore (time_ns_per spanned iters);
  let best f = List.fold_left Float.min infinity (List.init 3 (fun _ -> time_ns_per f iters)) in
  let ns_per_span = Float.max 0. (best spanned -. best bare) in
  (* How many disabled-path crossings one B7 call performs = how many spans
     it records when enabled. *)
  let span_count =
    Obs.Span.set_enabled true;
    Obs.Span.reset ();
    ignore
      (Privcluster.One_cluster.run_indexed fx.rng Privcluster.Profile.practical ~grid:fx.grid
         ~eps:2.0 ~delta ~beta ~t:fx.t fx.idx);
    let c = Obs.Span.count () in
    Obs.Span.reset ();
    Obs.Span.set_enabled false;
    c
  in
  let b7_ns =
    let call () =
      ignore
        (Privcluster.One_cluster.run_indexed fx.rng Privcluster.Profile.practical ~grid:fx.grid
           ~eps:2.0 ~delta ~beta ~t:fx.t fx.idx)
    in
    call ();
    let reps = if smoke then 1 else 3 in
    let _, ms = Workload.Harness.time (fun () -> for _ = 1 to reps do call () done) in
    ms *. 1e6 /. float_of_int reps
  in
  let overhead_pct = 100. *. ns_per_span *. float_of_int span_count /. b7_ns in
  let max_pct = 2.0 in
  let pass = overhead_pct <= max_pct in
  Workload.Report.kv "disabled with_span crossing" (Printf.sprintf "%.2f ns" ns_per_span);
  Workload.Report.kv "spans per one-cluster call" (string_of_int span_count);
  Workload.Report.kv "one-cluster e2e" (Printf.sprintf "%.2f ms" (b7_ns /. 1e6));
  Workload.Report.kv "implied overhead"
    (Printf.sprintf "%.4f%% (max %.1f%%): %s" overhead_pct max_pct (if pass then "ok" else "FAIL"));
  if not pass then begin
    Printf.eprintf "B10 FAILED: disabled-tracing overhead %.4f%% exceeds %.1f%%\n" overhead_pct
      max_pct;
    exit 1
  end;
  (ns_per_span, span_count, b7_ns, overhead_pct)

(* Run metadata stamped into --json output so archived results say what
   produced them. *)
let run_meta ~jobs =
  let git_commit =
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> Some line
      | _ -> None
    with Unix.Unix_error _ | Sys_error _ -> None
  in
  let timestamp =
    let tm = Unix.gmtime (Unix.time ()) in
    Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
      tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
  in
  (* CPU model and the vector-ISA subset of its feature flags, so archived
     numbers say what silicon produced them (absent off Linux). *)
  let cpu_model, cpu_isa =
    try
      let ic = open_in "/proc/cpuinfo" in
      let model = ref None and flags = ref None in
      (try
         while true do
           let line = input_line ic in
           match String.index_opt line ':' with
           | None -> ()
           | Some i ->
               let key = String.trim (String.sub line 0 i) in
               let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
               if !model = None && (key = "model name" || key = "Processor" || key = "cpu model")
               then model := Some v;
               if !flags = None && (key = "flags" || key = "Features") then flags := Some v
         done
       with End_of_file -> ());
      close_in ic;
      let isa =
        Option.map
          (fun f ->
            let have = String.split_on_char ' ' f in
            String.concat ","
              (List.filter
                 (fun x -> List.mem x have)
                 [ "sse2"; "avx"; "avx2"; "fma"; "avx512f"; "asimd"; "sve" ]))
          !flags
      in
      (!model, isa)
    with Sys_error _ -> (None, None)
  in
  let open Engine.Json in
  let opt = function Some s -> String s | None -> Null in
  Obj
    [
      ("git_commit", (match git_commit with Some c -> String c | None -> Null));
      ("timestamp_utc", String timestamp);
      ("ocaml_version", String Sys.ocaml_version);
      ("jobs", Int jobs);
      ("word_size", Int Sys.word_size);
      ("kernels_compiled", Bool Kernel.compiled);
      ("kernels_active", Bool (Kernel.native_active ()));
      ("cpu_model", opt cpu_model);
      ("cpu_isa", opt cpu_isa);
    ]

let json_of_results ~meta ~fx_n ~fx_d ~timing ~engine ~alloc ~b10 ~b11 ~b12 ~b13 ~b14 ~b15 =
  let open Engine.Json in
  let timing_json =
    List.map
      (fun (name, ns, r2) ->
        Obj
          [
            ("name", String name);
            ("ns_per_call", Float ns);
            ("r_square", Float r2);
          ])
      timing
  in
  let engine_json =
    match engine with
    | None -> Null
    | Some (n_jobs, rows, deterministic) ->
        Obj
          [
            ("jobs", Int n_jobs);
            ("deterministic", Bool deterministic);
            ( "sweep",
              List
                (List.map
                   (fun (domains, ms) ->
                     Obj
                       [
                         ("domains", Int domains);
                         ("wall_ms", Float ms);
                         ("jobs_per_s", Float (1000. *. float_of_int n_jobs /. ms));
                       ])
                   rows) );
          ]
  in
  let alloc_json =
    match alloc with
    | None -> Null
    | Some (n, d_lo, d_hi, w_lo, w_hi, ratio) ->
        Obj
          [
            ("n", Int n);
            ("d_lo", Int d_lo);
            ("d_hi", Int d_hi);
            ("minor_words_lo", Float w_lo);
            ("minor_words_hi", Float w_hi);
            ("ratio", Float ratio);
          ]
  in
  let b10_json =
    match b10 with
    | None -> Null
    | Some (ns_per_span, span_count, b7_ns, overhead_pct) ->
        Obj
          [
            ("ns_per_disabled_span", Float ns_per_span);
            ("spans_per_one_cluster", Int span_count);
            ("one_cluster_ns", Float b7_ns);
            ("overhead_pct", Float overhead_pct);
          ]
  in
  let b11_json =
    match b11 with
    | None -> Null
    | Some (n_jobs, iters, local_ms, daemon_ms, overhead_pct, identical) ->
        Obj
          [
            ("jobs", Int n_jobs);
            ("iters", Int iters);
            ("in_process_ms", Float local_ms);
            ("daemon_ms", Float daemon_ms);
            ("overhead_ms", Float (daemon_ms -. local_ms));
            ("overhead_pct", Float overhead_pct);
            ("verdicts_identical", Bool identical);
          ]
  in
  let b12_json =
    match b12 with
    | None -> Null
    | Some (n_jobs, cold_ms, warm_ms, append_ms, requery_ms, speedup, gates_pass) ->
        Obj
          [
            ("jobs", Int n_jobs);
            ("cold_ms", Float cold_ms);
            ("cached_rerun_ms", Float warm_ms);
            ("append_ms", Float append_ms);
            ("requery_ms", Float requery_ms);
            ("cache_hit_speedup", Float speedup);
            ("cache_hits_charged_zero", Bool gates_pass);
          ]
  in
  let b13_json =
    match b13 with
    | None -> Null
    | Some (identity_ok, parallel_ok, rows, floor, enforced) ->
        Obj
          [
            ("identity_bitwise", Bool identity_ok);
            ("parallel_build_identical", Bool parallel_ok);
            ("speedup_floor", Float floor);
            ("floor_enforced", Bool enforced);
            ( "speedups",
              List
                (List.map
                   (fun (name, off_ms, on_ms, s) ->
                     Obj
                       [
                         ("name", String name);
                         ("reference_ms", Float off_ms);
                         ("native_ms", Float on_ms);
                         ("speedup", Float s);
                       ])
                   rows) );
          ]
  in
  let b14_json =
    match b14 with
    | None -> Null
    | Some (central_ms, local_ms, meb_ms, envelope, ratio) ->
        Obj
          [
            ("one_cluster_ms", Float central_ms);
            ("local_cluster_ms", Float local_ms);
            ("meb_fptas_ms", Float meb_ms);
            ("ldp_envelope", Float envelope);
            ("ldp_ratio", Float ratio);
          ]
  in
  let b15_json =
    match b15 with
    | None -> Null
    | Some
        ( n_jobs,
          iters,
          off_ms,
          on_ms,
          overhead_pct,
          sampled_ms,
          sampled_pct,
          exemplars,
          identical,
          record_ns,
          implied_pct ) ->
        Obj
          [
            ("jobs", Int n_jobs);
            ("iters", Int iters);
            ("plain_ms", Float off_ms);
            ("telemetry_ms", Float on_ms);
            ("wall_delta_pct", Float overhead_pct);
            ("record_ns_per_request", Float record_ns);
            ("implied_overhead_pct", Float implied_pct);
            ("gate_pct", Float 2.0);
            ("sampled_ms", Float sampled_ms);
            ("sampled_overhead_pct", Float sampled_pct);
            ("exemplars_written", Int exemplars);
            ("verdicts_identical", Bool identical);
          ]
  in
  Obj
    [
      ("schema", String "privcluster-bench/6");
      ("meta", meta);
      ("fixture", Obj [ ("n", Int fx_n); ("dim", Int fx_d) ]);
      ("timing", List timing_json);
      ("engine", engine_json);
      ("alloc_check", alloc_json);
      ("tracing_overhead", b10_json);
      ("daemon_roundtrip", b11_json);
      ("epoch_requery", b12_json);
      ("kernel_gates", b13_json);
      ("competitors", b14_json);
      ("serving_overhead", b15_json);
    ]

let write_json path json =
  let oc = open_out path in
  output_string oc (Engine.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "bench results written to %s\n" path

(* CI mode: execute every bench path exactly once on a tiny fixture — no
   measurement loops, just "does each stage still run end to end". *)
let run_smoke ~jobs ~json_path =
  Workload.Report.headline "smoke - one tiny call per bench stage";
  let fx = fixture ~n:160 ~dim:2 () in
  List.iter
    (fun (name, thunk) ->
      let _, ms = Workload.Harness.time thunk in
      Workload.Report.kv name (Printf.sprintf "ok (%.1f ms)" ms))
    (stage_thunks fx);
  let engine = run_engine_bench ~quick:true ~max_jobs:2 fx in
  let alloc = run_alloc_check ~smoke:true in
  let b10 = run_tracing_overhead ~smoke:true fx in
  let b11 = run_daemon_bench ~quick:true ~jobs:2 in
  let b12 = run_epoch_bench ~jobs:2 in
  let b13 = run_kernel_gates fx in
  let b14 = run_competitor_bench ~smoke:true fx in
  let b15 = run_serving_bench ~quick:true ~jobs:2 in
  (match json_path with
  | None -> ()
  | Some path ->
      write_json path
        (json_of_results ~meta:(run_meta ~jobs) ~fx_n:160 ~fx_d:2 ~timing:[]
           ~engine:(Some engine) ~alloc:(Some alloc) ~b10:(Some b10) ~b11:(Some b11)
           ~b12:(Some b12) ~b13:(Some b13) ~b14:(Some b14) ~b15:(Some b15)));
  print_endline "smoke OK"

let () =
  let quick = ref false and only = ref [] and timing = ref true and experiments = ref true in
  let jobs = ref 1 in
  let csv = ref None and json_path = ref None in
  let smoke = ref false in
  let fix_n = ref 1500 and fix_d = ref 2 in
  let seed = ref Workload.Experiments.default_cfg.Workload.Experiments.seed in
  let spec =
    [
      ("--quick", Arg.Set quick, "reduced trials and sweeps");
      ( "--only",
        Arg.String (fun s -> only := String.split_on_char ',' s),
        "comma-separated experiment ids (e.g. E1,E4); implies --no-timing" );
      ("--no-timing", Arg.Clear timing, "skip the Bechamel benches");
      ("--timing-only", Arg.Clear experiments, "only the Bechamel benches");
      ( "--jobs",
        Arg.Set_int jobs,
        "run the experiment suite on this many engine-pool worker domains (default 1)" );
      ("--seed", Arg.Set_int seed, "base RNG seed");
      ("--csv", Arg.String (fun d -> csv := Some d), "also write each table as CSV into this directory");
      ( "--json",
        Arg.String (fun f -> json_path := Some f),
        "write B1-B8 and allocation-check results as JSON to this file" );
      ("--fix-n", Arg.Set_int fix_n, "timing-fixture point count (default 1500)");
      ("--fix-d", Arg.Set_int fix_d, "timing-fixture dimension (default 2)");
      ("--smoke", Arg.Set smoke, "one tiny call per bench stage and exit (CI mode)");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) "privcluster bench";
  Workload.Report.set_csv_dir !csv;
  if !smoke then run_smoke ~jobs:!jobs ~json_path:!json_path
  else begin
    let cfg = { Workload.Experiments.quick = !quick; seed = !seed } in
    if !experiments then begin
      let selected =
        match !only with
        | [] -> Workload.Experiments.all
        | ids ->
            timing := false;
            List.filter (fun (id, _, _) -> List.mem id ids) Workload.Experiments.all
      in
      run_experiments ~jobs:!jobs cfg selected
    end;
    if !timing then begin
      let fx = fixture ~n:!fix_n ~dim:!fix_d () in
      let timing_rows = run_timing ~quick:!quick fx in
      let engine = run_engine_bench ~quick:!quick ~max_jobs:!jobs fx in
      let alloc = run_alloc_check ~smoke:false in
      let b10 = run_tracing_overhead ~smoke:false fx in
      let b11 = run_daemon_bench ~quick:!quick ~jobs:(max !jobs 4) in
      let b12 = run_epoch_bench ~jobs:(max !jobs 4) in
      let b13 = run_kernel_gates fx in
      let b14 = run_competitor_bench ~smoke:false fx in
      let b15 = run_serving_bench ~quick:!quick ~jobs:(max !jobs 4) in
      match !json_path with
      | None -> ()
      | Some path ->
          write_json path
            (json_of_results ~meta:(run_meta ~jobs:!jobs) ~fx_n:!fix_n ~fx_d:!fix_d
               ~timing:timing_rows ~engine:(Some engine) ~alloc:(Some alloc) ~b10:(Some b10)
               ~b11:(Some b11) ~b12:(Some b12) ~b13:(Some b13) ~b14:(Some b14)
               ~b15:(Some b15))
    end
  end
