lib/baselines/nonprivate.mli: Geometry
