test/test_pointset.ml: Alcotest Array Float Geometry List QCheck2 Testutil
