#!/usr/bin/env bash
# CI smoke for privclusterd: serve on a Unix socket, drive an 8-job batch
# through the client, scrape the metrics exposition, SIGTERM, and require
# a clean drain (exit 0).  The WAL and the daemon trace are left in
# $OUT_DIR for upload as CI artifacts.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT_DIR="${OUT_DIR:-daemon-smoke}"
mkdir -p "$OUT_DIR"
rm -f "$OUT_DIR"/privclusterd.wal "$OUT_DIR"/daemon-trace.json \
      "$OUT_DIR"/serve.log "$OUT_DIR"/metrics.txt "$OUT_DIR"/run.json

dune build bin/privcluster_cli.exe
CLI=_build/default/bin/privcluster_cli.exe
SOCK="$OUT_DIR/privclusterd.sock"

"$CLI" serve --socket "$SOCK" --wal "$OUT_DIR/privclusterd.wal" \
  --tenant ci:ci-token --jobs 2 --trace "$OUT_DIR/daemon-trace.json" \
  >"$OUT_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT

for _ in $(seq 100); do
  grep -q "privclusterd listening" "$OUT_DIR/serve.log" 2>/dev/null && break
  sleep 0.1
done
grep -q "privclusterd listening" "$OUT_DIR/serve.log"

client() { "$CLI" client "$@" --socket "$SOCK" --tenant ci --token ci-token; }

client ping >/dev/null
client register --dataset smoke --points 800 --axis 128 \
  --budget-eps 6 --budget-delta 1e-4 >/dev/null

cat > "$OUT_DIR/jobs.txt" <<'EOF'
one_cluster t_fraction=0.45 eps=0.5 delta=1e-7 id=c1
one_cluster t_fraction=0.40 eps=0.5 delta=1e-7 id=c2
one_cluster t_fraction=0.45 eps=0.5 delta=1e-7 id=c3 fallback=true
quantile    q=0.5 axis=0 eps=0.2 id=median
quantile    q=0.9 axis=1 eps=0.2 id=q90
one_cluster t_fraction=0.35 eps=0.5 delta=1e-7 id=c4
quantile    q=0.1 axis=0 eps=0.2 id=q10
one_cluster t_fraction=0.45 eps=9.0 delta=1e-7 id=greedy
EOF
client run --dataset smoke --seed 7 "$OUT_DIR/jobs.txt" > "$OUT_DIR/run.json"
grep -q '"status"' "$OUT_DIR/run.json"
# the deliberately greedy job must be refused, not crash the batch
grep -q '"refused"' "$OUT_DIR/run.json"

client metrics > "$OUT_DIR/metrics.txt"
grep -q 'privcluster_budget_epsilon' "$OUT_DIR/metrics.txt"
grep -q 'privclusterd_queue_depth' "$OUT_DIR/metrics.txt"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID"          # a graceful drain must exit 0
trap - EXIT
grep -q "privclusterd: clean drain" "$OUT_DIR/serve.log"
test -s "$OUT_DIR/privclusterd.wal"
"$CLI" validate-trace "$OUT_DIR/daemon-trace.json"
echo "daemon smoke OK"
