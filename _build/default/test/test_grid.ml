(* The finite domain X^d and both candidate-radius sets. *)

open Testutil

let test_basic_properties () =
  let g = Geometry.Grid.create ~axis_size:256 ~dim:4 in
  check_int "axis" 256 (Geometry.Grid.axis_size g);
  check_int "dim" 4 (Geometry.Grid.dim g);
  check_float ~tol:1e-12 "step" (1. /. 255.) (Geometry.Grid.step g);
  check_float ~tol:1e-12 "diameter" 2.0 (Geometry.Grid.diameter g);
  Alcotest.check_raises "axis >= 2" (Invalid_argument "Grid.create: axis_size must be >= 2")
    (fun () -> ignore (Geometry.Grid.create ~axis_size:1 ~dim:1))

let test_snap_and_mem () =
  let g = Geometry.Grid.create ~axis_size:11 ~dim:2 in
  (* step = 0.1 *)
  let s = Geometry.Grid.snap g [| 0.234; 0.56 |] in
  check_float ~tol:1e-12 "snap x" 0.2 s.(0);
  check_float ~tol:1e-12 "snap y" 0.6 s.(1);
  check_true "snapped point on grid" (Geometry.Grid.mem g s);
  check_true "off-grid rejected" (not (Geometry.Grid.mem g [| 0.234; 0.56 |]));
  let clamped = Geometry.Grid.snap g [| -5.; 7. |] in
  check_float "clamp low" 0. clamped.(0);
  check_float "clamp high" 1. clamped.(1)

let test_random_point_on_grid () =
  let r = rng () in
  let g = Geometry.Grid.create ~axis_size:17 ~dim:3 in
  for _ = 1 to 100 do
    check_true "random point on grid" (Geometry.Grid.mem g (Geometry.Grid.random_point g r))
  done

let test_linear_candidates () =
  let g = Geometry.Grid.create ~axis_size:256 ~dim:4 in
  let m = Geometry.Grid.radius_candidates g in
  (* {0, 1/512, ..., ⌈2⌉ = 2}: 2·512 + 1. *)
  check_int "count" 1025 m;
  check_float "index 0" 0. (Geometry.Grid.radius_of_index g 0);
  check_float ~tol:1e-12 "index 1" (1. /. 512.) (Geometry.Grid.radius_of_index g 1);
  check_float "top index = ceil(sqrt d)" 2. (Geometry.Grid.radius_of_index g (m - 1));
  Alcotest.check_raises "out of range" (Invalid_argument "Grid.radius_of_index: out of range")
    (fun () -> ignore (Geometry.Grid.radius_of_index g m))

let test_linear_index_of_radius_inverse () =
  let g = Geometry.Grid.create ~axis_size:64 ~dim:2 in
  for i = 0 to Geometry.Grid.radius_candidates g - 1 do
    let r = Geometry.Grid.radius_of_index g i in
    let j = Geometry.Grid.index_of_radius g r in
    check_true "index_of_radius inverts" (j <= i);
    check_true "returned radius covers" (Geometry.Grid.radius_of_index g j >= r -. 1e-12)
  done

let test_geometric_candidates () =
  let g = Geometry.Grid.create ~axis_size:256 ~dim:4 in
  let m = Geometry.Grid.geometric_candidates g in
  check_true "logarithmically many" (m < 50);
  check_float "index 0 is radius 0" 0. (Geometry.Grid.geometric_radius_of_index g 0);
  check_float ~tol:1e-12 "index 1 is step/2" (Geometry.Grid.step g /. 2.)
    (Geometry.Grid.geometric_radius_of_index g 1);
  check_true "top covers the diameter"
    (Geometry.Grid.geometric_radius_of_index g (m - 1) >= Geometry.Grid.diameter g -. 1e-9)

let test_geometric_half_relation () =
  (* r_{i-2} = r_i / 2 wherever no capping occurs — GoodRadius's half-index
     map depends on this. *)
  let g = Geometry.Grid.create ~axis_size:256 ~dim:4 in
  let m = Geometry.Grid.geometric_candidates g in
  for i = 3 to m - 2 do
    let r = Geometry.Grid.geometric_radius_of_index g i in
    if r < Geometry.Grid.diameter g then
      check_float ~tol:1e-9
        (Printf.sprintf "half relation at %d" i)
        (r /. 2.)
        (Geometry.Grid.geometric_radius_of_index g (i - 2))
  done

let test_geometric_monotone_and_ratio () =
  let g = Geometry.Grid.create ~axis_size:1024 ~dim:2 in
  let m = Geometry.Grid.geometric_candidates g in
  for i = 2 to m - 1 do
    let a = Geometry.Grid.geometric_radius_of_index g (i - 1) in
    let b = Geometry.Grid.geometric_radius_of_index g i in
    check_true "strictly increasing until cap" (b >= a);
    if b < Geometry.Grid.diameter g then
      check_true "ratio at most sqrt 2" (b /. a <= sqrt 2. +. 1e-9)
  done

let test_geometric_index_of_radius () =
  let g = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  check_int "zero maps to 0" 0 (Geometry.Grid.geometric_index_of_radius g 0.);
  for i = 1 to Geometry.Grid.geometric_candidates g - 1 do
    let r = Geometry.Grid.geometric_radius_of_index g i in
    let j = Geometry.Grid.geometric_index_of_radius g r in
    check_true "covering index" (Geometry.Grid.geometric_radius_of_index g j >= r -. 1e-9)
  done

let test_log_star () =
  let g16 = Geometry.Grid.create ~axis_size:16 ~dim:1 in
  let g64k = Geometry.Grid.create ~axis_size:65536 ~dim:1 in
  check_true "log* grows very slowly"
    (Geometry.Grid.log_star_term g64k -. Geometry.Grid.log_star_term g16 <= 1.5);
  check_true "log* small" (Geometry.Grid.log_star_term g64k <= 5.5)

let suite =
  [
    case "basic properties" test_basic_properties;
    case "snap and mem" test_snap_and_mem;
    case "random points on grid" test_random_point_on_grid;
    case "linear candidate set" test_linear_candidates;
    case "linear index_of_radius" test_linear_index_of_radius_inverse;
    case "geometric candidate set" test_geometric_candidates;
    case "geometric half relation" test_geometric_half_relation;
    case "geometric ratio" test_geometric_monotone_and_ratio;
    case "geometric index_of_radius" test_geometric_index_of_radius;
    case "log star term" test_log_star;
  ]
