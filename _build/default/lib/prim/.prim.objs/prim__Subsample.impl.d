lib/prim/subsample.ml: Dp Float
