(** Arbitrary rectangular domains (Remark 3.3).

    The solvers operate on the unit cube quantized by {!Geometry.Grid};
    Remark 3.3 notes the results extend to any grid step [ℓ] and axis
    length [L] by replacing [|X|] with [L/ℓ].  This module implements that
    extension as an affine change of coordinates: build a {!t} from the
    bounding box of your data space, map points in with {!to_unit}, run any
    solver, and map centers/radii back out with {!of_unit} /
    {!radius_of_unit}.

    To keep the radius mapping exact the box is inflated to a {e cube}
    (all axes get the longest side): an isotropic scaling multiplies every
    distance by the same factor, so a ball in unit space is a ball in data
    space.  {!solve} wraps the whole round trip around
    {!One_cluster.run}. *)

type t

val create : lo:Geometry.Vec.t -> hi:Geometry.Vec.t -> axis_size:int -> t
(** [create ~lo ~hi ~axis_size] — the data cube spans [lo … hi] per axis
    (inflated to the longest side) with [axis_size] grid points per axis.
    @raise Invalid_argument unless [lo.(i) < hi.(i)] for every axis. *)

val of_points : ?margin:float -> axis_size:int -> Geometry.Vec.t array -> t
(** Bounding box of the data, inflated by [margin] (fraction of the side,
    default 0.05) on every side.  {b Privacy note}: the box is derived from
    the data; treat it as public context (e.g. sensor ranges are known) or
    supply a fixed box via {!create} — the solvers' guarantees are stated
    for a data-independent domain. *)

val grid : t -> Geometry.Grid.t
val scale : t -> float
(** The side length of the (inflated) data cube. *)

val to_unit : t -> Geometry.Vec.t -> Geometry.Vec.t
(** Affine map into the unit cube, snapped to the grid.  Points outside
    the box are clamped. *)

val of_unit : t -> Geometry.Vec.t -> Geometry.Vec.t
val radius_of_unit : t -> float -> float
val radius_to_unit : t -> float -> float

type result = {
  center : Geometry.Vec.t;  (** In data coordinates. *)
  radius : float;  (** In data coordinates. *)
  unit_result : One_cluster.result;  (** The raw unit-cube result. *)
}

val solve :
  Prim.Rng.t ->
  Profile.t ->
  t ->
  eps:float ->
  delta:float ->
  beta:float ->
  t:int ->
  Geometry.Vec.t array ->
  (result, One_cluster.failure) Stdlib.result
(** Map in, run {!One_cluster.run}, map out. *)
