lib/geometry/boxing.mli: Interval Prim Vec
