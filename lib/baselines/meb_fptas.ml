type result = {
  center : Geometry.Vec.t;
  radius : float;
  coreset_size : int;
  refinement_rounds : int;
}

type failure = Center_bottom

let pp_failure ppf = function
  | Center_bottom -> Format.fprintf ppf "noisy-average bottom: coreset count bound non-positive"

let pp_result ppf r =
  Format.fprintf ppf "center %a radius %.4f (coreset %d, %d refinement rounds)" Geometry.Vec.pp
    r.center r.radius r.coreset_size r.refinement_rounds

let default_coreset = 400
let default_rounds = 6

(* The coreset stage runs NoisyAVG on an m-of-n sample with replacement;
   secrecy of the subsample (Prim.Subsample, valid for ε₀ ≤ 1, n ≥ 2m)
   amplifies its (ε₀, δ₀) into (6·ε₀·m/n, e^ε̃·4·(m/n)·δ₀).  Given the
   stage budget we invert: spend the largest ε₀ ≤ 1 whose amplified cost
   stays within it, and pick δ₀ so the amplified δ stays within [delta].
   When n < 2m the lemma does not apply and the stage runs on the full
   data at the un-amplified budget (still DP, just not cheaper). *)
let coreset_budget ~eps_stage ~delta ~n ~coreset =
  let m = max 1 (min coreset n) in
  if n >= 2 * m then begin
    let eps0 = Float.min 1.0 (eps_stage *. float_of_int n /. (6. *. float_of_int m)) in
    let ratio = float_of_int m /. float_of_int n in
    let eps_eff = 6. *. eps0 *. ratio in
    let delta0 = Float.min 0.25 (delta /. (exp eps_eff *. 4. *. ratio)) in
    let eff = Prim.Subsample.amplify ~eps:eps0 ~delta:delta0 ~m ~n in
    (m, eps0, delta0, eff)
  end
  else (m, eps_stage, delta, Prim.Dp.v ~eps:eps_stage ~delta)

let budget_breakdown ~eps ~delta ~n ~coreset =
  let _, _, _, eff = coreset_budget ~eps_stage:(eps /. 4.) ~delta ~n ~coreset in
  [
    ("coreset noisy-average (amplified)", eff);
    ("center refinement (exp-mech rounds)", Prim.Dp.pure ~eps:(eps /. 4.));
    ("radius monotone search", Prim.Dp.pure ~eps:(eps /. 2.));
  ]

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let run rng ~grid ~eps ~delta ?(coreset = default_coreset) ?(rounds = default_rounds) ~t ps =
  let d = Geometry.Pointset.dim ps in
  if d <> Geometry.Grid.dim grid then invalid_arg "Meb_fptas.run: dimension mismatch";
  if t <= 0 then invalid_arg "Meb_fptas.run: t must be positive";
  let n = Geometry.Pointset.n ps in
  let diameter = Geometry.Grid.diameter grid in
  (* Stage 1: amplified NoisyAVG of the sampled coreset. *)
  let m, eps0, delta0, _eff = coreset_budget ~eps_stage:(eps /. 4.) ~delta ~n ~coreset in
  let indices = Prim.Rng.sample_with_replacement rng ~k:m (Array.init n (fun i -> i)) in
  let sample = Array.map (fun i -> Geometry.Pointset.point ps i) indices in
  match
    Prim.Noisy_avg.run rng ~eps:eps0 ~delta:delta0 ~diameter ~pred:(fun _ -> true) ~dim:d sample
  with
  | Prim.Noisy_avg.Bottom -> Error Center_bottom
  | Prim.Noisy_avg.Average a ->
      let center = ref (Array.map clamp01 a.Prim.Noisy_avg.average) in
      (* Stage 2: private coordinate descent.  Each round asks the
         exponential mechanism to pick, among staying put and the 2d
         single-axis steps, the candidate whose step-radius ball holds the
         most points (capped at t, so the quality has sensitivity 1). *)
      let rounds = max 0 rounds in
      if rounds > 0 then begin
        let eps_round = eps /. 4. /. float_of_int rounds in
        let step = ref (diameter /. 4.) in
        for _ = 1 to rounds do
          let candidates =
            Array.init
              ((2 * d) + 1)
              (fun i ->
                if i = 0 then Array.copy !center
                else
                  let axis = (i - 1) / 2 in
                  let dir = if i land 1 = 1 then +1. else -1. in
                  let c = Array.copy !center in
                  c.(axis) <- clamp01 (c.(axis) +. (dir *. !step));
                  c)
          in
          let qualities =
            Array.map
              (fun c ->
                float_of_int (Geometry.Pointset.capped_ball_count ps ~cap:t ~center:c ~radius:!step))
              candidates
          in
          let pick = Prim.Exp_mech.select rng ~eps:eps_round ~sensitivity:1.0 ~qualities in
          center := candidates.(pick);
          step := !step /. 2.
        done
      end;
      let center = !center in
      (* Stage 3: the in-ball count around the (now public) center is a
         monotone sensitivity-1 function of the radius. *)
      let size = Geometry.Grid.radius_candidates grid in
      let count =
        Recconcave.Quality.create ~size ~f:(fun i ->
            float_of_int
              (Geometry.Pointset.ball_count ps ~center
                 ~radius:(Geometry.Grid.radius_of_index grid i)))
      in
      let slack =
        Recconcave.Monotone_search.accuracy_bound ~size ~eps:(eps /. 2.) ~sensitivity:1.0
          ~beta:0.1
      in
      let search =
        Recconcave.Monotone_search.solve rng ~eps:(eps /. 2.) ~sensitivity:1.0
          ~target:(float_of_int t -. slack)
          count
      in
      Ok
        {
          center;
          radius = Geometry.Grid.radius_of_index grid search.Recconcave.Monotone_search.index;
          coreset_size = m;
          refinement_rounds = rounds;
        }
