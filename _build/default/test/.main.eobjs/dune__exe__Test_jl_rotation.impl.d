test/test_jl_rotation.ml: Alcotest Array Float Geometry Prim Testutil
