(* Randomly shifted interval partitions and the box partitions of R^k. *)

open Testutil

let test_partition_membership () =
  let p = Geometry.Interval.fixed ~shift:0.3 ~len:2.0 in
  let check x =
    let j = Geometry.Interval.index_of p x in
    let lo, hi = Geometry.Interval.bounds p j in
    (* Tolerance: floor((x − shift)/len) can round either way when x sits
       exactly on an interval boundary. *)
    check_true (Printf.sprintf "%.3f in its interval" x) (lo -. 1e-9 <= x && x < hi +. 1e-9);
    check_float ~tol:1e-12 "interval length" 2.0 (hi -. lo)
  in
  List.iter check [ -7.2; -0.1; 0.; 0.3; 1.0; 2.3; 100.4 ]

let qcheck_partition_membership =
  qcheck "x lies in interval of its index"
    QCheck2.Gen.(pair (float_range (-1000.) 1000.) (float_range 0.01 50.))
    (fun (x, len) ->
      let p = Geometry.Interval.fixed ~shift:(len /. 3.) ~len in
      let j = Geometry.Interval.index_of p x in
      let lo, hi = Geometry.Interval.bounds p j in
      lo -. 1e-9 <= x && x < hi +. 1e-9)

let test_random_shift_in_range () =
  let r = rng () in
  for _ = 1 to 100 do
    let p = Geometry.Interval.make r ~len:5.0 in
    check_in_range "shift in [0, len)" ~lo:0. ~hi:5.0 (Geometry.Interval.shift p)
  done

let test_extend () =
  let p = Geometry.Interval.fixed ~shift:0. ~len:1.0 in
  let lo, hi = Geometry.Interval.extend p 3 ~by:0.5 in
  check_float "extended lo" 2.5 lo;
  check_float "extended hi" 4.5 hi

let test_plain_intervals () =
  let i = Geometry.Interval.of_center ~center:0.5 ~radius:0.2 in
  check_true "contains center" (Geometry.Interval.contains i 0.5);
  check_true "contains boundary" (Geometry.Interval.contains i 0.7);
  check_true "excludes outside" (not (Geometry.Interval.contains i 0.71));
  check_float ~tol:1e-12 "length" 0.4 (Geometry.Interval.length i);
  check_float ~tol:1e-12 "center" 0.5 (Geometry.Interval.center i);
  (match
     Geometry.Interval.intersect
       { Geometry.Interval.lo = 0.; hi = 1. }
       { Geometry.Interval.lo = 0.5; hi = 2. }
   with
  | Some x ->
      check_float "intersect lo" 0.5 x.Geometry.Interval.lo;
      check_float "intersect hi" 1.0 x.Geometry.Interval.hi
  | None -> Alcotest.fail "expected intersection");
  check_true "disjoint intersect"
    (Geometry.Interval.intersect
       { Geometry.Interval.lo = 0.; hi = 1. }
       { Geometry.Interval.lo = 2.; hi = 3. }
    = None)

let test_boxing_key_consistency () =
  let r = rng () in
  let b = Geometry.Boxing.make r ~dim:3 ~len:0.25 in
  for _ = 1 to 200 do
    let v = Prim.Rng.gaussian_vector r ~dim:3 ~sigma:2.0 in
    let key = Geometry.Boxing.key_of b v in
    let bounds = Geometry.Boxing.bounds b key in
    Array.iteri
      (fun i (lo, hi) ->
        check_true "coordinate within box" (lo <= v.(i) && v.(i) < hi))
      bounds
  done

let test_boxing_center_and_diameter () =
  let b =
    Geometry.Boxing.of_partitions
      [| Geometry.Interval.fixed ~shift:0. ~len:1.0; Geometry.Interval.fixed ~shift:0. ~len:2.0 |]
  in
  let c = Geometry.Boxing.center b [| 0; 0 |] in
  check_float "center x" 0.5 c.(0);
  check_float "center y" 1.0 c.(1);
  check_float ~tol:1e-12 "l2 diameter" (sqrt 5.) (Geometry.Boxing.l2_diameter b);
  check_float "side 1" 2.0 (Geometry.Boxing.side b 1)

let test_occupancy () =
  let r = rng () in
  let b = Geometry.Boxing.make r ~dim:2 ~len:0.3 in
  let points = Array.init 500 (fun _ -> [| Prim.Rng.float r 1.0; Prim.Rng.float r 1.0 |]) in
  let occ = Geometry.Boxing.occupancy b points in
  check_int "occupancy totals n" 500 (List.fold_left (fun acc (_, c) -> acc + c) 0 occ);
  let max_occ = Geometry.Boxing.max_occupancy b points in
  check_int "max matches occupancy list" (List.fold_left (fun a (_, c) -> max a c) 0 occ) max_occ

let test_capture_probability () =
  (* A diameter-s set lands in one randomly shifted length-l interval with
     probability 1 - s/l; check the 1-D case empirically. *)
  let r = rng () in
  let len = 1.0 and spread = 0.25 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let p = Geometry.Interval.make r ~len in
    let x = Prim.Rng.float r 10.0 in
    if Geometry.Interval.index_of p x = Geometry.Interval.index_of p (x +. spread) then incr hits
  done;
  check_float ~tol:0.02 "capture probability 1 - s/l" 0.75 (float_of_int !hits /. float_of_int n)

let suite =
  [
    case "partition membership" test_partition_membership;
    qcheck_partition_membership;
    case "random shift range" test_random_shift_in_range;
    case "extend" test_extend;
    case "plain intervals" test_plain_intervals;
    case "boxing key consistency" test_boxing_key_consistency;
    case "boxing center and diameter" test_boxing_center_and_diameter;
    case "occupancy" test_occupancy;
    case "capture probability" test_capture_probability;
  ]
