lib/geometry/grid.mli: Prim Vec
