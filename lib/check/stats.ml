(* Special functions: the standard series / continued-fraction evaluations
   (Lanczos log-gamma; Numerical-Recipes-style gser/gcf and betacf). *)

let lanczos =
  [|
    0.99999999999980993;
    676.5203681218851;
    -1259.1392167224028;
    771.32342877765313;
    -176.61502916214059;
    12.507343278686905;
    -0.13857109526572012;
    9.9843695780195716e-6;
    1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection: Γ(x)Γ(1−x) = π / sin(πx). *)
    log (Float.pi /. Float.abs (sin (Float.pi *. x))) -. log_gamma (1. -. x)
  else
    let x = x -. 1. in
    let a = ref lanczos.(0) in
    let g = 7. in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    let t = x +. g +. 0.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

(* Lower incomplete gamma by series (converges fast for x < a + 1). *)
let gamma_p_series ~a ~x =
  let rec go ap del sum iter =
    if iter > 500 || Float.abs del < Float.abs sum *. 1e-15 then sum
    else
      let ap = ap +. 1. in
      let del = del *. x /. ap in
      go ap del (sum +. del) (iter + 1)
  in
  let start = 1. /. a in
  let sum = go a start start 0 in
  sum *. exp ((a *. log x) -. x -. log_gamma a)

(* Upper incomplete gamma by Lentz continued fraction (for x ≥ a + 1). *)
let gamma_q_cf ~a ~x =
  let tiny = 1e-300 in
  let b = ref (x +. 1. -. a) in
  let c = ref (1. /. tiny) in
  let d = ref (1. /. !b) in
  let h = ref !d in
  (try
     for i = 1 to 500 do
       let an = -.float_of_int i *. (float_of_int i -. a) in
       b := !b +. 2.;
       d := (an *. !d) +. !b;
       if Float.abs !d < tiny then d := tiny;
       c := !b +. (an /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < 1e-15 then raise Exit
     done
   with Exit -> ());
  !h *. exp ((a *. log x) -. x -. log_gamma a)

let gamma_p ~a ~x =
  if not (a > 0.) then invalid_arg "Stats.gamma_p: a must be positive";
  if x < 0. then invalid_arg "Stats.gamma_p: x must be non-negative";
  if x = 0. then 0.
  else if x < a +. 1. then gamma_p_series ~a ~x
  else 1. -. gamma_q_cf ~a ~x

let gamma_q ~a ~x =
  if not (a > 0.) then invalid_arg "Stats.gamma_q: a must be positive";
  if x < 0. then invalid_arg "Stats.gamma_q: x must be non-negative";
  if x = 0. then 1.
  else if x < a +. 1. then 1. -. gamma_p_series ~a ~x
  else gamma_q_cf ~a ~x

let erfc x =
  if x >= 0. then gamma_q ~a:0.5 ~x:(x *. x) else 2. -. gamma_q ~a:0.5 ~x:(x *. x)

let normal_cdf ?(mu = 0.) ~sigma x =
  if not (sigma > 0.) then invalid_arg "Stats.normal_cdf: sigma must be positive";
  0.5 *. erfc (-.(x -. mu) /. (sigma *. sqrt 2.))

let chi2_sf ~df x =
  if df <= 0 then invalid_arg "Stats.chi2_sf: df must be positive";
  if x <= 0. then 1. else gamma_q ~a:(float_of_int df /. 2.) ~x:(x /. 2.)

(* Incomplete beta: continued fraction (Lentz), standard symmetry split. *)
let betacf a b x =
  let tiny = 1e-300 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1. /. !d;
  let h = ref !d in
  (try
     for m = 1 to 300 do
       let mf = float_of_int m in
       let m2 = 2. *. mf in
       let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1. +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       h := !h *. !d *. !c;
       let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
       d := 1. +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1. +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1. /. !d;
       let del = !d *. !c in
       h := !h *. del;
       if Float.abs (del -. 1.) < 1e-15 then raise Exit
     done
   with Exit -> ());
  !h

let reg_inc_beta ~a ~b x =
  if not (a > 0. && b > 0.) then invalid_arg "Stats.reg_inc_beta: a, b must be positive";
  if x <= 0. then 0.
  else if x >= 1. then 1.
  else
    let bt =
      exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. log x)
        +. (b *. log1p (-.x)))
    in
    if x < (a +. 1.) /. (a +. b +. 2.) then bt *. betacf a b x /. a
    else 1. -. (bt *. betacf b a (1. -. x) /. b)

(* Beta quantile by bisection — monotone CDF, 80 halvings ≈ 1e-24. *)
let beta_inv ~a ~b p =
  if p <= 0. then 0.
  else if p >= 1. then 1.
  else begin
    let lo = ref 0. and hi = ref 1. in
    for _ = 1 to 80 do
      let mid = 0.5 *. (!lo +. !hi) in
      if reg_inc_beta ~a ~b mid < p then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

type interval = { lo : float; hi : float }

let clopper_pearson ~alpha ~k ~n =
  if n <= 0 then invalid_arg "Stats.clopper_pearson: n must be positive";
  if k < 0 || k > n then invalid_arg "Stats.clopper_pearson: k must be in [0, n]";
  if not (alpha > 0. && alpha < 1.) then
    invalid_arg "Stats.clopper_pearson: alpha must be in (0, 1)";
  let kf = float_of_int k and nf = float_of_int n in
  let lo =
    if k = 0 then 0. else beta_inv ~a:kf ~b:(nf -. kf +. 1.) (alpha /. 2.)
  in
  let hi =
    if k = n then 1. else beta_inv ~a:(kf +. 1.) ~b:(nf -. kf) (1. -. (alpha /. 2.))
  in
  { lo; hi }

(* Kolmogorov asymptotic survival function Q(λ) = 2 Σ (−1)^{j−1} e^{−2j²λ²}. *)
let kolmogorov_sf lambda =
  if lambda <= 0. then 1.
  else begin
    let sum = ref 0. in
    (try
       for j = 1 to 100 do
         let sign = if j land 1 = 1 then 1. else -1. in
         let term = sign *. exp (-2. *. float_of_int (j * j) *. lambda *. lambda) in
         sum := !sum +. term;
         if Float.abs term < 1e-12 then raise Exit
       done
     with Exit -> ());
    Float.max 0. (Float.min 1. (2. *. !sum))
  end

type ks = { d : float; p_value : float; n : int }

let sorted_copy samples =
  let xs = Array.copy samples in
  Array.sort Float.compare xs;
  xs

let ks_test ~cdf samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.ks_test: empty sample";
  let xs = sorted_copy samples in
  let fn = float_of_int n in
  let d = ref 0. in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      let above = (float_of_int (i + 1) /. fn) -. f in
      let below = f -. (float_of_int i /. fn) in
      d := Float.max !d (Float.max above below))
    xs;
  let sq = sqrt fn in
  (* Stephens' finite-n correction to the asymptotic law. *)
  let lambda = (sq +. 0.12 +. (0.11 /. sq)) *. !d in
  { d = !d; p_value = kolmogorov_sf lambda; n }

(* Asymptotic upper-tail table for the case-0 Anderson–Darling statistic
   (all parameters known): (significance, critical A²). *)
let ad_table =
  [| (0.25, 1.248); (0.15, 1.610); (0.10, 1.933); (0.05, 2.492); (0.025, 3.070); (0.01, 3.857); (0.005, 4.620) |]

let ad_critical ~significance =
  let s = Float.max 0.005 (Float.min 0.25 significance) in
  let n = Array.length ad_table in
  let rec find i =
    if i >= n - 1 then n - 2
    else
      let s_hi, _ = ad_table.(i) and s_lo, _ = ad_table.(i + 1) in
      if s <= s_hi && s >= s_lo then i else find (i + 1)
  in
  let i = find 0 in
  let s1, a1 = ad_table.(i) and s2, a2 = ad_table.(i + 1) in
  (* Linear in ln(significance) between table points. *)
  let w = (log s -. log s1) /. (log s2 -. log s1) in
  a1 +. (w *. (a2 -. a1))

let ad_p_value a2 =
  let n = Array.length ad_table in
  let _, a_min = ad_table.(0) and _, a_max = ad_table.(n - 1) in
  if a2 <= a_min then 0.25
  else if a2 >= a_max then 0.005
  else begin
    let i = ref 0 in
    while snd ad_table.(!i + 1) < a2 do
      incr i
    done;
    let s1, a_1 = ad_table.(!i) and s2, a_2 = ad_table.(!i + 1) in
    let w = (a2 -. a_1) /. (a_2 -. a_1) in
    exp (log s1 +. (w *. (log s2 -. log s1)))
  end

type ad = { a2 : float; p_value : float; n : int }

let ad_test ~cdf samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.ad_test: empty sample";
  let xs = sorted_copy samples in
  let fn = float_of_int n in
  (* Clamp the CDF away from {0, 1}: a single sample in the extreme tail
     must register as a large statistic, not a NaN. *)
  let u i = Float.max 1e-300 (Float.min (1. -. 1e-16) (cdf xs.(i))) in
  let s = ref 0. in
  for i = 0 to n - 1 do
    let w = float_of_int ((2 * (i + 1)) - 1) in
    s := !s +. (w *. (log (u i) +. log1p (-.u (n - 1 - i))))
  done;
  let a2 = -.fn -. (!s /. fn) in
  { a2; p_value = ad_p_value a2; n }

type chi2 = { stat : float; df : int; p_value : float; pooled_cells : int }

let chi2_test ~expected ~observed =
  let k = Array.length expected in
  if k = 0 || Array.length observed <> k then
    invalid_arg "Stats.chi2_test: expected/observed length mismatch";
  let total_w = Array.fold_left ( +. ) 0. expected in
  if not (total_w > 0.) then invalid_arg "Stats.chi2_test: all-zero expectation";
  let n = float_of_int (Array.fold_left ( + ) 0 observed) in
  if n <= 0. then invalid_arg "Stats.chi2_test: empty observation";
  (* Expected counts; pool the < 5 cells into one so the asymptotic
     chi-square approximation stays valid. *)
  let cells = ref [] in
  let pool_e = ref 0. and pool_o = ref 0 and pooled = ref 0 in
  for i = 0 to k - 1 do
    let e = expected.(i) /. total_w *. n in
    if e >= 5. then cells := (e, observed.(i)) :: !cells
    else begin
      pool_e := !pool_e +. e;
      pool_o := !pool_o + observed.(i);
      incr pooled
    end
  done;
  if !pooled > 0 && !pool_e > 0. then cells := (!pool_e, !pool_o) :: !cells;
  let cells = Array.of_list !cells in
  let m = Array.length cells in
  if m < 2 then
    (* Everything pooled into one cell: the test is vacuous. *)
    { stat = 0.; df = 1; p_value = 1.; pooled_cells = !pooled }
  else begin
    let stat =
      Array.fold_left
        (fun acc (e, o) ->
          let d = float_of_int o -. e in
          acc +. (d *. d /. e))
        0. cells
    in
    let df = m - 1 in
    { stat; df; p_value = chi2_sf ~df stat; pooled_cells = !pooled }
  end
