test/test_profile.ml: Float Format List Printf Privcluster String Testutil Workload
