(** Axis-aligned boxes from per-axis randomly shifted partitions.

    GoodCenter (Algorithm 2, step 4) partitions the projected space R^k into
    boxes [B_{j⃗}] whose projection on axis [i] is the [j_i]-th interval of
    that axis's partition.  Only non-empty boxes are ever materialized: a box
    is identified by its integer index vector, which doubles as the histogram
    key fed to {!Prim.Stability_hist}. *)

type t
(** A product of per-axis partitions over R^k. *)

type key = int array
(** Index vector [j⃗]; structural equality/hashing identifies boxes. *)

val make : Prim.Rng.t -> dim:int -> len:float -> t
(** Independent random phases on every axis, all intervals of length [len]. *)

val of_partitions : Interval.partition array -> t

val dim : t -> int
val side : t -> int -> float
(** Interval length on the given axis. *)

val key_of : t -> Vec.t -> key
(** Box containing a point. *)

val key_of_row : t -> float array -> off:int -> key
(** Box containing the row at [off] of a flat store (no boxed point is
    materialized). *)

val bounds : t -> key -> (float * float) array
(** Per-axis [(lo, hi)] of a box. *)

val center : t -> key -> Vec.t

val l2_diameter : t -> float
(** [√(Σ side²)] — the data-independent diameter used by the privacy
    analysis of the subsequent averaging step. *)

val occupancy : t -> Vec.t array -> (key * int) list
(** Non-empty boxes with their counts — the input to the stability
    histogram. *)

val max_occupancy : t -> Vec.t array -> int
(** [max_{j⃗} |S ∩ B_{j⃗}|] — the sensitivity-1 query [q(S)] that GoodCenter
    feeds AboveThreshold (step 5). *)

val occupancy_ps : t -> Pointset.t -> (key * int) list
(** {!occupancy} over a pointset's flat rows — same cells in the same
    order, without boxing any point.
    @raise Invalid_argument on dimension mismatch. *)

val max_occupancy_ps : t -> Pointset.t -> int
(** {!max_occupancy} over a pointset's flat rows. *)
