(* The JL transform (Lemma 4.10) and random orthonormal bases (Lemma 4.9). *)

open Testutil

let test_jl_shapes () =
  let r = rng () in
  let f = Geometry.Jl.make r ~input_dim:20 ~output_dim:5 in
  check_int "input dim" 20 (Geometry.Jl.input_dim f);
  check_int "output dim" 5 (Geometry.Jl.output_dim f);
  check_int "apply shape" 5 (Array.length (Geometry.Jl.apply f (Array.make 20 1.)));
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Jl.apply: dimension mismatch")
    (fun () -> ignore (Geometry.Jl.apply f (Array.make 3 1.)))

let test_jl_linear () =
  let r = rng () in
  let f = Geometry.Jl.make r ~input_dim:10 ~output_dim:4 in
  let a = Prim.Rng.gaussian_vector r ~dim:10 ~sigma:1.0 in
  let b = Prim.Rng.gaussian_vector r ~dim:10 ~sigma:1.0 in
  let lhs = Geometry.Jl.apply f (Geometry.Vec.add a b) in
  let rhs = Geometry.Vec.add (Geometry.Jl.apply f a) (Geometry.Jl.apply f b) in
  check_true "linearity" (Geometry.Vec.equal ~tol:1e-9 lhs rhs)

let test_jl_norm_preservation_in_expectation () =
  let r = rng () in
  let d = 40 in
  let v = Prim.Rng.gaussian_vector r ~dim:d ~sigma:1.0 in
  let norm2 = Geometry.Vec.norm2_sq v in
  (* Average over many independent transforms: E ||f(v)||² = ||v||². *)
  let trials = 300 in
  let acc = ref 0. in
  for _ = 1 to trials do
    let f = Geometry.Jl.make r ~input_dim:d ~output_dim:8 in
    acc := !acc +. Geometry.Vec.norm2_sq (Geometry.Jl.apply f v)
  done;
  check_float ~tol:(0.1 *. norm2) "unbiased squared norm" norm2 (!acc /. float_of_int trials)

let test_jl_distance_preservation_whp () =
  let r = rng () in
  let n = 30 and d = 100 in
  let points = Array.init n (fun _ -> Prim.Rng.gaussian_vector r ~dim:d ~sigma:1.0) in
  let eta = 0.5 and beta = 0.05 in
  let k = Geometry.Jl.target_dim ~n ~eta ~beta in
  let f = Geometry.Jl.make r ~input_dim:d ~output_dim:k in
  let proj = Geometry.Jl.apply_all f points in
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let o = Geometry.Vec.dist_sq points.(i) points.(j) in
      let p = Geometry.Vec.dist_sq proj.(i) proj.(j) in
      if p < (1. -. eta) *. o || p > (1. +. eta) *. o then ok := false
    done
  done;
  check_true "all pairs preserved at the lemma's k" !ok

let test_jl_dims_formulas () =
  check_int "target_dim formula"
    (int_of_float (Float.ceil (8. /. 0.25 *. log (2. *. 900. /. 0.1))))
    (Geometry.Jl.target_dim ~n:30 ~eta:0.5 ~beta:0.1);
  check_int "paper_dim formula"
    (int_of_float (Float.ceil (46. *. log (2. *. 100. /. 0.1))))
    (Geometry.Jl.paper_dim ~n:100 ~beta:0.1)

let test_rotation_orthonormal () =
  let r = rng () in
  let d = 12 in
  let rot = Geometry.Rotation.make r ~dim:d in
  for i = 0 to d - 1 do
    for j = i to d - 1 do
      let dot =
        Geometry.Vec.dot (Geometry.Rotation.basis_vector rot i) (Geometry.Rotation.basis_vector rot j)
      in
      if i = j then check_float ~tol:1e-9 "unit norm" 1.0 dot
      else check_float ~tol:1e-9 "orthogonal" 0.0 dot
    done
  done

let test_rotation_isometry () =
  let r = rng () in
  let rot = Geometry.Rotation.make r ~dim:9 in
  for _ = 1 to 50 do
    let v = Prim.Rng.gaussian_vector r ~dim:9 ~sigma:1.0 in
    let c = Geometry.Rotation.to_coords rot v in
    check_float ~tol:1e-9 "norm preserved" (Geometry.Vec.norm2 v) (Geometry.Vec.norm2 c);
    let back = Geometry.Rotation.from_coords rot c in
    check_true "round trip" (Geometry.Vec.equal ~tol:1e-9 v back)
  done

let test_rotation_identity () =
  let rot = Geometry.Rotation.identity ~dim:3 in
  let v = [| 1.; 2.; 3. |] in
  check_true "identity to_coords" (Geometry.Vec.equal v (Geometry.Rotation.to_coords rot v));
  check_float "project" 2. (Geometry.Rotation.project rot v 1)

let test_rotation_projection_lemma () =
  (* Lemma 4.9 statistically: projections of a fixed difference vector onto
     random basis vectors have magnitude ~ ||v||/sqrt(d). *)
  let r = rng () in
  let d = 64 in
  let v = Prim.Rng.gaussian_vector r ~dim:d ~sigma:1.0 in
  let norm = Geometry.Vec.norm2 v in
  let bound = Geometry.Rotation.projection_bound ~dim:d ~n_points:2 ~beta:0.05 in
  let violations = ref 0 in
  for _ = 1 to 50 do
    let rot = Geometry.Rotation.make r ~dim:d in
    for i = 0 to d - 1 do
      if Float.abs (Geometry.Rotation.project rot v i) > bound *. norm then incr violations
    done
  done;
  check_true "projection bound holds" (!violations <= 5)

let suite =
  [
    case "jl shapes" test_jl_shapes;
    case "jl linearity" test_jl_linear;
    case "jl unbiased norm" test_jl_norm_preservation_in_expectation;
    slow_case "jl distance preservation whp" test_jl_distance_preservation_whp;
    case "jl dimension formulas" test_jl_dims_formulas;
    case "rotation orthonormal" test_rotation_orthonormal;
    case "rotation isometry" test_rotation_isometry;
    case "rotation identity" test_rotation_identity;
    case "rotation projection lemma" test_rotation_projection_lemma;
  ]
