lib/geometry/interval.mli: Prim
