lib/geometry/rotation.mli: Prim Vec
