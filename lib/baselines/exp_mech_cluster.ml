type result = { center : Geometry.Vec.t; radius : float; candidates : int }

let candidate_count grid =
  let base = Geometry.Grid.axis_size grid in
  let rec go acc i =
    if i = 0 then acc
    else if acc > max_int / base then max_int
    else go (acc * base) (i - 1)
  in
  go 1 (Geometry.Grid.dim grid)

let max_candidates = 4_000_000

(* Enumerate all grid points of X^d. *)
let all_centers grid =
  let axis = Geometry.Grid.axis_size grid in
  let d = Geometry.Grid.dim grid in
  let h = Geometry.Grid.step grid in
  let total = candidate_count grid in
  Array.init total (fun idx ->
      let v = Array.make d 0. in
      let rec fill i idx =
        if i < d then begin
          v.(i) <- float_of_int (idx mod axis) *. h;
          fill (i + 1) (idx / axis)
        end
      in
      fill 0 idx;
      v)

let run rng ~grid ~eps ~t ps =
  if candidate_count grid > max_candidates then
    invalid_arg "Exp_mech_cluster.run: candidate set too large (that is the point of the paper)";
  if t < 1 || t > Geometry.Pointset.n ps then invalid_arg "Exp_mech_cluster.run: bad t";
  let centers = all_centers grid in
  (* A k-d tree turns each of the |X|^d per-center counts from O(n·d) into a
     range query — the difference between minutes and seconds at d = 2. *)
  let tree =
    Geometry.Kdtree.build_flat ~storage:(Geometry.Pointset.storage ps)
      ~offs:(Geometry.Pointset.row_offsets ps) ~dim:(Geometry.Pointset.dim ps) ()
  in
  let count_at r c = min t (Geometry.Kdtree.count_within tree ~center:c ~radius:r) in
  (* Radius search: max_c B̄_r(c) is a sensitivity-1, monotone score. *)
  let size = Geometry.Grid.radius_candidates grid in
  let best_count =
    Recconcave.Quality.create ~size ~f:(fun i ->
        let r = Geometry.Grid.radius_of_index grid i in
        float_of_int (Array.fold_left (fun acc c -> max acc (count_at r c)) 0 centers))
  in
  let slack =
    Recconcave.Monotone_search.accuracy_bound ~size ~eps:(eps /. 2.) ~sensitivity:1.0
      ~beta:0.1
  in
  let search =
    Recconcave.Monotone_search.solve rng ~eps:(eps /. 2.) ~sensitivity:1.0
      ~target:(float_of_int t -. slack)
      best_count
  in
  let radius = Geometry.Grid.radius_of_index grid search.Recconcave.Monotone_search.index in
  (* Center selection at the found radius. *)
  let qualities = Array.map (fun c -> float_of_int (count_at radius c)) centers in
  let chosen = Prim.Exp_mech.select rng ~eps:(eps /. 2.) ~sensitivity:1.0 ~qualities in
  { center = centers.(chosen); radius; candidates = Array.length centers }
