(* The end-to-end 1-cluster pipeline (Theorem 3.2). *)

open Testutil

let delta = 1e-6
let beta = 0.1

let test_end_to_end_planted () =
  let r, grid, w = small_workload ~seed:41 ~n:2500 ~axis:256 ~fraction:0.55 ~radius:0.05 () in
  let t = 1200 in
  match
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:4.0 ~delta ~beta ~t
      w.Workload.Synth.points
  with
  | Error f -> Alcotest.failf "pipeline failed: %a" Privcluster.One_cluster.pp_failure f
  | Ok result ->
      let ps = Geometry.Pointset.create w.Workload.Synth.points in
      let covered =
        Geometry.Pointset.ball_count ps ~center:result.Privcluster.One_cluster.center
          ~radius:result.Privcluster.One_cluster.radius
      in
      check_true
        (Printf.sprintf "covers t - certified (%d vs %d - %.0f)" covered t
           result.Privcluster.One_cluster.delta_bound)
        (float_of_int covered >= float_of_int t -. result.Privcluster.One_cluster.delta_bound);
      check_true "center near planted"
        (Geometry.Vec.dist result.Privcluster.One_cluster.center w.Workload.Synth.cluster_center
        < 0.25);
      check_true "center stage present" (result.Privcluster.One_cluster.center_stage <> None);
      check_int "t recorded" t result.Privcluster.One_cluster.t_requested;
      (* Clamping: the center must lie in the unit cube. *)
      Array.iter
        (fun c -> check_in_range "center clamped" ~lo:0. ~hi:1. c)
        result.Privcluster.One_cluster.center

let test_zero_path () =
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:2 in
  let r = rng ~seed:43 () in
  let heavy = Geometry.Grid.snap grid [| 0.25; 0.75 |] in
  let points =
    Array.init 700 (fun i -> if i < 600 then heavy else Geometry.Grid.random_point grid r)
  in
  match
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:2.0 ~delta ~beta
      ~t:500 points
  with
  | Error f -> Alcotest.failf "zero path failed: %a" Privcluster.One_cluster.pp_failure f
  | Ok result ->
      check_float "radius 0" 0. result.Privcluster.One_cluster.radius;
      check_true "no center stage" (result.Privcluster.One_cluster.center_stage = None);
      check_true "found the heavy point"
        (Geometry.Vec.equal ~tol:1e-9 result.Privcluster.One_cluster.center heavy)

let test_run_indexed_consistent () =
  let r1 = rng ~seed:77 () and r2 = rng ~seed:77 () in
  let grid = Geometry.Grid.create ~axis_size:128 ~dim:2 in
  let w =
    Workload.Synth.planted_ball (rng ~seed:1 ()) ~grid ~n:600 ~cluster_fraction:0.6
      ~cluster_radius:0.05
  in
  let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Workload.Synth.points) in
  let a =
    Privcluster.One_cluster.run r1 Privcluster.Profile.practical ~grid ~eps:4.0 ~delta ~beta
      ~t:300 w.Workload.Synth.points
  in
  let b =
    Privcluster.One_cluster.run_indexed r2 Privcluster.Profile.practical ~grid ~eps:4.0 ~delta
      ~beta ~t:300 idx
  in
  match (a, b) with
  | Ok ra, Ok rb ->
      (* Same seed, same data: identical results. *)
      check_true "same center"
        (Geometry.Vec.equal ~tol:1e-12 ra.Privcluster.One_cluster.center
           rb.Privcluster.One_cluster.center);
      check_float "same radius" ra.Privcluster.One_cluster.radius rb.Privcluster.One_cluster.radius
  | _ -> Alcotest.fail "one of the runs failed"

let test_recommended_min_t () =
  let grid2 = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let m eps =
    Privcluster.One_cluster.recommended_min_t Privcluster.Profile.practical ~grid:grid2 ~eps
      ~delta ~beta ~n:3000
  in
  check_true "positive" (m 2.0 > 0.);
  check_true "decreasing in eps" (m 4.0 < m 1.0)

let test_budget_breakdown () =
  let eps = 2.0 and delta_total = 1e-6 in
  List.iter
    (fun d ->
      let charges =
        Privcluster.One_cluster.budget_breakdown Privcluster.Profile.practical ~eps
          ~delta:delta_total ~d
      in
      check_int "six ledger rows" 6 (List.length charges);
      let total = Prim.Composition.basic_list (List.map snd charges) in
      (* Summing the ledger under basic composition stays within (ε, δ). *)
      check_true
        (Printf.sprintf "total eps %.3f within budget" (Prim.Dp.eps total))
        (Prim.Dp.eps total <= eps +. 1e-9);
      check_true "total delta within budget" (Prim.Dp.delta total <= delta_total +. 1e-12);
      (* The axis row's advanced-composition total respects Lemma 4.11's
         ε_c/4 allotment. *)
      let _, axes = List.nth charges 4 in
      check_true "axes within eps_c/4" (Prim.Dp.eps axes <= (eps /. 2. /. 4.) +. 1e-9))
    [ 1; 2; 8; 64 ]

let test_failure_reported () =
  let r = rng ~seed:9 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let points = Workload.Synth.uniform r ~grid ~n:300 in
  (* Demand an impossibly tight cluster: either the radius stage returns a
     big (harmless) radius or the center stage fails; both must be reported
     without raising. *)
  match
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:1.0 ~delta ~beta
      ~t:290 points
  with
  | Error f ->
      let s = Format.asprintf "%a" Privcluster.One_cluster.pp_failure f in
      check_true "failure printable" (String.length s > 0)
  | Ok result -> check_true "radius positive" (result.Privcluster.One_cluster.radius >= 0.)

let suite =
  [
    slow_case "end-to-end planted workload" test_end_to_end_planted;
    case "radius-zero path" test_zero_path;
    case "run vs run_indexed" test_run_indexed_consistent;
    case "recommended_min_t" test_recommended_min_t;
    case "budget breakdown" test_budget_breakdown;
    case "failures reported, not raised" test_failure_reported;
  ]
