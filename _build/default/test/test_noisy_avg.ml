(* Algorithm 5 — NoisyAVG. *)

open Testutil

let vectors_around center spread n r =
  Array.init n (fun _ ->
      Array.map (fun c -> c +. Prim.Rng.uniform r ~lo:(-.spread) ~hi:spread) center)

let test_average_close_on_large_set () =
  let r = rng () in
  let center = [| 0.5; -0.25; 1.0 |] in
  let vs = vectors_around center 0.05 5000 r in
  match
    Prim.Noisy_avg.run r ~eps:1.0 ~delta:1e-6 ~diameter:0.4 ~pred:(fun _ -> true) ~dim:3 vs
  with
  | Prim.Noisy_avg.Bottom -> Alcotest.fail "unexpected bottom on 5000 vectors"
  | Prim.Noisy_avg.Average a ->
      check_true "m_hat near true count"
        (Float.abs (a.Prim.Noisy_avg.m_hat -. 5000.) < 100.);
      check_true "sigma small" (a.Prim.Noisy_avg.sigma < 0.01);
      Array.iteri
        (fun i c -> check_float ~tol:0.05 (Printf.sprintf "coord %d" i) c a.Prim.Noisy_avg.average.(i))
        center

let test_bottom_on_empty_selection () =
  let r = rng () in
  let vs = vectors_around [| 0.; 0. |] 0.1 100 r in
  let bottoms = ref 0 in
  for _ = 1 to 50 do
    match
      Prim.Noisy_avg.run r ~eps:1.0 ~delta:1e-6 ~diameter:1.0 ~pred:(fun _ -> false) ~dim:2 vs
    with
    | Prim.Noisy_avg.Bottom -> incr bottoms
    | Prim.Noisy_avg.Average _ -> ()
  done;
  (* Noisy count = 0 + Lap(2) − 2·ln(2e6) < 0 except with tiny probability. *)
  check_int "empty selection is bottom" 50 !bottoms

let test_predicate_filters () =
  let r = rng () in
  let vs =
    Array.append (vectors_around [| 0.1 |] 0.02 2000 r) (vectors_around [| 0.9 |] 0.02 2000 r)
  in
  match
    Prim.Noisy_avg.run r ~eps:1.0 ~delta:1e-6 ~diameter:0.2 ~pred:(fun v -> v.(0) < 0.5) ~dim:1 vs
  with
  | Prim.Noisy_avg.Bottom -> Alcotest.fail "unexpected bottom"
  | Prim.Noisy_avg.Average a -> check_float ~tol:0.05 "only left mode averaged" 0.1 a.Prim.Noisy_avg.average.(0)

let test_sigma_scales_with_diameter_over_count () =
  let r = rng () in
  let vs = vectors_around [| 0.5 |] 0.01 4000 r in
  let run diameter =
    match Prim.Noisy_avg.run r ~eps:1.0 ~delta:1e-6 ~diameter ~pred:(fun _ -> true) ~dim:1 vs with
    | Prim.Noisy_avg.Average a -> a.Prim.Noisy_avg.sigma
    | Prim.Noisy_avg.Bottom -> Alcotest.fail "bottom"
  in
  let s1 = run 0.1 and s2 = run 0.4 in
  check_true "sigma grows ~linearly with diameter" (s2 > 3. *. s1 && s2 < 5. *. s1)

let test_expected_sigma_formula () =
  check_float ~tol:1e-9 "observation A.1 sigma"
    (16. *. 2. /. (0.5 *. 100.) *. sqrt (2. *. log (8. /. 1e-6)))
    (Prim.Noisy_avg.expected_sigma ~eps:0.5 ~delta:1e-6 ~diameter:2. ~m:100)

let test_validation () =
  let r = rng () in
  Alcotest.check_raises "bad delta" (Invalid_argument "Noisy_avg.run: delta must be in (0, 1)")
    (fun () ->
      ignore
        (Prim.Noisy_avg.run r ~eps:1.0 ~delta:0. ~diameter:1.0 ~pred:(fun _ -> true) ~dim:1 [||]))

let suite =
  [
    case "average close on large set" test_average_close_on_large_set;
    case "bottom on empty selection" test_bottom_on_empty_selection;
    case "predicate filters" test_predicate_filters;
    case "sigma scales with diameter" test_sigma_scales_with_diameter_over_count;
    case "expected sigma formula" test_expected_sigma_formula;
    case "validation" test_validation;
  ]
