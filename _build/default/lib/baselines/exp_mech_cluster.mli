(** Table 1, row 2 — the exponential-mechanism 1-cluster solver (§1.2).

    Enumerate every grid point of [X^d] as a candidate center; find a good
    radius by private (noisy) binary search over the candidate radii using
    the sensitivity-1 score [max_c B̄_r(c)], then select a center with the
    exponential mechanism weighted by the ball counts at that radius.

    Qualities of this method, which experiment E1 confirms empirically:
    radius approximation [w = 1] (the best of any method), cluster loss
    [Δ = Õ(d·log|X|)/ε], but running time [poly(|X|^d)] — the candidate
    enumeration explodes with dimension, which is exactly why the paper's
    algorithm exists.  {!candidate_count} guards against accidental blowup. *)

type result = {
  center : Geometry.Vec.t;
  radius : float;
  candidates : int;  (** Number of enumerated centers ([|X|^d]). *)
}

val candidate_count : Geometry.Grid.t -> int
(** [|X|^d] (saturating at [max_int]). *)

val max_candidates : int
(** Refuse to enumerate more than this many centers (4 million). *)

val run :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  t:int ->
  Geometry.Pointset.t ->
  result
(** [(ε, 0)]-DP: ε/2 on the radius search, ε/2 on the center selection.
    @raise Invalid_argument when [candidate_count > max_candidates]. *)
