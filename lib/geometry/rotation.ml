(* The orthonormal basis is stored flat (dim × dim, row-major); row [i] is
   basis vector z_i.  Gram–Schmidt runs on a boxed scratch vector drawn
   with the historical RNG sequence and identical accumulation order, so
   the basis — and every projection through it — is bit-identical to the
   old [Vec.t array] representation. *)

type t = { basis : float array; d : int }

(* Gram–Schmidt on iid Gaussian vectors; re-draws a vector on the
   (probability-zero) event that it is linearly dependent on its
   predecessors. *)
let make rng ~dim =
  if dim <= 0 then invalid_arg "Rotation.make: dim must be positive";
  let basis = Array.make (dim * dim) 0. in
  let rec draw i =
    let v = Prim.Rng.gaussian_vector rng ~dim ~sigma:1.0 in
    for j = 0 to i - 1 do
      let off = j * dim in
      Vec.axpy_row (-.Vec.dot_row basis ~off ~dim v) basis ~off ~dim v
    done;
    let norm = Vec.norm2 v in
    if norm < 1e-10 then draw i else Vec.scale (1. /. norm) v
  in
  for i = 0 to dim - 1 do
    Vec.set_row basis ~off:(i * dim) (draw i)
  done;
  { basis; d = dim }

let identity ~dim =
  if dim <= 0 then invalid_arg "Rotation.identity: dim must be positive";
  let basis = Array.make (dim * dim) 0. in
  for i = 0 to dim - 1 do
    basis.((i * dim) + i) <- 1.
  done;
  { basis; d = dim }

let dim t = t.d
let basis_vector t i = Vec.of_row t.basis ~off:(i * t.d) ~dim:t.d
let project t v i = Vec.dot_row t.basis ~off:(i * t.d) ~dim:t.d v
let project_row t st ~off i = Vec.dot_rows t.basis (i * t.d) st off ~dim:t.d
let to_coords t v = Array.init t.d (fun i -> project t v i)

let from_coords t c =
  if Array.length c <> t.d then invalid_arg "Rotation.from_coords: dimension mismatch";
  let acc = Vec.zero t.d in
  Array.iteri (fun i ci -> Vec.axpy_row ci t.basis ~off:(i * t.d) ~dim:t.d acc) c;
  acc

let projection_bound ~dim ~n_points ~beta =
  if dim <= 0 || n_points <= 0 then invalid_arg "Rotation.projection_bound: positive args";
  if not (beta > 0. && beta < 1.) then invalid_arg "Rotation.projection_bound: beta in (0, 1)";
  let d = float_of_int dim in
  2. *. sqrt (log (d *. float_of_int n_points /. beta) /. d)
