(* Robustness and degenerate-input behaviour across the stack: tiny inputs,
   all-identical points, extreme parameters, and non-promised inputs.  The
   contract under stress is "fail loudly or degrade gracefully" — never a
   crash, never silent nonsense. *)

open Testutil

let delta = 1e-6
let beta = 0.1

let test_one_cluster_tiny_input () =
  let grid = Geometry.Grid.create ~axis_size:16 ~dim:1 in
  let r = rng () in
  (* Nine points is near the bare minimum; the run must terminate with a
     typed outcome either way. *)
  let points = Array.init 9 (fun i -> [| float_of_int i /. 15. |]) in
  match
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:1.0 ~delta ~beta
      ~t:5 points
  with
  | Ok result -> check_true "radius finite" (Float.is_finite result.Privcluster.One_cluster.radius)
  | Error _ -> ()

let test_one_cluster_all_identical () =
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:3 in
  let r = rng () in
  let p = Geometry.Grid.snap grid [| 0.4; 0.4; 0.4 |] in
  let points = Array.make 400 p in
  match
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:2.0 ~delta ~beta
      ~t:300 points
  with
  | Ok result ->
      check_float "radius 0 on identical data" 0. result.Privcluster.One_cluster.radius;
      check_true "center is the point" (Geometry.Vec.equal result.Privcluster.One_cluster.center p)
  | Error f -> Alcotest.failf "identical data should be easy: %a" Privcluster.One_cluster.pp_failure f

let test_one_cluster_t_equals_n () =
  let r, grid, w = small_workload ~n:400 ~fraction:1.0 ~radius:0.08 () in
  match
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:4.0 ~delta ~beta
      ~t:400 w.Workload.Synth.points
  with
  | Ok result ->
      check_true "radius covers something" (result.Privcluster.One_cluster.radius >= 0.)
  | Error _ -> ()

let test_good_radius_t_one () =
  let r, grid, w = small_workload ~n:200 () in
  let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Workload.Synth.points) in
  let result =
    Privcluster.Good_radius.run r Privcluster.Profile.practical ~grid ~eps:2.0 ~delta ~beta ~t:1
      idx
  in
  (* t = 1: every single point is a radius-0 cluster; the zero shortcut or a
     tiny radius are both correct. *)
  check_true "t=1 yields a small radius"
    (result.Privcluster.Good_radius.radius <= Geometry.Grid.diameter grid)

let test_rec_concave_non_quasi_concave_terminates () =
  (* The promise can be violated by callers; the algorithm must still
     terminate and return a valid index (no guarantee on quality). *)
  let r = rng () in
  let a = Array.init 5000 (fun i -> if i mod 97 = 0 then 100. else float_of_int (i mod 7)) in
  let report = Recconcave.Rec_concave.solve r ~eps:1.0 (Recconcave.Quality.of_array a) in
  check_in_range "valid index" ~lo:0. ~hi:4999. (float_of_int report.Recconcave.Rec_concave.chosen)

let test_monotone_search_on_constant () =
  let r = rng () in
  let a = Array.make 1000 5. in
  let res =
    Recconcave.Monotone_search.solve r ~eps:2.0 ~sensitivity:1.0 ~target:5.
      (Recconcave.Quality.of_array a)
  in
  check_in_range "some index" ~lo:0. ~hi:999. (float_of_int res.Recconcave.Monotone_search.index)

let test_extreme_epsilon () =
  let r, grid, w = small_workload ~n:400 ~fraction:0.6 () in
  (* Absurdly small ε: the pipeline must still terminate (utility is gone,
     the certified Δ says so). *)
  match
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:0.001 ~delta ~beta
      ~t:200 w.Workload.Synth.points
  with
  | Ok result ->
      check_true "certified loss is honest (huge)"
        (result.Privcluster.One_cluster.delta_bound > 1000.)
  | Error _ -> ()

let test_huge_epsilon_recovers_truth () =
  let r, grid, w = small_workload ~seed:15 ~n:800 ~fraction:0.6 ~radius:0.05 () in
  match
    Privcluster.One_cluster.run r Privcluster.Profile.practical ~grid ~eps:100.0 ~delta ~beta
      ~t:400 w.Workload.Synth.points
  with
  | Ok result ->
      check_true "near-noiseless run is accurate"
        (Geometry.Vec.dist result.Privcluster.One_cluster.center w.Workload.Synth.cluster_center
        < 0.1)
  | Error f -> Alcotest.failf "huge eps should not fail: %a" Privcluster.One_cluster.pp_failure f

let test_stability_hist_empty () =
  let r = rng () in
  check_true "empty cell list yields None"
    (Prim.Stability_hist.select r ~eps:1.0 ~delta:1e-6 ([] : (int * int) list) = None);
  check_true "empty data count_by" (Prim.Stability_hist.count_by ~key:(fun x -> x) [||] = [])

let test_kdtree_single_point () =
  let tree = Geometry.Kdtree.build [| [| 0.5; 0.5 |] |] in
  check_int "count self" 1 (Geometry.Kdtree.count_within tree ~center:[| 0.5; 0.5 |] ~radius:0.);
  let p, d = Geometry.Kdtree.nearest tree [| 0.; 0. |] in
  check_true "nearest is the point" (Geometry.Vec.equal p [| 0.5; 0.5 |]);
  check_float ~tol:1e-9 "distance" (sqrt 0.5) d

let test_threshold_release_uniform_vs_empty_range () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:128 ~dim:1 in
  let tree = Baselines.Threshold_release.release r ~grid ~eps:4.0 (Array.make 1000 0.25) in
  let at_mass = Baselines.Threshold_release.range_count tree ~lo:0.2 ~hi:0.3 in
  let away = Baselines.Threshold_release.range_count tree ~lo:0.7 ~hi:0.8 in
  check_true "mass where the data is" (at_mass > 900.);
  check_true "little mass elsewhere" (Float.abs away < 100.);
  check_float "inverted range" 0. (Baselines.Threshold_release.range_count tree ~lo:0.9 ~hi:0.1)

let test_grid_min_axis () =
  let g = Geometry.Grid.create ~axis_size:2 ~dim:1 in
  check_float "step 1" 1.0 (Geometry.Grid.step g);
  check_true "two candidates at least" (Geometry.Grid.radius_candidates g >= 2);
  check_true "geometric covers" (Geometry.Grid.geometric_candidates g >= 2)

let test_sample_aggregate_constant_f () =
  (* A constant analysis is perfectly stable: SA must find its value. *)
  let r = rng ~seed:19 () in
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:1 in
  let point = Geometry.Grid.snap grid [| 0.7 |] in
  match
    Privcluster.Sample_aggregate.run r Privcluster.Profile.practical ~grid ~eps:2.0 ~delta ~beta
      ~m:5 ~alpha:0.9
      ~f:(fun _ -> point)
      (Array.make 20_000 0)
  with
  | Ok result ->
      check_true "zero-radius stable point"
        (Geometry.Vec.dist result.Privcluster.Sample_aggregate.stable_point point < 0.05)
  | Error f -> Alcotest.failf "constant f should be trivial: %a" Privcluster.One_cluster.pp_failure f

let suite =
  [
    case "one-cluster on tiny input" test_one_cluster_tiny_input;
    case "one-cluster on identical points" test_one_cluster_all_identical;
    case "one-cluster with t = n" test_one_cluster_t_equals_n;
    case "good-radius with t = 1" test_good_radius_t_one;
    case "rec-concave without the promise" test_rec_concave_non_quasi_concave_terminates;
    case "monotone search on a constant" test_monotone_search_on_constant;
    case "extreme small epsilon" test_extreme_epsilon;
    case "huge epsilon recovers truth" test_huge_epsilon_recovers_truth;
    case "stability hist on empty input" test_stability_hist_empty;
    case "kdtree single point" test_kdtree_single_point;
    case "threshold release ranges" test_threshold_release_uniform_vs_empty_range;
    case "grid minimum axis" test_grid_min_axis;
    slow_case "sample-aggregate constant analysis" test_sample_aggregate_constant_f;
  ]
