lib/prim/noisy_avg.mli: Rng
