lib/core/sample_aggregate.mli: Geometry One_cluster Prim Profile Stdlib
