(* Profiles and the experiment-suite plumbing. *)

open Testutil

let test_presets () =
  let p = Privcluster.Profile.paper and q = Privcluster.Profile.practical in
  check_true "paper uses linear grid" (p.Privcluster.Profile.radius_grid = Privcluster.Profile.Linear);
  check_true "practical uses geometric grid"
    (q.Privcluster.Profile.radius_grid = Privcluster.Profile.Geometric);
  check_float "paper JL constant" 46. p.Privcluster.Profile.jl_constant;
  check_float "paper box side" 300. p.Privcluster.Profile.box_side_factor;
  check_true "paper uncapped rounds" (p.Privcluster.Profile.max_rounds = None);
  check_true "practical capped rounds" (q.Privcluster.Profile.max_rounds <> None)

let test_jl_dim () =
  let n = 1000 and beta = 0.1 in
  let paper_k = Privcluster.Profile.jl_dim Privcluster.Profile.paper ~n ~d:4 ~beta in
  check_int "paper k = ceil(46 ln(2n/b))"
    (int_of_float (Float.ceil (46. *. log (2. *. 1000. /. 0.1))))
    paper_k;
  check_int "practical caps at d" 4
    (Privcluster.Profile.jl_dim Privcluster.Profile.practical ~n ~d:4 ~beta);
  check_true "practical uncapped when d large"
    (Privcluster.Profile.jl_dim Privcluster.Profile.practical ~n ~d:500 ~beta < 500)

let test_axis_factor_relation () =
  (* The 900 = 3 × 300 slack relation of the rotated-frame analysis. *)
  check_float "paper 3x" 900. (Privcluster.Profile.axis_interval_factor Privcluster.Profile.paper);
  check_float "practical 3x"
    (3. *. Privcluster.Profile.practical.Privcluster.Profile.box_side_factor)
    (Privcluster.Profile.axis_interval_factor Privcluster.Profile.practical)

let test_rounds () =
  let capped = Privcluster.Profile.rounds Privcluster.Profile.practical ~n:1000 ~beta:0.1 in
  check_int "practical cap" 200 capped;
  let paper = Privcluster.Profile.rounds Privcluster.Profile.paper ~n:1000 ~beta:0.1 in
  (* 2n·ln(1/β)/β = 2000·2.30/0.1 ≈ 46052. *)
  check_in_range "paper formula" ~lo:46000. ~hi:46100. (float_of_int paper);
  check_int "paper absolute ceiling" 1_000_000
    (Privcluster.Profile.rounds Privcluster.Profile.paper ~n:10_000_000 ~beta:0.001)

let test_pp () =
  let s = Format.asprintf "%a" Privcluster.Profile.pp Privcluster.Profile.practical in
  check_true "mentions backend" (String.length s > 20)

(* --- Experiments plumbing --- *)

let test_experiment_registry () =
  check_int "fourteen experiments" 14 (List.length Workload.Experiments.all);
  let ids = List.map (fun (id, _, _) -> id) Workload.Experiments.all in
  List.iteri
    (fun i id -> check_true "ids are E1..E14 in order" (id = Printf.sprintf "E%d" (i + 1)))
    ids

let test_experiment_smoke () =
  (* The cheapest experiment must run end to end in quick mode. *)
  let cfg = { Workload.Experiments.quick = true; seed = 123 } in
  Workload.Experiments.e11_geometry_tails cfg;
  Workload.Experiments.run ~only:[ "E11" ] cfg

let suite =
  [
    case "presets" test_presets;
    case "jl dimension" test_jl_dim;
    case "axis factor relation" test_axis_factor_relation;
    case "rounds" test_rounds;
    case "pp" test_pp;
    case "experiment registry" test_experiment_registry;
    slow_case "experiment smoke (E11)" test_experiment_smoke;
  ]
