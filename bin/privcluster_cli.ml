(* privcluster-cli — run the solvers and the experiment suite from the
   command line.

     privcluster-cli solve --n 3000 --dim 2 --frac 0.5 --eps 2
     privcluster-cli batch jobs.txt --budget-eps 4 --jobs 4 --json -
     privcluster-cli experiments --only E1,E4 --quick
     privcluster-cli params --dim 4 --axis 256 --eps 2
     privcluster-cli outliers --n 3000 --outlier-frac 0.1
     privcluster-cli interior-point --m 4000 *)

open Cmdliner

let delta_default = Workload.Harness.default_delta
let beta_default = Workload.Harness.default_beta

(* Logging ------------------------------------------------------------ *)

(* [-v] / [--log-level] (env PRIVCLUSTER_LOG) select the level for the
   ["privcluster.engine"] log source; the reporter serialises concurrent
   worker-domain writes behind one mutex so lines never interleave. *)

let setup_logs =
  let setup verbose level_s =
    let level =
      match level_s with
      | Some s -> (
          match Logs.level_of_string s with
          | Ok l -> l
          | Error (`Msg m) ->
              prerr_endline ("privcluster-cli: --log-level: " ^ m);
              exit 2)
      | None -> (
          match List.length verbose with
          | 0 -> Some Logs.Warning
          | 1 -> Some Logs.Info
          | _ -> Some Logs.Debug)
    in
    Logs.set_level level;
    let m = Mutex.create () in
    Logs.set_reporter_mutex ~lock:(fun () -> Mutex.lock m) ~unlock:(fun () -> Mutex.unlock m);
    Logs.set_reporter (Logs.format_reporter ())
  in
  let verbose =
    Arg.(
      value & flag_all
      & info [ "v"; "verbose" ] ~doc:"Increase log verbosity (repeatable: info, then debug).")
  in
  let level =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-level" ]
          ~env:(Cmd.Env.info "PRIVCLUSTER_LOG")
          ~docv:"LEVEL"
          ~doc:"Log level: quiet, error, warning, info or debug. Overrides $(b,-v).")
  in
  Term.(const setup $ verbose $ level)

(* Tracing ------------------------------------------------------------ *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable span collection and write a Chrome trace-event JSON to $(docv) (load it in \
           Perfetto or chrome://tracing).")

let enable_trace trace = if trace <> None then Obs.Span.set_enabled true

let write_trace trace =
  match trace with
  | None -> ()
  | Some file ->
      let json = Obs.Trace.to_string (Obs.Span.spans ()) ^ "\n" in
      if file = "-" then print_string json
      else begin
        Out_channel.with_open_text file (fun oc -> Out_channel.output_string oc json);
        Workload.Report.kv "trace" (Printf.sprintf "%s (%d spans)" file (Obs.Span.count ()))
      end

(* Shared options. *)
let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"RNG seed.")
let eps = Arg.(value & opt float 2.0 & info [ "eps" ] ~doc:"Privacy parameter ε.")
let delta = Arg.(value & opt float delta_default & info [ "delta" ] ~doc:"Privacy parameter δ.")
let beta = Arg.(value & opt float beta_default & info [ "beta" ] ~doc:"Failure probability β.")
let dim = Arg.(value & opt int 2 & info [ "dim"; "d" ] ~doc:"Dimension d.")
let axis = Arg.(value & opt int 256 & info [ "axis" ] ~doc:"Axis size |X| of the grid domain.")
let n = Arg.(value & opt int 3000 & info [ "n"; "points" ] ~doc:"Number of points.")

let profile_conv =
  let parse = function
    | "paper" -> Ok Privcluster.Profile.paper
    | "practical" -> Ok Privcluster.Profile.practical
    | s -> Error (`Msg (Printf.sprintf "unknown profile %S (expected paper|practical)" s))
  in
  Arg.conv (parse, fun ppf p -> Privcluster.Profile.pp ppf p)

let profile =
  Arg.(
    value
    & opt profile_conv Privcluster.Profile.practical
    & info [ "profile" ] ~doc:"Constant profile: paper or practical.")

(* solve ------------------------------------------------------------- *)

let solve_cmd =
  let run () seed eps delta beta dim axis n frac radius profile trace =
    enable_trace trace;
    let rng = Prim.Rng.create ~seed () in
    let grid = Geometry.Grid.create ~axis_size:axis ~dim in
    let w = Workload.Synth.planted_ball rng ~grid ~n ~cluster_fraction:frac ~cluster_radius:radius in
    let t = int_of_float (0.9 *. float_of_int w.Workload.Synth.cluster_size) in
    Workload.Report.headline "1-cluster solve on a planted workload";
    Workload.Report.kv "profile" (Format.asprintf "%a" Privcluster.Profile.pp profile);
    Workload.Report.kv "n / d / |X|" (Printf.sprintf "%d / %d / %d" n dim axis);
    Workload.Report.kv "planted" (Printf.sprintf "%d points in radius %.4f" w.Workload.Synth.cluster_size w.Workload.Synth.cluster_radius);
    Workload.Report.kv "target t" (string_of_int t);
    Workload.Report.kv "privacy" (Printf.sprintf "(%.2f, %g)-DP, beta=%.2f" eps delta beta);
    let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Workload.Synth.points) in
    let _, r_hi = Workload.Metrics.r_opt_bounds_indexed idx ~t in
    let r_hi = Float.min r_hi w.Workload.Synth.cluster_radius in
    let score, result =
      Workload.Harness.run_one_cluster rng profile ~grid ~eps ~delta ~beta ~t ~r_hi idx
    in
    (match result with
    | None -> Workload.Report.kv "outcome" ("FAILED: " ^ Option.value ~default:"?" score.Workload.Harness.failure)
    | Some r ->
        Workload.Report.kv "center distance to truth"
          (Workload.Report.f3 (Geometry.Vec.dist r.Privcluster.One_cluster.center w.Workload.Synth.cluster_center));
        Workload.Report.kv "private radius"
          (Printf.sprintf "%s (w = %s x r_opt)" (Workload.Report.f3 r.Privcluster.One_cluster.radius)
             (Workload.Report.f2 score.Workload.Harness.w_private));
        Workload.Report.kv "tight radius around center"
          (Printf.sprintf "w = %s x r_opt" (Workload.Report.f2 score.Workload.Harness.w_tight));
        Workload.Report.kv "covered / t" (Printf.sprintf "%d / %d" score.Workload.Harness.covered t);
        Workload.Report.kv "certified delta bound" (Workload.Report.f2 r.Privcluster.One_cluster.delta_bound));
    Workload.Report.kv "time" (Printf.sprintf "%.0f ms" score.Workload.Harness.time_ms);
    write_trace trace
  in
  let frac = Arg.(value & opt float 0.5 & info [ "frac" ] ~doc:"Planted cluster fraction.") in
  let radius = Arg.(value & opt float 0.05 & info [ "radius" ] ~doc:"Planted cluster radius.") in
  Cmd.v (Cmd.info "solve" ~doc:"Run the 1-cluster solver on a planted synthetic workload")
    Term.(
      const run $ setup_logs $ seed $ eps $ delta $ beta $ dim $ axis $ n $ frac $ radius $ profile
      $ trace_arg)

(* batch -------------------------------------------------------------- *)

(* Run a jobs file against one registered dataset through the concurrent
   query engine: per-dataset (ε, δ) budget, over-budget jobs refused, the
   rest fanned out over [--jobs] worker domains, results deterministic in
   the seed no matter the domain count. *)

let batch_cmd =
  let run () seed dim axis n frac radius profile jobs_file points_file budget_eps budget_delta
      mode_s slack jobs retries faults_s json_out trace metrics_out =
    enable_trace trace;
    let die fmt = Printf.ksprintf (fun m -> prerr_endline ("batch: " ^ m); exit 2) fmt in
    let mode =
      match Engine.Accountant.mode_of_string ~slack mode_s with Ok m -> m | Error e -> die "%s" e
    in
    let faults =
      match faults_s with
      | Some s -> (
          match Engine.Faults.parse s with Ok f -> f | Error e -> die "--faults: %s" e)
      | None -> ( try Engine.Faults.of_env () with Invalid_argument m -> die "%s" m)
    in
    let contents =
      try In_channel.with_open_text jobs_file In_channel.input_all
      with Sys_error e -> die "%s" e
    in
    let specs =
      match Engine.Job.parse ~default_beta:beta_default contents with
      | Ok [] -> die "%s: no jobs" jobs_file
      | Ok specs -> specs
      | Error e -> die "%s: %s" jobs_file e
    in
    let grid, points, source =
      match points_file with
      | Some file ->
          let rows =
            try
              In_channel.with_open_text file In_channel.input_lines
              |> List.mapi (fun i line -> (i + 1, line))
              |> List.filter_map (fun (lineno, line) ->
                     match String.trim line with
                     | "" -> None
                     | line ->
                         Some
                           ( lineno,
                             String.split_on_char ' ' line
                             |> List.concat_map (String.split_on_char '\t')
                             |> List.filter (fun t -> t <> "")
                             |> List.map (fun t ->
                                    match float_of_string_opt t with
                                    | Some f -> f
                                    | None -> die "%s: line %d: not a number: %S" file lineno t)
                             |> Array.of_list ))
            with Sys_error e -> die "%s" e
          in
          (match rows with
          | [] -> die "%s: no points" file
          | (_, first) :: _ ->
              let dim = Array.length first in
              List.iter
                (fun (lineno, row) ->
                  if Array.length row <> dim then
                    die "%s: line %d: expected %d coordinates, got %d" file lineno dim
                      (Array.length row))
                rows;
              let grid = Geometry.Grid.create ~axis_size:axis ~dim in
              ( grid,
                Array.of_list (List.map (fun (_, row) -> Geometry.Grid.snap grid row) rows),
                "file " ^ file ))
      | None ->
          let rng = Prim.Rng.create ~seed:(seed + 7919) () in
          let grid = Geometry.Grid.create ~axis_size:axis ~dim in
          let w =
            Workload.Synth.planted_ball rng ~grid ~n ~cluster_fraction:frac ~cluster_radius:radius
          in
          ( grid,
            w.Workload.Synth.points,
            Printf.sprintf "synthetic planted ball (n=%d frac=%g radius=%g)" n frac radius )
    in
    let service = Engine.Service.create ~profile ~domains:jobs ~seed ~retries ~faults () in
    let dataset =
      Engine.Service.register service ~name:"default" ~grid ~mode
        ~budget:(Prim.Dp.v ~eps:budget_eps ~delta:budget_delta)
        points
    in
    Workload.Report.headline "batch run through the query engine";
    Workload.Report.kv "dataset" source;
    Workload.Report.kv "n / d / |X|"
      (Printf.sprintf "%d / %d / %d" (Engine.Registry.n dataset) (Engine.Registry.dim dataset)
         (Geometry.Grid.axis_size grid));
    Workload.Report.kv "budget"
      (Printf.sprintf "(%g, %g) under %s composition" budget_eps budget_delta
         (Engine.Accountant.mode_name mode));
    Workload.Report.kv "jobs / domains" (Printf.sprintf "%d / %d" (List.length specs) jobs);
    Workload.Report.kv "seed" (string_of_int seed);
    Workload.Report.kv "retries" (string_of_int retries);
    if not (Engine.Faults.is_none faults) then
      Workload.Report.kv "fault injection" (Engine.Faults.to_string faults);
    let results = Engine.Service.run_batch service ~dataset specs in
    Workload.Report.subhead "job results";
    Workload.Report.table
      ~header:[ "id"; "kind"; "status"; "eps"; "delta"; "time"; "detail" ]
      (List.map
         (fun (r : Engine.Job.result) ->
           [
             r.Engine.Job.spec.Engine.Job.id;
             Engine.Job.kind_name r.Engine.Job.spec.Engine.Job.kind;
             Engine.Job.status_name r.Engine.Job.status;
             Workload.Report.g r.Engine.Job.spec.Engine.Job.eps;
             Workload.Report.g r.Engine.Job.spec.Engine.Job.delta;
             Printf.sprintf "%.1f ms" r.Engine.Job.latency_ms;
             Engine.Job.detail r;
           ])
         results);
    let accountant = Engine.Registry.accountant dataset in
    let spent = Engine.Accountant.spent accountant in
    Workload.Report.subhead "privacy ledger";
    Workload.Report.kv "spent" (Printf.sprintf "(%g, %g)" spent.Prim.Dp.eps spent.Prim.Dp.delta);
    Workload.Report.kv "refused jobs" (string_of_int (Engine.Accountant.refusals accountant));
    let lookups, hits = Engine.Registry.bounds_cache_stats dataset in
    Workload.Report.kv "r_opt cache" (Printf.sprintf "%d lookups, %d hits" lookups hits);
    Workload.Report.subhead "telemetry";
    List.iter
      (fun line ->
        if line <> "" then
          match String.index_opt line ':' with
          | Some i ->
              Workload.Report.kv (String.sub line 0 i)
                (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
          | None -> Workload.Report.kv "telemetry" line)
      (String.split_on_char '\n'
         (Format.asprintf "%a" Engine.Telemetry.pp_summary (Engine.Service.telemetry service)));
    (match json_out with
    | None -> ()
    | Some dest ->
        let json =
          Engine.Json.to_string (Engine.Service.report_json service ~dataset results) ^ "\n"
        in
        if dest = "-" then print_string json
        else begin
          Out_channel.with_open_text dest (fun oc -> Out_channel.output_string oc json);
          Workload.Report.kv "json report" dest
        end);
    (match metrics_out with
    | None -> ()
    | Some dest ->
        let spans = if trace = None then [] else Obs.Span.spans () in
        let text =
          Engine.Exposition.render ~spans ~dataset
            ~telemetry:(Engine.Service.telemetry service)
            ()
        in
        if dest = "-" then print_string text
        else begin
          Out_channel.with_open_text dest (fun oc -> Out_channel.output_string oc text);
          Workload.Report.kv "metrics" dest
        end);
    match trace with
    | None -> ()
    | Some _ ->
        (* Reconcile the trace against the accountant ledger; a mismatch is
           a bug in the budget bookkeeping, so it fails the run loudly. *)
        let report = Engine.Service.attribution ~dataset () in
        Workload.Report.subhead "budget attribution";
        print_string (Obs.Attribution.to_text report);
        write_trace trace;
        if not report.Obs.Attribution.ok then begin
          prerr_endline "batch: budget attribution FAILED (trace disagrees with the ledger)";
          exit 1
        end
  in
  let jobs_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"JOBS_FILE" ~doc:"Jobs file (one job per line; see privcluster.engine's Job docs).")
  in
  let points_file =
    Arg.(value & opt (some file) None & info [ "points-file" ] ~doc:"Load the dataset from a file (one point per line, whitespace-separated coordinates, snapped to the grid) instead of generating a synthetic one.")
  in
  let frac = Arg.(value & opt float 0.5 & info [ "frac" ] ~doc:"Planted cluster fraction (synthetic dataset).") in
  let radius = Arg.(value & opt float 0.05 & info [ "radius" ] ~doc:"Planted cluster radius (synthetic dataset).") in
  let budget_eps = Arg.(value & opt float 4.0 & info [ "budget-eps" ] ~doc:"Dataset lifetime ε budget.") in
  let budget_delta = Arg.(value & opt float 1e-5 & info [ "budget-delta" ] ~doc:"Dataset lifetime δ budget.") in
  let mode = Arg.(value & opt string "basic" & info [ "mode" ] ~doc:"Composition mode charged by the accountant: basic, advanced or zcdp.") in
  let slack = Arg.(value & opt float 1e-9 & info [ "slack" ] ~doc:"δ' slack for the advanced/zcdp modes.") in
  let jobs = Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~doc:"Worker domains. Results are identical for any value under a fixed --seed.") in
  let retries = Arg.(value & opt int 2 & info [ "retries" ] ~doc:"In-place retry attempts per job after an exception (a crash-before-output retry replays the same RNG stream and consumes no extra budget).") in
  let faults = Arg.(value & opt (some string) None & info [ "faults" ] ~doc:"Fault-injection schedule (e.g. 'crash\\@2,kill\\@5' or 'seed=1,rate=0.3'); defaults to \\$(b,PRIVCLUSTER_FAULTS) from the environment.") in
  let json_out = Arg.(value & opt (some string) None & info [ "json" ] ~doc:"Write the JSON report to this file ('-' for stdout).") in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write Prometheus text exposition of the run (job counters, latency histograms, \
             budget gauges; span aggregates too under --trace) to $(docv) ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "batch" ~doc:"Run a multi-job file through the concurrent private-query engine")
    Term.(
      const run $ setup_logs $ seed $ dim $ axis $ n $ frac $ radius $ profile $ jobs_file
      $ points_file $ budget_eps $ budget_delta $ mode $ slack $ jobs $ retries $ faults
      $ json_out $ trace_arg $ metrics_out)

(* experiments ------------------------------------------------------- *)

let experiments_cmd =
  let run seed quick only =
    let cfg = { Workload.Experiments.quick; seed } in
    match only with
    | [] -> Workload.Experiments.run cfg
    | ids -> Workload.Experiments.run ~only:ids cfg
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced trials and sweeps.") in
  let only =
    Arg.(value & opt (list string) [] & info [ "only" ] ~doc:"Run only these experiment ids.")
  in
  Cmd.v (Cmd.info "experiments" ~doc:"Run the EXPERIMENTS.md suite (E1-E13)")
    Term.(const run $ seed $ quick $ only)

(* params ------------------------------------------------------------ *)

let params_cmd =
  let run eps delta beta dim axis n profile =
    let grid = Geometry.Grid.create ~axis_size:axis ~dim in
    Workload.Report.headline "certified bounds for this configuration";
    Workload.Report.kv "profile" (Format.asprintf "%a" Privcluster.Profile.pp profile);
    Workload.Report.kv "radius candidates"
      (string_of_int
         (match profile.Privcluster.Profile.radius_grid with
         | Privcluster.Profile.Linear -> Geometry.Grid.radius_candidates grid
         | Privcluster.Profile.Geometric -> Geometry.Grid.geometric_candidates grid));
    Workload.Report.kv "GoodRadius Gamma"
      (Workload.Report.f2
         (Privcluster.Good_radius.gamma profile ~grid ~eps:(eps /. 2.) ~delta:(delta /. 2.) ~beta));
    Workload.Report.kv "paper Gamma formula"
      (Printf.sprintf "%.3e"
         (Recconcave.Rec_concave.paper_promise ~eps:(eps /. 4.) ~beta ~delta:(delta /. 2.)
            ~domain_size:(2. *. float_of_int axis *. sqrt (float_of_int dim))));
    Workload.Report.kv "recommended min t"
      (Workload.Report.f2
         (Privcluster.One_cluster.recommended_min_t profile ~grid ~eps ~delta ~beta ~n));
    Workload.Report.kv "JL dimension k"
      (string_of_int (Privcluster.Profile.jl_dim profile ~n ~d:dim ~beta));
    Workload.Report.kv "log*(2|X|sqrt d)" (Workload.Report.f2 (Geometry.Grid.log_star_term grid));
    Workload.Report.subhead "privacy budget breakdown (one run)";
    List.iter
      (fun (label, p) -> Workload.Report.kv label (Prim.Dp.to_string p))
      (Privcluster.One_cluster.budget_breakdown profile ~eps ~delta ~d:dim)
  in
  Cmd.v (Cmd.info "params" ~doc:"Print the certified bounds for a configuration")
    Term.(const run $ eps $ delta $ beta $ dim $ axis $ n $ profile)

(* outliers ---------------------------------------------------------- *)

let outliers_cmd =
  let run seed eps delta beta dim axis n outlier_frac =
    let rng = Prim.Rng.create ~seed () in
    let grid = Geometry.Grid.create ~axis_size:axis ~dim in
    let w =
      Workload.Synth.with_outliers rng ~grid ~n ~outlier_fraction:outlier_frac ~inlier_radius:0.04
    in
    Workload.Report.headline "outlier screening demo";
    match
      Privcluster.Outlier.detect rng Privcluster.Profile.practical ~grid ~eps:(eps /. 2.)
        ~delta:(delta /. 2.) ~beta
        ~inlier_fraction:(0.95 *. (1. -. outlier_frac))
        w.Workload.Synth.data
    with
    | Error e ->
        Workload.Report.kv "outcome"
          (Format.asprintf "FAILED: %a" Privcluster.One_cluster.pp_failure e)
    | Ok det ->
        let excluded =
          Array.fold_left
            (fun acc i -> if det.Privcluster.Outlier.inlier w.Workload.Synth.data.(i) then acc else acc + 1)
            0 w.Workload.Synth.outlier_indices
        in
        Workload.Report.kv "ball radius" (Workload.Report.f3 det.Privcluster.Outlier.ball_radius);
        Workload.Report.kv "outliers excluded"
          (Printf.sprintf "%d / %d" excluded (Array.length w.Workload.Synth.outlier_indices));
        let show = function
          | Prim.Noisy_avg.Average a ->
              Workload.Report.f3
                (Geometry.Vec.dist a.Prim.Noisy_avg.average w.Workload.Synth.inlier_center)
          | Prim.Noisy_avg.Bottom -> "bottom"
        in
        Workload.Report.kv "screened mean error"
          (show (Privcluster.Outlier.screened_mean rng ~eps:(eps /. 2.) ~delta:(delta /. 2.) det w.Workload.Synth.data));
        Workload.Report.kv "domain mean error"
          (show (Privcluster.Outlier.domain_mean rng ~eps:(eps /. 2.) ~delta:(delta /. 2.) ~grid w.Workload.Synth.data))
  in
  let ofrac = Arg.(value & opt float 0.1 & info [ "outlier-frac" ] ~doc:"Outlier fraction.") in
  Cmd.v (Cmd.info "outliers" ~doc:"Outlier detection and screened-mean demo")
    Term.(const run $ seed $ eps $ delta $ beta $ dim $ axis $ n $ ofrac)

(* interior-point ---------------------------------------------------- *)

let interior_cmd =
  let run seed eps delta beta m =
    let rng = Prim.Rng.create ~seed () in
    let grid = Geometry.Grid.create ~axis_size:4096 ~dim:1 in
    let values =
      Array.init m (fun i ->
          let base = if i mod 2 = 0 then 0.25 else 0.75 in
          Float.max 0. (Float.min 1. (base +. Prim.Rng.gaussian rng ~sigma:0.01 ())))
    in
    Workload.Report.headline "interior point via the 1-cluster reduction (Algorithm 3)";
    match
      Privcluster.Interior_point.run rng Privcluster.Profile.practical ~grid ~eps ~delta ~beta
        ~inner_n:(m / 2) ~w:16. values
    with
    | Error e ->
        Workload.Report.kv "outcome" (Format.asprintf "FAILED: %a" Privcluster.One_cluster.pp_failure e)
    | Ok ip ->
        let lo = Array.fold_left Float.min infinity values in
        let hi = Array.fold_left Float.max neg_infinity values in
        Workload.Report.kv "returned point" (Workload.Report.f3 ip.Privcluster.Interior_point.point);
        Workload.Report.kv "data range" (Printf.sprintf "[%s, %s]" (Workload.Report.f3 lo) (Workload.Report.f3 hi));
        Workload.Report.kv "interior?"
          (if ip.Privcluster.Interior_point.point >= lo && ip.Privcluster.Interior_point.point <= hi
           then "yes" else "NO");
        Workload.Report.kv "oracle radius" (Workload.Report.f3 ip.Privcluster.Interior_point.oracle_radius);
        Workload.Report.kv "cut candidates" (string_of_int ip.Privcluster.Interior_point.candidates)
  in
  let m = Arg.(value & opt int 4000 & info [ "m" ] ~doc:"Database size.") in
  Cmd.v (Cmd.info "interior-point" ~doc:"Interior-point demo (Theorem 5.3 reduction)")
    Term.(const run $ seed $ eps $ delta $ beta $ m)

(* quantile ----------------------------------------------------------- *)

let quantile_cmd =
  let run seed eps axis n q =
    let rng = Prim.Rng.create ~seed () in
    let grid = Geometry.Grid.create ~axis_size:axis ~dim:1 in
    (* Skewed demo data. *)
    let values = Array.init n (fun _ -> Prim.Rng.float rng 1.0 ** 2.) in
    Workload.Report.headline "private quantile (RecConcave)";
    let res = Privcluster.Quantile.quantile rng ~grid ~eps ~q values in
    let rank =
      Array.fold_left
        (fun acc x -> if x <= res.Privcluster.Quantile.value then acc + 1 else acc)
        0 values
    in
    Workload.Report.kv "quantile q" (Workload.Report.g q);
    Workload.Report.kv "private value" (Workload.Report.f3 res.Privcluster.Quantile.value);
    Workload.Report.kv "achieved rank / target"
      (Printf.sprintf "%d / %.0f" rank res.Privcluster.Quantile.target_rank);
    Workload.Report.kv "certified rank error (beta=0.1)"
      (Printf.sprintf "%.0f" (Privcluster.Quantile.rank_error_bound ~grid ~eps ~beta:0.1 ()))
  in
  let q = Arg.(value & opt float 0.5 & info [ "q"; "level" ] ~doc:"Quantile in [0, 1].") in
  Cmd.v (Cmd.info "quantile" ~doc:"Private quantile demo (RecConcave application)")
    Term.(const run $ seed $ eps $ axis $ n $ q)

(* domain-solve ------------------------------------------------------- *)

let domain_cmd =
  let run seed eps delta beta axis n =
    let rng = Prim.Rng.create ~seed () in
    (* Data in an arbitrary box: longitude/latitude-like coordinates. *)
    let center = [| -71.06; 42.36 |] in
    let points =
      Array.init n (fun i ->
          if i < n / 2 then Array.map (fun c -> c +. Prim.Rng.gaussian rng ~sigma:0.005 ()) center
          else
            [|
              Prim.Rng.uniform rng ~lo:(-71.2) ~hi:(-70.9);
              Prim.Rng.uniform rng ~lo:42.2 ~hi:42.5;
            |])
    in
    let dom =
      Privcluster.Domain.create ~lo:[| -71.2; 42.2 |] ~hi:[| -70.9; 42.5 |] ~axis_size:axis
    in
    Workload.Report.headline "1-cluster on an arbitrary rectangular domain (Remark 3.3)";
    match
      Privcluster.Domain.solve rng Privcluster.Profile.practical dom ~eps ~delta ~beta
        ~t:(3 * n / 10) points
    with
    | Error e ->
        Workload.Report.kv "outcome" (Format.asprintf "FAILED: %a" Privcluster.One_cluster.pp_failure e)
    | Ok r ->
        Workload.Report.kv "center"
          (Printf.sprintf "(%.4f, %.4f)" r.Privcluster.Domain.center.(0) r.Privcluster.Domain.center.(1));
        Workload.Report.kv "radius (data units)" (Workload.Report.f3 r.Privcluster.Domain.radius);
        Workload.Report.kv "truth center" (Printf.sprintf "(%.4f, %.4f)" center.(0) center.(1));
        Workload.Report.kv "center error (data units)"
          (Workload.Report.f3 (Geometry.Vec.dist r.Privcluster.Domain.center center))
  in
  Cmd.v
    (Cmd.info "domain-solve" ~doc:"Solve over a non-unit rectangular domain (Remark 3.3)")
    Term.(const run $ seed $ eps $ delta $ beta $ axis $ n)

(* check --------------------------------------------------------------- *)

(* Statistical verification: goodness-of-fit of every primitive's output
   law, DP distinguisher estimates with Clopper–Pearson bounds, and the
   Theorem 3.2 utility certifier.  Exits 1 when any check reports a
   violation, so CI can gate on it. *)

let check_cmd =
  let run () seed trials deep significance alpha slack jobs only list_names json_out trace =
    if list_names then
      List.iter
        (fun (group, members) ->
          Printf.printf "%s\n" group;
          List.iter (fun name -> Printf.printf "  %s\n" name) members)
        (Check.Suite.grouped_names ())
    else begin
      enable_trace trace;
      let cfg =
        { Check.Suite.seed; trials; deep; significance; alpha; slack; domains = jobs }
      in
      let only =
        match only with
        | None -> None
        | Some s ->
            Some
              (String.split_on_char ',' s |> List.map String.trim
              |> List.filter (fun x -> x <> ""))
      in
      Workload.Report.headline "statistical DP verification & utility certification";
      Workload.Report.kv "seed / trials" (Printf.sprintf "%d / %d" seed trials);
      Workload.Report.kv "deep" (string_of_bool deep);
      Workload.Report.kv "gof significance" (Workload.Report.g significance);
      Workload.Report.kv "CP alpha / ratio slack"
        (Printf.sprintf "%s / %s" (Workload.Report.g alpha) (Workload.Report.g slack));
      Workload.Report.kv "domains" (string_of_int jobs);
      let results = Check.Suite.run ?only cfg in
      if Check.Suite.exit_status ~matched:(results <> []) ~violations:0 = 2 then begin
        prerr_endline "check: no checks matched --only (see --list)";
        exit 2
      end;
      Workload.Report.subhead "checks";
      Workload.Report.table
        ~header:[ "check"; "kind"; "status"; "detail" ]
        (List.map
           (fun (r : Check.Suite.result) ->
             [
               r.Check.Suite.name;
               r.Check.Suite.kind;
               (match r.Check.Suite.status with
               | Check.Suite.Pass -> "pass"
               | Check.Suite.Violation -> "VIOLATION");
               r.Check.Suite.detail;
             ])
           results);
      let violations =
        List.length
          (List.filter (fun r -> r.Check.Suite.status = Check.Suite.Violation) results)
      in
      Workload.Report.kv "summary"
        (Printf.sprintf "%d checks, %d violation%s" (List.length results) violations
           (if violations = 1 then "" else "s"));
      (match json_out with
      | None -> ()
      | Some dest ->
          let json =
            Engine.Json.to_string (Check.Suite.report_json cfg results) ^ "\n"
          in
          if dest = "-" then print_string json
          else begin
            Out_channel.with_open_text dest (fun oc -> Out_channel.output_string oc json);
            Workload.Report.kv "json report" dest
          end);
      write_trace trace;
      match Check.Suite.exit_status ~matched:true ~violations with
      | 0 -> ()
      | code -> exit code
    end
  in
  let trials =
    Arg.(
      value
      & opt int Check.Suite.default.Check.Suite.trials
      & info [ "trials" ] ~doc:"Samples per side for full-rate checks (composites divide it).")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ] ~doc:"Quadruple the composite / certifier sample sizes.")
  in
  let significance =
    Arg.(
      value
      & opt float Check.Suite.default.Check.Suite.significance
      & info [ "significance" ] ~doc:"Goodness-of-fit rejection level.")
  in
  let alpha =
    Arg.(
      value
      & opt float Check.Suite.default.Check.Suite.alpha
      & info [ "alpha" ] ~doc:"Clopper-Pearson confidence parameter.")
  in
  let slack =
    Arg.(
      value
      & opt float Check.Suite.default.Check.Suite.slack
      & info [ "slack" ] ~doc:"Distinguisher ratio slack on top of e^eps.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:"Worker domains for the sampling fan-out. Results are identical for any value under a fixed --seed.")
  in
  let only =
    Arg.(
      value
      & opt (some string) None
      & info [ "only" ]
          ~doc:"Comma-separated check names or group prefixes (e.g. 'laplace,one_cluster/utility').")
  in
  let list_names =
    Arg.(value & flag & info [ "list" ] ~doc:"List the registered check names and exit.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~doc:"Write the JSON report to this file ('-' for stdout).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Statistically verify the DP mechanisms and certify utility contracts")
    Term.(
      const run $ setup_logs $ seed $ trials $ deep $ significance $ alpha $ slack $ jobs $ only
      $ list_names $ json_out $ trace_arg)

(* metrics ------------------------------------------------------------- *)

let metrics_cmd =
  let run report_file =
    let die fmt = Printf.ksprintf (fun m -> prerr_endline ("metrics: " ^ m); exit 2) fmt in
    let contents =
      try In_channel.with_open_text report_file In_channel.input_all
      with Sys_error e -> die "%s" e
    in
    match Obs.Json.parse contents with
    | Error e -> die "%s: %s" report_file e
    | Ok json -> (
        match Engine.Exposition.of_report_json json with
        | Error e -> die "%s: %s" report_file e
        | Ok families -> print_string (Obs.Prom.render families))
  in
  let report_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"REPORT_JSON"
          ~doc:"A batch report written earlier with $(b,batch --json FILE).")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:"Expose a saved batch report as Prometheus text format (post-hoc scrape)")
    Term.(const run $ report_file)

(* validate-trace ------------------------------------------------------ *)

let validate_trace_cmd =
  let run trace_file =
    let die fmt = Printf.ksprintf (fun m -> prerr_endline ("validate-trace: " ^ m); exit 1) fmt in
    let contents =
      try In_channel.with_open_text trace_file In_channel.input_all
      with Sys_error e -> die "%s" e
    in
    match Obs.Json.parse contents with
    | Error e -> die "%s: not valid JSON: %s" trace_file e
    | Ok json -> (
        match Obs.Trace.validate json with
        | Error e -> die "%s: %s" trace_file e
        | Ok () ->
            let events =
              match Obs.Json.member "traceEvents" json with
              | Some l -> ( match Obs.Json.to_list l with Some l -> List.length l | None -> 0)
              | None -> 0
            in
            Printf.printf "%s: valid Chrome trace (%d events)\n" trace_file events)
  in
  let trace_file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE_JSON" ~doc:"A trace written with $(b,--trace FILE).")
  in
  Cmd.v
    (Cmd.info "validate-trace"
       ~doc:"Check that a file is well-formed Chrome trace-event JSON (CI gate)")
    Term.(const run $ trace_file)

(* serve / client ----------------------------------------------------- *)

(* The resident daemon (privclusterd) and its line-protocol client; see
   OPERATIONS.md §10 for the protocol reference and recovery story. *)

let listen_term flags =
  let socket =
    Arg.(
      value
      & opt string "privclusterd.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:(Printf.sprintf "%s on TCP instead of the Unix socket." flags))
  in
  let combine socket tcp : Server.Daemon.listen =
    match tcp with
    | None -> `Unix socket
    | Some spec -> (
        match String.rindex_opt spec ':' with
        | Some i -> (
            let host = String.sub spec 0 i in
            let port = String.sub spec (i + 1) (String.length spec - i - 1) in
            match int_of_string_opt port with
            | Some p when p >= 0 -> `Tcp ((if host = "" then "127.0.0.1" else host), p)
            | _ ->
                prerr_endline ("--tcp: bad port in " ^ spec);
                exit 2)
        | None ->
            prerr_endline ("--tcp: expected HOST:PORT, got " ^ spec);
            exit 2)
  in
  Term.(const combine $ socket $ tcp)

let serve_cmd =
  let run () listen wal tenant_specs capacity jobs retries seed no_sync trace no_serving_stats
      trace_sample slow_threshold_ms slow_log slow_keep slo_specs =
    enable_trace trace;
    let die fmt = Printf.ksprintf (fun m -> prerr_endline ("serve: " ^ m); exit 2) fmt in
    let tenants =
      List.map
        (fun s ->
          match Server.Tenants.spec_of_string s with Ok t -> t | Error e -> die "--tenant: %s" e)
        tenant_specs
    in
    if tenants = [] then die "at least one --tenant NAME:TOKEN[:CAP] is required";
    if trace_sample < 0 then die "--trace-sample: want a non-negative period, got %d" trace_sample;
    if slow_keep < 1 then die "--slow-keep: want at least 1, got %d" slow_keep;
    let slo_rules =
      match slo_specs with
      | [] -> Obs.Slo.default_rules
      | specs ->
          List.map
            (fun s ->
              match Obs.Slo.rule_of_line s with Ok r -> r | Error e -> die "--slo: %s" e)
            specs
    in
    let cfg =
      {
        Server.Daemon.listen;
        wal_path = wal;
        tenants;
        capacity;
        domains = jobs;
        retries;
        seed;
        sync = not no_sync;
        serving_stats = not no_serving_stats;
        trace_sample;
        slow_threshold_ms;
        slow_log;
        slow_keep;
        slo_rules;
      }
    in
    let on_ready t =
      let addr =
        match Server.Daemon.sockaddr t with
        | Unix.ADDR_UNIX p -> "unix:" ^ p
        | Unix.ADDR_INET (a, p) -> Printf.sprintf "tcp:%s:%d" (Unix.string_of_inet_addr a) p
      in
      (* Scripts wait for this line before connecting. *)
      print_endline ("privclusterd listening on " ^ addr);
      flush stdout
    in
    match Server.Daemon.run ~on_ready cfg with
    | Ok () ->
        write_trace trace;
        print_endline "privclusterd: clean drain"
    | Error e -> die "%s" e
  in
  let wal =
    Arg.(
      value
      & opt string "privclusterd.wal"
      & info [ "wal" ] ~docv:"PATH"
          ~doc:
            "Journaled budget ledger (append-only, fsync'd, CRC-framed). Replayed on restart so \
             \\(ε, δ\\) spend survives crashes.")
  in
  let tenant =
    Arg.(
      value & opt_all string []
      & info [ "tenant" ] ~docv:"NAME:TOKEN[:CAP]"
          ~doc:
            "Register a tenant (repeatable): its auth token and optional in-flight batch cap \
             (default 8).")
  in
  let capacity =
    Arg.(
      value & opt int 64
      & info [ "capacity" ]
          ~doc:"Submission-queue bound; runs beyond it are shed with $(i,queue_full).")
  in
  let jobs =
    Arg.(value & opt int 2 & info [ "jobs"; "j" ] ~doc:"Worker domains per batch.")
  in
  let retries = Arg.(value & opt int 2 & info [ "retries" ] ~doc:"Per-job retry allowance.") in
  let no_sync =
    Arg.(
      value & flag
      & info [ "no-sync" ]
          ~doc:
            "Skip the per-record WAL fsync. Only for benchmarks: a crash may then lose the \
             tail of the journal.")
  in
  let no_serving_stats =
    Arg.(
      value & flag
      & info [ "no-serving-stats" ]
          ~doc:
            "Disable serving telemetry (latency histograms, burn windows, shed counters). \
             $(b,health)/$(b,stats) then answer with empty bodies; exists chiefly for \
             overhead baselines.")
  in
  let trace_sample =
    Arg.(
      value & opt int 0
      & info [ "trace-sample" ] ~docv:"N"
          ~doc:
            "Head-sample one request in $(docv) (0 = off), keeping its full span tree in the \
             slow-log ring. Deterministic — a hash of the request id decides, no RNG — so \
             outputs are bit-identical with sampling on or off.")
  in
  let slow_threshold_ms =
    Arg.(
      value & opt float 250.
      & info [ "slow-threshold" ] ~docv:"MS"
          ~doc:"Requests at or above $(docv) milliseconds are kept as slow exemplars.")
  in
  let slow_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "slow-log" ] ~docv:"DIR"
          ~doc:
            "Bounded on-disk exemplar ring: span trees of sampled and slow requests, newest-N \
             ($(b,--slow-keep)), each openable with $(b,validate-trace).")
  in
  let slow_keep =
    Arg.(
      value & opt int 64
      & info [ "slow-keep" ] ~docv:"N" ~doc:"Exemplars retained in the $(b,--slow-log) ring.")
  in
  let slo =
    Arg.(
      value & opt_all string []
      & info [ "slo" ] ~docv:"RULE"
          ~doc:
            "SLO rule evaluated by the $(b,health) verb (repeatable; replaces the defaults). \
             Syntax: $(b,latency q=0.99 verb=* warn_ms=500 fire_ms=2000), \
             $(b,burn tenant=* dataset=* warn=0.5 fire=1.0), or \
             $(b,shed warn=0.01 fire=0.10).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run privclusterd: the resident multi-tenant private-query daemon")
    Term.(
      const run $ setup_logs $ listen_term "Listen" $ wal $ tenant $ capacity $ jobs $ retries
      $ seed $ no_sync $ trace_arg $ no_serving_stats $ trace_sample $ slow_threshold_ms
      $ slow_log $ slow_keep $ slo)

let client_cmd =
  let die fmt = Printf.ksprintf (fun m -> prerr_endline ("client: " ^ m); exit 2) fmt in
  let connect listen tenant token =
    match Server.Client.connect listen ~tenant ~token with
    | Ok c -> c
    | Error f -> die "%s" (Server.Client.fail_message f)
  in
  let finish = function
    | Ok json ->
        print_string (Engine.Json.to_string json ^ "\n")
    | Error (`Server e) when (match e.Server.Wire.code with Server.Wire.Rejected _ -> true | _ -> false) ->
        prerr_endline ("client: " ^ Server.Client.fail_message (`Server e));
        exit 3
    | Error f ->
        prerr_endline ("client: " ^ Server.Client.fail_message f);
        exit 1
  in
  let tenant_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "tenant" ] ~docv:"NAME" ~doc:"Tenant name.")
  in
  let token_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "token" ]
          ~env:(Cmd.Env.info "PRIVCLUSTER_TOKEN")
          ~docv:"TOKEN" ~doc:"Tenant auth token.")
  in
  let dataset_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "dataset" ] ~docv:"NAME" ~doc:"Dataset id (namespaced per tenant).")
  in
  let register_cmd =
    let run () listen tenant token dataset n dim axis frac radius seed budget_eps budget_delta
        mode_s slack =
      let mode =
        match Engine.Accountant.mode_of_string ~slack mode_s with
        | Ok m -> m
        | Error e -> die "%s" e
      in
      let c = connect listen tenant token in
      let r =
        Server.Client.register c ~dataset ~n ~dim ~axis ~frac ~radius ~seed
          ~budget:(Prim.Dp.v ~eps:budget_eps ~delta:budget_delta)
          ~mode ()
      in
      Server.Client.close c;
      finish r
    in
    let frac = Arg.(value & opt float 0.5 & info [ "frac" ] ~doc:"Planted cluster fraction.") in
    let radius = Arg.(value & opt float 0.05 & info [ "radius" ] ~doc:"Planted cluster radius.") in
    let budget_eps = Arg.(value & opt float 4.0 & info [ "budget-eps" ] ~doc:"Lifetime ε budget.") in
    let budget_delta =
      Arg.(value & opt float 1e-5 & info [ "budget-delta" ] ~doc:"Lifetime δ budget.")
    in
    let mode =
      Arg.(value & opt string "basic" & info [ "mode" ] ~doc:"Composition mode: basic, advanced or zcdp.")
    in
    let slack = Arg.(value & opt float 1e-9 & info [ "slack" ] ~doc:"δ' slack for advanced/zcdp.") in
    Cmd.v
      (Cmd.info "register"
         ~doc:
           "Register a synthetic planted-ball dataset with a lifetime budget (re-registering a \
            journaled dataset after a daemon restart replays its ledger)")
      Term.(
        const run $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg $ dataset_arg
        $ n $ dim $ axis $ frac $ radius $ seed $ budget_eps $ budget_delta $ mode $ slack)
  in
  let run_cmd =
    let run () listen tenant token dataset jobs_file seed_opt =
      let jobs =
        try In_channel.with_open_text jobs_file In_channel.input_all
        with Sys_error e -> die "%s" e
      in
      let c = connect listen tenant token in
      let r = Server.Client.run c ~dataset ?seed:seed_opt ~jobs () in
      Server.Client.close c;
      finish r
    in
    let jobs_file =
      Arg.(
        required
        & pos 0 (some file) None
        & info [] ~docv:"JOBS_FILE" ~doc:"Jobs file shipped to the daemon (same format as batch).")
    in
    let seed_opt =
      Arg.(
        value
        & opt (some int) None
        & info [ "seed" ]
            ~doc:
              "Batch RNG base: with a fixed seed the verdicts are deterministic no matter how \
               clients interleave.")
    in
    Cmd.v
      (Cmd.info "run" ~doc:"Run a jobs file on the daemon (exit 3 if the request was shed)")
      Term.(
        const run $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg $ dataset_arg
        $ jobs_file $ seed_opt)
  in
  let simple name doc req =
    Cmd.v
      (Cmd.info name ~doc)
      Term.(
        const (fun () listen tenant token ->
            let c = connect listen tenant token in
            let r = Server.Client.request c req in
            Server.Client.close c;
            finish r)
        $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg)
  in
  let ledger_cmd =
    Cmd.v
      (Cmd.info "ledger"
         ~doc:"Fetch a dataset's privacy ledger (with attribution when the daemon traces)")
      Term.(
        const (fun () listen tenant token dataset ->
            let c = connect listen tenant token in
            let r = Server.Client.ledger c ~dataset in
            Server.Client.close c;
            finish r)
        $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg $ dataset_arg)
  in
  let append_cmd =
    let run () listen tenant token dataset n seed frac radius =
      let c = connect listen tenant token in
      let r = Server.Client.append c ~dataset ~n ~seed ~frac ~radius () in
      Server.Client.close c;
      finish r
    in
    let n = Arg.(value & opt int 500 & info [ "n"; "points" ] ~doc:"Points to append.") in
    let frac = Arg.(value & opt float 0.5 & info [ "frac" ] ~doc:"Planted cluster fraction.") in
    let radius = Arg.(value & opt float 0.05 & info [ "radius" ] ~doc:"Planted cluster radius.") in
    Cmd.v
      (Cmd.info "append"
         ~doc:
           "Append synthetic planted-ball points to a dataset, advancing its epoch (standing \
            queries tick; cached answers for older epochs stay valid for replays)")
      Term.(
        const run $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg $ dataset_arg
        $ n $ seed $ frac $ radius)
  in
  let retire_cmd =
    let run () listen tenant token dataset from_ count =
      let c = connect listen tenant token in
      let r = Server.Client.retire c ~dataset ~from_ ~count in
      Server.Client.close c;
      finish r
    in
    let from_ = Arg.(required & opt (some int) None & info [ "from" ] ~docv:"INDEX" ~doc:"First point index to retire (current-epoch numbering).") in
    let count = Arg.(required & opt (some int) None & info [ "count" ] ~docv:"N" ~doc:"How many consecutive points to retire.") in
    Cmd.v
      (Cmd.info "retire"
         ~doc:"Retire a contiguous range of points from a dataset, advancing its epoch")
      Term.(
        const run $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg $ dataset_arg
        $ from_ $ count)
  in
  let epoch_cmd =
    Cmd.v
      (Cmd.info "epoch"
         ~doc:"Show a dataset's current epoch, size, index backend and cache statistics")
      Term.(
        const (fun () listen tenant token dataset ->
            let c = connect listen tenant token in
            let r = Server.Client.epoch c ~dataset in
            Server.Client.close c;
            finish r)
        $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg $ dataset_arg)
  in
  let standing_cmd =
    let run () listen tenant token dataset id t_fraction eps delta periods seed_opt =
      let c = connect listen tenant token in
      let r =
        Server.Client.standing c ~dataset ~id ~t_fraction ~eps ~delta ~periods ?seed:seed_opt ()
      in
      Server.Client.close c;
      finish r
    in
    let id = Arg.(value & opt string "standing" & info [ "id" ] ~docv:"ID" ~doc:"Query id; tick k reports under ID#k.") in
    let t_fraction = Arg.(value & opt float 0.4 & info [ "t-fraction" ] ~doc:"Target cluster size as a fraction of n.") in
    let eps = Arg.(value & opt float 2.0 & info [ "eps" ] ~doc:"TOTAL ε over all periods (each tick charges eps/periods).") in
    let delta = Arg.(value & opt float delta_default & info [ "delta" ] ~doc:"TOTAL δ over all periods.") in
    let periods = Arg.(value & opt int 4 & info [ "periods" ] ~doc:"Number of answers: one now, then one per epoch transition.") in
    let seed_opt = Arg.(value & opt (some int) None & info [ "seed" ] ~doc:"Batch RNG base for the registration tick.") in
    Cmd.v
      (Cmd.info "standing"
         ~doc:
           "Register a standing 1-cluster query: the total budget is reserved up front as equal \
            per-period slices and one slice is committed per answer")
      Term.(
        const run $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg $ dataset_arg
        $ id $ t_fraction $ eps $ delta $ periods $ seed_opt)
  in
  let settle_cmd =
    let run () listen tenant token dataset action_s label =
      let action =
        match Server.Wire.settle_action_of_string action_s with
        | Some a -> a
        | None -> die "--action: want commit or release, got %S" action_s
      in
      let c = connect listen tenant token in
      let r = Server.Client.settle c ~dataset ~action ?label () in
      Server.Client.close c;
      match r with
      | Ok reply ->
          List.iter
            (fun (s : Server.Wire.settled_reservation) ->
              Printf.printf "%s %s (%g, %g)\n"
                (Server.Wire.settle_action_name reply.Server.Wire.action)
                s.Server.Wire.label s.Server.Wire.eps s.Server.Wire.delta)
            reply.Server.Wire.settled;
          Printf.printf "settled %d, %d orphan%s remaining\n"
            (List.length reply.Server.Wire.settled)
            reply.Server.Wire.remaining
            (if reply.Server.Wire.remaining = 1 then "" else "s")
      | Error (`Server e)
        when (match e.Server.Wire.code with Server.Wire.Rejected _ -> true | _ -> false) ->
          prerr_endline ("client: " ^ Server.Client.fail_message (`Server e));
          Stdlib.exit 3
      | Error f ->
          prerr_endline ("client: " ^ Server.Client.fail_message f);
          Stdlib.exit 1
    in
    let action =
      Arg.(
        required
        & opt (some string) None
        & info [ "action" ] ~docv:"commit|release"
            ~doc:
              "What to do with the orphans: $(b,commit) counts them as spent (safe — the \
               fallback may have drawn noise before the crash); $(b,release) returns the \
               headroom (only when the operator knows no noise was drawn).")
    in
    let label =
      Arg.(
        value
        & opt (some string) None
        & info [ "label" ] ~docv:"LABEL" ~doc:"Settle only the reservation(s) with this label.")
    in
    Cmd.v
      (Cmd.info "settle"
         ~doc:
           "Commit or release reservations orphaned by a crash (held after WAL replay); nothing \
            settles them automatically")
      Term.(
        const run $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg $ dataset_arg
        $ action $ label)
  in
  let print_table rows =
    (* Pad every column but the last to the widest cell in that column. *)
    let widths =
      List.fold_left
        (fun acc row ->
          List.mapi
            (fun i cell ->
              let prev = try List.nth acc i with _ -> 0 in
              max prev (String.length cell))
            row)
        [] rows
    in
    List.iter
      (fun row ->
        let n = List.length row in
        List.iteri
          (fun i cell ->
            if i = n - 1 then print_string cell
            else Printf.printf "%-*s  " (List.nth widths i) cell)
          row;
        print_newline ())
      rows
  in
  let metrics_cmd =
    let run () listen tenant token table =
      let c = connect listen tenant token in
      let r = Server.Client.metrics c in
      Server.Client.close c;
      match r with
      | Ok text when not table -> print_string text
      | Ok text ->
          (* Sample lines are "name{labels} value"; comments start with '#'. *)
          let rows =
            String.split_on_char '\n' text
            |> List.filter_map (fun line ->
                   if line = "" || line.[0] = '#' then None
                   else
                     match String.rindex_opt line ' ' with
                     | Some i ->
                         Some
                           [
                             String.sub line 0 i;
                             String.sub line (i + 1) (String.length line - i - 1);
                           ]
                     | None -> Some [ line ])
          in
          print_table ([ "METRIC"; "VALUE" ] :: rows)
      | Error f ->
          prerr_endline ("client: " ^ Server.Client.fail_message f);
          Stdlib.exit 1
    in
    let table =
      Arg.(
        value & flag
        & info [ "table" ]
            ~doc:"Render the samples as an aligned table instead of raw exposition text.")
    in
    Cmd.v
      (Cmd.info "metrics" ~doc:"Scrape this tenant's Prometheus text exposition")
      Term.(const run $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg $ table)
  in
  let health_cmd =
    let run () listen tenant token =
      let c = connect listen tenant token in
      let r = Server.Client.health c in
      Server.Client.close c;
      match r with
      | Error f ->
          prerr_endline ("client: " ^ Server.Client.fail_message f);
          Stdlib.exit 1
      | Ok (status, verdicts, payload) ->
          let draining =
            match Engine.Json.member "draining" payload with
            | Some (Engine.Json.Bool b) -> b
            | _ -> false
          in
          Printf.printf "status: %s%s\n"
            (Obs.Slo.status_to_string status)
            (if draining then " (draining)" else "");
          (match verdicts with
          | [] -> ()
          | _ ->
              print_table
                ([ "STATUS"; "SUBJECT"; "REASON"; "RULE" ]
                :: List.map
                     (fun (v : Obs.Slo.verdict) ->
                       [ Obs.Slo.status_to_string v.status; v.subject; v.reason; v.rule ])
                     verdicts));
          if status = Obs.Slo.Firing then Stdlib.exit 4
    in
    Cmd.v
      (Cmd.info "health"
         ~doc:
           "Evaluate the daemon's SLO rules: one verdict per rule and subject (exit 4 when any \
            rule is firing; answers while draining)")
      Term.(const run $ setup_logs $ listen_term "Connect" $ tenant_arg $ token_arg)
  in
  Cmd.group
    (Cmd.info "client" ~doc:"Talk to a running privclusterd")
    [
      register_cmd;
      run_cmd;
      append_cmd;
      retire_cmd;
      epoch_cmd;
      standing_cmd;
      settle_cmd;
      ledger_cmd;
      simple "datasets" "List this tenant's datasets" Server.Wire.Datasets;
      metrics_cmd;
      health_cmd;
      simple "stats"
        "Dump the daemon's serving-telemetry snapshot (histograms, burn rates, sheds) as JSON"
        Server.Wire.Stats;
      simple "ping" "Liveness probe (also answers while draining)" Server.Wire.Ping;
    ]

let () =
  let doc = "differentially private location of a small cluster (PODS 2016)" in
  let info = Cmd.info "privcluster-cli" ~doc ~version:"1.0.0" in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd;
            batch_cmd;
            experiments_cmd;
            params_cmd;
            outliers_cmd;
            interior_cmd;
            quantile_cmd;
            domain_cmd;
            check_cmd;
            metrics_cmd;
            validate_trace_cmd;
            serve_cmd;
            client_cmd;
          ]))
