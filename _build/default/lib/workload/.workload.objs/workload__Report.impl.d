lib/workload/report.ml: Filename Float List Printf String Sys
