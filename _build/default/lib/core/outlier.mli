(** Outlier detection and screening (the §1.1 application).

    Running the 1-cluster solver with, say, [t = 0.9·n] yields a ball whose
    indicator is a private predicate [h] separating the bulk of the data
    from outliers.  Because [h] is a function of private outputs only, any
    further use of it is post-processing: downstream analyses may restrict
    the input space to the ball — shrinking their sensitivity and hence the
    noise they must add (experiment E8 quantifies the accuracy gain for a
    private mean). *)

type predicate = Geometry.Vec.t -> bool

type result = {
  ball_center : Geometry.Vec.t;
  ball_radius : float;
  inlier : predicate;  (** [h]: true inside the (slightly inflated) ball. *)
  cluster : One_cluster.result;
}

val detect :
  Prim.Rng.t ->
  Profile.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  delta:float ->
  beta:float ->
  inlier_fraction:float ->
  ?margin:float ->
  Geometry.Vec.t array ->
  (result, One_cluster.failure) Stdlib.result
(** [detect … ~inlier_fraction points] runs the 1-cluster solver with
    [t = inlier_fraction · n].  The screen ball is centered at the private
    center with radius [margin × z] (default margin 4), where [z] is the
    radius-stage output (≈ 4·r_opt) — a much tighter private radius than
    the end-to-end one, and equally legitimate since both are private
    outputs. *)

val screened_mean :
  Prim.Rng.t ->
  eps:float ->
  delta:float ->
  result ->
  Geometry.Vec.t array ->
  Prim.Noisy_avg.result
(** Private mean of the inliers via {!Prim.Noisy_avg}, with sensitivity
    scaled to the {e ball's} diameter instead of the whole domain's — the
    noise-reduction pay-off the introduction describes. *)

val domain_mean :
  Prim.Rng.t ->
  eps:float ->
  delta:float ->
  grid:Geometry.Grid.t ->
  Geometry.Vec.t array ->
  Prim.Noisy_avg.result
(** The unscreened comparator: same mechanism, sensitivity scaled to the
    full domain diameter [√d]. *)
