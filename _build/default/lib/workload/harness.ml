type scored = {
  time_ms : float;
  center : Geometry.Vec.t option;
  radius : float;
  covered : int;
  delta_measured : int;
  w_private : float;
  w_tight : float;
  failure : string option;
}

let default_delta = 1e-6
let default_beta = 0.1

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, (Unix.gettimeofday () -. t0) *. 1000.)

let failed ~time_ms reason =
  {
    time_ms;
    center = None;
    radius = 0.;
    covered = 0;
    delta_measured = max_int;
    w_private = Float.nan;
    w_tight = Float.nan;
    failure = Some reason;
  }

let score_center ~idx ~t ~r_hi ~time_ms ~center ~radius =
  let ps = Geometry.Pointset.index_pointset idx in
  let covered = Geometry.Pointset.ball_count ps ~center ~radius in
  let tight = Metrics.tight_radius ps ~center ~t in
  let safe_div a b = if b <= 0. then Float.infinity else a /. b in
  {
    time_ms;
    center = Some center;
    radius;
    covered;
    delta_measured = max 0 (t - covered);
    w_private = safe_div radius r_hi;
    w_tight = safe_div tight r_hi;
    failure = None;
  }

let run_one_cluster rng profile ~grid ~eps ~delta ~beta ~t ~r_hi idx =
  let result, time_ms =
    time (fun () ->
        Privcluster.One_cluster.run_indexed rng profile ~grid ~eps ~delta ~beta ~t idx)
  in
  match result with
  | Error f ->
      let reason = Format.asprintf "%a" Privcluster.One_cluster.pp_failure f in
      (failed ~time_ms reason, None)
  | Ok r ->
      ( score_center ~idx ~t ~r_hi ~time_ms ~center:r.Privcluster.One_cluster.center
          ~radius:r.Privcluster.One_cluster.radius,
        Some r )

let median_scores scores =
  let ok = List.filter (fun s -> s.failure = None) scores in
  let failures = List.length scores - List.length ok in
  let med f = Metrics.median (List.map f ok) in
  let medi f = int_of_float (Float.round (Metrics.median (List.map (fun s -> float_of_int (f s)) ok))) in
  match ok with
  | [] -> failed ~time_ms:(Metrics.median (List.map (fun s -> s.time_ms) scores)) "all trials failed"
  | s0 :: _ ->
      {
        time_ms = med (fun s -> s.time_ms);
        center = s0.center;
        radius = med (fun s -> s.radius);
        covered = medi (fun s -> s.covered);
        delta_measured = medi (fun s -> s.delta_measured);
        w_private = med (fun s -> s.w_private);
        w_tight = med (fun s -> s.w_tight);
        failure = (if failures = 0 then None else Some (Printf.sprintf "%d/%d failed" failures (List.length scores)));
      }
