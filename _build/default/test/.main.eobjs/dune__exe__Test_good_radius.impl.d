test/test_good_radius.ml: Alcotest Array Geometry List Printf Privcluster Testutil Workload
