(** Local-model 1-cluster in the style of Nissim–Stemmer 2017
    ("Clustering Algorithms for the Centralized and Local Models",
    arXiv:1707.04766).

    Each user holds one point of the database and sends the server a
    {e single} ε-LDP report: the index of their histogram cell, passed
    through [k]-ary randomized response.  Everything after that is
    server-side post-processing, so the whole pipeline is [(ε, 0)]-DP in
    the local model (which implies the same in the central model).

    The server runs a multi-scale heavy-cell search: users are split
    round-robin across a ladder of dyadic grids (cell side 1/2, 1/4, …),
    each group reports its cell at its own scale with the {e full} ε
    (disjoint users — parallel composition), the per-scale histograms are
    debiased into unbiased count estimates, and the finest scale whose
    best 2^d-cell block clears [t] minus a Hoeffding slack — among the
    scales whose certificate is non-vacuous (twice the slack below [t]),
    so a noisy fine scale can never win with a ball that promises
    nothing — wins.  The
    released ball is that block's circumscribed ball, so the radius is
    [O(cell side · √d)] — the local model pays an [Ω(√n/ε)] additive
    count error per cell where the centralized pipeline pays [O(1/ε)]
    (polylog factors aside), which is exactly the crossover experiment
    E1 measures.

    Every user's reports are drawn from {!Prim.Rng.derive}d streams keyed
    by the user index, so an engine retry replays the identical
    randomizer transcript charge-free. *)

type scale = {
  cells_per_axis : int;  (** [2^l] dyadic cells per axis. *)
  cell_side : float;  (** [1 / cells_per_axis]. *)
  cells : int;  (** [cells_per_axis^d] histogram buckets. *)
  group_size : int;  (** Users assigned to this scale. *)
  slack : float;
      (** High-probability bound on the block-estimate error at this scale
          (randomized-response noise + group-extrapolation error). *)
}

type result = {
  center : Geometry.Vec.t;  (** Center of the winning cell block. *)
  radius : float;  (** [cell_side · √d] — the block's circumscribed ball. *)
  t_requested : int;
  est_count : float;  (** Debiased estimate of the points in the block. *)
  delta_bound : float;
      (** With probability ≥ 1 − β the released ball misses at most this
          many of the [est_count] estimated points (twice the scale's
          slack: one for selection, one for realization). *)
  scale_index : int;  (** Index into [scales] of the winning scale. *)
  scales : scale array;  (** The whole ladder, coarse to fine. *)
}

type failure =
  | Not_enough_mass of { best : float; needed : float }
      (** No scale's best block cleared [t] minus its slack; [best] is the
          largest debiased block estimate seen, [needed] the smallest
          threshold it failed. *)
  | All_certificates_vacuous of { t : int; min_delta : float }
      (** Every scale's certified loss (twice its slack) reaches [t], so no
          released ball could promise any coverage: the database is too
          small for this [ε] — the local model's [Ω(√n/ε)] floor. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_result : Format.formatter -> result -> unit

(** {1 The local randomizer}

    The only data-dependent message in the protocol, hence the whole
    privacy barrier.  [k]-ary randomized response keeps the true cell
    with probability [e^ε / (e^ε + k − 1)] and otherwise reports one of
    the [k − 1] other cells uniformly; each report is [(ε, 0)]-LDP. *)

val p_keep : eps:float -> k:int -> float
(** [e^ε / (e^ε + k − 1)], the probability the true cell is reported. *)

val p_other : eps:float -> k:int -> float
(** [1 / (e^ε + k − 1)], the probability of any specific other cell.
    [p_keep / p_other = e^ε] exactly. *)

val randomize : Prim.Rng.t -> eps:float -> k:int -> int -> int
(** One user's report.  @raise Invalid_argument unless [0 ≤ cell < k] and
    [k ≥ 2] and [eps > 0]. *)

val law : eps:float -> k:int -> cell:int -> float array
(** The exact output law of {!randomize}: [p_keep] at [cell], [p_other]
    elsewhere.  Sums to 1 exactly (the two closed forms share one
    denominator); the verification harness's chi-square tester compares
    empirical report counts against this. *)

val debias : eps:float -> k:int -> n:int -> int array -> float array
(** The unbiased histogram estimator: cell [j] of the reported counts
    maps to [(count_j − n·p_other) / (p_keep − p_other)].  For any report
    vector summing to [n] the estimates sum to exactly [n] (the estimator
    is the linear inverse of the randomizer's expectation operator), and
    [E (debias (reports))] equals the true histogram — both are
    property-tested. *)

val plan :
  grid:Geometry.Grid.t -> eps:float -> ?beta:float -> ?max_cells:int -> n:int -> unit -> scale array
(** The scale ladder {!run} will use for an [n]-user database on this
    grid: dyadic scales, coarse to fine, while the bucket count stays
    ≤ [max_cells] (default 4096) and the cell side stays above the grid
    resolution.  Exposed so experiments and benchmarks can report the
    ladder. *)

val run :
  Prim.Rng.t ->
  grid:Geometry.Grid.t ->
  eps:float ->
  ?beta:float ->
  ?max_cells:int ->
  t:int ->
  Geometry.Pointset.t ->
  (result, failure) Stdlib.result
(** [(ε, 0)]-DP in the local model.  [beta] (default 0.1) sets the
    high-probability slack used both to pick the winning scale and in the
    reported [delta_bound].
    @raise Invalid_argument if [t ≤ 0], the pointset dimension disagrees
    with the grid, or even the coarsest scale exceeds [max_cells]. *)
