type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let rec emit buf ~indent ~depth v =
  let pad d = if indent then Buffer.add_string buf (String.make (2 * d) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_nan x || Float.abs x = Float.infinity then Buffer.add_string buf "null"
      else Buffer.add_string buf (Printf.sprintf "%.12g" x)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          emit buf ~indent ~depth:(depth + 1) item)
        items;
      nl ();
      pad depth;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (depth + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if indent then "\": " else "\":");
          emit buf ~indent ~depth:(depth + 1) item)
        fields;
      nl ();
      pad depth;
      Buffer.add_char buf '}'

let to_string ?(indent = true) v =
  let buf = Buffer.create 256 in
  emit buf ~indent ~depth:0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* --- parsing ------------------------------------------------------------

   A plain recursive-descent parser for the subset of JSON the emitter
   above produces (which is all of standard JSON).  Numbers that look like
   OCaml ints parse to [Int], everything else to [Float]; [\uXXXX] escapes
   are decoded to UTF-8 (surrogate pairs included). *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let add_utf8 buf code =
    if code < 0x80 then Buffer.add_char buf (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else if code < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "unterminated escape"
          | Some c ->
              advance ();
              (match c with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'u' ->
                  let c1 = hex4 () in
                  if c1 >= 0xD800 && c1 <= 0xDBFF then begin
                    (* High surrogate: a low surrogate must follow. *)
                    if
                      !pos + 2 <= n
                      && s.[!pos] = '\\'
                      && s.[!pos + 1] = 'u'
                    then begin
                      pos := !pos + 2;
                      let c2 = hex4 () in
                      if c2 >= 0xDC00 && c2 <= 0xDFFF then
                        add_utf8 buf
                          (0x10000 + ((c1 - 0xD800) lsl 10) + (c2 - 0xDC00))
                      else fail "invalid low surrogate"
                    end
                    else fail "lone high surrogate"
                  end
                  else add_utf8 buf c1
              | c -> fail (Printf.sprintf "invalid escape \\%c" c));
              go ()
          )
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | _ -> ()
    in
    let int_start = !pos in
    digits ();
    (* JSON forbids leading zeros: 0 is fine, 01 is not. *)
    if !pos - int_start = 0 then fail "malformed number";
    if !pos - int_start > 1 && s.[int_start] = '0' then fail "leading zero in number";
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if text = "" || text = "-" then fail "malformed number";
    if !is_float then Float (float_of_string text)
    else match int_of_string_opt text with Some i -> Int i | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) -> Error (Printf.sprintf "at offset %d: %s" p msg)

(* --- accessors ----------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_list = function List l -> Some l | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_int = function Int i -> Some i | _ -> None
let to_str = function String s -> Some s | _ -> None
