(** Finite point sets in R^d with the counting machinery of Section 3.1,
    stored flat.

    For a database [S = (x_1 … x_n)], a center [p] and radius [r ≥ 0], the
    paper defines
    - [B_r(p, S)]  — the number of input points in the ball of radius [r]
      around [p];
    - [B̄_r(p, S) = min(B_r(p, S), t)] — the same count capped at the target
      cluster size [t];
    - [L(r, S) = (1/t)·max over distinct i_1…i_t of Σ B̄_r(x_{i_j}, S)] — the
      average of the [t] largest capped counts over balls centered at input
      points.

    [L(·, S)] is non-decreasing in [r] and has sensitivity 2 (Lemma 4.5);
    both facts are property-tested in [test/test_pointset.ml].

    {b Memory layout.}  A pointset owns a single row-major [float array] of
    length n·d; point [i] is the row at {!row_offset}[ t i].  {!subset} and
    {!filter} return index {e views} sharing that storage; {!point} and
    {!points} return fresh copies, so callers can never mutate the backing
    store through them.  The raw store is reachable via {!storage} /
    {!row_offsets} for flat-path kernels (k-d tree, JL, SEB, NoisyAVG) and
    is read-only by contract — see DESIGN.md, "Memory layout".

    An optional {!index} precomputes, for every input point, the sorted
    array of distances to all input points, turning each [L] evaluation
    into [n] binary searches instead of an O(n²·d) scan. *)

type t

val create : Vec.t array -> t
(** Packs the boxed points into fresh flat storage.
    @raise Invalid_argument on an empty array or mixed dimensions. *)

val of_storage : dim:int -> float array -> t
(** Adopts an existing row-major store of length n·d (not copied; the
    caller must not mutate it afterwards).
    @raise Invalid_argument if empty or not a multiple of [dim]. *)

val view : storage:float array -> offs:int array -> dim:int -> t
(** A view selecting the rows at [offs] (element offsets, in point order)
    of an existing store.  [offs] is copied, [storage] shared; rows need
    not be contiguous, in order, or cover the store — this is how the
    epoch-versioned registry presents a slice of its append-only arena.
    Referenced rows are read-only by contract; elements of [storage] {e
    outside} every referenced row may be written freely (an arena append
    is invisible to live views).
    @raise Invalid_argument if [offs] is empty or any row falls outside
    the store. *)

val n : t -> int
val dim : t -> int

val point : t -> int -> Vec.t
(** A fresh copy of point [i]. *)

val points : t -> Vec.t array
(** Fresh copies of all points (O(n·d) allocation; mutating the result
    never affects the pointset). *)

val storage : t -> float array
(** The shared backing store — read-only by contract.  Row [i] of this
    pointset starts at [row_offset t i]; a view's rows need not be
    contiguous or in storage order. *)

val row_offset : t -> int -> int
val row_offsets : t -> int array
(** Element offsets of every row, aligned with point indices — read-only
    by contract (shared with the pointset and any k-d tree built on it). *)

val coords_axis : t -> int -> float array
(** Coordinate [axis] of every point, in point order (one flat pass).
    @raise Invalid_argument if the axis is out of range. *)

val map_points : (Vec.t -> Vec.t) -> t -> t
(** Applies [f] to a copy of each point and packs the results into a new
    pointset (fresh storage). *)

val filter : (Vec.t -> bool) -> t -> t
(** Index view of the points satisfying the predicate (which receives a
    fresh copy per point); shares storage, may be empty. *)

val filter_rows : (float array -> int -> bool) -> t -> t
(** Allocation-free filter: the predicate receives [(storage, offset)]. *)

val subset : t -> indices:int array -> t
(** Zero-copy view selecting [indices] in order (duplicates allowed). *)

val ball_count : t -> center:Vec.t -> radius:float -> int
(** [B_r(center, S)] — one flat O(n·d) pass, no allocation. *)

val ball_points : t -> center:Vec.t -> radius:float -> Vec.t array
(** Fresh copies of the points realizing {!ball_count}. *)

val capped_ball_count : t -> cap:int -> center:Vec.t -> radius:float -> int
(** [B̄_r]. *)

val score_l_direct : t -> cap:int -> radius:float -> float
(** [L(radius, S)] computed by brute force (O(n²·d)); reference
    implementation used by tests and fine for small inputs. *)

(** {1 Indexed evaluation} *)

type index
(** Either backend below; all query functions dispatch transparently. *)

val build_index : ?domains:int -> t -> index
(** Dense backend: O(n²·d) time, O(n²) memory — precomputes per-point
    sorted distance arrays in one pass over the flat storage, making every
    radius probe a batch of binary searches.  The fastest choice up to a
    few thousand points.  [domains > 1] splits the row construction across
    that many OCaml domains; rows are independent, so the result is
    identical for any value. *)

val build_tree_index : ?domains:int -> t -> index
(** k-d-tree backend ({!Kdtree}): O(n log n) memory-light construction
    sharing the pointset's storage (zero copy); each radius probe costs n
    tree queries.  The scalable choice for large [n] (and the only
    reasonable one beyond ~10⁴ points).  [domains > 1] parallelizes the
    build (see {!Kdtree.build_flat}); the tree is bit-identical to the
    serial one. *)

val auto_index : ?dense_threshold:int -> ?domains:int -> t -> index
(** Dense when [n <= dense_threshold] (default 4096), tree otherwise. *)

val index_is_dense : index -> bool

val index_pointset : index -> t

val index_tree : index -> Kdtree.t option
(** The k-d tree behind a tree-backed index ([None] on the dense backend)
    — the registry reads it to maintain the tree incrementally across
    epochs. *)

val index_of_tree : t -> Kdtree.t -> index
(** Wrap an externally maintained tree (see {!Kdtree.insert_bulk} /
    {!Kdtree.remove_bulk}) as the index of [ps].  The tree must hold
    exactly [ps]'s points (same storage, same rows).
    @raise Invalid_argument if the sizes disagree. *)

val counts_within : index -> radius:float -> int array
(** For every input point, the number of input points within [radius]
    (inclusive); one binary search per point. *)

val score_l : index -> cap:int -> radius:float -> float
(** [L(radius, S)] via the index: per-point counts, cap at [cap], average the
    [cap] largest. *)

val score_l_many : index -> cap:int -> radii:float array -> float array
(** [Array.map (fun r -> score_l idx ~cap ~radius:r) radii], computed in
    one batched pass when [radii] is ascending (the candidate grids are):
    each dense row answers all radii with shared binary searches, each
    tree point answers all radii in one multi-radius traversal
    ({!Kdtree.count_within_row_many}), and the capped top-[cap] average
    runs on a counting histogram.  Results are bit-identical to the
    per-radius path (exact integer counts; top-k sums below 2^53).  This
    is GoodRadius's candidate sweep on the RecConcave backend. *)

val kth_neighbor_distance : index -> k:int -> int -> float
(** [kth_neighbor_distance idx ~k i] — distance from point [i] to its
    [k]-th nearest input point, counting the point itself as the 1st
    (so [k = t] gives the radius of the smallest ball centered at [x_i]
    containing [t] points).  O(1) on the dense backend; on the tree
    backend it bisects the radius (exact: the count is a step function and
    the bisection brackets its jump to machine precision).
    @raise Invalid_argument if [k > n]. *)

val top_average : float array -> k:int -> float
(** Mean of the [k] largest entries (used by {!score_l}; exposed for tests).
    @raise Invalid_argument if [k <= 0] or [k] exceeds the length. *)
