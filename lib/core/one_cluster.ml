type failure = Center_failure of Good_center.failure | Zero_cluster_not_found

type result = {
  center : Geometry.Vec.t;
  radius : float;
  t_requested : int;
  delta_bound : float;
  radius_stage : Good_radius.result;
  center_stage : Good_center.success option;
}

let pp_failure ppf = function
  | Center_failure f -> Format.fprintf ppf "center stage: %a" Good_center.pp_failure f
  | Zero_cluster_not_found -> Format.fprintf ppf "zero-radius cluster not re-found"

let pp_result ppf r =
  Format.fprintf ppf "{center=%a; radius=%.4f; t=%d; delta<=%.1f; radius_stage=%a%a}"
    Geometry.Vec.pp r.center r.radius r.t_requested r.delta_bound Good_radius.pp_result
    r.radius_stage
    (fun ppf -> function
      | None -> Format.fprintf ppf "; zero-path"
      | Some c -> Format.fprintf ppf "; center_stage=%a" Good_center.pp_success c)
    r.center_stage

let center_stage_loss (profile : Profile.t) ~eps ~beta ~n =
  let eps_c = eps /. 2. in
  let rounds = Profile.rounds profile ~n ~beta in
  let sv = Prim.Sparse_vector.accuracy_bound ~eps:(eps_c /. 4.) ~k:rounds ~beta in
  let hist = Prim.Stability_hist.utility_loss ~eps:(eps_c /. 4.) ~n ~beta in
  (2. *. sv) +. hist

let run_indexed rng (profile : Profile.t) ~grid ~eps ~delta ~beta ~t index =
  (* End-to-end span.  Deliberately uncharged: its attribution is the sum
     of its stage children — GoodRadius at (ε/2, δ/2) plus either
     GoodCenter at (ε/2, δ/2) or the zero-path histogram at (ε/2, δ/2) —
     which totals exactly (ε, δ). *)
  Obs.Span.with_span ~cat:"stage"
    ~attrs:(fun () -> [ ("t", Obs.Span.I t); ("eps", Obs.Span.F eps); ("delta", Obs.Span.F delta) ])
    "one_cluster"
  @@ fun () ->
  let ps = Geometry.Pointset.index_pointset index in
  let n = Geometry.Pointset.n ps in
  (* The zero path is completed by a stability-histogram query at
     (ε/2, δ/2); only let the shortcut fire when that query can succeed. *)
  let zero_floor =
    Prim.Stability_hist.utility_requirement ~eps:(eps /. 2.) ~delta:(delta /. 2.)
      ~n:(Geometry.Pointset.n ps) ~beta
  in
  let radius_stage =
    Good_radius.run rng profile ~grid ~eps:(eps /. 2.) ~delta:(delta /. 2.) ~beta ~t ~zero_floor
      index
  in
  let loss = radius_stage.Good_radius.delta_bound +. center_stage_loss profile ~eps ~beta ~n in
  if radius_stage.Good_radius.zero_shortcut || radius_stage.Good_radius.radius = 0. then begin
    (* Radius 0 (via the step-2 shortcut or the search itself landing on
       candidate 0): some exact grid point is heavy; one histogram query
       finds it.  The histogram is keyed on snapped flat rows — same keys
       in the same order as snapping boxed points. *)
    let st = Geometry.Pointset.storage ps and offs = Geometry.Pointset.row_offsets ps in
    match
      Prim.Stability_hist.select_by rng ~eps:(eps /. 2.) ~delta:(delta /. 2.)
        ~key:(fun i -> Geometry.Grid.snap_row grid st ~off:offs.(i))
        (Array.init n Fun.id)
    with
    | Some cell ->
        Ok
          {
            center = cell.Prim.Stability_hist.key;
            radius = 0.;
            t_requested = t;
            delta_bound = loss;
            radius_stage;
            center_stage = None;
          }
    | None -> Error Zero_cluster_not_found
  end
  else begin
    match
      Good_center.run_ps rng profile ~eps:(eps /. 2.) ~delta:(delta /. 2.) ~beta ~t
        ~radius:radius_stage.Good_radius.radius ps
    with
    | Error f -> Error (Center_failure f)
    | Ok success ->
        (* Clamping the center to the domain cube is post-processing and can
           only help: every input point is inside the cube, so projecting
           the center onto it never increases any point's distance to it. *)
        let clamped =
          Array.map (fun c -> Float.max 0. (Float.min 1. c)) success.Good_center.center
        in
        Ok
          {
            center = clamped;
            radius = success.Good_center.private_radius;
            t_requested = t;
            delta_bound = loss;
            radius_stage;
            center_stage = Some success;
          }
  end

let run_ps rng profile ~grid ~eps ~delta ~beta ~t ps =
  run_indexed rng profile ~grid ~eps ~delta ~beta ~t (Geometry.Pointset.build_index ps)

let run rng profile ~grid ~eps ~delta ~beta ~t points =
  run_ps rng profile ~grid ~eps ~delta ~beta ~t (Geometry.Pointset.create points)

let budget_breakdown (profile : Profile.t) ~eps ~delta ~d =
  ignore profile;
  let er = eps /. 2. in
  let ec = eps /. 2. and dc = delta /. 2. in
  let df = float_of_int d in
  (* The d per-axis histograms each run at (eps_c/(10*sqrt(d*ln(8/delta_c))),
     delta_c/(8d)); report their advanced-composition total, which
     Lemma 4.11 bounds by (eps_c/4, delta_c/4). *)
  let eps_axis = ec /. (10. *. sqrt (df *. log (8. /. dc))) in
  let axes_total =
    Prim.Composition.advanced
      (Prim.Dp.v ~eps:eps_axis ~delta:(dc /. (8. *. df)))
      ~k:d
      ~delta':(dc /. 8.)
  in
  [
    ("good-radius/zero-test (Laplace)", Prim.Dp.pure ~eps:(er /. 2.));
    ("good-radius/search (RecConcave or binary search)", Prim.Dp.pure ~eps:(er /. 2.));
    ("good-center/above-threshold", Prim.Dp.pure ~eps:(ec /. 4.));
    ("good-center/box-histogram", Prim.Dp.v ~eps:(ec /. 4.) ~delta:(dc /. 4.));
    (Printf.sprintf "good-center/%d-axis-histograms (advanced comp.)" d, axes_total);
    ("good-center/noisy-average", Prim.Dp.v ~eps:(ec /. 4.) ~delta:(dc /. 4.));
  ]

let recommended_min_t (profile : Profile.t) ~grid ~eps ~delta ~beta ~n =
  let radius_delta =
    (4. *. Good_radius.gamma profile ~grid ~eps:(eps /. 2.) ~delta:(delta /. 2.) ~beta)
    +. (8. /. eps *. log (2. /. beta))
  in
  let eps_c = eps /. 2. in
  let hist_req =
    Prim.Stability_hist.utility_requirement ~eps:(eps_c /. 4.) ~delta:(delta /. 8.) ~n ~beta
  in
  let navg_offset = 2. /. (eps_c /. 4.) *. log (2. /. (delta /. 8.)) in
  radius_delta +. center_stage_loss profile ~eps ~beta ~n +. hist_req +. navg_offset
