test/test_workload.ml: Array Filename Float Geometry List Prim Sys Testutil Workload
