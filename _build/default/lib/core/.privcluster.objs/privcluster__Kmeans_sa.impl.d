lib/core/kmeans_sa.ml: Array Geometry Prim Sample_aggregate
