test/testutil.ml: Alcotest Array Float Geometry Prim QCheck2 QCheck_alcotest Workload
