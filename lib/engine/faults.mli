(** Deterministic fault injection for the batch engine.

    Every failure path of {!Pool} and {!Service} — a job raising, a job
    stalling past its deadline, a worker domain dying — is reachable on
    demand through a fault {e schedule}: a pure function from (job
    submission index, attempt number) to an optional fault.  Schedules
    are deterministic by construction, so a CI run under
    [PRIVCLUSTER_FAULTS] reproduces exactly, and the engine's central
    robustness claim — crash-before-output faults change neither batch
    outputs nor the accountant's final spend — is testable as a plain
    diff (see [test/test_faults.ml]).

    Faults are armed {e before} the job's solver draws any randomness
    ({!Service} calls {!arm} ahead of the mechanism invocation), so an
    injected crash or kill always models a {e crash before output}: the
    retry replays the same derived RNG stream and is bit-identical to an
    uninterrupted run.  Post-output failures are deliberately not
    injectable — they would require refund semantics the engine refuses
    to have (see DESIGN.md §7).

    {2 Schedule grammar}

    [parse] (also read from the [PRIVCLUSTER_FAULTS] environment variable
    by {!of_env}) accepts either form, comma-separated:

    - {b explicit} — [kind@INDEX[=ARG][xATTEMPTS]] rules, e.g.
      ["crash@2,stall@5=0.25,kill@7x3"]: job 2 crashes on its first
      attempt, job 5 stalls 0.25 s on its first attempt, job 7's worker
      is killed on its first three attempts.
    - {b seeded} — ["seed=S,rate=R[,kinds=crash+kill][,attempts=N]"]:
      each job index faults independently with probability [R], decided
      by a SplitMix64-derived stream of [(S, index)] — the same schedule
      for the same seed, whatever the batch or domain count.  Seeded
      schedules only emit [crash]/[kill] (the replayable kinds), so a
      test suite stays green under any seed as long as retries ≥
      [attempts]. *)

type kind =
  | Crash  (** The job raises {!Injected} before producing output. *)
  | Stall of float
      (** The job sleeps this many seconds before running — long enough,
          it blows its cooperative deadline. *)
  | Kill_worker  (** The job raises {!Pool.Worker_crash}: its worker domain dies. *)

val kind_name : kind -> string
(** ["crash"], ["stall"], ["kill"]. *)

type rule = { kind : kind; attempts : int }
(** Fires while the job's attempt number is [< attempts]. *)

val rule : ?attempts:int -> kind -> rule
(** [attempts] defaults to 1 (first attempt only — the retry succeeds). *)

type t
(** A fault schedule. *)

exception Injected of string
(** What {!Crash} raises; the message names the job index and attempt. *)

val none : t
(** The empty schedule ({!arm} is a no-op). *)

val is_none : t -> bool

val explicit : (int * rule) list -> t
(** Schedule keyed by job submission index.  Later duplicates win.
    @raise Invalid_argument on a negative index or non-positive attempts. *)

val seeded : ?attempts:int -> ?kinds:kind list -> seed:int -> rate:float -> unit -> t
(** Random-looking but fully deterministic schedule; [kinds] defaults to
    [[Crash; Kill_worker]], [attempts] to 1.
    @raise Invalid_argument if [rate ∉ [0, 1]], [attempts ≤ 0] or [kinds = []]. *)

val lookup : t -> index:int -> attempt:int -> kind option
(** The fault (if any) for attempt [attempt] of job [index].  Pure.
    @raise Invalid_argument on negative arguments. *)

val arm : t -> index:int -> attempt:int -> unit
(** Act on {!lookup}: raise {!Injected}, sleep, raise
    {!Pool.Worker_crash}, or do nothing. *)

val parse : string -> (t, string) result
(** Parse the grammar above.  [""] and ["none"] parse to {!none}. *)

val to_string : t -> string
(** Render back to the grammar ([parse]-roundtrippable). *)

val env_var : string
(** ["PRIVCLUSTER_FAULTS"]. *)

val of_env : unit -> t
(** Parse {!env_var} from the environment; {!none} when unset or empty.
    @raise Invalid_argument when set but malformed (a typo'd schedule
    must not silently run fault-free). *)
