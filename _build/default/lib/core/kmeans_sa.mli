(** Differentially private k-means via sample and aggregate — the
    application [NRS07] built and the paper's Section 1.1/6 motivates.

    Each data block is clustered with off-the-shelf (non-private) Lloyd's
    k-means; a block's [k] centers, in canonical order, form one point of
    R^{k·d}, and the 1-cluster aggregator locates the stable point of those
    outputs — which {!unflatten}s back into [k] private centers.  Privacy
    is inherited entirely from Algorithm 4 ({!Sample_aggregate}); Lloyd
    never sees more than one block.

    When the data really is a mixture of [k] separated clusters, block
    outputs concentrate (up to the canonical ordering) and the stable point
    is close to the true centers — measured in the k-means example and
    test-suite.  When they do not concentrate, the aggregation fails
    loudly ([Error]), which is the honest outcome. *)

type result = {
  centers : Geometry.Vec.t array;  (** [k] private centers. *)
  stable_radius : float;  (** The aggregator's radius in R^{k·d}. *)
  sa : Sample_aggregate.result;  (** Full aggregation detail. *)
}

val run :
  Prim.Rng.t ->
  Profile.t ->
  axis_size:int ->
  eps:float ->
  delta:float ->
  beta:float ->
  k:int ->
  block_size:int ->
  alpha:float ->
  Geometry.Vec.t array ->
  (result, One_cluster.failure) Stdlib.result
(** [run rng profile ~axis_size ~eps ~delta ~beta ~k ~block_size ~alpha
    points] — data must lie in the unit cube; the aggregation grid is
    [X^{k·d}] with the given axis size.  [(ε, δ)]-DP (further amplified by
    the subsampling, {!Sample_aggregate.amplified}). *)
