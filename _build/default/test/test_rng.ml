(* Samplers: distributional statistics, determinism, and edge cases. *)

open Testutil

let n_samples = 40_000

let test_seed_of () =
  let a = Prim.Rng.create ~seed:99 () in
  Testutil.check_int "seed recorded" 99 (Prim.Rng.seed_of a)

let test_determinism () =
  let a = Prim.Rng.create ~seed:5 () and b = Prim.Rng.create ~seed:5 () in
  for _ = 1 to 100 do
    check_float "same stream" (Prim.Rng.float a 1.0) (Prim.Rng.float b 1.0)
  done;
  let c = Prim.Rng.create ~seed:6 () in
  let diff = ref false in
  for _ = 1 to 20 do
    if Prim.Rng.float a 1.0 <> Prim.Rng.float c 1.0 then diff := true
  done;
  check_true "different seeds differ" !diff

let test_copy_and_split () =
  let a = rng () in
  let b = Prim.Rng.copy a in
  check_float "copy replays" (Prim.Rng.float a 1.0) (Prim.Rng.float b 1.0);
  let c = Prim.Rng.split a in
  let matching = ref 0 in
  for _ = 1 to 50 do
    if Prim.Rng.float a 1.0 = Prim.Rng.float c 1.0 then incr matching
  done;
  check_true "split stream diverges" (!matching < 5)

let test_uniform_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let x = Prim.Rng.uniform r ~lo:2.0 ~hi:3.5 in
    check_in_range "uniform in range" ~lo:2.0 ~hi:3.5 x
  done

let test_gaussian_stats () =
  let r = rng () in
  let samples = Array.init n_samples (fun _ -> Prim.Rng.gaussian r ~mu:1.5 ~sigma:2.0 ()) in
  let mean, var = stats samples in
  check_float ~tol:0.05 "gaussian mean" 1.5 mean;
  check_float ~tol:0.15 "gaussian variance" 4.0 var

let test_gaussian_zero_sigma () =
  let r = rng () in
  check_float "sigma 0 is deterministic" 3.0 (Prim.Rng.gaussian r ~mu:3.0 ~sigma:0.0 ())

let test_laplace_stats () =
  let r = rng () in
  let scale = 1.7 in
  let samples = Array.init n_samples (fun _ -> Prim.Rng.laplace r ~scale ()) in
  let mean, var = stats samples in
  check_float ~tol:0.05 "laplace mean" 0.0 mean;
  (* Var(Lap(b)) = 2 b^2. *)
  check_float ~tol:0.3 "laplace variance" (2. *. scale *. scale) var

let test_laplace_median_shift () =
  let r = rng () in
  let samples = Array.init n_samples (fun _ -> Prim.Rng.laplace r ~mu:5.0 ~scale:1.0 ()) in
  Array.sort compare samples;
  check_float ~tol:0.05 "laplace median = mu" 5.0 samples.(n_samples / 2)

let test_exponential_stats () =
  let r = rng () in
  let rate = 2.5 in
  let samples = Array.init n_samples (fun _ -> Prim.Rng.exponential r ~rate) in
  let mean, _ = stats samples in
  check_float ~tol:0.02 "exponential mean" (1. /. rate) mean;
  Array.iter (fun x -> check_true "exponential non-negative" (x >= 0.)) samples

let test_gumbel_location () =
  let r = rng () in
  let samples = Array.init n_samples (fun _ -> Prim.Rng.gumbel r ~scale:1.0) in
  let mean, _ = stats samples in
  (* E[Gumbel(0,1)] = Euler-Mascheroni. *)
  check_float ~tol:0.05 "gumbel mean" 0.5772156649 mean

let test_bernoulli () =
  let r = rng () in
  let hits = ref 0 in
  for _ = 1 to n_samples do
    if Prim.Rng.bernoulli r ~p:0.3 then incr hits
  done;
  check_float ~tol:0.02 "bernoulli rate" 0.3 (float_of_int !hits /. float_of_int n_samples);
  check_true "p=0 never" (not (Prim.Rng.bernoulli r ~p:0.0));
  check_true "p=1 always" (Prim.Rng.bernoulli r ~p:1.0);
  check_true "p clamped above 1" (Prim.Rng.bernoulli r ~p:7.0)

let test_int_range () =
  let r = rng () in
  let seen = Array.make 7 0 in
  for _ = 1 to 7000 do
    let i = Prim.Rng.int r 7 in
    seen.(i) <- seen.(i) + 1
  done;
  Array.iteri (fun i c -> check_true (Printf.sprintf "bucket %d hit" i) (c > 700)) seen

let test_categorical () =
  let r = rng () in
  let weights = [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  for _ = 1 to 20_000 do
    let i = Prim.Rng.categorical r ~weights in
    counts.(i) <- counts.(i) + 1
  done;
  check_int "zero-weight never sampled" 0 counts.(1);
  check_float ~tol:0.02 "weight ratio" 0.25 (float_of_int counts.(0) /. 20_000.)

let test_categorical_log_matches () =
  let r = rng () in
  (* Huge log-weights must not overflow, and the argmax weight dominates. *)
  let log_weights = [| 1000.; 980.; 900. |] in
  let hits = ref 0 in
  for _ = 1 to 500 do
    if Prim.Rng.categorical_log r ~log_weights = 0 then incr hits
  done;
  check_true "dominant log-weight wins" (!hits > 495)

let test_shuffle_is_permutation () =
  let r = rng () in
  let a = Array.init 50 (fun i -> i) in
  Prim.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Array.iteri (fun i x -> check_int "permutation" i x) sorted

let test_sample_without_replacement () =
  let r = rng () in
  let a = Array.init 30 (fun i -> i) in
  let s = Prim.Rng.sample_without_replacement r ~k:10 a in
  check_int "k elements" 10 (Array.length s);
  let tbl = Hashtbl.create 10 in
  Array.iter
    (fun x ->
      check_true "distinct" (not (Hashtbl.mem tbl x));
      Hashtbl.add tbl x ())
    s

let test_sample_with_replacement () =
  let r = rng () in
  let s = Prim.Rng.sample_with_replacement r ~k:100 [| 1; 2; 3 |] in
  check_int "k elements" 100 (Array.length s);
  Array.iter (fun x -> check_true "member" (x >= 1 && x <= 3)) s

let test_gaussian_vector () =
  let r = rng () in
  let v = Prim.Rng.gaussian_vector r ~dim:10_000 ~sigma:3.0 in
  let mean, var = stats v in
  check_float ~tol:0.12 "vector mean" 0.0 mean;
  check_float ~tol:0.5 "vector variance" 9.0 var

let suite =
  [
    case "seed recorded" test_seed_of;
    case "determinism by seed" test_determinism;
    case "copy and split" test_copy_and_split;
    case "uniform bounds" test_uniform_bounds;
    case "gaussian statistics" test_gaussian_stats;
    case "gaussian sigma=0" test_gaussian_zero_sigma;
    case "laplace statistics" test_laplace_stats;
    case "laplace median shift" test_laplace_median_shift;
    case "exponential statistics" test_exponential_stats;
    case "gumbel location" test_gumbel_location;
    case "bernoulli" test_bernoulli;
    case "int range" test_int_range;
    case "categorical" test_categorical;
    case "categorical log stability" test_categorical_log_matches;
    case "shuffle is a permutation" test_shuffle_is_permutation;
    case "sample without replacement" test_sample_without_replacement;
    case "sample with replacement" test_sample_with_replacement;
    case "gaussian vector" test_gaussian_vector;
  ]
