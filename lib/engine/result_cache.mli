(** Budget-aware result caching: repeated identical queries are free in
    wall-clock {e and} privacy budget.

    An entry is keyed on [(dataset, epoch, job signature, derived seed)].
    Under a fixed key, re-executing the job would replay the same
    mechanism on the same data with the same noise stream and produce a
    bit-identical output — so a hit returns the recorded answer without
    touching the accountant: releasing the same value twice is
    post-processing, not a second query (see DESIGN.md §10).  Any change
    to the data (a new epoch), the parameters (a new signature), or the
    randomness (a new batch seed / stream) misses and pays the normal
    charge.

    The cache is process-wide mutable state shared by worker domains;
    all operations are mutex-protected. *)

type t

type key = {
  dataset : string;
  epoch : int;  (** {!Registry.epoch} at execution time *)
  signature : string;  (** {!Job.signature} of the spec *)
  seed : int;  (** the batch's resolved base seed *)
  stream : int;  (** RNG stream (submission index, or a standing tick) *)
}

val create : unit -> t

val find : t -> key -> Job.output option
(** Look up and count: a [Some] bumps the dataset's hit counter, a
    [None] its miss counter. *)

val store : t -> key -> Job.output -> unit
(** Record a freshly computed answer and notify subscribers (the server
    journals entries through them).  If the key is already present the
    original entry is kept and no listener fires — by the key discipline
    both outputs are identical, and keeping the first makes WAL replay
    idempotent. *)

val restore : t -> key -> Job.output -> unit
(** [store] minus the listeners — used by WAL replay, which must not
    re-journal the entries it is reading back. *)

val subscribe : t -> (key -> Job.output -> unit) -> unit
(** [f] runs synchronously after each fresh {!store}, in subscription
    order. *)

val size : t -> int

val stats : t -> dataset:string -> int * int
(** [(hits, misses)] for one dataset. *)

val all_stats : t -> (string * int * int) list
(** [(dataset, hits, misses)] rows, sorted by dataset name — the
    exposition's source. *)
