(* Log-bucketed latency histograms with lock-free shards.

   Hot path contract: [observe_ns] performs a handful of
   [Atomic.fetch_and_add] / CAS operations and allocates nothing, so it
   is safe from any domain or systhread concurrently.  All floating
   point lives on the scrape side; the recording side is exact integer
   arithmetic, which is what makes shard merging loss-free. *)

let n_bounds = 52

let bucket_bounds_ns =
  (* 1 µs doubling every two buckets: b_i = round (1000 * 2^(i/2)). *)
  Array.init n_bounds (fun i ->
      let v = 1000. *. Float.pow 2. (float_of_int i /. 2.) in
      int_of_float (Float.round v))

let () =
  (* The quantile scan and merge both assume strict ascent. *)
  for i = 1 to n_bounds - 1 do
    assert (bucket_bounds_ns.(i) > bucket_bounds_ns.(i - 1))
  done

let n_buckets = n_bounds + 1 (* + overflow *)

(* Smallest bucket whose bound is >= v; [n_bounds] for overflow. *)
let bucket_of_ns v =
  if v <= bucket_bounds_ns.(0) then 0
  else if v > bucket_bounds_ns.(n_bounds - 1) then n_bounds
  else begin
    let lo = ref 0 and hi = ref (n_bounds - 1) in
    (* invariant: bounds.(lo) < v <= bounds.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if bucket_bounds_ns.(mid) >= v then hi := mid else lo := mid
    done;
    !hi
  end

type shard = {
  counts : int Atomic.t array;
  s_count : int Atomic.t;
  s_sum : int Atomic.t;
  s_min : int Atomic.t;
  s_max : int Atomic.t;
}

type t = { shards : shard array }

let make_shard () =
  {
    counts = Array.init n_buckets (fun _ -> Atomic.make 0);
    s_count = Atomic.make 0;
    s_sum = Atomic.make 0;
    s_min = Atomic.make max_int;
    s_max = Atomic.make 0;
  }

let create ?(shards = 8) () =
  let shards = max 1 (min 64 shards) in
  { shards = Array.init shards (fun _ -> make_shard ()) }

let rec atomic_min a v =
  let cur = Atomic.get a in
  if v < cur && not (Atomic.compare_and_set a cur v) then atomic_min a v

let rec atomic_max a v =
  let cur = Atomic.get a in
  if v > cur && not (Atomic.compare_and_set a cur v) then atomic_max a v

let observe_ns ?shard t v =
  let v = max 0 v in
  let i =
    match shard with
    | Some s -> s mod Array.length t.shards
    | None -> (Domain.self () :> int) mod Array.length t.shards
  in
  let s = t.shards.(i) in
  ignore (Atomic.fetch_and_add s.counts.(bucket_of_ns v) 1);
  ignore (Atomic.fetch_and_add s.s_count 1);
  ignore (Atomic.fetch_and_add s.s_sum v);
  atomic_min s.s_min v;
  atomic_max s.s_max v

let observe_span_ns t ~start_ns ~stop_ns =
  observe_ns t (Int64.to_int (Int64.sub stop_ns start_ns))

type snapshot = {
  counts : int array;
  count : int;
  sum_ns : int;
  min_ns : int;
  max_ns : int;
}

let empty =
  { counts = Array.make n_buckets 0; count = 0; sum_ns = 0; min_ns = max_int; max_ns = 0 }

let snapshot_shard (s : shard) =
  {
    counts = Array.map Atomic.get s.counts;
    count = Atomic.get s.s_count;
    sum_ns = Atomic.get s.s_sum;
    min_ns = Atomic.get s.s_min;
    max_ns = Atomic.get s.s_max;
  }

let merge a b =
  {
    counts = Array.init n_buckets (fun i -> a.counts.(i) + b.counts.(i));
    count = a.count + b.count;
    sum_ns = a.sum_ns + b.sum_ns;
    min_ns = min a.min_ns b.min_ns;
    max_ns = max a.max_ns b.max_ns;
  }

let snapshot t =
  Array.fold_left (fun acc s -> merge acc (snapshot_shard s)) empty t.shards

let mean_ns s =
  if s.count = 0 then Float.nan else float_of_int s.sum_ns /. float_of_int s.count

let quantile_ns s ~q =
  if s.count = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int s.count in
    (* First bucket whose cumulative count reaches the target rank. *)
    let b = ref 0 and below = ref 0 in
    let stop = ref false in
    while not !stop do
      let here = s.counts.(!b) in
      if (here > 0 && float_of_int (!below + here) >= target) || !b >= n_buckets - 1
      then stop := true
      else begin
        below := !below + here;
        incr b
      end
    done;
    let lo = if !b = 0 then 0. else float_of_int bucket_bounds_ns.(!b - 1) in
    let hi =
      if !b >= n_bounds then Float.max (float_of_int s.max_ns) lo
      else float_of_int bucket_bounds_ns.(!b)
    in
    let here = s.counts.(!b) in
    let frac =
      if here = 0 then 1.
      else Float.max 0. (Float.min 1. ((target -. float_of_int !below) /. float_of_int here))
    in
    let v = lo +. (frac *. (hi -. lo)) in
    (* Clamping to the observed range keeps singletons exact and never
       breaks monotonicity (the clamp bounds are constants in q). *)
    Float.max (float_of_int s.min_ns) (Float.min (float_of_int s.max_ns) v)
  end

let to_prom s =
  {
    Prom.bounds = Array.map (fun b -> float_of_int b /. 1e9) bucket_bounds_ns;
    counts = Array.sub s.counts 0 n_bounds;
    sum = float_of_int s.sum_ns /. 1e9;
    count = s.count;
  }

let default_quantiles = [ 0.5; 0.9; 0.99 ]

let to_json s =
  let buckets =
    List.filter_map
      (fun i ->
        if s.counts.(i) = 0 then None
        else
          let le =
            if i >= n_bounds then max_int else bucket_bounds_ns.(i)
          in
          Some (Json.List [ Json.Int le; Json.Int s.counts.(i) ]))
      (List.init n_buckets Fun.id)
  in
  let qs =
    List.map
      (fun q ->
        ( Printf.sprintf "p%g" (q *. 100.),
          Json.Float (quantile_ns s ~q /. 1e9) ))
      default_quantiles
  in
  Json.Obj
    ([
       ("count", Json.Int s.count);
       ("sum_ns", Json.Int s.sum_ns);
       ("min_ns", Json.Int (if s.count = 0 then 0 else s.min_ns));
       ("max_ns", Json.Int s.max_ns);
     ]
    @ qs
    @ [ ("buckets_ns", Json.List buckets) ])
