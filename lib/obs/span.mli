(** Hierarchical tracing spans with privacy-charge annotations.

    A span is a named, timed interval of work.  Spans nest: within one
    domain the current span is tracked in domain-local storage, so a span
    opened inside another automatically becomes its child; across domains
    (worker fan-out) the parent is passed explicitly by id.  Completed
    spans land in a global, mutex-protected collector from which the
    exporters ({!Trace}, {!Prom}, {!Attribution}) read.

    {2 Cost model}

    Tracing is {b disabled by default}.  Every entry point loads one
    [Atomic] flag and returns immediately when disabled — no clock read,
    no allocation beyond the closure at the call site, no locking.  The
    [attrs] parameters are thunks precisely so that attribute lists are
    never constructed on the disabled path.  Bench B10 gates the cost of
    the disabled path at ≤ 2% of the one-cluster end-to-end time.

    Tracing {b never draws randomness}: enabling it cannot perturb any
    mechanism's output (pinned by [test/test_obs.ml]).

    {2 Privacy charges}

    A span may carry a {!charge} — the (ε, δ) (and/or zCDP ρ) the traced
    work consumed or was budgeted.  Two conventions, both used by the
    pipeline:
    - {e mechanism spans} ({!with_charged} from [Prim]) carry the exact
      parameters the mechanism drew its noise with;
    - {e stage spans} ([Core] phases) carry the stage's budgeted share —
      the (ε, δ) arguments the stage was invoked with.

    {!Attribution} folds these into a per-job total and reconciles it
    against the engine's accountant ledger. *)

type attr = S of string | I of int | F of float | B of bool

type charge = { eps : float; delta : float; rho : float }

val charge : ?rho:float -> eps:float -> delta:float -> unit -> charge

val zero_charge : charge
val add_charges : charge -> charge -> charge

type id = int

type span = {
  id : id;
  parent : id option;
  tid : int;  (** Domain id of the domain that ran the span. *)
  name : string;
  cat : string;
  start_ns : int64;  (** Monotonic ({!Clock.now_ns}). *)
  mutable dur_ns : int64;
  mutable attrs : (string * attr) list;
  mutable label : string option;  (** Budget-attribution key (job id). *)
  mutable span_charge : charge option;
}

(** {2 Switch and collector} *)

val set_enabled : bool -> unit
(** Turn collection on or off.  Does not clear already-collected spans. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all completed spans.  Spans currently open keep collecting. *)

val spans : unit -> span list
(** Completed spans, sorted by start time (ties by id — ids increase in
    start order, so a parent always sorts before its children). *)

val count : unit -> int

(** {2 Recording} *)

val with_span :
  ?cat:string ->
  ?parent:id ->
  ?attrs:(unit -> (string * attr) list) ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span name f] runs [f] inside a span.  The parent defaults to
    the current span of this domain (none at top level); pass [?parent]
    to stitch across domains.  Exception-safe: a raising [f] closes the
    span (tagged with an ["error"] attribute) and re-raises. *)

val with_charged :
  ?cat:string ->
  ?attrs:(unit -> (string * attr) list) ->
  eps:float ->
  delta:float ->
  string ->
  (unit -> 'a) ->
  'a
(** {!with_span} that also stamps the span with an (ε, δ) charge.
    [cat] defaults to ["mech"]. *)

val event :
  ?cat:string ->
  ?parent:id ->
  ?attrs:(unit -> (string * attr) list) ->
  ?label:string ->
  ?charge:charge ->
  string ->
  unit
(** A zero-duration span (an instant): budget ledger operations, retries,
    worker restarts.  Parent defaults to the current span of this domain;
    pass [?parent] from worker domains with no open span. *)

val current : unit -> id option
(** Id of this domain's innermost open span; [None] when disabled or at
    top level. *)

val set_attr : string -> attr -> unit
(** Attach an attribute to the innermost open span (no-op when disabled
    or at top level).  Later values for the same key win at export. *)

val set_label : string -> unit
(** Set the budget-attribution label of the innermost open span. *)

val add_charge : ?rho:float -> eps:float -> delta:float -> unit -> unit
(** Add a charge onto the innermost open span (sums with any charge
    already present). *)

(** {2 Handle API}

    For spans whose extent does not fit one lexical scope (the engine's
    fallback settlement).  [start]/[finish] must be called on the same
    domain, properly nested with any [with_span] on that domain. *)

type h

val start :
  ?cat:string -> ?parent:id -> ?attrs:(unit -> (string * attr) list) -> string -> h

val finish : h -> unit
val h_id : h -> id option
val h_set_attr : h -> string -> attr -> unit
val h_set_label : h -> string -> unit
val h_add_charge : h -> ?rho:float -> eps:float -> delta:float -> unit -> unit

(** {2 Tree helpers (for exporters and tests)} *)

val attributed : span list -> span -> charge
(** The charge a span accounts for: its own charge when set, otherwise
    the sum of its children's [attributed] — the stage-budget convention
    described above. *)

val children : span list -> span -> span list
val roots : span list -> span list
val find : span list -> id -> span option
val attr : span -> string -> attr option
val attr_int : span -> string -> int option
val attr_string : span -> string -> string option
val attr_bool : span -> string -> bool option
