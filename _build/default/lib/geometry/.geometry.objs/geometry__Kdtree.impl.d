lib/geometry/kdtree.ml: Array Float List Vec
