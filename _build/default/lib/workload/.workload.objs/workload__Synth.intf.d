lib/workload/synth.mli: Geometry Prim
