lib/workload/harness.mli: Geometry Prim Privcluster
