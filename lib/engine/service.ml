module Log = (val Logs.src_log Telemetry.log_src : Logs.LOG)

(* A standing 1-cluster query: its whole budget was reserved at
   registration as [periods] slices labelled ["<id>#<k>"]; each epoch the
   dataset advances (while ticks remain) commits the next slice and
   re-answers the query.  [seed]/[stream] pin the registration-time
   randomness so a WAL replay re-derives identical tick RNGs. *)
type standing = {
  dataset_name : string;
  base_id : string;
  st_t_fraction : float;
  st_beta : float;
  per_cost : Prim.Dp.params;
  periods : int;
  st_seed : int;  (* the batch seed at registration *)
  st_stream : int;  (* submission index at registration *)
  mutable ticks : int;  (* ticks already answered *)
  mutable last_epoch : int;  (* epoch of the last answered tick *)
  mutable resvs : (int * Accountant.reservation) list;  (* tick -> pending slice *)
}

type t = {
  profile : Privcluster.Profile.t;
  domains : int;
  seed : int;
  retries : int;
  backoff_s : float;
  faults : Faults.t;
  base_rng : Prim.Rng.t;  (* never drawn from; only [Rng.derive]d per job *)
  registry : Registry.t;
  telemetry : Telemetry.t;
  result_cache : Result_cache.t;
  mutable standing : standing list;  (* reverse registration order *)
  mutable standing_listeners :
    (dataset:string -> line:string -> seed:int -> stream:int -> unit) list;
}

let create ?(profile = Privcluster.Profile.practical) ?domains ?(seed = 1) ?(retries = 2)
    ?(backoff_s = 1e-3) ?faults () =
  let domains =
    max 1 (match domains with Some d -> d | None -> Pool.recommended_domains ())
  in
  let faults = match faults with Some f -> f | None -> Faults.of_env () in
  {
    profile;
    domains;
    seed;
    retries = max 0 retries;
    backoff_s;
    faults;
    base_rng = Prim.Rng.create ~seed ();
    registry = Registry.create ();
    telemetry = Telemetry.create ();
    result_cache = Result_cache.create ();
    standing = [];
    standing_listeners = [];
  }

let registry t = t.registry
let telemetry t = t.telemetry
let domains t = t.domains
let seed t = t.seed
let retries t = t.retries
let faults t = t.faults
let result_cache t = t.result_cache

let subscribe_standing t f = t.standing_listeners <- f :: t.standing_listeners

let standing_queries t =
  List.rev_map (fun st -> (st.dataset_name, st.base_id, st.ticks, st.periods)) t.standing

let register t ~name ~grid ?mode ~budget ?dense_threshold points =
  (* The dense-index rows are independent, so building them on the
     service's worker-domain count changes nothing but wall-clock. *)
  Registry.register t.registry ~name ~grid ?mode ~budget ?dense_threshold
    ~index_domains:t.domains points

let target_of spec dataset =
  match spec.Job.kind with
  | Job.One_cluster { t_fraction }
  | Job.K_cluster { t_fraction; _ }
  | Job.Standing { t_fraction; _ }
  | Job.Local_cluster { t_fraction }
  | Job.Meb { t_fraction; _ } ->
      max 1 (int_of_float (ceil (t_fraction *. float_of_int (Registry.n dataset))))
  | Job.Quantile _ | Job.Mutate _ -> 1

(* One admitted job, on a worker domain.  Everything read from [dataset] is
   immutable after registration except the r_opt-bounds cache, which locks
   internally. *)
let execute t dataset rng (spec : Job.spec) : Job.status =
  let grid = Registry.grid dataset in
  let ps = Registry.pointset dataset in
  match spec.Job.kind with
  | Job.One_cluster _ -> (
      let target = target_of spec dataset in
      match
        Privcluster.One_cluster.run_indexed rng t.profile ~grid ~eps:spec.Job.eps
          ~delta:spec.Job.delta ~beta:spec.Job.beta ~t:target (Registry.index dataset)
      with
      | Ok r ->
          let center = r.Privcluster.One_cluster.center in
          let radius = r.Privcluster.One_cluster.radius in
          let covered = Geometry.Pointset.ball_count ps ~center ~radius in
          let _, r_hi = Registry.r_opt_bounds dataset ~t:target in
          Job.Completed
            (Job.Cluster
               {
                 ball = { Job.center; radius; covered };
                 t = target;
                 ratio_vs_hi = (if r_hi > 0. then radius /. r_hi else Float.infinity);
                 delta_bound = r.Privcluster.One_cluster.delta_bound;
               })
      | Error f ->
          Job.Solver_failed (Format.asprintf "%a" Privcluster.One_cluster.pp_failure f))
  | Job.K_cluster { k; t_fraction } ->
      let r =
        (* Zero-copy: peeling inside run_ps produces index views over the
           registry's flat storage. *)
        Privcluster.K_cluster.run_ps rng t.profile ~grid ~eps:spec.Job.eps
          ~delta:spec.Job.delta ~beta:spec.Job.beta ~k ~t_fraction ps
      in
      let balls =
        List.map
          (fun (b : Privcluster.K_cluster.ball) ->
            {
              Job.center = b.Privcluster.K_cluster.center;
              radius = b.Privcluster.K_cluster.radius;
              covered =
                Geometry.Pointset.ball_count ps ~center:b.Privcluster.K_cluster.center
                  ~radius:b.Privcluster.K_cluster.radius;
            })
          r.Privcluster.K_cluster.balls
      in
      Job.Completed
        (Job.Clusters
           {
             balls;
             uncovered = r.Privcluster.K_cluster.uncovered;
             failures = r.Privcluster.K_cluster.failures;
           })
  | Job.Quantile { axis; q } ->
      let d = Registry.dim dataset in
      if axis < 0 || axis >= d then
        Job.Solver_failed (Printf.sprintf "axis %d out of range for dimension %d" axis d)
      else
        let values = Geometry.Pointset.coords_axis ps axis in
        let grid1 =
          Geometry.Grid.create ~axis_size:(Geometry.Grid.axis_size grid) ~dim:1
        in
        let res =
          Privcluster.Quantile.quantile rng ~profile:t.profile ~grid:grid1 ~eps:spec.Job.eps ~q
            values
        in
        Job.Completed
          (Job.Quantile_value
             {
               value = res.Privcluster.Quantile.value;
               target_rank = res.Privcluster.Quantile.target_rank;
             })
  | Job.Local_cluster _ -> (
      let target = target_of spec dataset in
      match
        Privcluster.Local_cluster.run rng ~grid ~eps:spec.Job.eps ~beta:spec.Job.beta ~t:target
          ps
      with
      | Ok r ->
          let center = r.Privcluster.Local_cluster.center in
          let radius = r.Privcluster.Local_cluster.radius in
          let covered = Geometry.Pointset.ball_count ps ~center ~radius in
          let _, r_hi = Registry.r_opt_bounds dataset ~t:target in
          Job.Completed
            (Job.Cluster
               {
                 ball = { Job.center; radius; covered };
                 t = target;
                 ratio_vs_hi = (if r_hi > 0. then radius /. r_hi else Float.infinity);
                 delta_bound = r.Privcluster.Local_cluster.delta_bound;
               })
      | Error f ->
          Job.Solver_failed (Format.asprintf "%a" Privcluster.Local_cluster.pp_failure f))
  | Job.Meb { coreset; _ } -> (
      let target = target_of spec dataset in
      match
        Baselines.Meb_fptas.run rng ~grid ~eps:spec.Job.eps ~delta:spec.Job.delta ~coreset
          ~t:target ps
      with
      | Ok r ->
          let center = r.Baselines.Meb_fptas.center in
          let radius = r.Baselines.Meb_fptas.radius in
          let covered = Geometry.Pointset.ball_count ps ~center ~radius in
          let _, r_hi = Registry.r_opt_bounds dataset ~t:target in
          Job.Completed
            (Job.Cluster
               {
                 ball = { Job.center; radius; covered };
                 t = target;
                 ratio_vs_hi = (if r_hi > 0. then radius /. r_hi else Float.infinity);
                 (* MEB certifies no coverage slack of its own; the radius
                    stage's accuracy is reported by the check suite. *)
                 delta_bound = 0.;
               })
      | Error f ->
          Job.Solver_failed (Format.asprintf "%a" Baselines.Meb_fptas.pp_failure f))
  | Job.Mutate _ | Job.Standing _ ->
      (* Run on the batch coordinator, never on a worker domain. *)
      Job.Solver_failed "internal: coordinator-only job kind reached a worker"

(* Why a failed-then-degraded job names its original failure: the reason
   string is derived from the job's public status, never from drawn noise. *)
let degrade_reason = function
  | Job.Timed_out { elapsed_ms } ->
      Printf.sprintf "deadline exceeded after %.0f ms" elapsed_ms
  | Job.Solver_failed msg -> msg
  | _ -> "unknown"

(* The GoodRadius-only fallback, run on the coordinator after the pool has
   drained (the accountant is not thread-safe, and commit/release must be
   interleaved with nothing).  Its randomness is a dedicated sub-stream of
   the job's stream — deterministic in (seed, submission index) and disjoint
   from the main attempt's draws. *)
let run_fallback t dataset ~base_rng ~stream (spec : Job.spec) cost =
  let rng = Prim.Rng.derive (Prim.Rng.derive base_rng ~stream) ~stream:1 in
  let target = target_of spec dataset in
  let r =
    Privcluster.Good_radius.run rng t.profile ~grid:(Registry.grid dataset)
      ~eps:cost.Prim.Dp.eps ~delta:cost.Prim.Dp.delta ~beta:spec.Job.beta ~t:target
      (Registry.index dataset)
  in
  Job.Radius
    {
      radius = r.Privcluster.Good_radius.radius;
      t = target;
      delta_bound = r.Privcluster.Good_radius.delta_bound;
    }

type admission =
  | Refused_at_admission of string
  | Cache_hit of Job.output  (* recorded answer returned; nothing charged *)
  | Admitted of Accountant.reservation option  (* the fallback reservation, if held *)

let cacheable (spec : Job.spec) =
  match spec.Job.kind with
  | Job.One_cluster _ | Job.K_cluster _ | Job.Quantile _ | Job.Local_cluster _ | Job.Meb _ ->
      true
  | Job.Mutate _ | Job.Standing _ -> false

let charge_of (p : Prim.Dp.params) =
  Obs.Span.charge ~eps:p.Prim.Dp.eps ~delta:p.Prim.Dp.delta ()

(* One [cat="budget"] instant per ledger operation.  Attribution counts
   [charge] and [commit] — exactly the operations that create
   [Accountant.entries] — so the event stream and the ledger reconcile
   term by term. *)
let budget_event op ~label cost =
  Obs.Span.event ~cat:"budget" ~label ~charge:(charge_of cost) op

let run_batch ?domains ?retries ?faults ?seed t ~dataset specs =
  let domains = max 1 (Option.value ~default:t.domains domains) in
  let retries = max 0 (Option.value ~default:t.retries retries) in
  let faults = Option.value ~default:t.faults faults in
  let base_rng, seed =
    match seed with
    | None -> (t.base_rng, t.seed)
    | Some s -> (Prim.Rng.create ~seed:s (), s)
  in
  let accountant = Registry.accountant dataset in
  (* Root span for the whole batch (handle API: it brackets all three
     phases).  Coordinator-side phase spans nest under it implicitly;
     worker-side job spans are stitched to it by id. *)
  let batch =
    Obs.Span.start ~cat:"batch"
      ~attrs:(fun () ->
        [
          ("dataset", Obs.Span.S (Registry.name dataset));
          ("jobs", Obs.Span.I (List.length specs));
          ("domains", Obs.Span.I domains);
          ("seed", Obs.Span.I seed);
          ("retries", Obs.Span.I retries);
        ])
      "service.batch"
  in
  let batch_id = Obs.Span.h_id batch in
  let dataset_name = Registry.name dataset in
  let results_rev = ref [] in
  let push r = results_rev := r :: !results_rev in
  Log.info (fun m ->
      m "batch start: dataset=%s jobs=%d domains=%d seed=%d retries=%d faults=%s" dataset_name
        (List.length specs) domains seed retries (Faults.to_string faults));
  (* --- standing queries (coordinator-side) ------------------------------ *)
  (* Answer the next tick of a standing query if the dataset has moved to a
     new epoch since its last answer and budget slices remain.  The tick's
     RNG derives from the *registration-time* (seed, stream) through a
     dedicated sub-stream (2, then the tick number) — disjoint from the
     main attempts (stream) and fallbacks (stream, 1), and reproducible
     across a WAL replay. *)
  let tick_standing st =
    let e = Registry.epoch dataset in
    if st.ticks < st.periods && e > st.last_epoch then
      let k = st.ticks + 1 in
      match List.assoc_opt k st.resvs with
      | None -> () (* slice settled externally (operator settle) — stop ticking *)
      | Some resv ->
          let tick_id = Printf.sprintf "%s#%d" st.base_id k in
          let tick_spec =
            {
              Job.id = tick_id;
              kind = Job.One_cluster { t_fraction = st.st_t_fraction };
              eps = st.per_cost.Prim.Dp.eps;
              delta = st.per_cost.Prim.Dp.delta;
              beta = st.st_beta;
              deadline_s = None;
              fallback = false;
            }
          in
          st.resvs <- List.remove_assoc k st.resvs;
          Accountant.commit accountant resv;
          budget_event "commit" ~label:tick_id st.per_cost;
          let t0 = Unix.gettimeofday () in
          let status =
            Obs.Span.with_span ~cat:"job" ?parent:batch_id
              ~attrs:(fun () ->
                [
                  ("id", Obs.Span.S tick_id);
                  ("stream", Obs.Span.I st.st_stream);
                  ("tick", Obs.Span.I k);
                  ("epoch", Obs.Span.I e);
                  ("attempt", Obs.Span.I 1);
                ])
              (Job.kind_name tick_spec.Job.kind)
            @@ fun () ->
            Obs.Span.set_label tick_id;
            let rng =
              Prim.Rng.derive
                (Prim.Rng.derive
                   (Prim.Rng.derive (Prim.Rng.create ~seed:st.st_seed ()) ~stream:st.st_stream)
                   ~stream:2)
                ~stream:k
            in
            execute t dataset rng tick_spec
          in
          let latency_ms = (Unix.gettimeofday () -. t0) *. 1000. in
          (match status with
          | Job.Completed output ->
              Result_cache.store t.result_cache
                {
                  Result_cache.dataset = st.dataset_name;
                  epoch = e;
                  signature = Job.signature tick_spec;
                  seed = st.st_seed;
                  stream = st.st_stream;
                }
                output
          | _ -> ());
          st.ticks <- k;
          st.last_epoch <- e;
          push { Job.spec = tick_spec; status; latency_ms; attempts = 1 }
  in
  let tick_all () =
    List.iter (fun st -> if st.dataset_name = dataset_name then tick_standing st)
      (List.rev t.standing)
  in
  let register_standing i (spec : Job.spec) ~periods =
    let per_cost =
      {
        Prim.Dp.eps = spec.Job.eps /. float_of_int periods;
        delta = spec.Job.delta /. float_of_int periods;
      }
    in
    let label k = Printf.sprintf "%s#%d" spec.Job.id k in
    let rec take k acc =
      if k > periods then Ok (List.rev acc)
      else
        match Accountant.reserve accountant ~label:(label k) per_cost with
        | Ok resv ->
            budget_event "reserve" ~label:(label k) per_cost;
            take (k + 1) ((k, resv) :: acc)
        | Error refusal ->
            List.iter
              (fun (j, r) ->
                Accountant.release accountant r;
                Obs.Span.event ~cat:"budget" ~label:(label j) "release")
              (List.rev acc);
            Error (Accountant.refusal_message refusal)
    in
    match take 1 [] with
    | Error msg ->
        budget_event "refuse" ~label:spec.Job.id (Job.cost spec);
        push { Job.spec; status = Job.Refused msg; latency_ms = 0.; attempts = 0 }
    | Ok resvs ->
        let st =
          {
            dataset_name;
            base_id = spec.Job.id;
            st_t_fraction =
              (match spec.Job.kind with Job.Standing { t_fraction; _ } -> t_fraction | _ -> 0.5);
            st_beta = spec.Job.beta;
            per_cost;
            periods;
            st_seed = seed;
            st_stream = i;
            ticks = 0;
            last_epoch = -1;
            resvs;
          }
        in
        t.standing <- st :: t.standing;
        let line = Job.spec_to_line spec in
        List.iter
          (fun f -> f ~dataset:dataset_name ~line ~seed ~stream:i)
          (List.rev t.standing_listeners);
        push
          {
            Job.spec;
            status = Job.Completed (Job.Standing_accepted { periods });
            latency_ms = 0.;
            attempts = 0;
          };
        (* First answer now, on the current epoch. *)
        tick_standing st
  in
  (* --- mutations (coordinator-side, free of charge) --------------------- *)
  let run_mutation i (spec : Job.spec) op =
    let t0 = Unix.gettimeofday () in
    let status =
      Obs.Span.with_span ~cat:"job" ?parent:batch_id
        ~attrs:(fun () ->
          [
            ("id", Obs.Span.S spec.Job.id);
            ("stream", Obs.Span.I i);
            ("attempt", Obs.Span.I 1);
          ])
        (Job.kind_name spec.Job.kind)
      @@ fun () ->
      Obs.Span.set_label spec.Job.id;
      match op with
      | Job.Append_synth { n; seed = mseed; frac; radius } -> (
          (* A dedicated RNG seeded by the op itself: the same mutate line
             replayed from the WAL appends the exact same rows. *)
          match
            Workload.Synth.planted_ball
              (Prim.Rng.create ~seed:mseed ())
              ~grid:(Registry.grid dataset) ~n ~cluster_fraction:frac ~cluster_radius:radius
          with
          | planted -> (
              match Registry.append dataset planted.Workload.Synth.points with
              | epoch -> Job.Completed (Job.Epoch_advanced { epoch; n = Registry.n dataset })
              | exception Invalid_argument msg -> Job.Solver_failed msg)
          | exception Invalid_argument msg -> Job.Solver_failed msg)
      | Job.Retire_range { from_; count } -> (
          match Registry.retire dataset ~from_ ~count with
          | epoch -> Job.Completed (Job.Epoch_advanced { epoch; n = Registry.n dataset })
          | exception Invalid_argument msg -> Job.Solver_failed msg)
    in
    push { Job.spec; status; latency_ms = (Unix.gettimeofday () -. t0) *. 1000.; attempts = 1 };
    match status with Job.Completed _ -> tick_all () | _ -> ()
  in
  (* --- one segment of worker jobs: the original three phases ------------ *)
  let run_segment pairs =
    (* Epoch is stable for the whole segment: mutations only run between
       segments, on this same coordinator thread. *)
    let epoch = Registry.epoch dataset in
    let cache_key i (spec : Job.spec) =
      {
        Result_cache.dataset = dataset_name;
        epoch;
        signature = Job.signature spec;
        seed;
        stream = i;
      }
    in
    (* Phase 1 — admission, in submission order, before anything runs.  The
       result cache is consulted first: a hit returns the recorded answer
       and never touches the accountant (see DESIGN.md §10).  A job with a
       fallback also reserves the fallback's charge now, so degradation
       can never be refused mid-batch; if the reservation alone does not
       fit, the job still runs — it just has no fallback (logged below). *)
    let admitted =
      Obs.Span.with_span ~cat:"phase" ?parent:batch_id "service.admission" @@ fun () ->
      List.map
        (fun (i, (spec : Job.spec)) ->
          match Result_cache.find t.result_cache (cache_key i spec) with
          | Some output ->
              Telemetry.incr t.telemetry "cache_hits";
              (* Trace the hit as a zero-cost job span; the [cached] attr
                 exempts it from attribution's retry-consistency grouping
                 (it is a replay, not an attempt). *)
              (Obs.Span.with_span ~cat:"job" ?parent:batch_id
                 ~attrs:(fun () ->
                   [
                     ("id", Obs.Span.S spec.Job.id);
                     ("stream", Obs.Span.I i);
                     ("epoch", Obs.Span.I epoch);
                     ("cached", Obs.Span.B true);
                   ])
                 (Job.kind_name spec.Job.kind)
               @@ fun () -> Obs.Span.set_label spec.Job.id);
              Cache_hit output
          | None -> (
              match Accountant.charge accountant ~label:spec.Job.id (Job.cost spec) with
              | Error refusal ->
                  budget_event "refuse" ~label:spec.Job.id (Job.cost spec);
                  Refused_at_admission (Accountant.refusal_message refusal)
              | Ok () -> (
                  budget_event "charge" ~label:spec.Job.id (Job.cost spec);
                  match Job.fallback_cost spec with
                  | None -> Admitted None
                  | Some c -> (
                      match
                        Accountant.reserve accountant ~label:(spec.Job.id ^ ":fallback") c
                      with
                      | Ok resv ->
                          budget_event "reserve" ~label:(spec.Job.id ^ ":fallback") c;
                          Admitted (Some resv)
                      | Error _ ->
                          budget_event "refuse" ~label:(spec.Job.id ^ ":fallback") c;
                          Log.warn (fun m ->
                              m
                                "job %s: no budget headroom for its fallback — degradation disabled"
                                spec.Job.id);
                          Admitted None))))
        pairs
    in
    (* Phase 2 — execution.  Stream index = submission index (refusals
       included), so admitting a different prefix never reshuffles the
       randomness of later jobs; and every retry attempt re-derives the same
       stream, so a crash-before-output replay is bit-identical and free. *)
    let tasks =
      List.map2 (fun (i, spec) a -> (i, spec, a)) pairs admitted
      |> List.filter_map (fun (i, (spec : Job.spec), a) ->
             match a with
             | Admitted _ -> Some (Pool.task ?deadline_s:spec.Job.deadline_s (i, spec))
             | Refused_at_admission _ | Cache_hit _ -> None)
      |> Array.of_list
    in
    let on_event = function
      | Pool.Task_retry _ -> Telemetry.incr t.telemetry "retries"
      | Pool.Worker_restart -> Telemetry.incr t.telemetry "worker_restarts"
    in
    let outcomes =
      Pool.run ~retries ~backoff_s:t.backoff_s ~on_event ?trace_parent:batch_id ~domains
        ~f:(fun ~index:_ ~attempt (stream, spec) ->
          (* Per-job root span, parented to the batch span across the domain
             boundary.  The label keys budget attribution; stream and attempt
             let the reconciler collapse bit-identical retry replays. *)
          Obs.Span.with_span ~cat:"job" ?parent:batch_id
            ~attrs:(fun () ->
              [
                ("id", Obs.Span.S spec.Job.id);
                ("stream", Obs.Span.I stream);
                ("epoch", Obs.Span.I epoch);
                ("attempt", Obs.Span.I (attempt + 1));
              ])
            (Job.kind_name spec.Job.kind)
          @@ fun () ->
          Obs.Span.set_label spec.Job.id;
          let rng = Prim.Rng.derive base_rng ~stream in
          (* Faults are armed before any randomness is drawn, so an injected
             crash or kill is always a crash *before output*. *)
          Faults.arm faults ~index:stream ~attempt;
          let t0 = Unix.gettimeofday () in
          let status = execute t dataset rng spec in
          (status, (Unix.gettimeofday () -. t0) *. 1000., attempt + 1))
        tasks
    in
    let by_index = Hashtbl.create (max 1 (Array.length tasks)) in
    Array.iteri
      (fun j outcome ->
        let i, _ = tasks.(j).Pool.payload in
        Hashtbl.replace by_index i outcome)
      outcomes;
    (* Phase 3 — settlement, sequential, in submission order: map outcomes to
       results, run fallbacks for jobs that could not complete, and settle
       every reservation (commit on degrade, release otherwise). *)
    let release_resv (spec : Job.spec) resv =
    Option.iter
      (fun r ->
        Accountant.release accountant r;
        Obs.Span.event ~cat:"budget" ~label:(spec.Job.id ^ ":fallback") "release")
      resv
  in
  let settle i (spec : Job.spec) resv (status, latency_ms, attempts) =
    let degrade () =
      match (resv, Job.fallback_cost spec) with
      | Some resv, Some cost -> (
          let reason = degrade_reason status in
          (* The fallback's execution span is a [cat="job"] root of its
             own, labelled like its ledger entry; on failure the label is
             left unset so the aborted subtree joins no attribution line
             (its reservation is released, not spent). *)
          let h =
            Obs.Span.start ~cat:"job" ?parent:batch_id
              ~attrs:(fun () ->
                [
                  ("id", Obs.Span.S spec.Job.id);
                  ("stream", Obs.Span.I i);
                  ("fallback", Obs.Span.B true);
                  ("reason", Obs.Span.S reason);
                ])
              "good_radius_fallback"
          in
          match run_fallback t dataset ~base_rng ~stream:i spec cost with
          | output ->
              Obs.Span.h_set_label h (spec.Job.id ^ ":fallback");
              Obs.Span.finish h;
              Accountant.commit accountant resv;
              budget_event "commit" ~label:(spec.Job.id ^ ":fallback") cost;
              Telemetry.incr t.telemetry "degraded";
              Some (Job.Degraded { output; reason })
          | exception exn ->
              Obs.Span.h_set_attr h "error" (Obs.Span.S (Printexc.to_string exn));
              Obs.Span.finish h;
              Log.warn (fun m ->
                  m "job %s: fallback itself failed (%s) — keeping original status" spec.Job.id
                    (Printexc.to_string exn));
              Accountant.release accountant resv;
              Obs.Span.event ~cat:"budget" ~label:(spec.Job.id ^ ":fallback") "release";
              None)
      | _ -> None
    in
    match status with
    | Job.Completed _ | Job.Refused _ ->
        release_resv spec resv;
        { Job.spec; status; latency_ms; attempts }
    | Job.Timed_out _ | Job.Solver_failed _ -> (
        match degrade () with
        | Some status -> { Job.spec; status; latency_ms; attempts }
        | None ->
            release_resv spec resv;
            { Job.spec; status; latency_ms; attempts })
    | Job.Degraded _ ->
        (* execute never produces Degraded; keep the match exhaustive. *)
        release_resv spec resv;
        { Job.spec; status; latency_ms; attempts }
  in
    Obs.Span.with_span ~cat:"phase" ?parent:batch_id "service.settlement" @@ fun () ->
    List.iter2
      (fun (i, (spec : Job.spec)) a ->
        match a with
        | Refused_at_admission msg ->
            push { Job.spec; status = Job.Refused msg; latency_ms = 0.; attempts = 0 }
        | Cache_hit output ->
            push { Job.spec; status = Job.Completed output; latency_ms = 0.; attempts = 0 }
        | Admitted resv ->
            let r =
              match Hashtbl.find by_index i with
              | Pool.Done (status, ms, attempts) -> settle i spec resv (status, ms, attempts)
              | Pool.Timed_out { elapsed_ms } ->
                  settle i spec resv (Job.Timed_out { elapsed_ms }, elapsed_ms, 0)
              | Pool.Failed msg -> settle i spec resv (Job.Solver_failed msg, 0., retries + 1)
            in
            (match r.Job.status with
            | Job.Completed output when cacheable spec ->
                Result_cache.store t.result_cache (cache_key i spec) output
            | _ -> ());
            push r)
      pairs admitted
  in
  (* Split the batch at coordinator jobs (mutations, standing-query
     registrations): worker segments run the three phases unchanged;
     coordinator jobs run between them, so a query after a [mutate] line
     sees — and is cache-keyed on — the new epoch. *)
  let rec segments acc cur = function
    | [] -> List.rev (if cur = [] then acc else `Seg (List.rev cur) :: acc)
    | ((i, (spec : Job.spec)) as item) :: rest -> (
        match spec.Job.kind with
        | Job.Mutate _ | Job.Standing _ ->
            let acc = if cur = [] then acc else `Seg (List.rev cur) :: acc in
            segments (`Coord (i, spec) :: acc) [] rest
        | _ -> segments acc (item :: cur) rest)
  in
  List.iter
    (function
      | `Seg pairs -> run_segment pairs
      | `Coord (i, (spec : Job.spec)) -> (
          match spec.Job.kind with
          | Job.Mutate op -> run_mutation i spec op
          | Job.Standing { periods; _ } -> register_standing i spec ~periods
          | _ -> assert false))
    (segments [] [] (List.mapi (fun i s -> (i, s)) specs));
  let results = List.rev !results_rev in
  List.iter
    (fun (r : Job.result) ->
      Telemetry.record t.telemetry ~kind:(Job.kind_name r.Job.spec.Job.kind)
        ~status:(Job.status_name r.Job.status) ~latency_ms:r.Job.latency_ms)
    results;
  let count st =
    List.length (List.filter (fun r -> Job.status_name r.Job.status = st) results)
  in
  Log.info (fun m ->
      m "batch done: dataset=%s ok=%d refused=%d timeout=%d failed=%d degraded=%d retries=%d restarts=%d"
        (Registry.name dataset) (count "ok") (count "refused") (count "timeout") (count "failed")
        (count "degraded")
        (Telemetry.counter t.telemetry "retries")
        (Telemetry.counter t.telemetry "worker_restarts"));
  Obs.Span.finish batch;
  results

let find_dataset t name =
  match Registry.find t.registry name with
  | Some d -> Ok d
  | None ->
      Error
        (match Registry.names t.registry with
        | [] -> Printf.sprintf "unknown dataset %S: no datasets are registered" name
        | names ->
            Printf.sprintf "unknown dataset %S: registered datasets are %s" name
              (String.concat ", " (List.map (Printf.sprintf "%S") names)))

let run_batch_named ?domains ?retries ?faults ?seed t ~dataset specs =
  match find_dataset t dataset with
  | Error _ as e -> e
  | Ok dataset -> Ok (run_batch ?domains ?retries ?faults ?seed t ~dataset specs)

(* Rebuild a standing query from its journaled registration line after a WAL
   replay.  The replayed ledger already holds the committed slices (the
   ticks that were answered) and the outstanding reservations (the ticks
   still to come); we adopt both by label.  [last_epoch] is set to the
   dataset's replayed epoch — conservative: the first post-restart tick
   waits for the next mutation rather than re-answering the current epoch
   (whose answer, if any, was restored into the result cache). *)
let restore_standing t ~dataset ~line ~seed ~stream =
  match Job.parse line with
  | Error e -> Error (Printf.sprintf "standing restore: %s" e)
  | Ok [ ({ Job.kind = Job.Standing { t_fraction; periods }; _ } as spec) ] ->
      let dataset_name = Registry.name dataset in
      let accountant = Registry.accountant dataset in
      let per_cost =
        {
          Prim.Dp.eps = spec.Job.eps /. float_of_int periods;
          delta = spec.Job.delta /. float_of_int periods;
        }
      in
      let prefix = spec.Job.id ^ "#" in
      let tick_of label =
        if String.length label > String.length prefix
           && String.sub label 0 (String.length prefix) = prefix
        then
          int_of_string_opt
            (String.sub label (String.length prefix) (String.length label - String.length prefix))
        else None
      in
      let resvs =
        List.filter_map
          (fun (resv, label, _) -> Option.map (fun k -> (k, resv)) (tick_of label))
          (Accountant.outstanding accountant)
      in
      let ticks =
        List.length
          (List.filter (fun (label, _) -> tick_of label <> None) (Accountant.entries accountant))
      in
      let st =
        {
          dataset_name;
          base_id = spec.Job.id;
          st_t_fraction = t_fraction;
          st_beta = spec.Job.beta;
          per_cost;
          periods;
          st_seed = seed;
          st_stream = stream;
          ticks;
          last_epoch = Registry.epoch dataset;
          resvs;
        }
      in
      t.standing <- st :: t.standing;
      Ok ()
  | Ok _ -> Error "standing restore: expected exactly one standing job line"

let ledger ~dataset =
  List.map
    (fun (label, p) -> (label, charge_of p))
    (Accountant.entries (Registry.accountant dataset))

let attribution ~dataset () =
  Obs.Attribution.reconcile ~ledger:(ledger ~dataset) (Obs.Span.spans ())

let report_json t ~dataset results =
  Json.Obj
    [
      ("dataset", Registry.to_json dataset);
      ("jobs", Json.List (List.map Job.result_to_json results));
      ("telemetry", Telemetry.to_json t.telemetry);
    ]
