(* The private MEB fPTAS competitor: the non-private coreset fact it rests
   on (a sampled Bădoiu–Clarkson ball is within a modest factor of the
   full-data ball), the explicit privacy ledger, planted-workload utility,
   replay determinism, kernel-tier identity, and the engine job kind. *)

open Testutil

module M = Baselines.Meb_fptas

(* ---- the non-private coreset fact ------------------------------------ *)

let test_coreset_radius_vs_exhaustive r =
  (* Bădoiu–Clarkson on a 400-point uniform sample vs on all points: the
     sampled ball, inflated to cover the sample's discretization error,
     stays within 1.2x of the exhaustive radius across cluster shapes. *)
  List.iteri
    (fun i (fraction, radius) ->
      let r = Prim.Rng.derive r ~stream:i in
      let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
      let w =
        Workload.Synth.planted_ball r ~grid ~n:8_000 ~cluster_fraction:fraction
          ~cluster_radius:radius
      in
      let pts = w.Workload.Synth.points in
      let full = Geometry.Seb.min_enclosing_ball pts in
      let sample = Prim.Rng.sample_with_replacement r ~k:400 pts in
      let core = Geometry.Seb.min_enclosing_ball sample in
      check_true
        (Printf.sprintf "case %d: coreset radius %.4f within [%.4f/1.2, 1.2*%.4f]" i
           core.Geometry.Seb.radius full.Geometry.Seb.radius full.Geometry.Seb.radius)
        (core.Geometry.Seb.radius <= 1.2 *. full.Geometry.Seb.radius
        && core.Geometry.Seb.radius >= full.Geometry.Seb.radius /. 1.2))
    [ (0.9, 0.05); (0.6, 0.1); (1.0, 0.3) ]

(* ---- the privacy ledger ---------------------------------------------- *)

let test_budget_breakdown_composes =
  qcheck "stage charges compose within (eps, delta)"
    QCheck2.Gen.(
      triple (float_range 0.2 4.0) (float_range 1e-9 1e-5) (int_range 1_000 50_000))
    (fun (eps, delta, n) ->
      let stages = M.budget_breakdown ~eps ~delta ~n ~coreset:400 in
      let total =
        Prim.Composition.basic_list (List.map snd stages)
      in
      List.length stages = 3
      && total.Prim.Dp.eps <= eps +. 1e-9
      && total.Prim.Dp.delta <= delta +. 1e-15)

let test_breakdown_amplification () =
  (* The coreset stage's charge is the amplified secrecy-of-subsample
     cost, so growing n with a fixed coreset must shrink it. *)
  let charge n =
    match M.budget_breakdown ~eps:1.0 ~delta:1e-6 ~n ~coreset:400 with
    | (_, c) :: _ -> c.Prim.Dp.eps
    | [] -> Alcotest.fail "empty breakdown"
  in
  check_true "amplification engages as n grows" (charge 100_000 < charge 2_000)

(* ---- planted workloads ----------------------------------------------- *)

let test_planted_majority_radius r =
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.planted_ball r ~grid ~n:10_000 ~cluster_fraction:0.9 ~cluster_radius:0.05
  in
  let t = int_of_float (0.85 *. float_of_int w.Workload.Synth.cluster_size) in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  match M.run r ~grid ~eps:1.0 ~delta:1e-6 ~t ps with
  | Error f -> Alcotest.failf "planted run failed: %a" M.pp_failure f
  | Ok res ->
      let covered = Geometry.Pointset.ball_count ps ~center:res.M.center ~radius:res.M.radius in
      check_true
        (Printf.sprintf "covers most of t (%d vs %d)" covered t)
        (float_of_int covered >= 0.9 *. float_of_int t);
      check_true
        (Printf.sprintf "radius %.4f not wildly loose" res.M.radius)
        (res.M.radius <= 20. *. w.Workload.Synth.cluster_radius);
      check_int "coreset capped at default" M.default_coreset res.M.coreset_size;
      check_int "default rounds" M.default_rounds res.M.refinement_rounds;
      Array.iter (fun c -> check_in_range "center in the cube" ~lo:0. ~hi:1. c) res.M.center

let test_tiny_database_bottom r =
  (* With 3 users and a strict eps the NoisyAVG count bound goes
     non-positive: the only failure mode, surfaced not raised. *)
  let grid = Geometry.Grid.create ~axis_size:64 ~dim:2 in
  let ps = Geometry.Pointset.create [| [| 0.5; 0.5 |]; [| 0.51; 0.5 |]; [| 0.5; 0.51 |] |] in
  match M.run r ~grid ~eps:0.1 ~delta:1e-9 ~t:2 ps with
  | Error M.Center_bottom -> ()
  | Ok res -> Alcotest.failf "expected bottom on a tiny database, got %a" M.pp_result res

(* ---- determinism ------------------------------------------------------ *)

let test_replay_determinism () =
  let mk () =
    let r = rng ~seed:5150 () in
    let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
    let w =
      Workload.Synth.planted_ball r ~grid ~n:6_000 ~cluster_fraction:0.9 ~cluster_radius:0.06
    in
    let ps = Geometry.Pointset.create w.Workload.Synth.points in
    M.run (Prim.Rng.derive r ~stream:9) ~grid ~eps:1.0 ~delta:1e-6
      ~t:(int_of_float (0.85 *. float_of_int w.Workload.Synth.cluster_size))
      ps
  in
  match (mk (), mk ()) with
  | Ok a, Ok b ->
      check_true "same center" (Geometry.Vec.equal ~tol:0. a.M.center b.M.center);
      check_float ~tol:0. "same radius" a.M.radius b.M.radius
  | Error M.Center_bottom, Error M.Center_bottom -> ()
  | _ -> Alcotest.fail "replay diverged"

let with_native_forced on f =
  let before = Kernel.native_active () in
  Kernel.set_native on;
  Fun.protect ~finally:(fun () -> Kernel.set_native before) f

let test_kernel_tier_identity () =
  (* The ball-count kernels MEB leans on are bit-identical across tiers,
     so the whole private pipeline must be too. *)
  let run () =
    let r = rng ~seed:808 () in
    let grid = Geometry.Grid.create ~axis_size:128 ~dim:3 in
    let w =
      Workload.Synth.planted_ball r ~grid ~n:5_000 ~cluster_fraction:0.9 ~cluster_radius:0.08
    in
    let ps = Geometry.Pointset.create w.Workload.Synth.points in
    M.run r ~grid ~eps:1.0 ~delta:1e-6
      ~t:(int_of_float (0.8 *. float_of_int w.Workload.Synth.cluster_size))
      ps
  in
  let a = with_native_forced true run and b = with_native_forced false run in
  match (a, b) with
  | Ok a, Ok b ->
      check_true "native and reference tiers agree"
        (Geometry.Vec.equal ~tol:0. a.M.center b.M.center && a.M.radius = b.M.radius)
  | Error M.Center_bottom, Error M.Center_bottom -> ()
  | _ -> Alcotest.fail "tiers diverged"

(* ---- the engine job kind ---------------------------------------------- *)

let p ~eps ~delta = { Prim.Dp.eps; delta }

let batch_results ~domains ~seed =
  let service = Engine.Service.create ~domains ~seed ~faults:Engine.Faults.none () in
  let r = rng ~seed:6 () in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let w =
    Workload.Synth.planted_ball r ~grid ~n:8_000 ~cluster_fraction:0.9 ~cluster_radius:0.05
  in
  let ds =
    Engine.Service.register service ~name:"meb" ~grid ~budget:(p ~eps:10. ~delta:1e-4)
      w.Workload.Synth.points
  in
  Engine.Service.run_batch service ~dataset:ds
    [
      {
        Engine.Job.id = "m";
        kind = Engine.Job.Meb { t_fraction = 0.8; coreset = 200 };
        eps = 1.0;
        delta = 1e-7;
        beta = 0.1;
        deadline_s = None;
        fallback = false;
      };
    ]

let canonical results =
  List.map
    (fun (r : Engine.Job.result) ->
      (r.Engine.Job.spec.Engine.Job.id, Engine.Job.status_name r.Engine.Job.status,
       Engine.Job.detail r))
    results

let test_engine_job_kind () =
  let r1 = batch_results ~domains:1 ~seed:31 in
  (match r1 with
  | [ r ] -> (
      check_true "job ok" (Engine.Job.status_name r.Engine.Job.status = "ok");
      match r.Engine.Job.status with
      | Engine.Job.Completed (Engine.Job.Cluster { ball; t; _ }) ->
          check_true "t from t_fraction" (t = 6_400);
          check_true "ball covers something" (ball.Engine.Job.covered > 0)
      | _ -> Alcotest.fail "expected a Cluster output")
  | _ -> Alcotest.fail "expected exactly one result");
  let r4 = batch_results ~domains:4 ~seed:31 in
  Alcotest.(check (list (triple string string string)))
    "4 domains bit-identical to 1 domain" (canonical r1) (canonical r4)

let test_job_line_parse () =
  (match Engine.Job.parse "meb_fptas t_fraction=0.8 coreset=200 eps=1 delta=1e-7 id=m" with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok [ spec ] -> (
      (match spec.Engine.Job.kind with
      | Engine.Job.Meb { t_fraction; coreset } ->
          check_float "t_fraction" 0.8 t_fraction;
          check_int "coreset" 200 coreset
      | _ -> Alcotest.fail "wrong kind");
      match Engine.Job.parse (Engine.Job.spec_to_line spec) with
      | Ok [ spec' ] ->
          check_true "spec_to_line roundtrips"
            (Engine.Job.signature spec = Engine.Job.signature spec')
      | _ -> Alcotest.fail "rendered line does not parse")
  | Ok _ -> Alcotest.fail "expected one spec");
  (match Engine.Job.parse "meb_fptas eps=1 delta=1e-7 id=m" with
  | Ok [ { Engine.Job.kind = Engine.Job.Meb { coreset; _ }; _ } ] ->
      check_int "coreset defaults" 400 coreset
  | _ -> Alcotest.fail "default-coreset line must parse");
  match Engine.Job.parse "meb_fptas coreset=zero eps=1 delta=1e-7 id=m" with
  | Error e -> check_true "bad coreset mentions the key" (String.length e > 0)
  | Ok _ -> Alcotest.fail "bad coreset value must be rejected"

let suite =
  [
    stat_slow_case "sampled Badoiu-Clarkson ball vs exhaustive" test_coreset_radius_vs_exhaustive;
    test_budget_breakdown_composes;
    case "subsample amplification shrinks the coreset charge" test_breakdown_amplification;
    stat_slow_case "planted majority: coverage and radius" test_planted_majority_radius;
    stat_case "tiny database surfaces Center_bottom" test_tiny_database_bottom;
    case "derived-stream replay is bit-identical" test_replay_determinism;
    case "native and reference kernel tiers agree" test_kernel_tier_identity;
    slow_case "engine job kind: run, output, domain independence" test_engine_job_kind;
    case "jobs-file lines: roundtrip, default, rejection" test_job_line_parse;
  ]
