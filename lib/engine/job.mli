(** Job descriptions and results for the query engine.

    A job is one private query against a registered dataset, carrying its
    own [(ε, δ)] price (what the accountant is asked for), a failure
    probability β where the underlying solver takes one, and an optional
    deadline.  Three kinds map onto the three entry points the engine
    serves:

    - [one_cluster] — {!Privcluster.One_cluster.run_indexed} at
      [t = ⌈t_fraction · n⌉];
    - [k_cluster] — {!Privcluster.K_cluster.run} (Observation 3.5);
    - [quantile] — {!Privcluster.Quantile.quantile} on one coordinate axis
      of the dataset (an [(ε, 0)]-DP query; [delta] defaults to 0).

    {2 Jobs-file format}

    One job per line; [#] starts a comment; blank lines are skipped:

    {v
    # kind        key=value ...
    one_cluster   t_fraction=0.45 eps=0.5 delta=1e-7
    k_cluster     k=3 t_fraction=0.2 eps=1.0 delta=1e-7 deadline=30
    quantile      q=0.5 axis=0 eps=0.25 id=median-x
    v}

    Recognized keys: [eps] (required), [delta] (required for [one_cluster]
    and [k_cluster], default [0] otherwise), [beta] (default 0.1),
    [t_fraction] (default 0.5), [k] (required for [k_cluster]), [q]
    (default 0.5), [axis] (default 0), [deadline] (seconds, default none),
    [fallback] (true/false, default false; [one_cluster] only),
    [id] (default ["j<line-position>"]). *)

type kind =
  | One_cluster of { t_fraction : float }
  | K_cluster of { k : int; t_fraction : float }
  | Quantile of { axis : int; q : float }

type spec = {
  id : string;
  kind : kind;
  eps : float;
  delta : float;
  beta : float;
  deadline_s : float option;
  fallback : bool;
      (** Opt-in graceful degradation: when the job cannot complete
          (retries exhausted, deadline blown, solver failure), run the
          radius-only fallback whose charge was reserved at admission and
          report {!Degraded}. *)
}

val kind_name : kind -> string
(** ["one_cluster"], ["k_cluster"], ["quantile"]. *)

val cost : spec -> Prim.Dp.params
(** What the accountant is charged: the job's [(ε, δ)]. *)

val fallback_cost : spec -> Prim.Dp.params option
(** What the accountant additionally {e reserves} at admission when the
    job opts into degradation: [(ε/2, δ/2)] for a [one_cluster] job with
    [fallback = true] — the GoodRadius stage share of the full pipeline's
    even split — and [None] otherwise. *)

val parse : ?default_beta:float -> string -> (spec list, string) result
(** Parse a whole jobs file (the contents, not a path).  [Error] carries a
    one-line message with the offending line number. *)

val spec_to_line : spec -> string
(** Render a spec back to the file format ([parse]-roundtrippable). *)

(** {1 Results} *)

type ball = { center : Geometry.Vec.t; radius : float; covered : int }

type output =
  | Cluster of { ball : ball; t : int; ratio_vs_hi : float; delta_bound : float }
      (** [ratio_vs_hi] is radius / r_hi against the registry's cached
          sandwich (the experiment suite's [w_private]). *)
  | Clusters of { balls : ball list; uncovered : int; failures : int }
  | Quantile_value of { value : float; target_rank : float }
  | Radius of { radius : float; t : int; delta_bound : float }
      (** The degraded fallback's output: a GoodRadius-only answer — a
          certified radius for target size [t], but no center. *)

type status =
  | Completed of output
  | Refused of string  (** Accountant refusal — the job never ran. *)
  | Timed_out of { elapsed_ms : float }
  | Solver_failed of string
      (** The private solver returned its failure value (or every retry
          attempt raised); the budget stays charged — noise may have been
          drawn. *)
  | Degraded of { output : output; reason : string }
      (** The job could not complete but its opt-in fallback did; the
          fallback's reserved charge is committed on top of the job's
          original charge.  [reason] names the original failure. *)

val status_name : status -> string
(** ["ok"], ["refused"], ["timeout"], ["failed"], ["degraded"] — the
    telemetry status vocabulary. *)

type result = { spec : spec; status : status; latency_ms : float; attempts : int }
(** [attempts] — execution attempts consumed (0 for refused jobs, 1 for
    a first-try success, more after retries). *)

val result_to_json : result -> Json.t

val detail : result -> string
(** The headline numbers (or the refusal/failure message) alone — the
    CLI's table cell. *)

val pp_result : Format.formatter -> result -> unit
(** One line: id, kind, status, latency, {!detail}. *)
