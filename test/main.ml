let () =
  Alcotest.run "privcluster"
    [
      ("rng", Test_rng.suite);
      ("mechanisms", Test_mechanisms.suite);
      ("sparse-vector", Test_sparse_vector.suite);
      ("stability-hist", Test_stability_hist.suite);
      ("composition", Test_composition.suite);
      ("zcdp", Test_zcdp.suite);
      ("noisy-avg", Test_noisy_avg.suite);
      ("privacy-smoke", Test_privacy_smoke.suite);
      ("vec", Test_vec.suite);
      ("pointset", Test_pointset.suite);
      ("flat-layout", Test_flat_layout.suite);
      ("grid", Test_grid.suite);
      ("interval-boxing", Test_interval_boxing.suite);
      ("jl-rotation", Test_jl_rotation.suite);
      ("seb", Test_seb.suite);
      ("kdtree", Test_kdtree.suite);
      ("recconcave", Test_recconcave.suite);
      ("good-radius", Test_good_radius.suite);
      ("good-center", Test_good_center.suite);
      ("one-cluster", Test_one_cluster.suite);
      ("domain", Test_domain.suite);
      ("quantile", Test_quantile.suite);
      ("kmeans", Test_kmeans.suite);
      ("applications", Test_applications.suite);
      ("baselines", Test_baselines.suite);
      ("workload", Test_workload.suite);
      ("profile", Test_profile.suite);
      ("robustness", Test_robustness.suite);
      ("engine", Test_engine.suite);
      ("faults", Test_faults.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
      ("pp", Test_pp.suite);
      ("invariants", Test_invariants.suite);
    ]
