lib/baselines/threshold_release.ml: Array Float Geometry Prim
