type t = { basis : Vec.t array }

(* Gram–Schmidt on iid Gaussian vectors; re-draws a vector on the
   (probability-zero) event that it is linearly dependent on its
   predecessors. *)
let make rng ~dim =
  if dim <= 0 then invalid_arg "Rotation.make: dim must be positive";
  let basis = Array.make dim [||] in
  let rec draw i =
    let v = Prim.Rng.gaussian_vector rng ~dim ~sigma:1.0 in
    for j = 0 to i - 1 do
      Vec.axpy (-.Vec.dot v basis.(j)) basis.(j) v
    done;
    let norm = Vec.norm2 v in
    if norm < 1e-10 then draw i else Vec.scale (1. /. norm) v
  in
  for i = 0 to dim - 1 do
    basis.(i) <- draw i
  done;
  { basis }

let identity ~dim =
  if dim <= 0 then invalid_arg "Rotation.identity: dim must be positive";
  { basis = Array.init dim (fun i -> Array.init dim (fun j -> if i = j then 1. else 0.)) }

let dim t = Array.length t.basis
let basis_vector t i = t.basis.(i)
let project t v i = Vec.dot v t.basis.(i)
let to_coords t v = Array.map (fun z -> Vec.dot v z) t.basis

let from_coords t c =
  if Array.length c <> dim t then invalid_arg "Rotation.from_coords: dimension mismatch";
  let acc = Vec.zero (dim t) in
  Array.iteri (fun i ci -> Vec.axpy ci t.basis.(i) acc) c;
  acc

let projection_bound ~dim ~n_points ~beta =
  if dim <= 0 || n_points <= 0 then invalid_arg "Rotation.projection_bound: positive args";
  if not (beta > 0. && beta < 1.) then invalid_arg "Rotation.projection_bound: beta in (0, 1)";
  let d = float_of_int dim in
  2. *. sqrt (log (d *. float_of_int n_points /. beta) /. d)
