(* Outlier screening: use the 1-cluster solver to build a private inlier
   predicate, then run a downstream private analysis on the screened data
   (the noise-reduction application of Section 1.1).

   Run with:  dune exec examples/outlier_screening.exe

   The scenario: sensor readings in R^2, 90% concentrated, 10% corrupted
   far-away readings.  Estimating the mean privately over the whole domain
   needs noise scaled to the domain diameter sqrt(2) AND suffers the
   outliers' bias; screening first shrinks both. *)

let () =
  let rng = Prim.Rng.create ~seed:11 () in
  let grid = Geometry.Grid.create ~axis_size:1024 ~dim:2 in
  let eps = 1.0 and delta = 1e-6 in
  let w =
    Workload.Synth.with_outliers rng ~grid ~n:4000 ~outlier_fraction:0.1 ~inlier_radius:0.03
  in
  let data = w.Workload.Synth.data in
  let truth = w.Workload.Synth.inlier_center in

  (* Baseline: private mean over the whole domain, full (eps, delta). *)
  let report label = function
    | Prim.Noisy_avg.Average a ->
        Printf.printf "%-34s error %.4f (sigma/coord %.4f)\n" label
          (Geometry.Vec.dist a.Prim.Noisy_avg.average truth)
          a.Prim.Noisy_avg.sigma
    | Prim.Noisy_avg.Bottom -> Printf.printf "%-34s bottom\n" label
  in
  report "unscreened private mean:"
    (Prim.Noisy_avg.run rng ~eps ~delta
       ~diameter:(Geometry.Grid.diameter grid)
       ~pred:(fun _ -> true)
       ~dim:2 data);

  (* Screened: half the budget finds the 90% ball, half averages inside it.
     Total privacy is the same (eps, delta) by basic composition. *)
  match
    Privcluster.Outlier.detect rng Privcluster.Profile.practical ~grid ~eps:(eps /. 2.)
      ~delta:(delta /. 2.) ~beta:0.1 ~inlier_fraction:0.85 data
  with
  | Error f ->
      Format.printf "screening failed: %a@." Privcluster.One_cluster.pp_failure f
  | Ok det ->
      let excluded =
        Array.fold_left
          (fun acc i -> if det.Privcluster.Outlier.inlier data.(i) then acc else acc + 1)
          0 w.Workload.Synth.outlier_indices
      in
      Printf.printf "screen ball: radius %.3f, excludes %d/%d planted outliers\n"
        det.Privcluster.Outlier.ball_radius excluded
        (Array.length w.Workload.Synth.outlier_indices);
      report "screened private mean:"
        (Privcluster.Outlier.screened_mean rng ~eps:(eps /. 2.) ~delta:(delta /. 2.) det data)
