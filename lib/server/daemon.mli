(** privclusterd: the resident multi-tenant private-query daemon.

    One process serves many tenants over a Unix-domain or TCP socket
    speaking the {!Wire} line protocol.  Each tenant owns an isolated
    {!Engine.Service} (datasets, ledgers, telemetry); every ledger
    operation is journaled to the {!Wal} {e before} results reach the
    client, so ε/δ spend survives any crash — including [kill -9] — and
    is replayed when the tenant re-registers the dataset after restart.

    Threading: the main/accept thread multiplexes new connections; each
    connection gets a reader thread that parses, authenticates, and
    submits work; a single executor thread (see {!Admission}) runs
    everything that touches tenant state, so services, accountants and
    the WAL need no further locking.  Shedding happens at submission,
    strictly before any budget charge.

    Shutdown: {!stop} (or SIGTERM/SIGINT under {!run}) stops accepting,
    sheds new runs with [draining], finishes every accepted item,
    flushes the WAL, and closes connections — exit 0 with no work
    dropped. *)

type listen = [ `Unix of string | `Tcp of string * int ]
(** A TCP port of [0] binds an ephemeral port (see {!sockaddr}). *)

type config = {
  listen : listen;
  wal_path : string;
  tenants : Tenants.spec list;
  capacity : int;  (** Bound on the queued-run backlog. *)
  domains : int;  (** Worker domains per batch (the pool size). *)
  retries : int;
  seed : int;  (** Service base seed (a [run]'s [seed] overrides per batch). *)
  sync : bool;  (** WAL fsync per record; [false] only for benchmarks. *)
  serving_stats : bool;
      (** Collect serving telemetry (latency histograms, burn windows,
          shed counters).  Off, the [health]/[stats] verbs answer with
          empty bodies; exists chiefly for the B15 overhead baseline. *)
  trace_sample : int;
      (** Head-sample every request whose key hashes to [0 mod N]
          ([0] = off).  Deterministic (FNV-1a of tenant/verb/rid): no
          RNG is consulted, outputs are bit-identical either way. *)
  slow_threshold_ms : float;
      (** Requests at or above this executor duration get their span
          tree written to the exemplar ring. *)
  slow_log : string option;  (** Exemplar ring directory; [None] = no ring. *)
  slow_keep : int;  (** Newest-N exemplars retained in the ring. *)
  slo_rules : Obs.Slo.rule list;  (** Evaluated by the [health] verb. *)
}

val default_config : config
(** Unix socket ["privclusterd.sock"], WAL ["privclusterd.wal"], no
    tenants, capacity 64, 2 domains, 2 retries, seed 1, sync on;
    serving stats on, sampling off, slow threshold 250 ms, no slow-log
    ring, keep 64, {!Obs.Slo.default_rules}. *)

val max_request_bytes : int
(** Longest accepted request line (8 MiB).  A connection that sends a
    longer line — or streams that many bytes with no newline at all,
    authenticated or not — gets one [bad_request] reply and is closed. *)

type t

val start : config -> (t, string) result
(** Recover the WAL (refusing a corrupt one), bind the socket, and spawn
    the accept and executor threads.  Returns once the daemon is
    accepting. *)

val sockaddr : t -> Unix.sockaddr
(** The bound address — resolves an ephemeral TCP port. *)

val stop : t -> unit
(** Graceful drain as described above; blocks until fully stopped.
    Idempotent. *)

val run : ?on_ready:(t -> unit) -> config -> (unit, string) result
(** {!start}, then block until SIGTERM or SIGINT, then {!stop}.  The
    foreground entry point used by [privcluster-cli serve]. *)
