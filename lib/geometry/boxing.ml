type t = { partitions : Interval.partition array }
type key = int array

let make rng ~dim ~len =
  if dim <= 0 then invalid_arg "Boxing.make: dim must be positive";
  { partitions = Array.init dim (fun _ -> Interval.make rng ~len) }

let of_partitions partitions =
  if Array.length partitions = 0 then invalid_arg "Boxing.of_partitions: empty";
  { partitions }

let dim t = Array.length t.partitions
let side t i = Interval.len t.partitions.(i)

let key_of t v =
  if Vec.dim v <> dim t then invalid_arg "Boxing.key_of: dimension mismatch";
  Array.mapi (fun i x -> Interval.index_of t.partitions.(i) x) v

let bounds t key =
  if Array.length key <> dim t then invalid_arg "Boxing.bounds: bad key";
  Array.mapi (fun i j -> Interval.bounds t.partitions.(i) j) key

let center t key = Array.map (fun (lo, hi) -> 0.5 *. (lo +. hi)) (bounds t key)

let l2_diameter t =
  sqrt
    (Array.fold_left
       (fun acc p ->
         let s = Interval.len p in
         acc +. (s *. s))
       0. t.partitions)

let key_of_row t st ~off =
  Array.init (dim t) (fun i -> Interval.index_of t.partitions.(i) st.(off + i))

let occupancy t points = Prim.Stability_hist.count_by ~key:(key_of t) points

let max_occupancy t points =
  List.fold_left (fun acc (_, c) -> max acc c) 0 (occupancy t points)

(* Flat variants: histogram the rows of a pointset without boxing any
   point.  Keys are inserted in point order into a table of the same
   initial size as the boxed path, so the resulting cell list is
   identical (Stability_hist.count_by preserves insertion order). *)
let occupancy_ps t ps =
  if Pointset.dim ps <> dim t then invalid_arg "Boxing.occupancy_ps: dimension mismatch";
  let st = Pointset.storage ps and offs = Pointset.row_offsets ps in
  Prim.Stability_hist.count_by
    ~key:(fun i -> key_of_row t st ~off:offs.(i))
    (Array.init (Pointset.n ps) Fun.id)

let max_occupancy_ps t ps =
  List.fold_left (fun acc (_, c) -> max acc c) 0 (occupancy_ps t ps)
