(* Quickstart: privately locate a small cluster.

   Run with:  dune exec examples/quickstart.exe

   The scenario: 5000 records in a 2-dimensional feature space (the unit
   square, quantized to a 256-point grid per axis), 40% of which form a
   tight cluster; we want a small ball containing at least 1800 of them
   under (2, 1e-6)-differential privacy. *)

let () =
  let rng = Prim.Rng.create ~seed:2016 () in

  (* 1. The finite domain X^d (Definition 1.2): differential privacy for
     this problem is impossible over infinite domains (paper, Section 5),
     so the domain is explicit. *)
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in

  (* 2. Some data: a planted cluster plus uniform background.  Any
     [float array array] whose rows lie on the grid works. *)
  let workload =
    Workload.Synth.planted_ball rng ~grid ~n:5000 ~cluster_fraction:0.4 ~cluster_radius:0.04
  in
  let points = workload.Workload.Synth.points in

  (* 3. Solve.  [practical] uses laptop-scale constants; [paper] uses the
     exact constants of Algorithms 1-2. *)
  let result =
    Privcluster.One_cluster.run rng Privcluster.Profile.practical ~grid ~eps:2.0 ~delta:1e-6
      ~beta:0.1 ~t:1800 points
  in

  match result with
  | Error failure ->
      Format.printf "no cluster found: %a@." Privcluster.One_cluster.pp_failure failure
  | Ok r ->
      let center = r.Privcluster.One_cluster.center in
      let radius = r.Privcluster.One_cluster.radius in
      Format.printf "center  = %a@." Geometry.Vec.pp center;
      Format.printf "radius  = %.4f (private, data-independent given the outputs)@." radius;
      let ps = Geometry.Pointset.create points in
      Format.printf "covers  = %d points (asked for >= t - Delta with t = 1800)@."
        (Geometry.Pointset.ball_count ps ~center ~radius);
      Format.printf "truth   : planted %d points at %a, radius %.4f@."
        workload.Workload.Synth.cluster_size Geometry.Vec.pp workload.Workload.Synth.cluster_center
        workload.Workload.Synth.cluster_radius;
      Format.printf "center error = %.4f@."
        (Geometry.Vec.dist center workload.Workload.Synth.cluster_center)
