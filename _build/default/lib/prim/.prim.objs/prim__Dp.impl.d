lib/prim/dp.ml: Float Format
