(** Finite point sets in R^d with the counting machinery of Section 3.1.

    For a database [S = (x_1 … x_n)], a center [p] and radius [r ≥ 0], the
    paper defines
    - [B_r(p, S)]  — the number of input points in the ball of radius [r]
      around [p];
    - [B̄_r(p, S) = min(B_r(p, S), t)] — the same count capped at the target
      cluster size [t];
    - [L(r, S) = (1/t)·max over distinct i_1…i_t of Σ B̄_r(x_{i_j}, S)] — the
      average of the [t] largest capped counts over balls centered at input
      points.

    [L(·, S)] is non-decreasing in [r] and has sensitivity 2 (Lemma 4.5);
    both facts are property-tested in [test/test_pointset.ml].

    An optional {!index} precomputes, for every input point, the sorted array
    of distances to all input points, turning each [L] evaluation into [n]
    binary searches instead of an O(n²·d) scan. *)

type t

val create : Vec.t array -> t
(** @raise Invalid_argument on an empty array or mixed dimensions. *)

val n : t -> int
val dim : t -> int
val point : t -> int -> Vec.t
val points : t -> Vec.t array
(** The underlying storage (not a copy; treat as read-only). *)

val map_points : (Vec.t -> Vec.t) -> t -> t
val filter : (Vec.t -> bool) -> t -> Vec.t array
val subset : t -> indices:int array -> t

val ball_count : t -> center:Vec.t -> radius:float -> int
(** [B_r(center, S)] — O(n·d). *)

val ball_points : t -> center:Vec.t -> radius:float -> Vec.t array
(** The points realizing {!ball_count}. *)

val capped_ball_count : t -> cap:int -> center:Vec.t -> radius:float -> int
(** [B̄_r]. *)

val score_l_direct : t -> cap:int -> radius:float -> float
(** [L(radius, S)] computed by brute force (O(n²·d)); reference
    implementation used by tests and fine for small inputs. *)

(** {1 Indexed evaluation} *)

type index
(** Either backend below; all query functions dispatch transparently. *)

val build_index : t -> index
(** Dense backend: O(n²·d) time, O(n²) memory — precomputes per-point
    sorted distance arrays, making every radius probe a batch of binary
    searches.  The fastest choice up to a few thousand points. *)

val build_tree_index : t -> index
(** k-d-tree backend ({!Kdtree}): O(n log n) memory-light construction;
    each radius probe costs n tree queries.  The scalable choice for large
    [n] (and the only reasonable one beyond ~10⁴ points). *)

val auto_index : ?dense_threshold:int -> t -> index
(** Dense when [n <= dense_threshold] (default 4096), tree otherwise. *)

val index_is_dense : index -> bool

val index_pointset : index -> t

val counts_within : index -> radius:float -> int array
(** For every input point, the number of input points within [radius]
    (inclusive); one binary search per point. *)

val score_l : index -> cap:int -> radius:float -> float
(** [L(radius, S)] via the index: per-point counts, cap at [cap], average the
    [cap] largest. *)

val kth_neighbor_distance : index -> k:int -> int -> float
(** [kth_neighbor_distance idx ~k i] — distance from point [i] to its
    [k]-th nearest input point, counting the point itself as the 1st
    (so [k = t] gives the radius of the smallest ball centered at [x_i]
    containing [t] points).  O(1) on the dense backend; on the tree
    backend it bisects the radius (exact: the count is a step function and
    the bisection brackets its jump to machine precision).
    @raise Invalid_argument if [k > n]. *)

val top_average : float array -> k:int -> float
(** Mean of the [k] largest entries (used by {!score_l}; exposed for tests).
    @raise Invalid_argument if [k <= 0] or [k] exceeds the length. *)
