(* Cross-cutting property tests: invariants the privacy/utility proofs rely
   on that are not tied to a single module's suite. *)

open Testutil

let vec2_gen = QCheck2.Gen.(array_size (QCheck2.Gen.return 2) (float_range 0. 1.))

let qcheck_grid_snap_idempotent =
  qcheck "grid snap is idempotent" vec2_gen (fun v ->
      let g = Geometry.Grid.create ~axis_size:37 ~dim:2 in
      let s = Geometry.Grid.snap g v in
      Geometry.Vec.equal ~tol:1e-12 s (Geometry.Grid.snap g s))

let qcheck_grid_snap_moves_at_most_half_step =
  qcheck "snap moves each coordinate at most step/2" vec2_gen (fun v ->
      let g = Geometry.Grid.create ~axis_size:37 ~dim:2 in
      let s = Geometry.Grid.snap g v in
      let h = Geometry.Grid.step g in
      Array.for_all2 (fun a b -> Float.abs (a -. b) <= (h /. 2.) +. 1e-12) v s)

let qcheck_domain_round_trip =
  qcheck "domain of_unit . to_unit moves points at most one grid step"
    QCheck2.Gen.(pair (float_range (-5.) 45.) (float_range 100. 140.))
    (fun (x, y) ->
      let dom = Privcluster.Domain.create ~lo:[| -10.; 95. |] ~hi:[| 50.; 145. |] ~axis_size:512 in
      let p = [| x; y |] in
      let back = Privcluster.Domain.of_unit dom (Privcluster.Domain.to_unit dom p) in
      let step_data =
        Privcluster.Domain.radius_of_unit dom (Geometry.Grid.step (Privcluster.Domain.grid dom))
      in
      Geometry.Vec.dist back p <= step_data +. 1e-9)

let qcheck_kmeans_canonical_is_sorted_permutation =
  qcheck "canonical_order: sorted permutation of the input"
    QCheck2.Gen.(array_size (int_range 1 8) vec2_gen)
    (fun centers ->
      let c = Geometry.Kmeans.canonical_order centers in
      let sorted_pairs a = List.sort compare (Array.to_list (Array.map Array.to_list a)) in
      sorted_pairs c = sorted_pairs centers
      &&
      let rec mono i =
        i + 1 >= Array.length c || (Array.to_list c.(i) <= Array.to_list c.(i + 1) && mono (i + 1))
      in
      mono 0)

let qcheck_zcdp_conversion_monotone =
  qcheck "zCDP->DP conversion is monotone in rho" QCheck2.Gen.(pair (float_range 0.001 2.) (float_range 0.001 2.))
    (fun (a, b) ->
      let lo = Float.min a b and hi = Float.max a b in
      Prim.Dp.eps (Prim.Zcdp.to_dp lo ~delta:1e-6) <= Prim.Dp.eps (Prim.Zcdp.to_dp hi ~delta:1e-6) +. 1e-12)

(* Observation A.2: NoisyAVG with a predicate whose accepted set is a ball
   not centered at the origin behaves like the shifted problem — the
   released average is equivariant under translation (same rng stream). *)
let test_noisy_avg_shift_equivariance () =
  let shift = [| 10.; -3. |] in
  let vs = Array.init 800 (fun i -> [| 0.4 +. (float_of_int (i mod 7) /. 100.); 0.6 |]) in
  let vs_shifted = Array.map (Geometry.Vec.add shift) vs in
  let run rng_seed vectors ~center =
    let r = rng ~seed:rng_seed () in
    Prim.Noisy_avg.run r ~eps:1.0 ~delta:1e-6 ~diameter:0.5
      ~pred:(fun v -> Geometry.Vec.dist v center <= 0.25)
      ~dim:2 vectors
  in
  match (run 7 vs ~center:[| 0.45; 0.6 |], run 7 vs_shifted ~center:[| 10.45; -2.4 |]) with
  | Prim.Noisy_avg.Average a, Prim.Noisy_avg.Average b ->
      check_true "same noise, shifted mean"
        (Geometry.Vec.equal ~tol:1e-9
           (Geometry.Vec.add a.Prim.Noisy_avg.average shift)
           b.Prim.Noisy_avg.average);
      check_float ~tol:1e-12 "same sigma" a.Prim.Noisy_avg.sigma b.Prim.Noisy_avg.sigma
  | _ -> Alcotest.fail "unexpected bottom"

let test_rec_concave_deterministic_by_seed () =
  let a = Array.init 3000 (fun i -> -.Float.abs (float_of_int (i - 1700))) in
  let run seed =
    (Recconcave.Rec_concave.solve (rng ~seed ()) ~eps:1.0 (Recconcave.Quality.of_array a))
      .Recconcave.Rec_concave.chosen
  in
  check_int "same seed, same choice" (run 5) (run 5)

let qcheck_boxing_diameter_bounds_points =
  qcheck "any two points of one box are within the l2 diameter" ~count:100
    QCheck2.Gen.(pair vec2_gen vec2_gen)
    (fun (a, b) ->
      let boxing =
        Geometry.Boxing.of_partitions
          [| Geometry.Interval.fixed ~shift:0.05 ~len:0.3; Geometry.Interval.fixed ~shift:0.1 ~len:0.2 |]
      in
      Geometry.Boxing.key_of boxing a <> Geometry.Boxing.key_of boxing b
      || Geometry.Vec.dist a b <= Geometry.Boxing.l2_diameter boxing +. 1e-9)

let qcheck_gamma_monotone_in_domain =
  qcheck "GoodRadius Gamma is monotone in |X|" ~count:30 QCheck2.Gen.(int_range 3 12)
    (fun bits ->
      let g axis =
        Privcluster.Good_radius.gamma Privcluster.Profile.practical
          ~grid:(Geometry.Grid.create ~axis_size:axis ~dim:2)
          ~eps:1.0 ~delta:1e-6 ~beta:0.1
      in
      g (1 lsl bits) <= g (1 lsl (bits + 1)) +. 1e-9)

let suite =
  [
    qcheck_grid_snap_idempotent;
    qcheck_grid_snap_moves_at_most_half_step;
    qcheck_domain_round_trip;
    qcheck_kmeans_canonical_is_sorted_permutation;
    qcheck_zcdp_conversion_monotone;
    case "noisy-avg shift equivariance (Obs A.2)" test_noisy_avg_shift_equivariance;
    case "rec-concave deterministic by seed" test_rec_concave_deterministic_by_seed;
    qcheck_boxing_diameter_bounds_points;
    qcheck_gamma_monotone_in_domain;
  ]
