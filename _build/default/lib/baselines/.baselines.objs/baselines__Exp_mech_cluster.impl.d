lib/baselines/exp_mech_cluster.ml: Array Geometry Prim Recconcave
