test/test_domain.ml: Alcotest Array Geometry Prim Printf Privcluster Testutil
