(* The JSON tree moved to [Obs.Json] (the exporters there need a parser
   too); this alias keeps every engine-internal [Json.] reference and the
   public [Engine.Json] path working unchanged. *)
include Obs.Json
