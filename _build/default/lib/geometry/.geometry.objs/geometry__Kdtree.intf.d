lib/geometry/kdtree.mli: Vec
