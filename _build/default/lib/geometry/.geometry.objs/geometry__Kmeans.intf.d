lib/geometry/kmeans.mli: Prim Vec
