test/test_good_center.ml: Alcotest Float Geometry Printf Privcluster Testutil Workload
