let num_scales size =
  if size < 1 then invalid_arg "Scale_quality.num_scales: size must be >= 1";
  let rec go w j = if w >= size then j + 1 else go (2 * w) (j + 1) in
  go 1 0

let width ~size j =
  if j < 0 then invalid_arg "Scale_quality.width: negative scale";
  (* Guard against overflow for large j. *)
  if j >= 62 then size else min (1 lsl j) size

let interval_min q ~lo ~hi = Float.min (Quality.eval q lo) (Quality.eval q hi)

let eval q j =
  let size = Quality.size q in
  let w = width ~size j in
  let best = ref neg_infinity in
  for a = 0 to size - w do
    let v = interval_min q ~lo:a ~hi:(a + w - 1) in
    if v > !best then best := v
  done;
  !best

let quality q = Quality.create ~size:(num_scales (Quality.size q)) ~f:(eval q)
