(* The k-d tree, checked against brute force, plus the tree-backed
   Pointset index. *)

open Testutil

let brute_count pts center radius =
  Array.fold_left
    (fun acc p -> if Geometry.Vec.dist p center <= radius then acc + 1 else acc)
    0 pts

let random_points r ~n ~d = Array.init n (fun _ -> Prim.Rng.gaussian_vector r ~dim:d ~sigma:1.0)

let qcheck_count_matches_brute =
  qcheck "count_within = brute force" ~count:100
    QCheck2.Gen.(
      triple (int_range 1 120) (int_range 1 4) (float_range 0. 2.))
    (fun (n, d, radius) ->
      let r = rng ~seed:(n + (d * 1000)) () in
      let pts = random_points r ~n ~d in
      let tree = Geometry.Kdtree.build pts in
      let center = Prim.Rng.gaussian_vector r ~dim:d ~sigma:1.0 in
      Geometry.Kdtree.count_within tree ~center ~radius = brute_count pts center radius)

let test_build_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Kdtree.build: empty") (fun () ->
      ignore (Geometry.Kdtree.build [||]));
  Alcotest.check_raises "mixed" (Invalid_argument "Kdtree.build: mixed dimensions") (fun () ->
      ignore (Geometry.Kdtree.build [| [| 1. |]; [| 1.; 2. |] |]))

let test_size_dim () =
  let r = rng () in
  let tree = Geometry.Kdtree.build (random_points r ~n:321 ~d:3) in
  check_int "size" 321 (Geometry.Kdtree.size tree);
  check_int "dim" 3 (Geometry.Kdtree.dim tree)

let test_duplicates () =
  (* Heavy duplication exercises the zero-width-split fallback. *)
  let pts = Array.init 200 (fun i -> if i < 150 then [| 0.5; 0.5 |] else [| 0.9; 0.1 |]) in
  let tree = Geometry.Kdtree.build pts in
  check_int "duplicates counted" 150
    (Geometry.Kdtree.count_within tree ~center:[| 0.5; 0.5 |] ~radius:0.);
  check_int "all" 200 (Geometry.Kdtree.count_within tree ~center:[| 0.5; 0.5 |] ~radius:2.)

let test_points_within () =
  let r = rng () in
  let pts = random_points r ~n:300 ~d:2 in
  let tree = Geometry.Kdtree.build pts in
  let center = [| 0.; 0. |] and radius = 0.8 in
  let got = Geometry.Kdtree.points_within tree ~center ~radius in
  check_int "cardinality matches count" (brute_count pts center radius) (Array.length got);
  Array.iter
    (fun p -> check_true "inside" (Geometry.Vec.dist p center <= radius +. 1e-12))
    got

let test_iter_within () =
  let r = rng () in
  let pts = random_points r ~n:200 ~d:2 in
  let tree = Geometry.Kdtree.build pts in
  let visited = ref 0 in
  Geometry.Kdtree.iter_within tree ~center:[| 0.; 0. |] ~radius:1.0 (fun _ -> incr visited);
  check_int "iter count = count_within" (Geometry.Kdtree.count_within tree ~center:[| 0.; 0. |] ~radius:1.0) !visited

let test_counts_within_all () =
  let r = rng () in
  let pts = random_points r ~n:80 ~d:2 in
  let tree = Geometry.Kdtree.build pts in
  let counts = Geometry.Kdtree.counts_within_all tree pts ~radius:0.5 in
  check_int "one count per center" 80 (Array.length counts);
  Array.iteri
    (fun i c -> check_int "batch matches single" (Geometry.Kdtree.count_within tree ~center:pts.(i) ~radius:0.5) c)
    counts

let test_negative_radius () =
  let tree = Geometry.Kdtree.build [| [| 0. |] |] in
  check_int "negative radius empty" 0
    (Geometry.Kdtree.count_within tree ~center:[| 0. |] ~radius:(-1.))

let qcheck_nearest_matches_brute =
  qcheck "nearest = brute force" ~count:100 QCheck2.Gen.(pair (int_range 1 80) (int_range 1 4))
    (fun (n, d) ->
      let r = rng ~seed:(n * 31 + d) () in
      let pts = random_points r ~n ~d in
      let tree = Geometry.Kdtree.build pts in
      let q = Prim.Rng.gaussian_vector r ~dim:d ~sigma:1.5 in
      let _, dist = Geometry.Kdtree.nearest tree q in
      let brute =
        Array.fold_left (fun acc p -> Float.min acc (Geometry.Vec.dist p q)) infinity pts
      in
      Float.abs (dist -. brute) < 1e-9)

(* --- Tree-backed Pointset index --- *)

let test_tree_index_matches_dense () =
  let r = rng () in
  let grid = Geometry.Grid.create ~axis_size:128 ~dim:2 in
  let w = Workload.Synth.planted_ball r ~grid ~n:500 ~cluster_fraction:0.4 ~cluster_radius:0.06 in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  let dense = Geometry.Pointset.build_index ps in
  let tree = Geometry.Pointset.build_tree_index ps in
  check_true "dense flag" (Geometry.Pointset.index_is_dense dense);
  check_true "tree flag" (not (Geometry.Pointset.index_is_dense tree));
  List.iter
    (fun radius ->
      Alcotest.(check (array int))
        (Printf.sprintf "counts at r=%.2f" radius)
        (Geometry.Pointset.counts_within dense ~radius)
        (Geometry.Pointset.counts_within tree ~radius);
      check_float ~tol:1e-9
        (Printf.sprintf "score at r=%.2f" radius)
        (Geometry.Pointset.score_l dense ~cap:200 ~radius)
        (Geometry.Pointset.score_l tree ~cap:200 ~radius))
    [ 0.; 0.03; 0.1; 0.5 ];
  for i = 0 to 20 do
    check_float ~tol:1e-7
      (Printf.sprintf "kth neighbor of %d" i)
      (Geometry.Pointset.kth_neighbor_distance dense ~k:50 i)
      (Geometry.Pointset.kth_neighbor_distance tree ~k:50 i)
  done

let test_auto_index () =
  let r = rng () in
  let small = Geometry.Pointset.create (random_points r ~n:100 ~d:2) in
  check_true "small is dense" (Geometry.Pointset.index_is_dense (Geometry.Pointset.auto_index small));
  check_true "threshold forces tree"
    (not (Geometry.Pointset.index_is_dense (Geometry.Pointset.auto_index ~dense_threshold:50 small)))

let test_good_radius_on_tree_index () =
  (* The whole radius stage must work unchanged on the scalable backend. *)
  let r, grid, w = small_workload ~seed:13 ~n:600 ~fraction:0.5 ~radius:0.05 () in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  let idx = Geometry.Pointset.build_tree_index ps in
  let result =
    Privcluster.Good_radius.run r Privcluster.Profile.practical ~grid ~eps:4.0 ~delta:1e-6
      ~beta:0.1 ~t:300 idx
  in
  check_true "radius positive and bounded"
    (result.Privcluster.Good_radius.radius >= 0.
    && result.Privcluster.Good_radius.radius <= Geometry.Grid.diameter grid)

let suite =
  [
    qcheck_count_matches_brute;
    case "build validation" test_build_validation;
    case "size / dim" test_size_dim;
    case "duplicates" test_duplicates;
    case "points_within" test_points_within;
    case "iter_within" test_iter_within;
    case "counts_within_all" test_counts_within_all;
    case "negative radius" test_negative_radius;
    qcheck_nearest_matches_brute;
    case "tree index matches dense index" test_tree_index_matches_dense;
    case "auto index" test_auto_index;
    case "good radius on tree index" test_good_radius_on_tree_index;
  ]
