examples/outlier_screening.ml: Array Format Geometry Prim Printf Privcluster Workload
