(** A k-d tree over R^d for ball-counting queries.

    The O(n²)-memory distance index of {!Pointset} is the fastest way to
    evaluate GoodRadius's score when the same point set is probed at many
    radii, but it stops scaling around a few thousand points.  This tree
    answers single ball-count / ball-membership queries in
    O(n^{1−1/d} + out) without any quadratic precomputation, which is what
    the large-n experiment paths and the outlier predicates use.

    The tree stores the points it is built from; queries never allocate
    more than the output. *)

type t

val build : Vec.t array -> t
(** O(n log n) construction (median splits along the widest axis).
    @raise Invalid_argument on an empty array or mixed dimensions. *)

val size : t -> int
val dim : t -> int

val count_within : t -> center:Vec.t -> radius:float -> int
(** Number of stored points with [dist p center <= radius] (inclusive, like
    {!Pointset.ball_count}). *)

val iter_within : t -> center:Vec.t -> radius:float -> (Vec.t -> unit) -> unit

val points_within : t -> center:Vec.t -> radius:float -> Vec.t array

val nearest : t -> Vec.t -> Vec.t * float
(** Nearest stored point and its distance.  @raise Invalid_argument on an
    empty tree (cannot happen via {!build}). *)

val counts_within_all : t -> Vec.t array -> radius:float -> int array
(** [count_within] for a batch of centers (the per-point counts feeding
    GoodRadius's score on large inputs). *)
