type spec = {
  runs : int;
  n : int;
  dim : int;
  axis : int;
  fraction : float;
  radius : float;
  t_fraction : float;
  eps : float;
  delta : float;
  beta : float;
  w_max : float;
}

let default_spec =
  {
    runs = 200;
    n = 1500;
    dim = 2;
    axis = 256;
    fraction = 0.5;
    radius = 0.05;
    t_fraction = 0.9;
    eps = 2.0;
    delta = 1e-6;
    beta = 0.1;
    w_max = 40.;
  }

type outcome = {
  spec : spec;
  solver_failures : int;
  coverage_failures : int;
  radius_failures : int;
  failures : int;
  failure_rate : float;
  failure_ci : Stats.interval;
  median_w : float;
  median_coverage_margin : float;
  violation : bool;
}

(* One replayed run: solver failure / coverage failure / radius failure
   flags plus the diagnostics the medians are built from. *)
type run_result = {
  solver_failed : bool;
  coverage_failed : bool;
  radius_failed : bool;
  w : float option;
  coverage_margin : float option;
}

let one_run rng spec profile =
  let grid = Geometry.Grid.create ~axis_size:spec.axis ~dim:spec.dim in
  let w =
    Workload.Synth.planted_ball rng ~grid ~n:spec.n ~cluster_fraction:spec.fraction
      ~cluster_radius:spec.radius
  in
  let t =
    max 1 (int_of_float (spec.t_fraction *. float_of_int w.Workload.Synth.cluster_size))
  in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  let idx = Geometry.Pointset.auto_index ps in
  let _, r_hi = Workload.Metrics.r_opt_bounds_indexed idx ~t in
  let r_hi = Float.min r_hi w.Workload.Synth.cluster_radius in
  match
    Privcluster.One_cluster.run_indexed rng profile ~grid ~eps:spec.eps ~delta:spec.delta
      ~beta:spec.beta ~t idx
  with
  | Error _ ->
      {
        solver_failed = true;
        coverage_failed = false;
        radius_failed = false;
        w = None;
        coverage_margin = None;
      }
  | Ok r ->
      let center = r.Privcluster.One_cluster.center in
      let radius = r.Privcluster.One_cluster.radius in
      let covered = Geometry.Pointset.ball_count ps ~center ~radius in
      let need = float_of_int t -. r.Privcluster.One_cluster.delta_bound in
      let ratio = if r_hi > 0. then radius /. r_hi else Float.infinity in
      {
        solver_failed = false;
        coverage_failed = float_of_int covered < need;
        radius_failed = ratio > spec.w_max;
        w = Some ratio;
        coverage_margin = Some (float_of_int covered -. need);
      }

let median xs =
  match List.sort Float.compare xs with
  | [] -> Float.nan
  | sorted ->
      let n = List.length sorted in
      let a = Array.of_list sorted in
      if n land 1 = 1 then a.(n / 2) else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))

(* Shared fan-out and aggregation for every certified solver: [one] is the
   per-run replay, seeded from derived streams so the outcome is
   independent of [domains]. *)
let certify rng ~alpha ~domains ~spec one =
  if spec.runs <= 0 then invalid_arg "Certifier: runs must be positive";
  let tasks = Array.init spec.runs (fun i -> Engine.Pool.task i) in
  let outcomes =
    Engine.Pool.run ~domains
      ~f:(fun ~index:_ ~attempt:_ i -> one (Prim.Rng.derive rng ~stream:i) spec)
      tasks
  in
  let results =
    Array.to_list outcomes
    |> List.map (function
         | Engine.Pool.Done r -> r
         | Engine.Pool.Failed msg -> failwith ("Certifier: run raised: " ^ msg)
         | Engine.Pool.Timed_out _ -> assert false (* no deadlines set *))
  in
  let count f = List.length (List.filter f results) in
  let failures =
    count (fun r -> r.solver_failed || r.coverage_failed || r.radius_failed)
  in
  let failure_ci = Stats.clopper_pearson ~alpha ~k:failures ~n:spec.runs in
  {
    spec;
    solver_failures = count (fun r -> r.solver_failed);
    coverage_failures = count (fun r -> r.coverage_failed);
    radius_failures = count (fun r -> r.radius_failed);
    failures;
    failure_rate = float_of_int failures /. float_of_int spec.runs;
    failure_ci;
    median_w = median (List.filter_map (fun r -> r.w) results);
    median_coverage_margin = median (List.filter_map (fun r -> r.coverage_margin) results);
    violation = failure_ci.Stats.lo > spec.beta;
  }

let one_cluster rng ?(alpha = 0.05) ?(domains = 1) profile spec =
  certify rng ~alpha ~domains ~spec (fun rng spec -> one_run rng spec profile)

(* ---- the local-model competitor ----------------------------------- *)

(* The LDP pipeline needs n in the tens of thousands before its √n/ε
   count noise clears a minority cluster — exactly the crossover E1
   measures — so its contract is certified on a larger planted workload.
   The planted radius is itself a valid r_opt upper bound for
   t ≤ cluster_size (Synth), so no O(n²) index is ever built. *)
let local_default_spec =
  {
    default_spec with
    runs = 120;
    n = 20_000;
    fraction = 0.6;
    t_fraction = 0.8;
    w_max = 40.;
  }

let local_run rng spec =
  let grid = Geometry.Grid.create ~axis_size:spec.axis ~dim:spec.dim in
  let w =
    Workload.Synth.planted_ball rng ~grid ~n:spec.n ~cluster_fraction:spec.fraction
      ~cluster_radius:spec.radius
  in
  let t =
    max 1 (int_of_float (spec.t_fraction *. float_of_int w.Workload.Synth.cluster_size))
  in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  match Privcluster.Local_cluster.run rng ~grid ~eps:spec.eps ~beta:spec.beta ~t ps with
  | Error _ ->
      {
        solver_failed = true;
        coverage_failed = false;
        radius_failed = false;
        w = None;
        coverage_margin = None;
      }
  | Ok r ->
      let covered =
        Geometry.Pointset.ball_count ps ~center:r.Privcluster.Local_cluster.center
          ~radius:r.Privcluster.Local_cluster.radius
      in
      let need = float_of_int t -. r.Privcluster.Local_cluster.delta_bound in
      let ratio = r.Privcluster.Local_cluster.radius /. spec.radius in
      {
        solver_failed = false;
        coverage_failed = float_of_int covered < need;
        radius_failed = ratio > spec.w_max;
        w = Some ratio;
        coverage_margin = Some (float_of_int covered -. need);
      }

let local_cluster rng ?(alpha = 0.05) ?(domains = 1) spec =
  certify rng ~alpha ~domains ~spec local_run

(* ---- the coreset MEB competitor ----------------------------------- *)

let meb_default_spec =
  { default_spec with fraction = 0.9; t_fraction = 0.85; w_max = 20. }

let meb_run rng spec =
  let grid = Geometry.Grid.create ~axis_size:spec.axis ~dim:spec.dim in
  let w =
    Workload.Synth.planted_ball rng ~grid ~n:spec.n ~cluster_fraction:spec.fraction
      ~cluster_radius:spec.radius
  in
  let t =
    max 1 (int_of_float (spec.t_fraction *. float_of_int w.Workload.Synth.cluster_size))
  in
  let ps = Geometry.Pointset.create w.Workload.Synth.points in
  (* The radius stage's certified slack: its monotone search aims at
     t − slack and its own noise costs at most another slack. *)
  let slack =
    Recconcave.Monotone_search.accuracy_bound
      ~size:(Geometry.Grid.radius_candidates grid)
      ~eps:(spec.eps /. 2.) ~sensitivity:1.0 ~beta:spec.beta
  in
  match
    Baselines.Meb_fptas.run rng ~grid ~eps:spec.eps ~delta:spec.delta ~t ps
  with
  | Error _ ->
      {
        solver_failed = true;
        coverage_failed = false;
        radius_failed = false;
        w = None;
        coverage_margin = None;
      }
  | Ok r ->
      let covered =
        Geometry.Pointset.ball_count ps ~center:r.Baselines.Meb_fptas.center
          ~radius:r.Baselines.Meb_fptas.radius
      in
      let need = float_of_int t -. (2. *. slack) in
      let ratio = r.Baselines.Meb_fptas.radius /. spec.radius in
      {
        solver_failed = false;
        coverage_failed = float_of_int covered < need;
        radius_failed = ratio > spec.w_max;
        w = Some ratio;
        coverage_margin = Some (float_of_int covered -. need);
      }

let meb_fptas rng ?(alpha = 0.05) ?(domains = 1) spec =
  certify rng ~alpha ~domains ~spec meb_run
