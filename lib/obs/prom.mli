(** Prometheus text exposition (format version 0.0.4).

    A tiny model of metric families plus a renderer producing the plain
    [# HELP] / [# TYPE] text format that Prometheus and compatible
    scrapers ingest.  The engine's [Exposition] module builds families
    from telemetry and the accountant ledger; {!of_spans} derives span
    count / duration / charge families directly from a trace. *)

type labels = (string * string) list

type hist = {
  bounds : float array;  (** Upper bucket bounds, ascending ([+Inf] implicit). *)
  counts : int array;  (** Per-bucket (non-cumulative) counts; same length. *)
  sum : float;
  count : int;
}

type summary = {
  quantiles : (float * float) list;  (** [(q, value)] pairs, [q] in [0 .. 1]. *)
  sum : float;
  count : int;
}

type family =
  | Counter of { name : string; help : string; samples : (labels * float) list }
  | Gauge of { name : string; help : string; samples : (labels * float) list }
  | Histogram of { name : string; help : string; samples : (labels * hist) list }
  | Summary of { name : string; help : string; samples : (labels * summary) list }
      (** Renders [name{...,quantile="0.99"}] lines plus [_sum] / [_count]. *)

val sanitize_name : string -> string
(** Map to the metric-name alphabet [[a-zA-Z0-9_:]]; invalid characters
    become ['_'], and a leading digit gets a ['_'] prefix. *)

val escape_label_value : string -> string
(** Backslash, double-quote and newline escaped per the format spec. *)

val render : family list -> string
(** Full exposition text: one [# HELP] + [# TYPE] header per family,
    then its samples.  Histogram samples expand to cumulative
    [_bucket{le=...}] lines (ending at [le="+Inf"]), [_sum] and
    [_count]; summaries expand to per-quantile lines plus [_sum] /
    [_count].  Label values are escaped per the format spec.  Output is
    deterministic: families are sorted by (sanitized) name and each
    family's samples by label set, independent of construction order. *)

val of_spans : ?prefix:string -> Span.span list -> family list
(** Aggregate spans by (name, cat) into three counter families:
    [<prefix>_spans_total], [<prefix>_span_ms_total], and — over spans
    carrying charges — [<prefix>_span_epsilon_total] /
    [<prefix>_span_delta_total].  [prefix] defaults to ["privcluster"]. *)
