#!/bin/sh
# Regenerates the perf-trajectory table in PERFORMANCE.md from the committed
# BENCH_*.json captures (one per perf-relevant PR; see PERFORMANCE.md for
# the catalog).  The table lives between the bench-trajectory:begin/end
# markers and is never edited by hand.
#
#   ./scripts/bench_trajectory.sh          # rewrite the table in place
#   ./scripts/bench_trajectory.sh --check  # exit non-zero if the committed
#                                          # table is stale (CI runs this)
set -u

cd "$(dirname "$0")/.."

mode=${1:-write}
doc=PERFORMANCE.md

files=$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n)
if [ -z "$files" ]; then
  echo "bench_trajectory: no BENCH_*.json captures found" >&2
  exit 1
fi
if ! grep -q 'bench-trajectory:begin' "$doc"; then
  echo "bench_trajectory: $doc has no bench-trajectory markers" >&2
  exit 1
fi

# One column per capture, one row per Bechamel stage bench.  A smoke-only
# capture (empty timing array, e.g. BENCH_7) shows as "—"; the trend column
# is earliest-with-data over latest-with-data, so smoke captures never skew
# it.  ns_per_call is parsed line-by-line: the committed JSON is
# pretty-printed with "name" and "ns_per_call" on adjacent lines.
table=$(awk '
  FNR == 1 { nf++; label = FILENAME; sub(/\.json$/, "", label); labels[nf] = label }
  /"name": "privcluster\// {
    name = $0
    sub(/^.*"name": "privcluster\//, "", name); sub(/".*$/, "", name)
    pending = name
    if (!(name in seen)) { seen[name] = ++nb; benches[nb] = name }
    next
  }
  pending != "" && /"ns_per_call":/ {
    v = $0; sub(/^.*"ns_per_call": */, "", v); sub(/,.*$/, "", v)
    ns[pending "," nf] = v + 0
    pending = ""
  }
  END {
    header = "| bench (time/call) |"; rule = "|---|"
    for (f = 1; f <= nf; f++) { header = header " " labels[f] " |"; rule = rule "---|" }
    print header " trend |"; print rule "---|"
    for (b = 1; b <= nb; b++) {
      name = benches[b]
      row = "| " name " |"
      first = 0; last = 0
      for (f = 1; f <= nf; f++) {
        key = name "," f
        if (key in ns) {
          v = ns[key]
          row = row sprintf(" %.2f ms |", v / 1e6)
          if (first == 0) first = v
          last = v
        } else row = row " — |"
      }
      if (first > 0 && last > 0) row = row sprintf(" %.1fx |", first / last)
      else row = row " — |"
      print row
    }
  }
' $files)

new=$(awk -v table="$table" '
  /bench-trajectory:begin/ { print; print ""; print table; print ""; skip = 1 }
  /bench-trajectory:end/ { skip = 0 }
  !skip { print }
' "$doc")

case "$mode" in
  --check)
    if [ "$new" = "$(cat "$doc")" ]; then
      echo "bench_trajectory: $doc table is current."
    else
      echo "bench_trajectory: $doc table is STALE; run ./scripts/bench_trajectory.sh" >&2
      printf '%s\n' "$new" | diff -u "$doc" - >&2 || true
      exit 1
    fi
    ;;
  write | *)
    printf '%s\n' "$new" >"$doc.tmp" && mv "$doc.tmp" "$doc"
    echo "bench_trajectory: $doc table regenerated from: $(echo $files | tr '\n' ' ')"
    ;;
esac
