type t = { lo : Geometry.Vec.t; side : float; grid : Geometry.Grid.t }

let create ~lo ~hi ~axis_size =
  let d = Geometry.Vec.dim lo in
  if Geometry.Vec.dim hi <> d then invalid_arg "Domain.create: dimension mismatch";
  let side = ref 0. in
  for i = 0 to d - 1 do
    if not (lo.(i) < hi.(i)) then invalid_arg "Domain.create: lo must be below hi on every axis";
    side := Float.max !side (hi.(i) -. lo.(i))
  done;
  { lo = Geometry.Vec.copy lo; side = !side; grid = Geometry.Grid.create ~axis_size ~dim:d }

let of_points ?(margin = 0.05) ~axis_size points =
  if Array.length points = 0 then invalid_arg "Domain.of_points: empty";
  let d = Geometry.Vec.dim points.(0) in
  let lo = Array.make d infinity and hi = Array.make d neg_infinity in
  Array.iter
    (fun p ->
      for i = 0 to d - 1 do
        if p.(i) < lo.(i) then lo.(i) <- p.(i);
        if p.(i) > hi.(i) then hi.(i) <- p.(i)
      done)
    points;
  let widest =
    Array.fold_left Float.max 1e-9 (Array.init d (fun i -> hi.(i) -. lo.(i)))
  in
  let pad = margin *. widest in
  let lo = Array.map (fun x -> x -. pad) lo and hi = Array.map (fun x -> x +. pad) hi in
  create ~lo ~hi ~axis_size

let grid t = t.grid
let scale t = t.side

let to_unit t p =
  if Geometry.Vec.dim p <> Geometry.Grid.dim t.grid then
    invalid_arg "Domain.to_unit: dimension mismatch";
  Geometry.Grid.snap t.grid (Array.mapi (fun i x -> (x -. t.lo.(i)) /. t.side) p)

let of_unit t p =
  if Geometry.Vec.dim p <> Geometry.Grid.dim t.grid then
    invalid_arg "Domain.of_unit: dimension mismatch";
  Array.mapi (fun i x -> t.lo.(i) +. (x *. t.side)) p

let radius_of_unit t r = r *. t.side
let radius_to_unit t r = r /. t.side

type result = {
  center : Geometry.Vec.t;
  radius : float;
  unit_result : One_cluster.result;
}

let solve rng profile dom ~eps ~delta ~beta ~t points =
  let unit_points = Array.map (to_unit dom) points in
  match One_cluster.run rng profile ~grid:dom.grid ~eps ~delta ~beta ~t unit_points with
  | Error e -> Error e
  | Ok unit_result ->
      Ok
        {
          center = of_unit dom unit_result.One_cluster.center;
          radius = radius_of_unit dom unit_result.One_cluster.radius;
          unit_result;
        }
