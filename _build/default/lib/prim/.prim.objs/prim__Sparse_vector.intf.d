lib/prim/sparse_vector.mli: Rng
