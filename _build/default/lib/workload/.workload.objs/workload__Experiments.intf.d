lib/workload/experiments.mli:
