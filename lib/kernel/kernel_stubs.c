/* Inner-loop kernels over OCaml float arrays.
 *
 * An OCaml [float array] is already a flat, unboxed, C-contiguous buffer
 * of doubles (the "flat float array" representation), so these stubs read
 * it in place — no Bigarray wrapper, no copy.  Every stub is [@@noalloc]:
 * it allocates nothing on the OCaml heap and makes no callbacks, so the
 * arrays cannot move while a kernel runs (a domain only services a
 * stop-the-world request at an allocation or polling point).
 *
 * Determinism contract (see DESIGN.md §11): every kernel performs the
 * SAME floating-point operations in the SAME order as its pure-OCaml
 * reference in Kernel.Ref, so results are bit-for-bit identical.  The
 * build passes -ffp-contract=off so the compiler cannot fuse a*b+c into
 * an FMA (which would round differently from the reference).  Loops that
 * only compare, count, or sum integers are exact by construction.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <math.h>
#include <stdlib.h>
#include <string.h>

/* Flat float array -> double*.  Valid for the duration of a noalloc stub. */
#define DBL(v) ((double *)Op_val(v))
/* Element i of an OCaml int array (tagged immediates). */
#define IDX(v, i) Long_val(Field((v), (i)))

/* ---------------------------------------------------------------- counts */

/* #{ i in [lo, hi] : dist2(st[offs[i]..], q[qoff..]) <= r2 }.  Same
 * accumulation order (j = 0..dim-1) as Vec.dist_sq_to_row / dist_sq_rows. */
CAMLprim value pc_count_within(value st, value offs, value vlo, value vhi,
                               value q, value vqoff, value vdim, value vr2)
{
  const double *s = DBL(st);
  const double *qp = DBL(q) + Long_val(vqoff);
  long lo = Long_val(vlo), hi = Long_val(vhi), dim = Long_val(vdim);
  double r2 = Double_val(vr2);
  long c = 0;
  for (long i = lo; i <= hi; i++) {
    const double *row = s + IDX(offs, i);
    double acc = 0.;
    for (long j = 0; j < dim; j++) {
      double d = row[j] - qp[j];
      acc += d * d;
    }
    if (acc <= r2) c++;
  }
  return Val_long(c);
}

CAMLprim value pc_count_within_bc(value *argv, int argn)
{
  (void)argn;
  return pc_count_within(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                         argv[6], argv[7]);
}

/* ------------------------------------------------------------- distances */

/* out[i] = dist(q[qoff..], st[offs[i]..]) for i in [0, n). */
CAMLprim value pc_dists_to_rows(value st, value offs, value vn, value q,
                                value vqoff, value vdim, value out)
{
  const double *s = DBL(st);
  const double *qp = DBL(q) + Long_val(vqoff);
  double *o = DBL(out);
  long n = Long_val(vn), dim = Long_val(vdim);
  for (long i = 0; i < n; i++) {
    const double *row = s + IDX(offs, i);
    double acc = 0.;
    for (long j = 0; j < dim; j++) {
      double d = qp[j] - row[j];
      acc += d * d;
    }
    o[i] = sqrt(acc);
  }
  return Val_unit;
}

CAMLprim value pc_dists_to_rows_bc(value *argv, int argn)
{
  (void)argn;
  return pc_dists_to_rows(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                          argv[6]);
}

/* ---------------------------------------------------------------- sorting */

/* In-place quicksort (median-of-three, insertion sort below 16) on a
 * double buffer.  The inputs are distances — never NaN, never -0.0 — so
 * the sorted sequence is the unique ascending ordering and agrees with
 * Array.sort Float.compare on the same multiset. */
static void ins_sort_d(double *a, long lo, long hi)
{
  for (long i = lo + 1; i <= hi; i++) {
    double x = a[i];
    long j = i - 1;
    while (j >= lo && a[j] > x) {
      a[j + 1] = a[j];
      j--;
    }
    a[j + 1] = x;
  }
}

static void qsort_d(double *a, long lo, long hi)
{
  while (hi - lo > 15) {
    long mid = lo + (hi - lo) / 2;
    double p0 = a[lo], p1 = a[mid], p2 = a[hi];
    double pivot = p0 < p1 ? (p1 < p2 ? p1 : (p0 < p2 ? p2 : p0))
                           : (p0 < p2 ? p0 : (p1 < p2 ? p2 : p1));
    long i = lo, j = hi;
    while (i <= j) {
      while (a[i] < pivot) i++;
      while (a[j] > pivot) j--;
      if (i <= j) {
        double t = a[i];
        a[i] = a[j];
        a[j] = t;
        i++;
        j--;
      }
    }
    /* Recurse into the smaller side, loop on the larger. */
    if (j - lo < hi - i) {
      qsort_d(a, lo, j);
      lo = i;
    } else {
      qsort_d(a, i, hi);
      hi = j;
    }
  }
  ins_sort_d(a, lo, hi);
}

CAMLprim value pc_sort_floats(value arr, value vlen)
{
  long n = Long_val(vlen);
  if (n > 1) qsort_d(DBL(arr), 0, n - 1);
  return Val_unit;
}

/* k-th smallest (1-based) by quickselect; destroys the scratch buffer.
 * Returns the same value as "sort ascending; take [k-1]" — the k-th order
 * statistic of the multiset. */
CAMLprim double pc_kth_smallest_nat(value arr, value vlen, value vk)
{
  double *a = DBL(arr);
  long lo = 0, hi = Long_val(vlen) - 1, k = Long_val(vk) - 1;
  while (hi > lo) {
    if (hi - lo < 16) {
      ins_sort_d(a, lo, hi);
      break;
    }
    long mid = lo + (hi - lo) / 2;
    double p0 = a[lo], p1 = a[mid], p2 = a[hi];
    double pivot = p0 < p1 ? (p1 < p2 ? p1 : (p0 < p2 ? p2 : p0))
                           : (p0 < p2 ? p0 : (p1 < p2 ? p2 : p1));
    long i = lo, j = hi;
    while (i <= j) {
      while (a[i] < pivot) i++;
      while (a[j] > pivot) j--;
      if (i <= j) {
        double t = a[i];
        a[i] = a[j];
        a[j] = t;
        i++;
        j--;
      }
    }
    if (k <= j) hi = j;
    else if (k >= i) lo = i;
    else break; /* j < k < i: a[k] already in final position */
  }
  return a[k];
}

CAMLprim value pc_kth_smallest_byte(value arr, value vlen, value vk)
{
  return caml_copy_double(pc_kth_smallest_nat(arr, vlen, vk));
}

/* ------------------------------------------------- batched radius counts */

/* row: ascending distances, length len.  radii: ascending, length nr.
 * out[j*stride + col] = #{ x in row : x <= radii[j] } for j in [0, nr).
 * Exact integer counts, so strategy choice is free: binary search per
 * radius when nr is small, a single two-pointer merge when nr is large. */
CAMLprim value pc_counts_le_sorted(value row, value vlen, value radii,
                                   value vnr, value out, value vstride,
                                   value vcol)
{
  const double *a = DBL(row);
  const double *r = DBL(radii);
  long len = Long_val(vlen), nr = Long_val(vnr);
  long stride = Long_val(vstride), col = Long_val(vcol);
  long log2len = 1;
  while ((1L << log2len) < len + 1) log2len++;
  if (nr * log2len <= len + nr) {
    for (long j = 0; j < nr; j++) {
      /* upper_bound: count of entries <= r[j] */
      long lo = 0, hi = len;
      while (lo < hi) {
        long mid = (lo + hi) / 2;
        if (a[mid] <= r[j]) lo = mid + 1;
        else hi = mid;
      }
      Field(out, j * stride + col) = Val_long(lo);
    }
  } else {
    long p = 0;
    for (long j = 0; j < nr; j++) {
      while (p < len && a[p] <= r[j]) p++;
      Field(out, j * stride + col) = Val_long(p);
    }
  }
  return Val_unit;
}

CAMLprim value pc_counts_le_sorted_bc(value *argv, int argn)
{
  (void)argn;
  return pc_counts_le_sorted(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5], argv[6]);
}

/* ------------------------------------------------------ capped top-k avg */

/* Mean of the k largest min(cap, counts[off+i]) over i in [0, len).
 * Counting-sort histogram: counts are ints in [0, cap] after capping, so
 * the k largest are read off the top buckets.  The sum is exact integer
 * arithmetic; the reference's float sum of the same integers is exact
 * too (all values and partial sums < 2^53), so the results are
 * bit-identical. */
CAMLprim double pc_top_avg_capped_nat(value counts, value voff, value vlen,
                                      value vcap, value vk)
{
  long off = Long_val(voff), len = Long_val(vlen);
  long cap = Long_val(vcap), k = Long_val(vk);
  long *hist = (long *)calloc((size_t)cap + 1, sizeof(long));
  if (hist == NULL) return -1.; /* caller guards: calloc failure is fatal upstream */
  for (long i = 0; i < len; i++) {
    long c = IDX(counts, off + i);
    if (c > cap) c = cap;
    hist[c]++;
  }
  long long sum = 0;
  long remaining = k;
  for (long v = cap; v >= 0 && remaining > 0; v--) {
    long take = hist[v] < remaining ? hist[v] : remaining;
    sum += (long long)take * v;
    remaining -= take;
  }
  free(hist);
  return (double)sum / (double)k;
}

CAMLprim value pc_top_avg_capped_byte(value counts, value voff, value vlen,
                                      value vcap, value vk)
{
  return caml_copy_double(pc_top_avg_capped_nat(counts, voff, vlen, vcap, vk));
}

/* -------------------------------------------------------- JL projection */

/* out[i*out_dim + r] = scale * dot(mat[r*in_dim ..], st[offs[i] ..]).
 * Inner accumulation in j order, then one multiply by scale — exactly
 * Vec.dot_rows followed by ( *. scale), as in the reference. */
CAMLprim value pc_jl_project(value mat, value st, value offs, value vn,
                             value vin, value vout_dim, value vscale,
                             value out)
{
  const double *m = DBL(mat);
  const double *s = DBL(st);
  double *o = DBL(out);
  long n = Long_val(vn), in_dim = Long_val(vin), out_dim = Long_val(vout_dim);
  double scale = Double_val(vscale);
  for (long i = 0; i < n; i++) {
    const double *x = s + IDX(offs, i);
    double *orow = o + i * out_dim;
    for (long r = 0; r < out_dim; r++) {
      const double *mrow = m + r * in_dim;
      double acc = 0.;
      for (long j = 0; j < in_dim; j++) acc += mrow[j] * x[j];
      orow[r] = scale * acc;
    }
  }
  return Val_unit;
}

CAMLprim value pc_jl_project_bc(value *argv, int argn)
{
  (void)argn;
  return pc_jl_project(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5],
                       argv[6], argv[7]);
}

/* ------------------------------------------------------------- row sums */

/* acc[j] += st[sel[s] + j], rows in s order then coordinates in j order —
 * the exact accumulation order of Noisy_avg.run_rows. */
CAMLprim value pc_sum_rows(value st, value sel, value vm, value vdim,
                           value acc)
{
  const double *s = DBL(st);
  double *a = DBL(acc);
  long m = Long_val(vm), dim = Long_val(vdim);
  for (long r = 0; r < m; r++) {
    const double *row = s + IDX(sel, r);
    for (long j = 0; j < dim; j++) a[j] += row[j];
  }
  return Val_unit;
}

/* --------------------------------------------------------- arg min / max */

/* Index of the center (row j of the flat k x dim matrix) nearest to
 * st[off..]; strict < keeps the first of equals, like Kmeans.assign_rows. */
CAMLprim value pc_argmin_center(value st, value voff, value centers, value vk,
                                value vdim)
{
  const double *p = DBL(st) + Long_val(voff);
  const double *c = DBL(centers);
  long k = Long_val(vk), dim = Long_val(vdim);
  long best = 0;
  double best_d = INFINITY;
  for (long j = 0; j < k; j++) {
    const double *row = c + j * dim;
    double acc = 0.;
    for (long l = 0; l < dim; l++) {
      double d = p[l] - row[l];
      acc += d * d;
    }
    if (acc < best_d) {
      best_d = acc;
      best = j;
    }
  }
  return Val_long(best);
}

/* Index i maximizing dist2(st[offs[i]..], q[qoff..]); strict > keeps the
 * first of equals, like Seb.farthest_row. */
CAMLprim value pc_argmax_dist(value st, value offs, value vn, value q,
                              value vqoff, value vdim)
{
  const double *s = DBL(st);
  const double *qp = DBL(q) + Long_val(vqoff);
  long n = Long_val(vn), dim = Long_val(vdim);
  long best = 0;
  double best_d = -INFINITY;
  for (long i = 0; i < n; i++) {
    const double *row = s + IDX(offs, i);
    double acc = 0.;
    for (long j = 0; j < dim; j++) {
      double d = row[j] - qp[j];
      acc += d * d;
    }
    if (acc > best_d) {
      best_d = acc;
      best = i;
    }
  }
  return Val_long(best);
}

CAMLprim value pc_argmax_dist_bc(value *argv, int argn)
{
  (void)argn;
  return pc_argmax_dist(argv[0], argv[1], argv[2], argv[3], argv[4], argv[5]);
}

/* ------------------------------------------------- k-means++ seed update */

/* dist2[i] = min(dist2[i], dist2(st[i*dim..], centers[coff..])) — the
 * contiguous-rows layout Kmeans builds internally. */
CAMLprim value pc_min_dist2_update(value st, value vn, value vdim,
                                   value centers, value vcoff, value dist2)
{
  const double *s = DBL(st);
  const double *c = DBL(centers) + Long_val(vcoff);
  double *d2 = DBL(dist2);
  long n = Long_val(vn), dim = Long_val(vdim);
  for (long i = 0; i < n; i++) {
    const double *row = s + i * dim;
    double acc = 0.;
    for (long j = 0; j < dim; j++) {
      double d = row[j] - c[j];
      acc += d * d;
    }
    if (acc < d2[i]) d2[i] = acc;
  }
  return Val_unit;
}

CAMLprim value pc_min_dist2_update_bc(value *argv, int argn)
{
  (void)argn;
  return pc_min_dist2_update(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5]);
}

/* -------------------------------------- multi-radius leaf contributions */

/* One-query-many-radii leaf step: for each point idx[lo..hi], compute d2
 * once, find the smallest j in [jlo, jhi) with d2 <= r2s[j] (r2s
 * ascending), and record the membership as a difference-array update
 * (acc[j] += 1, acc[jhi] -= 1); the caller prefix-sums acc into
 * per-radius counts.  Exactly the counts of per-radius leaf scans. */
CAMLprim value pc_leaf_multi_count(value st, value idx, value vlo, value vhi,
                                   value q, value vqoff, value vdim,
                                   value r2s, value vjlo, value vjhi,
                                   value acc)
{
  const double *s = DBL(st);
  const double *qp = DBL(q) + Long_val(vqoff);
  const double *r2 = DBL(r2s);
  long lo = Long_val(vlo), hi = Long_val(vhi), dim = Long_val(vdim);
  long jlo = Long_val(vjlo), jhi = Long_val(vjhi);
  if (jlo >= jhi) return Val_unit;
  for (long i = lo; i <= hi; i++) {
    const double *row = s + IDX(idx, i);
    double acc_d = 0.;
    for (long j = 0; j < dim; j++) {
      double d = row[j] - qp[j];
      acc_d += d * d;
    }
    if (acc_d <= r2[jhi - 1]) {
      long a = jlo, b = jhi - 1;
      while (a < b) {
        long mid = (a + b) / 2;
        if (acc_d <= r2[mid]) b = mid;
        else a = mid + 1;
      }
      Field(acc, a) = Val_long(IDX(acc, a) + 1);
      Field(acc, jhi) = Val_long(IDX(acc, jhi) - 1);
    }
  }
  return Val_unit;
}

CAMLprim value pc_leaf_multi_count_bc(value *argv, int argn)
{
  (void)argn;
  return pc_leaf_multi_count(argv[0], argv[1], argv[2], argv[3], argv[4],
                             argv[5], argv[6], argv[7], argv[8], argv[9],
                             argv[10]);
}
