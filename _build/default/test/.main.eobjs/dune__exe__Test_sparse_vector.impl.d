test/test_sparse_vector.ml: Alcotest Float Prim Printf Testutil
