(** Random orthonormal bases of R^d (Lemma 4.9).

    GoodCenter (step 8) draws a random orthonormal basis [Z = (z_1 … z_d)];
    with probability ≥ 1 − β every difference [x − y] of input points
    projects onto every [z_i] with magnitude at most
    [2·√(ln(dn/β)/d)·‖x−y‖₂].  The basis is produced by Gram–Schmidt
    orthonormalization of iid Gaussian vectors, which is distributed by the
    Haar measure on the orthogonal group. *)

type t

val make : Prim.Rng.t -> dim:int -> t
val identity : dim:int -> t
(** The standard basis (deterministic; used by tests and ablations). *)

val dim : t -> int
val basis_vector : t -> int -> Vec.t

val project : t -> Vec.t -> int -> float
(** [project t v i = ⟨v, z_i⟩]. *)

val project_row : t -> float array -> off:int -> int -> float
(** Same, with the point given as a row of a flat store (allocation-free):
    [project_row t st ~off i = ⟨st.(off..off+d-1), z_i⟩]. *)

val to_coords : t -> Vec.t -> Vec.t
(** All [d] projections — the coordinates of [v] in the rotated frame. *)

val from_coords : t -> Vec.t -> Vec.t
(** Inverse: [Σ c_i · z_i]. *)

val projection_bound : dim:int -> n_points:int -> beta:float -> float
(** The factor [2·√(ln(d·n/β)/d)] of Lemma 4.9: with probability ≥ 1 − β,
    [|⟨x − y, z_i⟩| ≤ bound · ‖x − y‖₂] for all pairs and all axes. *)
