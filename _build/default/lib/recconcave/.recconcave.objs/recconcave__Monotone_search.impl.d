lib/recconcave/monotone_search.ml: Prim Quality
