(** Secrecy-of-the-subsample amplification (Lemma 6.4; Kasiviswanathan et
    al. / Bun et al.).

    If [A] is [(ε, δ)]-DP on databases of size [m] with [ε ≤ 1], then the
    algorithm that draws [m] rows with replacement from a database of size
    [n ≥ 2m] and runs [A] on them is [(ε̃, δ̃)]-DP with

    [ε̃ = 6·ε·m/n]   and   [δ̃ = exp(6·ε·m/n) · 4·(m/n) · δ].

    Algorithm 4 (sample and aggregate) relies on this with its [n/9]
    subsample; {!Privcluster.Sample_aggregate.amplified} is the
    corresponding instantiation. *)

val amplify : eps:float -> delta:float -> m:int -> n:int -> Dp.params
(** @raise Invalid_argument unless [0 < ε ≤ 1], [m ≥ 1] and [n ≥ 2m]. *)

val amplification_factor : m:int -> n:int -> float
(** The [6·m/n] multiplier on ε. *)
