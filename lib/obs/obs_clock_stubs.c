/* Monotonic clock for span timings.  CLOCK_MONOTONIC never jumps with
   wall-clock adjustments, so span durations and orderings stay truthful
   even if NTP steps the system time mid-run. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#if defined(_WIN32)
#include <windows.h>

CAMLprim value obs_clock_now_ns(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return caml_copy_int64((int64_t)((double)now.QuadPart * 1e9 / (double)freq.QuadPart));
}

#else
#include <time.h>
#include <sys/time.h>

CAMLprim value obs_clock_now_ns(value unit)
{
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_int64((int64_t)tv.tv_sec * 1000000000 + (int64_t)tv.tv_usec * 1000);
  }
}
#endif
