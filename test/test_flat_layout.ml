(* Differential suite for the flat storage layout: every refactored flat-path
   kernel must agree with its boxed reference — bitwise where both paths
   accumulate in the same order (which is the layout contract, see DESIGN.md
   "Memory layout"), and the view API must round-trip indices exactly. *)

open Testutil

let check_bits msg expected actual =
  if Int64.bits_of_float expected <> Int64.bits_of_float actual then
    Alcotest.failf "%s: expected %h, got %h (not bit-identical)" msg expected actual

(* A deterministic boxed point cloud and its packed pointset. *)
let cloud ?(seed = 11) ?(n = 60) ?(dim = 5) () =
  let r = rng ~seed () in
  let points =
    Array.init n (fun _ -> Array.init dim (fun _ -> Prim.Rng.float r 1.0))
  in
  (points, Geometry.Pointset.create points)

(* Generator: dimension, then a non-empty list of points of that dimension. *)
let points_gen =
  QCheck2.Gen.(
    int_range 1 6 >>= fun d ->
    array_size (int_range 1 40) (array_size (return d) (float_range (-50.) 50.)))

let test_vec_kernels_match_boxed () =
  let points, ps = cloud () in
  let st = Geometry.Pointset.storage ps in
  let offs = Geometry.Pointset.row_offsets ps in
  let d = Geometry.Pointset.dim ps in
  let q = points.(7) in
  Array.iteri
    (fun i p ->
      let off = offs.(i) in
      check_bits "dist_to_row" (Geometry.Vec.dist p q)
        (Geometry.Vec.dist_to_row st ~off ~dim:d q);
      check_bits "dist_sq_to_row" (Geometry.Vec.dist_sq p q)
        (Geometry.Vec.dist_sq_to_row st ~off ~dim:d q);
      check_bits "dot_row" (Geometry.Vec.dot p q) (Geometry.Vec.dot_row st ~off ~dim:d q);
      check_bits "dist_rows"
        (Geometry.Vec.dist p points.(3))
        (Geometry.Vec.dist_rows st off st offs.(3) ~dim:d);
      check_bits "dot_rows"
        (Geometry.Vec.dot p points.(3))
        (Geometry.Vec.dot_rows st off st offs.(3) ~dim:d);
      let y_flat = Array.copy q and y_boxed = Array.copy q in
      Geometry.Vec.axpy_row 2.5 st ~off ~dim:d y_flat;
      Geometry.Vec.axpy 2.5 p y_boxed;
      Array.iteri (fun j e -> check_bits "axpy_row" e y_flat.(j)) y_boxed)
    points

let test_ball_count_matches_naive () =
  let points, ps = cloud ~n:80 ~dim:3 () in
  let center = points.(5) in
  List.iter
    (fun radius ->
      let naive =
        Array.fold_left
          (fun acc p -> if Geometry.Vec.dist p center <= radius then acc + 1 else acc)
          0 points
      in
      check_int "ball_count vs naive" naive
        (Geometry.Pointset.ball_count ps ~center ~radius))
    [ 0.0; 0.1; 0.3; 0.7; 2.0 ]

let test_score_l_matches_index () =
  let _, ps = cloud ~n:50 ~dim:3 () in
  let idx = Geometry.Pointset.build_index ps in
  List.iter
    (fun radius ->
      check_bits "score_l dense vs direct"
        (Geometry.Pointset.score_l_direct ps ~cap:10 ~radius)
        (Geometry.Pointset.score_l idx ~cap:10 ~radius))
    [ 0.05; 0.2; 0.5; 1.0 ]

let test_jl_project_matches_apply () =
  let points, ps = cloud ~n:40 ~dim:24 () in
  let jl = Geometry.Jl.make (rng ~seed:5 ()) ~input_dim:24 ~output_dim:8 in
  let projected = Geometry.Jl.project jl ps in
  check_int "projected n" (Array.length points) (Geometry.Pointset.n projected);
  check_int "projected dim" 8 (Geometry.Pointset.dim projected);
  Array.iteri
    (fun i p ->
      let boxed = Geometry.Jl.apply jl p in
      let flat = Geometry.Pointset.point projected i in
      Array.iteri (fun j e -> check_bits "jl row" e flat.(j)) boxed)
    points

let test_kdtree_matches_brute_force () =
  let points, ps = cloud ~n:70 ~dim:4 () in
  let tree =
    Geometry.Kdtree.build_flat
      ~storage:(Geometry.Pointset.storage ps)
      ~offs:(Geometry.Pointset.row_offsets ps)
      ~dim:(Geometry.Pointset.dim ps) ()
  in
  let center = points.(9) in
  List.iter
    (fun radius ->
      let brute =
        Array.fold_left
          (fun acc p -> if Geometry.Vec.dist p center <= radius then acc + 1 else acc)
          0 points
      in
      check_int "kdtree count vs brute" brute
        (Geometry.Kdtree.count_within tree ~center ~radius))
    [ 0.0; 0.15; 0.4; 0.9; 3.0 ]

let test_noisy_avg_rows_matches_boxed () =
  let points, ps = cloud ~n:45 ~dim:6 () in
  let st = Geometry.Pointset.storage ps in
  let offs = Geometry.Pointset.row_offsets ps in
  let run_boxed () =
    Prim.Noisy_avg.run (rng ~seed:77 ()) ~eps:0.7 ~delta:1e-6 ~diameter:2.0
      ~pred:(fun p -> p.(0) < 0.6)
      ~dim:6 points
  in
  let run_flat () =
    Prim.Noisy_avg.run_rows (rng ~seed:77 ()) ~eps:0.7 ~delta:1e-6 ~diameter:2.0
      ~pred:(fun i -> st.(offs.(i)) < 0.6)
      ~dim:6 ~offs st
  in
  match (run_boxed (), run_flat ()) with
  | Prim.Noisy_avg.Bottom, Prim.Noisy_avg.Bottom -> ()
  | Prim.Noisy_avg.Average b, Prim.Noisy_avg.Average f ->
      check_bits "m_hat" b.Prim.Noisy_avg.m_hat f.Prim.Noisy_avg.m_hat;
      check_bits "sigma" b.Prim.Noisy_avg.sigma f.Prim.Noisy_avg.sigma;
      Array.iteri
        (fun j e -> check_bits "noisy average" e f.Prim.Noisy_avg.average.(j))
        b.Prim.Noisy_avg.average
  | _ -> Alcotest.fail "boxed and flat NoisyAVG disagreed on Bottom"

let test_good_center_ps_matches_boxed () =
  let r1 = rng ~seed:21 () and r2 = rng ~seed:21 () in
  let _, _, w = small_workload ~seed:21 ~n:300 ~dim:3 () in
  let points = w.Workload.Synth.points in
  let profile = Privcluster.Profile.practical in
  let t = 120 and radius = 0.08 in
  let boxed =
    Privcluster.Good_center.run r1 profile ~eps:2.0 ~delta:1e-6 ~beta:0.1 ~t ~radius points
  in
  let flat =
    Privcluster.Good_center.run_ps r2 profile ~eps:2.0 ~delta:1e-6 ~beta:0.1 ~t ~radius
      (Geometry.Pointset.create points)
  in
  match (boxed, flat) with
  | Ok b, Ok f ->
      Array.iteri
        (fun j e -> check_bits "good-center coordinate" e f.Privcluster.Good_center.center.(j))
        b.Privcluster.Good_center.center
  | Error _, Error _ -> ()
  | _ -> Alcotest.fail "boxed and flat GoodCenter disagreed on success"

let qsuite =
  [
    qcheck "create/points round-trip" points_gen (fun pts ->
        let ps = Geometry.Pointset.create pts in
        let back = Geometry.Pointset.points ps in
        Array.length back = Array.length pts
        && Array.for_all2 (fun a b -> a = b) back pts);
    qcheck "of_storage point indexing" points_gen (fun pts ->
        let d = Array.length pts.(0) in
        let flat = Array.concat (Array.to_list pts) in
        let ps = Geometry.Pointset.of_storage ~dim:d flat in
        Array.for_all
          (fun i -> Geometry.Pointset.point ps i = pts.(i))
          (Array.init (Array.length pts) Fun.id));
    qcheck "subset view indexing" points_gen (fun pts ->
        let ps = Geometry.Pointset.create pts in
        let n = Array.length pts in
        (* Every other point, then the first again (duplicates allowed). *)
        let indices = Array.append (Array.init ((n + 1) / 2) (fun i -> 2 * i)) [| 0 |] in
        let view = Geometry.Pointset.subset ps ~indices in
        Geometry.Pointset.n view = Array.length indices
        && Array.for_all
             (fun k -> Geometry.Pointset.point view k = pts.(indices.(k)))
             (Array.init (Array.length indices) Fun.id));
    qcheck "filter matches filter_rows" points_gen (fun pts ->
        let ps = Geometry.Pointset.create pts in
        let d = Array.length pts.(0) in
        let keep v = v.(0) > 0. in
        let a = Geometry.Pointset.filter keep ps in
        let b =
          Geometry.Pointset.filter_rows (fun st off -> Geometry.Vec.get st ~off 0 > 0.) ps
        in
        ignore d;
        Geometry.Pointset.n a = Geometry.Pointset.n b
        && Array.for_all
             (fun i -> Geometry.Pointset.point a i = Geometry.Pointset.point b i)
             (Array.init (Geometry.Pointset.n a) Fun.id));
    qcheck "coords_axis matches column" points_gen (fun pts ->
        let ps = Geometry.Pointset.create pts in
        let d = Array.length pts.(0) in
        Array.for_all
          (fun axis ->
            Geometry.Pointset.coords_axis ps axis = Array.map (fun p -> p.(axis)) pts)
          (Array.init d Fun.id));
    qcheck "points returns copies (mutation is invisible)" points_gen (fun pts ->
        let ps = Geometry.Pointset.create pts in
        let copy = Geometry.Pointset.points ps in
        copy.(0).(0) <- 1e9;
        Geometry.Pointset.point ps 0 = pts.(0));
  ]

let suite =
  [
    case "vec kernels match boxed (bitwise)" test_vec_kernels_match_boxed;
    case "ball_count matches naive" test_ball_count_matches_naive;
    case "score_l dense index matches direct (bitwise)" test_score_l_matches_index;
    case "jl project matches per-point apply (bitwise)" test_jl_project_matches_apply;
    case "kdtree matches brute force" test_kdtree_matches_brute_force;
    case "noisy-avg rows matches boxed (bitwise)" test_noisy_avg_rows_matches_boxed;
    case "good-center run_ps matches run (bitwise)" test_good_center_ps_matches_boxed;
  ]
  @ qsuite
