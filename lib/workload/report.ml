(* All output funnels through [emit], which consults a domain-local sink:
   when the engine pool runs experiments on worker domains, each domain
   captures its own output into a buffer (see [capture]) and the driver
   prints the buffers in submission order, so parallel runs stay diffable
   against sequential ones. *)
let sink_key : (string -> unit) option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let emit s =
  match Domain.DLS.get sink_key with
  | None ->
      print_string s;
      flush stdout
  | Some f -> f s

let capture f =
  let buf = Buffer.create 4096 in
  let prev = Domain.DLS.get sink_key in
  Domain.DLS.set sink_key (Some (Buffer.add_string buf));
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set sink_key prev)
    (fun () ->
      let v = f () in
      (v, Buffer.contents buf))

let printf fmt = Printf.ksprintf emit fmt

let headline s =
  let bar = String.make (String.length s + 4) '=' in
  printf "\n%s\n= %s =\n%s\n" bar s bar

let subhead s = printf "\n-- %s --\n" s
let kv k v = printf "  %-28s %s\n" (k ^ ":") v

let csv_dir = ref None
let csv_mutex = Mutex.create ()

let set_csv_dir dir = csv_dir := dir

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv name header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
      Mutex.lock csv_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock csv_mutex)
        (fun () ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let oc = open_out (Filename.concat dir (name ^ ".csv")) in
          List.iter
            (fun row -> output_string oc (String.concat "," (List.map csv_escape row) ^ "\n"))
            (header :: rows);
          close_out oc)

let table ?csv ~header rows =
  (match csv with Some name -> write_csv name header rows | None -> ());
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun acc row -> match List.nth_opt row c with Some s -> max acc (String.length s) | None -> acc)
      0 all
  in
  let widths = List.init cols width in
  let render row =
    let cells =
      List.mapi
        (fun c w ->
          let s = match List.nth_opt row c with Some s -> s | None -> "" in
          s ^ String.make (w - String.length s) ' ')
        widths
    in
    printf "  %s\n" (String.concat "  " cells)
  in
  render header;
  printf "  %s\n" (String.make (List.fold_left ( + ) 0 widths + (2 * (cols - 1))) '-');
  List.iter render rows

let f2 x = if Float.is_nan x then "-" else Printf.sprintf "%.2f" x
let f3 x = if Float.is_nan x then "-" else Printf.sprintf "%.3f" x
let g x = if Float.is_nan x then "-" else Printf.sprintf "%g" x
let pct x = if Float.is_nan x then "-" else Printf.sprintf "%.0f%%" (100. *. x)
