lib/baselines/gupt.mli: Geometry Prim
