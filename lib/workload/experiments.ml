type cfg = { quick : bool; seed : int }

let default_cfg = { quick = false; seed = 20160626 (* PODS'16 *) }

let delta = Harness.default_delta
let beta = Harness.default_beta

let trials cfg ~full = if cfg.quick then max 1 (full / 3) else full

let fresh_rng cfg tag = Prim.Rng.create ~seed:(cfg.seed + Hashtbl.hash tag) ()

let status s =
  match s.Harness.failure with None -> "ok" | Some f -> f

(* ------------------------------------------------------------------ *)
(* E1: Table 1 head-to-head                                            *)
(* ------------------------------------------------------------------ *)

let e1_table1 cfg =
  Report.kv "what" "Table 1: methods vs cluster fraction and dimension";
  let axis = 256 in
  let eps = 2.0 in
  let n = if cfg.quick then 1200 else 2500 in
  let n_trials = trials cfg ~full:3 in
  let dims = if cfg.quick then [ 1; 2 ] else [ 1; 2; 8 ] in
  let fracs = if cfg.quick then [ 0.3; 0.8 ] else [ 0.15; 0.3; 0.55; 0.8 ] in
  let rows = ref [] in
  let add_row d f method_ (s : Harness.scored) =
    rows :=
      [
        string_of_int d;
        Report.pct f;
        method_;
        Printf.sprintf "%.0f" s.Harness.time_ms;
        (if s.Harness.delta_measured = max_int then "-" else string_of_int s.Harness.delta_measured);
        Report.f2 s.Harness.w_private;
        Report.f2 s.Harness.w_tight;
        status s;
      ]
      :: !rows
  in
  List.iter
    (fun d ->
      let grid = Geometry.Grid.create ~axis_size:axis ~dim:d in
      (* The center-stage noise scales with d/(ε·t) (see E5), so the d = 8
         rows need proportionally more data to be in-regime. *)
      let n = if d >= 8 then 2 * n else n in
      List.iter
        (fun f ->
          let rng = fresh_rng cfg ("e1", d, f) in
          let per_trial =
            List.init n_trials (fun _ ->
                let w =
                  Synth.adversarial_minority rng ~grid ~n ~cluster_fraction:f
                    ~cluster_radius:0.05
                in
                let t = int_of_float (0.9 *. float_of_int w.Synth.cluster_size) in
                let ps = Geometry.Pointset.create w.Synth.points in
                let idx = Geometry.Pointset.build_index ps in
                let _, r_hi = Metrics.r_opt_bounds_indexed idx ~t in
                let r_hi = Float.min r_hi w.Synth.cluster_radius in
                (w, t, ps, idx, r_hi))
          in
          let collect name run =
            let scores = List.map run per_trial in
            add_row d f name (Harness.median_scores scores)
          in
          (* This work. *)
          collect "this-work" (fun (_, t, _, idx, r_hi) ->
              fst
                (Harness.run_one_cluster rng Privcluster.Profile.practical ~grid ~eps ~delta
                   ~beta ~t ~r_hi idx));
          (* Exponential mechanism: candidate set |X|^d must stay sane. *)
          if Baselines.Exp_mech_cluster.candidate_count grid <= Baselines.Exp_mech_cluster.max_candidates
          then
            collect "exp-mech" (fun (_, t, ps, idx, r_hi) ->
                let r, ms =
                  Harness.time (fun () -> Baselines.Exp_mech_cluster.run rng ~grid ~eps ~t ps)
                in
                Harness.score_center ~idx ~t ~r_hi ~time_ms:ms
                  ~center:r.Baselines.Exp_mech_cluster.center
                  ~radius:r.Baselines.Exp_mech_cluster.radius);
          (* Threshold query release: d = 1 only. *)
          if d = 1 then
            collect "thresholds" (fun (w, t, _, idx, r_hi) ->
                let values = Array.map (fun p -> p.(0)) w.Synth.points in
                let r, ms =
                  Harness.time (fun () ->
                      Baselines.Threshold_release.run rng ~grid ~eps ~beta ~t values)
                in
                Harness.score_center ~idx ~t ~r_hi ~time_ms:ms
                  ~center:r.Baselines.Threshold_release.center
                  ~radius:r.Baselines.Threshold_release.radius);
          (* Private aggregation: works only for majority clusters. *)
          collect "private-agg" (fun (_, t, ps, idx, r_hi) ->
              let r, ms =
                Harness.time (fun () -> Baselines.Private_agg.run rng ~grid ~eps ~t ps)
              in
              Harness.score_center ~idx ~t ~r_hi ~time_ms:ms
                ~center:r.Baselines.Private_agg.center ~radius:r.Baselines.Private_agg.radius);
          (* Local model (LDP): its Ω(√n/ε) count noise is out of regime at
             this n — by design; the crossover subsection below shows where
             it comes back in. *)
          collect "local-model" (fun (_, t, ps, idx, r_hi) ->
              let r, ms =
                Harness.time (fun () ->
                    Privcluster.Local_cluster.run rng ~grid ~eps ~beta ~t ps)
              in
              match r with
              | Error f ->
                  Harness.failed ~time_ms:ms
                    (Format.asprintf "%a" Privcluster.Local_cluster.pp_failure f)
              | Ok r ->
                  Harness.score_center ~idx ~t ~r_hi ~time_ms:ms
                    ~center:r.Privcluster.Local_cluster.center
                    ~radius:r.Privcluster.Local_cluster.radius);
          (* Coreset MEB: centers well on majority clusters, drifts on
             minorities (the noisy average sees every point). *)
          collect "meb-fptas" (fun (_, t, ps, idx, r_hi) ->
              let r, ms =
                Harness.time (fun () ->
                    Baselines.Meb_fptas.run rng ~grid ~eps ~delta ~t ps)
              in
              match r with
              | Error f ->
                  Harness.failed ~time_ms:ms
                    (Format.asprintf "%a" Baselines.Meb_fptas.pp_failure f)
              | Ok r ->
                  Harness.score_center ~idx ~t ~r_hi ~time_ms:ms
                    ~center:r.Baselines.Meb_fptas.center ~radius:r.Baselines.Meb_fptas.radius);
          (* Non-private reference. *)
          collect "non-private" (fun (_, t, ps, idx, r_hi) ->
              let a, ms = Harness.time (fun () -> Baselines.Nonprivate.solve ps ~t) in
              Harness.score_center ~idx ~t ~r_hi ~time_ms:ms ~center:a.Baselines.Nonprivate.center
                ~radius:a.Baselines.Nonprivate.radius))
        fracs)
    dims;
  Report.table ~csv:"e1_table1"
    ~header:[ "d"; "frac"; "method"; "ms"; "dMeas"; "wPriv"; "wTight"; "status" ]
    (List.rev !rows);
  Report.kv "read as"
    "thresholds/exp-mech: w~1 but d<=2 only; private-agg/meb-fptas: fail below 55%; \
     local-model: needs n in the tens of thousands (see crossover); this-work: all d, \
     minority ok, w pays the capture-ball constant (wTight shows the center quality)";
  (* The centralized-vs-local crossover: the LDP pipeline pays Ω(√n/ε)
     count noise where the centralized one pays O(1/ε).  A 35% planted
     cluster that the centralized solver finds at n = 2000 takes the
     local protocol an order of magnitude more users before any scale's
     certificate is non-vacuous — and more again before a scale finer
     than the whole domain qualifies. *)
  Report.subhead "centralized vs local (d=2, 35% cluster, eps=2): the sqrt(n) crossover";
  let grid = Geometry.Grid.create ~axis_size:axis ~dim:2 in
  let ns_x = if cfg.quick then [ 2_000; 32_000 ] else [ 2_000; 8_000; 32_000 ] in
  let xrows =
    List.concat_map
      (fun n ->
        let rng = fresh_rng cfg ("e1x", n) in
        let w = Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.35 ~cluster_radius:0.05 in
        let t = int_of_float (0.8 *. float_of_int w.Synth.cluster_size) in
        let ps = Geometry.Pointset.create w.Synth.points in
        let idx = Geometry.Pointset.auto_index ps in
        (* The planted radius is a valid r_opt upper bound for
           t ≤ cluster size — no O(n·t) sandwich at the larger n. *)
        let r_hi = w.Synth.cluster_radius in
        let row method_ (s : Harness.scored) =
          [
            string_of_int n;
            method_;
            Printf.sprintf "%.0f" s.Harness.time_ms;
            (if s.Harness.delta_measured = max_int then "-"
             else string_of_int s.Harness.delta_measured);
            Report.f2 s.Harness.w_private;
            status s;
          ]
        in
        let central =
          fst
            (Harness.run_one_cluster rng Privcluster.Profile.practical ~grid ~eps ~delta ~beta
               ~t ~r_hi idx)
        in
        let local =
          let r, ms =
            Harness.time (fun () -> Privcluster.Local_cluster.run rng ~grid ~eps ~beta ~t ps)
          in
          match r with
          | Error f ->
              Harness.failed ~time_ms:ms
                (Format.asprintf "%a" Privcluster.Local_cluster.pp_failure f)
          | Ok r ->
              Harness.score_center ~idx ~t ~r_hi ~time_ms:ms
                ~center:r.Privcluster.Local_cluster.center
                ~radius:r.Privcluster.Local_cluster.radius
        in
        [ row "this-work" central; row "local-model" local ])
      ns_x
  in
  Report.table ~csv:"e1_crossover" ~header:[ "n"; "method"; "ms"; "dMeas"; "wPriv"; "status" ]
    xrows;
  Report.kv "read as"
    "local-model fails outright at n=2000 (every certificate vacuous), returns the \
     whole-domain ball mid-range, and only at the largest n lands a block a few planted \
     radii wide — while the centralized solver is already in-regime at n=2000; the \
     sqrt(n)/eps vs 1/eps separation made concrete"

(* ------------------------------------------------------------------ *)
(* E2: radius approximation vs n                                       *)
(* ------------------------------------------------------------------ *)

let e2_radius_vs_n cfg =
  Report.kv "what" "Theorem 3.2: w vs n (practical identity path; paper-constant JL path)";
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let eps = 2.0 in
  let ns = if cfg.quick then [ 500; 2000 ] else [ 500; 1000; 2000; 4000 ] in
  let n_trials = trials cfg ~full:3 in
  let rows =
    List.map
      (fun n ->
        let rng = fresh_rng cfg ("e2", n) in
        let scores =
          List.init n_trials (fun _ ->
              let w =
                Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.55 ~cluster_radius:0.05
              in
              let t = int_of_float (0.9 *. float_of_int w.Synth.cluster_size) in
              let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Synth.points) in
              let _, r_hi = Metrics.r_opt_bounds_indexed idx ~t in
              let r_hi = Float.min r_hi w.Synth.cluster_radius in
              fst
                (Harness.run_one_cluster rng Privcluster.Profile.practical ~grid ~eps ~delta
                   ~beta ~t ~r_hi idx))
        in
        let s = Harness.median_scores scores in
        [
          string_of_int n;
          Report.f2 (sqrt (log (float_of_int n)));
          Report.f2 s.Harness.w_private;
          Report.f2 s.Harness.w_tight;
          Printf.sprintf "%.0f" s.Harness.time_ms;
          status s;
        ])
      ns
  in
  Report.table ~csv:"e2_identity" ~header:[ "n"; "sqrt(ln n)"; "wPriv"; "wTight"; "ms"; "status" ] rows;
  (* The genuine JL path: the private radius is (√2·300·r·√k) + noise with
     k = ⌈c·ln(2n/β)⌉.  The paper's c = 46 needs d in the hundreds before
     k < d, so we run c = 2 at d = 64 (the paper's box constant 300 is
     kept): k then grows like ln n while staying below d, and wPriv must
     track √k — i.e. √log n. *)
  Report.subhead "JL path (d=64, box constant 300, k = 2·ln(2n/b); the √log n radius law)";
  let d_jl = 64 in
  let grid_jl = Geometry.Grid.create ~axis_size:64 ~dim:d_jl in
  let jl_profile =
    {
      Privcluster.Profile.paper with
      Privcluster.Profile.jl_constant = 2.;
      max_rounds = Some 400;
    }
  in
  let ns_jl = if cfg.quick then [ 2000 ] else [ 2000; 6000; 12000 ] in
  let jl_rows =
    List.map
      (fun n ->
        let rng = fresh_rng cfg ("e2jl", n) in
        let w =
          Synth.planted_ball rng ~grid:grid_jl ~n ~cluster_fraction:0.8 ~cluster_radius:0.1
        in
        let t = int_of_float (0.7 *. float_of_int w.Synth.cluster_size) in
        let points = w.Synth.points in
        let result, ms =
          Harness.time (fun () ->
              Privcluster.Good_center.run rng jl_profile ~eps:16.0 ~delta ~beta ~t
                ~radius:w.Synth.cluster_radius points)
        in
        match result with
        | Error f ->
            [ string_of_int n; "-"; "-"; "-"; "-"; Printf.sprintf "%.0f" ms;
              Format.asprintf "%a" Privcluster.Good_center.pp_failure f ]
        | Ok c ->
            let k = c.Privcluster.Good_center.jl_dim in
            (* The data-independent part of the private radius: the D
               diameter bound √2·(box side)·√k — the Θ(r·√k) floor. *)
            let w_floor = sqrt 2. *. 300. *. sqrt (float_of_int k) in
            let w_priv = c.Privcluster.Good_center.private_radius /. w.Synth.cluster_radius in
            [
              string_of_int n;
              string_of_int k;
              Report.f2 w_priv;
              Report.f2 w_floor;
              Report.pct (1. -. (w_floor /. w_priv));
              string_of_int c.Privcluster.Good_center.axis_fallbacks;
              Printf.sprintf "%.0f" ms;
              "ok";
            ])
      ns_jl
  in
  Report.table ~csv:"e2_jl"
    ~header:[ "n"; "k"; "wPriv"; "wFloor=424sqrt(k)"; "noiseShare"; "axisFallbacks"; "ms"; "status" ]
    jl_rows;
  Report.kv "read as"
    "the private radius has a deterministic floor Θ(r·√k) with k = Θ(log n) — the paper's \
     headline √log n law — plus an averaging-noise share that decays as t grows; the pipeline \
     (JL, box search, rotated capture, noisy average) completes with zero axis fallbacks"

(* ------------------------------------------------------------------ *)
(* E3: Δ vs ε                                                          *)
(* ------------------------------------------------------------------ *)

let e3_delta_vs_eps cfg =
  Report.kv "what" "Theorem 3.2: cluster-size loss vs eps (certified bound and measured)";
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let n = if cfg.quick then 1500 else 3000 in
  let epss = if cfg.quick then [ 0.5; 2.0 ] else [ 0.25; 0.5; 1.0; 2.0; 4.0 ] in
  let n_trials = trials cfg ~full:3 in
  let rows =
    List.map
      (fun eps ->
        let rng = fresh_rng cfg ("e3", eps) in
        let certified =
          (* The certified Δ of the radius stage plus the center stage losses
             (as reported by One_cluster).  Computed on any run below. *)
          ref Float.nan
        in
        let radius_losses = ref [] and capture_losses = ref [] and tights = ref [] in
        for _ = 1 to n_trials do
          let w = Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.55 ~cluster_radius:0.05 in
          let t = int_of_float (0.9 *. float_of_int w.Synth.cluster_size) in
          let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Synth.points) in
          let _, r_hi = Metrics.r_opt_bounds_indexed idx ~t in
          let r_hi = Float.min r_hi w.Synth.cluster_radius in
          let score, result =
            Harness.run_one_cluster rng Privcluster.Profile.practical ~grid ~eps ~delta ~beta
              ~t ~r_hi idx
          in
          match result with
          | None -> ()
          | Some r ->
              certified := r.Privcluster.One_cluster.delta_bound;
              (* Measured radius-stage loss: t − (max points any ball of the
                 found radius holds). *)
              let z = r.Privcluster.One_cluster.radius_stage.Privcluster.Good_radius.radius in
              let counts = Geometry.Pointset.counts_within idx ~radius:z in
              let best = Array.fold_left max 0 counts in
              radius_losses := float_of_int (max 0 (t - best)) :: !radius_losses;
              (match r.Privcluster.One_cluster.center_stage with
              | Some c ->
                  capture_losses :=
                    Float.max 0. (float_of_int t -. c.Privcluster.Good_center.noisy_count)
                    :: !capture_losses
              | None -> ());
              tights := score.Harness.w_tight :: !tights
        done;
        [
          Report.g eps;
          Printf.sprintf "%.0f" !certified;
          Report.f2 (Metrics.median !radius_losses);
          Report.f2 (Metrics.median !capture_losses);
          Report.f2 (Metrics.median !tights);
        ])
      epss
  in
  Report.table ~csv:"e3_delta_vs_eps"
    ~header:[ "eps"; "deltaCert"; "radiusLoss"; "captureLoss"; "wTight" ] rows;
  Report.kv "read as"
    "deltaCert scales as 1/eps (the theorem); measured losses are far below it and shrink with \
     eps; wTight improves as noise ~ 1/eps falls"

(* ------------------------------------------------------------------ *)
(* E4: GoodRadius quality + ablations                                  *)
(* ------------------------------------------------------------------ *)

let e4_goodradius cfg =
  Report.kv "what" "Lemma 4.6: GoodRadius ratio r/r_opt; backend and radius-grid ablations";
  let eps = 2.0 in
  let n = if cfg.quick then 1200 else 2500 in
  let n_trials = trials cfg ~full:6 in
  let variants =
    [
      ("rc+geometric", { Privcluster.Profile.practical with backend = Rec_concave; radius_grid = Geometric });
      ("rc+linear", { Privcluster.Profile.practical with backend = Rec_concave; radius_grid = Linear });
      ("bin+geometric", { Privcluster.Profile.practical with backend = Binary_search; radius_grid = Geometric });
      ("bin+linear", { Privcluster.Profile.practical with backend = Binary_search; radius_grid = Linear });
    ]
  in
  let dims = if cfg.quick then [ 2 ] else [ 1; 2; 4 ] in
  let rows = ref [] in
  List.iter
    (fun d ->
      let grid = Geometry.Grid.create ~axis_size:256 ~dim:d in
      List.iter
        (fun (name, profile) ->
          let rng = fresh_rng cfg ("e4", d, name) in
          let ratios = ref [] and zeros = ref 0 and gammas = ref Float.nan and ms = ref [] in
          for _ = 1 to n_trials do
            let w = Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.3 ~cluster_radius:0.04 in
            let t = int_of_float (0.9 *. float_of_int w.Synth.cluster_size) in
            let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Synth.points) in
            let _, r_hi = Metrics.r_opt_bounds_indexed idx ~t in
            let r_hi = Float.min r_hi w.Synth.cluster_radius in
            let r, elapsed =
              Harness.time (fun () ->
                  Privcluster.Good_radius.run rng profile ~grid ~eps ~delta ~beta ~t idx)
            in
            ms := elapsed :: !ms;
            gammas := r.Privcluster.Good_radius.gamma;
            if r.Privcluster.Good_radius.zero_shortcut then incr zeros
            else ratios := (r.Privcluster.Good_radius.radius /. r_hi) :: !ratios
          done;
          rows :=
            [
              string_of_int d;
              name;
              Printf.sprintf "%.0f" !gammas;
              Report.f2 (Metrics.median !ratios);
              Report.f2 (Metrics.quantile !ratios ~q:0.9);
              string_of_int !zeros;
              Printf.sprintf "%.0f" (Metrics.median !ms);
            ]
            :: !rows)
        variants)
    dims;
  Report.table ~csv:"e4_goodradius"
    ~header:[ "d"; "variant"; "Gamma"; "ratio p50"; "ratio p90"; "zeroHits"; "ms" ]
    (List.rev !rows);
  Report.kv "read as"
    "geometric grids cut Gamma by an order of magnitude, keeping the run in-regime (certified \
     loss below t) with ratios inside the 5.7x guarantee; the linear-grid variants are \
     out-of-regime at this (t, eps) - their certified Gamma exceeds t, so they return radii \
     covering only t - Theta(Gamma) points (ratios below 1), exactly as Lemma 3.6 prices it; \
     the binary-search backend is the cheapest"

(* ------------------------------------------------------------------ *)
(* E5: minimum workable t vs dimension                                 *)
(* ------------------------------------------------------------------ *)

let e5_min_t_vs_d cfg =
  Report.kv "what" "Theorem 3.2: smallest cluster size the solver handles, vs dimension";
  let eps = 2.0 in
  let dims = if cfg.quick then [ 2; 8 ] else [ 1; 2; 4; 8; 16 ] in
  let ts = if cfg.quick then [ 250; 1000 ] else [ 125; 250; 500; 1000; 2000 ] in
  let n_trials = trials cfg ~full:3 in
  let rows =
    List.map
      (fun d ->
        let grid = Geometry.Grid.create ~axis_size:256 ~dim:d in
        let rng = fresh_rng cfg ("e5", d) in
        let works t =
          let ok = ref 0 in
          for _ = 1 to n_trials do
            let n = max 1000 (5 * t / 2) in
            let frac = float_of_int t /. float_of_int n /. 0.9 in
            let w = Synth.planted_ball rng ~grid ~n ~cluster_fraction:frac ~cluster_radius:0.05 in
            let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Synth.points) in
            let _, r_hi = Metrics.r_opt_bounds_indexed idx ~t in
            let r_hi = Float.min r_hi w.Synth.cluster_radius in
            let s, _ =
              Harness.run_one_cluster rng Privcluster.Profile.practical ~grid ~eps ~delta ~beta
                ~t ~r_hi idx
            in
            if s.Harness.failure = None && s.Harness.w_tight <= 4.0 then incr ok
          done;
          2 * !ok > n_trials
        in
        let t_min = List.find_opt works ts in
        let recommended =
          Privcluster.One_cluster.recommended_min_t Privcluster.Profile.practical ~grid ~eps
            ~delta ~beta ~n:4000
        in
        [
          string_of_int d;
          (match t_min with Some t -> string_of_int t | None -> Printf.sprintf ">%d" (List.fold_left max 0 ts));
          Printf.sprintf "%.0f" recommended;
          Report.f2 (sqrt (float_of_int d));
          string_of_int d;
        ])
      dims
  in
  Report.table ~csv:"e5_min_t" ~header:[ "d"; "tMin(measured)"; "tMin(cert)"; "sqrt(d)"; "d" ] rows;
  Report.kv "read as"
    "the identity path pays ~d in t (noise ~ d/(eps t)); the paper's JL path pays sqrt(d) \
     asymptotically but its constants only win for d >> log n (see E2's JL table)"

(* ------------------------------------------------------------------ *)
(* E6: domain size |X|                                                 *)
(* ------------------------------------------------------------------ *)

let e6_domain_size cfg =
  Report.kv "what" "Remark 3.4: accuracy vs |X| (log* vs log vs polylog)";
  let eps = 2.0 in
  let n = if cfg.quick then 1500 else 3000 in
  let axes = if cfg.quick then [ 64; 4096 ] else [ 16; 64; 256; 1024; 4096; 16384; 65536 ] in
  let n_trials = trials cfg ~full:3 in
  let rows =
    List.map
      (fun axis ->
        let grid = Geometry.Grid.create ~axis_size:axis ~dim:1 in
        let g_of profile =
          Privcluster.Good_radius.gamma profile ~grid ~eps:(eps /. 2.) ~delta:(delta /. 2.) ~beta
        in
        let g_geom = g_of Privcluster.Profile.practical in
        let g_lin = g_of { Privcluster.Profile.practical with radius_grid = Linear } in
        let g_bin =
          g_of { Privcluster.Profile.practical with backend = Binary_search; radius_grid = Linear }
        in
        let paper_gamma =
          Recconcave.Rec_concave.paper_promise ~eps:(eps /. 4.) ~beta ~delta:(delta /. 2.)
            ~domain_size:(2. *. float_of_int axis)
        in
        let tree_slack = Baselines.Threshold_release.query_error_bound ~grid ~eps ~beta in
        (* Measured: radius-stage loss with the practical profile. *)
        let rng = fresh_rng cfg ("e6", axis) in
        let losses = ref [] in
        for _ = 1 to n_trials do
          let w = Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.55 ~cluster_radius:0.03 in
          let t = int_of_float (0.9 *. float_of_int w.Synth.cluster_size) in
          let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Synth.points) in
          let r =
            Privcluster.Good_radius.run rng Privcluster.Profile.practical ~grid ~eps ~delta
              ~beta ~t idx
          in
          if not r.Privcluster.Good_radius.zero_shortcut then begin
            let counts =
              Geometry.Pointset.counts_within idx ~radius:r.Privcluster.Good_radius.radius
            in
            let best = Array.fold_left max 0 counts in
            losses := float_of_int (max 0 (t - best)) :: !losses
          end
        done;
        [
          string_of_int axis;
          Printf.sprintf "%.0f" g_geom;
          Printf.sprintf "%.0f" g_lin;
          Printf.sprintf "%.0f" g_bin;
          Printf.sprintf "%.1e" paper_gamma;
          Printf.sprintf "%.0f" tree_slack;
          Report.f2 (Metrics.median !losses);
        ])
      axes
  in
  Report.table ~csv:"e6_domain_size"
    ~header:
      [ "|X|"; "G(geom)"; "G(linear)"; "G(binsearch)"; "G(paper formula)"; "treeSlack"; "measLoss" ]
    rows;
  Report.kv "read as"
    "all private columns grow at most logarithmically in |X| (the paper formula is flat in |X| \
     but its 8^log* constant dwarfs everything at these scales); the measured loss is flat"

(* ------------------------------------------------------------------ *)
(* E7: sample and aggregate                                            *)
(* ------------------------------------------------------------------ *)

let e7_sample_aggregate cfg =
  Report.kv "what" "Theorem 6.3 vs 6.2: aggregators as the good-run fraction alpha falls";
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let eps = 2.0 in
  let k = if cfg.quick then 1500 else 3000 in
  let alphas = if cfg.quick then [ 0.9; 0.4 ] else [ 0.9; 0.6; 0.4; 0.25 ] in
  let n_trials = trials cfg ~full:3 in
  let good_center = [| 0.3; 0.7 |] in
  let good_radius = 0.03 in
  let rows = ref [] in
  List.iter
    (fun alpha ->
      let rng = fresh_rng cfg ("e7", alpha) in
      let errs_avg = ref [] and errs_med = ref [] and errs_1c = ref [] and fails = ref 0 in
      for _ = 1 to n_trials do
        let y =
          Synth.estimator_outputs rng ~grid ~k ~good_fraction:alpha ~good_center ~good_radius
        in
        let dist c = Geometry.Vec.dist c good_center in
        (* (a) GUPT-style noisy averaging. *)
        errs_avg := dist (Baselines.Private_agg.gupt_average rng ~grid ~eps ~delta y) :: !errs_avg;
        (* (b) coordinatewise private median. *)
        let med =
          Baselines.Private_agg.run rng ~grid ~eps ~t:(int_of_float (alpha *. float_of_int k /. 2.))
            (Geometry.Pointset.create y)
        in
        errs_med := dist med.Baselines.Private_agg.center :: !errs_med;
        (* (c) the 1-cluster aggregator (Algorithm 4's step 3). *)
        let t = max 1 (int_of_float (alpha *. float_of_int k /. 2.)) in
        match
          Privcluster.One_cluster.run rng Privcluster.Profile.practical ~grid ~eps ~delta ~beta
            ~t y
        with
        | Error _ -> incr fails
        | Ok r -> errs_1c := dist r.Privcluster.One_cluster.center :: !errs_1c
      done;
      rows :=
        [
          Report.pct alpha;
          Report.f3 (Metrics.median !errs_avg);
          Report.f3 (Metrics.median !errs_med);
          Report.f3 (Metrics.median !errs_1c);
          string_of_int !fails;
        ]
        :: !rows)
    alphas;
  Report.table ~csv:"e7_aggregators"
    ~header:[ "alpha"; "gupt-avg err"; "priv-median err"; "1-cluster err"; "1c fails" ]
    (List.rev !rows);
  Report.kv "read as"
    "averaging and medians drift once junk outweighs the stable mode (alpha < 50%); the \
     1-cluster aggregator stays on the mode down to alpha·k/2 ~ its minimum cluster size";
  (* End-to-end Algorithm 4 vs GUPT on a genuinely unstable analysis: a
     mode-seeking estimator (the denser of two k-means centers) on bimodal
     data with a 55/45 split.  Per-block sampling noise flips which mode
     looks denser, so the block outputs are themselves bimodal (the
     majority mode holds alpha ~ 0.6-0.7 of them): GUPT's average lands
     between the modes, the 1-cluster aggregation sits on the majority
     mode - the regime Theorem 6.3 is for.  (On analyses whose outputs
     concentrate, GUPT is simpler and at least as accurate - Theorem 6.2's
     home turf; the table above quantifies the crossover.) *)
  Report.subhead
    "end-to-end: Algorithm 4 vs GUPT (f = dominant-mode estimator, 55/45 bimodal data)";
  let rng = fresh_rng cfg "e7b" in
  let n_raw = if cfg.quick then 90_000 else 180_000 in
  let major = [| 0.3; 0.3 |] and minor = [| 0.7; 0.7 |] in
  let raw =
    Array.init n_raw (fun _ ->
        let c = if Prim.Rng.bernoulli rng ~p:0.55 then major else minor in
        Array.map
          (fun x -> Float.max 0. (Float.min 1. (x +. Prim.Rng.gaussian rng ~sigma:0.015 ())))
          c)
  in
  let lloyd_rng = Prim.Rng.split rng in
  let dominant_mode block =
    let km = Geometry.Kmeans.lloyd lloyd_rng ~k:2 block in
    let centers = km.Geometry.Kmeans.centers in
    let counts = Array.make 2 0 in
    Array.iter
      (fun p ->
        let j = Geometry.Kmeans.assign centers p in
        counts.(j) <- counts.(j) + 1)
      block;
    if counts.(0) >= counts.(1) then centers.(0) else centers.(1)
  in
  (* Block arithmetic: k_blocks = n/(9·m) outputs, of which the majority
     mode holds ~60-75%; alpha = 0.7 targets t = 0.35·k_blocks, which must
     clear the radius stage's regime threshold 2·Gamma (~100 at eps 2). *)
  let m_block = 25 in
  (match
     Privcluster.Sample_aggregate.run rng Privcluster.Profile.practical ~grid ~eps ~delta ~beta
       ~m:m_block ~alpha:0.7 ~f:dominant_mode raw
   with
  | Error e ->
      Report.kv "SA run" (Format.asprintf "failed: %a" Privcluster.One_cluster.pp_failure e)
  | Ok r ->
      Report.kv "SA blocks k" (string_of_int r.Privcluster.Sample_aggregate.blocks);
      Report.kv "SA t = alpha*k/2" (string_of_int r.Privcluster.Sample_aggregate.t_used);
      Report.kv "SA stable point error (to majority mode)"
        (Report.f3 (Geometry.Vec.dist r.Privcluster.Sample_aggregate.stable_point major));
      Report.kv "SA stable radius" (Report.f3 r.Privcluster.Sample_aggregate.stable_radius);
      let amp = Privcluster.Sample_aggregate.amplified ~eps ~delta in
      Report.kv "SA amplified params" (Prim.Dp.to_string amp));
  let gupt = Baselines.Gupt.run rng ~grid ~eps ~delta ~m:m_block ~f:dominant_mode raw in
  Report.kv "GUPT estimate error (to majority mode)"
    (Report.f3 (Geometry.Vec.dist gupt.Baselines.Gupt.estimate major));
  Report.kv "mode separation (for scale)" (Report.f3 (Geometry.Vec.dist major minor))

(* ------------------------------------------------------------------ *)
(* E8: outlier screening                                               *)
(* ------------------------------------------------------------------ *)

let e8_outliers cfg =
  Report.kv "what" "Section 1.1: accuracy of a private mean with vs without 1-cluster screening";
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let eps = 2.0 in
  let n = if cfg.quick then 1500 else 3000 in
  let n_trials = trials cfg ~full:5 in
  let fractions = if cfg.quick then [ 0.1 ] else [ 0.02; 0.1; 0.25 ] in
  let rows =
    List.map
      (fun outlier_fraction ->
        let rng = fresh_rng cfg ("e8", outlier_fraction) in
        let errs_raw = ref [] and errs_scr = ref [] and excluded = ref [] and fails = ref 0 in
        for _ = 1 to n_trials do
          let w = Synth.with_outliers rng ~grid ~n ~outlier_fraction ~inlier_radius:0.04 in
          let inliers =
            Array.of_list
              (List.filteri
                 (fun i _ -> not (Array.mem i w.Synth.outlier_indices))
                 (Array.to_list w.Synth.data))
          in
          let truth = Geometry.Vec.mean inliers in
          let dist = function
            | Prim.Noisy_avg.Average a -> Some (Geometry.Vec.dist a.Prim.Noisy_avg.average truth)
            | Prim.Noisy_avg.Bottom -> None
          in
          (match
             Privcluster.Outlier.domain_mean rng ~eps:(eps /. 2.) ~delta:(delta /. 2.) ~grid
               w.Synth.data
           with
          | m -> ( match dist m with Some e -> errs_raw := e :: !errs_raw | None -> ()));
          match
            Privcluster.Outlier.detect rng Privcluster.Profile.practical ~grid ~eps:(eps /. 2.)
              ~delta:(delta /. 2.) ~beta
              ~inlier_fraction:(0.95 *. (1. -. outlier_fraction))
              w.Synth.data
          with
          | Error _ -> incr fails
          | Ok det -> (
              let out_total = Array.length w.Synth.outlier_indices in
              let out_excluded =
                Array.fold_left
                  (fun acc i -> if det.Privcluster.Outlier.inlier w.Synth.data.(i) then acc else acc + 1)
                  0 w.Synth.outlier_indices
              in
              if out_total > 0 then
                excluded := (float_of_int out_excluded /. float_of_int out_total) :: !excluded;
              match
                dist
                  (Privcluster.Outlier.screened_mean rng ~eps:(eps /. 2.) ~delta:(delta /. 2.)
                     det w.Synth.data)
              with
              | Some e -> errs_scr := e :: !errs_scr
              | None -> incr fails)
        done;
        [
          Report.pct outlier_fraction;
          Report.f3 (Metrics.median !errs_raw);
          Report.f3 (Metrics.median !errs_scr);
          Report.pct (Metrics.median !excluded);
          string_of_int !fails;
        ])
      fractions
  in
  Report.table ~csv:"e8_outliers"
    ~header:[ "outliers"; "mean err (domain)"; "mean err (screened)"; "outliers excluded"; "fails" ]
    rows;
  Report.kv "read as"
    "screening shrinks the averaging sensitivity from the domain diameter to the found ball's \
     and removes the outlier bias; both effects show in the error column"

(* ------------------------------------------------------------------ *)
(* E9: k-clustering heuristic                                          *)
(* ------------------------------------------------------------------ *)

let e9_k_clustering cfg =
  Report.kv "what" "Observation 3.5: covering k planted balls by iterating the solver";
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let n = if cfg.quick then 2400 else 4500 in
  let n_trials = trials cfg ~full:3 in
  let ks = if cfg.quick then [ 3 ] else [ 2; 3; 5 ] in
  let rows =
    List.map
      (fun k ->
        let rng = fresh_rng cfg ("e9", k) in
        let coverages = ref [] and found = ref [] and ms = ref [] in
        for _ = 1 to n_trials do
          let w = Synth.planted_balls rng ~grid ~n ~k ~cluster_radius:0.04 ~noise_fraction:0.1 in
          let r, elapsed =
            Harness.time (fun () ->
                Privcluster.K_cluster.run rng Privcluster.Profile.practical ~grid
                  ~eps:(2.0 *. float_of_int k) ~delta ~beta ~k
                  ~t_fraction:(0.7 /. float_of_int k)
                  w.Synth.all_points)
          in
          ms := elapsed :: !ms;
          found := float_of_int (List.length r.Privcluster.K_cluster.balls) :: !found;
          coverages :=
            (float_of_int (Privcluster.K_cluster.coverage r.Privcluster.K_cluster.balls w.Synth.all_points)
            /. float_of_int (Array.length w.Synth.all_points))
            :: !coverages
        done;
        [
          string_of_int k;
          Report.f2 (Metrics.median !found);
          Report.pct (Metrics.median !coverages);
          Printf.sprintf "%.0f" (Metrics.median !ms);
        ])
      ks
  in
  Report.table ~csv:"e9_kcluster" ~header:[ "k"; "balls found"; "coverage"; "ms" ] rows;
  Report.kv "read as" "iterated 1-cluster recovers the planted balls and covers ~90% of the data"

(* ------------------------------------------------------------------ *)
(* E10: interior point via the reduction                               *)
(* ------------------------------------------------------------------ *)

let e10_interior_point cfg =
  Report.kv "what" "Theorem 5.3: interior point from a 1-cluster oracle";
  let grid = Geometry.Grid.create ~axis_size:4096 ~dim:1 in
  let ms_sizes = if cfg.quick then [ 4000 ] else [ 2000; 4000; 8000 ] in
  let n_trials = trials cfg ~full:5 in
  let rows =
    List.map
      (fun m ->
        let rng = fresh_rng cfg ("e10", m) in
        let successes = ref 0 and elapsed = ref [] and radii = ref [] in
        for _ = 1 to n_trials do
          (* Bimodal data: interior points live in [0.2, 0.8]. *)
          let values =
            Array.init m (fun i ->
                let base = if i mod 2 = 0 then 0.2 else 0.8 in
                let v = base +. Prim.Rng.gaussian rng ~sigma:0.01 () in
                Float.max 0. (Float.min 1. v))
          in
          let inner_n = m / 2 in
          let r, t_ms =
            Harness.time (fun () ->
                Privcluster.Interior_point.run rng Privcluster.Profile.practical ~grid ~eps:2.0
                  ~delta ~beta ~inner_n ~w:16. values)
          in
          elapsed := t_ms :: !elapsed;
          match r with
          | Error _ -> ()
          | Ok ip ->
              radii := ip.Privcluster.Interior_point.oracle_radius :: !radii;
              let lo = Array.fold_left Float.min infinity values in
              let hi = Array.fold_left Float.max neg_infinity values in
              if ip.Privcluster.Interior_point.point >= lo && ip.Privcluster.Interior_point.point <= hi
              then incr successes
        done;
        [
          string_of_int m;
          Printf.sprintf "%d/%d" !successes n_trials;
          Report.f3 (Metrics.median !radii);
          Printf.sprintf "%.0f" (Metrics.median !elapsed);
        ])
      ms_sizes
  in
  Report.table ~csv:"e10_interior" ~header:[ "m"; "interior hits"; "oracle radius"; "ms" ] rows;
  Report.kv "theorem 5.3 m for w=16, eps=2"
    (Printf.sprintf "%.0f (n=100)"
       (Privcluster.Interior_point.required_m ~n:100 ~w:16. ~eps:2. ~delta:1e-6 ~beta:0.1));
  Report.kv "read as"
    "the reduction converts every successful 1-cluster call into an interior point; the \
     required sample size depends on |X| only through log* (Theorem 5.2's lower bound)"

(* ------------------------------------------------------------------ *)
(* E11: geometric substrate tails                                      *)
(* ------------------------------------------------------------------ *)

let e11_geometry_tails cfg =
  Report.kv "what" "Lemmas 4.9/4.10: measured JL distortion and rotation projections vs bounds";
  let rng = fresh_rng cfg "e11" in
  let d = 64 in
  let n = if cfg.quick then 100 else 200 in
  let points = Array.init n (fun _ -> Prim.Rng.gaussian_vector rng ~dim:d ~sigma:1.0) in
  let ks = if cfg.quick then [ 16; 64 ] else [ 8; 16; 32; 64; 128 ] in
  let jl_rows =
    List.map
      (fun k ->
        let f = Geometry.Jl.make rng ~input_dim:d ~output_dim:k in
        let proj = Geometry.Jl.apply_all f points in
        let worst = ref 0. in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let orig = Geometry.Vec.dist_sq points.(i) points.(j) in
            let new_ = Geometry.Vec.dist_sq proj.(i) proj.(j) in
            if orig > 0. then worst := Float.max !worst (Float.abs ((new_ /. orig) -. 1.))
          done
        done;
        let eta_bound = sqrt (8. /. float_of_int k *. log (2. *. float_of_int (n * n) /. beta)) in
        [ string_of_int k; Report.f3 !worst; Report.f3 eta_bound ])
      ks
  in
  Report.subhead "JL transform (Lemma 4.10): worst pairwise squared-distance distortion";
  Report.table ~csv:"e11_jl" ~header:[ "k"; "measured eta"; "bound eta (beta=10%)" ] jl_rows;
  Report.subhead "random rotation (Lemma 4.9): worst |<x-y, z_i>| / ||x-y||";
  let rot = Geometry.Rotation.make rng ~dim:d in
  let worst = ref 0. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let diff = Geometry.Vec.sub points.(i) points.(j) in
      let norm = Geometry.Vec.norm2 diff in
      if norm > 0. then
        for axis = 0 to d - 1 do
          worst :=
            Float.max !worst (Float.abs (Geometry.Rotation.project rot diff axis) /. norm)
        done
    done
  done;
  Report.kv "measured worst projection" (Report.f3 !worst);
  Report.kv "Lemma 4.9 bound"
    (Report.f3 (Geometry.Rotation.projection_bound ~dim:d ~n_points:n ~beta));
  Report.kv "read as" "both measured tails sit inside their stated bounds"

(* ------------------------------------------------------------------ *)
(* E12: design-choice ablations                                        *)
(* ------------------------------------------------------------------ *)

let e12_ablations cfg =
  Report.kv "what" "ablations of the DESIGN.md design choices: projection path, box side factor";
  let eps = 2.0 in
  let delta' = delta and beta' = beta in
  let d = 8 in
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:d in
  let n = if cfg.quick then 1500 else 3000 in
  let n_trials = trials cfg ~full:4 in
  let run_with profile tag rows =
    let rng = fresh_rng cfg ("e12", tag) in
    let scores =
      List.init n_trials (fun _ ->
          let w = Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.6 ~cluster_radius:0.06 in
          let t = int_of_float (0.9 *. float_of_int w.Synth.cluster_size) in
          let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Synth.points) in
          let _, r_hi = Metrics.r_opt_bounds_indexed idx ~t in
          let r_hi = Float.min r_hi w.Synth.cluster_radius in
          fst
            (Harness.run_one_cluster rng profile ~grid ~eps ~delta:delta' ~beta:beta' ~t ~r_hi
               idx))
    in
    let s = Harness.median_scores scores in
    [
      tag;
      Report.f2 s.Harness.w_private;
      Report.f2 s.Harness.w_tight;
      Printf.sprintf "%.0f" s.Harness.time_ms;
      status s;
    ]
    :: rows
  in
  Report.subhead "projection path at d = 8 (identity vs forced JL, same data law)";
  let identity = Privcluster.Profile.practical in
  let forced_jl =
    { Privcluster.Profile.practical with jl_cap_at_dim = false; jl_constant = 0.5 }
  in
  let rows = run_with identity "identity (k = d)" [] in
  let rows = run_with forced_jl "JL (k ~ 5 < d)" rows in
  Report.table ~csv:"e12_projection" ~header:[ "projection"; "wPriv"; "wTight"; "ms"; "status" ] (List.rev rows);
  Report.subhead "box side factor (practical profile, d = 2)";
  let grid2 = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let factors = if cfg.quick then [ 4.; 10. ] else [ 3.; 4.; 6.; 10.; 20. ] in
  let rows =
    List.map
      (fun box_side_factor ->
        let profile = { Privcluster.Profile.practical with box_side_factor } in
        let rng = fresh_rng cfg ("e12b", box_side_factor) in
        let scores =
          List.init n_trials (fun _ ->
              let w =
                Synth.planted_ball rng ~grid:grid2 ~n ~cluster_fraction:0.6 ~cluster_radius:0.05
              in
              let t = int_of_float (0.9 *. float_of_int w.Synth.cluster_size) in
              let idx = Geometry.Pointset.build_index (Geometry.Pointset.create w.Synth.points) in
              let _, r_hi = Metrics.r_opt_bounds_indexed idx ~t in
              let r_hi = Float.min r_hi w.Synth.cluster_radius in
              fst
                (Harness.run_one_cluster rng profile ~grid:grid2 ~eps ~delta:delta' ~beta:beta'
                   ~t ~r_hi idx))
        in
        let rounds =
          (* Rounds used is in the one-cluster detail; approximate via time
             variance is noisy — report failure share instead. *)
          match (Harness.median_scores scores).Harness.failure with
          | None -> "0"
          | Some s -> s
        in
        let s = Harness.median_scores scores in
        [
          Report.g box_side_factor;
          Report.f2 s.Harness.w_private;
          Report.f2 s.Harness.w_tight;
          Printf.sprintf "%.0f" s.Harness.time_ms;
          rounds;
        ])
      factors
  in
  Report.table ~csv:"e12_box_factor" ~header:[ "factor"; "wPriv"; "wTight"; "ms"; "failed" ] rows;
  Report.kv "read as"
    "identity beats forced-JL whenever d <= k (the JL path pays its ln-factor capture ball); \
     small box factors shrink the private radius until the per-round capture probability, and \
     then the sparse-vector retries, give out"

(* ------------------------------------------------------------------ *)
(* E13: private quantiles (RecConcave application)                     *)
(* ------------------------------------------------------------------ *)

let e13_quantiles cfg =
  Report.kv "what" "private quantiles via RecConcave (the machinery behind IntPoint step 4)";
  let grid = Geometry.Grid.create ~axis_size:1024 ~dim:1 in
  let n = if cfg.quick then 2000 else 5000 in
  let n_trials = trials cfg ~full:10 in
  let epss = if cfg.quick then [ 1.0 ] else [ 0.25; 1.0; 4.0 ] in
  let rows =
    List.concat_map
      (fun eps ->
        let rng = fresh_rng cfg ("e13", eps) in
        List.map
          (fun q ->
            let errs = ref [] in
            for _ = 1 to n_trials do
              (* Beta-ish skewed data via squaring uniforms. *)
              let values = Array.init n (fun _ -> Prim.Rng.float rng 1.0 ** 2.) in
              let res = Privcluster.Quantile.quantile rng ~grid ~eps ~q values in
              let rank =
                Array.fold_left
                  (fun acc x -> if x <= res.Privcluster.Quantile.value then acc + 1 else acc)
                  0 values
              in
              errs :=
                Float.abs (float_of_int rank -. res.Privcluster.Quantile.target_rank) :: !errs
            done;
            let bound =
              Privcluster.Quantile.rank_error_bound ~grid ~eps ~beta:Harness.default_beta ()
            in
            [
              Report.g eps;
              Report.g q;
              Report.f2 (Metrics.median !errs);
              Report.f2 (Metrics.quantile !errs ~q:0.9);
              Printf.sprintf "%.0f" bound;
            ])
          [ 0.25; 0.5; 0.9 ])
      epss
  in
  Report.table ~csv:"e13_quantiles" ~header:[ "eps"; "q"; "rank err p50"; "rank err p90"; "bound" ] rows;
  Report.kv "read as"
    "measured rank errors scale as 1/eps and sit far inside the certified whp bound"

(* ------------------------------------------------------------------ *)
(* E14: scalability of the two index backends                          *)
(* ------------------------------------------------------------------ *)

let e14_scalability cfg =
  Report.kv "what" "end-to-end time and memory regime vs n: dense distance index vs k-d tree";
  let grid = Geometry.Grid.create ~axis_size:256 ~dim:2 in
  let eps = 2.0 in
  let ns = if cfg.quick then [ 2000; 16000 ] else [ 2000; 8000; 32000; 64000 ] in
  let dense_cutoff = 8000 in
  let rows =
    List.map
      (fun n ->
        let rng = fresh_rng cfg ("e14", n) in
        let w = Synth.planted_ball rng ~grid ~n ~cluster_fraction:0.55 ~cluster_radius:0.05 in
        let t = int_of_float (0.9 *. float_of_int w.Synth.cluster_size) in
        let ps = Geometry.Pointset.create w.Synth.points in
        let run idx_builder =
          let idx, build_ms = Harness.time (fun () -> idx_builder ps) in
          let result, solve_ms =
            Harness.time (fun () ->
                Privcluster.One_cluster.run_indexed rng Privcluster.Profile.practical ~grid
                  ~eps ~delta ~beta ~t idx)
          in
          let tight =
            match result with
            | Ok r ->
                Report.f2
                  (Metrics.tight_radius ps ~center:r.Privcluster.One_cluster.center ~t
                  /. w.Synth.cluster_radius)
            | Error _ -> "-"
          in
          (build_ms, solve_ms, tight)
        in
        let tree_build, tree_solve, tree_tight = run Geometry.Pointset.build_tree_index in
        let dense_cols =
          if n <= dense_cutoff then begin
            let dense_build, dense_solve, dense_tight = run Geometry.Pointset.build_index in
            [
              Printf.sprintf "%.0f" dense_build;
              Printf.sprintf "%.0f" dense_solve;
              dense_tight;
            ]
          end
          else [ "-"; "-"; "-" ]
        in
        [ string_of_int n ]
        @ dense_cols
        @ [ Printf.sprintf "%.0f" tree_build; Printf.sprintf "%.0f" tree_solve; tree_tight ])
      ns
  in
  Report.table ~csv:"e14_scalability"
    ~header:
      [ "n"; "dense build ms"; "dense solve ms"; "dense w"; "tree build ms"; "tree solve ms"; "tree w" ]
    rows;
  Report.kv "read as"
    "the dense index's O(n^2) memory stops around 8k points; the k-d tree keeps the whole \
     pipeline running to 64k+ with the same answer quality (its per-probe cost grows only \
     mildly with n)"

(* ------------------------------------------------------------------ *)

let all =
  [
    ("E1", "Table 1: method comparison", e1_table1);
    ("E2", "Radius approximation vs n", e2_radius_vs_n);
    ("E3", "Cluster loss vs eps", e3_delta_vs_eps);
    ("E4", "GoodRadius ratio + ablations", e4_goodradius);
    ("E5", "Minimum cluster size vs dimension", e5_min_t_vs_d);
    ("E6", "Accuracy vs domain size |X|", e6_domain_size);
    ("E7", "Sample and aggregate", e7_sample_aggregate);
    ("E8", "Outlier screening", e8_outliers);
    ("E9", "k-clustering heuristic", e9_k_clustering);
    ("E10", "Interior point reduction", e10_interior_point);
    ("E11", "Geometric substrate tails", e11_geometry_tails);
    ("E12", "Design-choice ablations", e12_ablations);
    ("E13", "Private quantiles", e13_quantiles);
    ("E14", "Index scalability", e14_scalability);
  ]

let run_one cfg (id, title, f) =
  Report.headline (Printf.sprintf "%s - %s" id title);
  Report.kv "mode" (if cfg.quick then "quick" else "full");
  Report.kv "seed" (string_of_int cfg.seed);
  f cfg

let run ?only cfg =
  let selected =
    match only with
    | None -> all
    | Some ids -> List.filter (fun (id, _, _) -> List.mem id ids) all
  in
  List.iter (run_one cfg) selected
