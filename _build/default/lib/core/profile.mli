(** Tunable constants of the 1-cluster pipeline.

    The privacy guarantees of GoodRadius/GoodCenter never depend on the
    geometry constants below — interval lengths, box sides, projection
    dimensions and round caps are all data-independent, so changing them
    changes only the utility analysis (see DESIGN.md, substitution 1).  Two
    presets are provided:

    - {!paper} — the exact constants written in Algorithms 1–2 (JL dimension
      [46·ln(2n/β)], boxes of side [300r], axis intervals of length
      [900r√(k·ln(dn/β)/d)], round cap [2n·ln(1/β)/β]).  These are
      worst-case-proof constants; at laptop scale they produce enormous
      balls and are exercised mainly by tests and the fidelity bench.
    - {!practical} — the same algorithm with constants tightened to the
      slack actually needed by the analysis at small scale, plus two
      shortcuts the paper's asymptotic setting never needs: the JL target
      dimension is capped at [d] (projecting {e up} is pointless), and when
      the cap makes the projection the identity the rotation stage is
      skipped because the chosen box itself already bounds the captured
      set deterministically. *)

type backend =
  | Rec_concave  (** Radius search via {!Recconcave.Rec_concave} (Algorithm 1 as written). *)
  | Binary_search
      (** Radius search via noisy binary search on [L] (the §3.1 footnote
          alternative). *)

type radius_grid =
  | Linear  (** Algorithm 1's candidate set [{0, 1/(2|X|), …, ⌈√d⌉}]. *)
  | Geometric
      (** [O(log(|X|√d))] geometrically spaced candidates
          ({!Geometry.Grid.geometric_radius_of_index}); costs a [√2] factor
          in the radius approximation, slashes the search loss Γ. *)

type t = {
  backend : backend;
  radius_grid : radius_grid;
  rc_base : int;  (** RecConcave base-case size. *)
  jl_constant : float;  (** JL dimension = [⌈jl_constant · ln(2n/β)⌉]. *)
  jl_cap_at_dim : bool;
      (** Cap the JL dimension at [d]; with the cap at [d] the projection is
          replaced by the identity. *)
  box_side_factor : float;  (** Box side = [box_side_factor · r]. *)
  max_rounds : int option;
      (** Cap on AboveThreshold rounds; [None] uses the paper's
          [2n·ln(1/β)/β]. *)
}

val paper : t
val practical : t

val jl_dim : t -> n:int -> d:int -> beta:float -> int
(** The projection dimension [k] this profile uses. *)

val axis_interval_factor : t -> float
(** [3 · box_side_factor] — the paper's 900 = 3 × 300 relation, which is the
    slack the rotated-frame analysis needs. *)

val rounds : t -> n:int -> beta:float -> int

val pp : Format.formatter -> t -> unit
