module Json = Engine.Json

type fail = [ `Transport of string | `Server of Wire.error ]

let fail_message = function
  | `Transport m -> "transport: " ^ m
  | `Server (e : Wire.error) ->
      Printf.sprintf "%s: %s" (Wire.code_name e.Wire.code) e.Wire.message

type t = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : bytes;
  mutable next_rid : int;
}

let close t = try Unix.close t.fd with Unix.Unix_error (_, _, _) -> ()

let rec read_line t =
  let s = Buffer.contents t.buf in
  match String.index_opt s '\n' with
  | Some i ->
      Buffer.clear t.buf;
      Buffer.add_string t.buf (String.sub s (i + 1) (String.length s - i - 1));
      Ok (String.sub s 0 i)
  | None -> (
      match Unix.read t.fd t.chunk 0 (Bytes.length t.chunk) with
      | 0 -> Error (`Transport "connection closed by server")
      | n ->
          Buffer.add_subbytes t.buf t.chunk 0 n;
          read_line t
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line t
      | exception Unix.Unix_error (e, _, _) -> Error (`Transport (Unix.error_message e)))

let write_all fd s =
  let n = String.length s in
  let rec go off = if off < n then go (off + Unix.write_substring fd s off (n - off)) in
  go 0

let ( let* ) = Result.bind

let request t req =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  let* () =
    match write_all t.fd (Wire.request_to_line { Wire.rid; request = req }) with
    | () -> Ok ()
    | exception Unix.Unix_error (e, _, _) -> Error (`Transport (Unix.error_message e))
  in
  let* line = read_line t in
  match Wire.reply_of_line line with
  | Error m -> Error (`Transport m)
  | Ok (rrid, _) when rrid <> rid ->
      Error (`Transport (Printf.sprintf "reply id %d does not match request id %d" rrid rid))
  | Ok (_, Ok payload) -> Ok payload
  | Ok (_, Error e) -> Error (`Server e)

let connect listen ~tenant ~token =
  let domain, addr =
    match (listen : Daemon.listen) with
    | `Unix path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | `Tcp (host, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  match
    let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
        raise e
  with
  | exception Unix.Unix_error (e, _, _) -> Error (`Transport (Unix.error_message e))
  | Error _ as e -> e
  | Ok fd -> (
      let t = { fd; buf = Buffer.create 4096; chunk = Bytes.create 4096; next_rid = 1 } in
      match request t (Wire.Hello { version = Wire.version; tenant; token }) with
      | Ok _ -> Ok t
      | Error _ as e ->
          close t;
          e)

let register t ~dataset ?(n = 3000) ?(dim = 2) ?(axis = 256) ?(frac = 0.5) ?(radius = 0.05)
    ?(seed = 1) ~budget ?(mode = Engine.Accountant.Basic) () =
  request t (Wire.Register { dataset; n; dim; axis; frac; radius; seed; budget; mode })

let run t ~dataset ?seed ~jobs () = request t (Wire.Run { dataset; jobs; seed })

let append t ~dataset ~n ~seed ?(frac = 0.5) ?(radius = 0.05) () =
  request t (Wire.Append { dataset; n; seed; frac; radius })

let retire t ~dataset ~from_ ~count = request t (Wire.Retire { dataset; from_; count })
let epoch t ~dataset = request t (Wire.Epoch { dataset })

let standing t ~dataset ~id ~t_fraction ~eps ~delta ~periods ?seed () =
  request t (Wire.Standing { dataset; id; t_fraction; eps; delta; periods; seed })

let settle t ~dataset ~action ?label () =
  let* payload = request t (Wire.Settle { dataset; action; label }) in
  match Wire.settle_reply_of_json payload with
  | Ok r -> Ok r
  | Error m -> Error (`Transport m)

let ledger t ~dataset = request t (Wire.Ledger { dataset })
let datasets t = request t Wire.Datasets

let metrics t =
  let* payload = request t Wire.Metrics in
  match Option.bind (Json.member "metrics" payload) Json.to_str with
  | Some text -> Ok text
  | None -> Error (`Transport "metrics reply has no text body")

let health t =
  let* payload = request t Wire.Health in
  let status =
    Option.bind (Option.bind (Json.member "status" payload) Json.to_str)
      Obs.Slo.status_of_string
  in
  let rules =
    match Option.bind (Json.member "rules" payload) Json.to_list with
    | None -> []
    | Some l -> List.filter_map Obs.Slo.verdict_of_json l
  in
  match status with
  | Some st -> Ok (st, rules, payload)
  | None -> Error (`Transport "health reply has no status")

let stats t = request t Wire.Stats
let ping t = request t Wire.Ping
