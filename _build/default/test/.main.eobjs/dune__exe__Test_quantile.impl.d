test/test_quantile.ml: Alcotest Array Baselines Float Geometry Prim Privcluster Testutil
