(** A budgeted per-dataset privacy ledger.

    [Prim.Composition.accountant] and [Prim.Zcdp.ledger] record what an
    algorithm {e did} spend; this module adds the service-side half: a
    dataset is registered with a total [(ε, δ)] budget, every job must ask
    before running, and a charge that would push the composed total past
    the budget is {e refused} — the job is never executed (refusal happens
    before any noise is drawn, so a refused job consumes no privacy).

    Three composition modes decide what "the composed total" means:
    - {!Basic} — Theorem 2.1: ε's and δ's add ({!Prim.Composition.basic_list}).
    - {!Advanced} — Theorem 4.7 with slack [δ']: when every charge so far is
      identical the total is whichever of the basic and advanced pairs has
      the smaller ε (both are valid guarantees for the same composition, so
      either pair may be reported — but not a coordinate-wise mix of the
      two); with heterogeneous charges the theorem (as stated, and as
      implemented in {!Prim.Composition.advanced}) does not apply and the
      ledger falls back to the basic total.
    - {!Zcdp} — the Bun–Steinke ledger with conversion slack [δ']: an
      [(ε_i, δ_i)] charge enters as [ρ_i = ε_i²/2]
      ({!Prim.Zcdp.of_pure_dp}); ρ's add, and the spend reported against
      the budget is [to_dp (Σρ) δ'] with the δ_i's added on top — the same
      [(kδ + δ')] shape as advanced composition.

    Charging is sequential by design: the engine charges every job of a
    batch in submission order {e before} dispatching any of them to the
    pool, so the accept/refuse decisions are deterministic and independent
    of worker scheduling.  The ledger itself is not thread-safe; the
    engine only touches it from the coordinator (admission and the
    post-batch degradation pass), never from worker domains.

    {2 Reservations}

    The graceful-degradation path needs a charge that is {e admitted now}
    but only {e spent later, maybe}: when a job opts into a fallback
    solver, the fallback's price must be secured at admission time (so
    degradation never discovers mid-batch that the budget is gone), yet it
    must not count as spent if the job completes normally.  {!reserve}
    admits such a charge and holds it against the budget — subsequent
    {!charge}/{!reserve}/{!would_accept} decisions treat it as if it were
    already committed — without adding it to {!spent}.  The holder then
    settles it exactly once: {!commit} converts it into a real charge
    (the fallback ran and its noise was drawn), {!release} frees the
    headroom (the fallback was not needed — releasing is data-independent
    post-processing of the job's public status, so it leaks nothing). *)

type mode =
  | Basic
  | Advanced of { slack : float }  (** Theorem 4.7's δ'. *)
  | Zcdp of { slack : float }  (** The δ of the ρ → (ε, δ) conversion. *)

val mode_name : mode -> string
(** ["basic"], ["advanced"], ["zcdp"]. *)

val mode_of_string : ?slack:float -> string -> (mode, string) result
(** Parse a mode name; [slack] (default [1e-9]) feeds the two modes that
    need one. *)

type t

type refusal = {
  requested : Prim.Dp.params;
  would_spend : Prim.Dp.params;  (** Composed total had the charge gone through. *)
  spent : Prim.Dp.params;  (** Composed total before the charge. *)
  budget : Prim.Dp.params;
}

(** {2 Event stream}

    Every ledger operation emits one structured event to every subscribed
    listener, {e after} the state change it describes — a listener that
    reads the ledger sees the post-event state.  Consumers that need a
    durable or remote view of the ledger (the daemon's journaled WAL, the
    tracing budget-event emitter) subscribe here instead of peeking at
    internals; the [label] carries the job id the operation was charged
    under, and reservation events carry the reservation's sequence number
    [id] so reserve/commit/release triples can be paired up downstream.
    Listeners observe only: they cannot veto or reorder operations, and a
    ledger with no listeners behaves bit-identically to one that has
    never heard of events. *)

type event =
  | Charged of { label : string; cost : Prim.Dp.params }
  | Refused of { label : string; cost : Prim.Dp.params; reserve : bool; refusal : refusal }
      (** [reserve] distinguishes a refused {!reserve} from a refused
          {!charge} (both leave the ledger unchanged and bump the refusal
          counter). *)
  | Reserved of { id : int; label : string; cost : Prim.Dp.params }
  | Committed of { id : int; label : string; cost : Prim.Dp.params }
  | Released of { id : int; label : string; cost : Prim.Dp.params }

val subscribe : t -> (event -> unit) -> unit
(** Add a listener; listeners fire in subscription order, synchronously,
    on the thread performing the ledger operation. *)

val create : ?mode:mode -> budget:Prim.Dp.params -> unit -> t
(** Fresh ledger with nothing spent.  [mode] defaults to {!Basic}. *)

val mode : t -> mode
val budget : t -> Prim.Dp.params

val spent : t -> Prim.Dp.params
(** Composed total of all accepted charges under the ledger's mode;
    [(0, 0)] when nothing has been charged. *)

val charge : t -> ?label:string -> Prim.Dp.params -> (unit, refusal) result
(** Accept the charge iff the composed total — including outstanding
    reservations — stays within budget (with a [1e-9] absolute tolerance
    on both coordinates, so a budget split into equal parts fills
    exactly).  On [Error] the ledger is unchanged; the refusal count is
    incremented. *)

type reservation
(** A held-but-not-spent charge; see the module preamble. *)

val reserve : t -> ?label:string -> Prim.Dp.params -> (reservation, refusal) result
(** Admit the charge (same budget test as {!charge}) but park it as a
    reservation: it blocks later admissions yet does not enter {!spent}
    or {!entries} until {!commit}.  A refused reservation increments the
    refusal counter like a refused charge. *)

val commit : t -> reservation -> unit
(** Turn the reservation into a real charge (it joins {!entries} and
    {!spent}).  @raise Invalid_argument if already settled. *)

val release : t -> reservation -> unit
(** Drop the reservation, freeing its headroom.
    @raise Invalid_argument if already settled. *)

val reserved : t -> (string * Prim.Dp.params) list
(** Outstanding (unsettled) reservations, oldest first. *)

val outstanding : t -> (reservation * string * Prim.Dp.params) list
(** Like {!reserved} but with the handles, so an operator can {!commit}
    or {!release} reservations it did not take itself — the [settle]
    path for orphans restored by WAL replay. *)

val would_accept : t -> Prim.Dp.params -> bool
(** The decision {!charge} would make, without making it. *)

val entries : t -> (string * Prim.Dp.params) list
(** Accepted charges in charge order. *)

val refusals : t -> int

val pp_refusal : Format.formatter -> refusal -> unit

val refusal_message : refusal -> string
(** One-line human rendering, used verbatim in job results. *)

val to_json : t -> Json.t
