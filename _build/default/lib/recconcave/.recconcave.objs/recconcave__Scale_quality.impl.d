lib/recconcave/scale_quality.ml: Float Quality
