lib/core/outlier.mli: Geometry One_cluster Prim Profile Stdlib
