lib/core/one_cluster.ml: Array Float Format Geometry Good_center Good_radius Prim Printf Profile
