lib/prim/laplace.ml: Array Rng
